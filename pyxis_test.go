package pyxis

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"pyxis/internal/dbapi"
	"pyxis/internal/interp"
	"pyxis/internal/pdg"
	"pyxis/internal/runtime"
	"pyxis/internal/solver"
	"pyxis/internal/sqldb"
	"pyxis/internal/val"
)

// orderSrc is the paper's running example (Fig. 2), extended with the
// database-access methods the paper elides.
const orderSrc = `
class Order {
    int id;
    double[] realCosts;
    double totalCost;

    Order(int id) {
        this.id = id;
    }

    entry double placeOrder(int cid, double dct) {
        totalCost = 0;
        computeTotalCost(dct);
        updateAccount(cid, totalCost);
        return totalCost;
    }

    void computeTotalCost(double dct) {
        int i = 0;
        double[] costs = getCosts();
        realCosts = new double[costs.length];
        for (double itemCost : costs) {
            double realCost;
            realCost = itemCost * dct;
            totalCost += realCost;
            realCosts[i] = realCost;
            insertNewLineItem(id, i, realCost);
            i++;
        }
    }

    double[] getCosts() {
        table t = db.query("SELECT cost FROM line_items WHERE order_id = ? ORDER BY num", id);
        double[] costs = new double[t.rows()];
        for (int r = 0; r < t.rows(); r++) {
            costs[r] = t.getDouble(r, 0);
        }
        return costs;
    }

    void insertNewLineItem(int oid, double num, double cost) {
        db.update("INSERT INTO new_line_items VALUES (?, ?, ?)", oid, num, cost);
    }

    void updateAccount(int cid, double total) {
        db.update("UPDATE accounts SET balance = balance - ? WHERE cid = ?", total, cid);
    }

    entry double lastRealCost() {
        if (realCosts == null) {
            return -1.0;
        }
        if (realCosts.length == 0) {
            return 0.0;
        }
        return realCosts[realCosts.length - 1];
    }
}
`

func orderSchema(t testing.TB, items int) *sqldb.DB {
	t.Helper()
	db := sqldb.Open()
	s := db.NewSession()
	stmts := []string{
		"CREATE TABLE line_items (order_id INT, num INT, cost DOUBLE, PRIMARY KEY (order_id, num))",
		"CREATE TABLE new_line_items (order_id INT, num INT, cost DOUBLE, PRIMARY KEY (order_id, num))",
		"CREATE TABLE accounts (cid INT PRIMARY KEY, balance DOUBLE)",
	}
	for _, sql := range stmts {
		if _, err := s.Exec(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	for i := 0; i < items; i++ {
		if _, err := s.Exec("INSERT INTO line_items VALUES (7, ?, ?)",
			val.IntV(int64(i)), val.DoubleV(float64(10+i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Exec("INSERT INTO accounts VALUES (3, 1000.0)"); err != nil {
		t.Fatal(err)
	}
	return db
}

// oracleRun executes the workload on a fresh parse with the reference
// interpreter and returns (results, db snapshot).
func oracleRun(t *testing.T, items int) ([]val.Value, map[string][][]val.Value) {
	t.Helper()
	db := orderSchema(t, items)
	sys := MustLoad(orderSrc)
	ip := interp.New(sys.Prog, dbapi.NewLocal(db))
	obj, err := ip.NewObject("Order", interp.Scalar(val.IntV(7)))
	if err != nil {
		t.Fatal(err)
	}
	var results []val.Value
	r1, err := ip.CallEntry(sys.Prog.Method("Order", "placeOrder"), obj, val.IntV(3), val.DoubleV(0.9))
	if err != nil {
		t.Fatal(err)
	}
	results = append(results, r1)
	r2, err := ip.CallEntry(sys.Prog.Method("Order", "lastRealCost"), obj)
	if err != nil {
		t.Fatal(err)
	}
	results = append(results, r2)
	return results, db.Snapshot()
}

func profiledSystem(t *testing.T, items int) *System {
	t.Helper()
	sys := MustLoad(orderSrc)
	profDB := orderSchema(t, items)
	err := sys.ProfileWorkload(profDB, func(ip *interp.Interp) error {
		obj, err := ip.NewObject("Order", interp.Scalar(val.IntV(7)))
		if err != nil {
			return err
		}
		if _, err := ip.CallEntry(sys.Prog.Method("Order", "placeOrder"), obj, val.IntV(3), val.DoubleV(0.9)); err != nil {
			return err
		}
		_, err = ip.CallEntry(sys.Prog.Method("Order", "lastRealCost"), obj)
		return err
	})
	if err != nil {
		t.Fatalf("profiling: %v", err)
	}
	return sys
}

func snapshotsEqual(a, b map[string][][]val.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for name, rowsA := range a {
		rowsB, ok := b[name]
		if !ok || len(rowsA) != len(rowsB) {
			return false
		}
		for i := range rowsA {
			if len(rowsA[i]) != len(rowsB[i]) {
				return false
			}
			for j := range rowsA[i] {
				if !rowsA[i][j].Equal(rowsB[i][j]) {
					return false
				}
			}
		}
	}
	return true
}

// TestRuntimeMatchesInterpreter is the central semantic-preservation
// property (DESIGN.md invariant 1): for every budget, every solver,
// with and without reordering, the partitioned runtime produces the
// same entry results and the same final database state as the
// reference interpreter.
func TestRuntimeMatchesInterpreter(t *testing.T) {
	const items = 5
	wantResults, wantDB := oracleRun(t, items)

	solvers := map[string]solver.Solver{
		"mincut": &solver.MinCutSolver{},
		"bnb":    &solver.BranchBound{MaxNodes: 80},
		"greedy": &solver.Greedy{},
	}
	for solverName, sv := range solvers {
		for _, frac := range []float64{0, 0.1, 0.3, 0.5, 0.8, 1.0} {
			for _, noReorder := range []bool{false, true} {
				name := fmt.Sprintf("%s/budget=%.1f/noreorder=%v", solverName, frac, noReorder)
				t.Run(name, func(t *testing.T) {
					sys := profiledSystem(t, items)
					sys.Solver = sv
					sys.NoReorder = noReorder
					part, err := sys.PartitionAt(frac)
					if err != nil {
						t.Fatalf("partition: %v", err)
					}
					db := orderSchema(t, items)
					dep := part.Deploy(db, runtime.Options{})
					oid, err := dep.Client.NewObject("Order", val.IntV(7))
					if err != nil {
						t.Fatalf("NewObject: %v", err)
					}
					r1, err := dep.Client.CallEntry("Order.placeOrder", oid, val.IntV(3), val.DoubleV(0.9))
					if err != nil {
						t.Fatalf("placeOrder: %v\npyxil:\n%s", err, part.PyxIL.String())
					}
					r2, err := dep.Client.CallEntry("Order.lastRealCost", oid)
					if err != nil {
						t.Fatalf("lastRealCost: %v", err)
					}
					if !r1.Equal(wantResults[0]) || !r2.Equal(wantResults[1]) {
						t.Errorf("results = %v,%v want %v,%v\npyxil:\n%s",
							r1, r2, wantResults[0], wantResults[1], part.PyxIL.String())
					}
					if !snapshotsEqual(db.Snapshot(), wantDB) {
						t.Errorf("database state diverged\npyxil:\n%s", part.PyxIL.String())
					}
				})
			}
		}
	}
}

// TestBudgetZeroIsClientSide: zero budget degenerates to the JDBC-like
// partition — no statements on the database, no control transfers, one
// database round trip per operation (paper §4.3).
func TestBudgetZeroIsClientSide(t *testing.T) {
	sys := profiledSystem(t, 5)
	part, err := sys.Partition(0)
	if err != nil {
		t.Fatal(err)
	}
	if part.Report.DBNodes != 0 {
		t.Errorf("DBNodes = %d, want 0", part.Report.DBNodes)
	}
	db := orderSchema(t, 5)
	dep := part.Deploy(db, runtime.Options{})
	oid, err := dep.Client.NewObject("Order", val.IntV(7))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dep.Client.CallEntry("Order.placeOrder", oid, val.IntV(3), val.DoubleV(0.9)); err != nil {
		t.Fatal(err)
	}
	ctl, dbWire := dep.WireStats()
	if ctl.Calls != 0 {
		t.Errorf("control transfers = %d, want 0", ctl.Calls)
	}
	// getCosts query + 5 inserts + 1 update = 7 DB round trips.
	if dbWire.Calls != 7 {
		t.Errorf("db round trips = %d, want 7", dbWire.Calls)
	}
}

// TestHighBudgetIsStoredProcedure: with a full budget the partition
// behaves like the Manual stored-procedure implementation — database
// operations run colocated (no per-op round trips) and the whole
// transaction costs a handful of control transfers.
func TestHighBudgetIsStoredProcedure(t *testing.T) {
	sys := profiledSystem(t, 5)
	part, err := sys.PartitionAt(1.0)
	if err != nil {
		t.Fatal(err)
	}
	if part.Report.DBNodes == 0 {
		t.Fatalf("expected statements on the DB, got none: %s", part.Describe())
	}
	db := orderSchema(t, 5)
	dep := part.Deploy(db, runtime.Options{})
	oid, err := dep.Client.NewObject("Order", val.IntV(7))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dep.Client.CallEntry("Order.placeOrder", oid, val.IntV(3), val.DoubleV(0.9)); err != nil {
		t.Fatal(err)
	}
	ctl, dbWire := dep.WireStats()
	if dbWire.Calls != 0 {
		t.Errorf("app-side db round trips = %d, want 0 (ops should be colocated)", dbWire.Calls)
	}
	if ctl.Calls == 0 || ctl.Calls > 4 {
		t.Errorf("control transfers = %d, want 1..4 (stored-procedure-like)", ctl.Calls)
	}
	total := ctl.Calls + dbWire.Calls
	if total >= 7 {
		t.Errorf("round trips = %d, expected far fewer than JDBC's 7", total)
	}
}

// TestPyxILRendersPlacements checks the Fig. 3 artifacts: a mid-budget
// partition annotates statements with both :APP: and :DB: and inserts
// sync operations; the extreme budgets produce single-sided programs.
func TestPyxILRendersPlacements(t *testing.T) {
	sys := profiledSystem(t, 5)
	mixed := false
	var out string
	for _, frac := range []float64{0.3, 0.5, 0.6, 0.7, 0.8, 0.9} {
		mid, err := sys.PartitionAt(frac)
		if err != nil {
			t.Fatal(err)
		}
		out = mid.PyxIL.String()
		if strings.Contains(out, ":DB:") && strings.Contains(out, ":APP:") &&
			strings.Contains(out, "send") {
			mixed = true
			break
		}
	}
	if !mixed {
		t.Errorf("no intermediate budget produced a mixed partition with sync ops; last:\n%s", out)
	}

	low, err := sys.Partition(0)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(low.PyxIL.String(), ":DB: ") {
		t.Errorf("budget-0 PyxIL should have no :DB: statements")
	}
	high, err := sys.PartitionAt(1.0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(high.PyxIL.String(), ":DB:") {
		t.Errorf("full-budget PyxIL should place statements on :DB:")
	}
}

// TestGraphHasPaperEdgeKinds checks Fig. 4's ingredients exist for the
// running example: control, data and update edges, a pinned database
// code node, and the JDBC same-partition group.
func TestGraphHasPaperEdgeKinds(t *testing.T) {
	sys := profiledSystem(t, 5)
	g := sys.EnsureGraph()
	kinds := map[pdg.EdgeKind]int{}
	for _, e := range g.Edges {
		kinds[e.Kind]++
	}
	for _, k := range []pdg.EdgeKind{pdg.CtrlEdge, pdg.DataEdge, pdg.UpdateEdge, pdg.OutputEdge, pdg.AntiEdge} {
		if kinds[k] == 0 {
			t.Errorf("no %v edges in partition graph", k)
		}
	}
	if len(g.Groups) != 1 {
		t.Fatalf("groups = %d, want 1 (JDBC constraint)", len(g.Groups))
	}
	if len(g.Groups[0]) != 3 {
		t.Errorf("JDBC group size = %d, want 3 (query + 2 updates)", len(g.Groups[0]))
	}
	if g.Nodes[g.DBCodeID] == nil || g.Nodes[g.DBCodeID].Pin != pdg.DB {
		t.Error("database code node missing or not pinned to DB")
	}
	dot := g.DOT(nil)
	if !strings.Contains(dot, "digraph partition") {
		t.Error("DOT export malformed")
	}
}

// TestMonotoneRoundTrips: higher budgets must never need more total
// round trips than lower budgets on this workload.
func TestMonotoneRoundTrips(t *testing.T) {
	fracs := []float64{0, 0.3, 1.0}
	var trips []int64
	for _, f := range fracs {
		sys := profiledSystem(t, 8)
		part, err := sys.PartitionAt(f)
		if err != nil {
			t.Fatal(err)
		}
		db := orderSchema(t, 8)
		dep := part.Deploy(db, runtime.Options{})
		oid, err := dep.Client.NewObject("Order", val.IntV(7))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := dep.Client.CallEntry("Order.placeOrder", oid, val.IntV(3), val.DoubleV(0.9)); err != nil {
			t.Fatal(err)
		}
		ctl, dbWire := dep.WireStats()
		trips = append(trips, ctl.Calls+dbWire.Calls)
	}
	for i := 1; i < len(trips); i++ {
		if trips[i] > trips[i-1] {
			t.Errorf("round trips increased with budget: %v (fracs %v)", trips, fracs)
		}
	}
	if trips[len(trips)-1] >= trips[0] {
		t.Errorf("full budget (%d trips) should beat zero budget (%d trips)", trips[len(trips)-1], trips[0])
	}
}

// TestClientCloseReleasesAbandonedTxn: an APP-side session that errors
// mid-transaction (after taking an X row lock over the database wire)
// must release that lock when its client is closed, or every other
// session touching the row blocks forever.
func TestClientCloseReleasesAbandonedTxn(t *testing.T) {
	const src = `
class T {
    T() { }
    entry int poison(int d) {
        db.begin();
        db.update("UPDATE kv SET v = 99 WHERE k = 1");
        int x = 10 / d;
        db.commit();
        return x;
    }
    entry int write(int v) {
        return db.update("UPDATE kv SET v = ? WHERE k = 1", v);
    }
}
`
	sys := MustLoad(src)
	db := sqldb.Open()
	if err := ExecScript(db, "CREATE TABLE kv (k INT PRIMARY KEY, v INT); INSERT INTO kv VALUES (1, 7)"); err != nil {
		t.Fatal(err)
	}
	if err := sys.ProfileSynthetic(sqldb.Open()); err != nil {
		t.Fatal(err)
	}
	part, err := sys.PartitionAt(0) // all-APP: the txn runs over the db wire
	if err != nil {
		t.Fatal(err)
	}
	dep := part.Deploy(db, runtime.Options{})

	c1 := dep.NewSession()
	oid, err := c1.NewObject("T")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.CallEntry("T.poison", oid, val.IntV(0)); err == nil {
		t.Fatal("poison should fail mid-transaction")
	}
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}

	c2 := dep.NewSession()
	oid2, err := c2.NewObject("T")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := c2.CallEntry("T.write", oid2, val.IntV(42))
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("write after close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("second session blocked on a lock the closed session abandoned")
	}
	if rows := db.Snapshot()["KV"]; len(rows) != 1 || rows[0][1].I != 42 {
		t.Fatalf("final row = %v, want [1 42]", rows)
	}
}
