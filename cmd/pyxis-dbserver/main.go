// Command pyxis-dbserver runs the database side of a real two-process
// Pyxis deployment: an in-memory database plus the DB-side Pyxis
// runtime, both served over TCP. It is the stand-in for "MySQL + the
// stored-procedure JVM" of the paper's testbed.
//
// It listens on two ports: -db serves the database wire protocol
// (what a JDBC-like client or an APP-side partition connects to), and
// -ctl serves Pyxis control transfers. Both ports speak the
// multiplexed session protocol: one connection from an application
// server carries any number of concurrent client sessions, each with
// its own heap, stack and transaction context, all sharing the one
// compiled program and database. The PyxJ source, schema and budget
// must match the ones pyxis-app uses so both sides compile the
// identical partition.
//
// With -dynamic it serves BOTH the -budget and -low-budget partitions
// at once behind a dual session manager (the session ID's tag byte
// selects the deployment) and piggy-backs a load report — CPU proxy,
// per-session queue depth, lock-wait rate — on every mux reply, so a
// pyxis-app running -dynamic can switch partitionings per session as
// load moves (paper §6.3).
//
// With -max-sessions and/or -admit-high the server stops merely
// REPORTING saturation and starts refusing it: an admission controller
// gates session creation (and per-call queueing) on the concurrent
// session cap and on the same blended load signal the reports carry,
// with hysteresis (-admit-high enter / -admit-low leave) so admission
// doesn't flap. Refused work is shed with the typed overload reply,
// which every pyxis-app backoff path already retries. Note that a
// -dynamic pyxis-app client holds a PAIR of control sessions (high- +
// low-budget); the controller has no notion of pairing, so a cap
// between N+1 and 2N-1 for N dynamic clients can leave every client
// holding its first session while shed on its second — size
// -max-sessions at 2x the intended dynamic client count.
//
// With -shard i/N the process declares itself shard i of an N-server
// shared-nothing tier: each shard runs its own database, lock manager,
// runtime peers, load monitor and admission controller — nothing is
// shared between shard processes, which is the whole point. The flag
// is the deployment contract, not a behavior switch: the server stays
// shard-unaware by design, the -schema script loads only this shard's
// slice of the data, and a pyxis-app started with matching -db/-ctl
// address lists routes every session to its home shard by partition
// key (runtime.ShardMap). The database port also serves the live-
// rebalancing control plane (fence / adopt / release migration
// frames), so an external runtime.Migrator can move warehouse ranges
// between shard processes without restarting them.
//
// Usage:
//
//	pyxis-dbserver -src order.pyxj -budget 1.0 -schema schema.sql \
//	    -db :7001 -ctl :7002 [-dynamic -low-budget 0] \
//	    [-max-sessions 256] [-admit-high 85 -admit-low 60] \
//	    [-shard 0/4]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"

	"pyxis"
	"pyxis/internal/dbapi"
	"pyxis/internal/pdg"
	"pyxis/internal/rpc"
	"pyxis/internal/runtime"
	"pyxis/internal/sqldb"
)

func main() {
	var (
		srcPath = flag.String("src", "", "PyxJ source file (required)")
		budget  = flag.Float64("budget", 1.0, "budget fraction used to generate the partition")
		schema  = flag.String("schema", "", "file with ';'-separated SQL statements to initialize the database")
		dbAddr  = flag.String("db", ":7001", "database wire protocol listen address")
		ctlAddr = flag.String("ctl", ":7002", "Pyxis control-transfer listen address")
		dynamic = flag.Bool("dynamic", false,
			"serve BOTH the -budget and -low-budget partitions for dynamic switching and piggy-back load reports on every reply")
		lowBudget   = flag.Float64("low-budget", 0, "budget fraction of the low-CPU partition served alongside -budget with -dynamic")
		maxSessions = flag.Int("max-sessions", 0,
			"cap on concurrently admitted control sessions (0 = unlimited; a -dynamic client holds TWO control sessions, so size the cap at 2x the intended client count)")
		admitHigh = flag.Float64("admit-high", 0, "blended load percent above which new sessions are refused (0 disables the load gate)")
		admitLow  = flag.Float64("admit-low", 0, "blended load percent below which admission resumes (default admit-high - 25)")
		shardSlot = flag.String("shard", "",
			"shard slot \"i/n\" this server owns in an n-shard shared-nothing tier (load only this shard's data via -schema; empty = unsharded)")
	)
	flag.Parse()
	if *srcPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	shardDesc := ""
	if *shardSlot != "" {
		shard, shards, err := runtime.ParseShardSlot(*shardSlot)
		if err != nil {
			fatal(err)
		}
		shardDesc = fmt.Sprintf(" shard=%d/%d", shard, shards)
	}

	src, err := os.ReadFile(*srcPath)
	if err != nil {
		fatal(err)
	}
	sys, err := pyxis.Load(string(src))
	if err != nil {
		fatal(err)
	}
	db := sqldb.Open()
	if *schema != "" {
		ddl, err := os.ReadFile(*schema)
		if err != nil {
			fatal(err)
		}
		if err := pyxis.ExecScript(db, string(ddl)); err != nil {
			fatal(err)
		}
	}
	profDB := sqldb.Open()
	if *schema != "" {
		ddl, _ := os.ReadFile(*schema)
		if err := pyxis.ExecScript(profDB, string(ddl)); err != nil {
			fatal(err)
		}
	}
	if err := sys.ProfileSynthetic(profDB); err != nil {
		fatal(err)
	}
	part, err := sys.PartitionAt(*budget)
	if err != nil {
		fatal(err)
	}

	// One shared DB-side runtime peer hosts every control-transfer
	// session; the SessionManager gives each session its own heap,
	// stack and database connection. With -dynamic a second peer
	// serves the low-budget partition behind the same manager —
	// sessions tagged rpc.SessionTag = runtime.TagLowBudget route to
	// it — and a load monitor piggy-backs the server's saturation
	// signal (CPU proxy, per-session queue depth, lock-wait rate) on
	// every reply of both ports for the app side's switcher EWMA.
	// Everything is assembled before either listener starts, so the
	// very first connection accepted already carries reports.
	dbPeer := runtime.NewPeer(part.Compiled, pdg.DB, os.Stdout)
	newConn := func() dbapi.Conn { return dbapi.NewLocal(db) }
	newMgr := func() rpc.SessionHandlers { return runtime.NewSessionManager(dbPeer, newConn) }
	mon := runtime.NewLoadMonitor(db)
	var muxCfg rpc.MuxServeConfig
	dynDesc := ""
	if *dynamic {
		lowPart, err := sys.PartitionAt(*lowBudget)
		if err != nil {
			fatal(err)
		}
		lowPeer := runtime.NewPeer(lowPart.Compiled, pdg.DB, os.Stdout)
		newMgr = func() rpc.SessionHandlers { return runtime.NewDualSessionManager(dbPeer, lowPeer, newConn) }
		muxCfg.Load = mon.Source()
		dynDesc = fmt.Sprintf(" low-partition={%s}", lowPart.Describe())
	}

	// Admission control: one controller for the control port (see the
	// listener wiring below for why only that port), with the session
	// cap and the hysteretic load gate server-wide across its
	// connections. The load gate reads the same monitor the -dynamic
	// reports ride.
	admDesc := ""
	if *maxSessions > 0 || *admitHigh > 0 {
		admCfg := runtime.AdmissionConfig{MaxSessions: *maxSessions}
		gateMon := (*runtime.LoadMonitor)(nil) // cap-only unless -admit-high
		if *admitHigh > 0 {
			admCfg.HighLoad = *admitHigh
			admCfg.LowLoad = *admitLow
			if admCfg.LowLoad <= 0 {
				admCfg.LowLoad = *admitHigh - 25
				if admCfg.LowLoad < *admitHigh/2 {
					admCfg.LowLoad = *admitHigh / 2
				}
			}
			gateMon = mon
		}
		adm := runtime.NewAdmissionController(gateMon, admCfg)
		muxCfg.Admission = adm
		admDesc = fmt.Sprintf(" admission={max-sessions=%d admit-high=%.0f admit-low=%.0f}",
			*maxSessions, admCfg.HighLoad, admCfg.LowLoad)
		if *admitHigh <= 0 {
			admDesc = fmt.Sprintf(" admission={max-sessions=%d}", *maxSessions)
		}
	}

	// Both ports speak the multiplexed protocol: one TCP connection
	// from an app server carries any number of concurrent sessions.
	// Session IDs are connection-scoped, so each accepted connection
	// gets its own handler registry.
	//
	// Admission gates ONLY the control port: a logical client is
	// admitted (or refused) at its session boundary, before any work
	// starts. The database port serves statements of already-admitted
	// transactions — shedding there would abort work the server chose
	// to accept, and a client needing one slot on each port could
	// otherwise starve against a shared cap.
	//
	// The database port also plays 2PC participant for cross-shard
	// transactions. The participant is ONE per server, shared by every
	// accepted connection: a coordinator's commit/abort frame may
	// arrive on a different connection than the prepare (app-side
	// pools stripe sessions across connections), and a prepared
	// transaction must be resolvable from any of them.
	part2pc := dbapi.NewParticipant(0, nil)
	dbMuxCfg := muxCfg
	dbMuxCfg.Admission = nil
	dbSrv, err := rpc.NewMuxServerConfig(*dbAddr, func() rpc.SessionHandlers {
		return dbapi.MuxHandlersTxn(db, part2pc)
	}, dbMuxCfg)
	if err != nil {
		fatal(err)
	}
	defer dbSrv.Close()
	ctlSrv, err := rpc.NewMuxServerConfig(*ctlAddr, newMgr, muxCfg)
	if err != nil {
		fatal(err)
	}
	defer ctlSrv.Close()

	// The db wire always speaks the migration control plane (the
	// handlers are the same dbapi mux set the migrator fences through);
	// say so at startup so an operator wiring up a rebalance knows this
	// build can be a migration source or destination.
	fmt.Printf("pyxis-dbserver: db=%s ctl=%s%s dynamic=%v migration=fence/adopt/release partition={%s}%s%s\n",
		dbSrv.Addr(), ctlSrv.Addr(), shardDesc, *dynamic, part.Describe(), dynDesc, admDesc)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pyxis-dbserver:", err)
	os.Exit(1)
}
