// Command pyxis-dbserver runs the database side of a real two-process
// Pyxis deployment: an in-memory database plus the DB-side Pyxis
// runtime, both served over TCP. It is the stand-in for "MySQL + the
// stored-procedure JVM" of the paper's testbed.
//
// It listens on two ports: -db serves the database wire protocol
// (what a JDBC-like client or an APP-side partition connects to), and
// -ctl serves Pyxis control transfers. Both ports speak the
// multiplexed session protocol: one connection from an application
// server carries any number of concurrent client sessions, each with
// its own heap, stack and transaction context, all sharing the one
// compiled program and database. The PyxJ source, schema and budget
// must match the ones pyxis-app uses so both sides compile the
// identical partition.
//
// Usage:
//
//	pyxis-dbserver -src order.pyxj -budget 1.0 -schema schema.sql \
//	    -db :7001 -ctl :7002
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"

	"pyxis"
	"pyxis/internal/dbapi"
	"pyxis/internal/pdg"
	"pyxis/internal/rpc"
	"pyxis/internal/runtime"
	"pyxis/internal/sqldb"
)

func main() {
	var (
		srcPath = flag.String("src", "", "PyxJ source file (required)")
		budget  = flag.Float64("budget", 1.0, "budget fraction used to generate the partition")
		schema  = flag.String("schema", "", "file with ';'-separated SQL statements to initialize the database")
		dbAddr  = flag.String("db", ":7001", "database wire protocol listen address")
		ctlAddr = flag.String("ctl", ":7002", "Pyxis control-transfer listen address")
	)
	flag.Parse()
	if *srcPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	src, err := os.ReadFile(*srcPath)
	if err != nil {
		fatal(err)
	}
	sys, err := pyxis.Load(string(src))
	if err != nil {
		fatal(err)
	}
	db := sqldb.Open()
	if *schema != "" {
		ddl, err := os.ReadFile(*schema)
		if err != nil {
			fatal(err)
		}
		if err := pyxis.ExecScript(db, string(ddl)); err != nil {
			fatal(err)
		}
	}
	profDB := sqldb.Open()
	if *schema != "" {
		ddl, _ := os.ReadFile(*schema)
		if err := pyxis.ExecScript(profDB, string(ddl)); err != nil {
			fatal(err)
		}
	}
	if err := sys.ProfileSynthetic(profDB); err != nil {
		fatal(err)
	}
	part, err := sys.PartitionAt(*budget)
	if err != nil {
		fatal(err)
	}

	// Both ports speak the multiplexed protocol: one TCP connection
	// from an app server carries any number of concurrent sessions.
	// Session IDs are connection-scoped, so each accepted connection
	// gets its own handler registry.
	dbSrv, err := rpc.NewMuxServer(*dbAddr, func() rpc.SessionHandlers {
		return dbapi.MuxHandlers(db)
	})
	if err != nil {
		fatal(err)
	}
	defer dbSrv.Close()

	// One shared DB-side runtime peer hosts every control-transfer
	// session; the SessionManager gives each session its own heap,
	// stack and database connection.
	dbPeer := runtime.NewPeer(part.Compiled, pdg.DB, os.Stdout)
	ctlSrv, err := rpc.NewMuxServer(*ctlAddr, func() rpc.SessionHandlers {
		return runtime.NewSessionManager(dbPeer, func() dbapi.Conn { return dbapi.NewLocal(db) })
	})
	if err != nil {
		fatal(err)
	}
	defer ctlSrv.Close()

	fmt.Printf("pyxis-dbserver: db=%s ctl=%s partition={%s}\n",
		dbSrv.Addr(), ctlSrv.Addr(), part.Describe())
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pyxis-dbserver:", err)
	os.Exit(1)
}
