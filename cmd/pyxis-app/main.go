// Command pyxis-app runs the application side of a real two-process
// Pyxis deployment: it compiles the same partition as pyxis-dbserver,
// connects to its database and control-transfer ports over TCP, and
// invokes an entry method with the given scalar arguments.
//
// Usage (after starting pyxis-dbserver with the same -src/-schema/-budget):
//
//	pyxis-app -src order.pyxj -budget 1.0 -schema schema.sql \
//	    -db localhost:7001 -ctl localhost:7002 \
//	    -new Order -args 7 -call Order.placeOrder -callargs 3,0.9
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"pyxis"
	"pyxis/internal/dbapi"
	"pyxis/internal/pdg"
	"pyxis/internal/rpc"
	"pyxis/internal/runtime"
	"pyxis/internal/sqldb"
	"pyxis/internal/val"
)

func main() {
	var (
		srcPath  = flag.String("src", "", "PyxJ source file (required)")
		budget   = flag.Float64("budget", 1.0, "budget fraction (must match pyxis-dbserver)")
		schema   = flag.String("schema", "", "schema file (must match pyxis-dbserver; used only for profiling)")
		dbAddr   = flag.String("db", "localhost:7001", "database server wire address")
		ctlAddr  = flag.String("ctl", "localhost:7002", "control-transfer server address")
		newClass = flag.String("new", "", "class to instantiate (required)")
		ctorArgs = flag.String("args", "", "comma-separated constructor arguments")
		call     = flag.String("call", "", "entry method Class.method to invoke (required)")
		callArgs = flag.String("callargs", "", "comma-separated entry arguments")
	)
	flag.Parse()
	if *srcPath == "" || *newClass == "" || *call == "" {
		flag.Usage()
		os.Exit(2)
	}

	src, err := os.ReadFile(*srcPath)
	if err != nil {
		fatal(err)
	}
	sys, err := pyxis.Load(string(src))
	if err != nil {
		fatal(err)
	}
	profDB := sqldb.Open()
	if *schema != "" {
		ddl, err := os.ReadFile(*schema)
		if err != nil {
			fatal(err)
		}
		if err := pyxis.ExecScript(profDB, string(ddl)); err != nil {
			fatal(err)
		}
	}
	if err := sys.ProfileSynthetic(profDB); err != nil {
		fatal(err)
	}
	part, err := sys.PartitionAt(*budget)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("pyxis-app: partition {%s}\n", part.Describe())

	dbWire, err := rpc.Dial(*dbAddr)
	if err != nil {
		fatal(fmt.Errorf("dial db: %w", err))
	}
	defer dbWire.Close()
	ctlWire, err := rpc.Dial(*ctlAddr)
	if err != nil {
		fatal(fmt.Errorf("dial ctl: %w", err))
	}
	defer ctlWire.Close()

	peer := runtime.NewPeer(part.Compiled, pdg.App, dbapi.NewClient(dbWire), os.Stdout)
	client := &runtime.Client{Peer: peer, Remote: ctlWire}

	oid, err := client.NewObject(*newClass, parseArgs(*ctorArgs)...)
	if err != nil {
		fatal(err)
	}
	ret, err := client.CallEntry(*call, oid, parseArgs(*callArgs)...)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("pyxis-app: %s returned %s\n", *call, ret)
	ctl := ctlWire.Stats()
	db := dbWire.Stats()
	fmt.Printf("pyxis-app: control transfers=%d (%d B), app-side db round trips=%d (%d B)\n",
		ctl.Calls, ctl.BytesSent+ctl.BytesRecv, db.Calls, db.BytesSent+db.BytesRecv)
}

// parseArgs converts "7,0.9,true,hi" into scalar values.
func parseArgs(s string) []val.Value {
	if s == "" {
		return nil
	}
	var out []val.Value
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if i, err := strconv.ParseInt(part, 10, 64); err == nil {
			out = append(out, val.IntV(i))
		} else if f, err := strconv.ParseFloat(part, 64); err == nil {
			out = append(out, val.DoubleV(f))
		} else if b, err := strconv.ParseBool(part); err == nil {
			out = append(out, val.BoolV(b))
		} else {
			out = append(out, val.StrV(part))
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pyxis-app:", err)
	os.Exit(1)
}
