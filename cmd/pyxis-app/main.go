// Command pyxis-app runs the application side of a real two-process
// Pyxis deployment: it compiles the same partition as pyxis-dbserver,
// connects to its database and control-transfer ports over TCP, and
// invokes an entry method with the given scalar arguments.
//
// With -clients N it drives N concurrent sessions, each its own
// logical thread of control with its own object, multiplexed over a
// pool of -pool TCP connections per port (default 1 — the classic
// single-connection wire). With -pool > 1 each new session lands on
// the least-loaded connection and stays pinned there, removing the
// single connection's head-of-line at high client counts.
//
// With -dynamic (against a pyxis-dbserver also running -dynamic) each
// session holds a (high-budget, low-budget) deployment pair and routes
// every call off its shard's switcher EWMA, which is fed by the DB
// load reports piggy-backed on every reply (reports from EVERY pooled
// connection of a shard feed that shard's EWMA); server sheds surface
// as rpc.ErrOverloaded and are retried with jittered backoff —
// including admission refusals from a pyxis-dbserver running
// -max-sessions or -admit-high.
//
// Against a SHARDED DB tier, -db and -ctl take comma-separated address
// lists of equal length — entry i of each list is shard i, typically a
// pyxis-dbserver started with -shard i/N. Each client session picks
// its home shard by hashing its client index through runtime.ShardMap
// and opens every session (including the -dynamic low-budget pair) on
// that shard; load EWMAs are kept per shard, so one saturated shard
// switches its own sessions low without dragging its siblings.
//
// Usage (after starting pyxis-dbserver with the same -src/-schema/-budget):
//
//	pyxis-app -src order.pyxj -budget 1.0 -schema schema.sql \
//	    -db localhost:7001 -ctl localhost:7002 \
//	    -new Order -args 7 -call Order.placeOrder -callargs 3,0.9 \
//	    -clients 8 -n 100 [-pool 4] [-dynamic -low-budget 0]
//
// Sharded tier (one pyxis-dbserver per shard):
//
//	pyxis-app ... -db host1:7001,host2:7001 -ctl host1:7002,host2:7002
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"pyxis"
	"pyxis/internal/bench"
	"pyxis/internal/dbapi"
	"pyxis/internal/pdg"
	"pyxis/internal/rpc"
	"pyxis/internal/runtime"
	"pyxis/internal/sqldb"
	"pyxis/internal/val"
)

func main() {
	var (
		srcPath  = flag.String("src", "", "PyxJ source file (required)")
		budget   = flag.Float64("budget", 1.0, "budget fraction (must match pyxis-dbserver)")
		schema   = flag.String("schema", "", "schema file (must match pyxis-dbserver; used only for profiling)")
		dbAddr   = flag.String("db", "localhost:7001", "database server wire address(es); comma-separated, one per shard")
		ctlAddr  = flag.String("ctl", "localhost:7002", "control-transfer server address(es); comma-separated, one per shard")
		newClass = flag.String("new", "", "class to instantiate (required)")
		ctorArgs = flag.String("args", "", "comma-separated constructor arguments")
		call     = flag.String("call", "", "entry method Class.method to invoke (required)")
		callArgs = flag.String("callargs", "", "comma-separated entry arguments")
		clients  = flag.Int("clients", 1, "number of concurrent client sessions")
		repeat   = flag.Int("n", 1, "entry invocations per client")
		poolN    = flag.Int("pool", 1, "mux connections per port; sessions stripe onto the least-loaded one")
		dynamic  = flag.Bool("dynamic", false,
			"route each session between the -budget and -low-budget partitions off the DB's piggy-backed load reports (pyxis-dbserver must run -dynamic)")
		lowBudget  = flag.Float64("low-budget", 0, "low partition budget fraction (must match pyxis-dbserver -low-budget)")
		threshold  = flag.Float64("threshold", 40, "switcher load threshold percent")
		hysteresis = flag.Float64("hysteresis", 0, "switcher dead-band half-width percent")
	)
	flag.Parse()
	if *srcPath == "" || *newClass == "" || *call == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *clients < 1 || *repeat < 1 {
		fatal(fmt.Errorf("-clients and -n must be >= 1"))
	}

	src, err := os.ReadFile(*srcPath)
	if err != nil {
		fatal(err)
	}
	sys, err := pyxis.Load(string(src))
	if err != nil {
		fatal(err)
	}
	profDB := sqldb.Open()
	if *schema != "" {
		ddl, err := os.ReadFile(*schema)
		if err != nil {
			fatal(err)
		}
		if err := pyxis.ExecScript(profDB, string(ddl)); err != nil {
			fatal(err)
		}
	}
	if err := sys.ProfileSynthetic(profDB); err != nil {
		fatal(err)
	}
	part, err := sys.PartitionAt(*budget)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("pyxis-app: partition {%s}\n", part.Describe())
	var lowPart *pyxis.Partition
	if *dynamic {
		if lowPart, err = sys.PartitionAt(*lowBudget); err != nil {
			fatal(err)
		}
		fmt.Printf("pyxis-app: low partition {%s}\n", lowPart.Describe())
	}

	// One shard per -db/-ctl address pair (a single address is the
	// classic unsharded tier). Within each shard, a pool of -pool
	// multiplexed connections; every client session is a (db session,
	// ctl session) pair on its home shard, each pinned to whichever
	// pooled connection was least loaded when it was opened.
	dbAddrs := splitAddrs(*dbAddr)
	ctlAddrs := splitAddrs(*ctlAddr)
	if len(dbAddrs) != len(ctlAddrs) {
		fatal(fmt.Errorf("-db lists %d shards but -ctl lists %d (must match pairwise)", len(dbAddrs), len(ctlAddrs)))
	}
	shards := len(dbAddrs)
	dbMux, err := rpc.DialShardedPool(dbAddrs, *poolN)
	if err != nil {
		fatal(fmt.Errorf("dial db: %w", err))
	}
	defer dbMux.Close()
	ctlMux, err := rpc.DialShardedPool(ctlAddrs, *poolN)
	if err != nil {
		fatal(fmt.Errorf("dial ctl: %w", err))
	}
	defer ctlMux.Close()
	// No schema-aware partition key at this layer: each client session
	// hashes its index to a home shard and opens everything there.
	sc := runtime.NewShardedClient(runtime.ShardMap{Shards: shards})

	appPeer := runtime.NewPeer(part.Compiled, pdg.App, os.Stdout)
	ctorVals := parseArgs(*ctorArgs)
	callVals := parseArgs(*callArgs)

	// With -dynamic, every reply from a shard's DB server carries its
	// load sample; that shard's switcher folds them into the EWMA each
	// of its sessions consults before its next call. EWMAs are
	// per-shard — shard i's saturation never routes shard j's sessions.
	var appPeerLow *runtime.Peer
	var dyns []*runtime.DynamicClient
	if *dynamic {
		for i := 0; i < shards; i++ {
			sw := sc.Switcher(i)
			sw.Threshold = *threshold
			sw.Hysteresis = *hysteresis
		}
		ctlMux.SetOnLoad(sc.Observe)
		dbMux.SetOnLoad(sc.Observe)
		appPeerLow = runtime.NewPeer(lowPart.Compiled, pdg.App, os.Stdout)
		dyns = make([]*runtime.DynamicClient, *clients)
	}

	type result struct {
		ret   val.Value
		lats  []float64 // milliseconds
		sheds int64     // ErrOverloaded replies absorbed with backoff
		err   error
	}
	results := make([]result, *clients)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < *clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Home shard picked at session open under the CURRENT map
			// epoch; both wires (and the dynamic pair below) stay pinned
			// to it. If a rebalance publishes a newer map between the
			// pick and the open (epoch bump), the pin is re-validated
			// and re-homed before any call is issued.
			var dbT *rpc.MuxSession
			var shard int
			for {
				epoch := sc.MapEpoch()
				var err error
				dbT, shard, err = sc.OpenSession(dbMux, int64(i))
				if err != nil {
					results[i].err = err
					return
				}
				if sc.MapEpoch() == epoch && sc.VerifyHome(shard, int64(i)) == nil {
					break
				}
				_ = dbT.Close()
			}
			ctlT, err := ctlMux.Session(shard)
			if err != nil {
				results[i].err = err
				return
			}
			sess := appPeer.NewSession(dbapi.NewClient(dbT))
			client := runtime.NewClient(sess, ctlT)

			// newObject opens a session's receiver, absorbing admission
			// sheds from a gated server with jittered backoff (an
			// ErrOverloaded open left no server state behind; the retry
			// simply re-attempts admission).
			newObject := func(cl *runtime.Client) (val.OID, error) {
				var oid val.OID
				sheds, err := runtime.RetryOverloaded(0, func() error {
					var oerr error
					oid, oerr = cl.NewObject(*newClass, ctorVals...)
					return oerr
				})
				results[i].sheds += sheds
				return oid, err
			}

			// callOnce invokes the entry on the static client (with its
			// own jittered shed backoff), or routes through this
			// session's DynamicClient (which re-picks per attempt and
			// backs off on overload sheds internally).
			var callOnce func() (val.Value, error)
			if *dynamic {
				lowDbT, err := dbMux.Session(shard)
				if err != nil {
					results[i].err = err
					return
				}
				lowCtlT, err := ctlMux.TaggedSession(shard, runtime.TagLowBudget)
				if err != nil {
					results[i].err = err
					return
				}
				lowSess := appPeerLow.NewSession(dbapi.NewClient(lowDbT))
				lowClient := runtime.NewClient(lowSess, lowCtlT)
				dyn := &runtime.DynamicClient{High: client, Low: lowClient, Switcher: sc.Switcher(shard)}
				dyns[i] = dyn
				defer dyn.Close()
				oidHigh, err := newObject(client)
				if err != nil {
					results[i].err = err
					return
				}
				oidLow, err := newObject(lowClient)
				if err != nil {
					results[i].err = err
					return
				}
				callOnce = func() (val.Value, error) {
					// Entry-call sheds are tallied by the DynamicClient
					// itself; results[i].sheds keeps only the open-time
					// admission sheds.
					r, err := dyn.CallEntry(*call, oidHigh, oidLow, callVals...)
					return r.Val, err
				}
			} else {
				defer client.Close()
				oid, err := newObject(client)
				if err != nil {
					results[i].err = err
					return
				}
				callOnce = func() (val.Value, error) {
					var ret val.Value
					sheds, err := runtime.RetryOverloaded(0, func() error {
						var cerr error
						ret, cerr = client.CallEntry(*call, oid, callVals...)
						return cerr
					})
					results[i].sheds += sheds
					return ret, err
				}
			}
			for k := 0; k < *repeat; k++ {
				t0 := time.Now()
				ret, err := callOnce()
				if err != nil {
					results[i].err = err
					return
				}
				results[i].ret = ret
				results[i].lats = append(results[i].lats, float64(time.Since(t0).Microseconds())/1e3)
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	failed := 0
	var all []float64
	for i, r := range results {
		if r.err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "pyxis-app: session %d: %v\n", i, r.err)
			continue
		}
		all = append(all, r.lats...)
		if *clients == 1 {
			fmt.Printf("pyxis-app: %s returned %s\n", *call, r.ret)
		}
	}
	if *clients > 1 || *repeat > 1 {
		fmt.Printf("pyxis-app: %d sessions x %d calls in %v (%.1f txn/s)\n",
			*clients, *repeat, elapsed.Round(time.Millisecond),
			float64(len(all))/elapsed.Seconds())
		st := bench.Summarize(all)
		fmt.Printf("pyxis-app: latency mean=%.3fms p95=%.3fms max=%.3fms\n",
			st.MeanMs, st.P95Ms, st.MaxMs)
	}
	ctl := ctlMux.Stats()
	db := dbMux.Stats()
	fmt.Printf("pyxis-app: control transfers=%d (%d B), app-side db round trips=%d (%d B) shards=%d pool=%d conns/shard\n",
		ctl.Calls, ctl.BytesSent+ctl.BytesRecv, db.Calls, db.BytesSent+db.BytesRecv, shards, *poolN)
	var openSheds int64
	for i := range results {
		openSheds += results[i].sheds
	}
	if *dynamic {
		var low, high, sheds int64
		for _, d := range dyns {
			if d == nil {
				continue
			}
			l, h := d.Picks()
			low, high, sheds = low+l, high+h, sheds+d.Sheds()
		}
		share := 0.0
		if low+high > 0 {
			share = 100 * float64(low) / float64(low+high)
		}
		ewmas := make([]string, shards)
		for i := 0; i < shards; i++ {
			ewmas[i] = fmt.Sprintf("%.1f%%", sc.Load(i))
		}
		fmt.Printf("pyxis-app: dynamic mix low=%d high=%d (%.0f%% low) sheds=%d (+%d at open) ewma/shard=[%s] load-reports=%d\n",
			low, high, share, sheds, openSheds, strings.Join(ewmas, " "),
			ctlMux.LoadReports()+dbMux.LoadReports())
	} else if openSheds > 0 {
		fmt.Printf("pyxis-app: %d overload sheds absorbed with jittered backoff\n", openSheds)
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// splitAddrs splits a comma-separated shard address list, trimming
// whitespace and dropping empty entries.
func splitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// parseArgs converts "7,0.9,true,hi" into scalar values.
func parseArgs(s string) []val.Value {
	if s == "" {
		return nil
	}
	var out []val.Value
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if i, err := strconv.ParseInt(part, 10, 64); err == nil {
			out = append(out, val.IntV(i))
		} else if f, err := strconv.ParseFloat(part, 64); err == nil {
			out = append(out, val.DoubleV(f))
		} else if b, err := strconv.ParseBool(part); err == nil {
			out = append(out, val.BoolV(b))
		} else {
			out = append(out, val.StrV(part))
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pyxis-app:", err)
	os.Exit(1)
}
