// Command pyxisc is the Pyxis partitioning compiler CLI: it loads a
// PyxJ source file, profiles it against a workload script, solves the
// placement problem at one or more budgets, and prints the requested
// artifacts (PyxIL, partition graph DOT, execution blocks, reports).
//
// Profiles normally come from running the application; for CLI use a
// synthetic profile is built by invoking every entry method once with
// zero arguments against an empty database unless -schema provides
// DDL/DML to preload (semicolon-separated statements).
//
// Usage:
//
//	pyxisc -src order.pyxj -budget 0.5 -pyxil
//	pyxisc -src order.pyxj -dot > graph.dot
//	pyxisc -src order.pyxj -budget 0,0.5,1 -report
//	pyxisc -src order.pyxj -budget 0,0.5,1 -verify
//
// -verify runs the independent program verifier (internal/verify)
// over each budget's compiled blocks, pre- and post-fusion, printing
// every diagnostic with the offending block disassembled; any finding
// exits nonzero. CI runs it over every example program as a blocking
// step.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"pyxis"
	"pyxis/internal/compile"
	"pyxis/internal/interp"
	"pyxis/internal/sqldb"
	"pyxis/internal/val"
	"pyxis/internal/verify"
)

func main() {
	var (
		srcPath  = flag.String("src", "", "PyxJ source file (required)")
		budgets  = flag.String("budget", "1.0", "comma-separated budget fractions of total load")
		schema   = flag.String("schema", "", "file with ';'-separated SQL statements to preload the profiling database")
		showPyx  = flag.Bool("pyxil", false, "print the PyxIL program per budget")
		showDot  = flag.Bool("dot", false, "print the partition graph in Graphviz DOT")
		showBlk  = flag.Bool("blocks", false, "print the compiled execution blocks per budget (pre-fusion)")
		showFuse = flag.Bool("dump-fused", false, "print the fused superblock program per budget (with fusion statistics)")
		showRpt  = flag.Bool("report", true, "print the partition report per budget")
		showProf = flag.Bool("profile", false, "print the collected profile")
		doVerify = flag.Bool("verify", false, "run the independent verifier over each budget's blocks, pre- and post-fusion; exit nonzero on any finding")
	)
	flag.Parse()
	if *srcPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(*srcPath)
	if err != nil {
		fatal(err)
	}
	sys, err := pyxis.Load(string(src))
	if err != nil {
		fatal(err)
	}

	db := sqldb.Open()
	if *schema != "" {
		ddl, err := os.ReadFile(*schema)
		if err != nil {
			fatal(err)
		}
		sess := db.NewSession()
		for _, stmt := range strings.Split(string(ddl), ";") {
			stmt = strings.TrimSpace(stmt)
			if stmt == "" {
				continue
			}
			if _, err := sess.Exec(stmt); err != nil {
				fatal(fmt.Errorf("schema: %s: %w", stmt, err))
			}
		}
	}

	// Synthetic profile: call every entry method once with zero values.
	err = sys.ProfileWorkload(db, func(ip *interp.Interp) error {
		for _, m := range sys.Prog.EntryMethods() {
			obj, err := ip.NewObject(m.Class.Name)
			if err != nil {
				continue // class without nullary construction; skip
			}
			args := make([]val.Value, len(m.Params))
			for i, p := range m.Params {
				args[i] = p.Type.Zero()
			}
			if _, err := ip.CallEntry(m, obj, args...); err != nil {
				fmt.Fprintf(os.Stderr, "pyxisc: profiling %s: %v (profile may be partial)\n", m.QName(), err)
			}
		}
		return nil
	})
	if err != nil {
		fatal(err)
	}
	if *showProf {
		fmt.Println(sys.Profile.String())
	}
	if *showDot {
		fmt.Print(sys.EnsureGraph().DOT(nil))
	}
	fmt.Printf("partition graph: %s\n", sys.EnsureGraph().Stats())

	for _, bs := range strings.Split(*budgets, ",") {
		frac, err := strconv.ParseFloat(strings.TrimSpace(bs), 64)
		if err != nil {
			fatal(fmt.Errorf("bad budget %q: %w", bs, err))
		}
		part, err := sys.PartitionAt(frac)
		if err != nil {
			fatal(err)
		}
		if *showRpt {
			fmt.Printf("budget %.2f: %s\n", frac, part.Describe())
		}
		if *showPyx {
			fmt.Printf("--- PyxIL (budget %.2f) ---\n", frac)
			if err := part.WritePyxIL(os.Stdout); err != nil {
				fatal(err)
			}
		}
		// part.Compiled is post-fusion; both dump flags recompile from
		// the partition's PyxIL so -blocks shows the raw block program
		// and -dump-fused can report the fusion statistics.
		if *showBlk {
			raw, err := compile.Compile(part.PyxIL)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("--- execution blocks (budget %.2f) ---\n%s", frac, raw.Disassemble())
		}
		if *showFuse {
			fused, err := compile.Compile(part.PyxIL)
			if err != nil {
				fatal(err)
			}
			stats := compile.Fuse(fused)
			fmt.Printf("--- fused superblocks (budget %.2f, %s) ---\n%s", frac, stats, fused.Disassemble())
		}
		if *doVerify {
			// Recompile with the in-compile verification hook disabled so
			// findings are COLLECTED and printed with block context rather
			// than aborting inside Compile.
			raw, err := compile.Compile(part.PyxIL, compile.NoVerify())
			if err != nil {
				fatal(err)
			}
			bad := reportDiags(raw, verify.Diagnostics(raw), frac, "pre-fusion")
			compile.Fuse(raw)
			bad = reportDiags(raw, verify.Diagnostics(raw), frac, "post-fusion") || bad
			if bad {
				os.Exit(1)
			}
			fmt.Printf("budget %.2f: verify pre-fusion+post-fusion: OK (%d blocks)\n", frac, len(raw.Blocks))
		}
	}
}

// reportDiags prints verifier findings with the offending block
// disassembled for context, returning whether any were found.
func reportDiags(p *compile.Program, diags []verify.Diag, frac float64, phase string) bool {
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "pyxisc: budget %.2f: verify %s: %s\n", frac, phase, d)
		if d.Block != compile.NoBlock {
			for _, line := range strings.Split(strings.TrimRight(p.DisassembleBlock(d.Block), "\n"), "\n") {
				fmt.Fprintf(os.Stderr, "    %s\n", line)
			}
		}
	}
	return len(diags) > 0
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pyxisc:", err)
	os.Exit(1)
}
