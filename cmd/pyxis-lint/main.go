// Command pyxis-lint is the project's static-analysis multichecker:
// six go/analysis-style passes that machine-check the runtime's own
// concurrency invariants — and the health of their own suppression
// machinery (see internal/lint).
//
// It runs two ways:
//
//	pyxis-lint [-roster] [packages]     # standalone, tolerant types
//	go vet -vettool=$(which pyxis-lint) ./...   # vet driver, full types
//
// Standalone mode loads each package with the tolerant own-package
// type resolution (no export data needed); the vet -vettool mode
// speaks cmd/go's unit-checker protocol (-flags, -V=full, vet.cfg)
// and runs with complete type information from export data. CI runs
// the vettool form as a blocking step.
package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"

	"pyxis/internal/lint"
)

func main() {
	args := os.Args[1:]

	// Unit-checker protocol, in the order cmd/go exercises it.
	for _, a := range args {
		if strings.HasPrefix(a, "-V=") || a == "-V" {
			printVersion()
			return
		}
	}
	if len(args) == 1 && args[0] == "-flags" {
		// cmd/go interrogates the tool's analyzer flags; pyxis-lint
		// always runs its full roster, so there are none to declare.
		fmt.Println("[]")
		return
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		diags, err := lint.UnitCheck(args[0], lint.Analyzers())
		if err != nil {
			fmt.Fprintf(os.Stderr, "pyxis-lint: %v\n", err)
			os.Exit(1)
		}
		if len(diags) > 0 {
			for _, d := range diags {
				fmt.Fprintf(os.Stderr, "%s\n", d)
			}
			os.Exit(2)
		}
		return
	}

	// Standalone multichecker.
	fs := flag.NewFlagSet("pyxis-lint", flag.ExitOnError)
	roster := fs.Bool("roster", false, "print the analyzer roster and exit")
	noTests := fs.Bool("no-tests", false, "skip _test.go files")
	fs.Parse(args)

	if *roster {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, err := listPackageDirs(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pyxis-lint: %v\n", err)
		os.Exit(1)
	}
	failed := false
	for _, dir := range dirs {
		diags, err := lint.Check(dir, lint.CheckOptions{IncludeTests: !*noTests})
		if err != nil {
			fmt.Fprintf(os.Stderr, "pyxis-lint: %s: %v\n", dir, err)
			os.Exit(1)
		}
		for _, d := range diags {
			fmt.Println(d)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// printVersion implements -V=full: cmd/go keys its vet result cache
// on this line, so it embeds a content hash of the binary.
func printVersion() {
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			sum := sha256.Sum256(data)
			id = fmt.Sprintf("%x", sum[:12])
		}
	}
	fmt.Printf("pyxis-lint version %s\n", id)
}

// listPackageDirs expands package patterns to source directories via
// the go command.
func listPackageDirs(patterns []string) ([]string, error) {
	cmd := exec.Command("go", append([]string{"list", "-json=Dir"}, patterns...)...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %w", err)
	}
	seen := map[string]bool{}
	var dirs []string
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		var pkg struct{ Dir string }
		if err := dec.Decode(&pkg); err != nil {
			return nil, fmt.Errorf("go list output: %w", err)
		}
		if pkg.Dir != "" && !seen[pkg.Dir] {
			seen[pkg.Dir] = true
			dirs = append(dirs, pkg.Dir)
		}
	}
	return dirs, nil
}
