// Command pyxis-bench regenerates the paper's evaluation artifacts
// (Figs. 9–14 and the microbenchmarks) on the deterministic simulator.
//
// Usage:
//
//	pyxis-bench                 # quick scale, all experiments
//	pyxis-bench -full           # paper-scale sweeps (slower)
//	pyxis-bench -exp fig9,fig14 # subset
package main

import (
	"flag"
	"fmt"
	"os"
	goruntime "runtime"
	"strings"
	"time"

	"pyxis/internal/bench"
)

// jsonOut mirrors the -json flag: when set, the wall-clock experiments
// additionally write machine-readable BENCH_<experiment>.json files so
// the bench trajectory can be tracked across PRs.
var jsonOut bool

// saveJSON writes one experiment's data when -json is set.
func saveJSON(experiment string, data any, gatesSkipped ...string) {
	if !jsonOut {
		return
	}
	path, err := bench.SaveReport("", experiment, data, gatesSkipped...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pyxis-bench: %s: %v\n", experiment, err)
		os.Exit(1)
	}
	fmt.Printf("(wrote %s)\n", path)
}

// gateSkips renders the standard skipped-gate entry for a wall-clock
// speedup gate that did not run because the host cannot show parallel
// speedup (see the enforce conditions at each call site).
func gateSkips(enforce bool, gate string, clients int) []string {
	if enforce {
		return nil
	}
	return []string{fmt.Sprintf(
		"%s: needs >= 4 CPUs, >= 8 sessions, no race detector; have %d CPUs, %d sessions, race=%v",
		gate, goruntime.GOMAXPROCS(0), clients, bench.RaceEnabled())}
}

func main() {
	var (
		full    = flag.Bool("full", false, "run paper-scale sweeps (slower)")
		exps    = flag.String("exp", "fig9,fig10,fig11,fig12,fig13,fig14,micro1,parallel,tpcc-wall,dynamic-wall,pool-wall,shard-wall,rebalance-wall,interp-vs-vm", "comma-separated experiments")
		clients = flag.Int("clients", 16, "max concurrent sessions for the parallel experiments")
		txns    = flag.Int("txns", 200, "transactions per client for the parallel experiments")
		pool    = flag.Int("pool", 4, "mux connections per wire for the pool experiments")
		shards  = flag.Int("shards", 2, "shard servers for the shard-wall experiment")
		jsonFlg = flag.Bool("json", false, "also write machine-readable BENCH_<experiment>.json result files")
	)
	flag.Parse()
	jsonOut = *jsonFlg

	scale := bench.QuickScale()
	if *full {
		scale = bench.FullScale()
	}

	runners := map[string]func(bench.Scale) (*bench.Table, error){
		"fig9":  bench.Fig9,
		"fig10": bench.Fig10,
		"fig11": bench.Fig11,
		"fig12": bench.Fig12,
		"fig13": bench.Fig13,
		"fig14": bench.Fig14,
	}

	for _, name := range strings.Split(*exps, ",") {
		name = strings.TrimSpace(name)
		if name == "micro1" {
			runMicro1()
			continue
		}
		if name == "parallel" {
			runParallel(*clients, *txns)
			continue
		}
		if name == "tpcc-wall" {
			runTPCCWall(*clients, *txns)
			continue
		}
		if name == "dynamic-wall" {
			runDynamicWall(*clients, *txns)
			continue
		}
		if name == "pool-wall" {
			runPoolWall(*clients, *txns, *pool)
			continue
		}
		if name == "shard-wall" {
			runShardWall(*clients, *txns, *shards)
			continue
		}
		if name == "rebalance-wall" {
			runRebalanceWall(*clients, *txns, *shards)
			continue
		}
		if name == "interp-vs-vm" {
			runInterpVsVM(*clients, *txns)
			continue
		}
		run, ok := runners[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "pyxis-bench: unknown experiment %q\n", name)
			os.Exit(2)
		}
		start := time.Now()
		table, err := run(scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pyxis-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(table)
		fmt.Printf("(%s generated in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}

// doublingSizes returns the 1,2,4,... sweep ending exactly at max.
func doublingSizes(max int) []int {
	var sizes []int
	for n := 1; n < max; n *= 2 {
		sizes = append(sizes, n)
	}
	return append(sizes, max)
}

// runParallel measures real (wall-clock) multi-session scaling: N
// goroutine clients multiplexed over one connection per wire against
// one shared DB-side runtime, for both the stored-procedure-like
// (budget 1.0) and client-side-query (budget 0) partitions. The
// speedup column is relative to the 1-client point — flat under a
// global engine mutex, rising with the sharded engine on parallel
// hardware.
func runParallel(maxClients, txns int) {
	if maxClients < 1 || txns < 1 {
		fmt.Fprintln(os.Stderr, "pyxis-bench: -clients and -txns must be >= 1")
		os.Exit(2)
	}
	fmt.Println("== Ledger: throughput vs clients over one multiplexed connection ==")
	byBudget := map[string][]*bench.ParallelResult{}
	for _, budget := range []float64{1.0, 0} {
		part, err := bench.ParallelPartition(budget)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pyxis-bench: parallel:", err)
			os.Exit(1)
		}
		fmt.Printf("budget %.1f: {%s}\n", budget, part.Describe())
		results, err := bench.RunScaling(part,
			bench.ParallelCfg{Txns: txns, ShareEvery: 8, TCP: true}, doublingSizes(maxClients))
		if err != nil {
			fmt.Fprintln(os.Stderr, "pyxis-bench: parallel:", err)
			os.Exit(1)
		}
		fmt.Println(bench.ScalingReport(results))
		byBudget[fmt.Sprintf("budget_%.1f", budget)] = results
	}
	saveJSON("parallel", byBudget)
	fmt.Println()
}

// runTPCCWall runs the wall-clock TPC-C NewOrder/Payment mix (the live
// counterpart of Figs. 9-11) and audits the consistency invariants
// after each point.
func runTPCCWall(maxClients, txns int) {
	if maxClients < 1 || txns < 1 {
		fmt.Fprintln(os.Stderr, "pyxis-bench: -clients and -txns must be >= 1")
		os.Exit(2)
	}
	cfg := bench.DefaultTPCC()
	part, err := bench.TPCCParallelPartition(cfg, 1.0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pyxis-bench: tpcc-wall:", err)
		os.Exit(1)
	}
	fmt.Println("== TPC-C wall clock: NewOrder/Payment mix, shared sharded engine ==")
	fmt.Printf("budget 1.0: {%s}\n", part.Describe())
	var results []*bench.TPCCParallelResult
	for _, n := range doublingSizes(maxClients) {
		res, db, err := bench.RunParallelTPCC(part, cfg, bench.TPCCParallelCfg{
			Clients: n, Txns: txns, PaymentEvery: 3, TCP: true,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "pyxis-bench: tpcc-wall:", err)
			os.Exit(1)
		}
		fmt.Println("  " + res.String())
		if violations := bench.CheckTPCCInvariants(db, cfg); len(violations) > 0 {
			for _, v := range violations {
				fmt.Fprintln(os.Stderr, "pyxis-bench: tpcc-wall: INVARIANT VIOLATED:", v)
			}
			os.Exit(1)
		}
		results = append(results, res)
	}
	saveJSON("tpcc-wall", results)
	fmt.Println()
}

// runDynamicWall runs live dynamic switching (the wall-clock Fig. 11):
// both TPC-C partitionings deployed at once behind one dual session
// manager, DB load reports piggy-backed on every mux reply, and every
// session routing independently off the shared EWMA while the forced
// load ramps idle -> spike -> recover. -txns is split evenly across
// the three phases.
func runDynamicWall(clients, txns int) {
	if clients < 1 || txns < 1 {
		fmt.Fprintln(os.Stderr, "pyxis-bench: -clients and -txns must be >= 1")
		os.Exit(2)
	}
	perPhase := txns / 3
	if perPhase < 1 {
		perPhase = 1
	}
	cfg := bench.DefaultTPCC()
	high, err := bench.TPCCParallelPartition(cfg, 1.0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pyxis-bench: dynamic-wall:", err)
		os.Exit(1)
	}
	low, err := bench.TPCCParallelPartition(cfg, 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pyxis-bench: dynamic-wall:", err)
		os.Exit(1)
	}
	fmt.Println("== TPC-C wall clock: dynamic switching under a forced load ramp ==")
	fmt.Printf("high budget: {%s}\nlow budget:  {%s}\n", high.Describe(), low.Describe())
	res, db, err := bench.RunParallelDynamic(high, low, cfg, bench.DynamicCfg{
		Clients: clients, PaymentEvery: 3, TCP: true,
		Phases: bench.DefaultDynamicRamp(perPhase),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "pyxis-bench: dynamic-wall:", err)
		os.Exit(1)
	}
	fmt.Println(res)
	// The smoke contract: the ramp must actually route. A switcher that
	// never picks low under the spike (e.g. lost load reports) is a
	// silent regression even when every transaction commits.
	if spike := res.Phases[1]; spike.LowPicks == 0 {
		fmt.Fprintf(os.Stderr, "pyxis-bench: dynamic-wall: spike phase never routed low-budget (EWMA %.1f, %d reports)\n",
			spike.EWMA, res.Reports)
		os.Exit(1)
	}
	if violations := bench.CheckTPCCInvariants(db, cfg); len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "pyxis-bench: dynamic-wall: INVARIANT VIOLATED:", v)
		}
		os.Exit(1)
	}
	saveJSON("dynamic-wall", res)
	fmt.Println()
}

// runPoolWall prices the single-connection head-of-line and proves
// graceful shedding — the two halves of the pool + admission PR:
//
//  1. the ledger workload at a fixed client count over 1 mux
//     connection vs a pool of -pool, with the N-conn speedup enforced
//     (>= 1.3x) on parallel hardware (>= 4 CPUs, >= 8 sessions, no
//     race detector — serialized hosts physically cannot show it);
//  2. the TPC-C mix flooding an admission-gated server with more
//     clients than admitted-session slots: the server must shed with
//     ErrOverloaded, every transaction must still commit, p95 must
//     stay bounded (queues cannot grow past the admitted population),
//     and the TPC-C invariants must hold.
func runPoolWall(clients, txns, pool int) {
	if clients < 1 || txns < 1 || pool < 2 {
		fmt.Fprintln(os.Stderr, "pyxis-bench: -clients/-txns must be >= 1 and -pool >= 2")
		os.Exit(2)
	}

	// Half 1: the head-of-line price. Mostly-read ledger calls keep the
	// per-call engine work small, so the wire — one read loop + one
	// write mutex per end — is what saturates first on the 1-conn
	// point.
	part, err := bench.ParallelPartition(1.0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pyxis-bench: pool-wall:", err)
		os.Exit(1)
	}
	fmt.Println("== Ledger: one mux connection vs a striped pool (fixed clients) ==")
	fmt.Printf("budget 1.0: {%s}\n", part.Describe())
	scaling, err := bench.RunPoolScaling(part,
		bench.PoolCfg{Clients: clients, Txns: txns, DepositEvery: 8, TCP: true}, []int{1, pool})
	if err != nil {
		fmt.Fprintln(os.Stderr, "pyxis-bench: pool-wall:", err)
		os.Exit(1)
	}
	fmt.Println(bench.PoolScalingReport(scaling))
	for _, r := range scaling {
		if r.FinalTotal != r.ExpectTotal {
			fmt.Fprintf(os.Stderr, "pyxis-bench: pool-wall: LOST UPDATES at conns=%d: %v != %v\n",
				r.Conns, r.FinalTotal, r.ExpectTotal)
			os.Exit(1)
		}
	}
	speedup := 0.0
	if scaling[0].Tput > 0 {
		speedup = scaling[len(scaling)-1].Tput / scaling[0].Tput
	}
	enforce := goruntime.GOMAXPROCS(0) >= 4 && clients >= 8 && !bench.RaceEnabled()
	if enforce && speedup < 1.3 {
		fmt.Fprintf(os.Stderr, "pyxis-bench: pool-wall: %d-conn pool only %.2fx of single-conn throughput (want >= 1.3x at %d sessions on %d CPUs)\n",
			pool, speedup, clients, goruntime.GOMAXPROCS(0))
		os.Exit(1)
	}
	if !enforce {
		fmt.Printf("(speedup %.2fx not enforced: needs >= 4 CPUs, >= 8 sessions, no race detector; have %d CPUs, %d sessions, race=%v)\n",
			speedup, goruntime.GOMAXPROCS(0), clients, bench.RaceEnabled())
	}

	// Half 2: graceful shed. A quarter of the clients get slots; the
	// rest are refused with the typed shed and must still finish.
	cfg := bench.DefaultTPCC()
	tpccPart, err := bench.TPCCParallelPartition(cfg, 1.0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pyxis-bench: pool-wall:", err)
		os.Exit(1)
	}
	maxSessions := clients / 4
	if maxSessions < 2 {
		maxSessions = 2
	}
	// Saturation is oversubscription by construction: run at least 3x
	// more clients than slots even when -clients is tiny, so the shed
	// assertion below is always satisfiable.
	satClients := clients
	if satClients < 3*maxSessions {
		satClients = 3 * maxSessions
	}
	satTxns := txns / 4
	if satTxns < 2 {
		satTxns = 2
	}
	satCfg := bench.PoolSatCfg{Clients: satClients, Txns: satTxns, Conns: pool,
		MaxSessions: maxSessions, PaymentEvery: 3, TCP: true}
	fmt.Println("\n== TPC-C: forced saturation against the admission-gated server ==")
	sat, db, err := bench.RunPoolSaturation(tpccPart, cfg, satCfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pyxis-bench: pool-wall:", err)
		os.Exit(1)
	}
	fmt.Println("  " + sat.String())
	if sat.TotalTxns != satCfg.Clients*satCfg.Txns {
		fmt.Fprintf(os.Stderr, "pyxis-bench: pool-wall: %d of %d transactions completed — shed work was DROPPED\n",
			sat.TotalTxns, satCfg.Clients*satCfg.Txns)
		os.Exit(1)
	}
	if sat.ClientSheds == 0 || sat.Admission.ShedSessions == 0 {
		fmt.Fprintf(os.Stderr, "pyxis-bench: pool-wall: server never shed despite %d clients over %d slots\n",
			satCfg.Clients, satCfg.MaxSessions)
		os.Exit(1)
	}
	// Bounded p95: with the population capped, per-transaction latency
	// must stay orders of magnitude under the run length — an
	// unbounded queue drives p95 toward the full elapsed time.
	if bound := 2000.0; sat.P95Ms > bound {
		fmt.Fprintf(os.Stderr, "pyxis-bench: pool-wall: p95 %.1fms exceeds the %.0fms saturation bound\n",
			sat.P95Ms, bound)
		os.Exit(1)
	}
	if violations := bench.CheckTPCCInvariants(db, cfg); len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "pyxis-bench: pool-wall: INVARIANT VIOLATED:", v)
		}
		os.Exit(1)
	}
	saveJSON("pool-wall", map[string]any{"scaling": scaling, "saturation": sat},
		gateSkips(enforce, "pool-wall speedup >= 1.3x", clients)...)
	fmt.Println()
}

// runShardWall prices the single DB server itself: the wall-clock
// TPC-C mix over real loopback TCP against 1 shard server vs -shards
// independent shard servers, each owning a disjoint warehouse range
// with its own database, lock manager and runtime — the shared-nothing
// scale-out rung after pool-wall's single-server connection pool. The
// mix is the full TPC-C spec mix: remote-warehouse Payments (15%) and
// remote-supply NewOrders (~10%) ride every point, and on the sharded
// point the ones that cross a shard boundary run as two-branch 2PC
// transactions with their own latency/commit class in the report. The
// N-shard speedup is enforced (>= 1.3x) on parallel hardware (>= 4
// CPUs, >= 8 sessions, no race detector), the cross-shard invariant
// aggregator — including the global c_balance-vs-w_ytd and
// s_ytd-vs-ol_quantity sums that bind the remote branches — must hold
// after every point (RunShardScaling exits non-zero otherwise), and
// the report is always written to BENCH_shard-wall.json so the
// scale-out trajectory is machine-comparable across PRs.
func runShardWall(clients, txns, shards int) {
	if clients < 1 || txns < 1 || shards < 2 {
		fmt.Fprintln(os.Stderr, "pyxis-bench: -clients/-txns must be >= 1 and -shards >= 2")
		os.Exit(2)
	}
	cfg := bench.DefaultTPCC()
	// Every shard must own at least two warehouses so intra-shard
	// variety survives the split; both sweep points use the same
	// (possibly grown) schema, so the comparison stays apples-to-apples.
	if cfg.Warehouses < 2*shards {
		cfg.Warehouses = 2 * shards
	}
	part, err := bench.TPCCParallelPartition(cfg, 1.0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pyxis-bench: shard-wall:", err)
		os.Exit(1)
	}
	fmt.Println("== TPC-C wall clock: one DB server vs a sharded shared-nothing tier ==")
	fmt.Printf("budget 1.0: {%s} warehouses=%d\n", part.Describe(), cfg.Warehouses)
	// Mostly-read mix (as in pool-wall): cheap lastOrder calls keep the
	// single server wire-bound, which is the serial resource sharding
	// multiplies; the writes — remote mix included — keep the invariant
	// aggregator honest.
	base := bench.ShardCfg{Clients: clients, Txns: txns, Conns: 1,
		WriteEvery: 8, PaymentEvery: 3, RemoteMix: true, TCP: true}
	results, err := bench.RunShardScaling(part, cfg, base, []int{1, shards})
	if err != nil {
		fmt.Fprintln(os.Stderr, "pyxis-bench: shard-wall:", err)
		os.Exit(1)
	}
	fmt.Println(bench.ShardScalingReport(results))
	last := results[len(results)-1]
	fmt.Printf("remote mix @%d shards: remote(pay=%d/%d no=%d/%d) 2pc(txns=%d commits=%d aborts=%d) lat(local mean=%.3fms p95=%.3fms | dist mean=%.3fms p95=%.3fms)\n",
		last.Shards, last.RemotePayments, last.Payments, last.RemoteNewOrders, last.NewOrders,
		last.DistTxns, last.DistCommits, last.DistAborts,
		last.LocalMeanMs, last.LocalP95Ms, last.DistMeanMs, last.DistP95Ms)
	// The spec remote rates must survive the drive: >= 1% remote
	// Payments (spec rolls 15%) and >= 5% remote NewOrders (spec ~10%),
	// gated on enough samples per class for the rate to be meaningful,
	// plus at least one genuinely cross-shard 2PC commit on the sharded
	// point.
	if last.Payments >= 30 {
		if rate := float64(last.RemotePayments) / float64(last.Payments); rate < 0.01 {
			fmt.Fprintf(os.Stderr, "pyxis-bench: shard-wall: remote Payment rate %.1f%% below the 1%% spec floor\n", rate*100)
			os.Exit(1)
		}
	}
	if last.NewOrders >= 30 {
		if rate := float64(last.RemoteNewOrders) / float64(last.NewOrders); rate < 0.05 {
			fmt.Fprintf(os.Stderr, "pyxis-bench: shard-wall: remote NewOrder rate %.1f%% below 5%% (spec ~10%%)\n", rate*100)
			os.Exit(1)
		}
	}
	if last.Shards >= 2 && last.RemotePayments+last.RemoteNewOrders >= 10 && last.DistCommits == 0 {
		fmt.Fprintf(os.Stderr, "pyxis-bench: shard-wall: %d remote transactions but no cross-shard 2PC commit\n",
			last.RemotePayments+last.RemoteNewOrders)
		os.Exit(1)
	}
	// Clients spread over WAREHOUSES (not shards), so full shard
	// coverage is only guaranteed once every warehouse has a client.
	if clients >= cfg.Warehouses {
		for s, n := range last.SessionsPerShard {
			if n == 0 {
				fmt.Fprintf(os.Stderr, "pyxis-bench: shard-wall: shard %d served no sessions: %v\n",
					s, last.SessionsPerShard)
				os.Exit(1)
			}
		}
	}
	speedup := 0.0
	if results[0].Tput > 0 {
		speedup = last.Tput / results[0].Tput
	}
	enforce := goruntime.GOMAXPROCS(0) >= 4 && clients >= 8 && !bench.RaceEnabled()
	if enforce && speedup < 1.3 {
		fmt.Fprintf(os.Stderr, "pyxis-bench: shard-wall: %d shards only %.2fx of single-server throughput (want >= 1.3x at %d sessions on %d CPUs)\n",
			shards, speedup, clients, goruntime.GOMAXPROCS(0))
		os.Exit(1)
	}
	if !enforce {
		fmt.Printf("(speedup %.2fx not enforced: needs >= 4 CPUs, >= 8 sessions, no race detector; have %d CPUs, %d sessions, race=%v)\n",
			speedup, goruntime.GOMAXPROCS(0), clients, bench.RaceEnabled())
	}
	// Unlike the -json-gated experiments, shard-wall always writes its
	// report: the scale-out number is the PR's acceptance artifact.
	path, err := bench.SaveReport("", "shard-wall", results,
		gateSkips(enforce, "shard-wall speedup >= 1.3x", clients)...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pyxis-bench: shard-wall:", err)
		os.Exit(1)
	}
	fmt.Printf("(wrote %s)\n", path)
	fmt.Println()
}

// runRebalanceWall prices live rebalancing: the Zipf-skewed TPC-C mix
// (warehouse 1, shard 0, is the hotspot) against a frozen shard map vs
// the same mix with the advisor live — at the halfway point it folds
// the observed per-warehouse counts into a co-access min-cut, the
// migrator fences/streams/2PC-cuts the chosen warehouses to the cold
// shard, and the router re-homes sessions on the epoch bump while the
// drivers keep running. Three gates ride every run: the live run must
// actually migrate, the cross-shard invariants must hold under the
// final override-carrying map (zero tolerance — a migration that loses
// or duplicates a row fails the bench), and the post-migration
// imbalance must land at or under 1.5. The wall-clock gate — post-
// migration throughput >= 1.2x the frozen baseline's same window — is
// enforced only on parallel hardware (>= 4 CPUs, >= 8 sessions, no
// race detector): with one connection per shard the hot shard's wire
// is the serial resource, and only a multi-core host can bank the
// freed capacity. The report always lands in
// BENCH_rebalance-wall.json with gates_skipped stating exactly which
// gates did not run.
func runRebalanceWall(clients, txns, shards int) {
	if clients < 1 || txns < 1 || shards < 2 {
		fmt.Fprintln(os.Stderr, "pyxis-bench: -clients/-txns must be >= 1 and -shards >= 2")
		os.Exit(2)
	}
	cfg := bench.DefaultTPCC()
	// Enough warehouses per shard that the donor has warm, movable
	// middle-rank warehouses under the Zipf skew (the rank-1 hotspot
	// alone usually exceeds the half-gap budget and must stay put).
	if cfg.Warehouses < 4*shards {
		cfg.Warehouses = 4 * shards
	}
	fmt.Println("== TPC-C wall clock: frozen shard map vs advisor-driven live rebalancing ==")
	fmt.Printf("zipf skew s=1.4 over %d warehouses, %d shards, hotspot on shard 0\n", cfg.Warehouses, shards)
	base := bench.RebalanceCfg{Clients: clients, Txns: txns, Shards: shards, Conns: 1}
	frozen, frozenDBs, frozenMap, err := bench.RunRebalance(cfg, base)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pyxis-bench: rebalance-wall: frozen:", err)
		os.Exit(1)
	}
	fmt.Println("frozen:", frozen)
	if v := bench.CheckShardInvariants(frozenDBs, cfg, frozenMap); len(v) > 0 {
		fmt.Fprintf(os.Stderr, "pyxis-bench: rebalance-wall: frozen-run invariants violated: %v\n", v)
		os.Exit(1)
	}
	liveCfg := base
	liveCfg.Live = true
	live, liveDBs, liveMap, err := bench.RunRebalance(cfg, liveCfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pyxis-bench: rebalance-wall: live:", err)
		os.Exit(1)
	}
	fmt.Println("live:  ", live)
	if v := bench.CheckShardInvariants(liveDBs, cfg, liveMap); len(v) > 0 {
		fmt.Fprintf(os.Stderr, "pyxis-bench: rebalance-wall: post-migration invariants violated: %v\n", v)
		os.Exit(1)
	}
	if live.Migrations < 1 {
		fmt.Fprintln(os.Stderr, "pyxis-bench: rebalance-wall: the advisor never migrated under the skew")
		os.Exit(1)
	}
	if live.ImbalanceAfter > 1.5 {
		fmt.Fprintf(os.Stderr, "pyxis-bench: rebalance-wall: post-migration imbalance %.2f > 1.5 (was %.2f)\n",
			live.ImbalanceAfter, live.ImbalanceBefore)
		os.Exit(1)
	}
	speedup := 0.0
	if frozen.PostTput > 0 {
		speedup = live.PostTput / frozen.PostTput
	}
	enforce := goruntime.GOMAXPROCS(0) >= 4 && clients >= 8 && !bench.RaceEnabled()
	if enforce && speedup < 1.2 {
		fmt.Fprintf(os.Stderr, "pyxis-bench: rebalance-wall: post-migration throughput only %.2fx of the frozen map (want >= 1.2x at %d sessions on %d CPUs)\n",
			speedup, clients, goruntime.GOMAXPROCS(0))
		os.Exit(1)
	}
	if !enforce {
		fmt.Printf("(post-migration speedup %.2fx not enforced: needs >= 4 CPUs, >= 8 sessions, no race detector; have %d CPUs, %d sessions, race=%v)\n",
			speedup, goruntime.GOMAXPROCS(0), clients, bench.RaceEnabled())
	}
	// Like shard-wall, the report is the PR's acceptance artifact:
	// always written, with the skipped gates machine-readable.
	path, err := bench.SaveReport("", "rebalance-wall",
		map[string]*bench.RebalanceResult{"frozen": frozen, "live": live},
		gateSkips(enforce, "rebalance-wall post-migration speedup >= 1.2x", clients)...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pyxis-bench: rebalance-wall:", err)
		os.Exit(1)
	}
	fmt.Printf("(wrote %s)\n", path)
	fmt.Println()
}

// runInterpVsVM prices the fused hot path: the wall-clock TPC-C mix
// through the seed pipeline (unfused blocks, version-0 full-slot
// transfers, string SQL, per-call frame allocation) vs the fused one
// (superblocks, live-slot delta transfers, prepared-statement wire,
// pooled frames), at the stored-procedure-like (1.0) and client-side
// (0) budgets.
//
// Enforcement, in the pool-wall/shard-wall idiom: the report is always
// written to BENCH_interp-vs-vm.json; the wall-clock speedup gate
// (>= 1.15x at budget 1.0) binds only on parallel hardware (>= 4 CPUs,
// >= 8 sessions, no race detector). The byte and allocation deltas are
// hardware-independent, so those bind everywhere: at budget 1.0 the
// fused pipeline must move fewer transfer bytes per transaction and
// allocate less per transaction than the seed.
func runInterpVsVM(clients, txns int) {
	if clients < 1 || txns < 1 {
		fmt.Fprintln(os.Stderr, "pyxis-bench: -clients and -txns must be >= 1")
		os.Exit(2)
	}
	cfg := bench.DefaultTPCC()
	fmt.Println("== TPC-C wall clock: seed pipeline (interp) vs fused hot path (vm) ==")
	points, err := bench.RunInterpVsVM(cfg,
		bench.TPCCParallelCfg{Clients: clients, Txns: txns, PaymentEvery: 3},
		[]float64{1.0, 0})
	if err != nil {
		fmt.Fprintln(os.Stderr, "pyxis-bench: interp-vs-vm:", err)
		os.Exit(1)
	}
	for _, p := range points {
		fmt.Println(p)
	}
	full := points[0] // budget 1.0: the point with DB-resident blocks and real transfers
	if full.Fused.BytesPerTxn >= full.Seed.BytesPerTxn {
		fmt.Fprintf(os.Stderr, "pyxis-bench: interp-vs-vm: fused pipeline moved %.1f transfer bytes/txn, seed %.1f — no wire savings\n",
			full.Fused.BytesPerTxn, full.Seed.BytesPerTxn)
		os.Exit(1)
	}
	if full.Fused.AllocsPerTxn >= full.Seed.AllocsPerTxn {
		fmt.Fprintf(os.Stderr, "pyxis-bench: interp-vs-vm: fused pipeline allocated %.1f objects/txn, seed %.1f — no allocation savings\n",
			full.Fused.AllocsPerTxn, full.Seed.AllocsPerTxn)
		os.Exit(1)
	}
	enforce := goruntime.GOMAXPROCS(0) >= 4 && clients >= 8 && !bench.RaceEnabled()
	if enforce && full.Speedup < 1.15 {
		fmt.Fprintf(os.Stderr, "pyxis-bench: interp-vs-vm: fused pipeline only %.2fx of seed wall clock (want >= 1.15x at %d sessions on %d CPUs)\n",
			full.Speedup, clients, goruntime.GOMAXPROCS(0))
		os.Exit(1)
	}
	if !enforce {
		fmt.Printf("(speedup %.2fx not enforced: needs >= 4 CPUs, >= 8 sessions, no race detector; have %d CPUs, %d sessions, race=%v)\n",
			full.Speedup, goruntime.GOMAXPROCS(0), clients, bench.RaceEnabled())
	}
	// Like shard-wall, the report is the PR's acceptance artifact: always
	// written, not -json-gated.
	path, err := bench.SaveReport("", "interp-vs-vm", points,
		gateSkips(enforce, "interp-vs-vm speedup >= 1.15x", clients)...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pyxis-bench: interp-vs-vm:", err)
		os.Exit(1)
	}
	fmt.Printf("(wrote %s)\n", path)
	fmt.Println()
}

// runMicro1 measures the real execution-block overhead (paper §7.3).
func runMicro1() {
	part, err := bench.Micro1Partition()
	if err != nil {
		fmt.Fprintln(os.Stderr, "pyxis-bench: micro1:", err)
		os.Exit(1)
	}
	const n = 20000
	start := time.Now()
	if _, err := bench.Micro1Pyxis(part, n); err != nil {
		fmt.Fprintln(os.Stderr, "pyxis-bench: micro1:", err)
		os.Exit(1)
	}
	pyx := time.Since(start)
	start = time.Now()
	bench.Micro1Native(n)
	nat := time.Since(start)
	fmt.Println("== Microbenchmark 1: execution-block overhead (single-sided linked list) ==")
	fmt.Printf("pyxis runtime: %v   native Go: %v   overhead: %.1fx\n", pyx, nat, float64(pyx)/float64(nat))
	fmt.Println("note: the paper measured ~6x against JVM-native code; a Go block interpreter vs compiled Go is a harsher baseline")
	fmt.Println()
}
