package pdg

import (
	"strings"
	"testing"

	"pyxis/internal/analysis"
	"pyxis/internal/dbapi"
	"pyxis/internal/interp"
	"pyxis/internal/profile"
	"pyxis/internal/source"
	"pyxis/internal/sqldb"
	"pyxis/internal/val"
)

const src = `
class C {
    int total;

    C() {
        total = 0;
    }

    entry int work(int n) {
        int s = 0;
        for (int i = 0; i < n; i++) {
            table t = db.query("SELECT v FROM kv WHERE k = ?", i % 3);
            s += t.getInt(0, 0);
        }
        total = s;
        sys.print("done", s);
        return s;
    }
}
`

func build(t *testing.T) (*source.Program, *Graph, *profile.Profile) {
	t.Helper()
	prog, err := source.Load(src)
	if err != nil {
		t.Fatal(err)
	}
	res := analysis.Run(prog)
	db := sqldb.Open()
	s := db.NewSession()
	if _, err := s.Exec("CREATE TABLE kv (k INT PRIMARY KEY, v INT)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := s.Exec("INSERT INTO kv VALUES (?, ?)", val.IntV(int64(i)), val.IntV(int64(i+10))); err != nil {
			t.Fatal(err)
		}
	}
	prof := profile.New()
	ip := interp.New(prog, dbapi.NewLocal(db))
	ip.Hooks = prof.Hooks()
	obj, err := ip.NewObject("C")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ip.CallEntry(prog.Method("C", "work"), obj, val.IntV(9)); err != nil {
		t.Fatal(err)
	}
	g := Build(res, prof, Options{})
	return prog, g, prof
}

func TestWeightsFollowProfile(t *testing.T) {
	prog, g, prof := build(t)
	// Loop-body statements executed 9 times weigh 9; the entry-only
	// statements weigh ~1.
	var loopNode, headNode *Node
	for id, s := range prog.Stmts {
		if as, ok := s.(*source.AssignStmt); ok && as.Op == source.AsnAdd {
			if v, ok := as.LHS.(*source.VarExpr); ok && v.Local.Name == "s" {
				loopNode = g.Nodes[id]
			}
		}
		if _, ok := s.(*source.WhileStmt); ok {
			headNode = g.Nodes[id]
		}
	}
	if loopNode == nil || headNode == nil {
		t.Fatal("fixture nodes missing")
	}
	if loopNode.Weight != 9 {
		t.Errorf("loop body weight = %v, want 9", loopNode.Weight)
	}
	if headNode.Weight != 10 {
		t.Errorf("loop head weight = %v, want 10 (9 iterations + exit check)", headNode.Weight)
	}
	_ = prof
}

func TestPinsAndGroups(t *testing.T) {
	prog, g, _ := build(t)
	if g.Nodes[g.DBCodeID].Pin != DB {
		t.Error("db code must pin DB")
	}
	if g.Nodes[g.AppClientID].Pin != App {
		t.Error("app client must pin APP")
	}
	for id, s := range prog.Stmts {
		if source.HasPrint(s) && g.Nodes[id].Pin != App {
			t.Error("print statements must pin APP")
		}
	}
	if len(g.Groups) != 0 {
		t.Errorf("groups = %v (a single db stmt needs no group)", g.Groups)
	}
}

func TestCutCostAndValidate(t *testing.T) {
	_, g, _ := build(t)
	allApp := Placement{}
	for id := range g.Nodes {
		allApp[id] = App
	}
	allApp[g.DBCodeID] = DB
	cut, load := g.CutCost(allApp)
	if load != 0 {
		t.Errorf("all-APP load = %v", load)
	}
	if cut <= 0 {
		t.Error("all-APP must cut the db-code edges")
	}
	if err := g.Validate(allApp); err != nil {
		t.Errorf("valid placement rejected: %v", err)
	}
	bad := Placement{}
	for id := range g.Nodes {
		bad[id] = App
	}
	if err := g.Validate(bad); err == nil {
		t.Error("placement violating the DB pin must be rejected")
	}
}

func TestDOTAndStats(t *testing.T) {
	_, g, _ := build(t)
	dot := g.DOT(nil)
	for _, want := range []string{"digraph partition", "database code", "application client"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
	if !strings.Contains(g.Stats(), "nodes=") {
		t.Error("stats malformed")
	}
}

func TestLocString(t *testing.T) {
	if App.String() != "APP" || DB.String() != "DB" || Unpinned.String() != "-" {
		t.Error("Loc strings")
	}
	p := Placement{}
	if p.Of(999) != App {
		t.Error("default placement should be App")
	}
}
