package pdg

import (
	"math/rand"

	"pyxis/internal/source"
)

// RandomAssign returns a placement mutator that places each field and
// each statement of every method on a seeded coin flip. It is the
// differential-test generator from the fusion work: the runtime's
// observational-equivalence property test sweeps it across seeds, and
// the verifier's fuzz harness compiles the same placements and demands
// every one verifies pre- and post-fusion. The mutator composes with a
// base placement (typically all-APP with the DB code node pinned DB).
func RandomAssign(seed int64) func(g *Graph, place Placement) {
	return func(g *Graph, place Placement) {
		rng := rand.New(rand.NewSource(seed))
		prog := g.Prog
		for id := range prog.Fields {
			if rng.Intn(2) == 0 {
				place[id] = DB
			}
		}
		for _, cl := range prog.Classes {
			for _, m := range cl.Methods {
				if rng.Intn(2) == 0 {
					place[m.EntryID] = DB
				}
				source.WalkMethodStmts(m, func(s source.Stmt) bool {
					if rng.Intn(2) == 0 {
						place[s.ID()] = DB
					}
					return true
				})
			}
		}
		// Coin flips must not override mandatory placements (console
		// output is pinned APP): the generator produces random *valid*
		// placements, which the verifier is entitled to accept.
		for id, n := range g.Nodes {
			if n.Pin != Unpinned {
				place[id] = n.Pin
			}
		}
	}
}
