// Package pdg builds the partition graph (paper §4.2): a program
// dependence graph over statements and fields augmented with edge
// weights that model the cost of satisfying each dependency remotely.
// Nodes carry the estimated server load of executing them on the
// database; control/data/update edges carry estimated network time;
// output/anti dependence edges (unweighted) order statements for the
// reordering optimization.
package pdg

import (
	"fmt"
	"sort"
	"strings"

	"pyxis/internal/analysis"
	"pyxis/internal/profile"
	"pyxis/internal/source"
)

// Loc is a placement: the application server or the database server.
type Loc uint8

const (
	Unpinned Loc = iota
	App
	DB
)

func (l Loc) String() string {
	switch l {
	case App:
		return "APP"
	case DB:
		return "DB"
	}
	return "-"
}

// Placement assigns every partition-graph node a location.
type Placement map[source.NodeID]Loc

// Of returns the placement of id (App if absent, the safe default).
func (p Placement) Of(id source.NodeID) Loc {
	if l, ok := p[id]; ok {
		return l
	}
	return App
}

// NodeKind classifies partition graph nodes.
type NodeKind uint8

const (
	StmtNode NodeKind = iota
	FieldNode
	EntryNode // synthetic method-entry node
	DBCodeNode
)

// Node is one vertex of the partition graph.
type Node struct {
	ID     source.NodeID
	Kind   NodeKind
	Label  string
	Weight float64 // estimated CPU load if placed on the database
	Pin    Loc     // Unpinned, or a mandatory placement
}

// EdgeKind classifies partition graph edges.
type EdgeKind uint8

const (
	CtrlEdge EdgeKind = iota
	DataEdge
	UpdateEdge
	OutputEdge // write-after-write (ordering only)
	AntiEdge   // read-before-write (ordering only)
)

func (k EdgeKind) String() string {
	switch k {
	case CtrlEdge:
		return "control"
	case DataEdge:
		return "data"
	case UpdateEdge:
		return "update"
	case OutputEdge:
		return "output"
	case AntiEdge:
		return "anti"
	}
	return "?"
}

// Edge is one dependency. Weight is the estimated time cost (seconds)
// of satisfying it across the network, per the §4.2 formulas; ordering
// edges have weight 0 and are excluded from the objective.
type Edge struct {
	Src, Dst source.NodeID
	Kind     EdgeKind
	Weight   float64
	Label    string
}

// Graph is the weighted partition graph plus placement constraints.
type Graph struct {
	Prog  *source.Program
	Nodes map[source.NodeID]*Node
	Edges []*Edge
	// Groups lists node sets that must share a placement (the JDBC
	// same-partition constraint, paper §4.3).
	Groups [][]source.NodeID
	// DBCodeID is the synthetic "database code" node (pinned DB).
	DBCodeID source.NodeID
	// AppClientID is the synthetic node representing the external
	// caller of entry-point wrappers (pinned APP): invoking an entry
	// method whose prologue lives on the database costs a control
	// transfer, which is what keeps database-free code (e.g. TPC-W's
	// order-inquiry page) on the application server.
	AppClientID source.NodeID
}

// Options tunes graph construction.
type Options struct {
	// LatencySec is the per-control-transfer network cost (defaults to
	// the profile's RTT).
	LatencySec float64
	// BandwidthBps is bytes/second (defaults to the profile's).
	BandwidthBps float64
	// ChargeDataAtLatency weights data edges like control edges
	// (LAT·cnt) instead of the paper's bandwidth-proportional
	// size/BW·cnt. This deliberately breaks the §4.2 insight that data
	// piggy-backs on control transfers; it exists for the weight-model
	// ablation.
	ChargeDataAtLatency bool
}

// Build assembles the weighted partition graph from the dependency
// analysis and the workload profile.
func Build(res *analysis.Result, prof *profile.Profile, opts Options) *Graph {
	lat := opts.LatencySec
	if lat == 0 {
		lat = prof.Latency.Seconds()
	}
	bw := opts.BandwidthBps
	if bw == 0 {
		bw = prof.BandwidthBps
	}
	if bw == 0 {
		bw = 125e6
	}

	g := &Graph{
		Prog:        res.Prog,
		Nodes:       map[source.NodeID]*Node{},
		DBCodeID:    res.Prog.MaxNode + 1,
		AppClientID: res.Prog.MaxNode + 2,
	}

	// --- Nodes ---------------------------------------------------------
	for id, s := range res.Prog.Stmts {
		n := &Node{ID: id, Kind: StmtNode, Weight: prof.Cnt(id), Label: stmtLabel(s)}
		if source.HasPrint(s) {
			n.Pin = App // console output stays on the application server
		}
		g.Nodes[id] = n
	}
	for id, f := range res.Prog.Fields {
		g.Nodes[id] = &Node{ID: id, Kind: FieldNode, Weight: 0, Label: f.QName()}
	}
	entryCnt := map[source.NodeID]float64{}
	for _, ce := range res.Calls {
		entryCnt[ce.Callee.EntryID] += prof.Cnt(ce.Stmt)
	}
	for id, n := range prof.EntryCalls {
		entryCnt[id] += float64(n)
	}
	for id, m := range res.Prog.MethodEntries {
		g.Nodes[id] = &Node{ID: id, Kind: EntryNode, Weight: 0, Label: "entry " + m.QName()}
	}
	g.Nodes[g.DBCodeID] = &Node{ID: g.DBCodeID, Kind: DBCodeNode, Pin: DB, Label: "database code"}
	g.Nodes[g.AppClientID] = &Node{ID: g.AppClientID, Kind: DBCodeNode, Pin: App, Label: "application client"}

	cnt := func(id source.NodeID) float64 {
		switch g.Nodes[id].Kind {
		case EntryNode:
			return entryCnt[id]
		case FieldNode, DBCodeNode:
			return -1 // "infinite": use the other endpoint's count
		default:
			return prof.Cnt(id)
		}
	}
	cntEdge := func(a, b source.NodeID) float64 {
		ca, cb := cnt(a), cnt(b)
		if ca < 0 {
			return cb
		}
		if cb < 0 {
			return ca
		}
		if ca < cb {
			return ca
		}
		return cb
	}

	addEdge := func(src, dst source.NodeID, kind EdgeKind, w float64, label string) {
		if src == dst {
			return
		}
		g.Edges = append(g.Edges, &Edge{Src: src, Dst: dst, Kind: kind, Weight: w, Label: label})
	}
	// dataWeight prices moving `size` bytes `cnt` times across the cut.
	dataWeight := func(size, cnt float64) float64 {
		if opts.ChargeDataAtLatency {
			return lat * cnt
		}
		return size / bw * cnt
	}

	// --- Control dependencies -------------------------------------------
	for _, mi := range res.Methods {
		for sid, ctrls := range mi.CtrlDeps {
			for _, c := range ctrls {
				src := c
				if c == source.NoNode {
					src = mi.Method.EntryID
				}
				addEdge(src, sid, CtrlEdge, lat*cntEdge(src, sid), "")
			}
		}
	}
	// Interprocedural control: call site → callee entry.
	for _, ce := range res.Calls {
		addEdge(ce.Stmt, ce.Callee.EntryID, CtrlEdge, lat*prof.Cnt(ce.Stmt), "call "+ce.Callee.QName())
	}
	// External invocations: the entry-point wrappers run on the
	// application server; reaching an entry prologue placed on the
	// database costs one control transfer per call, plus argument
	// shipping.
	for entryID, n := range prof.EntryCalls {
		m := res.Prog.MethodEntries[entryID]
		if m == nil {
			continue
		}
		addEdge(g.AppClientID, entryID, CtrlEdge, lat*float64(n), "invoke "+m.QName())
		argBytes := 0
		for _, prm := range m.Params {
			argBytes += analysis.TypeSize(prm.Type)
		}
		addEdge(g.AppClientID, entryID, DataEdge, dataWeight(float64(argBytes), float64(n)), "args")
	}
	// Database code: each statement performing a DB call round-trips to
	// the database if it is not colocated with it.
	var dbStmts []source.NodeID
	for id, s := range res.Prog.Stmts {
		if source.HasDBCall(s) {
			calls := float64(prof.DBCalls[id])
			if calls == 0 {
				calls = prof.Cnt(id)
			}
			addEdge(id, g.DBCodeID, CtrlEdge, lat*calls, "db")
			dbStmts = append(dbStmts, id)
		}
	}
	sort.Slice(dbStmts, func(i, j int) bool { return dbStmts[i] < dbStmts[j] })
	if len(dbStmts) > 1 {
		// The driver holds unserializable connection state: every DB
		// call must live on one partition (paper §4.3).
		g.Groups = append(g.Groups, dbStmts)
	}

	// --- Data dependencies ------------------------------------------------
	for _, du := range res.DefUse {
		var size float64
		if g.Nodes[du.From].Kind == EntryNode {
			size = float64(analysis.TypeSize(du.Local.Type))
		} else {
			size = prof.AvgSize(du.From)
		}
		addEdge(du.From, du.To, DataEdge, dataWeight(size, cntEdge(du.From, du.To)), du.Local.Name)
	}
	for _, ce := range res.Calls {
		addEdge(ce.Stmt, ce.Callee.EntryID, DataEdge,
			dataWeight(float64(ce.ArgBytes), prof.Cnt(ce.Stmt)), "args")
	}
	for _, re := range res.Returns {
		addEdge(re.Ret, re.Call, DataEdge, dataWeight(float64(re.Bytes), cntEdge(re.Ret, re.Call)), "ret")
	}
	for _, fd := range res.FieldDeps {
		size := prof.FieldAvgSize(fd.Field.ID)
		if fd.Write {
			// Update edge: field declaration → updating statement,
			// weighted size(field)/BW · cnt(updater) (§4.2).
			addEdge(fd.Field.ID, fd.Stmt, UpdateEdge, dataWeight(size, prof.Cnt(fd.Stmt)), fd.Field.Name)
		} else {
			addEdge(fd.Field.ID, fd.Stmt, DataEdge, dataWeight(size, prof.Cnt(fd.Stmt)), fd.Field.Name)
		}
	}
	for _, ad := range res.ArrayDeps {
		addEdge(ad.From, ad.To, DataEdge,
			dataWeight(prof.AvgSize(ad.From), cntEdge(ad.From, ad.To)), "elements")
	}

	// --- Ordering edges (reordering only) ---------------------------------
	g.addOrderingEdges(res)
	return g
}

// addOrderingEdges emits output/anti ordering edges between statements
// of the same block, preserving mutation order for the reordering
// optimization (§4.4). Conflict detection folds transitive callee
// side-effects into each call site (the paper's footnote-4
// summarization); loop/branch headers additionally conflict with any
// statement their body conflicts with, since reordering moves the
// whole construct.
func (g *Graph) addOrderingEdges(res *analysis.Result) {
	// nested[id] lists the statement plus all statements nested in it.
	nested := map[source.NodeID][]source.NodeID{}
	for _, cl := range res.Prog.Classes {
		for _, m := range cl.Methods {
			source.WalkMethodStmts(m, func(outer source.Stmt) bool {
				ids := []source.NodeID{outer.ID()}
				switch st := outer.(type) {
				case *source.IfStmt:
					collect(&ids, st.Then)
					collect(&ids, st.Else)
				case *source.WhileStmt:
					collect(&ids, st.Body)
				case *source.ForEachStmt:
					collect(&ids, st.Body)
				}
				nested[outer.ID()] = ids
				return true
			})
		}
	}
	conflict := func(a, b source.NodeID, kind func(x, y source.NodeID) bool) bool {
		for _, x := range nested[a] {
			for _, y := range nested[b] {
				if kind(x, y) {
					return true
				}
			}
		}
		return false
	}

	// Statements that may exit the block early (return/break anywhere in
	// their subtree) are barriers: nothing may migrate across them,
	// since moving code past an exit changes what executes.
	isBarrier := map[source.NodeID]bool{}
	for id, ids := range nested {
		for _, x := range ids {
			switch res.Prog.Stmts[x].(type) {
			case *source.ReturnStmt, *source.BreakStmt:
				isBarrier[id] = true
			}
		}
	}

	var doBlock func(b *source.Block)
	doBlock = func(b *source.Block) {
		for i, si := range b.Stmts {
			for j := i + 1; j < len(b.Stmts); j++ {
				sj := b.Stmts[j]
				switch {
				case isBarrier[si.ID()] || isBarrier[sj.ID()]:
					g.Edges = append(g.Edges, &Edge{Src: si.ID(), Dst: sj.ID(), Kind: OutputEdge})
				case conflict(si.ID(), sj.ID(), res.ConflictWW):
					g.Edges = append(g.Edges, &Edge{Src: si.ID(), Dst: sj.ID(), Kind: OutputEdge})
				case conflict(si.ID(), sj.ID(), res.ConflictRW):
					g.Edges = append(g.Edges, &Edge{Src: si.ID(), Dst: sj.ID(), Kind: AntiEdge})
				}
			}
		}
		for _, s := range b.Stmts {
			switch st := s.(type) {
			case *source.IfStmt:
				doBlock(st.Then)
				if st.Else != nil {
					doBlock(st.Else)
				}
			case *source.WhileStmt:
				doBlock(st.Body)
			case *source.ForEachStmt:
				doBlock(st.Body)
			}
		}
	}
	for _, cl := range res.Prog.Classes {
		for _, m := range cl.Methods {
			doBlock(m.Body)
		}
	}
}

// collect appends all statement IDs in a block (recursively).
func collect(ids *[]source.NodeID, b *source.Block) {
	if b == nil {
		return
	}
	source.WalkStmts(b, func(s source.Stmt) bool {
		*ids = append(*ids, s.ID())
		return true
	})
}

func stmtLabel(s source.Stmt) string {
	switch st := s.(type) {
	case *source.DeclStmt:
		if st.Init != nil {
			return fmt.Sprintf("%s %s = %s", st.Local.Type, st.Local.Name, clip(source.ExprString(st.Init)))
		}
		return fmt.Sprintf("%s %s", st.Local.Type, st.Local.Name)
	case *source.AssignStmt:
		return fmt.Sprintf("%s %s %s", clip(source.ExprString(st.LHS)), st.Op, clip(source.ExprString(st.RHS)))
	case *source.ExprStmt:
		return clip(source.ExprString(st.X))
	case *source.IfStmt:
		return "if " + clip(source.ExprString(st.Cond))
	case *source.WhileStmt:
		return "while " + clip(source.ExprString(st.Cond))
	case *source.ForEachStmt:
		return fmt.Sprintf("for %s : %s", st.Var.Name, clip(source.ExprString(st.Arr)))
	case *source.ReturnStmt:
		if st.X != nil {
			return "return " + clip(source.ExprString(st.X))
		}
		return "return"
	case *source.BreakStmt:
		return "break"
	}
	return "?"
}

func clip(s string) string {
	if len(s) > 40 {
		return s[:37] + "..."
	}
	return s
}

// CutCost returns the total weight of dependency edges cut by a
// placement, plus the total DB load — the two quantities the ILP
// trades off.
func (g *Graph) CutCost(p Placement) (cut, load float64) {
	for _, e := range g.Edges {
		if e.Kind == OutputEdge || e.Kind == AntiEdge {
			continue
		}
		if p.Of(e.Src) != p.Of(e.Dst) {
			cut += e.Weight
		}
	}
	for _, n := range g.Nodes {
		if p.Of(n.ID) == DB {
			load += n.Weight
		}
	}
	return cut, load
}

// Validate checks that a placement respects pins and groups.
func (g *Graph) Validate(p Placement) error {
	for _, n := range g.Nodes {
		if n.Pin != Unpinned && p.Of(n.ID) != n.Pin {
			return fmt.Errorf("pdg: node %d (%s) pinned to %s but placed %s", n.ID, n.Label, n.Pin, p.Of(n.ID))
		}
	}
	for gi, grp := range g.Groups {
		for _, id := range grp[1:] {
			if p.Of(id) != p.Of(grp[0]) {
				return fmt.Errorf("pdg: group %d split: node %d on %s, node %d on %s",
					gi, grp[0], p.Of(grp[0]), id, p.Of(id))
			}
		}
	}
	return nil
}

// DOT renders the graph in Graphviz format; if p is non-nil, nodes are
// colored by placement (Fig. 4 visualization).
func (g *Graph) DOT(p Placement) string {
	var b strings.Builder
	b.WriteString("digraph partition {\n  rankdir=TB;\n  node [shape=box, fontsize=10];\n")
	var ids []source.NodeID
	for id := range g.Nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		n := g.Nodes[id]
		attrs := fmt.Sprintf("label=%q", fmt.Sprintf("%d: %s", n.ID, n.Label))
		switch n.Kind {
		case FieldNode:
			attrs += ", shape=ellipse"
		case EntryNode:
			attrs += ", shape=diamond"
		case DBCodeNode:
			attrs += ", shape=cylinder"
		}
		if p != nil {
			if p.Of(id) == DB {
				attrs += ", style=filled, fillcolor=lightblue"
			} else {
				attrs += ", style=filled, fillcolor=lightyellow"
			}
		}
		fmt.Fprintf(&b, "  n%d [%s];\n", id, attrs)
	}
	for _, e := range g.Edges {
		style := ""
		switch e.Kind {
		case DataEdge:
			style = "color=blue"
		case UpdateEdge:
			style = "color=red, style=dashed"
		case OutputEdge, AntiEdge:
			continue // ordering edges clutter the picture
		}
		lbl := ""
		if e.Label != "" {
			lbl = fmt.Sprintf(", label=%q", e.Label)
		}
		fmt.Fprintf(&b, "  n%d -> n%d [%s%s];\n", e.Src, e.Dst, style, lbl)
	}
	b.WriteString("}\n")
	return b.String()
}

// Stats summarizes the graph.
func (g *Graph) Stats() string {
	kinds := map[EdgeKind]int{}
	for _, e := range g.Edges {
		kinds[e.Kind]++
	}
	return fmt.Sprintf("nodes=%d edges=%d (control=%d data=%d update=%d output=%d anti=%d) groups=%d",
		len(g.Nodes), len(g.Edges), kinds[CtrlEdge], kinds[DataEdge], kinds[UpdateEdge],
		kinds[OutputEdge], kinds[AntiEdge], len(g.Groups))
}
