package rpc

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"testing"
)

// pipeMuxConfig is pipeMux with an explicit demux configuration.
func pipeMuxConfig(t *testing.T, h SessionHandlers, cfg MuxServeConfig) *MuxClient {
	t.Helper()
	srvConn, cliConn := net.Pipe()
	done := make(chan struct{})
	go func() {
		ServeMuxConnConfig(srvConn, h, cfg)
		close(done)
	}()
	c := NewMuxClient(cliConn)
	t.Cleanup(func() { c.Close(); <-done })
	return c
}

// dummyLoopbackClient serves raw frames with reply, bypassing the
// demux loop, so tests can inject arbitrary reply kinds.
func dummyLoopbackClient(t *testing.T, reply func(muxFrame) muxFrame) *MuxClient {
	t.Helper()
	srvConn, cliConn := net.Pipe()
	go func() {
		for {
			f, err := readMuxFrame(srvConn)
			if err != nil {
				return
			}
			if err := writeMuxFrame(srvConn, reply(f)); err != nil {
				return
			}
		}
	}()
	c := NewMuxClient(cliConn)
	t.Cleanup(func() { c.Close(); srvConn.Close() })
	return c
}

// TestMuxLoadReportCodecProperty round-trips the extended mux frame
// codec over randomized inputs: load report present or absent, zero
// and extreme field values, every reply kind, arbitrary payloads —
// plus the old-peer compatibility cases (a report-less frame decodes
// exactly as before; a flagged frame from a newer peer with a longer
// report still yields the payload intact).
func TestMuxLoadReportCodecProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	loads := []float64{0, 1e-12, 40, 100, -5, 250, math.MaxFloat64, -math.MaxFloat64}
	rates := []float64{0, 0.5, 9999, 1e18}
	depths := []uint32{0, 1, SessionQueueDepth, math.MaxUint32}

	randReport := func() LoadReport {
		return LoadReport{
			Load:         loads[rng.Intn(len(loads))],
			CPU:          loads[rng.Intn(len(loads))],
			LockWaitRate: rates[rng.Intn(len(rates))],
			QueueDepth:   depths[rng.Intn(len(depths))],
		}
	}
	kinds := []byte{muxReplyOK, muxReplyErr, muxReplyShed}

	for i := 0; i < 500; i++ {
		payload := make([]byte, rng.Intn(64))
		rng.Read(payload)
		f := muxFrame{
			sid:  rng.Uint32(),
			rid:  rng.Uint32(),
			kind: kinds[rng.Intn(len(kinds))],
			body: payload,
		}
		withReport := rng.Intn(2) == 0
		var rep LoadReport
		if withReport {
			rep = randReport()
			f.kind |= muxFlagLoad
			f.body = append(appendLoadReport(nil, rep), payload...)
		}

		var buf bytes.Buffer
		if err := writeMuxFrame(&buf, f); err != nil {
			t.Fatalf("iter %d: write: %v", i, err)
		}
		got, err := readMuxFrame(&buf)
		if err != nil {
			t.Fatalf("iter %d: read: %v", i, err)
		}
		if got.sid != f.sid || got.rid != f.rid || got.kind != f.kind {
			t.Fatalf("iter %d: header mismatch: got %+v want %+v", i, got, f)
		}
		if !withReport {
			// Old-peer path: no flag, body untouched.
			if got.kind&muxFlagLoad != 0 || !bytes.Equal(got.body, payload) {
				t.Fatalf("iter %d: report-less frame mutated: %+v", i, got)
			}
			continue
		}
		dec, rest, err := splitLoadReport(got.body)
		if err != nil {
			t.Fatalf("iter %d: split: %v", i, err)
		}
		if dec != rep {
			t.Fatalf("iter %d: report mismatch: got %+v want %+v", i, dec, rep)
		}
		if !bytes.Equal(rest, payload) {
			t.Fatalf("iter %d: payload mismatch after report: %q vs %q", i, rest, payload)
		}
	}

	// Forward compatibility: a longer report (newer peer) still
	// decodes this version's fields and leaves the payload intact.
	long := appendLoadReport(nil, LoadReport{Load: 55, CPU: 10, LockWaitRate: 2, QueueDepth: 3})
	long = append(long, 0xAA, 0xBB, 0xCC, 0xDD) // future fields
	long[0] += 4
	long = append(long, []byte("payload")...)
	dec, rest, err := splitLoadReport(long)
	if err != nil {
		t.Fatalf("long report: %v", err)
	}
	if dec.Load != 55 || dec.QueueDepth != 3 || string(rest) != "payload" {
		t.Fatalf("long report decoded wrong: %+v rest=%q", dec, rest)
	}

	// Corruption: truncated reports must error, not misparse.
	for _, body := range [][]byte{{}, {loadReportLen}, appendLoadReport(nil, LoadReport{})[:10]} {
		if _, _, err := splitLoadReport(body); err == nil {
			t.Errorf("truncated report %v decoded without error", body)
		}
	}
}

// TestMuxLoadReportDelivery runs real traffic through a demux loop
// with a LoadSource attached and checks every reply delivers the
// report to the client sink while payloads stay intact — and that a
// server without a source (a report-less peer) yields zero reports.
func TestMuxLoadReportDelivery(t *testing.T) {
	echo := HandlerFactory(func(sid uint32) Handler {
		return func(req []byte) ([]byte, error) { return req, nil }
	})
	var calls atomic.Int64
	src := func(queueLen int) (LoadReport, bool) {
		n := calls.Add(1)
		return LoadReport{Load: float64(n), QueueDepth: uint32(queueLen)}, true
	}

	c := pipeMuxConfig(t, echo, MuxServeConfig{Load: src})
	var mu sync.Mutex
	var got []LoadReport
	c.SetOnLoad(func(r LoadReport) {
		mu.Lock()
		got = append(got, r)
		mu.Unlock()
	})

	s := c.Session()
	const n = 20
	for k := 0; k < n; k++ {
		resp, err := s.Call([]byte{byte(k)})
		if err != nil || len(resp) != 1 || resp[0] != byte(k) {
			t.Fatalf("call %d: %q %v", k, resp, err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != n {
		t.Fatalf("delivered %d reports, want %d", len(got), n)
	}
	if c.LoadReports() != n {
		t.Errorf("LoadReports() = %d, want %d", c.LoadReports(), n)
	}
	for _, r := range got {
		if r.Load <= 0 || r.Load > n {
			t.Errorf("implausible report %+v", r)
		}
	}

	// Report-less server: same traffic, no flag ever set.
	plain := pipeMuxConfig(t, echo, MuxServeConfig{})
	plain.SetOnLoad(func(r LoadReport) { t.Errorf("report-less peer delivered %+v", r) })
	ps := plain.Session()
	if resp, err := ps.Call([]byte("x")); err != nil || string(resp) != "x" {
		t.Fatalf("plain call: %q %v", resp, err)
	}
	if plain.LoadReports() != 0 {
		t.Errorf("report-less peer counted %d reports", plain.LoadReports())
	}
}

// TestMuxTaggedSessions checks tag routing: the server observes the
// tag in the session ID, distinct tags yield distinct sessions, and
// the tag survives the round trip.
func TestMuxTaggedSessions(t *testing.T) {
	h := HandlerFactory(func(sid uint32) Handler {
		tag := SessionTag(sid)
		return func(req []byte) ([]byte, error) { return append([]byte{tag}, req...), nil }
	})
	c, _ := pipeMux(t, h)

	s0 := c.Session()
	s1 := c.TaggedSession(1)
	s7 := c.TaggedSession(7)
	if SessionTag(s0.ID()) != 0 || SessionTag(s1.ID()) != 1 || SessionTag(s7.ID()) != 7 {
		t.Fatalf("tags lost in IDs: %d %d %d", s0.ID(), s1.ID(), s7.ID())
	}
	if s0.ID() == s1.ID() || s1.ID() == s7.ID() {
		t.Fatal("tagged sessions collided")
	}
	for want, s := range map[byte]*MuxSession{0: s0, 1: s1, 7: s7} {
		resp, err := s.Call([]byte("ping"))
		if err != nil {
			t.Fatal(err)
		}
		if resp[0] != want || string(resp[1:]) != "ping" {
			t.Errorf("tag %d served as %d (%q)", want, resp[0], resp)
		}
	}
}

// TestMuxShedSentinelKind speaks the raw protocol to pin the wire
// behavior: a muxReplyShed frame surfaces as ErrOverloaded.
func TestMuxShedSentinelKind(t *testing.T) {
	c := dummyLoopbackClient(t, func(f muxFrame) muxFrame {
		return muxFrame{sid: f.sid, rid: f.rid, kind: muxReplyShed, body: []byte("busy")}
	})
	_, err := c.Session().Call([]byte("hi"))
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("shed reply decoded as %v, want ErrOverloaded", err)
	}
}
