package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// echoHandlers tags every response with the session ID it was served
// under, so tests can detect cross-session routing mistakes.
type echoHandlers struct {
	opened atomic.Int64
	closed atomic.Int64
}

func (h *echoHandlers) Open(sid uint32) Handler {
	h.opened.Add(1)
	return func(req []byte) ([]byte, error) {
		if len(req) >= 4 && string(req[:4]) == "FAIL" {
			return nil, errors.New("handler said no")
		}
		out := make([]byte, 4+len(req))
		binary.LittleEndian.PutUint32(out, sid)
		copy(out[4:], req)
		return out, nil
	}
}

func (h *echoHandlers) Closed(uint32) { h.closed.Add(1) }

func pipeMux(t *testing.T, h SessionHandlers) (*MuxClient, chan struct{}) {
	t.Helper()
	srvConn, cliConn := net.Pipe()
	done := make(chan struct{})
	go func() {
		ServeMuxConn(srvConn, h)
		close(done)
	}()
	c := NewMuxClient(cliConn)
	t.Cleanup(func() { c.Close(); <-done })
	return c, done
}

// TestMuxInterleavedConcurrentCalls floods one connection with many
// sessions calling concurrently — including concurrent calls within a
// session — and checks every response routed back to its caller.
func TestMuxInterleavedConcurrentCalls(t *testing.T) {
	h := &echoHandlers{}
	c, _ := pipeMux(t, h)

	const (
		sessions        = 16
		callsPerSession = 40
		parallelPerSess = 4
	)
	var wg sync.WaitGroup
	errCh := make(chan error, sessions*parallelPerSess)
	for i := 0; i < sessions; i++ {
		s := c.Session()
		for p := 0; p < parallelPerSess; p++ {
			wg.Add(1)
			go func(s *MuxSession, p int) {
				defer wg.Done()
				for k := 0; k < callsPerSession/parallelPerSess; k++ {
					msg := fmt.Sprintf("s%d-p%d-k%d", s.ID(), p, k)
					resp, err := s.Call([]byte(msg))
					if err != nil {
						errCh <- err
						return
					}
					if len(resp) < 4 {
						errCh <- fmt.Errorf("short response for %q", msg)
						return
					}
					gotSID := binary.LittleEndian.Uint32(resp)
					if gotSID != s.ID() {
						errCh <- fmt.Errorf("call %q served under session %d, want %d", msg, gotSID, s.ID())
						return
					}
					if string(resp[4:]) != msg {
						errCh <- fmt.Errorf("echo mismatch: got %q want %q", resp[4:], msg)
						return
					}
				}
			}(s, p)
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if got := h.opened.Load(); got != sessions {
		t.Errorf("opened %d handlers, want %d", got, sessions)
	}
	st := c.Stats()
	if st.Calls != sessions*callsPerSession {
		t.Errorf("stats.Calls = %d, want %d", st.Calls, sessions*callsPerSession)
	}
}

// TestMuxErrorPropagation checks a handler error surfaces on the
// calling session only, leaving other traffic intact.
func TestMuxErrorPropagation(t *testing.T) {
	c, _ := pipeMux(t, &echoHandlers{})
	bad := c.Session()
	good := c.Session()

	if _, err := bad.Call([]byte("FAIL now")); err == nil {
		t.Fatal("want remote error")
	} else if !strings.Contains(err.Error(), "handler said no") {
		t.Fatalf("error text lost: %v", err)
	}
	// Both sessions keep working afterwards.
	for _, s := range []*MuxSession{bad, good} {
		if resp, err := s.Call([]byte("ok")); err != nil || string(resp[4:]) != "ok" {
			t.Fatalf("session %d after error: %v %q", s.ID(), err, resp)
		}
	}
}

// TestMuxSessionClose verifies explicit closes retire server state
// exactly once and that a closed session rejects further calls.
func TestMuxSessionClose(t *testing.T) {
	h := &echoHandlers{}
	c, done := pipeMux(t, h)

	s1, s2 := c.Session(), c.Session()
	if _, err := s1.Call([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Call([]byte("b")); err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil { // double close is a no-op
		t.Fatal(err)
	}
	if _, err := s1.Call([]byte("after close")); err == nil {
		t.Fatal("closed session accepted a call")
	}
	// s2 unaffected.
	if _, err := s2.Call([]byte("still here")); err != nil {
		t.Fatal(err)
	}
	// Tear down the connection: the remaining session is closed too.
	c.Close()
	<-done
	if got := h.closed.Load(); got < 2 {
		// s1's close frame may race conn teardown; after both, every
		// opened session must have been retired.
		t.Errorf("closed %d sessions, want 2", got)
	}
}

// TestMuxSessionQueueOverflowSheds floods one session whose handler is
// blocked: excess calls must be rejected with an error reply while the
// read loop — and so every other session on the connection — stays
// live. Without shedding this wedges the whole connection.
func TestMuxSessionQueueOverflowSheds(t *testing.T) {
	gate := make(chan struct{})
	var gateOnce sync.Once
	h := HandlerFactory(func(sid uint32) Handler {
		return func(req []byte) ([]byte, error) {
			if string(req) == "block" {
				<-gate
			}
			return req, nil
		}
	})
	srvConn, cliConn := net.Pipe()
	done := make(chan struct{})
	go func() {
		ServeMuxConn(srvConn, h)
		close(done)
	}()
	c := NewMuxClient(cliConn)
	defer func() { gateOnce.Do(func() { close(gate) }); c.Close(); <-done }()

	flooded := c.Session()
	const inflight = SessionQueueDepth + 8
	errs := make(chan error, inflight)
	var wg sync.WaitGroup
	for i := 0; i < inflight; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := flooded.Call([]byte("block"))
			errs <- err
		}()
	}
	// Wait until the flood has saturated the worker + queue, then show
	// the connection still serves another session.
	deadline := time.After(5 * time.Second)
	for {
		if n := int(c.Stats().Calls); n >= inflight {
			break
		}
		select {
		case <-deadline:
			t.Fatal("flood never fully issued")
		case <-time.After(time.Millisecond):
		}
	}
	other := c.Session()
	okCh := make(chan error, 1)
	go func() {
		_, err := other.Call([]byte("hi"))
		okCh <- err
	}()
	select {
	case err := <-okCh:
		if err != nil {
			t.Fatalf("other session starved: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("read loop wedged: other session's call never completed")
	}

	gateOnce.Do(func() { close(gate) })
	wg.Wait()
	close(errs)
	shed, served := 0, 0
	for err := range errs {
		if err == nil {
			served++
		} else if errors.Is(err, ErrOverloaded) {
			// Regression: sheds must carry the typed sentinel, not an
			// anonymous muxReplyErr text, so clients can back off and
			// retry instead of failing the transaction.
			if !strings.Contains(err.Error(), "queue overflow") {
				t.Errorf("shed error lost its reason: %v", err)
			}
			shed++
		} else {
			t.Fatalf("flooded session saw a non-ErrOverloaded error: %v", err)
		}
	}
	if shed == 0 {
		t.Error("no calls were shed despite exceeding the queue depth")
	}
	if served == 0 {
		t.Error("every call was shed; queued calls should still be served")
	}
}

// TestMuxRetiredSessionNotResurrected speaks the raw protocol to model
// a call racing its own session's close frame (possible when a session
// is used from two goroutines): the late call must get an error, not a
// silently re-opened session with fresh empty state.
func TestMuxRetiredSessionNotResurrected(t *testing.T) {
	h := &echoHandlers{}
	srvConn, cliConn := net.Pipe()
	done := make(chan struct{})
	go func() {
		ServeMuxConn(srvConn, h)
		close(done)
	}()
	defer func() { cliConn.Close(); <-done }()

	if err := writeMuxFrame(cliConn, muxFrame{sid: 1, rid: 1, kind: muxCall, body: []byte("hi")}); err != nil {
		t.Fatal(err)
	}
	if f, err := readMuxFrame(cliConn); err != nil || f.kind != muxReplyOK {
		t.Fatalf("first call: %+v %v", f, err)
	}
	if err := writeMuxFrame(cliConn, muxFrame{sid: 1, kind: muxCloseSess}); err != nil {
		t.Fatal(err)
	}
	// The call that lost the race arrives after the close.
	if err := writeMuxFrame(cliConn, muxFrame{sid: 1, rid: 2, kind: muxCall, body: []byte("late")}); err != nil {
		t.Fatal(err)
	}
	f, err := readMuxFrame(cliConn)
	if err != nil {
		t.Fatal(err)
	}
	if f.kind != muxReplyErr || !strings.Contains(string(f.body), "closed") {
		t.Fatalf("late call after close: kind=%d body=%q, want error reply", f.kind, f.body)
	}
	if got := h.opened.Load(); got != 1 {
		t.Errorf("session opened %d times, want 1 (no resurrection)", got)
	}
}

// TestMuxConnectionLossFailsPending checks that pending and future
// calls fail once the server side disappears.
func TestMuxConnectionLossFailsPending(t *testing.T) {
	srvConn, cliConn := net.Pipe()
	block := make(chan struct{})
	go func() {
		// Serve one request, then drop the connection without replying
		// to anything else.
		f, err := readMuxFrame(srvConn)
		if err != nil {
			return
		}
		_ = writeMuxFrame(srvConn, muxFrame{sid: f.sid, rid: f.rid, kind: muxReplyOK, body: f.body})
		<-block
		srvConn.Close()
	}()
	c := NewMuxClient(cliConn)
	defer c.Close()
	s := c.Session()
	if _, err := s.Call([]byte("warm")); err != nil {
		t.Fatal(err)
	}
	callErr := make(chan error, 1)
	go func() {
		_, err := s.Call([]byte("never answered"))
		callErr <- err
	}()
	close(block)
	if err := <-callErr; err == nil {
		t.Fatal("pending call survived connection loss")
	}
	if _, err := s.Call([]byte("after loss")); err == nil {
		t.Fatal("future call survived connection loss")
	}
}

// TestMuxOverTCP is the end-to-end smoke test for MuxServer + DialMux.
func TestMuxOverTCP(t *testing.T) {
	var handlers []*echoHandlers
	var mu sync.Mutex
	srv, err := NewMuxServer("127.0.0.1:0", func() SessionHandlers {
		h := &echoHandlers{}
		mu.Lock()
		handlers = append(handlers, h)
		mu.Unlock()
		return h
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Two independent connections; session IDs may collide across them
	// without interference.
	for conn := 0; conn < 2; conn++ {
		c, err := DialMux(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			s := c.Session()
			wg.Add(1)
			go func(s *MuxSession) {
				defer wg.Done()
				for k := 0; k < 10; k++ {
					msg := fmt.Sprintf("conn-%d-%d-%d", conn, s.ID(), k)
					resp, err := s.Call([]byte(msg))
					if err != nil {
						t.Errorf("%s: %v", msg, err)
						return
					}
					if string(resp[4:]) != msg {
						t.Errorf("echo mismatch %q -> %q", msg, resp[4:])
						return
					}
				}
			}(s)
		}
		wg.Wait()
		c.Close()
	}
	mu.Lock()
	defer mu.Unlock()
	if len(handlers) != 2 {
		t.Fatalf("server built %d per-connection handler sets, want 2", len(handlers))
	}
	for i, h := range handlers {
		if h.opened.Load() != 8 {
			t.Errorf("conn %d opened %d sessions, want 8", i, h.opened.Load())
		}
	}
}

// TestHandlerFactoryAdapter covers the stateless adapter.
func TestHandlerFactoryAdapter(t *testing.T) {
	f := HandlerFactory(func(sid uint32) Handler {
		return func(req []byte) ([]byte, error) { return req, nil }
	})
	h := f.Open(3)
	if resp, err := h([]byte("x")); err != nil || string(resp) != "x" {
		t.Fatalf("adapter handler: %q %v", resp, err)
	}
	f.Closed(3) // must not panic
}
