package rpc

// Range-migration control frames. The migrator (runtime.Migrator)
// drives a warehouse-range move over the shards' existing mux
// connections — the same no-side-channel scheme as 2PC in txn.go —
// as typed muxMigCtl frames: FENCE arms a write-fence over the moving
// range on the source shard, ADOPT exempts the migrator's own drain
// session from that fence, and RELEASE drops it, either rolling the
// range back into service (moved=false) or tombstoning it as moved-out
// (moved=true, the post-cutover state that redirects stale routers).
// The cutover itself is the existing 2PC protocol: the drain's source
// DELETE and destination INSERT transactions commit atomically via
// TxnPrepare/TxnCommit, so no transaction ever observes half a
// warehouse.

import (
	"errors"
	"fmt"
	"time"
)

// MigOp is a migration control operation.
type MigOp uint8

const (
	// MigFence arms a fence over the request's key range; the reply
	// carries the fence token.
	MigFence MigOp = 1 + iota
	// MigAdopt exempts the addressed session from the armed fence.
	MigAdopt
	// MigRelease drops the fence; Moved selects tombstone vs rollback.
	MigRelease
)

func (op MigOp) String() string {
	switch op {
	case MigFence:
		return "fence"
	case MigAdopt:
		return "adopt"
	case MigRelease:
		return "release"
	}
	return fmt.Sprintf("mig-op(%d)", uint8(op))
}

// MigRequest is one migration control operation. Tables/Lo/Hi/TTL are
// meaningful for MigFence; Token for MigAdopt and MigRelease; Moved
// for MigRelease only.
type MigRequest struct {
	Op     MigOp
	Token  uint64
	Moved  bool
	Lo, Hi int64
	TTL    time.Duration
	Tables map[string]string // table -> partition-key column
}

// MigParticipant is the optional server-side migration hook, the
// muxMigCtl analog of TxnParticipant: when a connection's
// SessionHandlers also implement it, migration control frames are
// dispatched here. Fence/Release address the shard's database as a
// whole; Adopt addresses the live session sid. The returned token is
// the armed fence's token (MigFence) or echoes the request's.
type MigParticipant interface {
	MigCtl(sid uint32, req MigRequest) (uint64, error)
}

// MigCtl issues one migration control operation on this session's
// connection. timeout bounds the exchange (<= 0 means
// DefaultTxnDeadline); semantics mirror TxnCtl, including
// ErrPoolPoisoned typing for dead connections.
func (s *MuxSession) MigCtl(req MigRequest, timeout time.Duration) (uint64, error) {
	if s.closed.Load() {
		return 0, fmt.Errorf("rpc: session %d closed", s.sid)
	}
	if timeout <= 0 {
		timeout = DefaultTxnDeadline
	}
	return s.c.migCall(s.sid, s.nextRID.Add(1), req, timeout)
}

func encodeMigRequest(req MigRequest) []byte {
	w := &Writer{}
	w.Byte(byte(req.Op))
	w.U64(req.Token)
	w.Bool(req.Moved)
	w.I64(req.Lo)
	w.I64(req.Hi)
	w.I64(int64(req.TTL))
	w.Uvarint(uint64(len(req.Tables)))
	for _, t := range sortedMigKeys(req.Tables) {
		w.Str(t)
		w.Str(req.Tables[t])
	}
	return w.Buf
}

func decodeMigRequest(body []byte) (MigRequest, error) {
	r := &Reader{Buf: body}
	req := MigRequest{
		Op:    MigOp(r.Byte()),
		Token: r.U64(),
		Moved: r.Bool(),
		Lo:    r.I64(),
		Hi:    r.I64(),
	}
	req.TTL = time.Duration(r.I64())
	if n := r.Uvarint(); n > 0 {
		if n > 1<<16 {
			return req, fmt.Errorf("rpc: mig-ctl table count %d too large", n)
		}
		req.Tables = make(map[string]string, n)
		for i := uint64(0); i < n; i++ {
			t := r.Str()
			req.Tables[t] = r.Str()
		}
	}
	if err := r.Err(); err != nil {
		return req, fmt.Errorf("rpc: malformed mig-ctl frame: %w", err)
	}
	return req, nil
}

func sortedMigKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ { // insertion sort; table sets are tiny
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// migCall is txnCall for migration control frames: same pending-map
// plumbing, deadline, and ErrPoolPoisoned typing.
func (c *MuxClient) migCall(sid, rid uint32, req MigRequest, timeout time.Duration) (uint64, error) {
	body := encodeMigRequest(req)

	ch := make(chan muxFrame, 1)
	key := muxKey(sid, rid)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return 0, fmt.Errorf("rpc: mig %s on dead connection: %w: %v", req.Op, ErrPoolPoisoned, err)
	}
	c.pending[key] = ch
	c.mu.Unlock()
	c.outstanding.Add(1)
	defer c.outstanding.Add(-1)

	c.wmu.Lock()
	err := writeMuxFrame(c.conn, muxFrame{sid: sid, rid: rid, kind: muxMigCtl, body: body})
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, key)
		c.mu.Unlock()
		return 0, fmt.Errorf("rpc: mig %s write failed: %w: %v", req.Op, ErrPoolPoisoned, err)
	}
	c.calls.Add(1)
	c.bytesSent.Add(int64(len(body)) + muxHeaderLen + 4)

	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case f, ok := <-ch:
		if !ok {
			c.mu.Lock()
			err := c.err
			c.mu.Unlock()
			if err == nil {
				err = errors.New("rpc: mux client closed")
			}
			return 0, fmt.Errorf("rpc: mig %s reply lost: %w: %v", req.Op, ErrPoolPoisoned, err)
		}
		switch f.kind {
		case muxReplyMig:
			r := &Reader{Buf: f.body}
			tok := r.U64()
			if err := r.Err(); err != nil {
				return 0, fmt.Errorf("rpc: malformed mig reply (%d bytes)", len(f.body))
			}
			return tok, nil
		case muxReplyErr:
			return 0, fmt.Errorf("rpc: remote mig error: %s", string(f.body))
		case muxReplyShed:
			return 0, fmt.Errorf("rpc: %s: %w", string(f.body), ErrOverloaded)
		}
		return 0, fmt.Errorf("rpc: malformed mux reply kind %d", f.kind)
	case <-timer.C:
		c.mu.Lock()
		delete(c.pending, key)
		c.mu.Unlock()
		return 0, fmt.Errorf("rpc: mig %s timed out after %v: %w", req.Op, timeout, ErrTxnDeadline)
	}
}

// migCtlReply executes one muxMigCtl frame against the connection's
// migration participant (nil when unsupported) and builds the reply.
// Called from the demux loop or a session worker; the participant must
// be concurrency-safe.
func migCtlReply(mp MigParticipant, f muxFrame) muxFrame {
	out := muxFrame{sid: f.sid, rid: f.rid, kind: muxReplyErr}
	if mp == nil {
		out.body = []byte("rpc: peer does not support range migration")
		return out
	}
	req, err := decodeMigRequest(f.body)
	if err != nil {
		out.body = []byte(err.Error())
		return out
	}
	tok, err := mp.MigCtl(f.sid, req)
	if err != nil {
		out.body = []byte(err.Error())
		return out
	}
	w := &Writer{}
	w.U64(tok)
	out.kind = muxReplyMig
	out.body = w.Buf
	return out
}
