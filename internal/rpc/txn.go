package rpc

// Two-phase-commit control frames. A coordinator (runtime.Coordinator)
// drives prepare/commit/abort against each participant shard over the
// shard's existing mux connection — no side channel, no extra dial —
// as typed muxTxnCtl frames carrying a one-byte op and the 64-bit
// global transaction ID. The participant half (dbapi.Participant)
// plugs in server-side via the TxnParticipant interface, which a
// connection's SessionHandlers may optionally implement.
//
// The protocol is presumed abort: the coordinator records a commit
// decision before sending any phase-2 frame and records nothing for
// aborts, so a participant that finds no decision when it re-queries —
// or a coordinator asked about an unknown gid — presumes abort. That
// makes every failure mode safe by default: a prepare that never
// arrives, a coordinator that dies before deciding, or a commit frame
// lost on a dead connection all converge to abort or to the recorded
// commit, never to a split outcome.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"
)

// TxnOp is a 2PC control operation.
type TxnOp uint8

const (
	// TxnPrepare asks the participant to move the session's open
	// transaction into the prepared (in-doubt) state under gid.
	TxnPrepare TxnOp = 1 + iota
	// TxnCommit / TxnAbort deliver the coordinator's decision for gid.
	TxnCommit
	TxnAbort
	// TxnStatus queries the participant's state for gid (recovery aid).
	TxnStatus
)

func (op TxnOp) String() string {
	switch op {
	case TxnPrepare:
		return "prepare"
	case TxnCommit:
		return "commit"
	case TxnAbort:
		return "abort"
	case TxnStatus:
		return "status"
	}
	return fmt.Sprintf("txn-op(%d)", uint8(op))
}

// TxnState is a participant's view of one global transaction.
type TxnState uint8

const (
	TxnStateUnknown TxnState = iota
	TxnStatePrepared
	TxnStateCommitted
	TxnStateAborted
)

func (st TxnState) String() string {
	switch st {
	case TxnStatePrepared:
		return "prepared"
	case TxnStateCommitted:
		return "committed"
	case TxnStateAborted:
		return "aborted"
	}
	return "unknown"
}

// ErrTxnDeadline reports that a 2PC control call did not complete
// within its per-participant deadline. The coordinator treats it like
// a dead participant: abort the global transaction (a participant that
// did prepare resolves via its own in-doubt deadline + re-query).
var ErrTxnDeadline = errors.New("rpc: txn control deadline exceeded")

// DefaultTxnDeadline bounds a 2PC control call when the caller passes
// no explicit timeout.
const DefaultTxnDeadline = 5 * time.Second

// TxnParticipant is the optional server-side 2PC hook: when a
// connection's SessionHandlers also implement it, muxTxnCtl frames are
// dispatched here. Prepare is addressed to a live session (sid);
// commit/abort/status are keyed by gid alone and may arrive on any
// session — including after the preparing session closed or on a new
// connection entirely. Implementations must be safe for concurrent use
// (frames arrive from every connection's demux loop and workers).
type TxnParticipant interface {
	TxnCtl(sid uint32, op TxnOp, gid uint64) (TxnState, error)
}

// TxnCtl issues one 2PC control operation for gid on this session's
// connection and returns the participant's resulting state. timeout
// bounds the whole exchange (<= 0 means DefaultTxnDeadline); on expiry
// the call returns ErrTxnDeadline. A dead or poisoned connection
// returns an error matching ErrPoolPoisoned so coordinators can treat
// "shard down" uniformly with the pool's own signal.
func (s *MuxSession) TxnCtl(op TxnOp, gid uint64, timeout time.Duration) (TxnState, error) {
	if s.closed.Load() {
		return TxnStateUnknown, fmt.Errorf("rpc: session %d closed", s.sid)
	}
	if timeout <= 0 {
		timeout = DefaultTxnDeadline
	}
	return s.c.txnCall(s.sid, s.nextRID.Add(1), op, gid, timeout)
}

// txnCall is MuxClient.call for txn-ctl frames: same pending-map
// plumbing, but with a deadline (a 2PC coordinator must never wedge on
// a stalled participant) and dead-connection errors typed as
// ErrPoolPoisoned.
func (c *MuxClient) txnCall(sid, rid uint32, op TxnOp, gid uint64, timeout time.Duration) (TxnState, error) {
	var body [9]byte
	body[0] = byte(op)
	binary.LittleEndian.PutUint64(body[1:], gid)

	ch := make(chan muxFrame, 1)
	key := muxKey(sid, rid)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return TxnStateUnknown, fmt.Errorf("rpc: txn %s on dead connection: %w: %v", op, ErrPoolPoisoned, err)
	}
	c.pending[key] = ch
	c.mu.Unlock()
	c.outstanding.Add(1)
	defer c.outstanding.Add(-1)

	c.wmu.Lock()
	err := writeMuxFrame(c.conn, muxFrame{sid: sid, rid: rid, kind: muxTxnCtl, body: body[:]})
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, key)
		c.mu.Unlock()
		return TxnStateUnknown, fmt.Errorf("rpc: txn %s write failed: %w: %v", op, ErrPoolPoisoned, err)
	}
	c.calls.Add(1)
	c.bytesSent.Add(int64(len(body)) + muxHeaderLen + 4)

	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case f, ok := <-ch:
		if !ok {
			c.mu.Lock()
			err := c.err
			c.mu.Unlock()
			if err == nil {
				err = errors.New("rpc: mux client closed")
			}
			return TxnStateUnknown, fmt.Errorf("rpc: txn %s reply lost: %w: %v", op, ErrPoolPoisoned, err)
		}
		switch f.kind {
		case muxReplyTxn:
			if len(f.body) != 1 {
				return TxnStateUnknown, fmt.Errorf("rpc: malformed txn reply (%d bytes)", len(f.body))
			}
			return TxnState(f.body[0]), nil
		case muxReplyErr:
			return TxnStateUnknown, fmt.Errorf("rpc: remote txn error: %s", string(f.body))
		case muxReplyShed:
			return TxnStateUnknown, fmt.Errorf("rpc: %s: %w", string(f.body), ErrOverloaded)
		}
		return TxnStateUnknown, fmt.Errorf("rpc: malformed mux reply kind %d", f.kind)
	case <-timer.C:
		// Un-register so a straggling reply is dropped instead of leaking
		// a pending slot; a reply racing the delete lands in the buffered
		// channel and is garbage-collected with it.
		c.mu.Lock()
		delete(c.pending, key)
		c.mu.Unlock()
		return TxnStateUnknown, fmt.Errorf("rpc: txn %s for gid %d timed out after %v: %w", op, gid, timeout, ErrTxnDeadline)
	}
}

// txnCtlReply executes one muxTxnCtl frame against the connection's
// participant (nil when the handlers don't implement TxnParticipant)
// and builds the reply frame. Called from the demux loop or a session
// worker; the participant must be concurrency-safe.
func txnCtlReply(tp TxnParticipant, f muxFrame) muxFrame {
	out := muxFrame{sid: f.sid, rid: f.rid, kind: muxReplyErr}
	if tp == nil {
		out.body = []byte("rpc: peer does not support 2pc")
		return out
	}
	if len(f.body) < 9 {
		out.body = []byte(fmt.Sprintf("rpc: malformed txn-ctl frame (%d bytes)", len(f.body)))
		return out
	}
	op := TxnOp(f.body[0])
	gid := binary.LittleEndian.Uint64(f.body[1:9])
	st, err := tp.TxnCtl(f.sid, op, gid)
	if err != nil {
		out.body = []byte(err.Error())
		return out
	}
	out.kind = muxReplyTxn
	out.body = []byte{byte(st)}
	return out
}
