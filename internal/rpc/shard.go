package rpc

// This file is the wire half of the shard-router layer: a ShardedPool
// holds one MuxPool per database shard — each shard an INDEPENDENT
// pyxis-dbserver process owning a disjoint slice of the data — and
// exposes the same Session/TaggedSession surface keyed by shard index.
// Nothing is shared between shards: not the connections, not the
// session-ID space, not the load reports. The pool deliberately has no
// opinion about which shard a key lives on — key→shard mapping is the
// runtime's ShardMap; this layer only owns "given a shard, give me a
// session on one of its connections".
//
// Load reports stay per-shard too: every report is delivered to the
// sink WITH the shard index it arrived from, so a consumer keeps one
// EWMA per shard instead of blurring N servers' saturation into one
// average (a saturated shard must shed and switch without dragging its
// idle siblings along).

import (
	"fmt"
	"io"
	"net"
	"sync/atomic"
)

// ShardedPool is a fixed set of per-shard connection pools. It is safe
// for concurrent use. Sessions are opened on an explicit shard (the
// caller routes keys to shards via runtime.ShardMap) and inherit every
// MuxPool guarantee — least-loaded placement, pinned-for-life
// sessions, pool-unique IDs — within that shard.
type ShardedPool struct {
	pools []*MuxPool

	onLoad atomic.Pointer[func(int, LoadReport)]
}

// NewShardedPool builds a pool set of shards pools with connsPerShard
// connections each, dialing connection conn of shard shard with
// dial(shard, conn). On any dial error the shards already opened are
// closed.
func NewShardedPool(shards, connsPerShard int, dial func(shard, conn int) (io.ReadWriteCloser, error)) (*ShardedPool, error) {
	if shards < 1 {
		return nil, fmt.Errorf("rpc: sharded pool needs at least 1 shard, got %d", shards)
	}
	s := &ShardedPool{pools: make([]*MuxPool, shards)}
	for i := range s.pools {
		shard := i
		p, err := NewMuxPool(connsPerShard, func(conn int) (io.ReadWriteCloser, error) {
			return dial(shard, conn)
		})
		if err != nil {
			for _, opened := range s.pools[:i] {
				opened.Close()
			}
			return nil, fmt.Errorf("rpc: shard %d: %w", i, err)
		}
		// The per-shard pool's sink belongs to the ShardedPool: it
		// stamps the shard index onto every report before fan-out, so
		// the consumer's per-shard EWMAs never mix servers.
		p.SetOnLoad(func(rep LoadReport) {
			if fn := s.onLoad.Load(); fn != nil {
				(*fn)(shard, rep)
			}
		})
		s.pools[i] = p
	}
	return s, nil
}

// DialShardedPool connects connsPerShard TCP connections to each
// shard server address in addrs (shard i is addrs[i]).
func DialShardedPool(addrs []string, connsPerShard int) (*ShardedPool, error) {
	return NewShardedPool(len(addrs), connsPerShard, func(shard, _ int) (io.ReadWriteCloser, error) {
		return net.Dial("tcp", addrs[shard])
	})
}

// NumShards returns the number of shards.
func (s *ShardedPool) NumShards() int { return len(s.pools) }

// Pool returns shard's connection pool (for inspection; sessions
// should be opened through Session/TaggedSession).
func (s *ShardedPool) Pool(shard int) *MuxPool { return s.pools[shard] }

// Session opens a new logical session on shard's least-loaded
// connection. The session is pinned to that shard (and connection)
// for its lifetime.
func (s *ShardedPool) Session(shard int) (*MuxSession, error) { return s.TaggedSession(shard, 0) }

// TaggedSession opens a session carrying tag in its ID's top byte on
// shard's least-loaded connection. A dead shard (every pooled
// connection poisoned) fails with ErrPoolPoisoned — its sibling
// shards keep serving.
func (s *ShardedPool) TaggedSession(shard int, tag uint8) (*MuxSession, error) {
	if shard < 0 || shard >= len(s.pools) {
		return nil, fmt.Errorf("rpc: shard %d out of range [0, %d)", shard, len(s.pools))
	}
	sess, err := s.pools[shard].TaggedSession(tag)
	if err != nil {
		return nil, fmt.Errorf("rpc: shard %d: %w", shard, err)
	}
	return sess, nil
}

// SetOnLoad registers fn to receive every load report piggy-backed on
// any connection of any shard, stamped with the shard index it
// arrived from. Safe to call concurrently with traffic; nil
// unregisters. (It replaces the per-shard pools' sinks, which the
// ShardedPool owns.)
func (s *ShardedPool) SetOnLoad(fn func(shard int, rep LoadReport)) {
	if fn == nil {
		s.onLoad.Store(nil)
		return
	}
	s.onLoad.Store(&fn)
}

// LoadReports returns how many piggy-backed load reports arrived
// across every shard's connections.
func (s *ShardedPool) LoadReports() int64 {
	var n int64
	for _, p := range s.pools {
		n += p.LoadReports()
	}
	return n
}

// Stats returns aggregate traffic counters across every shard.
func (s *ShardedPool) Stats() Stats {
	var st Stats
	for _, p := range s.pools {
		ps := p.Stats()
		st.Calls += ps.Calls
		st.BytesSent += ps.BytesSent
		st.BytesRecv += ps.BytesRecv
	}
	return st
}

// Close tears down every shard's pool; all sessions fail afterwards.
// The first error wins.
func (s *ShardedPool) Close() error {
	var err error
	for _, p := range s.pools {
		if cerr := p.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
