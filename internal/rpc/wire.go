// Package rpc provides the wire codec and the synchronous
// request/response transports used both by the database client (the
// JDBC analogue) and by the Pyxis runtime's control-transfer protocol.
// Transports are pluggable: in-process (optionally latency-injected)
// for tests and simulation, TCP for real two-server deployments, and
// multiplexed TCP (mux.go) where one connection carries any number of
// concurrent sessions, each an independent Transport.
package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"pyxis/internal/val"
)

// ErrShortBuffer reports a truncated or corrupt message.
var ErrShortBuffer = errors.New("rpc: short buffer")

// Writer serializes primitive values into a growing byte buffer.
type Writer struct {
	Buf []byte
}

func (w *Writer) Byte(b byte) { w.Buf = append(w.Buf, b) }
func (w *Writer) Bool(b bool) {
	if b {
		w.Byte(1)
	} else {
		w.Byte(0)
	}
}

func (w *Writer) U32(v uint32) {
	w.Buf = binary.LittleEndian.AppendUint32(w.Buf, v)
}

func (w *Writer) U64(v uint64) {
	w.Buf = binary.LittleEndian.AppendUint64(w.Buf, v)
}

func (w *Writer) I64(v int64)   { w.U64(uint64(v)) }
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Uvarint appends v LEB128-encoded — the compact form for the small
// integers (statement ids, method indices, slot counts) on the hot
// wire.
func (w *Writer) Uvarint(v uint64) {
	w.Buf = binary.AppendUvarint(w.Buf, v)
}

func (w *Writer) Str(s string) {
	w.U32(uint32(len(s)))
	w.Buf = append(w.Buf, s...)
}

// Val serializes one tagged value.
func (w *Writer) Val(v val.Value) {
	w.Byte(byte(v.K))
	switch v.K {
	case val.Null:
	case val.Int, val.Bool, val.Obj, val.Arr, val.Table:
		w.I64(v.I)
	case val.Double:
		w.F64(v.F)
	case val.Str:
		w.Str(v.S)
	}
}

// Vals serializes a length-prefixed value slice.
func (w *Writer) Vals(vs []val.Value) {
	w.U32(uint32(len(vs)))
	for _, v := range vs {
		w.Val(v)
	}
}

// Reader deserializes from a byte buffer. The first decode error
// sticks; check Err after reading.
type Reader struct {
	Buf []byte
	Off int
	err error
}

// Err returns the first decode error, if any.
func (r *Reader) Err() error { return r.err }

func (r *Reader) fail() {
	if r.err == nil {
		r.err = ErrShortBuffer
	}
}

func (r *Reader) Byte() byte {
	if r.err != nil || r.Off >= len(r.Buf) {
		r.fail()
		return 0
	}
	b := r.Buf[r.Off]
	r.Off++
	return b
}

func (r *Reader) Bool() bool { return r.Byte() != 0 }

func (r *Reader) U32() uint32 {
	if r.err != nil || r.Off+4 > len(r.Buf) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.Buf[r.Off:])
	r.Off += 4
	return v
}

func (r *Reader) U64() uint64 {
	if r.err != nil || r.Off+8 > len(r.Buf) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.Buf[r.Off:])
	r.Off += 8
	return v
}

func (r *Reader) I64() int64   { return int64(r.U64()) }
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Uvarint decodes a LEB128 unsigned integer.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.Buf[r.Off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.Off += n
	return v
}

func (r *Reader) Str() string {
	n := int(r.U32())
	if r.err != nil || n < 0 || r.Off+n > len(r.Buf) {
		r.fail()
		return ""
	}
	s := string(r.Buf[r.Off : r.Off+n])
	r.Off += n
	return s
}

// Val deserializes one tagged value.
func (r *Reader) Val() val.Value {
	k := val.Kind(r.Byte())
	switch k {
	case val.Null:
		return val.NullV()
	case val.Int, val.Bool, val.Obj, val.Arr, val.Table:
		return val.Value{K: k, I: r.I64()}
	case val.Double:
		return val.Value{K: k, F: r.F64()}
	case val.Str:
		return val.Value{K: k, S: r.Str()}
	}
	if r.err == nil {
		r.err = fmt.Errorf("rpc: bad value kind %d", k)
	}
	return val.Value{}
}

// Vals deserializes a length-prefixed value slice.
func (r *Reader) Vals() []val.Value {
	n := int(r.U32())
	if r.err != nil || n < 0 || n > len(r.Buf) {
		r.fail()
		return nil
	}
	out := make([]val.Value, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, r.Val())
	}
	return out
}

// ---------------------------------------------------------------------------
// Load reports (paper §6.3, made per-reply)
// ---------------------------------------------------------------------------

// LoadReport is the compact database-server load sample piggy-backed
// on multiplexed reply frames. The paper's §6.3 switcher receives a
// load message every 10 seconds over a side channel; here every reply
// already travelling to the application server carries the sample, so
// the app-side EWMA tracks the DB server with zero extra round trips.
// Load is the blended saturation signal; the components it blends are
// carried alongside so clients can apply their own policy.
type LoadReport struct {
	// Load is the blended saturation signal, percent (0-100).
	Load float64
	// CPU is the run-queue/CPU proxy component, percent: runnable
	// goroutines relative to the server's saturation point.
	CPU float64
	// LockWaitRate is the engine-wide lock-wait rate, waits/second
	// (the hot-row saturation signal CPU load misses).
	LockWaitRate float64
	// QueueDepth is the replying session's mux queue depth at reply
	// time (the per-session backpressure signal).
	QueueDepth uint32
}

// loadReportLen is the wire size of the fields this version encodes.
// Reports are length-prefixed, so longer (future) reports still decode
// here and report-less peers are unaffected entirely.
const loadReportLen = 8 + 8 + 8 + 4

// appendLoadReport appends the length-prefixed report to dst.
func appendLoadReport(dst []byte, rep LoadReport) []byte {
	w := Writer{Buf: dst}
	w.Byte(loadReportLen)
	w.F64(rep.Load)
	w.F64(rep.CPU)
	w.F64(rep.LockWaitRate)
	w.U32(rep.QueueDepth)
	return w.Buf
}

// splitLoadReport decodes a length-prefixed report from the front of
// body and returns it with the remaining payload. Reports longer than
// this version's fields (a newer peer) parse fine: the extra bytes are
// skipped under the length prefix.
func splitLoadReport(body []byte) (LoadReport, []byte, error) {
	if len(body) < 1 {
		return LoadReport{}, nil, fmt.Errorf("rpc: load report missing length: %w", ErrShortBuffer)
	}
	n := int(body[0])
	if n < loadReportLen || len(body)-1 < n {
		return LoadReport{}, nil, fmt.Errorf("rpc: load report truncated (%d of %d bytes)", len(body)-1, n)
	}
	r := Reader{Buf: body[1 : 1+n]}
	rep := LoadReport{
		Load:         r.F64(),
		CPU:          r.F64(),
		LockWaitRate: r.F64(),
		QueueDepth:   r.U32(),
	}
	if err := r.Err(); err != nil {
		return LoadReport{}, nil, err
	}
	return rep, body[1+n:], nil
}
