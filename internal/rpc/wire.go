// Package rpc provides the wire codec and the synchronous
// request/response transports used both by the database client (the
// JDBC analogue) and by the Pyxis runtime's control-transfer protocol.
// Transports are pluggable: in-process (optionally latency-injected)
// for tests and simulation, TCP for real two-server deployments, and
// multiplexed TCP (mux.go) where one connection carries any number of
// concurrent sessions, each an independent Transport.
package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"pyxis/internal/val"
)

// ErrShortBuffer reports a truncated or corrupt message.
var ErrShortBuffer = errors.New("rpc: short buffer")

// Writer serializes primitive values into a growing byte buffer.
type Writer struct {
	Buf []byte
}

func (w *Writer) Byte(b byte) { w.Buf = append(w.Buf, b) }
func (w *Writer) Bool(b bool) {
	if b {
		w.Byte(1)
	} else {
		w.Byte(0)
	}
}

func (w *Writer) U32(v uint32) {
	w.Buf = binary.LittleEndian.AppendUint32(w.Buf, v)
}

func (w *Writer) U64(v uint64) {
	w.Buf = binary.LittleEndian.AppendUint64(w.Buf, v)
}

func (w *Writer) I64(v int64)   { w.U64(uint64(v)) }
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

func (w *Writer) Str(s string) {
	w.U32(uint32(len(s)))
	w.Buf = append(w.Buf, s...)
}

// Val serializes one tagged value.
func (w *Writer) Val(v val.Value) {
	w.Byte(byte(v.K))
	switch v.K {
	case val.Null:
	case val.Int, val.Bool, val.Obj, val.Arr, val.Table:
		w.I64(v.I)
	case val.Double:
		w.F64(v.F)
	case val.Str:
		w.Str(v.S)
	}
}

// Vals serializes a length-prefixed value slice.
func (w *Writer) Vals(vs []val.Value) {
	w.U32(uint32(len(vs)))
	for _, v := range vs {
		w.Val(v)
	}
}

// Reader deserializes from a byte buffer. The first decode error
// sticks; check Err after reading.
type Reader struct {
	Buf []byte
	Off int
	err error
}

// Err returns the first decode error, if any.
func (r *Reader) Err() error { return r.err }

func (r *Reader) fail() {
	if r.err == nil {
		r.err = ErrShortBuffer
	}
}

func (r *Reader) Byte() byte {
	if r.err != nil || r.Off >= len(r.Buf) {
		r.fail()
		return 0
	}
	b := r.Buf[r.Off]
	r.Off++
	return b
}

func (r *Reader) Bool() bool { return r.Byte() != 0 }

func (r *Reader) U32() uint32 {
	if r.err != nil || r.Off+4 > len(r.Buf) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.Buf[r.Off:])
	r.Off += 4
	return v
}

func (r *Reader) U64() uint64 {
	if r.err != nil || r.Off+8 > len(r.Buf) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.Buf[r.Off:])
	r.Off += 8
	return v
}

func (r *Reader) I64() int64   { return int64(r.U64()) }
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

func (r *Reader) Str() string {
	n := int(r.U32())
	if r.err != nil || n < 0 || r.Off+n > len(r.Buf) {
		r.fail()
		return ""
	}
	s := string(r.Buf[r.Off : r.Off+n])
	r.Off += n
	return s
}

// Val deserializes one tagged value.
func (r *Reader) Val() val.Value {
	k := val.Kind(r.Byte())
	switch k {
	case val.Null:
		return val.NullV()
	case val.Int, val.Bool, val.Obj, val.Arr, val.Table:
		return val.Value{K: k, I: r.I64()}
	case val.Double:
		return val.Value{K: k, F: r.F64()}
	case val.Str:
		return val.Value{K: k, S: r.Str()}
	}
	if r.err == nil {
		r.err = fmt.Errorf("rpc: bad value kind %d", k)
	}
	return val.Value{}
}

// Vals deserializes a length-prefixed value slice.
func (r *Reader) Vals() []val.Value {
	n := int(r.U32())
	if r.err != nil || n < 0 || n > len(r.Buf) {
		r.fail()
		return nil
	}
	out := make([]val.Value, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, r.Val())
	}
	return out
}
