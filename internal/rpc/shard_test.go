package rpc

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// shardMarkHandlers replies "<shard>:<payload>" so tests can verify a
// session's calls are served by the shard it was opened on.
type shardMarkHandlers struct{ shard int }

func (h shardMarkHandlers) Open(uint32) Handler {
	return func(req []byte) ([]byte, error) {
		return []byte(fmt.Sprintf("%d:%s", h.shard, req)), nil
	}
}
func (h shardMarkHandlers) Closed(uint32) {}

// pipeShardedPool builds a sharded pool over in-process pipes, each
// shard served by its own demux loops with its own handlers and
// config. It returns the pool plus every connection's server pipe end
// keyed by shard, so tests can sever whole shards.
func pipeShardedPool(t *testing.T, shards, conns int, cfg func(shard int) MuxServeConfig) (*ShardedPool, [][]net.Conn) {
	t.Helper()
	srvEnds := make([][]net.Conn, shards)
	s, err := NewShardedPool(shards, conns, func(shard, _ int) (io.ReadWriteCloser, error) {
		srv, cli := net.Pipe()
		srvEnds[shard] = append(srvEnds[shard], srv)
		go ServeMuxConnConfig(srv, shardMarkHandlers{shard: shard}, cfg(shard))
		return cli, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, srvEnds
}

// TestShardedPoolRoutesByShardIndex is the routing contract: a session
// opened on shard i is served by shard i's handlers, tags survive, and
// out-of-range shards are rejected.
func TestShardedPoolRoutesByShardIndex(t *testing.T) {
	p, _ := pipeShardedPool(t, 3, 2, func(int) MuxServeConfig { return MuxServeConfig{} })
	if p.NumShards() != 3 {
		t.Fatalf("NumShards = %d, want 3", p.NumShards())
	}

	for shard := 0; shard < 3; shard++ {
		s, err := p.TaggedSession(shard, uint8(shard))
		if err != nil {
			t.Fatal(err)
		}
		if got := SessionTag(s.ID()); got != uint8(shard) {
			t.Errorf("shard %d session carries tag %d", shard, got)
		}
		resp, err := s.Call([]byte("ping"))
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("%d:ping", shard); string(resp) != want {
			t.Errorf("shard %d call served as %q, want %q", shard, resp, want)
		}
	}

	for _, bad := range []int{-1, 3} {
		if _, err := p.Session(bad); err == nil {
			t.Errorf("out-of-range shard %d accepted", bad)
		}
	}
}

// TestShardedPoolLoadReportsCarryShardIndex pins the per-shard load
// plumbing: a report piggy-backed on shard i's replies reaches the
// sink stamped with i, never blended with its siblings.
func TestShardedPoolLoadReportsCarryShardIndex(t *testing.T) {
	p, _ := pipeShardedPool(t, 2, 1, func(shard int) MuxServeConfig {
		load := float64(10 * (shard + 1))
		return MuxServeConfig{Load: func(queueLen int) (LoadReport, bool) {
			return LoadReport{Load: load, QueueDepth: uint32(queueLen)}, true
		}}
	})

	var mu sync.Mutex
	byShard := map[int][]float64{}
	p.SetOnLoad(func(shard int, rep LoadReport) {
		mu.Lock()
		byShard[shard] = append(byShard[shard], rep.Load)
		mu.Unlock()
	})

	for shard := 0; shard < 2; shard++ {
		s, err := p.Session(shard)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 5; k++ {
			if _, err := s.Call([]byte("x")); err != nil {
				t.Fatal(err)
			}
		}
	}

	mu.Lock()
	defer mu.Unlock()
	for shard := 0; shard < 2; shard++ {
		want := float64(10 * (shard + 1))
		if len(byShard[shard]) == 0 {
			t.Fatalf("no reports from shard %d", shard)
		}
		for _, got := range byShard[shard] {
			if got != want {
				t.Fatalf("shard %d delivered load %v, want %v (cross-shard blending)", shard, got, want)
			}
		}
	}
	if n := p.LoadReports(); n < 10 {
		t.Errorf("LoadReports = %d, want >= 10", n)
	}
}

// TestShardedPoolDeadShardFailsAlone severs every connection of one
// shard: sessions there fail with ErrPoolPoisoned while the surviving
// shard keeps opening and serving sessions.
func TestShardedPoolDeadShardFailsAlone(t *testing.T) {
	p, srvEnds := pipeShardedPool(t, 2, 2, func(int) MuxServeConfig { return MuxServeConfig{} })

	for _, srv := range srvEnds[0] {
		srv.Close()
	}
	deadline := time.After(5 * time.Second)
	for i := 0; i < p.Pool(0).Size(); i++ {
		for p.Pool(0).Conn(i).Err() == nil {
			select {
			case <-deadline:
				t.Fatalf("shard 0 conn %d never poisoned", i)
			case <-time.After(time.Millisecond):
			}
		}
	}

	if _, err := p.Session(0); !errors.Is(err, ErrPoolPoisoned) {
		t.Fatalf("dead shard returned %v, want ErrPoolPoisoned", err)
	}
	s, err := p.Session(1)
	if err != nil {
		t.Fatal(err)
	}
	if resp, err := s.Call([]byte("alive")); err != nil || string(resp) != "1:alive" {
		t.Fatalf("surviving shard broken: %q %v", resp, err)
	}
}

// TestShardedPoolConstruction covers the error paths: zero shards and
// a mid-construction dial failure closing the shards already opened.
func TestShardedPoolConstruction(t *testing.T) {
	if _, err := NewShardedPool(0, 1, nil); err == nil {
		t.Error("0-shard pool accepted")
	}

	var opened []net.Conn
	_, err := NewShardedPool(3, 1, func(shard, _ int) (io.ReadWriteCloser, error) {
		if shard == 2 {
			return nil, fmt.Errorf("boom")
		}
		srv, cli := net.Pipe()
		go ServeMuxConn(srv, &echoHandlers{})
		opened = append(opened, cli)
		return cli, nil
	})
	if err == nil {
		t.Fatal("partial dial failure not surfaced")
	}
	for i, c := range opened {
		c.SetWriteDeadline(time.Now().Add(time.Second))
		if _, werr := c.Write([]byte("x")); werr == nil {
			t.Errorf("shard %d conn left open after failed construction", i)
		}
	}
}
