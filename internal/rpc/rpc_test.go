package rpc

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"pyxis/internal/val"
)

func TestWireRoundTrip(t *testing.T) {
	var w Writer
	w.Byte(7)
	w.Bool(true)
	w.U32(123456)
	w.I64(-42)
	w.F64(2.718)
	w.Str("héllo")
	w.Vals([]val.Value{val.IntV(1), val.StrV("x"), val.NullV(), val.DoubleV(-1.5), val.BoolV(true), val.ObjV(9)})

	r := &Reader{Buf: w.Buf}
	if r.Byte() != 7 || !r.Bool() || r.U32() != 123456 || r.I64() != -42 || r.F64() != 2.718 {
		t.Fatal("scalar round trip failed")
	}
	if r.Str() != "héllo" {
		t.Fatal("string round trip failed")
	}
	vs := r.Vals()
	if len(vs) != 6 || vs[0].I != 1 || vs[1].S != "x" || vs[2].K != val.Null ||
		vs[3].F != -1.5 || !vs[4].AsBool() || vs[5].OID() != 9 {
		t.Fatalf("vals round trip: %v", vs)
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	if r.Off != len(w.Buf) {
		t.Fatalf("trailing bytes: off=%d len=%d", r.Off, len(w.Buf))
	}
}

func TestReaderShortBuffer(t *testing.T) {
	r := &Reader{Buf: []byte{1, 2}}
	_ = r.U64()
	if !errors.Is(r.Err(), ErrShortBuffer) {
		t.Fatalf("want ErrShortBuffer, got %v", r.Err())
	}
	// Errors stick.
	_ = r.Str()
	if !errors.Is(r.Err(), ErrShortBuffer) {
		t.Fatal("error should stick")
	}
}

// Property: arbitrary value slices survive the codec.
func TestValueCodecProperty(t *testing.T) {
	f := func(is []int64, fs []float64, ss []string) bool {
		var in []val.Value
		for _, i := range is {
			in = append(in, val.IntV(i))
		}
		for _, x := range fs {
			in = append(in, val.DoubleV(x))
		}
		for _, s := range ss {
			in = append(in, val.StrV(s))
		}
		var w Writer
		w.Vals(in)
		r := &Reader{Buf: w.Buf}
		out := r.Vals()
		if r.Err() != nil || len(out) != len(in) {
			return false
		}
		for i := range in {
			if !in[i].Equal(out[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestInProcTransport(t *testing.T) {
	tr := NewInProc(func(req []byte) ([]byte, error) {
		return append([]byte("echo:"), req...), nil
	}, 0)
	resp, err := tr.Call([]byte("hi"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "echo:hi" {
		t.Fatalf("resp = %q", resp)
	}
	st := tr.Stats()
	if st.Calls != 1 || st.BytesSent != 2 || st.BytesRecv != 7 {
		t.Fatalf("stats = %+v", st)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Call([]byte("x")); err == nil {
		t.Fatal("call after close should fail")
	}
}

func TestTCPClientServer(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", func() Handler {
		calls := 0
		return func(req []byte) ([]byte, error) {
			calls++
			if bytes.Equal(req, []byte("fail")) {
				return nil, fmt.Errorf("boom")
			}
			return []byte(fmt.Sprintf("%s#%d", req, calls)), nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c1, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	// Per-connection handler state: each connection counts separately.
	r1, err := c1.Call([]byte("a"))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c2.Call([]byte("b"))
	if err != nil {
		t.Fatal(err)
	}
	if string(r1) != "a#1" || string(r2) != "b#1" {
		t.Fatalf("per-connection state broken: %q %q", r1, r2)
	}
	if _, err := c1.Call([]byte("fail")); err == nil {
		t.Fatal("remote error should propagate")
	}
	// The connection survives a handler error.
	if r, err := c1.Call([]byte("again")); err != nil || string(r) != "again#3" {
		t.Fatalf("after error: %q %v", r, err)
	}
	if st := c1.Stats(); st.Calls != 3 {
		t.Fatalf("client stats: %+v", st)
	}
}

func TestTCPConcurrentClients(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", func() Handler {
		return func(req []byte) ([]byte, error) { return req, nil }
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(srv.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for j := 0; j < 20; j++ {
				msg := []byte(fmt.Sprintf("c%d-%d", i, j))
				resp, err := c.Call(msg)
				if err != nil || !bytes.Equal(resp, msg) {
					t.Errorf("echo mismatch: %q %v", resp, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

// Property: values of EVERY kind — including the reference kinds Obj,
// Arr, Table and the scalars Null/Bool the narrower property above
// skips — survive the codec, alone and in slices.
func TestValueCodecAllKinds(t *testing.T) {
	gen := func(kind val.Kind, i int64, f float64, s string, b bool) val.Value {
		switch kind {
		case val.Null:
			return val.NullV()
		case val.Int:
			return val.IntV(i)
		case val.Double:
			return val.DoubleV(f)
		case val.Bool:
			return val.BoolV(b)
		case val.Str:
			return val.StrV(s)
		case val.Obj:
			return val.Value{K: val.Obj, I: i}
		case val.Arr:
			return val.Value{K: val.Arr, I: i}
		default:
			return val.Value{K: val.Table, I: i}
		}
	}
	kinds := []val.Kind{val.Null, val.Int, val.Double, val.Bool, val.Str, val.Obj, val.Arr, val.Table}
	f := func(picks []uint8, is []int64, fs []float64, ss []string, bs []bool) bool {
		var in []val.Value
		for j, p := range picks {
			var (
				iv int64
				fv float64
				sv string
				bv bool
			)
			if len(is) > 0 {
				iv = is[j%len(is)]
			}
			if len(fs) > 0 {
				fv = fs[j%len(fs)]
			}
			if len(ss) > 0 {
				sv = ss[j%len(ss)]
			}
			if len(bs) > 0 {
				bv = bs[j%len(bs)]
			}
			in = append(in, gen(kinds[int(p)%len(kinds)], iv, fv, sv, bv))
		}
		var w Writer
		w.Vals(in)
		r := &Reader{Buf: w.Buf}
		out := r.Vals()
		if r.Err() != nil || len(out) != len(in) {
			return false
		}
		for i := range in {
			if out[i].K != in[i].K || !in[i].Equal(out[i]) {
				return false
			}
		}
		return r.Off == len(w.Buf)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Corrupt kind bytes must error, not panic or mis-decode.
func TestValueCodecBadKind(t *testing.T) {
	r := &Reader{Buf: []byte{99}}
	_ = r.Val()
	if r.Err() == nil {
		t.Fatal("bad value kind should stick an error")
	}
}
