package rpc

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Transport is a synchronous request/response channel: exactly one
// response per request, in order. Both the database wire protocol and
// Pyxis control transfers use this shape (the paper's runtime likewise
// blocks the caller until the callee returns control).
type Transport interface {
	Call(req []byte) ([]byte, error)
	Close() error
}

// Handler serves one request, returning the response payload.
type Handler func(req []byte) ([]byte, error)

// Stats counts traffic through a transport.
type Stats struct {
	Calls     int64
	BytesSent int64
	BytesRecv int64
}

// ---------------------------------------------------------------------------
// In-process transport
// ---------------------------------------------------------------------------

// InProc invokes a handler directly, optionally sleeping to emulate a
// network round trip. It is safe for concurrent use.
type InProc struct {
	H       Handler
	Latency time.Duration // full round-trip time added per call
	stats   Stats
	closed  atomic.Bool
}

// NewInProc returns an in-process transport over h with the given
// round-trip latency (0 for none).
func NewInProc(h Handler, rtt time.Duration) *InProc {
	return &InProc{H: h, Latency: rtt}
}

// Call implements Transport.
func (t *InProc) Call(req []byte) ([]byte, error) {
	if t.closed.Load() {
		return nil, fmt.Errorf("rpc: transport closed")
	}
	if t.Latency > 0 {
		time.Sleep(t.Latency)
	}
	atomic.AddInt64(&t.stats.Calls, 1)
	atomic.AddInt64(&t.stats.BytesSent, int64(len(req)))
	resp, err := t.H(req)
	atomic.AddInt64(&t.stats.BytesRecv, int64(len(resp)))
	return resp, err
}

// Close implements Transport.
func (t *InProc) Close() error {
	t.closed.Store(true)
	return nil
}

// Stats returns a snapshot of the traffic counters.
func (t *InProc) Stats() Stats {
	return Stats{
		Calls:     atomic.LoadInt64(&t.stats.Calls),
		BytesSent: atomic.LoadInt64(&t.stats.BytesSent),
		BytesRecv: atomic.LoadInt64(&t.stats.BytesRecv),
	}
}

// ---------------------------------------------------------------------------
// TCP transport (length-prefixed frames)
// ---------------------------------------------------------------------------

func writeFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	const maxFrame = 1 << 28
	if n > maxFrame {
		return nil, fmt.Errorf("rpc: frame too large (%d bytes)", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// TCPClient is a Transport over one TCP connection. Calls are
// serialized by a mutex (the protocol is strictly request/response).
type TCPClient struct {
	mu    sync.Mutex
	conn  net.Conn
	stats Stats
}

// Dial connects a TCPClient to addr.
func Dial(addr string) (*TCPClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &TCPClient{conn: conn}, nil
}

// Call implements Transport.
func (c *TCPClient) Call(req []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := writeFrame(c.conn, req); err != nil {
		return nil, err
	}
	resp, err := readFrame(c.conn)
	if err != nil {
		return nil, err
	}
	atomic.AddInt64(&c.stats.Calls, 1)
	atomic.AddInt64(&c.stats.BytesSent, int64(len(req))+4)
	atomic.AddInt64(&c.stats.BytesRecv, int64(len(resp))+4)
	if len(resp) > 0 && resp[0] == frameError {
		return nil, fmt.Errorf("rpc: remote error: %s", string(resp[1:]))
	}
	if len(resp) > 0 && resp[0] == frameOK {
		return resp[1:], nil
	}
	return nil, fmt.Errorf("rpc: malformed response")
}

// Close implements Transport.
func (c *TCPClient) Close() error { return c.conn.Close() }

// Stats returns a snapshot of the traffic counters.
func (c *TCPClient) Stats() Stats {
	return Stats{
		Calls:     atomic.LoadInt64(&c.stats.Calls),
		BytesSent: atomic.LoadInt64(&c.stats.BytesSent),
		BytesRecv: atomic.LoadInt64(&c.stats.BytesRecv),
	}
}

const (
	frameOK    byte = 0
	frameError byte = 1
)

// Server accepts TCP connections and serves each with a
// per-connection handler (so stateful protocols get isolated state).
type Server struct {
	lis     net.Listener
	factory func() Handler
	wg      sync.WaitGroup
	mu      sync.Mutex
	closed  bool
}

// NewServer listens on addr; factory is invoked once per accepted
// connection to create that connection's handler.
func NewServer(addr string, factory func() Handler) (*Server, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{lis: lis, factory: factory}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.lis.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			return
		}
		h := s.factory()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			serveConn(conn, h)
		}()
	}
}

func serveConn(conn net.Conn, h Handler) {
	for {
		req, err := readFrame(conn)
		if err != nil {
			return
		}
		resp, herr := h(req)
		var frame []byte
		if herr != nil {
			frame = append([]byte{frameError}, herr.Error()...)
		} else {
			frame = append([]byte{frameOK}, resp...)
		}
		if err := writeFrame(conn, frame); err != nil {
			return
		}
	}
}

// Close stops accepting and waits for in-flight connections to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	err := s.lis.Close()
	s.wg.Wait()
	return err
}
