package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// pipePool builds an n-connection pool whose every connection is a
// pipe served by its own demux loop over handlers from newHandlers
// (mirroring a TCP server's per-connection factory). It returns the
// pool plus each connection's server-side pipe end, so tests can sever
// individual connections.
func pipePool(t *testing.T, n int, newHandlers func(i int) SessionHandlers, cfg MuxServeConfig) (*MuxPool, []net.Conn) {
	t.Helper()
	srvEnds := make([]net.Conn, 0, n)
	p, err := NewMuxPool(n, func(i int) (io.ReadWriteCloser, error) {
		srv, cli := net.Pipe()
		srvEnds = append(srvEnds, srv)
		go ServeMuxConnConfig(srv, newHandlers(i), cfg)
		return cli, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p, srvEnds
}

// TestMuxPoolStripesUniqueTaggedIDs opens many sessions on an idle
// pool and checks the tentpole's ID contract: pool-wide uniqueness,
// the connection index folded under the tag byte matching the
// connection the session actually runs on, tags surviving the round
// trip, and placement striping across connections instead of piling
// onto one.
func TestMuxPoolStripesUniqueTaggedIDs(t *testing.T) {
	p, _ := pipePool(t, 4, func(int) SessionHandlers { return &echoHandlers{} }, MuxServeConfig{})

	seen := map[uint32]bool{}
	perConn := make([]int, 4)
	for k := 0; k < 16; k++ {
		tag := uint8(k % 3)
		s, err := p.TaggedSession(tag)
		if err != nil {
			t.Fatal(err)
		}
		if seen[s.ID()] {
			t.Fatalf("session ID %d allocated twice", s.ID())
		}
		seen[s.ID()] = true
		if got := SessionTag(s.ID()); got != tag {
			t.Errorf("session %d carries tag %d, want %d", s.ID(), got, tag)
		}
		perConn[int(SessionConn(s.ID()))]++
		// The echo handler prefixes the serving session ID: the reply
		// must come from the session we think we opened, over whichever
		// connection the ID claims.
		resp, err := s.Call([]byte("ping"))
		if err != nil {
			t.Fatal(err)
		}
		if gotSID := binary.LittleEndian.Uint32(resp); gotSID != s.ID() {
			t.Errorf("call served under session %d, want %d", gotSID, s.ID())
		}
	}
	for i, n := range perConn {
		if n == 0 {
			t.Errorf("idle-pool placement never used connection %d: %v", i, perConn)
		}
	}
}

// TestMuxPoolPlacesAwayFromLoadedConn pins the placement signal: with
// an in-flight call holding one connection busy, every new session
// must land on a different connection.
func TestMuxPoolPlacesAwayFromLoadedConn(t *testing.T) {
	gate := make(chan struct{})
	var gateOnce sync.Once
	defer func() { gateOnce.Do(func() { close(gate) }) }()
	h := HandlerFactory(func(sid uint32) Handler {
		return func(req []byte) ([]byte, error) {
			if string(req) == "block" {
				<-gate
			}
			return req, nil
		}
	})
	p, _ := pipePool(t, 2, func(int) SessionHandlers { return h }, MuxServeConfig{})

	busy, err := p.Session()
	if err != nil {
		t.Fatal(err)
	}
	busyConn := int(SessionConn(busy.ID()))
	done := make(chan error, 1)
	go func() {
		_, err := busy.Call([]byte("block"))
		done <- err
	}()
	deadline := time.After(5 * time.Second)
	for p.Conn(busyConn).Outstanding() == 0 {
		select {
		case <-deadline:
			t.Fatal("blocked call never became outstanding")
		case <-time.After(time.Millisecond):
		}
	}

	for k := 0; k < 6; k++ {
		s, err := p.Session()
		if err != nil {
			t.Fatal(err)
		}
		if got := int(SessionConn(s.ID())); got == busyConn {
			t.Fatalf("session %d placed on the loaded connection %d", s.ID(), busyConn)
		}
		if _, err := s.Call([]byte("hi")); err != nil {
			t.Fatal(err)
		}
	}

	gateOnce.Do(func() { close(gate) })
	if err := <-done; err != nil {
		t.Fatalf("blocked call failed: %v", err)
	}
}

// TestMuxPoolConnLossFailsOnlyPinnedSessions is the teardown contract:
// severing ONE pooled connection fails exactly its pinned sessions —
// sessions on the surviving connection keep working, and every new
// session is placed on a survivor.
func TestMuxPoolConnLossFailsOnlyPinnedSessions(t *testing.T) {
	p, srvEnds := pipePool(t, 2, func(int) SessionHandlers { return &echoHandlers{} }, MuxServeConfig{})

	// Round-robin tie-breaking spreads an idle pool, so two sessions
	// cover both connections; assert that rather than assume it.
	s0, err := p.Session()
	if err != nil {
		t.Fatal(err)
	}
	s1, err := p.Session()
	if err != nil {
		t.Fatal(err)
	}
	c0, c1 := int(SessionConn(s0.ID())), int(SessionConn(s1.ID()))
	if c0 == c1 {
		t.Fatalf("setup: both sessions pinned to connection %d", c0)
	}
	for _, s := range []*MuxSession{s0, s1} {
		if _, err := s.Call([]byte("warm")); err != nil {
			t.Fatal(err)
		}
	}

	// Sever s0's connection server-side (a crashed peer, not a client
	// Close): its pinned session must fail...
	srvEnds[c0].Close()
	if _, err := s0.Call([]byte("after loss")); err == nil {
		t.Fatal("session on the severed connection survived")
	}
	deadline := time.After(5 * time.Second)
	for p.Conn(c0).Err() == nil {
		select {
		case <-deadline:
			t.Fatal("severed connection never poisoned")
		case <-time.After(time.Millisecond):
		}
	}

	// ...while the surviving session keeps serving...
	if resp, err := s1.Call([]byte("still here")); err != nil || string(resp[4:]) != "still here" {
		t.Fatalf("survivor session broken: %q %v", resp, err)
	}

	// ...and every new session is placed on the survivor.
	for k := 0; k < 6; k++ {
		s, err := p.Session()
		if err != nil {
			t.Fatal(err)
		}
		if got := int(SessionConn(s.ID())); got != c1 {
			t.Fatalf("new session %d placed on dead connection %d", s.ID(), got)
		}
		if _, err := s.Call([]byte("fresh")); err != nil {
			t.Fatalf("new session on survivor failed: %v", err)
		}
	}
}

// TestMuxPoolSessionIDWrap is the wrap regression: the pool's 20-bit
// session counter is stubbed to just below 2^20 so a handful of opens
// carries it past the point where the old code minted session ID 0
// (tag 0, conn 0, ctr 0) and then recycled the IDs of still-open
// sessions. Post-fix, counter value 0 is never minted and every
// still-open ID is skipped; the property is checked for every ID
// minted across the wrap.
func TestMuxPoolSessionIDWrap(t *testing.T) {
	p, _ := pipePool(t, 1, func(int) SessionHandlers { return &echoHandlers{} }, MuxServeConfig{})

	// Sessions opened pre-wrap and kept open: their IDs must never be
	// handed out again.
	held := map[uint32]*MuxSession{}
	for k := 0; k < 8; k++ {
		s, err := p.TaggedSession(0)
		if err != nil {
			t.Fatal(err)
		}
		held[s.ID()] = s
	}

	// Stub the counter to 4 mints before the 2^20 wrap, then mint
	// enough sessions to cross it (and the held IDs' counter values)
	// twice over.
	const space = 1 << sessionConnShift
	for round := 0; round < 2; round++ {
		p.nextSID.Store(space - 4)
		for k := 0; k < 16; k++ {
			s, err := p.TaggedSession(0)
			if err != nil {
				t.Fatal(err)
			}
			if ctr := s.ID() & (space - 1); ctr == 0 {
				t.Fatalf("round %d: wrap minted counter value 0 (session ID %d)", round, s.ID())
			}
			if _, taken := held[s.ID()]; taken {
				t.Fatalf("round %d: wrap re-minted still-open session ID %d", round, s.ID())
			}
			// The wrapped session must actually work end to end.
			resp, err := s.Call([]byte("wrapped"))
			if err != nil {
				t.Fatal(err)
			}
			if gotSID := binary.LittleEndian.Uint32(resp); gotSID != s.ID() {
				t.Fatalf("round %d: wrapped call served under session %d, want %d", round, gotSID, s.ID())
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}

	// A closed session's ID is quarantined while the server might still
	// tombstone it (the retired-session FIFO holds the last
	// muxRetiredCap closes), then returns to the allocatable space:
	// close one held session, drive muxRetiredCap further closes
	// through the connection, stub the counter so the victim's ID comes
	// up next, and the pool mints it again — and the server accepts it
	// as a fresh session.
	var victim *MuxSession
	for _, s := range held {
		victim = s
		break
	}
	if err := victim.Close(); err != nil {
		t.Fatal(err)
	}
	// Immediately after close the ID must still be skipped (quarantine).
	p.nextSID.Store(victim.ID()&(space-1) - 1)
	s, err := p.TaggedSession(0)
	if err != nil {
		t.Fatal(err)
	}
	if s.ID() == victim.ID() {
		t.Fatalf("quarantined ID %d re-minted before the server could forget it", victim.ID())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < muxRetiredCap; k++ {
		s, err := p.TaggedSession(0)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
	p.nextSID.Store(victim.ID()&(space-1) - 1)
	s, err = p.TaggedSession(0)
	if err != nil {
		t.Fatal(err)
	}
	if s.ID() != victim.ID() {
		t.Fatalf("released ID %d not re-minted after quarantine drained (got %d)", victim.ID(), s.ID())
	}
	if resp, err := s.Call([]byte("reused")); err != nil {
		t.Fatalf("re-minted session rejected: %v", err)
	} else if gotSID := binary.LittleEndian.Uint32(resp); gotSID != s.ID() {
		t.Fatalf("re-minted call served under session %d, want %d", gotSID, s.ID())
	}
}

// TestMuxClientSessionIDWrap mirrors the wrap regression on the plain
// client's 24-bit counter path: counter value 0 is skipped and a
// still-open session's ID is never recycled.
func TestMuxClientSessionIDWrap(t *testing.T) {
	c, _ := pipeMux(t, &echoHandlers{})

	held := map[uint32]bool{}
	for k := 0; k < 8; k++ {
		held[c.Session().ID()] = true
	}

	const space = 1 << sessionTagShift
	c.nextSID.Store(space - 4)
	for k := 0; k < 16; k++ {
		s := c.Session()
		if ctr := s.ID() & (space - 1); ctr == 0 {
			t.Fatalf("wrap minted counter value 0 (session ID %d)", s.ID())
		}
		if held[s.ID()] {
			t.Fatalf("wrap re-minted still-open session ID %d", s.ID())
		}
		if _, err := s.Call([]byte("wrapped")); err != nil {
			t.Fatal(err)
		}
	}

	// Tags partition the guard: a held untagged ID does not block the
	// same counter value under another tag.
	c.nextSID.Store(space - 4)
	for k := 0; k < 16; k++ {
		s := c.TaggedSession(3)
		if SessionTag(s.ID()) != 3 {
			t.Fatalf("tag lost across wrap: session %d", s.ID())
		}
		if ctr := s.ID() & (space - 1); ctr == 0 {
			t.Fatalf("tagged wrap minted counter value 0 (session ID %d)", s.ID())
		}
	}
}

// TestMuxPoolAllConnsPoisoned is the poisoned-pool regression: with
// EVERY pooled connection dead, opening a session must fail with the
// typed ErrPoolPoisoned instead of silently pinning the session to
// dead conn 0 and letting its first call surface a generic transport
// error.
func TestMuxPoolAllConnsPoisoned(t *testing.T) {
	p, srvEnds := pipePool(t, 2, func(int) SessionHandlers { return &echoHandlers{} }, MuxServeConfig{})

	// Warm both connections so the severed reads are noticed.
	for k := 0; k < 2; k++ {
		s, err := p.Session()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Call([]byte("warm")); err != nil {
			t.Fatal(err)
		}
	}
	for _, srv := range srvEnds {
		srv.Close()
	}
	deadline := time.After(5 * time.Second)
	for i := 0; i < p.Size(); i++ {
		for p.Conn(i).Err() == nil {
			select {
			case <-deadline:
				t.Fatalf("conn %d never poisoned", i)
			case <-time.After(time.Millisecond):
			}
		}
	}

	if _, err := p.Session(); !errors.Is(err, ErrPoolPoisoned) {
		t.Fatalf("all-poisoned pool returned %v, want ErrPoolPoisoned", err)
	}
	if _, err := p.TaggedSession(2); !errors.Is(err, ErrPoolPoisoned) {
		t.Fatalf("all-poisoned pool (tagged) returned %v, want ErrPoolPoisoned", err)
	}
}

// TestMuxPoolSizeAndDialErrors covers construction: out-of-range pool
// sizes are rejected, and a mid-construction dial failure closes the
// connections already opened.
func TestMuxPoolSizeAndDialErrors(t *testing.T) {
	for _, n := range []int{0, -1, MaxPoolConns + 1} {
		if _, err := NewMuxPool(n, nil); err == nil {
			t.Errorf("pool size %d accepted", n)
		}
	}

	var opened []net.Conn
	_, err := NewMuxPool(3, func(i int) (io.ReadWriteCloser, error) {
		if i == 2 {
			return nil, fmt.Errorf("boom")
		}
		srv, cli := net.Pipe()
		go ServeMuxConn(srv, &echoHandlers{})
		opened = append(opened, cli)
		return cli, nil
	})
	if err == nil {
		t.Fatal("partial dial failure not surfaced")
	}
	// The already-dialed connections must have been closed: a write on
	// the client end fails once MuxClient.Close ran.
	for i, c := range opened {
		c.SetWriteDeadline(time.Now().Add(time.Second))
		if _, werr := c.Write([]byte("x")); werr == nil {
			t.Errorf("conn %d left open after failed pool construction", i)
		}
	}
}

// TestMuxPoolOverTCP is the end-to-end smoke: DialMuxPool against a
// real MuxServer, concurrent sessions striped over the pool.
func TestMuxPoolOverTCP(t *testing.T) {
	srv, err := NewMuxServer("127.0.0.1:0", func() SessionHandlers { return &echoHandlers{} })
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	p, err := DialMuxPool(srv.Addr(), 3)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	var wg sync.WaitGroup
	errCh := make(chan error, 12)
	for i := 0; i < 12; i++ {
		s, err := p.Session()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(s *MuxSession) {
			defer wg.Done()
			for k := 0; k < 10; k++ {
				msg := fmt.Sprintf("s%d-k%d", s.ID(), k)
				resp, err := s.Call([]byte(msg))
				if err != nil {
					errCh <- err
					return
				}
				if string(resp[4:]) != msg {
					errCh <- fmt.Errorf("echo mismatch %q -> %q", msg, resp[4:])
					return
				}
			}
		}(s)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Calls != 12*10 {
		t.Errorf("pool stats counted %d calls, want %d", st.Calls, 12*10)
	}
}
