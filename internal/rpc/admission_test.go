package rpc

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// deadline polls a condition with a test-failing timeout (async
// lifecycle callbacks fire after worker drain, not inline).
type deadline struct {
	t  *testing.T
	at time.Time
}

func newDeadline(t *testing.T) *deadline {
	return &deadline{t: t, at: time.Now().Add(5 * time.Second)}
}

func (d *deadline) tick(format string, args ...any) {
	d.t.Helper()
	if time.Now().After(d.at) {
		d.t.Fatalf(format, args...)
	}
	time.Sleep(time.Millisecond)
}

// stubAdmission is a scriptable AdmissionPolicy: flip the gates and
// count the lifecycle calls.
type stubAdmission struct {
	refuseSessions atomic.Bool
	refuseCalls    atomic.Bool

	admitted atomic.Int64
	closed   atomic.Int64
}

func (a *stubAdmission) AdmitSession(sid uint32) error {
	if a.refuseSessions.Load() {
		return errors.New("stub: session refused")
	}
	a.admitted.Add(1)
	return nil
}

func (a *stubAdmission) AdmitCall(sid uint32, queueLen int) error {
	if a.refuseCalls.Load() {
		return errors.New("stub: call refused")
	}
	return nil
}

func (a *stubAdmission) SessionClosed(sid uint32) { a.closed.Add(1) }

// TestMuxAdmissionSessionShed pins the session gate's wire behavior: a
// refused session sheds with the typed ErrOverloaded, no handler is
// ever opened for it, and once the gate opens a retry on the SAME
// session succeeds (a refusal left no server state behind).
func TestMuxAdmissionSessionShed(t *testing.T) {
	adm := &stubAdmission{}
	adm.refuseSessions.Store(true)
	h := &echoHandlers{}
	c := pipeMuxConfig(t, h, MuxServeConfig{Admission: adm})

	s := c.Session()
	_, err := s.Call([]byte("hi"))
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("refused session error = %v, want ErrOverloaded", err)
	}
	if !strings.Contains(err.Error(), "session refused") {
		t.Errorf("shed reply lost the policy's reason: %v", err)
	}
	if h.opened.Load() != 0 {
		t.Fatalf("handler opened for a refused session")
	}

	// Gate opens: the same session retries straight through.
	adm.refuseSessions.Store(false)
	resp, err := s.Call([]byte("hi"))
	if err != nil || string(resp[4:]) != "hi" {
		t.Fatalf("retry after refusal: %q %v", resp, err)
	}
	if h.opened.Load() != 1 || adm.admitted.Load() != 1 {
		t.Errorf("opened=%d admitted=%d after one successful retry, want 1/1",
			h.opened.Load(), adm.admitted.Load())
	}

	// Closing the admitted session releases its admission slot exactly
	// once.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := newDeadline(t)
	for adm.closed.Load() == 0 {
		deadline.tick("SessionClosed never fired")
	}
	if got := adm.closed.Load(); got != 1 {
		t.Errorf("SessionClosed fired %d times, want 1", got)
	}
}

// TestMuxAdmissionCallShed pins the per-call gate: calls on an already
// admitted session shed typed while the gate is closed, the session
// survives, and traffic resumes when the gate opens.
func TestMuxAdmissionCallShed(t *testing.T) {
	adm := &stubAdmission{}
	h := &echoHandlers{}
	c := pipeMuxConfig(t, h, MuxServeConfig{Admission: adm})

	s := c.Session()
	if _, err := s.Call([]byte("warm")); err != nil {
		t.Fatal(err)
	}

	adm.refuseCalls.Store(true)
	for k := 0; k < 3; k++ {
		if _, err := s.Call([]byte("blocked")); !errors.Is(err, ErrOverloaded) {
			t.Fatalf("call %d under a closed gate: %v, want ErrOverloaded", k, err)
		}
	}

	adm.refuseCalls.Store(false)
	resp, err := s.Call([]byte("resumed"))
	if err != nil || string(resp[4:]) != "resumed" {
		t.Fatalf("traffic did not resume after the gate opened: %q %v", resp, err)
	}
	if h.opened.Load() != 1 {
		t.Errorf("session churned %d times across call sheds, want a single open", h.opened.Load())
	}
}

// TestMuxServerSetAdmission covers the server-level wiring: a policy
// installed with SetAdmission gates connections accepted afterwards.
func TestMuxServerSetAdmission(t *testing.T) {
	adm := &stubAdmission{}
	adm.refuseSessions.Store(true)
	srv, err := NewMuxServer("127.0.0.1:0", func() SessionHandlers { return &echoHandlers{} })
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.SetAdmission(adm)

	c, err := DialMux(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s := c.Session()
	if _, err := s.Call([]byte("hi")); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("server-installed policy not applied: %v", err)
	}
	adm.refuseSessions.Store(false)
	if resp, err := s.Call([]byte("hi")); err != nil || string(resp[4:]) != "hi" {
		t.Fatalf("retry after gate opened: %q %v", resp, err)
	}
}

// TestMuxAdmissionTeardownReleasesSlots checks the other
// SessionClosed path: connection teardown (not an explicit close
// frame) must release every admitted session's slot.
func TestMuxAdmissionTeardownReleasesSlots(t *testing.T) {
	adm := &stubAdmission{}
	c := pipeMuxConfig(t, &echoHandlers{}, MuxServeConfig{Admission: adm})

	for i := 0; i < 3; i++ {
		if _, err := c.Session().Call([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if adm.admitted.Load() != 3 {
		t.Fatalf("admitted %d sessions, want 3", adm.admitted.Load())
	}
	c.Close()
	deadline := newDeadline(t)
	for adm.closed.Load() != 3 {
		deadline.tick("teardown released %d of 3 admission slots", adm.closed.Load())
	}
}
