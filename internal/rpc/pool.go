package rpc

// This file stripes sessions across a pool of mux connections. One
// multiplexed TCP connection is a single head-of-line: every frame of
// every session funnels through one read loop and one write mutex on
// each end, so past a handful of concurrent sessions the wire — not
// the engine — caps throughput. A MuxPool keeps N connections open,
// places each NEW session on the least-loaded one (by in-flight calls
// plus the connection's last server-reported queue depth) and pins it
// there for life, which preserves every per-session invariant of the
// single-connection protocol: per-session ordering (one worker per
// session server-side), session-scoped state, and the tag-byte routing
// of dual deployments.
//
// Session IDs are allocated pool-wide from one counter with the
// owning connection's index folded into the 4 bits under the tag byte
// (see SessionConn), so IDs never collide across the pool's
// connections and rpc.SessionTag — which the dual SessionManager
// routes by — keeps working unchanged. Like the plain client's 24-bit
// counter, the pool's 20-bit counter eventually wraps (after 2^20
// sessions per tag); a pool serving session churn that long should be
// cycled before reuse could collide with a still-open session.

import (
	"fmt"
	"io"
	"net"
	"sync/atomic"
)

// MuxPool is a fixed-size pool of mux connections that balances new
// sessions onto the least-loaded connection. It is safe for concurrent
// use. Sessions stay pinned to the connection they were placed on; if
// a pooled connection dies, only its pinned sessions fail and new
// sessions are placed on the survivors.
type MuxPool struct {
	conns []*MuxClient
	// depth[i] is connection i's most recent server-reported session
	// queue depth — the far end of the placement signal (the near end
	// is MuxClient.Outstanding).
	depth []atomic.Uint32

	nextSID atomic.Uint32 // pool-wide session counter
	rr      atomic.Uint32 // rotates placement tie-breaks across conns

	onLoad atomic.Pointer[func(LoadReport)]
}

// NewMuxPool builds a pool of n connections, dialing each with dial(i)
// (so tests can hand every slot a distinct peer). On any dial error
// the already-opened connections are closed. n must be in
// [1, MaxPoolConns].
func NewMuxPool(n int, dial func(i int) (io.ReadWriteCloser, error)) (*MuxPool, error) {
	if n < 1 || n > MaxPoolConns {
		return nil, fmt.Errorf("rpc: pool size %d out of range [1, %d]", n, MaxPoolConns)
	}
	p := &MuxPool{
		conns: make([]*MuxClient, n),
		depth: make([]atomic.Uint32, n),
	}
	for i := range p.conns {
		conn, err := dial(i)
		if err != nil {
			for _, c := range p.conns[:i] {
				c.Close()
			}
			return nil, fmt.Errorf("rpc: pool dial conn %d: %w", i, err)
		}
		c := NewMuxClient(conn)
		// Every connection's piggy-backed reports flow through one
		// pool-level sink: the pool records the per-connection queue
		// depth for placement and forwards the report to the shared
		// consumer (typically a switcher EWMA), so a report arriving on
		// ANY pooled connection feeds the same average.
		idx := i
		c.SetOnLoad(func(rep LoadReport) {
			p.depth[idx].Store(rep.QueueDepth)
			if fn := p.onLoad.Load(); fn != nil {
				(*fn)(rep)
			}
		})
		p.conns[i] = c
	}
	return p, nil
}

// DialMuxPool connects a pool of n mux connections to a MuxServer at
// addr.
func DialMuxPool(addr string, n int) (*MuxPool, error) {
	return NewMuxPool(n, func(int) (io.ReadWriteCloser, error) {
		return net.Dial("tcp", addr)
	})
}

// Size returns the number of pooled connections.
func (p *MuxPool) Size() int { return len(p.conns) }

// Conn returns the i-th pooled connection (for inspection; sessions
// should be opened through Session/TaggedSession so placement and
// pool-wide ID allocation apply).
func (p *MuxPool) Conn(i int) *MuxClient { return p.conns[i] }

// place picks the least-loaded healthy connection. Load is the
// connection's in-flight calls plus its last reported session queue
// depth; ties resolve round-robin so an idle pool still stripes
// sessions instead of piling them on connection 0. With every
// connection poisoned it falls back to index 0 — the session's first
// call then surfaces the transport error.
func (p *MuxPool) place() int {
	n := len(p.conns)
	// Reduce in uint32 before converting: a wrapped counter cast
	// through int would go negative on 32-bit platforms.
	start := int(p.rr.Add(1) % uint32(n))
	best, bestScore := -1, int64(0)
	for k := 0; k < n; k++ {
		i := (start + k) % n
		c := p.conns[i]
		if c.Err() != nil {
			continue
		}
		score := c.Outstanding()
		if score > 0 {
			// The reported depth counts only while calls are in flight:
			// with zero outstanding, nothing of ours can be queued
			// server-side, so the last report is a stale snapshot of a
			// finished burst and must not keep penalizing an idle
			// connection (it would only refresh on traffic the stale
			// score itself steers away).
			score += int64(p.depth[i].Load())
		}
		if best < 0 || score < bestScore {
			best, bestScore = i, score
		}
	}
	if best < 0 {
		return 0
	}
	return best
}

// Session opens a new logical session on the least-loaded connection.
// The returned transport is pinned to that connection for its
// lifetime.
func (p *MuxPool) Session() *MuxSession { return p.TaggedSession(0) }

// TaggedSession opens a session whose ID carries tag in its top byte
// (see MuxClient.TaggedSession) on the least-loaded connection. The
// pool-wide counter plus the folded connection index keep IDs unique
// across the whole pool (until the 20-bit counter wraps — see the
// package comment above).
func (p *MuxPool) TaggedSession(tag uint8) *MuxSession {
	i := p.place()
	ctr := p.nextSID.Add(1) & (1<<sessionConnShift - 1)
	sid := uint32(tag)<<sessionTagShift | uint32(i)<<sessionConnShift | ctr
	return p.conns[i].newSession(sid)
}

// SetOnLoad registers fn to receive every load report piggy-backed on
// ANY pooled connection's replies — the fan-in that keeps one shared
// EWMA fed no matter which connection a session landed on. Safe to
// call concurrently with traffic; nil unregisters.
func (p *MuxPool) SetOnLoad(fn func(LoadReport)) {
	if fn == nil {
		p.onLoad.Store(nil)
		return
	}
	p.onLoad.Store(&fn)
}

// LoadReports returns how many piggy-backed load reports arrived
// across all pooled connections.
func (p *MuxPool) LoadReports() int64 {
	var n int64
	for _, c := range p.conns {
		n += c.LoadReports()
	}
	return n
}

// Stats returns aggregate traffic counters across all pooled
// connections.
func (p *MuxPool) Stats() Stats {
	var st Stats
	for _, c := range p.conns {
		s := c.Stats()
		st.Calls += s.Calls
		st.BytesSent += s.BytesSent
		st.BytesRecv += s.BytesRecv
	}
	return st
}

// Close tears down every pooled connection; all sessions fail
// afterwards. The first error wins.
func (p *MuxPool) Close() error {
	var err error
	for _, c := range p.conns {
		if cerr := c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
