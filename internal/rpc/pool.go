package rpc

// This file stripes sessions across a pool of mux connections. One
// multiplexed TCP connection is a single head-of-line: every frame of
// every session funnels through one read loop and one write mutex on
// each end, so past a handful of concurrent sessions the wire — not
// the engine — caps throughput. A MuxPool keeps N connections open,
// places each NEW session on the least-loaded one (by in-flight calls
// plus the connection's last server-reported queue depth) and pins it
// there for life, which preserves every per-session invariant of the
// single-connection protocol: per-session ordering (one worker per
// session server-side), session-scoped state, and the tag-byte routing
// of dual deployments.
//
// Session IDs are allocated pool-wide from one counter with the
// owning connection's index folded into the 4 bits under the tag byte
// (see SessionConn), so IDs never collide across the pool's
// connections and rpc.SessionTag — which the dual SessionManager
// routes by — keeps working unchanged. Like the plain client's 24-bit
// counter, the pool's 20-bit counter eventually wraps (after 2^20
// sessions per tag); the same guards apply on wrap: counter value 0 is
// never minted (it would alias session ID 0) and IDs still held by
// open sessions are skipped instead of handed out twice.

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync/atomic"
)

// ErrPoolPoisoned reports that every connection of a MuxPool has
// failed: there is nowhere left to place a session. Callers should
// treat it like a connection loss (rebuild the pool), not retry the
// session open; errors.Is matches it through wrapping.
var ErrPoolPoisoned = errors.New("rpc: all pooled connections poisoned")

// MuxPool is a fixed-size pool of mux connections that balances new
// sessions onto the least-loaded connection. It is safe for concurrent
// use. Sessions stay pinned to the connection they were placed on; if
// a pooled connection dies, only its pinned sessions fail and new
// sessions are placed on the survivors.
type MuxPool struct {
	conns []*MuxClient
	// depth[i] is connection i's most recent server-reported session
	// queue depth — the far end of the placement signal (the near end
	// is MuxClient.Outstanding).
	depth []atomic.Uint32

	nextSID atomic.Uint32 // pool-wide session counter
	rr      atomic.Uint32 // rotates placement tie-breaks across conns

	onLoad atomic.Pointer[func(LoadReport)]
}

// NewMuxPool builds a pool of n connections, dialing each with dial(i)
// (so tests can hand every slot a distinct peer). On any dial error
// the already-opened connections are closed. n must be in
// [1, MaxPoolConns].
func NewMuxPool(n int, dial func(i int) (io.ReadWriteCloser, error)) (*MuxPool, error) {
	if n < 1 || n > MaxPoolConns {
		return nil, fmt.Errorf("rpc: pool size %d out of range [1, %d]", n, MaxPoolConns)
	}
	p := &MuxPool{
		conns: make([]*MuxClient, n),
		depth: make([]atomic.Uint32, n),
	}
	for i := range p.conns {
		conn, err := dial(i)
		if err != nil {
			for _, c := range p.conns[:i] {
				c.Close()
			}
			return nil, fmt.Errorf("rpc: pool dial conn %d: %w", i, err)
		}
		c := NewMuxClient(conn)
		// Every connection's piggy-backed reports flow through one
		// pool-level sink: the pool records the per-connection queue
		// depth for placement and forwards the report to the shared
		// consumer (typically a switcher EWMA), so a report arriving on
		// ANY pooled connection feeds the same average.
		idx := i
		c.SetOnLoad(func(rep LoadReport) {
			p.depth[idx].Store(rep.QueueDepth)
			if fn := p.onLoad.Load(); fn != nil {
				(*fn)(rep)
			}
		})
		p.conns[i] = c
	}
	return p, nil
}

// DialMuxPool connects a pool of n mux connections to a MuxServer at
// addr.
func DialMuxPool(addr string, n int) (*MuxPool, error) {
	return NewMuxPool(n, func(int) (io.ReadWriteCloser, error) {
		return net.Dial("tcp", addr)
	})
}

// Size returns the number of pooled connections.
func (p *MuxPool) Size() int { return len(p.conns) }

// Conn returns the i-th pooled connection (for inspection; sessions
// should be opened through Session/TaggedSession so placement and
// pool-wide ID allocation apply).
func (p *MuxPool) Conn(i int) *MuxClient { return p.conns[i] }

// place picks the least-loaded healthy connection. Load is the
// connection's in-flight calls plus its last reported session queue
// depth; ties resolve round-robin so an idle pool still stripes
// sessions instead of piling them on connection 0. Dead connections
// are skipped with one atomic load each (no per-scan mutex); with
// every connection poisoned it returns -1 and the caller surfaces the
// typed ErrPoolPoisoned instead of silently pinning new sessions to a
// dead connection.
func (p *MuxPool) place() int {
	n := len(p.conns)
	// Reduce in uint32 before converting: a wrapped counter cast
	// through int would go negative on 32-bit platforms.
	start := int(p.rr.Add(1) % uint32(n))
	best, bestScore := -1, int64(0)
	for k := 0; k < n; k++ {
		i := (start + k) % n
		c := p.conns[i]
		if c.poisoned.Load() {
			continue
		}
		score := c.Outstanding()
		if score > 0 {
			// The reported depth counts only while calls are in flight:
			// with zero outstanding, nothing of ours can be queued
			// server-side, so the last report is a stale snapshot of a
			// finished burst and must not keep penalizing an idle
			// connection (it would only refresh on traffic the stale
			// score itself steers away).
			score += int64(p.depth[i].Load())
		}
		if best < 0 || score < bestScore {
			best, bestScore = i, score
		}
	}
	return best
}

// Session opens a new logical session on the least-loaded connection.
// The returned transport is pinned to that connection for its
// lifetime. With every pooled connection dead it fails with
// ErrPoolPoisoned.
func (p *MuxPool) Session() (*MuxSession, error) { return p.TaggedSession(0) }

// TaggedSession opens a session whose ID carries tag in its top byte
// (see MuxClient.TaggedSession) on the least-loaded connection. The
// pool-wide counter plus the folded connection index keep IDs unique
// across the whole pool; on 20-bit counter wrap, counter value 0 and
// IDs of still-open sessions are skipped (the same guards as the
// plain client's 24-bit path). With every pooled connection dead it
// fails with ErrPoolPoisoned.
func (p *MuxPool) TaggedSession(tag uint8) (*MuxSession, error) {
	i := p.place()
	if i < 0 {
		return nil, fmt.Errorf("rpc: %d-conn pool has no live connection to place a session on: %w",
			len(p.conns), ErrPoolPoisoned)
	}
	const space = 1 << sessionConnShift
	for k := 0; k < space; k++ {
		ctr := p.nextSID.Add(1) & (space - 1)
		if ctr == 0 {
			// Post-wrap the counter passes 0 again; never mint it —
			// with tag 0 on connection 0 it would be session ID 0.
			continue
		}
		sid := uint32(tag)<<sessionTagShift | uint32(i)<<sessionConnShift | ctr
		// Reserve on the owning connection (IDs are connection-scoped
		// on the wire, and the folded index keeps them pool-unique).
		if p.conns[i].reserve(sid) {
			return p.conns[i].newSession(sid), nil
		}
	}
	return nil, fmt.Errorf("rpc: session ID space exhausted: all %d counter values under tag %d are live on conn %d",
		space-1, tag, i)
}

// SetOnLoad registers fn to receive every load report piggy-backed on
// ANY pooled connection's replies — the fan-in that keeps one shared
// EWMA fed no matter which connection a session landed on. Safe to
// call concurrently with traffic; nil unregisters.
func (p *MuxPool) SetOnLoad(fn func(LoadReport)) {
	if fn == nil {
		p.onLoad.Store(nil)
		return
	}
	p.onLoad.Store(&fn)
}

// LoadReports returns how many piggy-backed load reports arrived
// across all pooled connections.
func (p *MuxPool) LoadReports() int64 {
	var n int64
	for _, c := range p.conns {
		n += c.LoadReports()
	}
	return n
}

// Stats returns aggregate traffic counters across all pooled
// connections.
func (p *MuxPool) Stats() Stats {
	var st Stats
	for _, c := range p.conns {
		s := c.Stats()
		st.Calls += s.Calls
		st.BytesSent += s.BytesSent
		st.BytesRecv += s.BytesRecv
	}
	return st
}

// Close tears down every pooled connection; all sessions fail
// afterwards. The first error wins.
func (p *MuxPool) Close() error {
	var err error
	for _, c := range p.conns {
		if cerr := c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
