package rpc

// This file adds multiplexed transports: many logical sessions share
// one connection, each session carrying concurrent request/response
// exchanges. The plain Transport of transport.go remains the
// single-session special case; a MuxSession implements the same
// Transport interface, so everything built on Transport (dbapi.Client,
// the runtime's control-transfer protocol) works unchanged over a
// multiplexed connection.
//
// Mux wire format: every frame is the usual 4-byte length prefix
// followed by a 9-byte header and the body:
//
//	[sid u32][rid u32][kind u8][body...]
//
// sid identifies the session (allocated by the client, scoped to the
// connection), rid the request within the session. Kinds:
//
//	muxCall      client -> server   body = request payload
//	muxReplyOK   server -> client   body = response payload
//	muxReplyErr  server -> client   body = error text
//	muxCloseSess client -> server   session teardown (no reply)
//	muxReplyShed server -> client   body = shed reason (queue overflow)
//
// Reply kinds may additionally carry the muxFlagLoad bit: the body is
// then prefixed with a length-delimited LoadReport (the DB server's
// saturation sample, paper §6.3) ahead of the normal payload. Peers
// that never set the flag ("report-less peers") interoperate
// unchanged: the flag only appears when a server explicitly has a
// LoadSource configured, and a flag-free frame decodes exactly as
// before.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
)

const (
	muxCall byte = iota
	muxReplyOK
	muxReplyErr
	muxCloseSess
	// muxReplyShed rejects a call the server refused to queue (session
	// queue overflow). It is distinct from muxReplyErr so clients can
	// surface the typed ErrOverloaded sentinel: overload is retryable
	// back-off territory, not an application failure.
	muxReplyShed
	// muxTxnCtl carries a two-phase-commit control operation
	// (prepare/commit/abort/status) from a coordinator to a participant
	// shard; body = [op u8][gid u64]. See txn.go. Routed through the
	// session worker when the session is live (ordered with its calls),
	// handled inline otherwise — commit/abort/status are keyed by global
	// transaction ID and outlive the session that prepared them.
	muxTxnCtl
	// muxReplyTxn answers muxTxnCtl; body = [state u8] (a TxnState).
	muxReplyTxn
	// muxMigCtl carries a range-migration control operation
	// (fence/adopt/release; see migrate.go for the body layout).
	muxMigCtl
	// muxReplyMig answers muxMigCtl; body = [token u64].
	muxReplyMig
)

// muxFlagLoad marks a reply frame whose body starts with an encoded
// LoadReport (see wire.go) before the regular payload.
const muxFlagLoad byte = 0x80

// ErrOverloaded reports that the server shed a call because the
// session's queue was full. Callers should back off and retry instead
// of failing the transaction; errors.Is matches it through wrapping.
var ErrOverloaded = errors.New("rpc: server overloaded")

const muxHeaderLen = 9

// muxRetiredCap bounds the retired-session tombstone FIFO kept by
// each side: the server remembers the last muxRetiredCap closed
// session IDs per connection (a call racing its session's close frame
// must fail, not resurrect the session), and the client quarantines a
// closed ID for the same number of closes before letting a wrapped
// counter re-mint it — the two FIFOs advance on the same close events,
// so an ID the client hands out again is guaranteed evicted from the
// server's tombstones.
const muxRetiredCap = 1024

type muxFrame struct {
	sid  uint32
	rid  uint32
	kind byte
	body []byte
}

func writeMuxFrame(w io.Writer, f muxFrame) error {
	// Length prefix and mux header share one stack buffer; the body is
	// written directly — no per-frame copy of the payload (heap-sync
	// transfers can be large and this is the RPC hot path).
	var hdr [4 + muxHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(muxHeaderLen+len(f.body)))
	binary.LittleEndian.PutUint32(hdr[4:8], f.sid)
	binary.LittleEndian.PutUint32(hdr[8:12], f.rid)
	hdr[12] = f.kind
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(f.body) == 0 {
		return nil
	}
	_, err := w.Write(f.body)
	return err
}

func readMuxFrame(r io.Reader) (muxFrame, error) {
	payload, err := readFrame(r)
	if err != nil {
		return muxFrame{}, err
	}
	if len(payload) < muxHeaderLen {
		return muxFrame{}, fmt.Errorf("rpc: mux frame too short (%d bytes)", len(payload))
	}
	return muxFrame{
		sid:  binary.LittleEndian.Uint32(payload),
		rid:  binary.LittleEndian.Uint32(payload[4:]),
		kind: payload[8],
		body: payload[muxHeaderLen:],
	}, nil
}

// ---------------------------------------------------------------------------
// Client side
// ---------------------------------------------------------------------------

// MuxClient multiplexes many sessions over one connection. Sessions
// are created with Session(); each is an independent Transport whose
// calls may be issued concurrently with calls on other sessions (and
// even with other calls on the same session — responses are matched
// by request ID, not order). A session may have a bounded number of
// calls outstanding at once; beyond that the server sheds the excess
// with an error reply.
type MuxClient struct {
	conn io.ReadWriteCloser

	wmu sync.Mutex // serializes frame writes

	mu      sync.Mutex
	pending map[uint64]chan muxFrame // (sid<<32|rid) -> reply slot
	err     error                    // sticky: set when the read loop dies
	closed  bool
	// live is the wrap-collision guard: every session ID currently open
	// on this connection (client- or pool-allocated), plus the closed
	// IDs still quarantined below. The session counters wrap — 24 bits
	// per connection, 20 per pool — and a recycled ID handed to a
	// second session would cross-route replies between the two;
	// reserve/release keep a wrapped counter skipping over IDs that are
	// still open.
	live map[uint32]struct{}
	// recycled quarantines closed IDs in close order, mirroring the
	// server's retired-session tombstone FIFO exactly: the server
	// rejects calls on the last muxRetiredCap closed IDs (to kill calls
	// racing a close), so an ID only becomes allocatable again once
	// enough later closes have evicted it from the far end's tombstones.
	recycled []uint32

	// poisoned mirrors err != nil as one atomic load, so a pool placing
	// sessions can skip a dead connection without taking mu on every
	// placement scan.
	poisoned atomic.Bool

	nextSID atomic.Uint32
	// Self-aligning atomics (plain int64 + atomic.AddInt64 would fault
	// on 32-bit platforms at this struct offset).
	calls, bytesSent, bytesRecv atomic.Int64
	// outstanding counts calls issued but not yet answered — the
	// connection-local load signal a MuxPool balances new sessions by.
	outstanding atomic.Int64

	// onLoad receives every LoadReport piggy-backed on reply frames.
	onLoad      atomic.Pointer[func(LoadReport)]
	loadReports atomic.Int64
}

// NewMuxClient starts a multiplexed client over an existing
// connection and takes ownership of it.
func NewMuxClient(conn io.ReadWriteCloser) *MuxClient {
	c := &MuxClient{conn: conn, pending: map[uint64]chan muxFrame{}, live: map[uint32]struct{}{}}
	go c.readLoop()
	return c
}

// DialMux connects a MuxClient to a MuxServer at addr.
func DialMux(addr string) (*MuxClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewMuxClient(conn), nil
}

func muxKey(sid, rid uint32) uint64 { return uint64(sid)<<32 | uint64(rid) }

func (c *MuxClient) readLoop() {
	for {
		f, err := readMuxFrame(c.conn)
		if err != nil {
			c.fail(fmt.Errorf("rpc: mux connection lost: %w", err))
			return
		}
		c.bytesRecv.Add(int64(len(f.body)) + muxHeaderLen + 4)
		if f.kind&muxFlagLoad != 0 {
			rep, rest, err := splitLoadReport(f.body)
			if err != nil {
				c.fail(fmt.Errorf("rpc: mux load report corrupt: %w", err))
				return
			}
			f.kind &^= muxFlagLoad
			f.body = rest
			c.loadReports.Add(1)
			if fn := c.onLoad.Load(); fn != nil {
				(*fn)(rep)
			}
		}
		c.mu.Lock()
		ch, ok := c.pending[muxKey(f.sid, f.rid)]
		if ok {
			delete(c.pending, muxKey(f.sid, f.rid))
		}
		c.mu.Unlock()
		if ok {
			ch <- f
		}
	}
}

// fail poisons the client: every pending and future call returns err.
func (c *MuxClient) fail(err error) {
	c.poisoned.Store(true)
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	pend := c.pending
	c.pending = map[uint64]chan muxFrame{}
	c.mu.Unlock()
	for _, ch := range pend {
		close(ch) // receiver observes closed channel -> c.err
	}
}

func (c *MuxClient) call(sid, rid uint32, req []byte) ([]byte, error) {
	ch := make(chan muxFrame, 1)
	key := muxKey(sid, rid)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	c.pending[key] = ch
	c.mu.Unlock()
	c.outstanding.Add(1)
	defer c.outstanding.Add(-1)

	c.wmu.Lock()
	err := writeMuxFrame(c.conn, muxFrame{sid: sid, rid: rid, kind: muxCall, body: req})
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, key)
		c.mu.Unlock()
		return nil, err
	}
	c.calls.Add(1)
	c.bytesSent.Add(int64(len(req)) + muxHeaderLen + 4)

	f, ok := <-ch
	if !ok {
		c.mu.Lock()
		err := c.err
		c.mu.Unlock()
		if err == nil {
			err = fmt.Errorf("rpc: mux client closed")
		}
		return nil, err
	}
	switch f.kind {
	case muxReplyOK:
		return f.body, nil
	case muxReplyErr:
		return nil, fmt.Errorf("rpc: remote error: %s", string(f.body))
	case muxReplyShed:
		return nil, fmt.Errorf("rpc: %s: %w", string(f.body), ErrOverloaded)
	}
	return nil, fmt.Errorf("rpc: malformed mux reply kind %d", f.kind)
}

// sessionTagShift puts the session tag in the ID's top byte, leaving a
// 24-bit per-connection counter underneath.
const sessionTagShift = 24

// Pool-allocated session IDs additionally fold the owning connection's
// pool index into the 4 bits under the tag byte, so one pool-wide
// counter yields IDs that are unique across every connection of the
// pool while SessionTag keeps routing (the dual SessionManager reads
// only the top byte). Plain MuxClient sessions don't reserve these
// bits — their 24-bit counter simply wraps through them — so
// SessionConn is meaningful only for pool-placed sessions.
const (
	sessionConnShift = 20
	sessionConnMask  = 0xF
	// MaxPoolConns bounds a MuxPool's size: the connection index must
	// fit the 4 ID bits between the session counter and the tag byte.
	MaxPoolConns = sessionConnMask + 1
)

// SessionTag extracts the variant tag a client encoded into a session
// ID with TaggedSession (0 for plain sessions).
func SessionTag(sid uint32) uint8 { return uint8(sid >> sessionTagShift) }

// SessionConn extracts the pool connection index folded into a
// pool-allocated session ID (0 for sessions opened directly on a
// MuxClient, which also use these bits as plain counter space).
func SessionConn(sid uint32) uint8 {
	return uint8(sid>>sessionConnShift) & sessionConnMask
}

// Session opens a new logical session. The returned transport is safe
// for concurrent use and independent of every other session on the
// connection.
func (c *MuxClient) Session() *MuxSession { return c.TaggedSession(0) }

// TaggedSession opens a session whose ID carries tag in its top byte.
// Tags let one connection multiplex sessions of several server-side
// variants — e.g. the high- and low-budget deployments of dynamic
// switching — with the server routing Open by SessionTag. Session IDs
// stay client-allocated and connection-scoped; the counter wraps after
// 2^24 sessions per connection, at which point two guards engage:
// counter value 0 is never minted (session ID 0 under tag 0 is
// indistinguishable from "no session", and the lowest recycled IDs are
// the likeliest to still be open), and any ID belonging to a
// still-open session is skipped rather than handed out twice (a
// duplicate ID would cross-route the two sessions' replies).
func (c *MuxClient) TaggedSession(tag uint8) *MuxSession {
	const space = 1 << sessionTagShift
	for k := 0; k < space; k++ {
		ctr := c.nextSID.Add(1) & (space - 1)
		if ctr == 0 {
			continue
		}
		sid := ctr | uint32(tag)<<sessionTagShift
		if c.reserve(sid) {
			return &MuxSession{c: c, sid: sid}
		}
	}
	// Every counter value under this tag belongs to a live session —
	// 2^24 concurrently open sessions, beyond any real deployment.
	// Return the (colliding) base ID rather than spin forever; its
	// first call will misbehave exactly as the pre-guard code did.
	return &MuxSession{c: c, sid: uint32(tag) << sessionTagShift}
}

// newSession opens a session under an externally allocated ID the
// caller already reserved (the MuxPool allocates pool-wide IDs with
// the connection index folded in, reserving them on the owning
// connection).
func (c *MuxClient) newSession(sid uint32) *MuxSession {
	return &MuxSession{c: c, sid: sid}
}

// reserve claims sid for a new session; false means a still-open
// session holds it (wrap collision) and the caller must pick another.
func (c *MuxClient) reserve(sid uint32) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, taken := c.live[sid]; taken {
		return false
	}
	c.live[sid] = struct{}{}
	return true
}

// release retires sid into the quarantine FIFO; it returns to the
// allocatable space only after muxRetiredCap further closes, when the
// server's matching tombstone has been evicted too.
func (c *MuxClient) release(sid uint32) {
	c.mu.Lock()
	if _, ok := c.live[sid]; ok {
		c.recycled = append(c.recycled, sid)
		if len(c.recycled) > muxRetiredCap {
			delete(c.live, c.recycled[0])
			c.recycled = c.recycled[1:]
		}
	}
	c.mu.Unlock()
}

// Err returns the sticky transport error, or nil while the connection
// is healthy. A pool skips poisoned connections when placing sessions.
func (c *MuxClient) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Outstanding returns how many calls are currently in flight on this
// connection (issued, not yet answered) across all its sessions.
func (c *MuxClient) Outstanding() int64 { return c.outstanding.Load() }

// SetOnLoad registers fn to receive every load report piggy-backed on
// this connection's replies (any session). Safe to call concurrently
// with traffic; nil unregisters.
func (c *MuxClient) SetOnLoad(fn func(LoadReport)) {
	if fn == nil {
		c.onLoad.Store(nil)
		return
	}
	c.onLoad.Store(&fn)
}

// LoadReports returns how many piggy-backed load reports this
// connection has received.
func (c *MuxClient) LoadReports() int64 { return c.loadReports.Load() }

// Stats returns aggregate traffic counters across all sessions.
func (c *MuxClient) Stats() Stats {
	return Stats{
		Calls:     c.calls.Load(),
		BytesSent: c.bytesSent.Load(),
		BytesRecv: c.bytesRecv.Load(),
	}
}

// Close tears down the connection; all sessions fail afterwards.
func (c *MuxClient) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.conn.Close()
	c.fail(fmt.Errorf("rpc: mux client closed"))
	return err
}

// MuxSession is one logical session on a MuxClient. It implements
// Transport.
type MuxSession struct {
	c       *MuxClient
	sid     uint32
	nextRID atomic.Uint32
	closed  atomic.Bool
}

// ID returns the session's connection-scoped identifier.
func (s *MuxSession) ID() uint32 { return s.sid }

// Call implements Transport.
func (s *MuxSession) Call(req []byte) ([]byte, error) {
	if s.closed.Load() {
		return nil, fmt.Errorf("rpc: session %d closed", s.sid)
	}
	return s.c.call(s.sid, s.nextRID.Add(1), req)
}

// Close implements Transport: it retires this session on the server
// (releasing its state) but leaves the shared connection open.
func (s *MuxSession) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	s.c.release(s.sid)
	s.c.wmu.Lock()
	defer s.c.wmu.Unlock()
	return writeMuxFrame(s.c.conn, muxFrame{sid: s.sid, kind: muxCloseSess})
}

// ---------------------------------------------------------------------------
// Server side
// ---------------------------------------------------------------------------

// SessionHandlers provides per-session request handlers for one
// multiplexed connection. Open is called once per new session ID;
// Closed is called when the session ends (explicit close frame or
// connection teardown), at most once per opened session.
type SessionHandlers interface {
	Open(sid uint32) Handler
	Closed(sid uint32)
}

// HandlerFactory adapts a stateless per-session handler constructor to
// SessionHandlers (no teardown needed).
type HandlerFactory func(sid uint32) Handler

func (f HandlerFactory) Open(sid uint32) Handler { return f(sid) }
func (f HandlerFactory) Closed(uint32)           {}

// sessionWorker preserves per-session request ordering: all calls for
// one session run on one goroutine, while distinct sessions run
// concurrently.
type sessionWorker struct {
	ch chan muxFrame
}

// SessionQueueDepth bounds how many requests one session may have
// outstanding; excess calls are shed with an ErrOverloaded reply
// rather than blocking the connection's read loop (which would wedge
// every session behind one flooded queue). The Pyxis runtime keeps a
// single logical thread per session (at most one outstanding call), so
// the limit is never hit in normal operation. Exported so load
// monitors can normalize queue-depth samples against the capacity.
const SessionQueueDepth = 32

// LoadSource supplies the server's current load sample for
// piggy-backing on reply frames; nil disables reports. queueLen is the
// replying session's queue depth at reply time. Returning ok=false
// omits the report from that frame. Implementations are called from
// every session worker concurrently and must be safe for concurrent
// use.
type LoadSource func(queueLen int) (rep LoadReport, ok bool)

// AdmissionPolicy lets a server refuse work instead of merely
// reporting saturation: the demux loop consults it before creating a
// session and before queueing each call. A returned error sheds the
// frame with a muxReplyShed reply — the client sees the typed
// ErrOverloaded and its existing backoff applies — without any session
// or transaction state having been created. Implementations are called
// from every connection's demux loop and must be safe for concurrent
// use.
type AdmissionPolicy interface {
	// AdmitSession gates creation of a new session. On error the
	// session is not opened (no handler, no worker) and the triggering
	// call is shed; a later call may retry admission.
	AdmitSession(sid uint32) error
	// AdmitCall gates queueing one call on an admitted session;
	// queueLen is the session's queue depth at arrival. On error the
	// call is shed and the session stays live.
	AdmitCall(sid uint32, queueLen int) error
	// SessionClosed releases the admission slot of a session that
	// passed AdmitSession, after its worker drained (explicit close or
	// connection teardown). Called exactly once per admitted session.
	SessionClosed(sid uint32)
}

// MuxServeConfig tunes one demux loop beyond the defaults.
type MuxServeConfig struct {
	// Load, when non-nil, attaches a load report to every reply frame
	// (including sheds — overload is exactly when the peer most wants
	// the signal).
	Load LoadSource
	// Admission, when non-nil, gates session creation and per-call
	// queueing; refused frames are shed with ErrOverloaded replies.
	Admission AdmissionPolicy
}

// ServeMuxConn demuxes one multiplexed connection, dispatching each
// session's requests to its own handler on its own goroutine. It
// returns when the connection fails or closes, after all session
// workers have drained and Closed has fired for each open session.
func ServeMuxConn(conn io.ReadWriteCloser, handlers SessionHandlers) {
	ServeMuxConnConfig(conn, handlers, MuxServeConfig{})
}

// ServeMuxConnConfig is ServeMuxConn with an explicit configuration.
func ServeMuxConnConfig(conn io.ReadWriteCloser, handlers SessionHandlers, cfg MuxServeConfig) {
	// 2PC and range migration are optional capabilities of the
	// connection's handlers; a nil participant answers the control
	// frames with a typed error reply.
	tp, _ := handlers.(TxnParticipant)
	mp, _ := handlers.(MigParticipant)
	var (
		wmu      sync.Mutex
		wg       sync.WaitGroup
		sessions = map[uint32]*sessionWorker{}
		// retired tombstones recently closed session IDs: a call racing
		// its session's close frame can arrive just after the close and
		// must fail, not resurrect the session with fresh empty state.
		// The race window is at most the session's in-flight calls, so
		// a bounded FIFO suffices and keeps long-lived connections from
		// accumulating one entry per session ever served.
		retired      = map[uint32]bool{}
		retiredOrder []uint32
	)
	defer func() {
		for sid, sw := range sessions {
			close(sw.ch)
			delete(sessions, sid)
		}
		wg.Wait()
	}()
	// shed refuses one call with the typed shed reply (the client sees
	// ErrOverloaded and backs off); false means the connection is dead.
	shed := func(f muxFrame, reason string, queueLen int) bool {
		out := muxFrame{sid: f.sid, rid: f.rid, kind: muxReplyShed, body: []byte(reason)}
		attachLoad(&out, cfg.Load, queueLen)
		wmu.Lock()
		werr := writeMuxFrame(conn, out)
		wmu.Unlock()
		return werr == nil
	}
	for {
		f, err := readMuxFrame(conn)
		if err != nil {
			return
		}
		switch f.kind {
		case muxCall:
			if retired[f.sid] {
				wmu.Lock()
				werr := writeMuxFrame(conn, muxFrame{sid: f.sid, rid: f.rid, kind: muxReplyErr,
					body: []byte(fmt.Sprintf("session %d closed", f.sid))})
				wmu.Unlock()
				if werr != nil {
					return
				}
				continue
			}
			sw := sessions[f.sid]
			if sw == nil {
				// Session admission: refused sessions are never opened —
				// no handler, no worker, no transaction state — so the
				// shed is free to retry once capacity returns.
				if cfg.Admission != nil {
					if aerr := cfg.Admission.AdmitSession(f.sid); aerr != nil {
						if !shed(f, aerr.Error(), 0) {
							return
						}
						continue
					}
				}
				sw = &sessionWorker{ch: make(chan muxFrame, SessionQueueDepth)}
				sessions[f.sid] = sw
				h := handlers.Open(f.sid)
				sid := f.sid
				wg.Add(1)
				go func() {
					defer wg.Done()
					defer func() {
						handlers.Closed(sid)
						if cfg.Admission != nil {
							// The admission slot frees only after the
							// handler released the session's state.
							cfg.Admission.SessionClosed(sid)
						}
					}()
					for req := range sw.ch {
						var out muxFrame
						if req.kind == muxTxnCtl {
							// Txn control rides the session's worker so it
							// stays ordered with the calls ahead of it.
							out = txnCtlReply(tp, req)
						} else if req.kind == muxMigCtl {
							// Migration control likewise: an ADOPT must land
							// after the calls that opened the session's
							// transaction and before the drain that relies
							// on the exemption.
							out = migCtlReply(mp, req)
						} else {
							resp, herr := h(req.body)
							out = muxFrame{sid: req.sid, rid: req.rid, kind: muxReplyOK, body: resp}
							if herr != nil {
								out.kind = muxReplyErr
								out.body = []byte(herr.Error())
							}
						}
						attachLoad(&out, cfg.Load, len(sw.ch))
						wmu.Lock()
						werr := writeMuxFrame(conn, out)
						wmu.Unlock()
						if werr != nil {
							// The connection is dead; keep draining so the
							// read loop never blocks on a full queue before
							// it notices the failure itself.
							for range sw.ch {
							}
							return
						}
					}
				}()
			}
			// Call admission: a saturated server tightens the effective
			// queue bound below the structural SessionQueueDepth.
			if cfg.Admission != nil {
				if aerr := cfg.Admission.AdmitCall(f.sid, len(sw.ch)); aerr != nil {
					if !shed(f, aerr.Error(), len(sw.ch)) {
						return
					}
					continue
				}
			}
			select {
			case sw.ch <- f:
			default:
				// Queue full: shed this call so one flooded session
				// can never stall the read loop (and with it every
				// other session on the connection). The typed shed
				// reply lets the client back off and retry instead of
				// failing its transaction.
				if !shed(f, fmt.Sprintf("session %d queue overflow (max %d outstanding calls)", f.sid, SessionQueueDepth), len(sw.ch)) {
					return
				}
			}
		case muxTxnCtl:
			// 2PC control. No admission gate and no retired-sid check:
			// commit/abort/status are keyed by the global transaction ID
			// and must get through even after the preparing session closed
			// (that is exactly the in-doubt recovery path), and shedding a
			// decision frame under load would only widen the in-doubt
			// window it is trying to close. A live session's frames route
			// through its worker for ordering; otherwise handle inline —
			// the ops are quick map lookups, never lock waits.
			if sw := sessions[f.sid]; sw != nil {
				select {
				case sw.ch <- f:
				default:
					if !shed(f, fmt.Sprintf("session %d queue overflow (max %d outstanding calls)", f.sid, SessionQueueDepth), len(sw.ch)) {
						return
					}
				}
				continue
			}
			out := txnCtlReply(tp, f)
			attachLoad(&out, cfg.Load, 0)
			wmu.Lock()
			werr := writeMuxFrame(conn, out)
			wmu.Unlock()
			if werr != nil {
				return
			}
		case muxMigCtl:
			// Migration control: same routing rules as txn-ctl —
			// fence/release are database-wide and must get through even
			// with no live session, while a live session's frames ride
			// its worker so ADOPT stays ordered with the drain.
			if sw := sessions[f.sid]; sw != nil {
				select {
				case sw.ch <- f:
				default:
					if !shed(f, fmt.Sprintf("session %d queue overflow (max %d outstanding calls)", f.sid, SessionQueueDepth), len(sw.ch)) {
						return
					}
				}
				continue
			}
			out := migCtlReply(mp, f)
			attachLoad(&out, cfg.Load, 0)
			wmu.Lock()
			werr := writeMuxFrame(conn, out)
			wmu.Unlock()
			if werr != nil {
				return
			}
		case muxCloseSess:
			if sw := sessions[f.sid]; sw != nil {
				close(sw.ch)
				delete(sessions, f.sid)
			}
			if !retired[f.sid] {
				retired[f.sid] = true
				retiredOrder = append(retiredOrder, f.sid)
				if len(retiredOrder) > muxRetiredCap {
					delete(retired, retiredOrder[0])
					retiredOrder = retiredOrder[1:]
				}
			}
		default:
			// Unknown frame kind from a client: drop the connection.
			return
		}
	}
}

// attachLoad prefixes a load report onto a reply frame when a source
// is configured and currently has a sample.
func attachLoad(out *muxFrame, ls LoadSource, queueLen int) {
	if ls == nil {
		return
	}
	rep, ok := ls(queueLen)
	if !ok {
		return
	}
	out.kind |= muxFlagLoad
	// Single allocation: report prefix + payload (this runs on every
	// reply of every session worker).
	body := appendLoadReport(make([]byte, 0, 1+loadReportLen+len(out.body)), rep)
	out.body = append(body, out.body...)
}

// MuxServer accepts connections and serves each as a multiplexed
// session stream. The factory runs once per connection, producing that
// connection's SessionHandlers (so session IDs from different
// connections never collide).
type MuxServer struct {
	lis     net.Listener
	factory func() SessionHandlers
	wg      sync.WaitGroup
	mu      sync.Mutex
	closed  bool
	cfg     MuxServeConfig
}

// NewMuxServer listens on addr, creating per-connection session
// handlers via factory.
func NewMuxServer(addr string, factory func() SessionHandlers) (*MuxServer, error) {
	return NewMuxServerConfig(addr, factory, MuxServeConfig{})
}

// NewMuxServerConfig is NewMuxServer with an explicit demux
// configuration in place before the first connection can be accepted
// (SetLoadSource only affects connections accepted after the call).
func NewMuxServerConfig(addr string, factory func() SessionHandlers, cfg MuxServeConfig) (*MuxServer, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &MuxServer{lis: lis, factory: factory, cfg: cfg}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *MuxServer) Addr() string { return s.lis.Addr().String() }

// SetLoadSource configures a load source whose samples are
// piggy-backed on every reply of connections accepted afterwards
// (in-flight connections keep their configuration).
func (s *MuxServer) SetLoadSource(ls LoadSource) {
	s.mu.Lock()
	s.cfg.Load = ls
	s.mu.Unlock()
}

// SetAdmission configures the admission policy consulted by
// connections accepted afterwards (in-flight connections keep their
// configuration). The policy is shared server-wide, so its session
// accounting spans every connection.
func (s *MuxServer) SetAdmission(p AdmissionPolicy) {
	s.mu.Lock()
	s.cfg.Admission = p
	s.mu.Unlock()
}

func (s *MuxServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		cfg := s.cfg
		s.mu.Unlock()
		h := s.factory()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			ServeMuxConnConfig(conn, h, cfg)
		}()
	}
}

// Close stops accepting and waits for in-flight connections to drain.
func (s *MuxServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	err := s.lis.Close()
	s.wg.Wait()
	return err
}
