// Package core implements the Pyxis partitioner (paper §4.3): it
// lowers the weighted partition graph to the Binary Integer Program of
// Fig. 5 — same-placement groups contracted, pins applied — invokes a
// pluggable solver, and lifts the solution back to a per-node
// Placement. It also generates the multi-budget partition family used
// for dynamic switching (§6.3).
package core

import (
	"fmt"
	"sort"
	"time"

	"pyxis/internal/pdg"
	"pyxis/internal/solver"
	"pyxis/internal/source"
)

// Partitioner assigns placements for one partition graph.
type Partitioner struct {
	Graph *pdg.Graph
	// Solver defaults to solver.Auto (budgeted exact branch & bound,
	// falling back to Lagrangian min cut on large instances).
	Solver solver.Solver
}

// New returns a Partitioner with the default solver.
func New(g *pdg.Graph) *Partitioner {
	return &Partitioner{Graph: g, Solver: solver.Auto{}}
}

// Report describes one solved partitioning.
type Report struct {
	Budget     float64
	Objective  float64 // estimated network time of cut edges (seconds)
	Load       float64 // estimated DB instruction load
	TotalLoad  float64 // load if everything ran on the DB
	SolverName string
	SolveTime  time.Duration
	DBNodes    int // statement nodes placed on the database
	AppNodes   int
}

func (r *Report) String() string {
	return fmt.Sprintf("budget=%.0f load=%.0f/%.0f objective=%.6fs stmts(db/app)=%d/%d solver=%s in %v",
		r.Budget, r.Load, r.TotalLoad, r.Objective, r.DBNodes, r.AppNodes, r.SolverName, r.SolveTime)
}

// Partition solves the placement problem under an instruction budget
// for the database server.
func (pt *Partitioner) Partition(budget float64) (pdg.Placement, *Report, error) {
	s := pt.Solver
	if s == nil {
		s = solver.Auto{}
	}
	prob, ids, err := Lower(pt.Graph, budget)
	if err != nil {
		return nil, nil, err
	}
	start := time.Now()
	sol, err := s.Solve(prob)
	if err != nil {
		return nil, nil, fmt.Errorf("core: %s: %w", s.Name(), err)
	}
	elapsed := time.Since(start)

	place := Lift(pt.Graph, prob, ids, sol)
	if err := pt.Graph.Validate(place); err != nil {
		return nil, nil, err
	}

	rep := &Report{
		Budget:     budget,
		Objective:  sol.Objective,
		Load:       sol.Load,
		SolverName: s.Name(),
		SolveTime:  elapsed,
	}
	for _, n := range pt.Graph.Nodes {
		rep.TotalLoad += n.Weight
		if n.Kind != pdg.StmtNode {
			continue
		}
		if place.Of(n.ID) == pdg.DB {
			rep.DBNodes++
		} else {
			rep.AppNodes++
		}
	}
	return place, rep, nil
}

// Lower converts the partition graph into a solver.Problem, contracting
// same-placement groups into supernodes. ids maps each NodeID to its
// problem variable index.
func Lower(g *pdg.Graph, budget float64) (*solver.Problem, map[source.NodeID]int, error) {
	// Union-find over group members.
	parent := map[source.NodeID]source.NodeID{}
	var find func(x source.NodeID) source.NodeID
	find = func(x source.NodeID) source.NodeID {
		p, ok := parent[x]
		if !ok || p == x {
			return x
		}
		root := find(p)
		parent[x] = root
		return root
	}
	union := func(a, b source.NodeID) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for _, grp := range g.Groups {
		for _, id := range grp[1:] {
			union(grp[0], id)
		}
	}

	// Deterministic variable numbering: sorted roots.
	var rootIDs []source.NodeID
	seen := map[source.NodeID]bool{}
	var allIDs []source.NodeID
	for id := range g.Nodes {
		allIDs = append(allIDs, id)
	}
	sort.Slice(allIDs, func(i, j int) bool { return allIDs[i] < allIDs[j] })
	for _, id := range allIDs {
		r := find(id)
		if !seen[r] {
			seen[r] = true
			rootIDs = append(rootIDs, r)
		}
	}
	varOf := map[source.NodeID]int{}
	for i, r := range rootIDs {
		varOf[r] = i
	}
	ids := map[source.NodeID]int{}
	for _, id := range allIDs {
		ids[id] = varOf[find(id)]
	}

	prob := &solver.Problem{
		N:          len(rootIDs),
		NodeWeight: make([]float64, len(rootIDs)),
		Pin:        make([]int8, len(rootIDs)),
		Budget:     budget,
	}
	for i := range prob.Pin {
		prob.Pin[i] = solver.PinFree
	}
	for _, id := range allIDs {
		v := ids[id]
		n := g.Nodes[id]
		prob.NodeWeight[v] += n.Weight
		if n.Pin != pdg.Unpinned {
			want := solver.PinApp
			if n.Pin == pdg.DB {
				want = solver.PinDB
			}
			if prob.Pin[v] != solver.PinFree && prob.Pin[v] != want {
				return nil, nil, fmt.Errorf("core: conflicting pins in group of node %d (%s)", id, n.Label)
			}
			prob.Pin[v] = want
		}
	}
	// Merge parallel edges.
	acc := map[[2]int]float64{}
	for _, e := range g.Edges {
		if e.Kind == pdg.OutputEdge || e.Kind == pdg.AntiEdge {
			continue
		}
		u, v := ids[e.Src], ids[e.Dst]
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		acc[[2]int{u, v}] += e.Weight
	}
	var keys [][2]int
	for k := range acc {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		prob.Edges = append(prob.Edges, solver.Edge{U: k[0], V: k[1], W: acc[k]})
	}
	return prob, ids, nil
}

// Lift expands a solver solution back to per-node placements.
func Lift(g *pdg.Graph, prob *solver.Problem, ids map[source.NodeID]int, sol *solver.Solution) pdg.Placement {
	place := pdg.Placement{}
	for id := range g.Nodes {
		if sol.Assign[ids[id]] {
			place[id] = pdg.DB
		} else {
			place[id] = pdg.App
		}
	}
	return place
}

// TotalLoad returns the summed statement load of the graph (the budget
// that admits an everything-on-DB partition).
func TotalLoad(g *pdg.Graph) float64 {
	total := 0.0
	for _, n := range g.Nodes {
		total += n.Weight
	}
	return total
}

// BudgetLevels returns budgets at the given fractions of the total
// load (used to pre-generate the partition family for dynamic
// switching, §6.3).
func BudgetLevels(g *pdg.Graph, fractions ...float64) []float64 {
	total := TotalLoad(g)
	out := make([]float64, len(fractions))
	for i, f := range fractions {
		out[i] = total * f
	}
	return out
}
