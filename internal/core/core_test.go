package core

import (
	"testing"

	"pyxis/internal/analysis"
	"pyxis/internal/pdg"
	"pyxis/internal/profile"
	"pyxis/internal/solver"
	"pyxis/internal/source"
)

func buildGraph(t *testing.T) *pdg.Graph {
	t.Helper()
	prog, err := source.Load(`
class C {
    int f;
    C() { f = 0; }
    entry int run(int n) {
        int s = 0;
        for (int i = 0; i < n; i++) {
            db.update("UPDATE t SET v = v + 1 WHERE k = 1");
            s += i;
        }
        db.update("UPDATE t SET v = ? WHERE k = 2", s);
        f = s;
        sys.print(s);
        return s;
    }
}`)
	if err != nil {
		t.Fatal(err)
	}
	res := analysis.Run(prog)
	prof := profile.New()
	// Fake counts: the loop ran hot.
	for id := range prog.Stmts {
		prof.Count[id] = 10
	}
	return pdg.Build(res, prof, pdg.Options{})
}

func TestLowerContractsGroups(t *testing.T) {
	g := buildGraph(t)
	prob, ids, err := Lower(g, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := prob.Validate(); err != nil {
		t.Fatal(err)
	}
	// The two db.update statements must share a variable.
	if len(g.Groups) != 1 || len(g.Groups[0]) != 2 {
		t.Fatalf("groups = %v", g.Groups)
	}
	a, b := ids[g.Groups[0][0]], ids[g.Groups[0][1]]
	if a != b {
		t.Errorf("JDBC group not contracted: vars %d, %d", a, b)
	}
	// Node weights of merged nodes accumulate.
	want := g.Nodes[g.Groups[0][0]].Weight + g.Nodes[g.Groups[0][1]].Weight
	if prob.NodeWeight[a] != want {
		t.Errorf("merged weight = %v, want %v", prob.NodeWeight[a], want)
	}
	// Pins survive lowering.
	if prob.Pin[ids[g.DBCodeID]] != solver.PinDB {
		t.Error("db code pin lost")
	}
	if prob.Pin[ids[g.AppClientID]] != solver.PinApp {
		t.Error("app client pin lost")
	}
}

func TestPartitionBudgetsMonotone(t *testing.T) {
	g := buildGraph(t)
	pt := New(g)
	prevDB := -1
	for _, frac := range []float64{0, 0.5, 1} {
		place, rep, err := pt.Partition(TotalLoad(g) * frac)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Validate(place); err != nil {
			t.Fatal(err)
		}
		if rep.DBNodes < prevDB {
			// Not strictly guaranteed in general, but holds for this
			// fixture: more budget, more statements server-side.
			t.Errorf("DB statements decreased with budget: %d -> %d", prevDB, rep.DBNodes)
		}
		prevDB = rep.DBNodes
		if rep.Load > TotalLoad(g)*frac+1e-9 {
			t.Errorf("budget violated: load %v > %v", rep.Load, TotalLoad(g)*frac)
		}
	}
}

func TestBudgetLevels(t *testing.T) {
	g := buildGraph(t)
	levels := BudgetLevels(g, 0, 0.5, 1)
	total := TotalLoad(g)
	if levels[0] != 0 || levels[1] != total/2 || levels[2] != total {
		t.Errorf("levels = %v (total %v)", levels, total)
	}
}

func TestReportString(t *testing.T) {
	g := buildGraph(t)
	_, rep, err := New(g).Partition(0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.String() == "" || rep.SolverName == "" {
		t.Error("report incomplete")
	}
}
