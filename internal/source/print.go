package source

import (
	"fmt"
	"strconv"
	"strings"
)

// Print renders the program back to PyxJ source. The output is
// re-parseable and is the "normalized source" the rest of the
// pipeline refers to. An optional annotate callback can prefix each
// statement (PyxIL uses it to print :APP:/:DB: placements).
func Print(p *Program) string { return PrintAnnotated(p, nil, nil) }

// PrintAnnotated renders the program with per-statement prefix and
// suffix annotations. Either callback may be nil.
func PrintAnnotated(p *Program, prefix func(Stmt) string, suffix func(Stmt) []string) string {
	pr := &printer{prefix: prefix, suffix: suffix}
	for i, c := range p.Classes {
		if i > 0 {
			pr.nl()
		}
		pr.class(c)
	}
	return pr.b.String()
}

type printer struct {
	b      strings.Builder
	indent int
	prefix func(Stmt) string
	suffix func(Stmt) []string
}

func (pr *printer) nl()           { pr.b.WriteByte('\n') }
func (pr *printer) pad()          { pr.b.WriteString(strings.Repeat("    ", pr.indent)) }
func (pr *printer) line(s string) { pr.pad(); pr.b.WriteString(s); pr.nl() }
func (pr *printer) open(s string) { pr.line(s + " {"); pr.indent++ }
func (pr *printer) close()        { pr.indent--; pr.line("}") }

func (pr *printer) class(c *Class) {
	pr.open("class " + c.Name)
	for _, f := range c.Fields {
		pr.line(fmt.Sprintf("%s %s;", f.Type, f.Name))
	}
	for _, m := range c.Methods {
		pr.nl()
		pr.method(m)
	}
	pr.close()
}

func (pr *printer) method(m *Method) {
	var params []string
	for _, p := range m.Params {
		params = append(params, fmt.Sprintf("%s %s", p.Type, p.Name))
	}
	head := ""
	if m.Entry {
		head = "entry "
	}
	if m.IsCtor {
		head += fmt.Sprintf("%s(%s)", m.Name, strings.Join(params, ", "))
	} else {
		head += fmt.Sprintf("%s %s(%s)", m.Ret, m.Name, strings.Join(params, ", "))
	}
	pr.open(head)
	pr.stmts(m.Body)
	pr.close()
}

func (pr *printer) stmts(b *Block) {
	for _, s := range b.Stmts {
		pr.stmt(s)
	}
}

func (pr *printer) ann(s Stmt) string {
	if pr.prefix == nil {
		return ""
	}
	return pr.prefix(s)
}

func (pr *printer) post(s Stmt) {
	if pr.suffix == nil {
		return
	}
	for _, line := range pr.suffix(s) {
		pr.line(line)
	}
}

func (pr *printer) stmt(s Stmt) {
	a := pr.ann(s)
	switch st := s.(type) {
	case *DeclStmt:
		if st.Init != nil {
			pr.line(fmt.Sprintf("%s%s %s = %s;", a, st.Local.Type, st.Local.Name, ExprString(st.Init)))
		} else {
			pr.line(fmt.Sprintf("%s%s %s;", a, st.Local.Type, st.Local.Name))
		}
	case *AssignStmt:
		pr.line(fmt.Sprintf("%s%s %s %s;", a, ExprString(st.LHS), st.Op, ExprString(st.RHS)))
	case *ExprStmt:
		pr.line(fmt.Sprintf("%s%s;", a, ExprString(st.X)))
	case *IfStmt:
		pr.pad()
		pr.b.WriteString(fmt.Sprintf("%sif (%s) {\n", a, ExprString(st.Cond)))
		pr.indent++
		pr.stmts(st.Then)
		pr.indent--
		if st.Else != nil {
			pr.line("} else {")
			pr.indent++
			pr.stmts(st.Else)
			pr.indent--
		}
		pr.line("}")
	case *WhileStmt:
		pr.pad()
		pr.b.WriteString(fmt.Sprintf("%swhile (%s) {\n", a, ExprString(st.Cond)))
		pr.indent++
		pr.stmts(st.Body)
		pr.indent--
		pr.line("}")
	case *ForEachStmt:
		pr.pad()
		pr.b.WriteString(fmt.Sprintf("%sfor (%s %s : %s) {\n", a, st.Var.Type, st.Var.Name, ExprString(st.Arr)))
		pr.indent++
		pr.stmts(st.Body)
		pr.indent--
		pr.line("}")
	case *ReturnStmt:
		if st.X != nil {
			pr.line(fmt.Sprintf("%sreturn %s;", a, ExprString(st.X)))
		} else {
			pr.line(a + "return;")
		}
	case *BreakStmt:
		pr.line(a + "break;")
	}
	pr.post(s)
}

// ExprString renders an expression as PyxJ source.
func ExprString(e Expr) string {
	switch x := e.(type) {
	case nil:
		return ""
	case *Lit:
		switch x.T.K {
		case KInt:
			return strconv.FormatInt(x.I, 10)
		case KDouble:
			s := strconv.FormatFloat(x.F, 'g', -1, 64)
			if !strings.ContainsAny(s, ".eE") {
				s += ".0"
			}
			return s
		case KString:
			return strconv.Quote(x.S)
		case KBool:
			if x.B {
				return "true"
			}
			return "false"
		default:
			return "null"
		}
	case *VarExpr:
		return x.Name
	case *ThisExpr:
		return "this"
	case *ConvExpr:
		return ExprString(x.X)
	case *FieldExpr:
		if _, isThis := x.Recv.(*ThisExpr); isThis {
			return x.Name
		}
		return ExprString(x.Recv) + "." + x.Name
	case *IndexExpr:
		return fmt.Sprintf("%s[%s]", ExprString(x.Arr), ExprString(x.Idx))
	case *BinaryExpr:
		return fmt.Sprintf("(%s %s %s)", ExprString(x.L), x.Op, ExprString(x.R))
	case *UnaryExpr:
		op := "-"
		if x.Op == OpNot {
			op = "!"
		}
		return op + ExprString(x.X)
	case *CallExpr:
		recv := ""
		if x.Recv != nil {
			if _, isThis := x.Recv.(*ThisExpr); !isThis {
				recv = ExprString(x.Recv) + "."
			}
		}
		return fmt.Sprintf("%s%s(%s)", recv, x.Name, argList(x.Args))
	case *BuiltinExpr:
		switch {
		case x.B == BLen:
			return ExprString(x.Recv) + ".length"
		case x.Recv != nil:
			return fmt.Sprintf("%s.%s(%s)", ExprString(x.Recv), x.B, argList(x.Args))
		default:
			return fmt.Sprintf("%s(%s)", x.B, argList(x.Args))
		}
	case *NewObjectExpr:
		return fmt.Sprintf("new %s(%s)", x.Class.Name, argList(x.Args))
	case *NewArrayExpr:
		return fmt.Sprintf("new %s[%s]", x.Elem, ExprString(x.Len))
	}
	return "<?>"
}

func argList(args []Expr) string {
	parts := make([]string, len(args))
	for i, a := range args {
		parts[i] = ExprString(a)
	}
	return strings.Join(parts, ", ")
}
