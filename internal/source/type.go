package source

import "pyxis/internal/val"

// TypeKind enumerates PyxJ types.
type TypeKind uint8

const (
	KVoid TypeKind = iota
	KInt
	KDouble
	KBool
	KString
	KNull  // the type of the null literal
	KClass // user-defined class
	KArray // element type in Elem
	KTable // database query result
)

// Type is a PyxJ static type. Class types carry their resolved *Class;
// array types carry the element type.
type Type struct {
	K     TypeKind
	Class *Class
	Elem  *Type
}

// Named type constructors.

func VoidT() Type          { return Type{K: KVoid} }
func IntT() Type           { return Type{K: KInt} }
func DoubleT() Type        { return Type{K: KDouble} }
func BoolT() Type          { return Type{K: KBool} }
func StringT() Type        { return Type{K: KString} }
func NullT() Type          { return Type{K: KNull} }
func TableT() Type         { return Type{K: KTable} }
func ClassT(c *Class) Type { return Type{K: KClass, Class: c} }
func ArrayT(elem Type) Type {
	e := elem
	return Type{K: KArray, Elem: &e}
}

// Equal reports structural type equality.
func (t Type) Equal(o Type) bool {
	if t.K != o.K {
		return false
	}
	switch t.K {
	case KClass:
		return t.Class == o.Class
	case KArray:
		return t.Elem.Equal(*o.Elem)
	}
	return true
}

// IsRef reports whether values of this type live on the heap.
func (t Type) IsRef() bool {
	return t.K == KClass || t.K == KArray || t.K == KTable || t.K == KNull
}

// IsNumeric reports int or double.
func (t Type) IsNumeric() bool { return t.K == KInt || t.K == KDouble }

// AssignableFrom reports whether a value of type src may be assigned
// to a location of type t (identical types, null→ref, int→double).
func (t Type) AssignableFrom(src Type) bool {
	if t.Equal(src) {
		return true
	}
	if t.K == KDouble && src.K == KInt {
		return true
	}
	if t.IsRef() && src.K == KNull {
		return true
	}
	return false
}

// Zero returns the zero value of the type.
func (t Type) Zero() val.Value {
	switch t.K {
	case KInt:
		return val.IntV(0)
	case KDouble:
		return val.DoubleV(0)
	case KBool:
		return val.BoolV(false)
	case KString:
		return val.StrV("")
	default:
		return val.NullV()
	}
}

func (t Type) String() string {
	switch t.K {
	case KVoid:
		return "void"
	case KInt:
		return "int"
	case KDouble:
		return "double"
	case KBool:
		return "bool"
	case KString:
		return "string"
	case KNull:
		return "null"
	case KTable:
		return "table"
	case KClass:
		if t.Class != nil {
			return t.Class.Name
		}
		return "<class>"
	case KArray:
		return t.Elem.String() + "[]"
	}
	return "<?>"
}
