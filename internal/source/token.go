package source

import "fmt"

// TokKind enumerates lexical token kinds of PyxJ.
type TokKind uint8

const (
	TEOF TokKind = iota
	TIdent
	TInt
	TFloat
	TString

	// Punctuation and operators.
	TLParen
	TRParen
	TLBrace
	TRBrace
	TLBracket
	TRBracket
	TSemi
	TComma
	TDot
	TColon
	TAssign   // =
	TPlusEq   // +=
	TMinusEq  // -=
	TStarEq   // *=
	TSlashEq  // /=
	TPlusPlus // ++
	TMinusMinus
	TPlus
	TMinus
	TStar
	TSlash
	TPercent
	TNot
	TEq // ==
	TNe // !=
	TLt
	TLe
	TGt
	TGe
	TAndAnd
	TOrOr

	// Keywords.
	TKwClass
	TKwEntry
	TKwInt
	TKwDouble
	TKwBool
	TKwString
	TKwVoid
	TKwTable
	TKwIf
	TKwElse
	TKwWhile
	TKwFor
	TKwReturn
	TKwBreak
	TKwNew
	TKwTrue
	TKwFalse
	TKwNull
	TKwThis
)

var keywords = map[string]TokKind{
	"class":  TKwClass,
	"entry":  TKwEntry,
	"int":    TKwInt,
	"double": TKwDouble,
	"bool":   TKwBool,
	"string": TKwString,
	"void":   TKwVoid,
	"table":  TKwTable,
	"if":     TKwIf,
	"else":   TKwElse,
	"while":  TKwWhile,
	"for":    TKwFor,
	"return": TKwReturn,
	"break":  TKwBreak,
	"new":    TKwNew,
	"true":   TKwTrue,
	"false":  TKwFalse,
	"null":   TKwNull,
	"this":   TKwThis,
}

var tokNames = map[TokKind]string{
	TEOF: "EOF", TIdent: "identifier", TInt: "int literal", TFloat: "float literal",
	TString: "string literal", TLParen: "(", TRParen: ")", TLBrace: "{", TRBrace: "}",
	TLBracket: "[", TRBracket: "]", TSemi: ";", TComma: ",", TDot: ".", TColon: ":",
	TAssign: "=", TPlusEq: "+=", TMinusEq: "-=", TStarEq: "*=", TSlashEq: "/=",
	TPlusPlus: "++", TMinusMinus: "--", TPlus: "+", TMinus: "-", TStar: "*",
	TSlash: "/", TPercent: "%", TNot: "!", TEq: "==", TNe: "!=", TLt: "<",
	TLe: "<=", TGt: ">", TGe: ">=", TAndAnd: "&&", TOrOr: "||",
	TKwClass: "class", TKwEntry: "entry", TKwInt: "int", TKwDouble: "double",
	TKwBool: "bool", TKwString: "string", TKwVoid: "void", TKwTable: "table",
	TKwIf: "if", TKwElse: "else", TKwWhile: "while", TKwFor: "for",
	TKwReturn: "return", TKwBreak: "break", TKwNew: "new", TKwTrue: "true",
	TKwFalse: "false", TKwNull: "null", TKwThis: "this",
}

func (k TokKind) String() string {
	if s, ok := tokNames[k]; ok {
		return s
	}
	return fmt.Sprintf("tok(%d)", uint8(k))
}

// Pos is a line/column source position (1-based).
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token with its literal text and position.
type Token struct {
	Kind TokKind
	Text string
	Pos  Pos
}
