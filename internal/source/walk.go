package source

// WalkStmts invokes fn on every statement in the block, in source
// order, recursing into nested blocks and loop/if bodies. If fn
// returns false, children of that statement are skipped.
func WalkStmts(b *Block, fn func(Stmt) bool) {
	if b == nil {
		return
	}
	for _, s := range b.Stmts {
		walkStmt(s, fn)
	}
}

func walkStmt(s Stmt, fn func(Stmt) bool) {
	if !fn(s) {
		return
	}
	switch st := s.(type) {
	case *IfStmt:
		WalkStmts(st.Then, fn)
		WalkStmts(st.Else, fn)
	case *WhileStmt:
		WalkStmts(st.Body, fn)
	case *ForEachStmt:
		WalkStmts(st.Body, fn)
	}
}

// WalkMethodStmts walks all statements of a method body.
func WalkMethodStmts(m *Method, fn func(Stmt) bool) { WalkStmts(m.Body, fn) }

// WalkExprs invokes fn on every expression in the statement (not
// recursing into nested statements), in evaluation order, including
// sub-expressions (parents after children is NOT guaranteed; fn is
// called on the node before its children).
func WalkExprs(s Stmt, fn func(Expr)) {
	switch st := s.(type) {
	case *DeclStmt:
		walkExpr(st.Init, fn)
	case *AssignStmt:
		walkExpr(st.LHS, fn)
		walkExpr(st.RHS, fn)
	case *ExprStmt:
		walkExpr(st.X, fn)
	case *IfStmt:
		walkExpr(st.Cond, fn)
	case *WhileStmt:
		walkExpr(st.Cond, fn)
	case *ForEachStmt:
		walkExpr(st.Arr, fn)
	case *ReturnStmt:
		walkExpr(st.X, fn)
	}
}

func walkExpr(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *FieldExpr:
		walkExpr(x.Recv, fn)
	case *IndexExpr:
		walkExpr(x.Arr, fn)
		walkExpr(x.Idx, fn)
	case *BinaryExpr:
		walkExpr(x.L, fn)
		walkExpr(x.R, fn)
	case *UnaryExpr:
		walkExpr(x.X, fn)
	case *ConvExpr:
		walkExpr(x.X, fn)
	case *CallExpr:
		walkExpr(x.Recv, fn)
		for _, a := range x.Args {
			walkExpr(a, fn)
		}
	case *BuiltinExpr:
		walkExpr(x.Recv, fn)
		for _, a := range x.Args {
			walkExpr(a, fn)
		}
	case *NewObjectExpr:
		for _, a := range x.Args {
			walkExpr(a, fn)
		}
	case *NewArrayExpr:
		walkExpr(x.Len, fn)
	}
}

// Calls returns the user-method call expressions made directly by s.
func Calls(s Stmt) []*CallExpr {
	var out []*CallExpr
	WalkExprs(s, func(e Expr) {
		if c, ok := e.(*CallExpr); ok {
			out = append(out, c)
		}
	})
	return out
}

// Builtins returns the builtin call expressions made directly by s.
func Builtins(s Stmt) []*BuiltinExpr {
	var out []*BuiltinExpr
	WalkExprs(s, func(e Expr) {
		if b, ok := e.(*BuiltinExpr); ok {
			out = append(out, b)
		}
	})
	return out
}

// HasDBCall reports whether the statement performs a database call.
func HasDBCall(s Stmt) bool {
	for _, b := range Builtins(s) {
		if b.B.IsDB() {
			return true
		}
	}
	return false
}

// HasPrint reports whether the statement writes to the console.
func HasPrint(s Stmt) bool {
	for _, b := range Builtins(s) {
		if b.B == BPrint {
			return true
		}
	}
	return false
}
