package source

import "fmt"

// Check resolves names and types in a parsed program, rewrites
// sugar (table accessors, array .length, implicit int→double
// conversions), assigns frame slots to locals, and populates the
// program's NodeID indexes. It must be called exactly once per parse.
func Check(prog *Program) error {
	c := &checker{prog: prog}
	prog.Stmts = map[NodeID]Stmt{}
	prog.Fields = map[NodeID]*Field{}
	prog.MethodEntries = map[NodeID]*Method{}

	// Resolve field types and register field nodes first so methods in
	// any class can reference fields of any other class.
	for _, cl := range prog.Classes {
		for _, f := range cl.Fields {
			t, err := c.resolveType(f.Type, f.Pos)
			if err != nil {
				return err
			}
			if t.K == KVoid {
				return fmt.Errorf("%s: field %s cannot be void", f.Pos, f.QName())
			}
			f.Type = t
			prog.Fields[f.ID] = f
		}
		for _, m := range cl.Methods {
			rt, err := c.resolveType(m.Ret, m.Pos)
			if err != nil {
				return err
			}
			m.Ret = rt
			for _, p := range m.Params {
				pt, err := c.resolveType(p.Type, p.Pos)
				if err != nil {
					return err
				}
				if pt.K == KVoid {
					return fmt.Errorf("%s: parameter %s cannot be void", p.Pos, p.Name)
				}
				p.Type = pt
			}
			prog.MethodEntries[m.EntryID] = m
		}
	}

	for _, cl := range prog.Classes {
		for _, m := range cl.Methods {
			if err := c.checkMethod(m); err != nil {
				return err
			}
		}
	}
	return nil
}

type checker struct {
	prog   *Program
	method *Method
	scopes []map[string]*Local
	loops  int
}

func (c *checker) resolveType(t Type, pos Pos) (Type, error) {
	switch t.K {
	case KClass:
		real := c.prog.Class(t.Class.Name)
		if real == nil {
			return Type{}, fmt.Errorf("%s: unknown class %s", pos, t.Class.Name)
		}
		return ClassT(real), nil
	case KArray:
		e, err := c.resolveType(*t.Elem, pos)
		if err != nil {
			return Type{}, err
		}
		return ArrayT(e), nil
	}
	return t, nil
}

func (c *checker) pushScope() { c.scopes = append(c.scopes, map[string]*Local{}) }
func (c *checker) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declare(l *Local, pos Pos) error {
	top := c.scopes[len(c.scopes)-1]
	if _, dup := top[l.Name]; dup {
		return fmt.Errorf("%s: %s redeclared in this scope", pos, l.Name)
	}
	if l.Name == "db" || l.Name == "sys" {
		return fmt.Errorf("%s: %q is a reserved name", pos, l.Name)
	}
	top[l.Name] = l
	l.Slot = len(c.method.Locals)
	c.method.Locals = append(c.method.Locals, l)
	return nil
}

func (c *checker) lookup(name string) *Local {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if l, ok := c.scopes[i][name]; ok {
			return l
		}
	}
	return nil
}

func (c *checker) checkMethod(m *Method) error {
	c.method = m
	c.scopes = nil
	c.loops = 0
	m.Locals = nil
	c.pushScope()
	defer c.popScope()
	for _, p := range m.Params {
		if err := c.declare(p, p.Pos); err != nil {
			return err
		}
	}
	if m.Entry {
		if m.IsCtor {
			return fmt.Errorf("%s: constructor %s cannot be an entry point", m.Pos, m.QName())
		}
		switch m.Ret.K {
		case KVoid, KInt, KDouble, KBool, KString:
		default:
			return fmt.Errorf("%s: entry method %s must return a scalar or void (got %s)",
				m.Pos, m.QName(), m.Ret)
		}
		for _, p := range m.Params {
			switch p.Type.K {
			case KInt, KDouble, KBool, KString:
			default:
				return fmt.Errorf("%s: entry method %s parameter %s must be scalar (got %s)",
					m.Pos, m.QName(), p.Name, p.Type)
			}
		}
	}
	return c.checkBlock(m.Body)
}

func (c *checker) checkBlock(b *Block) error {
	c.pushScope()
	defer c.popScope()
	for i, s := range b.Stmts {
		if err := c.checkStmt(s); err != nil {
			return err
		}
		_ = i
	}
	return nil
}

func (c *checker) register(s Stmt) { c.prog.Stmts[s.ID()] = s }

func (c *checker) checkStmt(s Stmt) error {
	c.register(s)
	switch st := s.(type) {
	case *DeclStmt:
		t, err := c.resolveType(st.Local.Type, st.Pos)
		if err != nil {
			return err
		}
		if t.K == KVoid {
			return fmt.Errorf("%s: variable %s cannot be void", st.Pos, st.Local.Name)
		}
		st.Local.Type = t
		if st.Init != nil {
			init, it, err := c.checkExpr(st.Init)
			if err != nil {
				return err
			}
			st.Init, err = c.coerce(init, it, t, st.Pos)
			if err != nil {
				return err
			}
		}
		return c.declare(st.Local, st.Pos)

	case *AssignStmt:
		lhs, lt, err := c.checkExpr(st.LHS)
		if err != nil {
			return err
		}
		switch lhs.(type) {
		case *VarExpr, *FieldExpr, *IndexExpr:
		default:
			return fmt.Errorf("%s: invalid assignment target", st.Pos)
		}
		st.LHS = lhs
		rhs, rt, err := c.checkExpr(st.RHS)
		if err != nil {
			return err
		}
		if st.Op != AsnSet {
			// Compound ops: numeric, or string += string.
			if lt.K == KString && st.Op == AsnAdd {
				if rt.K != KString {
					return fmt.Errorf("%s: string += requires string operand, got %s", st.Pos, rt)
				}
			} else if !lt.IsNumeric() || !rt.IsNumeric() {
				return fmt.Errorf("%s: operator %s requires numeric operands (%s, %s)", st.Pos, st.Op, lt, rt)
			}
		}
		st.RHS, err = c.coerce(rhs, rt, lt, st.Pos)
		return err

	case *ExprStmt:
		x, _, err := c.checkExpr(st.X)
		if err != nil {
			return err
		}
		switch x.(type) {
		case *CallExpr, *BuiltinExpr, *NewObjectExpr:
		default:
			return fmt.Errorf("%s: expression statement must be a call", st.Pos)
		}
		st.X = x
		return nil

	case *IfStmt:
		cond, ct, err := c.checkExpr(st.Cond)
		if err != nil {
			return err
		}
		if ct.K != KBool {
			return fmt.Errorf("%s: if condition must be bool, got %s", st.Pos, ct)
		}
		st.Cond = cond
		if err := c.checkBlock(st.Then); err != nil {
			return err
		}
		if st.Else != nil {
			return c.checkBlock(st.Else)
		}
		return nil

	case *WhileStmt:
		cond, ct, err := c.checkExpr(st.Cond)
		if err != nil {
			return err
		}
		if ct.K != KBool {
			return fmt.Errorf("%s: while condition must be bool, got %s", st.Pos, ct)
		}
		st.Cond = cond
		c.loops++
		defer func() { c.loops-- }()
		return c.checkBlock(st.Body)

	case *ForEachStmt:
		arr, at, err := c.checkExpr(st.Arr)
		if err != nil {
			return err
		}
		if at.K != KArray {
			return fmt.Errorf("%s: foreach requires an array, got %s", st.Pos, at)
		}
		st.Arr = arr
		vt, err := c.resolveType(st.Var.Type, st.Pos)
		if err != nil {
			return err
		}
		st.Var.Type = vt
		if !vt.AssignableFrom(*at.Elem) {
			return fmt.Errorf("%s: cannot iterate %s with variable of type %s", st.Pos, at, vt)
		}
		c.pushScope()
		defer c.popScope()
		if err := c.declare(st.Var, st.Pos); err != nil {
			return err
		}
		c.loops++
		defer func() { c.loops-- }()
		return c.checkBlock(st.Body)

	case *ReturnStmt:
		if st.X == nil {
			if c.method.Ret.K != KVoid {
				return fmt.Errorf("%s: %s must return %s", st.Pos, c.method.QName(), c.method.Ret)
			}
			return nil
		}
		if c.method.Ret.K == KVoid {
			return fmt.Errorf("%s: void method %s returns a value", st.Pos, c.method.QName())
		}
		x, xt, err := c.checkExpr(st.X)
		if err != nil {
			return err
		}
		st.X, err = c.coerce(x, xt, c.method.Ret, st.Pos)
		return err

	case *BreakStmt:
		if c.loops == 0 {
			return fmt.Errorf("%s: break outside loop", st.Pos)
		}
		return nil
	}
	return fmt.Errorf("%s: unhandled statement %T", s.StmtPos(), s)
}

// coerce inserts an implicit int→double conversion when needed.
func (c *checker) coerce(e Expr, from, to Type, pos Pos) (Expr, error) {
	if to.AssignableFrom(from) {
		if to.K == KDouble && from.K == KInt {
			conv := &ConvExpr{X: e}
			conv.T = DoubleT()
			return conv, nil
		}
		return e, nil
	}
	return nil, fmt.Errorf("%s: cannot use %s as %s", pos, from, to)
}

var tableAccessors = map[string]Builtin{
	"rows": BRows, "getInt": BGetInt, "getDouble": BGetDouble, "getString": BGetString,
}

func (c *checker) checkExpr(e Expr) (Expr, Type, error) {
	switch x := e.(type) {
	case *Lit:
		return x, x.T, nil

	case *VarExpr:
		l := c.lookup(x.Name)
		if l == nil {
			// Unqualified field access: rewrite `f` to `this.f`.
			if f := c.method.Class.FieldByName(x.Name); f != nil {
				this := &ThisExpr{}
				this.T = ClassT(c.method.Class)
				fe := &FieldExpr{Recv: this, Field: f, Name: x.Name}
				fe.T = f.Type
				return fe, fe.T, nil
			}
			return nil, Type{}, fmt.Errorf("undefined variable %s in %s", x.Name, c.method.QName())
		}
		x.Local = l
		x.T = l.Type
		return x, x.T, nil

	case *ThisExpr:
		x.T = ClassT(c.method.Class)
		return x, x.T, nil

	case *ConvExpr:
		return x, x.T, nil

	case *FieldExpr:
		recv, rt, err := c.checkExpr(x.Recv)
		if err != nil {
			return nil, Type{}, err
		}
		x.Recv = recv
		if rt.K == KArray && x.Name == "length" {
			b := &BuiltinExpr{B: BLen, Recv: recv}
			b.T = IntT()
			return b, b.T, nil
		}
		if rt.K != KClass {
			return nil, Type{}, fmt.Errorf("field access .%s on non-object type %s", x.Name, rt)
		}
		f := rt.Class.FieldByName(x.Name)
		if f == nil {
			return nil, Type{}, fmt.Errorf("class %s has no field %s", rt.Class.Name, x.Name)
		}
		x.Field = f
		x.T = f.Type
		return x, x.T, nil

	case *IndexExpr:
		arr, at, err := c.checkExpr(x.Arr)
		if err != nil {
			return nil, Type{}, err
		}
		if at.K != KArray {
			return nil, Type{}, fmt.Errorf("indexing non-array type %s", at)
		}
		idx, it, err := c.checkExpr(x.Idx)
		if err != nil {
			return nil, Type{}, err
		}
		if it.K != KInt {
			return nil, Type{}, fmt.Errorf("array index must be int, got %s", it)
		}
		x.Arr, x.Idx = arr, idx
		x.T = *at.Elem
		return x, x.T, nil

	case *UnaryExpr:
		sub, st, err := c.checkExpr(x.X)
		if err != nil {
			return nil, Type{}, err
		}
		x.X = sub
		switch x.Op {
		case OpNeg:
			if !st.IsNumeric() {
				return nil, Type{}, fmt.Errorf("unary - requires numeric operand, got %s", st)
			}
			x.T = st
		case OpNot:
			if st.K != KBool {
				return nil, Type{}, fmt.Errorf("! requires bool operand, got %s", st)
			}
			x.T = BoolT()
		}
		return x, x.T, nil

	case *BinaryExpr:
		return c.checkBinary(x)

	case *CallExpr:
		return c.checkCall(x)

	case *BuiltinExpr:
		return c.checkBuiltin(x)

	case *NewObjectExpr:
		cl := c.prog.Class(x.Class.Name)
		if cl == nil {
			return nil, Type{}, fmt.Errorf("unknown class %s", x.Class.Name)
		}
		x.Class = cl
		x.Ctor = cl.MethodByName(cl.Name)
		var params []*Local
		if x.Ctor != nil {
			params = x.Ctor.Params
		}
		if len(x.Args) != len(params) {
			return nil, Type{}, fmt.Errorf("new %s: want %d constructor arguments, got %d", cl.Name, len(params), len(x.Args))
		}
		for i, a := range x.Args {
			ax, at, err := c.checkExpr(a)
			if err != nil {
				return nil, Type{}, err
			}
			x.Args[i], err = c.coerce(ax, at, params[i].Type, Pos{})
			if err != nil {
				return nil, Type{}, fmt.Errorf("new %s argument %d: %v", cl.Name, i+1, err)
			}
		}
		x.T = ClassT(cl)
		return x, x.T, nil

	case *NewArrayExpr:
		et, err := c.resolveType(x.Elem, Pos{})
		if err != nil {
			return nil, Type{}, err
		}
		x.Elem = et
		n, nt, err := c.checkExpr(x.Len)
		if err != nil {
			return nil, Type{}, err
		}
		if nt.K != KInt {
			return nil, Type{}, fmt.Errorf("array length must be int, got %s", nt)
		}
		x.Len = n
		x.T = ArrayT(et)
		return x, x.T, nil
	}
	return nil, Type{}, fmt.Errorf("unhandled expression %T", e)
}

func (c *checker) checkBinary(x *BinaryExpr) (Expr, Type, error) {
	l, lt, err := c.checkExpr(x.L)
	if err != nil {
		return nil, Type{}, err
	}
	r, rt, err := c.checkExpr(x.R)
	if err != nil {
		return nil, Type{}, err
	}
	x.L, x.R = l, r
	widen := func() {
		if lt.K == KInt && rt.K == KDouble {
			conv := &ConvExpr{X: x.L}
			conv.T = DoubleT()
			x.L = conv
			lt = DoubleT()
		}
		if rt.K == KInt && lt.K == KDouble {
			conv := &ConvExpr{X: x.R}
			conv.T = DoubleT()
			x.R = conv
			rt = DoubleT()
		}
	}
	switch x.Op {
	case OpAdd:
		if lt.K == KString && rt.K == KString {
			x.T = StringT()
			return x, x.T, nil
		}
		fallthrough
	case OpSub, OpMul, OpDiv:
		if !lt.IsNumeric() || !rt.IsNumeric() {
			return nil, Type{}, fmt.Errorf("operator %s requires numeric operands (%s, %s)", x.Op, lt, rt)
		}
		widen()
		x.T = lt
		return x, x.T, nil
	case OpMod:
		if lt.K != KInt || rt.K != KInt {
			return nil, Type{}, fmt.Errorf("%% requires int operands (%s, %s)", lt, rt)
		}
		x.T = IntT()
		return x, x.T, nil
	case OpLt, OpLe, OpGt, OpGe:
		if (lt.IsNumeric() && rt.IsNumeric()) || (lt.K == KString && rt.K == KString) {
			widen()
			x.T = BoolT()
			return x, x.T, nil
		}
		return nil, Type{}, fmt.Errorf("operator %s cannot compare %s and %s", x.Op, lt, rt)
	case OpEq, OpNe:
		ok := (lt.IsNumeric() && rt.IsNumeric()) ||
			(lt.K == rt.K && (lt.K == KString || lt.K == KBool)) ||
			(lt.IsRef() && rt.K == KNull) || (rt.IsRef() && lt.K == KNull) ||
			(lt.K == KClass && lt.Equal(rt)) || (lt.K == KArray && lt.Equal(rt))
		if !ok {
			return nil, Type{}, fmt.Errorf("operator %s cannot compare %s and %s", x.Op, lt, rt)
		}
		widen()
		x.T = BoolT()
		return x, x.T, nil
	case OpAnd, OpOr:
		if lt.K != KBool || rt.K != KBool {
			return nil, Type{}, fmt.Errorf("operator %s requires bool operands (%s, %s)", x.Op, lt, rt)
		}
		x.T = BoolT()
		return x, x.T, nil
	}
	return nil, Type{}, fmt.Errorf("unknown binary operator")
}

func (c *checker) checkCall(x *CallExpr) (Expr, Type, error) {
	var recvClass *Class
	if x.Recv == nil {
		recvClass = c.method.Class
	} else {
		recv, rt, err := c.checkExpr(x.Recv)
		if err != nil {
			return nil, Type{}, err
		}
		x.Recv = recv
		// Table accessor sugar: t.rows(), t.getInt(r,c), ...
		if rt.K == KTable {
			b, ok := tableAccessors[x.Name]
			if !ok {
				return nil, Type{}, fmt.Errorf("table has no method %s", x.Name)
			}
			be := &BuiltinExpr{B: b, Recv: recv, Args: x.Args}
			return c.checkBuiltin(be)
		}
		// String length: s.length().
		if rt.K == KString && x.Name == "length" && len(x.Args) == 0 {
			be := &BuiltinExpr{B: BLen, Recv: recv}
			be.T = IntT()
			return be, be.T, nil
		}
		if rt.K != KClass {
			return nil, Type{}, fmt.Errorf("method call .%s on non-object type %s", x.Name, rt)
		}
		recvClass = rt.Class
	}
	m := recvClass.MethodByName(x.Name)
	if m == nil {
		return nil, Type{}, fmt.Errorf("class %s has no method %s", recvClass.Name, x.Name)
	}
	if m.IsCtor {
		return nil, Type{}, fmt.Errorf("constructor %s cannot be called directly; use new %s(...)", m.QName(), recvClass.Name)
	}
	if len(x.Args) != len(m.Params) {
		return nil, Type{}, fmt.Errorf("call to %s: want %d arguments, got %d", m.QName(), len(m.Params), len(x.Args))
	}
	for i, a := range x.Args {
		ax, at, err := c.checkExpr(a)
		if err != nil {
			return nil, Type{}, err
		}
		x.Args[i], err = c.coerce(ax, at, m.Params[i].Type, Pos{})
		if err != nil {
			return nil, Type{}, fmt.Errorf("call to %s argument %d (%s): %v", m.QName(), i+1, m.Params[i].Name, err)
		}
	}
	x.Method = m
	x.T = m.Ret
	return x, x.T, nil
}

func (c *checker) checkBuiltin(x *BuiltinExpr) (Expr, Type, error) {
	checkArgs := func(want ...Type) error {
		if len(x.Args) != len(want) {
			return fmt.Errorf("%s: want %d arguments, got %d", x.B, len(want), len(x.Args))
		}
		for i, a := range x.Args {
			ax, at, err := c.checkExpr(a)
			if err != nil {
				return err
			}
			x.Args[i], err = c.coerce(ax, at, want[i], Pos{})
			if err != nil {
				return fmt.Errorf("%s argument %d: %v", x.B, i+1, err)
			}
		}
		return nil
	}

	switch x.B {
	case BQuery, BUpdate:
		if len(x.Args) == 0 {
			return nil, Type{}, fmt.Errorf("%s requires a SQL string argument", x.B)
		}
		sqlLit, ok := x.Args[0].(*Lit)
		if !ok || sqlLit.T.K != KString {
			return nil, Type{}, fmt.Errorf("%s: SQL text must be a string literal", x.B)
		}
		for i := 1; i < len(x.Args); i++ {
			ax, at, err := c.checkExpr(x.Args[i])
			if err != nil {
				return nil, Type{}, err
			}
			switch at.K {
			case KInt, KDouble, KBool, KString:
			default:
				return nil, Type{}, fmt.Errorf("%s parameter %d must be scalar, got %s", x.B, i, at)
			}
			x.Args[i] = ax
		}
		if x.B == BQuery {
			x.T = TableT()
		} else {
			x.T = IntT()
		}
		return x, x.T, nil

	case BBegin, BCommit, BRollback:
		if err := checkArgs(); err != nil {
			return nil, Type{}, err
		}
		x.T = VoidT()
		return x, x.T, nil

	case BPrint:
		for i, a := range x.Args {
			ax, _, err := c.checkExpr(a)
			if err != nil {
				return nil, Type{}, err
			}
			x.Args[i] = ax
		}
		x.T = VoidT()
		return x, x.T, nil

	case BSha1:
		if err := checkArgs(IntT()); err != nil {
			return nil, Type{}, err
		}
		x.T = IntT()
		return x, x.T, nil

	case BStr:
		if len(x.Args) != 1 {
			return nil, Type{}, fmt.Errorf("sys.str: want 1 argument")
		}
		ax, at, err := c.checkExpr(x.Args[0])
		if err != nil {
			return nil, Type{}, err
		}
		switch at.K {
		case KInt, KDouble, KBool, KString:
		default:
			return nil, Type{}, fmt.Errorf("sys.str: scalar argument required, got %s", at)
		}
		x.Args[0] = ax
		x.T = StringT()
		return x, x.T, nil

	case BRows:
		if err := checkArgs(); err != nil {
			return nil, Type{}, err
		}
		x.T = IntT()
		return x, x.T, nil

	case BGetInt, BGetDouble, BGetString:
		if err := checkArgs(IntT(), IntT()); err != nil {
			return nil, Type{}, err
		}
		switch x.B {
		case BGetInt:
			x.T = IntT()
		case BGetDouble:
			x.T = DoubleT()
		default:
			x.T = StringT()
		}
		return x, x.T, nil

	case BLen:
		x.T = IntT()
		return x, x.T, nil
	}
	return nil, Type{}, fmt.Errorf("unhandled builtin %v", x.B)
}
