package source

import (
	"fmt"
	"strconv"
)

// Parser builds the PyxJ AST. Names are left unresolved; Check binds
// them. Statement and field NodeIDs are assigned here (in source
// order) and remain stable for the rest of the pipeline.
type Parser struct {
	toks      []Token
	pos       int
	nextNode  NodeID
	nextAlloc int
}

// Parse lexes and parses src into an unchecked Program. Callers
// normally use Load (parse + check) instead.
func Parse(src string) (*Program, error) {
	toks, err := LexAll(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks, nextNode: 1, nextAlloc: 1}
	prog := &Program{classByName: map[string]*Class{}}
	for p.cur().Kind != TEOF {
		c, err := p.parseClass()
		if err != nil {
			return nil, err
		}
		if prog.classByName[c.Name] != nil {
			return nil, fmt.Errorf("%s: duplicate class %s", c.Pos, c.Name)
		}
		prog.Classes = append(prog.Classes, c)
		prog.classByName[c.Name] = c
	}
	prog.MaxNode = p.nextNode - 1
	return prog, nil
}

// Load parses and type-checks src, returning a fully resolved program.
func Load(src string) (*Program, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if err := Check(prog); err != nil {
		return nil, err
	}
	return prog, nil
}

// MustLoad is Load but panics on error; intended for tests and
// embedded benchmark sources that are known-good.
func MustLoad(src string) *Program {
	p, err := Load(src)
	if err != nil {
		panic(err)
	}
	return p
}

func (p *Parser) cur() Token { return p.toks[p.pos] }
func (p *Parser) peek() Token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}
func (p *Parser) peekAt(n int) Token {
	if p.pos+n < len(p.toks) {
		return p.toks[p.pos+n]
	}
	return p.toks[len(p.toks)-1]
}

func (p *Parser) advance() Token {
	t := p.cur()
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *Parser) expect(k TokKind) (Token, error) {
	if p.cur().Kind != k {
		return Token{}, fmt.Errorf("%s: expected %s, found %s %q", p.cur().Pos, k, p.cur().Kind, p.cur().Text)
	}
	return p.advance(), nil
}

func (p *Parser) accept(k TokKind) bool {
	if p.cur().Kind == k {
		p.advance()
		return true
	}
	return false
}

func (p *Parser) newID() NodeID {
	id := p.nextNode
	p.nextNode++
	return id
}

func (p *Parser) newAlloc() int {
	id := p.nextAlloc
	p.nextAlloc++
	return id
}

func (p *Parser) base(pos Pos) stmtBase { return stmtBase{NID: p.newID(), Pos: pos} }

// isTypeStart reports whether the token can begin a type.
func isTypeStart(k TokKind) bool {
	switch k {
	case TKwInt, TKwDouble, TKwBool, TKwString, TKwVoid, TKwTable, TIdent:
		return true
	}
	return false
}

// parseType parses a (possibly array) type. Class names resolve later.
func (p *Parser) parseType() (Type, error) {
	var t Type
	switch p.cur().Kind {
	case TKwInt:
		t = IntT()
	case TKwDouble:
		t = DoubleT()
	case TKwBool:
		t = BoolT()
	case TKwString:
		t = StringT()
	case TKwVoid:
		t = VoidT()
	case TKwTable:
		t = TableT()
	case TIdent:
		// Unresolved class reference: record the name in a placeholder
		// Class that the checker swaps for the real declaration.
		t = Type{K: KClass, Class: &Class{Name: p.cur().Text}}
	default:
		return Type{}, fmt.Errorf("%s: expected type, found %q", p.cur().Pos, p.cur().Text)
	}
	p.advance()
	for p.cur().Kind == TLBracket && p.peek().Kind == TRBracket {
		p.advance()
		p.advance()
		t = ArrayT(t)
	}
	return t, nil
}

func (p *Parser) parseClass() (*Class, error) {
	kw, err := p.expect(TKwClass)
	if err != nil {
		return nil, err
	}
	name, err := p.expect(TIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TLBrace); err != nil {
		return nil, err
	}
	c := &Class{Name: name.Text, Pos: kw.Pos,
		fieldByName: map[string]*Field{}, methodByName: map[string]*Method{}}
	for !p.accept(TRBrace) {
		if p.cur().Kind == TEOF {
			return nil, fmt.Errorf("%s: unexpected EOF in class %s", p.cur().Pos, c.Name)
		}
		if err := p.parseMember(c); err != nil {
			return nil, err
		}
	}
	return c, nil
}

func (p *Parser) parseMember(c *Class) error {
	entry := p.accept(TKwEntry)
	pos := p.cur().Pos

	// Constructor: ClassName '(' with no preceding return type.
	if p.cur().Kind == TIdent && p.cur().Text == c.Name && p.peek().Kind == TLParen {
		name := p.advance()
		m, err := p.parseMethodRest(c, name.Text, VoidT(), pos, entry)
		if err != nil {
			return err
		}
		m.IsCtor = true
		return p.addMethod(c, m)
	}

	t, err := p.parseType()
	if err != nil {
		return err
	}
	name, err := p.expect(TIdent)
	if err != nil {
		return err
	}
	if p.cur().Kind == TLParen {
		m, err := p.parseMethodRest(c, name.Text, t, pos, entry)
		if err != nil {
			return err
		}
		return p.addMethod(c, m)
	}
	if entry {
		return fmt.Errorf("%s: `entry` modifier is only valid on methods", pos)
	}
	// Field declaration (initializers are not allowed on fields: their
	// placement is decided by the solver, and initialization happens in
	// constructors).
	if p.cur().Kind == TAssign {
		return fmt.Errorf("%s: field initializers are not supported; initialize %s.%s in a constructor", pos, c.Name, name.Text)
	}
	if _, err := p.expect(TSemi); err != nil {
		return err
	}
	if c.fieldByName[name.Text] != nil {
		return fmt.Errorf("%s: duplicate field %s.%s", pos, c.Name, name.Text)
	}
	f := &Field{ID: p.newID(), Name: name.Text, Type: t, Class: c, Index: len(c.Fields), Pos: pos}
	c.Fields = append(c.Fields, f)
	c.fieldByName[name.Text] = f
	return nil
}

func (p *Parser) addMethod(c *Class, m *Method) error {
	if c.methodByName[m.Name] != nil {
		return fmt.Errorf("%s: duplicate method %s.%s", m.Pos, c.Name, m.Name)
	}
	c.Methods = append(c.Methods, m)
	c.methodByName[m.Name] = m
	return nil
}

func (p *Parser) parseMethodRest(c *Class, name string, ret Type, pos Pos, entry bool) (*Method, error) {
	if _, err := p.expect(TLParen); err != nil {
		return nil, err
	}
	m := &Method{Name: name, Class: c, Ret: ret, Entry: entry, EntryID: p.newID(), Pos: pos}
	for p.cur().Kind != TRParen {
		if len(m.Params) > 0 {
			if _, err := p.expect(TComma); err != nil {
				return nil, err
			}
		}
		pt, err := p.parseType()
		if err != nil {
			return nil, err
		}
		pn, err := p.expect(TIdent)
		if err != nil {
			return nil, err
		}
		m.Params = append(m.Params, &Local{Name: pn.Text, Type: pt, Param: true, Pos: pn.Pos})
	}
	p.advance() // ')'
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	m.Body = body
	return m, nil
}

func (p *Parser) parseBlock() (*Block, error) {
	lb, err := p.expect(TLBrace)
	if err != nil {
		return nil, err
	}
	b := &Block{Pos: lb.Pos}
	for !p.accept(TRBrace) {
		if p.cur().Kind == TEOF {
			return nil, fmt.Errorf("%s: unexpected EOF in block", p.cur().Pos)
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s...)
	}
	return b, nil
}

// blockOf wraps a statement list into a block (used for single
// statement if/loop bodies so the rest of the pipeline sees blocks).
func blockOf(pos Pos, ss []Stmt) *Block { return &Block{Stmts: ss, Pos: pos} }

// parseStmt returns one or more statements (desugaring can produce
// several, e.g. a C-style for's init statement).
func (p *Parser) parseStmt() ([]Stmt, error) {
	switch p.cur().Kind {
	case TLBrace:
		b, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return b.Stmts, nil
	case TKwIf:
		s, err := p.parseIf()
		if err != nil {
			return nil, err
		}
		return []Stmt{s}, nil
	case TKwWhile:
		pos := p.advance().Pos
		if _, err := p.expect(TLParen); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TRParen); err != nil {
			return nil, err
		}
		base := p.base(pos)
		body, err := p.parseStmtAsBlock()
		if err != nil {
			return nil, err
		}
		return []Stmt{&WhileStmt{stmtBase: base, Cond: cond, Body: body}}, nil
	case TKwFor:
		return p.parseFor()
	case TKwReturn:
		pos := p.advance().Pos
		var x Expr
		if p.cur().Kind != TSemi {
			var err error
			x, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(TSemi); err != nil {
			return nil, err
		}
		return []Stmt{&ReturnStmt{stmtBase: p.base(pos), X: x}}, nil
	case TKwBreak:
		pos := p.advance().Pos
		if _, err := p.expect(TSemi); err != nil {
			return nil, err
		}
		return []Stmt{&BreakStmt{stmtBase: p.base(pos)}}, nil
	}

	if p.startsDecl() {
		s, err := p.parseDecl()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TSemi); err != nil {
			return nil, err
		}
		return []Stmt{s}, nil
	}

	s, err := p.parseSimpleStmt()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TSemi); err != nil {
		return nil, err
	}
	return []Stmt{s}, nil
}

// startsDecl looks ahead to distinguish `T x ...` declarations from
// expression statements. Patterns: builtin-type ..., Ident Ident,
// Ident '[' ']' ....
func (p *Parser) startsDecl() bool {
	switch p.cur().Kind {
	case TKwInt, TKwDouble, TKwBool, TKwString, TKwTable:
		return true
	case TIdent:
		if p.peek().Kind == TIdent {
			return true
		}
		if p.peek().Kind == TLBracket && p.peekAt(2).Kind == TRBracket {
			return true
		}
	}
	return false
}

func (p *Parser) parseDecl() (Stmt, error) {
	pos := p.cur().Pos
	t, err := p.parseType()
	if err != nil {
		return nil, err
	}
	name, err := p.expect(TIdent)
	if err != nil {
		return nil, err
	}
	base := p.base(pos)
	var init Expr
	if p.accept(TAssign) {
		init, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	return &DeclStmt{stmtBase: base, Local: &Local{Name: name.Text, Type: t, Pos: pos}, Init: init}, nil
}

// parseSimpleStmt parses an assignment or expression statement
// (without the trailing semicolon).
func (p *Parser) parseSimpleStmt() (Stmt, error) {
	pos := p.cur().Pos
	lhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	var op AssignOp
	switch p.cur().Kind {
	case TAssign:
		op = AsnSet
	case TPlusEq:
		op = AsnAdd
	case TMinusEq:
		op = AsnSub
	case TStarEq:
		op = AsnMul
	case TSlashEq:
		op = AsnDiv
	case TPlusPlus, TMinusMinus:
		inc := p.advance()
		op = AsnAdd
		if inc.Kind == TMinusMinus {
			op = AsnSub
		}
		one := &Lit{I: 1}
		one.T = IntT()
		return &AssignStmt{stmtBase: p.base(pos), LHS: lhs, Op: op, RHS: one}, nil
	default:
		return &ExprStmt{stmtBase: p.base(pos), X: lhs}, nil
	}
	p.advance()
	rhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &AssignStmt{stmtBase: p.base(pos), LHS: lhs, Op: op, RHS: rhs}, nil
}

func (p *Parser) parseStmtAsBlock() (*Block, error) {
	pos := p.cur().Pos
	ss, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	return blockOf(pos, ss), nil
}

func (p *Parser) parseIf() (Stmt, error) {
	pos := p.advance().Pos // 'if'
	if _, err := p.expect(TLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TRParen); err != nil {
		return nil, err
	}
	base := p.base(pos)
	then, err := p.parseStmtAsBlock()
	if err != nil {
		return nil, err
	}
	var els *Block
	if p.accept(TKwElse) {
		els, err = p.parseStmtAsBlock()
		if err != nil {
			return nil, err
		}
	}
	return &IfStmt{stmtBase: base, Cond: cond, Then: then, Else: els}, nil
}

// parseFor handles both `for (T x : arr)` (foreach, kept as a node)
// and C-style `for (init; cond; post)` which desugars to
// { init; while (cond) { body...; post } }.
func (p *Parser) parseFor() ([]Stmt, error) {
	pos := p.advance().Pos // 'for'
	if _, err := p.expect(TLParen); err != nil {
		return nil, err
	}

	// foreach? `Type Ident :`
	if p.looksForEach() {
		t, err := p.parseType()
		if err != nil {
			return nil, err
		}
		name, err := p.expect(TIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TColon); err != nil {
			return nil, err
		}
		arr, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TRParen); err != nil {
			return nil, err
		}
		base := p.base(pos)
		body, err := p.parseStmtAsBlock()
		if err != nil {
			return nil, err
		}
		return []Stmt{&ForEachStmt{stmtBase: base,
			Var: &Local{Name: name.Text, Type: t, Pos: pos}, Arr: arr, Body: body}}, nil
	}

	// C-style.
	var init Stmt
	var err error
	if p.cur().Kind != TSemi {
		if p.startsDecl() {
			init, err = p.parseDecl()
		} else {
			init, err = p.parseSimpleStmt()
		}
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TSemi); err != nil {
		return nil, err
	}
	var cond Expr
	if p.cur().Kind != TSemi {
		cond, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	} else {
		cond = &Lit{B: true}
		cond.(*Lit).T = BoolT()
	}
	if _, err := p.expect(TSemi); err != nil {
		return nil, err
	}
	whileBase := p.base(pos)
	var post Stmt
	if p.cur().Kind != TRParen {
		post, err = p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TRParen); err != nil {
		return nil, err
	}
	body, err := p.parseStmtAsBlock()
	if err != nil {
		return nil, err
	}
	if post != nil {
		body.Stmts = append(body.Stmts, post)
	}
	w := &WhileStmt{stmtBase: whileBase, Cond: cond, Body: body}
	if init != nil {
		return []Stmt{init, w}, nil
	}
	return []Stmt{w}, nil
}

func (p *Parser) looksForEach() bool {
	// Type Ident ':' — type may be a builtin or Ident with [] suffixes.
	i := 0
	if !isTypeStart(p.peekAt(i).Kind) {
		return false
	}
	i++
	for p.peekAt(i).Kind == TLBracket && p.peekAt(i+1).Kind == TRBracket {
		i += 2
	}
	return p.peekAt(i).Kind == TIdent && p.peekAt(i+1).Kind == TColon
}

// ---------------------------------------------------------------------------
// Expressions (precedence climbing)
// ---------------------------------------------------------------------------

func (p *Parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *Parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == TOrOr {
		p.advance()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	l, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == TAndAnd {
		p.advance()
		r, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: OpAnd, L: l, R: r}
	}
	return l, nil
}

var cmpOps = map[TokKind]BinOp{
	TEq: OpEq, TNe: OpNe, TLt: OpLt, TLe: OpLe, TGt: OpGt, TGe: OpGe,
}

func (p *Parser) parseCmp() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if op, ok := cmpOps[p.cur().Kind]; ok {
		p.advance()
		r, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == TPlus || p.cur().Kind == TMinus {
		op := OpAdd
		if p.cur().Kind == TMinus {
			op = OpSub
		}
		p.advance()
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op BinOp
		switch p.cur().Kind {
		case TStar:
			op = OpMul
		case TSlash:
			op = OpDiv
		case TPercent:
			op = OpMod
		default:
			return l, nil
		}
		p.advance()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, L: l, R: r}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	switch p.cur().Kind {
	case TMinus:
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: OpNeg, X: x}, nil
	case TNot:
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: OpNot, X: x}, nil
	}
	return p.parsePostfix()
}

func (p *Parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch p.cur().Kind {
		case TDot:
			p.advance()
			name, err := p.expect(TIdent)
			if err != nil {
				return nil, err
			}
			if p.cur().Kind == TLParen {
				args, err := p.parseArgs()
				if err != nil {
					return nil, err
				}
				// Table accessors and method calls are disambiguated by
				// the checker using the receiver type; parse as CallExpr.
				x = &CallExpr{Recv: x, Name: name.Text, Args: args}
			} else {
				x = &FieldExpr{Recv: x, Name: name.Text}
			}
		case TLBracket:
			p.advance()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TRBracket); err != nil {
				return nil, err
			}
			x = &IndexExpr{Arr: x, Idx: idx}
		default:
			return x, nil
		}
	}
}

func (p *Parser) parseArgs() ([]Expr, error) {
	if _, err := p.expect(TLParen); err != nil {
		return nil, err
	}
	var args []Expr
	for p.cur().Kind != TRParen {
		if len(args) > 0 {
			if _, err := p.expect(TComma); err != nil {
				return nil, err
			}
		}
		a, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
	}
	p.advance()
	return args, nil
}

var dbBuiltins = map[string]Builtin{
	"query": BQuery, "update": BUpdate, "begin": BBegin,
	"commit": BCommit, "rollback": BRollback,
}

var sysBuiltins = map[string]Builtin{
	"print": BPrint, "sha1": BSha1, "str": BStr,
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TInt:
		p.advance()
		i, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%s: bad int literal %q", t.Pos, t.Text)
		}
		e := &Lit{I: i}
		e.T = IntT()
		return e, nil
	case TFloat:
		p.advance()
		f, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, fmt.Errorf("%s: bad float literal %q", t.Pos, t.Text)
		}
		e := &Lit{F: f}
		e.T = DoubleT()
		return e, nil
	case TString:
		p.advance()
		e := &Lit{S: t.Text}
		e.T = StringT()
		return e, nil
	case TKwTrue, TKwFalse:
		p.advance()
		e := &Lit{B: t.Kind == TKwTrue}
		e.T = BoolT()
		return e, nil
	case TKwNull:
		p.advance()
		e := &Lit{}
		e.T = NullT()
		return e, nil
	case TKwThis:
		p.advance()
		return &ThisExpr{}, nil
	case TLParen:
		p.advance()
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TRParen); err != nil {
			return nil, err
		}
		return x, nil
	case TKwNew:
		return p.parseNew()
	case TIdent:
		// db.* and sys.* builtin namespaces.
		if (t.Text == "db" || t.Text == "sys") && p.peek().Kind == TDot {
			ns := t.Text
			p.advance() // ns
			p.advance() // '.'
			name, err := p.expect(TIdent)
			if err != nil {
				return nil, err
			}
			var b Builtin
			var ok bool
			if ns == "db" {
				b, ok = dbBuiltins[name.Text]
			} else {
				b, ok = sysBuiltins[name.Text]
			}
			if !ok {
				return nil, fmt.Errorf("%s: unknown builtin %s.%s", name.Pos, ns, name.Text)
			}
			args, err := p.parseArgs()
			if err != nil {
				return nil, err
			}
			e := &BuiltinExpr{B: b, Args: args}
			if b == BQuery {
				e.AllocID = p.newAlloc()
			}
			return e, nil
		}
		p.advance()
		if p.cur().Kind == TLParen {
			args, err := p.parseArgs()
			if err != nil {
				return nil, err
			}
			return &CallExpr{Name: t.Text, Args: args}, nil // implicit this
		}
		return &VarExpr{Name: t.Text}, nil
	}
	return nil, fmt.Errorf("%s: unexpected token %q in expression", t.Pos, t.Text)
}

func (p *Parser) parseNew() (Expr, error) {
	p.advance() // 'new'
	pos := p.cur().Pos
	var elem Type
	switch p.cur().Kind {
	case TKwInt:
		elem = IntT()
	case TKwDouble:
		elem = DoubleT()
	case TKwBool:
		elem = BoolT()
	case TKwString:
		elem = StringT()
	case TIdent:
		elem = Type{K: KClass, Class: &Class{Name: p.cur().Text}}
	default:
		return nil, fmt.Errorf("%s: expected type after new", pos)
	}
	p.advance()
	if p.cur().Kind == TLBracket {
		p.advance()
		n, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TRBracket); err != nil {
			return nil, err
		}
		return &NewArrayExpr{Elem: elem, Len: n, AllocID: p.newAlloc()}, nil
	}
	if elem.K != KClass {
		return nil, fmt.Errorf("%s: new %s requires [length]", pos, elem)
	}
	args, err := p.parseArgs()
	if err != nil {
		return nil, err
	}
	return &NewObjectExpr{Class: elem.Class, Args: args, AllocID: p.newAlloc()}, nil
}
