// Package source implements PyxJ, the small Java-like application
// language that Pyxis partitions. It provides the lexer, parser,
// resolved AST, type checker and pretty-printer. Every statement and
// field declaration carries a stable NodeID; the partition graph,
// profiler, placements and PyxIL all key off those IDs.
package source

// NodeID identifies a partitionable program element: a statement, a
// field declaration, or a synthetic node (method entry, database code).
type NodeID int

// NoNode is the zero NodeID, used for "no node assigned".
const NoNode NodeID = 0

// Program is a checked PyxJ compilation unit.
type Program struct {
	Classes []*Class

	classByName map[string]*Class

	// Stmts maps every statement NodeID to its statement. Populated by
	// the checker. Entries exist only for IDs that are statements.
	Stmts map[NodeID]Stmt
	// Fields maps field NodeIDs to field declarations.
	Fields map[NodeID]*Field
	// MethodEntries maps synthetic method-entry NodeIDs to methods.
	MethodEntries map[NodeID]*Method

	// MaxNode is the largest NodeID allocated (IDs are 1..MaxNode).
	MaxNode NodeID
}

// Class looks up a class by name, or nil.
func (p *Program) Class(name string) *Class { return p.classByName[name] }

// EntryMethods returns all methods marked with the `entry` modifier,
// in declaration order.
func (p *Program) EntryMethods() []*Method {
	var out []*Method
	for _, c := range p.Classes {
		for _, m := range c.Methods {
			if m.Entry {
				out = append(out, m)
			}
		}
	}
	return out
}

// Method resolves "Class.method", or nil.
func (p *Program) Method(class, method string) *Method {
	c := p.Class(class)
	if c == nil {
		return nil
	}
	return c.MethodByName(method)
}

// Class is a PyxJ class declaration.
type Class struct {
	Name    string
	Fields  []*Field
	Methods []*Method
	Pos     Pos

	fieldByName  map[string]*Field
	methodByName map[string]*Method
}

// FieldByName looks up a declared field, or nil.
func (c *Class) FieldByName(name string) *Field { return c.fieldByName[name] }

// MethodByName looks up a declared method, or nil.
func (c *Class) MethodByName(name string) *Method { return c.methodByName[name] }

// Field is a field declaration. Its NodeID is a field node in the
// partition graph; the solver assigns it a placement (where the
// authoritative copy lives).
type Field struct {
	ID    NodeID
	Name  string
	Type  Type
	Class *Class
	Index int // ordinal within the class declaration
	Pos   Pos
}

// QName returns "Class.field".
func (f *Field) QName() string { return f.Class.Name + "." + f.Name }

// Method is a method declaration. EntryID is a synthetic partition
// graph node representing the method prologue; interprocedural control
// and parameter-data edges attach to it.
type Method struct {
	Name    string
	Class   *Class
	Params  []*Local
	Ret     Type
	Body    *Block
	Entry   bool // declared with the `entry` modifier
	EntryID NodeID
	Pos     Pos

	// Locals lists every local variable in the method (parameters
	// first), slot-numbered for the block compiler. Populated by the
	// checker.
	Locals []*Local
	// IsCtor marks constructors (methods named after their class).
	IsCtor bool
}

// QName returns "Class.method".
func (m *Method) QName() string { return m.Class.Name + "." + m.Name }

// Local is a local variable or parameter.
type Local struct {
	Name  string
	Type  Type
	Slot  int  // frame slot assigned by the checker
	Param bool // true for parameters
	Pos   Pos
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

// Stmt is a PyxJ statement. All statements have a NodeID and position.
type Stmt interface {
	ID() NodeID
	StmtPos() Pos
	stmtNode()
}

type stmtBase struct {
	NID NodeID
	Pos Pos
}

func (s *stmtBase) ID() NodeID   { return s.NID }
func (s *stmtBase) StmtPos() Pos { return s.Pos }
func (s *stmtBase) stmtNode()    {}

// Block is a brace-delimited statement list. Blocks themselves are not
// partition-graph nodes; their contained statements are.
type Block struct {
	Stmts []Stmt
	Pos   Pos
}

// DeclStmt declares (and optionally initializes) a local variable.
type DeclStmt struct {
	stmtBase
	Local *Local
	Init  Expr // may be nil
}

// AssignOp is the operator of an assignment statement.
type AssignOp uint8

const (
	AsnSet AssignOp = iota // =
	AsnAdd                 // +=
	AsnSub                 // -=
	AsnMul                 // *=
	AsnDiv                 // /=
)

func (op AssignOp) String() string {
	switch op {
	case AsnSet:
		return "="
	case AsnAdd:
		return "+="
	case AsnSub:
		return "-="
	case AsnMul:
		return "*="
	case AsnDiv:
		return "/="
	}
	return "?="
}

// AssignStmt assigns to a variable, field, or array element.
// x++ / x-- parse as x += 1 / x -= 1.
type AssignStmt struct {
	stmtBase
	LHS Expr // VarExpr, FieldExpr, or IndexExpr
	Op  AssignOp
	RHS Expr
}

// ExprStmt evaluates an expression for its side effects (method call
// or builtin call).
type ExprStmt struct {
	stmtBase
	X Expr
}

// IfStmt is a two-way branch. Its NodeID denotes the condition
// evaluation; body statements are control-dependent on it.
type IfStmt struct {
	stmtBase
	Cond Expr
	Then *Block
	Else *Block // may be nil
}

// WhileStmt is a pre-test loop; its NodeID denotes the condition.
// C-style for loops are desugared to while by the parser.
type WhileStmt struct {
	stmtBase
	Cond Expr
	Body *Block
}

// ForEachStmt iterates over the elements of an array, binding each to
// Var. Its NodeID denotes the loop header (Fig. 2 line 17 style).
type ForEachStmt struct {
	stmtBase
	Var  *Local
	Arr  Expr
	Body *Block
}

// ReturnStmt exits the enclosing method.
type ReturnStmt struct {
	stmtBase
	X Expr // nil for void returns
}

// BreakStmt exits the innermost loop.
type BreakStmt struct {
	stmtBase
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

// Expr is a PyxJ expression. Types are attached by the checker.
type Expr interface {
	Type() Type
	exprNode()
}

type exprBase struct {
	T Type
}

func (e *exprBase) Type() Type { return e.T }
func (e *exprBase) exprNode()  {}

// Lit is an int, double, bool, string, or null literal.
type Lit struct {
	exprBase
	I int64
	F float64
	S string
	B bool
}

// VarExpr references a local variable or parameter.
type VarExpr struct {
	exprBase
	Local *Local
	Name  string
}

// ThisExpr references the receiver object.
type ThisExpr struct {
	exprBase
}

// FieldExpr reads (or, as an assignment target, writes) recv.field.
type FieldExpr struct {
	exprBase
	Recv  Expr
	Field *Field
	Name  string
}

// IndexExpr reads (or writes) arr[idx].
type IndexExpr struct {
	exprBase
	Arr, Idx Expr
}

// BinOp enumerates binary operators.
type BinOp uint8

const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpMod
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd // && (short-circuit)
	OpOr  // || (short-circuit)
)

var binOpNames = [...]string{"+", "-", "*", "/", "%", "==", "!=", "<", "<=", ">", ">=", "&&", "||"}

func (op BinOp) String() string { return binOpNames[op] }

// BinaryExpr applies a binary operator.
type BinaryExpr struct {
	exprBase
	Op   BinOp
	L, R Expr
}

// UnOp enumerates unary operators.
type UnOp uint8

const (
	OpNeg UnOp = iota // -x
	OpNot             // !x
)

// UnaryExpr applies a unary operator.
type UnaryExpr struct {
	exprBase
	Op UnOp
	X  Expr
}

// ConvExpr is an implicit int→double widening inserted by the checker.
type ConvExpr struct {
	exprBase
	X Expr
}

// CallExpr invokes a user-defined method. Recv nil means an implicit
// `this` call.
type CallExpr struct {
	exprBase
	Recv   Expr // nil → this
	Method *Method
	Name   string
	Args   []Expr
}

// NewObjectExpr allocates a class instance, optionally invoking a
// constructor (a method named after the class). AllocID uniquely
// identifies this allocation site for the points-to analysis.
type NewObjectExpr struct {
	exprBase
	Class   *Class
	Ctor    *Method // nil if the class has no constructor
	Args    []Expr
	AllocID int
}

// NewArrayExpr allocates an array of Len elements.
type NewArrayExpr struct {
	exprBase
	Elem    Type
	Len     Expr
	AllocID int
}

// Builtin enumerates language built-ins: database access (the JDBC
// analogue), console output, result-set accessors, and auxiliary
// compute/string helpers.
type Builtin uint8

const (
	BQuery     Builtin = iota // db.query(sql, args...) table
	BUpdate                   // db.update(sql, args...) int
	BBegin                    // db.begin()
	BCommit                   // db.commit()
	BRollback                 // db.rollback()
	BPrint                    // sys.print(args...)  [pinned to APP]
	BSha1                     // sys.sha1(int) int   [CPU-intensive work]
	BStr                      // sys.str(x) string
	BRows                     // t.rows() int
	BGetInt                   // t.getInt(r, c) int
	BGetDouble                // t.getDouble(r, c) double
	BGetString                // t.getString(r, c) string
	BLen                      // arr.length int
)

var builtinNames = [...]string{
	"db.query", "db.update", "db.begin", "db.commit", "db.rollback",
	"sys.print", "sys.sha1", "sys.str",
	"rows", "getInt", "getDouble", "getString", "length",
}

func (b Builtin) String() string { return builtinNames[b] }

// IsDB reports whether the builtin is a database (JDBC-like) call.
// All such calls in a program are constrained to a single partition
// (the driver holds unserializable connection state — paper §4.3).
func (b Builtin) IsDB() bool { return b <= BRollback }

// BuiltinExpr invokes a builtin. For BQuery/BUpdate, Args[0] is the
// SQL string literal and the rest are parameters. For table accessors
// and BLen, Recv is the table/array expression. AllocID is set for
// BQuery (the returned table is an allocation site).
type BuiltinExpr struct {
	exprBase
	B       Builtin
	Recv    Expr // table/array receiver, nil otherwise
	Args    []Expr
	AllocID int
}

// SQLText returns the SQL string of a BQuery/BUpdate call.
func (e *BuiltinExpr) SQLText() string {
	if len(e.Args) > 0 {
		if l, ok := e.Args[0].(*Lit); ok && l.T.K == KString {
			return l.S
		}
	}
	return ""
}
