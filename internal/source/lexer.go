package source

import (
	"fmt"
	"strings"
)

// Lexer turns PyxJ source text into tokens. It supports // line
// comments and /* block */ comments, decimal int and float literals,
// and double-quoted strings with \n \t \" \\ escapes.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

func (lx *Lexer) peek() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *Lexer) peek2() byte {
	if lx.off+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+1]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isAlpha(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func (lx *Lexer) skipSpace() error {
	for lx.off < len(lx.src) {
		c := lx.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.peek2() == '/':
			for lx.off < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peek2() == '*':
			start := lx.pos()
			lx.advance()
			lx.advance()
			closed := false
			for lx.off < len(lx.src) {
				if lx.peek() == '*' && lx.peek2() == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				lx.advance()
			}
			if !closed {
				return fmt.Errorf("%s: unterminated block comment", start)
			}
		default:
			return nil
		}
	}
	return nil
}

func (lx *Lexer) pos() Pos { return Pos{Line: lx.line, Col: lx.col} }

// Next returns the next token, or an error for malformed input.
func (lx *Lexer) Next() (Token, error) {
	if err := lx.skipSpace(); err != nil {
		return Token{}, err
	}
	p := lx.pos()
	if lx.off >= len(lx.src) {
		return Token{Kind: TEOF, Pos: p}, nil
	}
	c := lx.peek()
	switch {
	case isAlpha(c):
		start := lx.off
		for lx.off < len(lx.src) && (isAlpha(lx.peek()) || isDigit(lx.peek())) {
			lx.advance()
		}
		text := lx.src[start:lx.off]
		if kw, ok := keywords[text]; ok {
			return Token{Kind: kw, Text: text, Pos: p}, nil
		}
		return Token{Kind: TIdent, Text: text, Pos: p}, nil
	case isDigit(c):
		start := lx.off
		for lx.off < len(lx.src) && isDigit(lx.peek()) {
			lx.advance()
		}
		kind := TInt
		if lx.peek() == '.' && isDigit(lx.peek2()) {
			kind = TFloat
			lx.advance()
			for lx.off < len(lx.src) && isDigit(lx.peek()) {
				lx.advance()
			}
		}
		if lx.peek() == 'e' || lx.peek() == 'E' {
			save := *lx
			lx.advance()
			if lx.peek() == '+' || lx.peek() == '-' {
				lx.advance()
			}
			if isDigit(lx.peek()) {
				kind = TFloat
				for lx.off < len(lx.src) && isDigit(lx.peek()) {
					lx.advance()
				}
			} else {
				*lx = save
			}
		}
		return Token{Kind: kind, Text: lx.src[start:lx.off], Pos: p}, nil
	case c == '"':
		lx.advance()
		var b strings.Builder
		for {
			if lx.off >= len(lx.src) {
				return Token{}, fmt.Errorf("%s: unterminated string literal", p)
			}
			ch := lx.advance()
			if ch == '"' {
				break
			}
			if ch == '\\' {
				if lx.off >= len(lx.src) {
					return Token{}, fmt.Errorf("%s: unterminated escape", p)
				}
				esc := lx.advance()
				switch esc {
				case 'n':
					b.WriteByte('\n')
				case 't':
					b.WriteByte('\t')
				case '"':
					b.WriteByte('"')
				case '\\':
					b.WriteByte('\\')
				default:
					return Token{}, fmt.Errorf("%s: unknown escape \\%c", p, esc)
				}
				continue
			}
			if ch == '\n' {
				return Token{}, fmt.Errorf("%s: newline in string literal", p)
			}
			b.WriteByte(ch)
		}
		return Token{Kind: TString, Text: b.String(), Pos: p}, nil
	}

	two := func(k TokKind) (Token, error) {
		t := lx.src[lx.off : lx.off+2]
		lx.advance()
		lx.advance()
		return Token{Kind: k, Text: t, Pos: p}, nil
	}
	one := func(k TokKind) (Token, error) {
		t := string(lx.advance())
		return Token{Kind: k, Text: t, Pos: p}, nil
	}

	switch c {
	case '(':
		return one(TLParen)
	case ')':
		return one(TRParen)
	case '{':
		return one(TLBrace)
	case '}':
		return one(TRBrace)
	case '[':
		return one(TLBracket)
	case ']':
		return one(TRBracket)
	case ';':
		return one(TSemi)
	case ',':
		return one(TComma)
	case '.':
		return one(TDot)
	case ':':
		return one(TColon)
	case '+':
		switch lx.peek2() {
		case '=':
			return two(TPlusEq)
		case '+':
			return two(TPlusPlus)
		}
		return one(TPlus)
	case '-':
		switch lx.peek2() {
		case '=':
			return two(TMinusEq)
		case '-':
			return two(TMinusMinus)
		}
		return one(TMinus)
	case '*':
		if lx.peek2() == '=' {
			return two(TStarEq)
		}
		return one(TStar)
	case '/':
		if lx.peek2() == '=' {
			return two(TSlashEq)
		}
		return one(TSlash)
	case '%':
		return one(TPercent)
	case '!':
		if lx.peek2() == '=' {
			return two(TNe)
		}
		return one(TNot)
	case '=':
		if lx.peek2() == '=' {
			return two(TEq)
		}
		return one(TAssign)
	case '<':
		if lx.peek2() == '=' {
			return two(TLe)
		}
		return one(TLt)
	case '>':
		if lx.peek2() == '=' {
			return two(TGe)
		}
		return one(TGt)
	case '&':
		if lx.peek2() == '&' {
			return two(TAndAnd)
		}
	case '|':
		if lx.peek2() == '|' {
			return two(TOrOr)
		}
	}
	return Token{}, fmt.Errorf("%s: unexpected character %q", p, string(c))
}

// LexAll tokenizes the whole input (including the final EOF token).
func LexAll(src string) ([]Token, error) {
	lx := NewLexer(src)
	var toks []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TEOF {
			return toks, nil
		}
	}
}
