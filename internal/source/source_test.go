package source

import (
	"strings"
	"testing"
	"testing/quick"
)

// runningExample is the paper's Fig. 2 Order class, transcribed to PyxJ.
const runningExample = `
class Order {
    int id;
    double[] realCosts;
    double totalCost;

    Order(int id) {
        this.id = id;
    }

    entry void placeOrder(int cid, double dct) {
        totalCost = 0;
        computeTotalCost(dct);
        updateAccount(cid, totalCost);
    }

    void computeTotalCost(double dct) {
        int i = 0;
        double[] costs = getCosts();
        realCosts = new double[costs.length];
        for (double itemCost : costs) {
            double realCost;
            realCost = itemCost * dct;
            totalCost += realCost;
            realCosts[i] = realCost;
            i++;
            insertNewLineItem(id, realCost);
        }
    }

    double[] getCosts() {
        table t = db.query("SELECT cost FROM line_items WHERE order_id = ?", id);
        double[] costs = new double[t.rows()];
        for (int r = 0; r < t.rows(); r++) {
            costs[r] = t.getDouble(r, 0);
        }
        return costs;
    }

    void insertNewLineItem(int oid, double cost) {
        db.update("INSERT INTO new_line_items VALUES (?, ?)", oid, cost);
    }

    void updateAccount(int cid, double total) {
        db.update("UPDATE accounts SET balance = balance - ? WHERE cid = ?", total, cid);
    }
}
`

func TestRunningExampleLoads(t *testing.T) {
	p, err := Load(runningExample)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	order := p.Class("Order")
	if order == nil {
		t.Fatal("class Order not found")
	}
	if got := len(order.Fields); got != 3 {
		t.Fatalf("fields = %d, want 3", got)
	}
	if got := len(order.Methods); got != 6 {
		t.Fatalf("methods = %d, want 6", got)
	}
	if !p.Method("Order", "placeOrder").Entry {
		t.Error("placeOrder should be an entry method")
	}
	if !order.MethodByName("Order").IsCtor {
		t.Error("Order() should be a constructor")
	}
	entries := p.EntryMethods()
	if len(entries) != 1 || entries[0].Name != "placeOrder" {
		t.Errorf("EntryMethods = %v", entries)
	}
}

func TestNodeIDsAreDenseAndIndexed(t *testing.T) {
	p := MustLoad(runningExample)
	seen := map[NodeID]bool{}
	for id := range p.Stmts {
		if seen[id] {
			t.Fatalf("duplicate stmt id %d", id)
		}
		seen[id] = true
		if id < 1 || id > p.MaxNode {
			t.Fatalf("stmt id %d out of range 1..%d", id, p.MaxNode)
		}
	}
	for id := range p.Fields {
		if seen[id] {
			t.Fatalf("field id %d collides with a statement", id)
		}
		seen[id] = true
	}
	for id := range p.MethodEntries {
		if seen[id] {
			t.Fatalf("method entry id %d collides", id)
		}
		seen[id] = true
	}
}

func TestPrintRoundTrip(t *testing.T) {
	p := MustLoad(runningExample)
	out := Print(p)
	p2, err := Load(out)
	if err != nil {
		t.Fatalf("re-parse of printed source failed: %v\n%s", err, out)
	}
	out2 := Print(p2)
	if out != out2 {
		t.Errorf("print is not a fixpoint:\n--- first ---\n%s\n--- second ---\n%s", out, out2)
	}
}

func TestDesugarForLoop(t *testing.T) {
	p := MustLoad(`class C { int f() { int s = 0; for (int i = 0; i < 10; i++) { s += i; } return s; } }`)
	m := p.Method("C", "f")
	// Desugared: decl s, decl i, while, return.
	if got := len(m.Body.Stmts); got != 4 {
		t.Fatalf("desugared stmt count = %d, want 4", got)
	}
	if _, ok := m.Body.Stmts[2].(*WhileStmt); !ok {
		t.Fatalf("stmt 2 is %T, want *WhileStmt", m.Body.Stmts[2])
	}
}

func TestCheckerErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"undefined-var", `class C { int f() { return x; } }`, "undefined variable x"},
		{"bad-cond", `class C { void f() { if (1) { } } }`, "must be bool"},
		{"void-field", `class C { void v; }`, "cannot be void"},
		{"type-mismatch", `class C { void f() { int x = "s"; } }`, "cannot use string as int"},
		{"unknown-class", `class C { D d; }`, "unknown class D"},
		{"break-outside", `class C { void f() { break; } }`, "break outside loop"},
		{"dup-field", `class C { int x; int x; }`, "duplicate field"},
		{"dup-method", `class C { void f() { } void f() { } }`, "duplicate method"},
		{"bad-entry-param", `class C { entry void f(int[] a) { } }`, "must be scalar"},
		{"ctor-entry", `class C { entry C() { } }`, "cannot be an entry point"},
		{"call-ctor", `class C { C() {} void f() { C(); } }`, "cannot be called directly"},
		{"arity", `class C { void g(int x) {} void f() { g(); } }`, "want 1 arguments"},
		{"string-mod", `class C { void f() { int x = "a" % 2; } }`, "requires int operands"},
		{"non-literal-sql", `class C { void f(string s) { db.update(s); } }`, "string literal"},
		{"reserved-name", `class C { void f() { int db = 1; } }`, "reserved name"},
		{"bad-index", `class C { void f(int[] a) { int x = a["k"]; } }`, "index must be int"},
		{"field-init", `class C { int x = 3; }`, "field initializers are not supported"},
		{"assign-to-call", `class C { int g() { return 1; } void f() { g() = 2; } }`, "invalid assignment target"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Load(tc.src)
			if err == nil {
				t.Fatalf("expected error containing %q, got nil", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestLexerErrors(t *testing.T) {
	for _, src := range []string{`"unterminated`, "/* open", `"bad \q esc"`, "@"} {
		if _, err := LexAll(src); err == nil {
			t.Errorf("LexAll(%q): expected error", src)
		}
	}
}

func TestLexAllTokens(t *testing.T) {
	toks, err := LexAll(`a += 1; b ++ <= >= == != && || /*c*/ "x\n" 1.5 2e3`)
	if err != nil {
		t.Fatal(err)
	}
	kinds := []TokKind{TIdent, TPlusEq, TInt, TSemi, TIdent, TPlusPlus, TLe, TGe, TEq, TNe, TAndAnd, TOrOr, TString, TFloat, TFloat, TEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("token count = %d, want %d: %v", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Errorf("tok[%d] = %v, want %v", i, toks[i].Kind, k)
		}
	}
}

// Property: any program we can print re-parses to an identical print.
// Exercised over a family of generated arithmetic methods.
func TestPrintParseProperty(t *testing.T) {
	f := func(a, b int8, useWhile bool) bool {
		src := genProgram(int64(a), int64(b), useWhile)
		p, err := Load(src)
		if err != nil {
			return false
		}
		out := Print(p)
		p2, err := Load(out)
		if err != nil {
			return false
		}
		return Print(p2) == out
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func genProgram(a, b int64, useWhile bool) string {
	var sb strings.Builder
	sb.WriteString("class G { int run(int n) { int acc = 0;\n")
	if useWhile {
		sb.WriteString("int i = 0; while (i < n) { acc += i; i++; }\n")
	} else {
		sb.WriteString("for (int i = 0; i < n; i++) { acc += i; }\n")
	}
	if a%2 == 0 {
		sb.WriteString("if (acc > 10) { acc = acc - 1; } else { acc = acc + 1; }\n")
	}
	_ = b
	sb.WriteString("return acc; } }")
	return sb.String()
}

func TestTypeSystem(t *testing.T) {
	it, dt := IntT(), DoubleT()
	if !dt.AssignableFrom(it) {
		t.Error("double should accept int")
	}
	if it.AssignableFrom(dt) {
		t.Error("int should not accept double")
	}
	at := ArrayT(IntT())
	if !at.AssignableFrom(NullT()) {
		t.Error("array should accept null")
	}
	if at.String() != "int[]" {
		t.Errorf("array type string = %s", at)
	}
	if !ArrayT(IntT()).Equal(ArrayT(IntT())) {
		t.Error("equal array types should compare equal")
	}
	if ArrayT(IntT()).Equal(ArrayT(DoubleT())) {
		t.Error("different array types should not compare equal")
	}
}
