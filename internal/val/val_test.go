package val

import (
	"testing"
	"testing/quick"
)

func TestConstructorsAndAccessors(t *testing.T) {
	if v := IntV(42); v.K != Int || v.I != 42 {
		t.Errorf("IntV: %+v", v)
	}
	if v := DoubleV(2.5); v.K != Double || v.F != 2.5 {
		t.Errorf("DoubleV: %+v", v)
	}
	if v := BoolV(true); !v.AsBool() {
		t.Error("BoolV(true) should be true")
	}
	if v := BoolV(false); v.AsBool() {
		t.Error("BoolV(false) should be false")
	}
	if v := StrV("x"); v.K != Str || v.S != "x" {
		t.Errorf("StrV: %+v", v)
	}
	if v := ObjV(7); !v.IsRef() || v.OID() != 7 {
		t.Errorf("ObjV: %+v", v)
	}
	if NullV().IsRef() {
		t.Error("null is not a ref")
	}
	if IntV(3).AsFloat() != 3.0 {
		t.Error("AsFloat should widen ints")
	}
}

func TestEqualNumericCross(t *testing.T) {
	if !IntV(3).Equal(DoubleV(3)) || !DoubleV(3).Equal(IntV(3)) {
		t.Error("3 == 3.0 across kinds")
	}
	if IntV(3).Equal(DoubleV(3.5)) {
		t.Error("3 != 3.5")
	}
	if IntV(3).Equal(StrV("3")) {
		t.Error("int != string")
	}
	if !NullV().Equal(NullV()) {
		t.Error("null == null")
	}
}

func TestCompareOrdering(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{IntV(1), IntV(2), -1},
		{IntV(2), IntV(2), 0},
		{DoubleV(2.5), IntV(2), 1},
		{StrV("a"), StrV("b"), -1},
		{StrV("b"), StrV("b"), 0},
		{BoolV(false), BoolV(true), -1},
		{NullV(), IntV(0), -1},
		{IntV(0), NullV(), 1},
		{NullV(), NullV(), 0},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// Property: Compare is antisymmetric and consistent with Equal for
// same-kind scalars.
func TestCompareProperties(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := IntV(a), IntV(b)
		if Compare(va, vb) != -Compare(vb, va) {
			return false
		}
		return (Compare(va, vb) == 0) == va.Equal(vb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(a, b string) bool {
		va, vb := StrV(a), StrV(b)
		return Compare(va, vb) == -Compare(vb, va)
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestSizeAndString(t *testing.T) {
	if IntV(1).Size() != 9 || DoubleV(1).Size() != 9 || BoolV(true).Size() != 2 {
		t.Error("scalar sizes")
	}
	if StrV("abc").Size() != 8 {
		t.Errorf("string size = %d", StrV("abc").Size())
	}
	if got := IntV(-7).String(); got != "-7" {
		t.Errorf("String: %q", got)
	}
	if got := DoubleV(2).String(); got != "2.0" {
		t.Errorf("double String: %q", got)
	}
	if got := BoolV(true).String(); got != "true" {
		t.Errorf("bool String: %q", got)
	}
	if got := NullV().String(); got != "null" {
		t.Errorf("null String: %q", got)
	}
	if n := SizeOfRow([]Value{IntV(1), StrV("ab")}); n != 9+7 {
		t.Errorf("SizeOfRow = %d", n)
	}
}
