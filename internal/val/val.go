// Package val defines the tagged value representation shared by the
// PyxJ interpreter, the Pyxis runtime, the sqldb engine and the wire
// protocol. Keeping one kernel type avoids conversion layers between
// the application language and the database.
package val

import (
	"fmt"
	"math"
	"strconv"
)

// Kind discriminates the payload of a Value.
type Kind uint8

// Value kinds. Reference kinds (Obj, Arr, Table) store an object ID in
// the I field; the referenced storage lives in a heap keyed by OID.
const (
	Null Kind = iota
	Int
	Double
	Bool
	Str
	Obj   // object reference: I = OID
	Arr   // array reference: I = OID
	Table // query-result reference: I = OID
)

func (k Kind) String() string {
	switch k {
	case Null:
		return "null"
	case Int:
		return "int"
	case Double:
		return "double"
	case Bool:
		return "bool"
	case Str:
		return "string"
	case Obj:
		return "object"
	case Arr:
		return "array"
	case Table:
		return "table"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// OID identifies a heap object (object, array, or table). OIDs are
// allocated by the runtime; ranges are split between servers so both
// sides can allocate without coordination.
type OID int64

// Value is a compact tagged union. Exactly one of I, F, S is
// meaningful depending on K.
type Value struct {
	K Kind
	I int64
	F float64
	S string
}

// Convenience constructors.

func NullV() Value            { return Value{K: Null} }
func IntV(i int64) Value      { return Value{K: Int, I: i} }
func DoubleV(f float64) Value { return Value{K: Double, F: f} }
func BoolV(b bool) Value {
	if b {
		return Value{K: Bool, I: 1}
	}
	return Value{K: Bool}
}
func StrV(s string) Value { return Value{K: Str, S: s} }
func ObjV(o OID) Value    { return Value{K: Obj, I: int64(o)} }
func ArrV(o OID) Value    { return Value{K: Arr, I: int64(o)} }
func TableV(o OID) Value  { return Value{K: Table, I: int64(o)} }

// AsBool reports the boolean payload; callers must have checked K.
func (v Value) AsBool() bool { return v.I != 0 }

// OID returns the object ID carried by a reference value.
func (v Value) OID() OID { return OID(v.I) }

// IsRef reports whether v is a heap reference (object, array or table).
func (v Value) IsRef() bool { return v.K == Obj || v.K == Arr || v.K == Table }

// AsFloat widens Int to Double; callers use it where numeric context
// permits implicit int→double conversion.
func (v Value) AsFloat() float64 {
	if v.K == Int {
		return float64(v.I)
	}
	return v.F
}

// Equal reports deep equality for scalars and identity for references.
func (v Value) Equal(o Value) bool {
	if v.K != o.K {
		// int/double compare numerically, as in the language.
		if (v.K == Int && o.K == Double) || (v.K == Double && o.K == Int) {
			return v.AsFloat() == o.AsFloat()
		}
		return false
	}
	switch v.K {
	case Null:
		return true
	case Int, Bool, Obj, Arr, Table:
		return v.I == o.I
	case Double:
		return v.F == o.F
	case Str:
		return v.S == o.S
	}
	return false
}

// Compare orders two values of the same (or numeric-compatible) kind:
// -1, 0, +1. Used by the database for index keys and ORDER BY.
func Compare(a, b Value) int {
	if a.K == Null || b.K == Null {
		switch {
		case a.K == Null && b.K == Null:
			return 0
		case a.K == Null:
			return -1
		default:
			return 1
		}
	}
	if (a.K == Int || a.K == Double) && (b.K == Int || b.K == Double) {
		af, bf := a.AsFloat(), b.AsFloat()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	}
	switch a.K {
	case Str:
		switch {
		case a.S < b.S:
			return -1
		case a.S > b.S:
			return 1
		default:
			return 0
		}
	case Bool:
		switch {
		case a.I == b.I:
			return 0
		case a.I < b.I:
			return -1
		default:
			return 1
		}
	}
	// Reference kinds order by OID; only meaningful for determinism.
	switch {
	case a.I < b.I:
		return -1
	case a.I > b.I:
		return 1
	default:
		return 0
	}
}

// Size estimates the serialized size of v in bytes. The profiler uses
// it to weight data edges; the wire codec uses it for network
// accounting. Reference kinds count only the reference itself — the
// payload is counted where the heap part is serialized.
func (v Value) Size() int {
	switch v.K {
	case Null:
		return 1
	case Int, Double:
		return 9
	case Bool:
		return 2
	case Str:
		return 5 + len(v.S)
	default:
		return 9
	}
}

// String renders the value the way sys.print does.
func (v Value) String() string {
	switch v.K {
	case Null:
		return "null"
	case Int:
		return strconv.FormatInt(v.I, 10)
	case Double:
		if v.F == math.Trunc(v.F) && math.Abs(v.F) < 1e15 {
			return strconv.FormatFloat(v.F, 'f', 1, 64)
		}
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case Bool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	case Str:
		return v.S
	case Obj:
		return fmt.Sprintf("obj#%d", v.I)
	case Arr:
		return fmt.Sprintf("arr#%d", v.I)
	case Table:
		return fmt.Sprintf("table#%d", v.I)
	}
	return "?"
}

// SizeOfRow sums the sizes of a row of values.
func SizeOfRow(row []Value) int {
	n := 0
	for _, v := range row {
		n += v.Size()
	}
	return n
}
