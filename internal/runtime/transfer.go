package runtime

import (
	"fmt"
	"io"
	"time"

	"pyxis/internal/compile"
	"pyxis/internal/dbapi"
	"pyxis/internal/pdg"
	"pyxis/internal/rpc"
	"pyxis/internal/source"
	"pyxis/internal/sqldb"
	"pyxis/internal/val"
)

// This file implements the control-transfer protocol (paper §6.1-6.2):
// when execution reaches a block placed on the other server, the local
// runtime sends a transfer message naming the next block, carrying the
// program stack, and piggy-backing batched heap synchronization; it
// then blocks until the remote runtime returns control the same way.
// Each session preserves a single logical thread of control; many
// sessions run the protocol concurrently over a multiplexed transport.

// Stack codec versions. Version 0 is the seed's codec: method qnames
// as strings and every slot of every frame on the wire. Version 1 is
// the delta codec: the compile-assigned method index replaces the
// qname, and only the slots live at the frame's resume point travel,
// gated by an explicit per-frame bitmap so the decoder needs no
// liveness information of its own (a peer whose program lacks liveness
// simply sends a full bitmap). A Legacy peer encodes version 0 — the
// interp-vs-vm benchmark uses it to price the fat wire — and either
// peer decodes both.
const (
	stackV0 = 0
	stackV1 = 1
)

// encodeStack serializes the frame stack. resume is the block where
// the top frame resumes on the receiving side; a caller frame resumes
// at its callee's continuation, with the callee's return slot excluded
// from the live set because the return value overwrites it.
func (sn *Session) encodeStack(w *rpc.Writer, stack []*Frame, resume compile.BlockID) {
	if sn.Peer.Legacy {
		w.Byte(stackV0)
		w.U32(uint32(len(stack)))
		for _, fr := range stack {
			w.Str(fr.Method.QName)
			w.Vals(fr.Slots)
			w.U32(uint32(fr.RetSlot))
			w.U32(uint32(int32(fr.Cont)))
		}
		return
	}
	prog := sn.Peer.Prog
	w.Byte(stackV1)
	w.Uvarint(uint64(len(stack)))
	for i, fr := range stack {
		w.Uvarint(uint64(fr.Method.Idx))
		w.Uvarint(uint64(fr.RetSlot))
		w.Uvarint(uint64(int64(fr.Cont) + 1)) // NoBlock (-1) encodes as 0
		at, skip := resume, -1
		if i < len(stack)-1 {
			at, skip = stack[i+1].Cont, stack[i+1].RetSlot
		}
		var blk *compile.Block
		if at != compile.NoBlock {
			blk = prog.Block(at)
		}
		maskOff := len(w.Buf)
		for j := 0; j < (len(fr.Slots)+7)/8; j++ {
			w.Byte(0)
		}
		for s := range fr.Slots {
			if s == skip || (blk != nil && !blk.LiveAt(s)) {
				continue
			}
			w.Buf[maskOff+s>>3] |= 1 << (uint(s) & 7)
			w.Val(fr.Slots[s])
		}
	}
}

// decodeStack reconstructs a frame stack, dispatching on the codec
// version byte. Version-1 frames come from the session's frame pool;
// dead slots are left zeroed (liveness guarantees they are written
// before any read).
func (sn *Session) decodeStack(r *rpc.Reader) ([]*Frame, error) {
	prog := sn.Peer.Prog
	switch v := r.Byte(); v {
	case stackV0:
		n := int(r.U32())
		if r.Err() != nil || n < 0 || n > len(r.Buf) {
			return nil, fmt.Errorf("runtime: bad stack depth %d", n)
		}
		stack := make([]*Frame, 0, n)
		for i := 0; i < n; i++ {
			qname := r.Str()
			m := prog.Method(qname)
			if m == nil {
				return nil, fmt.Errorf("runtime: transfer references unknown method %q", qname)
			}
			fr := &Frame{
				Method:  m,
				Slots:   r.Vals(),
				RetSlot: int(r.U32()),
				Cont:    compile.BlockID(int32(r.U32())),
			}
			if len(fr.Slots) < m.NSlots {
				grown := make([]val.Value, m.NSlots)
				copy(grown, fr.Slots)
				fr.Slots = grown
			}
			stack = append(stack, fr)
		}
		return stack, r.Err()
	case stackV1:
		n := int(r.Uvarint())
		if r.Err() != nil || n < 0 || n > len(r.Buf) {
			return nil, fmt.Errorf("runtime: bad stack depth %d", n)
		}
		stack := make([]*Frame, 0, n)
		for i := 0; i < n; i++ {
			idx := int(r.Uvarint())
			if r.Err() != nil || idx < 0 || idx >= len(prog.MethodList) {
				// Frames already decoded came from the session frame pool;
				// a truncated or corrupt transfer must hand them back, or
				// every faulted transfer shrinks the pool for good.
				sn.freeStack(stack)
				return nil, fmt.Errorf("runtime: transfer references unknown method index %d", idx)
			}
			fr := sn.newFrame(prog.MethodList[idx])
			fr.RetSlot = int(r.Uvarint())
			fr.Cont = compile.BlockID(int64(r.Uvarint()) - 1)
			nb := (fr.Method.NSlots + 7) / 8
			maskOff := r.Off
			for j := 0; j < nb; j++ {
				r.Byte()
			}
			if r.Err() != nil {
				sn.freeFrame(fr)
				sn.freeStack(stack)
				return nil, r.Err()
			}
			for s := 0; s < fr.Method.NSlots; s++ {
				if r.Buf[maskOff+s>>3]&(1<<(uint(s)&7)) != 0 {
					fr.Slots[s] = r.Val()
				}
			}
			stack = append(stack, fr)
		}
		if err := r.Err(); err != nil {
			sn.freeStack(stack)
			return nil, err
		}
		return stack, nil
	default:
		return nil, fmt.Errorf("runtime: unknown stack codec version %d", v)
	}
}

// Client drives a partitioned program from the application server: it
// executes APP blocks on its session and transfers control to the DB
// peer over Remote when execution reaches a DB block. Like the session
// it wraps, a Client is a single logical thread of control; run
// multiple Clients (each with its own Session and Remote transport)
// for concurrent load.
type Client struct {
	Sess   *Session
	Remote rpc.Transport
	// OnClose, if set, runs once when Close is called — wiring (e.g. a
	// Deployment) uses it to retire the matching DB-side session.
	OnClose func()

	closed bool
}

// NewClient wraps an APP-side session and its control-transfer
// transport.
func NewClient(sess *Session, remote rpc.Transport) *Client {
	return &Client{Sess: sess, Remote: remote}
}

// Close releases the client's resources: its control-transfer
// transport, its session's database connection, and (via OnClose) any
// server-side session state. A Client is a single logical thread of
// control, so Close must not race a Call on the same client.
func (c *Client) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	err := c.Remote.Close()
	if serr := c.Sess.Close(); err == nil {
		err = serr
	}
	if c.OnClose != nil {
		c.OnClose()
	}
	return err
}

// NewObject allocates an instance of class on the APP heap and runs
// its (possibly partitioned) constructor.
func (c *Client) NewObject(class string, args ...val.Value) (val.OID, error) {
	ci := c.Sess.Peer.Prog.Classes[class]
	if ci == nil {
		return 0, fmt.Errorf("runtime: unknown class %s", class)
	}
	oid := c.Sess.Heap.NewObject(ci)
	if ci.Ctor == nil {
		if len(args) != 0 {
			return 0, fmt.Errorf("runtime: class %s has no constructor", class)
		}
		return oid, nil
	}
	if _, err := c.invoke(ci.Ctor, oid, args); err != nil {
		return 0, err
	}
	return oid, nil
}

// CallEntry invokes an entry method (paper §5.2 wrapper).
func (c *Client) CallEntry(qname string, this val.OID, args ...val.Value) (val.Value, error) {
	m := c.Sess.Peer.Prog.Method(qname)
	if m == nil {
		return val.Value{}, fmt.Errorf("runtime: unknown method %s", qname)
	}
	if !m.IsEntryPoint {
		return val.Value{}, fmt.Errorf("runtime: %s is not an entry method", qname)
	}
	return c.invoke(m, this, args)
}

// Call invokes any method (used by tests to compare against the
// interpreter on non-entry methods).
func (c *Client) Call(qname string, this val.OID, args ...val.Value) (val.Value, error) {
	m := c.Sess.Peer.Prog.Method(qname)
	if m == nil {
		return val.Value{}, fmt.Errorf("runtime: unknown method %s", qname)
	}
	return c.invoke(m, this, args)
}

func (c *Client) invoke(m *compile.MethodInfo, this val.OID, args []val.Value) (val.Value, error) {
	if len(args) != len(m.Params) {
		return val.Value{}, fmt.Errorf("runtime: %s: want %d args, got %d", m.QName, len(m.Params), len(args))
	}
	sn := c.Sess
	peer := sn.Peer
	fr := sn.newFrame(m)
	fr.Slots[0] = val.ObjV(this)
	for i, a := range args {
		if m.Params[i].K == source.KDouble && a.K == val.Int {
			a = val.DoubleV(float64(a.I))
		}
		fr.Slots[i+1] = a
	}
	stack := []*Frame{fr}
	b := m.Entry
	// fail abandons the entry mid-flight: whatever transaction it opened
	// on the APP-side connection must be rolled back here — the caller
	// only ever sees the error and retries (or gives up) from the top,
	// and an abandoned transaction would pin its row locks until the
	// connection died. Best effort: with no open transaction the
	// rollback is a harmless ErrNoTransaction, and after an engine-side
	// deadlock abort the transaction is already gone.
	fail := func(err error) (val.Value, error) {
		_ = sn.DB.Rollback()
		return val.Value{}, err
	}
	for {
		next, done, ret, outStack, err := sn.Run(b, stack)
		if err != nil {
			return fail(err)
		}
		if done {
			return ret, nil
		}
		// Control transfer to the DB peer.
		var w rpc.Writer
		w.I64(int64(next))
		sn.encodeStack(&w, outStack, next)
		encodeSync(&w, sn.Heap, sn.takePending())
		req := w.Buf
		sn.freeStack(outStack)
		peer.Metrics.Transfers.Add(1)
		peer.Metrics.BytesSent.Add(int64(len(req)))
		if peer.Env != nil {
			peer.Env.TransferSend(pdg.App, len(req))
		}
		resp, err := c.Remote.Call(req)
		if err != nil {
			// Transfer failed — admission shed, connection loss, remote
			// decode error, anything. All of them abandon the entry, so
			// all of them roll back (not just ErrOverloaded: a conn-loss
			// exit that kept the transaction open would hold its row
			// locks until the APP-side database connection itself died).
			return fail(fmt.Errorf("runtime: control transfer failed: %w", err))
		}
		peer.Metrics.BytesRecv.Add(int64(len(resp)))
		r := &rpc.Reader{Buf: resp}
		respDone := r.Bool()
		if respDone {
			retv := r.Val()
			if err := applySync(r, sn.Heap, peer.Prog.Classes); err != nil {
				return fail(err)
			}
			if err := r.Err(); err != nil {
				return fail(err)
			}
			return retv, nil
		}
		b = compile.BlockID(int32(r.U32()))
		stack, err = sn.decodeStack(r)
		if err != nil {
			return fail(err)
		}
		if err := applySync(r, sn.Heap, peer.Prog.Classes); err != nil {
			sn.freeStack(stack)
			return fail(err)
		}
		if err := r.Err(); err != nil {
			sn.freeStack(stack)
			return fail(err)
		}
	}
}

// Handler serves the DB side of the control-transfer protocol for one
// client session. Each session gets its own handler; the sessions of
// one peer may be served concurrently.
func Handler(sn *Session) rpc.Handler {
	peer := sn.Peer
	return func(req []byte) ([]byte, error) {
		// Count the request on entry, like the client counts responses on
		// receipt: malformed or failed transfers moved their bytes over
		// the wire all the same, and a metric that skips them undercounts
		// exactly when fault injection is watching.
		peer.Metrics.BytesRecv.Add(int64(len(req)))
		r := &rpc.Reader{Buf: req}
		b := compile.BlockID(r.I64())
		stack, err := sn.decodeStack(r)
		if err != nil {
			return nil, err
		}
		if err := applySync(r, sn.Heap, peer.Prog.Classes); err != nil {
			sn.freeStack(stack)
			return nil, err
		}
		if err := r.Err(); err != nil {
			sn.freeStack(stack)
			return nil, err
		}

		next, done, ret, outStack, err := sn.Run(b, stack)
		if err != nil {
			return nil, err
		}
		var w rpc.Writer
		w.Bool(done)
		if done {
			w.Val(ret)
		} else {
			w.U32(uint32(int32(next)))
			sn.encodeStack(&w, outStack, next)
		}
		encodeSync(&w, sn.Heap, sn.takePending())
		sn.freeStack(outStack)
		peer.Metrics.Transfers.Add(1)
		peer.Metrics.BytesSent.Add(int64(len(w.Buf)))
		if peer.Env != nil {
			peer.Env.TransferSend(pdg.DB, len(w.Buf))
		}
		return w.Buf, nil
	}
}

// Deployment bundles a complete single-process deployment of one
// partitioned program: an APP peer, a DB peer colocated with the
// database, one primary client session, and the transports between
// them. Additional concurrent sessions are opened with NewSession. It
// is the harness for tests, benchmarks, and the in-process examples;
// cmd/pyxis-dbserver and cmd/pyxis-app wire the same pieces over real
// multiplexed TCP.
type Deployment struct {
	Prog     *compile.Program
	App      *Peer
	DBPeer   *Peer
	Sessions *SessionManager // DB-side session registry
	Client   *Client         // primary session's client
	DB       *sqldb.DB
	opts     Options
	ctlWire  *rpc.InProc
	dbWire   *rpc.InProc
}

// Options configures NewDeployment.
type Options struct {
	// RTT is the emulated round-trip time injected into both the
	// control-transfer wire and the APP-side database wire.
	RTT time.Duration
	// Out receives sys.print output (APP side).
	Out io.Writer
	// Env is the cost-accounting environment (simulation). It is
	// shared by every session of the deployment; see the Env interface
	// for the concurrency contract when sessions run on goroutines.
	Env Env
	// Legacy runs both peers on the seed's hot path (version-0
	// transfers, string SQL, per-call frame allocation); see
	// Peer.Legacy.
	Legacy bool
}

// NewDeployment wires a compiled program to a database entirely
// in-process.
func NewDeployment(prog *compile.Program, db *sqldb.DB, opts Options) *Deployment {
	dbPeer := NewPeer(prog, pdg.DB, opts.Out)
	dbPeer.Env = opts.Env
	dbPeer.Legacy = opts.Legacy
	appPeer := NewPeer(prog, pdg.App, opts.Out)
	appPeer.Env = opts.Env
	appPeer.Legacy = opts.Legacy

	d := &Deployment{
		Prog:     prog,
		App:      appPeer,
		DBPeer:   dbPeer,
		Sessions: NewSessionManager(dbPeer, func() dbapi.Conn { return dbapi.NewLocal(db) }),
		DB:       db,
		opts:     opts,
	}
	d.Client, d.ctlWire, d.dbWire = d.newSessionWires()
	return d
}

// newSessionWires opens one more client session: an APP-side session
// with its own database wire, and a DB-side session behind its own
// control-transfer wire.
func (d *Deployment) newSessionWires() (*Client, *rpc.InProc, *rpc.InProc) {
	dbHandlerSess := d.DB.NewSession()
	dbWire := rpc.NewInProc(dbapi.SessionHandler(dbHandlerSess), d.opts.RTT)
	appSess := d.App.NewSession(dbapi.NewClient(dbWire))
	sid := d.Sessions.NextID()
	dbSess := d.Sessions.Session(sid)
	ctlWire := rpc.NewInProc(Handler(dbSess), d.opts.RTT)
	c := NewClient(appSess, ctlWire)
	c.OnClose = func() {
		d.Sessions.Close(sid)
		// Mirror the mux path's teardown: a transaction abandoned on
		// the APP-side database wire must not hold row locks forever.
		if dbHandlerSess.InTxn() {
			_ = dbHandlerSess.Rollback()
		}
	}
	return c, ctlWire, dbWire
}

// NewSession opens an additional concurrent client session on the
// deployment. Each returned Client is an independent logical thread of
// control; all of them share the DB-side peer and database. Close the
// client to release its DB-side session (heap, connection, any open
// transaction).
func (d *Deployment) NewSession() *Client {
	c, _, _ := d.newSessionWires()
	return c
}

// WireStats returns (control transfers, app-side DB calls) transport
// statistics for the primary session.
func (d *Deployment) WireStats() (ctl rpc.Stats, db rpc.Stats) {
	return d.ctlWire.Stats(), d.dbWire.Stats()
}

// TotalBytes returns all bytes moved between the two servers by the
// primary session: control transfers plus APP-side database traffic.
func (d *Deployment) TotalBytes() int64 {
	c, db := d.WireStats()
	return c.BytesSent + c.BytesRecv + db.BytesSent + db.BytesRecv
}
