package runtime

// Migrator is the data-plane half of live rebalancing: it moves one
// contiguous warehouse range from shard to shard over the existing
// dbapi mux wire, with no transaction ever observing half a warehouse.
//
// The protocol, per move:
//
//	FENCE    arm a range fence on the source (rpc.MigFence) — new
//	         statements on the moving keys fail fast with the
//	         retryable ErrRangeFenced; in-flight writers finish and
//	         their row locks drain against the snapshot below.
//	ADOPT    exempt the migrator's own source session from the fence
//	         (rpc.MigAdopt rides the session worker, so it is ordered
//	         after the Begin that opened the drain transaction).
//	STREAM   inside one source transaction, SELECT every row of every
//	         partitioned table for each moving warehouse (the S locks
//	         serialize behind any still-running writer) and INSERT it
//	         inside one destination transaction.
//	DRAIN    DELETE the moved rows on the source, same transaction.
//	CUTOVER  commit both transactions atomically through the existing
//	         2PC coordinator (TxnPrepare on both, then the decision).
//	RELEASE  drop the fence with moved=true: the range becomes a
//	         tombstone on the source (ErrRangeMoved redirects stale
//	         routers) and the successor map publishes with the epoch
//	         bumped.
//
// Any failure before the 2PC decision rolls both transactions back and
// releases the fence with moved=false — the range simply serves from
// the source again. If the migrator itself dies mid-move, the fence's
// TTL releases it lazily on the source (see sqldb.ArmFence).

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"pyxis/internal/dbapi"
	"pyxis/internal/rpc"
	"pyxis/internal/val"
)

// ErrWrongShard is the routing redirect: the addressed shard no longer
// owns the key because a migration completed and the map epoch moved
// on. Drivers re-read the current map and retry on the new home shard.
var ErrWrongShard = errors.New("runtime: key re-homed by a newer shard map")

// Migrator moves warehouse ranges between shards. One Migrator per
// deployment; moves are serialized internally (migMu), so concurrent
// advisor triggers queue rather than interleave half-fenced ranges.
type Migrator struct {
	// Client is the router whose map the move validates against and
	// whose successor map it publishes; its TwoPC coordinator drives
	// the cutover.
	Client *ShardedClient
	// Pool is the DB-tier wire: one mux connection set per shard.
	Pool *rpc.ShardedPool
	// Tables maps each partitioned table to its partition-key column
	// (the replicated tables are simply absent).
	Tables map[string]string
	// FenceTTL bounds how long the source range stays fenced if this
	// process dies mid-move (default 5s).
	FenceTTL time.Duration

	// migMu serializes moves. Held for a whole move; acquired before
	// any fence goes up, so at most one range is fenced at a time.
	migMu sync.Mutex
}

// MoveResult describes one completed migration.
type MoveResult struct {
	From, To   int
	Lo, Hi     int64
	Rows       int           // rows streamed (and deleted on the source)
	Elapsed    time.Duration // fence-to-publish wall time
	FinalEpoch uint64
}

func (r *MoveResult) String() string {
	return fmt.Sprintf("moved w[%d,%d] shard%d->shard%d: %d rows in %v (epoch %d)",
		r.Lo, r.Hi, r.From, r.To, r.Rows, r.Elapsed.Round(time.Millisecond), r.FinalEpoch)
}

// Move transfers warehouses [lo, hi] from shard `from` to shard `to`
// and publishes the successor map. It validates current ownership
// first, so a stale plan against an already-moved range fails with
// ErrWrongShard instead of fencing someone else's data.
func (mg *Migrator) Move(from, to int, lo, hi int64) (*MoveResult, error) {
	mg.migMu.Lock()
	defer mg.migMu.Unlock()
	start := time.Now()

	cur := mg.Client.CurrentMap()
	n := cur.NumShards()
	if from == to || from < 0 || from >= n || to < 0 || to >= n {
		return nil, fmt.Errorf("runtime: bad move shard%d->shard%d of %d shards", from, to, n)
	}
	if lo > hi {
		return nil, fmt.Errorf("runtime: bad move range [%d,%d]", lo, hi)
	}
	for w := lo; w <= hi; w++ {
		if home := cur.Shard(w); home != from {
			return nil, fmt.Errorf("%w: warehouse %d is on shard %d, not %d", ErrWrongShard, w, home, from)
		}
	}

	srcMux, err := mg.Pool.Session(from)
	if err != nil {
		return nil, fmt.Errorf("runtime: migrate source session: %w", err)
	}
	src := dbapi.NewClient(srcMux)
	defer src.Close()
	dstMux, err := mg.Pool.Session(to)
	if err != nil {
		return nil, fmt.Errorf("runtime: migrate dest session: %w", err)
	}
	dst := dbapi.NewClient(dstMux)
	defer dst.Close()

	ttl := mg.FenceTTL
	if ttl <= 0 {
		ttl = 5 * time.Second
	}

	// Open the drain transaction BEFORE arming the fence: the server
	// session must exist for ADOPT to land on it, and the order
	// Begin -> FENCE -> ADOPT keeps the fence window as narrow as the
	// drain itself.
	if err := src.Begin(); err != nil {
		return nil, fmt.Errorf("runtime: migrate source begin: %w", err)
	}
	token, err := srcMux.MigCtl(rpc.MigRequest{Op: rpc.MigFence, Lo: lo, Hi: hi, TTL: ttl, Tables: mg.Tables}, 0)
	if err != nil {
		rollbackBoth(src, nil)
		return nil, fmt.Errorf("runtime: migrate fence: %w", err)
	}
	release := func(moved bool) {
		// Best effort: if the release itself fails (dead source), the
		// fence TTL converges the source to unfenced on its own.
		_, _ = srcMux.MigCtl(rpc.MigRequest{Op: rpc.MigRelease, Token: token, Moved: moved}, 0)
	}
	abort := func(stage string, cause error) (*MoveResult, error) {
		rollbackBoth(src, dst)
		release(false)
		return nil, fmt.Errorf("runtime: migrate %s: %w", stage, cause)
	}
	if _, err := srcMux.MigCtl(rpc.MigRequest{Op: rpc.MigAdopt, Token: token}, 0); err != nil {
		return abort("adopt", err)
	}
	if err := dst.Begin(); err != nil {
		return abort("dest begin", err)
	}

	rows, err := mg.stream(src, dst, lo, hi)
	if err != nil {
		return abort("stream", err)
	}

	// Cutover: both sides prepare, then the decision commits them
	// atomically. The source transaction holds X locks on every moved
	// row (the deletes), so no reader can slip between delete-commit
	// and tombstone: the fence is still up for new statements and the
	// locks hold everyone else until after RELEASE below.
	gid := mg.Client.TwoPC.NewGID()
	if err := mg.Client.TwoPC.Commit(gid, srcMux, dstMux); err != nil {
		// Commit returned non-nil => decision was abort (prepare veto
		// or participant death); both sides converge to rollback.
		release(false)
		return nil, fmt.Errorf("runtime: migrate cutover: %w", err)
	}
	release(true)

	next := cur.WithMove(lo, hi, to)
	if err := mg.Client.Publish(next); err != nil {
		// Committed but unpublished: the tombstone still redirects
		// traffic, so surface the inconsistency loudly.
		return nil, fmt.Errorf("runtime: migrate publish after commit: %w", err)
	}
	return &MoveResult{From: from, To: to, Lo: lo, Hi: hi, Rows: rows,
		Elapsed: time.Since(start), FinalEpoch: next.Epoch}, nil
}

// stream copies every partitioned row of warehouses [lo, hi] from the
// source drain transaction into the destination transaction, returning
// the row count. Table order is sorted for determinism.
func (mg *Migrator) stream(src, dst *dbapi.Client, lo, hi int64) (int, error) {
	tables := make([]string, 0, len(mg.Tables))
	for t := range mg.Tables {
		tables = append(tables, t)
	}
	sort.Strings(tables)
	rows := 0
	for _, table := range tables {
		keyCol := mg.Tables[table]
		for w := lo; w <= hi; w++ {
			rs, err := src.Query(fmt.Sprintf("SELECT * FROM %s WHERE %s = ?", table, keyCol), val.IntV(w))
			if err != nil {
				return 0, fmt.Errorf("snapshot %s w=%d: %w", table, w, err)
			}
			if len(rs.Rows) == 0 {
				continue
			}
			insert := insertSQL(table, len(rs.Rows[0]))
			for _, row := range rs.Rows {
				if _, err := dst.Exec(insert, row...); err != nil {
					return 0, fmt.Errorf("install %s w=%d: %w", table, w, err)
				}
			}
			if _, err := src.Exec(fmt.Sprintf("DELETE FROM %s WHERE %s = ?", table, keyCol), val.IntV(w)); err != nil {
				return 0, fmt.Errorf("drain %s w=%d: %w", table, w, err)
			}
			rows += len(rs.Rows)
		}
	}
	return rows, nil
}

func insertSQL(table string, ncols int) string {
	marks := make([]byte, 0, 2*ncols)
	for i := 0; i < ncols; i++ {
		if i > 0 {
			marks = append(marks, ',')
		}
		marks = append(marks, '?')
	}
	return fmt.Sprintf("INSERT INTO %s VALUES (%s)", table, marks)
}

func rollbackBoth(src, dst *dbapi.Client) {
	if src != nil {
		_ = src.Rollback()
	}
	if dst != nil {
		_ = dst.Rollback()
	}
}
