package runtime

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"pyxis/internal/rpc"
)

// AdmissionController makes the server REFUSE work from the same
// saturation signals LoadMonitor already samples, instead of merely
// reporting them: it implements rpc.AdmissionPolicy, gating both
// session creation and per-call queueing on the blended load — the
// per-session mux queue depth, the sqldb lock-wait rate, the CPU
// proxy, plus any external load — and on a hard concurrent-session
// cap. Refusals travel as the typed rpc.ErrOverloaded shed, so every
// existing client backoff path (DynamicClient, bench drivers,
// pyxis-app) just works.
//
// The load gate is hysteretic: shedding engages when the blended load
// crosses HighLoad and releases only once it falls below LowLoad, so
// admission cannot flap call-by-call around a single threshold (the
// same dead-band idea as Switcher.Hysteresis, applied server-side).
// One controller is shared by every connection of a server, so its
// session accounting is server-wide.
type AdmissionController struct {
	cfg AdmissionConfig
	mon *LoadMonitor

	sessions atomic.Int64 // currently admitted sessions (server-wide)
	shedding atomic.Bool  // hysteresis state: true = refusing

	admittedSessions atomic.Int64
	shedSessions     atomic.Int64
	shedCalls        atomic.Int64
}

// AdmissionConfig tunes an AdmissionController. Zero values select the
// documented defaults.
type AdmissionConfig struct {
	// MaxSessions caps concurrently admitted sessions server-wide
	// (0 = unlimited). The cap applies regardless of load: it is the
	// structural bound that keeps queue growth finite at saturation.
	MaxSessions int
	// HighLoad is the blended load percent above which shedding
	// engages (default 85).
	HighLoad float64
	// LowLoad is the blended load percent below which shedding
	// releases (default 60). Values >= HighLoad are clamped under it —
	// an inverted band would flap exactly like no band at all.
	LowLoad float64
	// ShedQueue is the per-session queue depth tolerated WHILE
	// shedding (default rpc.SessionQueueDepth / 4): admitted sessions
	// keep making one-call-at-a-time progress, but a session trying to
	// pipeline into a saturated server is shed early instead of being
	// allowed to fill its structural queue.
	ShedQueue int
}

// NewAdmissionController builds a controller over mon's saturation
// signal. mon may be nil, leaving only the MaxSessions gate active
// (shedding then never engages).
func NewAdmissionController(mon *LoadMonitor, cfg AdmissionConfig) *AdmissionController {
	if cfg.HighLoad <= 0 {
		cfg.HighLoad = 85
	}
	if cfg.LowLoad <= 0 {
		cfg.LowLoad = 60
	}
	if cfg.LowLoad >= cfg.HighLoad {
		cfg.LowLoad = cfg.HighLoad - 1
	}
	if cfg.ShedQueue <= 0 {
		cfg.ShedQueue = rpc.SessionQueueDepth / 4
	}
	return &AdmissionController{cfg: cfg, mon: mon}
}

// refresh re-evaluates the hysteresis state from the current blended
// load. queueLen rides into the monitor's blend the same way it rides
// reply-time samples, so a deep session queue pushes toward shedding.
func (a *AdmissionController) refresh(queueLen int) {
	if a.mon == nil {
		return
	}
	rep, ok := a.mon.Sample(queueLen)
	if !ok {
		return
	}
	if a.shedding.Load() {
		if rep.Load < a.cfg.LowLoad {
			a.shedding.Store(false)
		}
	} else if rep.Load > a.cfg.HighLoad {
		a.shedding.Store(true)
	}
}

// AdmitSession implements rpc.AdmissionPolicy: it refuses new sessions
// while the server is saturated (hysteresis state) or at the session
// cap. Admission reserves a slot that SessionClosed releases.
func (a *AdmissionController) AdmitSession(sid uint32) error {
	a.refresh(0)
	if a.shedding.Load() {
		a.shedSessions.Add(1)
		return fmt.Errorf("admission: server saturated (load over %.0f%%), session %d refused", a.cfg.HighLoad, sid)
	}
	if max := a.cfg.MaxSessions; max > 0 {
		for {
			n := a.sessions.Load()
			if n >= int64(max) {
				a.shedSessions.Add(1)
				return fmt.Errorf("admission: %d sessions at cap %d, session %d refused", n, max, sid)
			}
			if a.sessions.CompareAndSwap(n, n+1) {
				break
			}
		}
	} else {
		a.sessions.Add(1)
	}
	a.admittedSessions.Add(1)
	return nil
}

// AdmitCall implements rpc.AdmissionPolicy: while shedding, calls
// arriving at a session whose queue already holds ShedQueue requests
// are refused — the tightened bound keeps admitted sessions moving
// while preventing queue growth toward the structural limit.
func (a *AdmissionController) AdmitCall(sid uint32, queueLen int) error {
	a.refresh(queueLen)
	if a.shedding.Load() && queueLen >= a.cfg.ShedQueue {
		a.shedCalls.Add(1)
		return fmt.Errorf("admission: server saturated, session %d queue at %d (shed bound %d)", sid, queueLen, a.cfg.ShedQueue)
	}
	return nil
}

// SessionClosed implements rpc.AdmissionPolicy: it releases the slot
// AdmitSession reserved.
func (a *AdmissionController) SessionClosed(sid uint32) { a.sessions.Add(-1) }

// Shedding reports whether the load gate is currently refusing work.
func (a *AdmissionController) Shedding() bool { return a.shedding.Load() }

// Sessions returns the number of currently admitted sessions.
func (a *AdmissionController) Sessions() int64 { return a.sessions.Load() }

// AdmissionStats snapshots a controller's counters.
type AdmissionStats struct {
	Sessions         int64 // currently admitted
	AdmittedSessions int64 // admissions granted over the lifetime
	ShedSessions     int64 // session admissions refused
	ShedCalls        int64 // calls refused on admitted sessions
	Shedding         bool  // current hysteresis state
}

// Stats returns a snapshot of the controller's counters.
func (a *AdmissionController) Stats() AdmissionStats {
	return AdmissionStats{
		Sessions:         a.sessions.Load(),
		AdmittedSessions: a.admittedSessions.Load(),
		ShedSessions:     a.shedSessions.Load(),
		ShedCalls:        a.shedCalls.Load(),
		Shedding:         a.shedding.Load(),
	}
}

var _ rpc.AdmissionPolicy = (*AdmissionController)(nil)

// maxShedBackoffStep caps the linear component of the shed backoff so
// deep retry chains wait tens of milliseconds, not seconds.
const maxShedBackoffStep = 50

// ShedBackoff returns how long to sleep before retry attempt
// (0-based) after an rpc.ErrOverloaded shed: a linearly growing base
// plus a uniform random jitter of up to one base, so a cohort of
// sessions shed together does not retry in lockstep and re-flood the
// server at the exact same instant.
func ShedBackoff(attempt int) time.Duration {
	step := attempt + 1
	if step > maxShedBackoffStep {
		step = maxShedBackoffStep
	}
	base := time.Duration(step) * time.Millisecond
	return base + time.Duration(rand.Int63n(int64(base)))
}

// RetryOverloaded runs call, absorbing rpc.ErrOverloaded results with
// ShedBackoff sleeps for up to maxRetries retries (<= 0 selects
// DefaultShedRetries); any other outcome returns immediately. It
// returns how many sheds were absorbed alongside the final error —
// the one shed-retry loop shared by every client of a gated server
// (an overloaded reply means the server refused the work before any
// state existed, so retrying is always safe).
func RetryOverloaded(maxRetries int, call func() error) (sheds int64, err error) {
	if maxRetries <= 0 {
		maxRetries = DefaultShedRetries
	}
	for attempt := 0; ; attempt++ {
		err = call()
		if err == nil || !errors.Is(err, rpc.ErrOverloaded) {
			return sheds, err
		}
		sheds++
		if attempt >= maxRetries {
			return sheds, err
		}
		time.Sleep(ShedBackoff(attempt))
	}
}
