package runtime

// Two-phase-commit tests: the coordinator/participant protocol over
// real mux connections (net.Pipe), including the fault-injection paths
// — a coordinator that never decides (presumed abort), a participant
// killed between prepare and commit (recovery by re-querying the
// decision log), and a shard that is dead at prepare time.

import (
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"pyxis/internal/dbapi"
	"pyxis/internal/rpc"
	"pyxis/internal/sqldb"
	"pyxis/internal/val"
)

// twopcShard is one participant "shard": its own database, its own
// 2PC participant, served over its own mux connection.
type twopcShard struct {
	db   *sqldb.DB
	part *dbapi.Participant
	cli  *rpc.MuxClient
	sess *rpc.MuxSession
	conn *dbapi.Client
}

func newTwopcShard(t *testing.T, deadline time.Duration, resolver dbapi.Resolver) *twopcShard {
	t.Helper()
	db := sqldb.Open()
	s := db.NewSession()
	if _, err := s.Exec("CREATE TABLE acct (k INT PRIMARY KEY, v INT)"); err != nil {
		t.Fatal(err)
	}
	for k := int64(1); k <= 4; k++ {
		if _, err := s.Exec("INSERT INTO acct VALUES (?, 100)", val.IntV(k)); err != nil {
			t.Fatal(err)
		}
	}
	part := dbapi.NewParticipant(deadline, resolver)
	srvConn, cliConn := net.Pipe()
	go func() {
		rpc.ServeMuxConn(srvConn, dbapi.MuxHandlersTxn(db, part))
		_ = srvConn.Close()
	}()
	cli := rpc.NewMuxClient(cliConn)
	t.Cleanup(func() { _ = cli.Close() })
	sess := cli.Session()
	return &twopcShard{db: db, part: part, cli: cli, sess: sess, conn: dbapi.NewClient(sess)}
}

// acct reads acct[k] through a fresh local session (not the wire).
func (sh *twopcShard) acct(t *testing.T, k int64) int64 {
	t.Helper()
	rs, err := sh.db.NewSession().Query("SELECT v FROM acct WHERE k = ?", val.IntV(k))
	if err != nil {
		t.Fatal(err)
	}
	return rs.Rows[0][0].I
}

// openBranch starts a transaction branch on the shard's wire session.
func (sh *twopcShard) openBranch(t *testing.T, k, delta int64) {
	t.Helper()
	if err := sh.conn.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := sh.conn.Exec("UPDATE acct SET v = v + ? WHERE k = ?", val.IntV(delta), val.IntV(k)); err != nil {
		t.Fatal(err)
	}
}

// mustSoon runs f on a goroutine and fails the test if it neither
// succeeds nor errors within 10s — the signature of leaked locks
// wedging a statement forever.
func mustSoon(t *testing.T, what string, f func() error) {
	t.Helper()
	ch := make(chan error, 1)
	go func() { ch <- f() }()
	select {
	case err := <-ch:
		if err != nil {
			t.Fatalf("%s: %v", what, err)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("%s: timed out (locks leaked?)", what)
	}
}

// TestTwoPCCrossShardCommit: the happy path. Two branches on two
// shards, one coordinator commit; both apply, locks release, duplicate
// decision frames stay idempotent, and the sessions survive for the
// next transaction.
func TestTwoPCCrossShardCommit(t *testing.T) {
	co := NewCoordinator(2 * time.Second)
	a := newTwopcShard(t, 5*time.Second, co.Outcome)
	b := newTwopcShard(t, 5*time.Second, co.Outcome)
	a.openBranch(t, 1, -10)
	b.openBranch(t, 1, +10)

	gid := co.NewGID()
	if err := co.Commit(gid, a.sess, b.sess); err != nil {
		t.Fatal(err)
	}
	if got := a.acct(t, 1); got != 90 {
		t.Errorf("shard a: v = %d, want 90", got)
	}
	if got := b.acct(t, 1); got != 110 {
		t.Errorf("shard b: v = %d, want 110", got)
	}
	// Locks are gone: a conflicting writer proceeds immediately.
	mustSoon(t, "post-commit writer", func() error {
		_, err := a.db.NewSession().Exec("UPDATE acct SET v = v + 1 WHERE k = 1")
		return err
	})
	// A duplicate commit frame (coordinator retry) is answered
	// idempotently from the outcome log.
	if st, err := a.sess.TxnCtl(rpc.TxnCommit, gid, time.Second); err != nil || st != rpc.TxnStateCommitted {
		t.Errorf("duplicate commit: state=%s err=%v, want committed/nil", st, err)
	}
	// The branch sessions are reusable after 2PC.
	if err := a.conn.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := a.conn.Rollback(); err != nil {
		t.Fatal(err)
	}
	if commits, aborts, _ := co.Stats(); commits != 1 || aborts != 0 {
		t.Errorf("coordinator stats: %d commits, %d aborts, want 1, 0", commits, aborts)
	}
}

// TestTwoPCPrepareVetoAbortsPrepared: a participant with nothing to
// prepare vetoes the commit; the branch that did prepare is aborted
// and its update undone, and the decision log reads abort.
func TestTwoPCPrepareVetoAbortsPrepared(t *testing.T) {
	co := NewCoordinator(2 * time.Second)
	a := newTwopcShard(t, 5*time.Second, co.Outcome)
	b := newTwopcShard(t, 5*time.Second, co.Outcome)
	a.openBranch(t, 2, -100)
	// b never opened a transaction: its prepare vote is "no".

	gid := co.NewGID()
	err := co.Commit(gid, a.sess, b.sess)
	if !errors.Is(err, ErrTxnAborted) {
		t.Fatalf("Commit = %v, want ErrTxnAborted", err)
	}
	mustSoon(t, "read after abort", func() error {
		if got := a.acct(t, 2); got != 100 {
			return fmt.Errorf("shard a: v = %d, want 100 (branch undone)", got)
		}
		return nil
	})
	if commit, known := co.Outcome(gid); known && commit {
		t.Error("decision log records commit for an aborted transaction")
	}
	if st, err := a.sess.TxnCtl(rpc.TxnStatus, gid, time.Second); err != nil || st != rpc.TxnStateAborted {
		t.Errorf("status on a: %s, %v, want aborted", st, err)
	}
}

// TestTwoPCPresumedAbortOnLostCoordinator: the coordinator prepares a
// branch and then vanishes without deciding. The participant's
// in-doubt deadline fires, the re-query finds no decision record, and
// presumed abort releases the locks with the update undone. A commit
// frame arriving after that is refused — the split outcome it would
// create is exactly what presumed abort exists to prevent.
func TestTwoPCPresumedAbortOnLostCoordinator(t *testing.T) {
	co := NewCoordinator(2 * time.Second)
	a := newTwopcShard(t, 150*time.Millisecond, co.Outcome)
	a.openBranch(t, 3, -100)

	gid := co.NewGID()
	if st, err := a.sess.TxnCtl(rpc.TxnPrepare, gid, time.Second); err != nil || st != rpc.TxnStatePrepared {
		t.Fatalf("prepare: %s, %v", st, err)
	}
	// No Decide, no phase 2 — the coordinator is gone. The conflicting
	// writer below parks on the prepared transaction's X lock until the
	// in-doubt deadline resolves it by presumption.
	mustSoon(t, "writer blocked on in-doubt txn", func() error {
		_, err := a.db.NewSession().Exec("UPDATE acct SET v = v + 1 WHERE k = 3")
		return err
	})
	if got := a.acct(t, 3); got != 101 {
		t.Errorf("v = %d, want 101 (prepared update undone by presumed abort, then +1)", got)
	}
	if st, err := a.sess.TxnCtl(rpc.TxnStatus, gid, time.Second); err != nil || st != rpc.TxnStateAborted {
		t.Errorf("status: %s, %v, want aborted", st, err)
	}
	if _, err := a.sess.TxnCtl(rpc.TxnCommit, gid, time.Second); err == nil {
		t.Error("commit after presumed abort must be refused, got nil")
	}
	if _, _, _, inDoubt := a.part.Stats(); inDoubt != 1 {
		t.Errorf("participant inDoubt = %d, want 1", inDoubt)
	}
}

// TestTwoPCRemoteParticipantKilledBetweenPrepareAndCommit is the
// fault-injection acceptance case: both participants prepare, the
// decision is recorded, one participant's connection dies before its
// commit frame arrives. Its in-doubt deadline re-queries the
// coordinator's decision log and commits late — both shards end
// consistent, nothing lost, nothing double-applied.
func TestTwoPCRemoteParticipantKilledBetweenPrepareAndCommit(t *testing.T) {
	co := NewCoordinator(2 * time.Second)
	a := newTwopcShard(t, 5*time.Second, co.Outcome)
	b := newTwopcShard(t, 200*time.Millisecond, co.Outcome)
	a.openBranch(t, 4, -25)
	b.openBranch(t, 4, +25)

	gid := co.NewGID()
	// Phase 1 by hand so the kill lands exactly between the phases.
	for i, sh := range []*twopcShard{a, b} {
		if st, err := sh.sess.TxnCtl(rpc.TxnPrepare, gid, time.Second); err != nil || st != rpc.TxnStatePrepared {
			t.Fatalf("prepare on %d: %s, %v", i, st, err)
		}
	}
	co.Decide(gid, true) // the commit point
	if st, err := a.sess.TxnCtl(rpc.TxnCommit, gid, time.Second); err != nil || st != rpc.TxnStateCommitted {
		t.Fatalf("commit on a: %s, %v", st, err)
	}
	// Kill b's connection with its commit frame undelivered. The
	// server-side teardown rolls back open sessions — but the prepared
	// transaction is detached from its session, so it survives the
	// teardown still holding its locks.
	_ = b.cli.Close()

	mustSoon(t, "b recovers the commit via re-query", func() error {
		rs, err := b.db.NewSession().Query("SELECT v FROM acct WHERE k = 4")
		if err != nil {
			return err
		}
		if got := rs.Rows[0][0].I; got != 125 {
			return fmt.Errorf("shard b: v = %d, want 125 (recovered commit)", got)
		}
		return nil
	})
	if got := a.acct(t, 4); got != 75 {
		t.Errorf("shard a: v = %d, want 75", got)
	}
	if _, commits, _, inDoubt := b.part.Stats(); commits != 1 || inDoubt != 1 {
		t.Errorf("b stats: commits=%d inDoubt=%d, want 1, 1", commits, inDoubt)
	}
}

// TestTwoPCDeadShardPoisonedAtPrepare: a shard that is already dead
// when prepare is sent is classified as ErrPoolPoisoned (the pool's
// own dead-connection signal), the transaction aborts, and the live
// shard's branch is undone.
func TestTwoPCDeadShardPoisonedAtPrepare(t *testing.T) {
	co := NewCoordinator(2 * time.Second)
	a := newTwopcShard(t, 5*time.Second, co.Outcome)
	b := newTwopcShard(t, 5*time.Second, co.Outcome)
	a.openBranch(t, 1, -5)
	b.openBranch(t, 1, +5)
	_ = b.cli.Close() // shard b dies before phase 1

	gid := co.NewGID()
	err := co.Commit(gid, a.sess, b.sess)
	if !errors.Is(err, ErrTxnAborted) {
		t.Fatalf("Commit = %v, want ErrTxnAborted", err)
	}
	if !errors.Is(err, rpc.ErrPoolPoisoned) {
		t.Errorf("Commit error %v should match ErrPoolPoisoned (dead shard)", err)
	}
	mustSoon(t, "read after dead-shard abort", func() error {
		if got := a.acct(t, 1); got != 100 {
			return fmt.Errorf("shard a: v = %d, want 100", got)
		}
		return nil
	})
}
