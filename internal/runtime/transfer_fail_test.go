package runtime

// Regression tests for the transfer-failure lock-leak family: a
// control transfer that dies mid-entry must roll back the APP-side
// transaction (any error, not just ErrOverloaded), and corrupt
// version-1 stacks must hand partially-decoded frames back to the
// session frame pool.

import (
	"errors"
	"testing"
	"time"

	"pyxis/internal/dbapi"
	"pyxis/internal/pdg"
	"pyxis/internal/rpc"
	"pyxis/internal/source"
	"pyxis/internal/sqldb"
	"pyxis/internal/val"
)

// splitTouchSrc opens a transaction and X-locks a row on the APP side, then
// calls a method whose body tests place on the DB — forcing a control
// transfer with the transaction open. poke's argument is the update's
// affected-row count, so the partitioner cannot hoist the call above
// the update: the row's X lock is provably held when the transfer
// leaves the APP side.
const splitTouchSrc = `
class Bank {
    Bank() {}

    entry int touch(int k) {
        db.begin();
        int n = db.update("UPDATE acct SET v = v + 1 WHERE k = ?", k);
        int r = poke(n);
        db.commit();
        return r;
    }

    int poke(int k) {
        return k + 7;
    }
}
`

// deadWire is a control-transfer transport whose connection is gone:
// every call fails with a plain (non-ErrOverloaded) transport error.
type deadWire struct{}

func (deadWire) Call([]byte) ([]byte, error) {
	return nil, errors.New("rpc: mux connection lost: io: read/write on closed pipe")
}
func (deadWire) Close() error { return nil }

func bankProgClient(t *testing.T, db *sqldb.DB, remote rpc.Transport) *Client {
	t.Helper()
	compiled := compileWith(t, splitTouchSrc, func(g *pdg.Graph, place pdg.Placement) {
		m := g.Prog.Method("Bank", "poke")
		source.WalkMethodStmts(m, func(s source.Stmt) bool {
			place[s.ID()] = pdg.DB
			return true
		})
		place[m.EntryID] = pdg.DB
	})
	s := db.NewSession()
	if _, err := s.Exec("CREATE TABLE acct (k INT PRIMARY KEY, v INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("INSERT INTO acct VALUES (1, 0)"); err != nil {
		t.Fatal(err)
	}
	appPeer := NewPeer(compiled, pdg.App, nil)
	return NewClient(appPeer.NewSession(dbapi.NewLocal(db)), remote)
}

// TestTransferRemoteFailureRollsBackTxn kills the control wire
// mid-entry — after db.begin() and the row-locking update ran on APP,
// before the DB-placed block could execute — and asserts the
// transaction is rolled back: a second session must be able to lock
// the same row immediately instead of parking on a leaked X lock until
// the connection dies.
func TestTransferRemoteFailureRollsBackTxn(t *testing.T) {
	db := sqldb.Open()
	c := bankProgClient(t, db, deadWire{})
	oid, err := c.NewObject("Bank") // ctor is all-APP: no transfer
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.CallEntry("Bank.touch", oid, val.IntV(1))
	if err == nil {
		t.Fatal("entry over a dead control wire should fail")
	}
	if errors.Is(err, rpc.ErrOverloaded) {
		t.Fatalf("wire death misclassified as overload: %v", err)
	}

	done := make(chan error, 1)
	go func() {
		_, err := db.NewSession().Exec("UPDATE acct SET v = v + 10 WHERE k = 1")
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("second session: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("second session blocked: transfer failure leaked the APP-side transaction's row locks")
	}
	rs, err := db.NewSession().Query("SELECT v FROM acct WHERE k = 1")
	if err != nil {
		t.Fatal(err)
	}
	if got := rs.Rows[0][0].I; got != 10 {
		t.Errorf("v = %d, want 10 (failed entry's +1 rolled back, second session's +10 applied)", got)
	}
	// The session is clean for a retry: no "already in a transaction".
	if c.Sess.DB.(*dbapi.Local).Sess.InTxn() {
		t.Error("APP-side session still in a transaction after failed entry")
	}
}

// TestTransferRemoteCorruptStackFreesFrames feeds decodeStack
// truncated and corrupt version-1 payloads and requires the session
// frame pool to come back to its starting size every time — an error
// path that keeps a pool frame shrinks the pool for the session's
// remaining lifetime.
func TestTransferRemoteCorruptStackFreesFrames(t *testing.T) {
	compiled := compileWith(t, calcSrc, nil)
	appPeer := NewPeer(compiled, pdg.App, nil)
	sn := appPeer.NewSession(dbapi.NewLocal(sqldb.Open()))
	m := compiled.Method("Calc.apply")
	if m == nil {
		t.Fatal("method Calc.apply missing")
	}

	// Encode a healthy three-frame stack, then recycle its frames so the
	// pool's steady-state size is observable.
	stack := make([]*Frame, 0, 3)
	for i := 0; i < 3; i++ {
		fr := sn.newFrame(m)
		fr.Cont = m.Entry
		stack = append(stack, fr)
	}
	var w rpc.Writer
	sn.encodeStack(&w, stack, m.Entry)
	sn.freeStack(stack)
	base := len(sn.framePool)
	if base == 0 {
		t.Fatal("frame pool empty after freeStack; test needs pooled frames to watch")
	}

	// Truncations at every offset: each decode must either fail cleanly
	// or produce a stack we free — the pool must end at base either way.
	for cut := 1; cut < len(w.Buf); cut++ {
		r := &rpc.Reader{Buf: w.Buf[:cut]}
		if st, err := sn.decodeStack(r); err == nil {
			sn.freeStack(st)
		}
		if got := len(sn.framePool); got != base {
			t.Fatalf("truncation at %d: frame pool %d, want %d (leaked or double-freed)", cut, got, base)
		}
	}

	// A stack whose second frame names an out-of-range method index.
	var bad rpc.Writer
	bad.Byte(1) // stackV1
	bad.Uvarint(2)
	bad.Uvarint(uint64(m.Idx))
	bad.Uvarint(0)
	bad.Uvarint(uint64(int64(m.Entry) + 1))
	for j := 0; j < (m.NSlots+7)/8; j++ {
		bad.Byte(0)
	}
	bad.Uvarint(1 << 20) // no such method index
	if _, err := sn.decodeStack(&rpc.Reader{Buf: bad.Buf}); err == nil {
		t.Fatal("decodeStack accepted an out-of-range method index")
	}
	if got := len(sn.framePool); got != base {
		t.Fatalf("bad method index: frame pool %d, want %d (first frame leaked)", got, base)
	}
}
