package runtime

import (
	"testing"
)

// feedSkew drives the advisor with a deterministic skewed trace:
// warehouse 1 is the hotspot, its range-mates are warm, everything
// else is cold.
func feedSkew(a *Advisor, hot int64, hotN, warmN, coldN int, warehouses int64) {
	for i := 0; i < hotN; i++ {
		a.Observe(hot)
	}
	for w := int64(1); w <= warehouses; w++ {
		if w == hot {
			continue
		}
		n := coldN
		if w <= warehouses/2 {
			n = warmN
		}
		for i := 0; i < n; i++ {
			a.Observe(w)
		}
	}
}

func TestAdvisorBalancedNoPlan(t *testing.T) {
	m := ShardMap{Shards: 2, Warehouses: 8}
	a := NewAdvisor(8)
	for w := int64(1); w <= 8; w++ {
		for i := 0; i < 100; i++ {
			a.Observe(w)
		}
	}
	if r, _ := a.Imbalance(m); r > 1.01 {
		t.Fatalf("uniform load reports imbalance %.2f", r)
	}
	plan, err := a.Plan(m)
	if err != nil {
		t.Fatal(err)
	}
	if plan != nil {
		t.Fatalf("balanced tier produced a plan: %v", plan)
	}
}

// TestAdvisorShedsHottestFirst: with shard 0 hot, the plan moves load
// from shard 0 to shard 1, sheds the hottest movable warehouses first,
// and lands the post-move imbalance under the 1.5 gate — all within
// the half-gap budget (it must not just swap the skew over).
func TestAdvisorShedsHottestFirst(t *testing.T) {
	m := ShardMap{Shards: 2, Warehouses: 8} // shard 0 owns 1..4
	a := NewAdvisor(8)
	feedSkew(a, 1, 1000, 380, 100, 8)

	before, loads := a.Imbalance(m)
	if before < 1.5 {
		t.Fatalf("test trace not skewed enough: imbalance %.2f (loads %v)", before, loads)
	}
	plan, err := a.Plan(m)
	if err != nil {
		t.Fatal(err)
	}
	if plan == nil {
		t.Fatal("skewed tier produced no plan")
	}
	if plan.From != 0 || plan.To != 1 {
		t.Fatalf("plan direction %d->%d, want 0->1", plan.From, plan.To)
	}
	for _, w := range plan.Warehouses {
		if m.Shard(w) != 0 {
			t.Fatalf("plan moves warehouse %d the donor does not own", w)
		}
	}
	budget := (loads[0] - loads[1]) / 2
	if plan.MovedLoad > budget+1e-9 {
		t.Fatalf("plan sheds %.0f, over the half-gap budget %.0f", plan.MovedLoad, budget)
	}
	// Simulate the move and re-measure: the gate the bench enforces.
	next := m
	for _, w := range plan.Warehouses {
		next = next.WithMove(w, w, plan.To)
	}
	after := ImbalanceRatio(a.ShardLoads(next))
	if after > 1.5 {
		t.Fatalf("post-plan imbalance %.2f > 1.5 (moved %v)", after, plan.Warehouses)
	}
	if after >= before {
		t.Fatalf("plan did not improve balance: %.2f -> %.2f", before, after)
	}
}

// TestAdvisorIndivisibleHotspot: when one warehouse carries more load
// than the budget allows and nothing else is worth moving, the advisor
// must answer "no move" rather than swap the hotspot to the other
// side.
func TestAdvisorIndivisibleHotspot(t *testing.T) {
	m := ShardMap{Shards: 2, Warehouses: 4} // shard 0 owns 1..2
	a := NewAdvisor(4)
	for i := 0; i < 1000; i++ {
		a.Observe(1)
	}
	// Everything else dead cold: the only candidate exceeds the budget
	// (half the gap = 500 < 1000).
	plan, err := a.Plan(m)
	if err != nil {
		t.Fatal(err)
	}
	if plan != nil && plan.MovedLoad > 500+1e-9 {
		t.Fatalf("advisor moved the indivisible hotspot: %v", plan)
	}
}

// TestAdvisorCoAccessBias: two warehouses that always appear in the
// same transaction should move together (or stay together) when the
// solver can afford it.
func TestAdvisorCoAccessBias(t *testing.T) {
	m := ShardMap{Shards: 2, Warehouses: 8}
	a := NewAdvisor(8)
	// Warehouses 3 and 4 are moderately hot and always co-accessed;
	// 1 is hot alone.
	for i := 0; i < 600; i++ {
		a.Observe(1)
	}
	for i := 0; i < 400; i++ {
		a.Observe(3, 4)
	}
	for w := int64(5); w <= 8; w++ {
		for i := 0; i < 50; i++ {
			a.Observe(w)
		}
	}
	plan, err := a.Plan(m)
	if err != nil {
		t.Fatal(err)
	}
	if plan == nil {
		t.Fatal("no plan for skewed co-access trace")
	}
	moved := map[int64]bool{}
	for _, w := range plan.Warehouses {
		moved[w] = true
	}
	if moved[3] != moved[4] {
		t.Fatalf("co-accessed pair split across shards: moved=%v", plan.Warehouses)
	}
}

func TestMigrationPlanRuns(t *testing.T) {
	p := &MigrationPlan{Warehouses: []int64{1, 2, 3, 5, 7, 8}}
	runs := p.Runs()
	want := [][2]int64{{1, 3}, {5, 5}, {7, 8}}
	if len(runs) != len(want) {
		t.Fatalf("runs %v, want %v", runs, want)
	}
	for i := range want {
		if runs[i] != want[i] {
			t.Fatalf("runs %v, want %v", runs, want)
		}
	}
	if got := (&MigrationPlan{}).Runs(); got != nil {
		t.Fatalf("empty plan runs %v, want nil", got)
	}
}

func TestAdvisorResetClearsWindow(t *testing.T) {
	a := NewAdvisor(4)
	a.Observe(1, 2)
	a.Observe(1)
	if a.Count(1) != 2 || a.Count(2) != 1 {
		t.Fatalf("counts %d/%d, want 2/1", a.Count(1), a.Count(2))
	}
	a.Reset()
	if a.Count(1) != 0 || a.Count(2) != 0 {
		t.Fatal("reset did not clear counts")
	}
	if r := ImbalanceRatio(a.ShardLoads(ShardMap{Shards: 2, Warehouses: 4})); r != 1 {
		t.Fatalf("empty window imbalance %.2f, want 1", r)
	}
}
