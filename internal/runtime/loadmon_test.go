package runtime

import (
	"testing"
	"time"

	"pyxis/internal/rpc"
	"pyxis/internal/sqldb"
)

// TestLoadMonitorDynamicSignal exercises the blended saturation
// sample: component normalization, the external-load lever benchmarks
// use to force a ramp, the 100% clamp, and the windowed lock-wait
// rate derivative.
func TestLoadMonitorDynamicSignal(t *testing.T) {
	db := sqldb.Open()
	m := NewLoadMonitor(db)

	rep, ok := m.Sample(0)
	if !ok {
		t.Fatal("monitor withheld its sample")
	}
	if rep.Load < 0 || rep.Load > 100 {
		t.Errorf("idle load out of range: %+v", rep)
	}
	if rep.QueueDepth != 0 || rep.LockWaitRate != 0 {
		t.Errorf("idle sample carries phantom contention: %+v", rep)
	}

	// A deep session queue must saturate the blend on its own.
	rep, _ = m.Sample(rpc.SessionQueueDepth)
	if rep.QueueDepth != rpc.SessionQueueDepth || rep.Load < 100 {
		t.Errorf("full queue should read saturated: %+v", rep)
	}

	// External (forced) load adds on top and clamps at 100.
	m.SetExternal(95)
	if m.External() != 95 {
		t.Fatalf("external = %v, want 95", m.External())
	}
	rep, _ = m.Sample(0)
	if rep.Load < 95 || rep.Load > 100 {
		t.Errorf("forced load not reflected: %+v", rep)
	}
	m.SetExternal(0)

	// Lock waits raise the contention component via the windowed rate.
	s := db.NewSession()
	if _, err := s.Exec("CREATE TABLE hot (id INT PRIMARY KEY, v INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("INSERT INTO hot VALUES (1, 0)"); err != nil {
		t.Fatal(err)
	}
	blocker := db.NewSession()
	if err := blocker.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := blocker.Exec("UPDATE hot SET v = 1 WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	waiterDone := make(chan error, 1)
	go func() {
		w := db.NewSession()
		_, err := w.Exec("UPDATE hot SET v = 2 WHERE id = 1")
		waiterDone <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if w, _ := db.LockWaits(); w > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("lock wait never registered")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(rateWindow + 10*time.Millisecond)
	rep, _ = m.Sample(0)
	if err := blocker.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-waiterDone; err != nil {
		t.Fatalf("waiter: %v", err)
	}
	if rep.LockWaitRate <= 0 {
		t.Errorf("lock-wait rate stayed zero across a blocked writer: %+v", rep)
	}
}

// TestLoadMonitorIdleThenBurstRate is the idle-window regression: the
// rate refresh is traffic-driven, so after an idle stretch the first
// window used to span the whole idle period, averaging a post-idle
// wait burst toward zero exactly when the switcher needed to react.
// The window must clamp to maxRateWindow. (Simulated by backdating the
// monitor's last sample: lastWaits is set 200 below the counter so the
// next refresh sees a 200-wait burst "arriving" after 10 idle
// seconds.)
func TestLoadMonitorIdleThenBurstRate(t *testing.T) {
	db := sqldb.Open()
	m := NewLoadMonitor(db)

	const burst = 200
	waits, _ := db.LockWaits()
	m.mu.Lock()
	m.lastAt = time.Now().Add(-10 * time.Second)
	m.lastWaits = waits - burst
	m.mu.Unlock()
	m.nextRefresh.Store(0) // force a refresh on the next sample

	rate := m.lockWaitRate()
	// Old code: 200 waits / 10 s = 20/s. Clamped: 200 / maxRateWindow
	// = 1000/s. Anything near the clamped figure proves the idle
	// stretch no longer dilutes the burst.
	want := float64(burst) / maxRateWindow.Seconds()
	if rate < want/2 {
		t.Errorf("post-idle burst rate = %.0f waits/s, want ~%.0f (idle stretch diluted the window)", rate, want)
	}

	// A counter reset (fresh DB behind the monitor) must clamp to rate
	// 0, not go negative and drag the blend down.
	m.mu.Lock()
	m.lastAt = time.Now().Add(-time.Second)
	m.lastWaits = waits + 5000
	m.mu.Unlock()
	m.nextRefresh.Store(0)
	if rate := m.lockWaitRate(); rate != 0 {
		t.Errorf("counter reset produced rate %.0f, want 0", rate)
	}
}
