package runtime

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"

	"pyxis/internal/pdg"
	"pyxis/internal/source"
	"pyxis/internal/sqldb"
	"pyxis/internal/val"
)

// bankSrc is a multi-statement explicit transaction whose two row
// locks are taken in caller-chosen order — concurrent sessions
// transferring in opposite directions produce genuine lock waits and
// (occasionally) deadlocks inside the shared engine.
const bankSrc = `
class Bank {
    int id;

    Bank(int id) {
        this.id = id;
    }

    entry double transfer(int from, int to, double amt) {
        db.begin();
        db.update("UPDATE acct SET bal = bal - ? WHERE id = ?", amt, from);
        db.update("UPDATE acct SET bal = bal + ? WHERE id = ?", amt, to);
        table t = db.query("SELECT bal FROM acct WHERE id = ?", to);
        db.commit();
        return t.getDouble(0, 0);
    }
}
`

// TestConcurrentConflictingTransactions drives concurrent sessions
// whose DB-side transactions cross on two hot rows: money is
// conserved, deadlock victims surface to the client as retryable
// errors (the engine already rolled the victim back), and retries
// succeed — i.e. the sharded engine under the runtime behaves like a
// database, not a data race.
func TestConcurrentConflictingTransactions(t *testing.T) {
	compiled := compileWith(t, bankSrc, func(g *pdg.Graph, place pdg.Placement) {
		m := g.Prog.Method("Bank", "transfer")
		source.WalkMethodStmts(m, func(s source.Stmt) bool {
			place[s.ID()] = pdg.DB
			return true
		})
		place[m.EntryID] = pdg.DB
	})

	db := sqldb.Open()
	seed := db.NewSession()
	if _, err := seed.Exec("CREATE TABLE acct (id INT PRIMARY KEY, bal DOUBLE)"); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		if _, err := seed.Exec("INSERT INTO acct VALUES (?, 1000.0)", val.IntV(int64(i))); err != nil {
			t.Fatal(err)
		}
	}

	dep := NewDeployment(compiled, db, Options{})
	const sessions, transfers = 8, 30
	clients := make([]*Client, sessions)
	clients[0] = dep.Client
	for i := 1; i < sessions; i++ {
		clients[i] = dep.NewSession()
	}

	var deadlocks int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	errs := make([]error, sessions)
	for i, c := range clients {
		wg.Add(1)
		go func(i int, c *Client) {
			defer wg.Done()
			oid, err := c.NewObject("Bank", val.IntV(int64(i)))
			if err != nil {
				errs[i] = err
				return
			}
			// Even sessions transfer 1->2, odd sessions 2->1: the lock
			// orders cross deliberately.
			from, to := int64(1), int64(2)
			if i%2 == 1 {
				from, to = to, from
			}
			for k := 0; k < transfers; k++ {
				// Every deadlock abort means the surviving transaction
				// progressed, so retries converge; the bound only guards
				// against a livelocked engine (which would be the bug).
				for attempt := 0; ; attempt++ {
					_, err := c.CallEntry("Bank.transfer", oid, val.IntV(from), val.IntV(to), val.DoubleV(1))
					if err == nil {
						break
					}
					if strings.Contains(err.Error(), "deadlock") && attempt < 1000 {
						mu.Lock()
						deadlocks++
						mu.Unlock()
						continue
					}
					errs[i] = fmt.Errorf("session %d transfer %d: %w", i, k, err)
					return
				}
			}
		}(i, c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	rs, err := seed.Query("SELECT SUM(bal) FROM acct")
	if err != nil {
		t.Fatal(err)
	}
	if got := rs.Rows[0][0].AsFloat(); got != 4000 {
		t.Errorf("total balance %v, want 4000 (money created or destroyed under contention)", got)
	}
	waits, engineDeadlocks := db.LockWaits()
	t.Logf("lock waits=%d engine deadlocks=%d client-visible deadlock retries=%d", waits, engineDeadlocks, deadlocks)
	if deadlocks > 0 && engineDeadlocks == 0 {
		t.Error("client saw deadlock errors the engine never counted")
	}
	// The crossing transfers must actually have contended; with the old
	// global engine mutex this held too, but with sharded latches it is
	// the row-lock manager alone that provides it. On a single
	// schedulable CPU a DB-side transaction runs without a scheduling
	// point, so transactions never overlap and zero waits is the
	// expected (and correct) outcome — only assert overlap when the
	// hardware can produce it.
	if waits == 0 && runtime.GOMAXPROCS(0) > 1 {
		t.Error("crossing transfers produced no lock waits — statements did not overlap")
	}
}
