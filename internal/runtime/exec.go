package runtime

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"

	"pyxis/internal/compile"
	"pyxis/internal/dbapi"
	"pyxis/internal/interp"
	"pyxis/internal/pdg"
	"pyxis/internal/source"
	"pyxis/internal/sqldb"
	"pyxis/internal/val"
)

// Env observes and charges execution costs. The discrete-event
// simulator implements it to account virtual CPU and network time;
// real deployments leave it nil. A peer's Env is invoked from every
// session the peer hosts: when sessions run on concurrent goroutines
// the implementation must be safe for concurrent use (the simulator's
// is exempt — it schedules all virtual clients on one goroutine).
type Env interface {
	// BlockExecuted is called after each block with its instruction count.
	BlockExecuted(side pdg.Loc, instrs int)
	// DBCall is called before each database operation issued on side.
	DBCall(side pdg.Loc)
	// Sha1 is called per sys.sha1 invocation (CPU-intensive work unit).
	Sha1(side pdg.Loc)
	// TransferSend is called when a control-transfer message of the
	// given size leaves the peer.
	TransferSend(from pdg.Loc, bytes int)
}

// Metrics counts a peer's activity, aggregated across every session it
// hosts. All counters are atomic: sessions update them concurrently.
type Metrics struct {
	Transfers atomic.Int64
	BytesSent atomic.Int64
	BytesRecv atomic.Int64
	DBCalls   atomic.Int64
	Blocks    atomic.Int64
	Instrs    atomic.Int64
}

// MetricsSnapshot is a plain copy of Metrics at one instant.
type MetricsSnapshot struct {
	Transfers, BytesSent, BytesRecv, DBCalls, Blocks, Instrs int64
}

// Snapshot reads every counter.
func (m *Metrics) Snapshot() MetricsSnapshot {
	return MetricsSnapshot{
		Transfers: m.Transfers.Load(),
		BytesSent: m.BytesSent.Load(),
		BytesRecv: m.BytesRecv.Load(),
		DBCalls:   m.DBCalls.Load(),
		Blocks:    m.Blocks.Load(),
		Instrs:    m.Instrs.Load(),
	}
}

// Peer is one side of a partitioned deployment: the compiled program
// and the side-wide execution environment, shared by every session the
// side hosts. Per-session state (heap, frame stack, database
// connection, pending sync) lives in Session; a Peer plus N Sessions
// serves N concurrent logical threads of control over one program.
type Peer struct {
	Prog *compile.Program
	Side pdg.Loc
	// Out receives sys.print output from every session; writes are
	// serialized by the peer, so any io.Writer is safe.
	Out io.Writer
	Env Env
	// Legacy pins the peer to the seed's hot path: version-0 stack
	// transfers (full slots, qname strings), string-SQL database calls,
	// and a fresh allocation per activation frame. Both peers of a
	// deployment must agree. The interp-vs-vm benchmark runs a Legacy
	// deployment as its baseline.
	Legacy bool

	Metrics Metrics

	outMu sync.Mutex
}

// NewPeer creates the shared engine for one side.
func NewPeer(prog *compile.Program, side pdg.Loc, out io.Writer) *Peer {
	if out == nil {
		out = io.Discard
	}
	return &Peer{Prog: prog, Side: side, Out: out}
}

// Session is one logical client's state on a peer: its half of the
// distributed heap, its database connection (embedded on the DB side,
// wire client on the APP side), and the heap synchronization pending
// for its next control transfer. A Session preserves the paper's
// single logical thread of control — it must not be used from more
// than one goroutine at a time — but distinct Sessions on the same
// Peer run fully concurrently.
type Session struct {
	Peer *Peer
	DB   dbapi.Conn
	Heap *Heap

	// prep is DB with its prepared-statement surface exposed, when the
	// connection offers one and the peer is not Legacy. Database ops
	// whose instruction carries a program-interned statement id go
	// through it.
	prep dbapi.PreparedConn
	// framePool recycles activation records (capped at framePoolCap);
	// see newFrame/freeFrame.
	framePool []*Frame
	// argbuf is the database-call argument scratch; the engine consumes
	// arguments by value during the (synchronous) call, so one slice per
	// session suffices.
	argbuf []val.Value

	pending []pendingSync
	pendSet map[pendKey]bool
}

// NewSession creates a session on p using the given database
// connection (which the session owns: one connection = one
// transaction context).
func (p *Peer) NewSession(db dbapi.Conn) *Session {
	sn := &Session{Peer: p, DB: db, Heap: NewHeap(p.Side), pendSet: map[pendKey]bool{}}
	if !p.Legacy {
		if pc, ok := db.(dbapi.PreparedConn); ok {
			sn.prep = pc
		}
	}
	return sn
}

type pendKey struct {
	kind syncKind
	oid  val.OID
	part pdg.Loc
}

func (sn *Session) addPending(ps pendingSync) {
	k := pendKey{ps.kind, ps.oid, ps.part}
	if sn.pendSet[k] {
		return
	}
	sn.pendSet[k] = true
	sn.pending = append(sn.pending, ps)
}

func (sn *Session) takePending() []pendingSync {
	out := sn.pending
	sn.pending = nil
	sn.pendSet = map[pendKey]bool{}
	return out
}

// Close releases the session's database connection.
func (sn *Session) Close() error {
	if sn.DB == nil {
		return nil
	}
	return sn.DB.Close()
}

// Frame is one activation record. RetSlot/Cont say where the caller
// resumes when this frame returns.
type Frame struct {
	Method  *compile.MethodInfo
	Slots   []val.Value
	RetSlot int
	Cont    compile.BlockID
}

// framePoolCap bounds the per-session free list of activation records.
const framePoolCap = 64

// newFrame returns a zeroed activation record for m, recycling from
// the session pool when possible. A Legacy peer always allocates
// fresh, so the interp-vs-vm benchmark prices the seed's allocation
// behaviour through it.
func (sn *Session) newFrame(m *compile.MethodInfo) *Frame {
	if n := len(sn.framePool); n > 0 && !sn.Peer.Legacy {
		fr := sn.framePool[n-1]
		sn.framePool[n-1] = nil
		sn.framePool = sn.framePool[:n-1]
		fr.Method = m
		fr.RetSlot = 0
		fr.Cont = compile.NoBlock
		if cap(fr.Slots) >= m.NSlots {
			fr.Slots = fr.Slots[:m.NSlots]
			clear(fr.Slots)
		} else {
			fr.Slots = make([]val.Value, m.NSlots)
		}
		return fr
	}
	return &Frame{Method: m, Slots: make([]val.Value, m.NSlots), Cont: compile.NoBlock}
}

// freeFrame returns fr to the pool. Callers must hold no live
// reference: a frame is freed only after its method returned or after
// the frame was fully serialized onto the wire.
func (sn *Session) freeFrame(fr *Frame) {
	if sn.Peer.Legacy || len(sn.framePool) >= framePoolCap {
		return
	}
	fr.Method = nil
	sn.framePool = append(sn.framePool, fr)
}

// dbArgs returns an n-element argument slice — the session scratch,
// or a fresh allocation on Legacy peers (which price the seed's
// allocation behaviour).
func (sn *Session) dbArgs(n int) []val.Value {
	if sn.Peer.Legacy {
		return make([]val.Value, n)
	}
	if cap(sn.argbuf) < n {
		sn.argbuf = make([]val.Value, n)
	}
	return sn.argbuf[:n]
}

// freeStack frees every frame of a serialized stack.
func (sn *Session) freeStack(stack []*Frame) {
	for _, fr := range stack {
		sn.freeFrame(fr)
	}
}

// RunError is a runtime failure inside partitioned code.
type RunError struct{ Msg string }

func (e *RunError) Error() string { return "runtime: " + e.Msg }

func runErr(format string, args ...any) error {
	return &RunError{Msg: fmt.Sprintf(format, args...)}
}

// Run executes blocks starting at b until control leaves this side
// (done=false, next=remote block) or the bottom frame returns
// (done=true with the return value).
func (sn *Session) Run(b compile.BlockID, stack []*Frame) (next compile.BlockID, done bool, ret val.Value, outStack []*Frame, err error) {
	p := sn.Peer
	// Counters batch into the shared atomic metrics once per Run: the
	// block loop is the interpreter's hot path and per-block atomic
	// traffic measurably slows single-session latency.
	var blocks, instrs int64
	defer func() {
		if blocks > 0 {
			p.Metrics.Blocks.Add(blocks)
			p.Metrics.Instrs.Add(instrs)
		}
	}()
	for {
		blk := p.Prog.Block(b)
		if blk.Loc != p.Side {
			return b, false, val.Value{}, stack, nil
		}
		fr := stack[len(stack)-1]
		for i := range blk.Code {
			if err := sn.exec(&blk.Code[i], fr); err != nil {
				return 0, false, val.Value{}, stack, err
			}
		}
		blocks++
		instrs += int64(len(blk.Code))
		if p.Env != nil {
			p.Env.BlockExecuted(p.Side, len(blk.Code))
		}
		switch blk.Term.Kind {
		case compile.TGoto:
			b = blk.Term.Target
		case compile.TIf:
			if fr.Slots[blk.Term.Cond].AsBool() {
				b = blk.Term.Then
			} else {
				b = blk.Term.Else
			}
		case compile.TCall:
			callee := blk.Term.Method
			nf := sn.newFrame(callee)
			nf.RetSlot = blk.Term.RetSlot
			nf.Cont = blk.Term.Cont
			for i, src := range blk.Term.Args {
				nf.Slots[i] = fr.Slots[src]
			}
			stack = append(stack, nf)
			b = callee.Entry
		case compile.TRet:
			var v val.Value
			if blk.Term.Val >= 0 {
				v = fr.Slots[blk.Term.Val]
			} else {
				v = fr.Method.Ret.Zero()
			}
			stack = stack[:len(stack)-1]
			if len(stack) == 0 {
				sn.freeFrame(fr)
				return 0, true, v, stack, nil
			}
			caller := stack[len(stack)-1]
			caller.Slots[fr.RetSlot] = v
			b = fr.Cont
			sn.freeFrame(fr)
		}
	}
}

func (sn *Session) exec(in *compile.Instr, fr *Frame) error {
	p := sn.Peer
	s := fr.Slots
	switch in.Op {
	case compile.OpConst:
		s[in.A] = in.Lit
	case compile.OpMove:
		s[in.A] = s[in.B]
	case compile.OpConv:
		s[in.A] = val.DoubleV(s[in.B].AsFloat())
	case compile.OpBin:
		v, err := binOp(source.BinOp(in.Sub), s[in.B], s[in.C])
		if err != nil {
			return err
		}
		s[in.A] = v
	case compile.OpUn:
		switch source.UnOp(in.Sub) {
		case source.OpNot:
			s[in.A] = val.BoolV(!s[in.B].AsBool())
		default:
			if s[in.B].K == val.Double {
				s[in.A] = val.DoubleV(-s[in.B].F)
			} else {
				s[in.A] = val.IntV(-s[in.B].I)
			}
		}
	case compile.OpNewObj:
		s[in.A] = val.ObjV(sn.Heap.NewObject(in.Class))
	case compile.OpNewArr:
		n := s[in.B].I
		if n < 0 {
			return runErr("negative array length %d", n)
		}
		s[in.A] = val.ArrV(sn.Heap.NewArray(int(n), in.Lit))
	case compile.OpGetField:
		o, err := sn.Heap.Object(s[in.B].OID(), in.Field.Class)
		if err != nil {
			return err
		}
		s[in.A] = o.Part(in.Field.Loc)[in.Field.PartIdx]
	case compile.OpSetField:
		o, err := sn.Heap.Object(s[in.A].OID(), in.Field.Class)
		if err != nil {
			return err
		}
		o.Part(in.Field.Loc)[in.Field.PartIdx] = s[in.B]
	case compile.OpGetIdx:
		a, err := sn.Heap.Array(s[in.B].OID())
		if err != nil {
			return err
		}
		i := s[in.C].I
		if i < 0 || int(i) >= len(a.Elems) {
			return runErr("array index %d out of range [0,%d)", i, len(a.Elems))
		}
		s[in.A] = a.Elems[i]
	case compile.OpSetIdx:
		a, err := sn.Heap.Array(s[in.A].OID())
		if err != nil {
			return err
		}
		i := s[in.B].I
		if i < 0 || int(i) >= len(a.Elems) {
			return runErr("array index %d out of range [0,%d)", i, len(a.Elems))
		}
		a.Elems[i] = s[in.C]
	case compile.OpLen:
		if s[in.B].K == val.Str {
			s[in.A] = val.IntV(int64(len(s[in.B].S)))
			break
		}
		a, err := sn.Heap.Array(s[in.B].OID())
		if err != nil {
			return err
		}
		s[in.A] = val.IntV(int64(len(a.Elems)))
	case compile.OpDBQuery:
		p.Metrics.DBCalls.Add(1)
		if p.Env != nil {
			p.Env.DBCall(p.Side)
		}
		args := sn.dbArgs(len(in.Args))
		for i, slot := range in.Args {
			args[i] = s[slot]
		}
		var rs *sqldb.ResultSet
		var err error
		if sn.prep != nil && int(in.SQLID) < len(p.Prog.SQLTable) && p.Prog.SQLTable[in.SQLID] == in.SQL {
			rs, err = sn.prep.QueryStmt(int(in.SQLID), in.SQL, args...)
		} else {
			rs, err = sn.DB.Query(in.SQL, args...)
		}
		if err != nil {
			return fmt.Errorf("db.query: %w", err)
		}
		s[in.A] = val.TableV(sn.Heap.NewTable(rs.Cols, rs.Rows))
	case compile.OpDBExec:
		p.Metrics.DBCalls.Add(1)
		if p.Env != nil {
			p.Env.DBCall(p.Side)
		}
		args := sn.dbArgs(len(in.Args))
		for i, slot := range in.Args {
			args[i] = s[slot]
		}
		var n int
		var err error
		if sn.prep != nil && int(in.SQLID) < len(p.Prog.SQLTable) && p.Prog.SQLTable[in.SQLID] == in.SQL {
			n, err = sn.prep.ExecStmt(int(in.SQLID), in.SQL, args...)
		} else {
			n, err = sn.DB.Exec(in.SQL, args...)
		}
		if err != nil {
			return fmt.Errorf("db.update: %w", err)
		}
		s[in.A] = val.IntV(int64(n))
	case compile.OpDBBegin, compile.OpDBCommit, compile.OpDBRollback:
		p.Metrics.DBCalls.Add(1)
		if p.Env != nil {
			p.Env.DBCall(p.Side)
		}
		var err error
		switch in.Op {
		case compile.OpDBBegin:
			err = sn.DB.Begin()
		case compile.OpDBCommit:
			err = sn.DB.Commit()
		default:
			err = sn.DB.Rollback()
		}
		if err != nil {
			return fmt.Errorf("db txn: %w", err)
		}
	case compile.OpPrint:
		parts := make([]string, len(in.Args))
		for i, slot := range in.Args {
			parts[i] = s[slot].String()
		}
		p.outMu.Lock()
		fmt.Fprintln(p.Out, strings.Join(parts, " "))
		p.outMu.Unlock()
	case compile.OpSha1:
		if p.Env != nil {
			p.Env.Sha1(p.Side)
		}
		s[in.A] = val.IntV(interp.Sha1Round(s[in.B].I))
	case compile.OpStr:
		s[in.A] = val.StrV(s[in.B].String())
	case compile.OpTblRows:
		t, err := sn.Heap.Table(s[in.B].OID())
		if err != nil {
			return err
		}
		s[in.A] = val.IntV(int64(len(t.Rows)))
	case compile.OpTblGet:
		t, err := sn.Heap.Table(s[in.B].OID())
		if err != nil {
			return err
		}
		r, c := int(s[in.C].I), int(s[in.Args[0]].I)
		if r < 0 || r >= len(t.Rows) {
			return runErr("table row %d out of range [0,%d)", r, len(t.Rows))
		}
		if c < 0 || c >= len(t.Rows[r]) {
			return runErr("table column %d out of range", c)
		}
		s[in.A] = interp.CoerceCell(t.Rows[r][c], source.Builtin(in.Sub))
	case compile.OpSendPart:
		oid := s[in.A].OID()
		if oid != 0 {
			sn.addPending(pendingSync{kind: syncObjPart, oid: oid, part: pdg.Loc(in.Sub)})
		}
	case compile.OpSendNative:
		v := s[in.A]
		switch v.K {
		case val.Arr:
			sn.addPending(pendingSync{kind: syncArray, oid: v.OID()})
		case val.Table:
			sn.addPending(pendingSync{kind: syncTable, oid: v.OID()})
		}
	default:
		return runErr("bad opcode %d", in.Op)
	}
	return nil
}

func binOp(op source.BinOp, l, r val.Value) (val.Value, error) {
	switch op {
	case source.OpEq, source.OpNe:
		eq := refEqual(l, r)
		if op == source.OpNe {
			eq = !eq
		}
		return val.BoolV(eq), nil
	case source.OpLt, source.OpLe, source.OpGt, source.OpGe:
		c := val.Compare(l, r)
		var b bool
		switch op {
		case source.OpLt:
			b = c < 0
		case source.OpLe:
			b = c <= 0
		case source.OpGt:
			b = c > 0
		default:
			b = c >= 0
		}
		return val.BoolV(b), nil
	case source.OpAnd:
		return val.BoolV(l.AsBool() && r.AsBool()), nil
	case source.OpOr:
		return val.BoolV(l.AsBool() || r.AsBool()), nil
	case source.OpAdd:
		if l.K == val.Str {
			return val.StrV(l.S + r.S), nil
		}
	case source.OpMod:
		if r.I == 0 {
			return val.Value{}, runErr("division by zero")
		}
		return val.IntV(l.I % r.I), nil
	}
	// Numeric + - * /.
	if l.K == val.Double || r.K == val.Double {
		lf, rf := l.AsFloat(), r.AsFloat()
		switch op {
		case source.OpAdd:
			return val.DoubleV(lf + rf), nil
		case source.OpSub:
			return val.DoubleV(lf - rf), nil
		case source.OpMul:
			return val.DoubleV(lf * rf), nil
		case source.OpDiv:
			if rf == 0 {
				return val.Value{}, runErr("division by zero")
			}
			return val.DoubleV(lf / rf), nil
		}
	}
	switch op {
	case source.OpAdd:
		return val.IntV(l.I + r.I), nil
	case source.OpSub:
		return val.IntV(l.I - r.I), nil
	case source.OpMul:
		return val.IntV(l.I * r.I), nil
	case source.OpDiv:
		if r.I == 0 {
			return val.Value{}, runErr("division by zero")
		}
		return val.IntV(l.I / r.I), nil
	}
	return val.Value{}, runErr("bad binary op %d", op)
}

func refEqual(l, r val.Value) bool {
	if l.IsRef() || r.IsRef() {
		if l.K == val.Null {
			return r.K == val.Null || r.I == 0
		}
		if r.K == val.Null {
			return l.I == 0
		}
		return l.K == r.K && l.I == r.I
	}
	return l.Equal(r)
}
