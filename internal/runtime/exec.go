package runtime

import (
	"fmt"
	"io"
	"strings"

	"pyxis/internal/compile"
	"pyxis/internal/dbapi"
	"pyxis/internal/interp"
	"pyxis/internal/pdg"
	"pyxis/internal/source"
	"pyxis/internal/val"
)

// Env observes and charges execution costs. The discrete-event
// simulator implements it to account virtual CPU and network time;
// real deployments leave it nil.
type Env interface {
	// BlockExecuted is called after each block with its instruction count.
	BlockExecuted(side pdg.Loc, instrs int)
	// DBCall is called before each database operation issued on side.
	DBCall(side pdg.Loc)
	// Sha1 is called per sys.sha1 invocation (CPU-intensive work unit).
	Sha1(side pdg.Loc)
	// TransferSend is called when a control-transfer message of the
	// given size leaves the peer.
	TransferSend(from pdg.Loc, bytes int)
}

// Metrics counts a peer's activity.
type Metrics struct {
	Transfers int64
	BytesSent int64
	BytesRecv int64
	DBCalls   int64
	Blocks    int64
	Instrs    int64
}

// Peer is one side of a partitioned deployment: the compiled program,
// this side's heap, a database connection (embedded on the DB side,
// wire client on the APP side), and pending heap synchronization.
type Peer struct {
	Prog *compile.Program
	Side pdg.Loc
	DB   dbapi.Conn
	Out  io.Writer
	Heap *Heap
	Env  Env

	Metrics Metrics

	pending []pendingSync
	pendSet map[pendKey]bool
}

type pendKey struct {
	kind syncKind
	oid  val.OID
	part pdg.Loc
}

// NewPeer creates a peer for one side.
func NewPeer(prog *compile.Program, side pdg.Loc, db dbapi.Conn, out io.Writer) *Peer {
	if out == nil {
		out = io.Discard
	}
	return &Peer{Prog: prog, Side: side, DB: db, Out: out, Heap: NewHeap(side), pendSet: map[pendKey]bool{}}
}

func (p *Peer) addPending(ps pendingSync) {
	k := pendKey{ps.kind, ps.oid, ps.part}
	if p.pendSet[k] {
		return
	}
	p.pendSet[k] = true
	p.pending = append(p.pending, ps)
}

func (p *Peer) takePending() []pendingSync {
	out := p.pending
	p.pending = nil
	p.pendSet = map[pendKey]bool{}
	return out
}

// Frame is one activation record. RetSlot/Cont say where the caller
// resumes when this frame returns.
type Frame struct {
	Method  *compile.MethodInfo
	Slots   []val.Value
	RetSlot int
	Cont    compile.BlockID
}

// RunError is a runtime failure inside partitioned code.
type RunError struct{ Msg string }

func (e *RunError) Error() string { return "runtime: " + e.Msg }

func runErr(format string, args ...any) error {
	return &RunError{Msg: fmt.Sprintf(format, args...)}
}

// Run executes blocks starting at b until control leaves this side
// (done=false, next=remote block) or the bottom frame returns
// (done=true with the return value).
func (p *Peer) Run(b compile.BlockID, stack []*Frame) (next compile.BlockID, done bool, ret val.Value, outStack []*Frame, err error) {
	for {
		blk := p.Prog.Block(b)
		if blk.Loc != p.Side {
			return b, false, val.Value{}, stack, nil
		}
		fr := stack[len(stack)-1]
		for i := range blk.Code {
			if err := p.exec(&blk.Code[i], fr); err != nil {
				return 0, false, val.Value{}, stack, err
			}
		}
		p.Metrics.Blocks++
		p.Metrics.Instrs += int64(len(blk.Code))
		if p.Env != nil {
			p.Env.BlockExecuted(p.Side, len(blk.Code))
		}
		switch blk.Term.Kind {
		case compile.TGoto:
			b = blk.Term.Target
		case compile.TIf:
			if fr.Slots[blk.Term.Cond].AsBool() {
				b = blk.Term.Then
			} else {
				b = blk.Term.Else
			}
		case compile.TCall:
			callee := blk.Term.Method
			nf := &Frame{
				Method:  callee,
				Slots:   make([]val.Value, callee.NSlots),
				RetSlot: blk.Term.RetSlot,
				Cont:    blk.Term.Cont,
			}
			for i, src := range blk.Term.Args {
				nf.Slots[i] = fr.Slots[src]
			}
			stack = append(stack, nf)
			b = callee.Entry
		case compile.TRet:
			var v val.Value
			if blk.Term.Val >= 0 {
				v = fr.Slots[blk.Term.Val]
			} else {
				v = fr.Method.Ret.Zero()
			}
			stack = stack[:len(stack)-1]
			if len(stack) == 0 {
				return 0, true, v, stack, nil
			}
			caller := stack[len(stack)-1]
			caller.Slots[fr.RetSlot] = v
			b = fr.Cont
		}
	}
}

func (p *Peer) exec(in *compile.Instr, fr *Frame) error {
	s := fr.Slots
	switch in.Op {
	case compile.OpConst:
		s[in.A] = in.Lit
	case compile.OpMove:
		s[in.A] = s[in.B]
	case compile.OpConv:
		s[in.A] = val.DoubleV(s[in.B].AsFloat())
	case compile.OpBin:
		v, err := binOp(source.BinOp(in.Sub), s[in.B], s[in.C])
		if err != nil {
			return err
		}
		s[in.A] = v
	case compile.OpUn:
		switch source.UnOp(in.Sub) {
		case source.OpNot:
			s[in.A] = val.BoolV(!s[in.B].AsBool())
		default:
			if s[in.B].K == val.Double {
				s[in.A] = val.DoubleV(-s[in.B].F)
			} else {
				s[in.A] = val.IntV(-s[in.B].I)
			}
		}
	case compile.OpNewObj:
		s[in.A] = val.ObjV(p.Heap.NewObject(in.Class))
	case compile.OpNewArr:
		n := s[in.B].I
		if n < 0 {
			return runErr("negative array length %d", n)
		}
		s[in.A] = val.ArrV(p.Heap.NewArray(int(n), in.Lit))
	case compile.OpGetField:
		o, err := p.Heap.Object(s[in.B].OID(), in.Field.Class)
		if err != nil {
			return err
		}
		s[in.A] = o.Part(in.Field.Loc)[in.Field.PartIdx]
	case compile.OpSetField:
		o, err := p.Heap.Object(s[in.A].OID(), in.Field.Class)
		if err != nil {
			return err
		}
		o.Part(in.Field.Loc)[in.Field.PartIdx] = s[in.B]
	case compile.OpGetIdx:
		a, err := p.Heap.Array(s[in.B].OID())
		if err != nil {
			return err
		}
		i := s[in.C].I
		if i < 0 || int(i) >= len(a.Elems) {
			return runErr("array index %d out of range [0,%d)", i, len(a.Elems))
		}
		s[in.A] = a.Elems[i]
	case compile.OpSetIdx:
		a, err := p.Heap.Array(s[in.A].OID())
		if err != nil {
			return err
		}
		i := s[in.B].I
		if i < 0 || int(i) >= len(a.Elems) {
			return runErr("array index %d out of range [0,%d)", i, len(a.Elems))
		}
		a.Elems[i] = s[in.C]
	case compile.OpLen:
		if s[in.B].K == val.Str {
			s[in.A] = val.IntV(int64(len(s[in.B].S)))
			break
		}
		a, err := p.Heap.Array(s[in.B].OID())
		if err != nil {
			return err
		}
		s[in.A] = val.IntV(int64(len(a.Elems)))
	case compile.OpDBQuery:
		p.Metrics.DBCalls++
		if p.Env != nil {
			p.Env.DBCall(p.Side)
		}
		args := make([]val.Value, len(in.Args))
		for i, slot := range in.Args {
			args[i] = s[slot]
		}
		rs, err := p.DB.Query(in.SQL, args...)
		if err != nil {
			return fmt.Errorf("db.query: %w", err)
		}
		s[in.A] = val.TableV(p.Heap.NewTable(rs.Cols, rs.Rows))
	case compile.OpDBExec:
		p.Metrics.DBCalls++
		if p.Env != nil {
			p.Env.DBCall(p.Side)
		}
		args := make([]val.Value, len(in.Args))
		for i, slot := range in.Args {
			args[i] = s[slot]
		}
		n, err := p.DB.Exec(in.SQL, args...)
		if err != nil {
			return fmt.Errorf("db.update: %w", err)
		}
		s[in.A] = val.IntV(int64(n))
	case compile.OpDBBegin, compile.OpDBCommit, compile.OpDBRollback:
		p.Metrics.DBCalls++
		if p.Env != nil {
			p.Env.DBCall(p.Side)
		}
		var err error
		switch in.Op {
		case compile.OpDBBegin:
			err = p.DB.Begin()
		case compile.OpDBCommit:
			err = p.DB.Commit()
		default:
			err = p.DB.Rollback()
		}
		if err != nil {
			return fmt.Errorf("db txn: %w", err)
		}
	case compile.OpPrint:
		parts := make([]string, len(in.Args))
		for i, slot := range in.Args {
			parts[i] = s[slot].String()
		}
		fmt.Fprintln(p.Out, strings.Join(parts, " "))
	case compile.OpSha1:
		if p.Env != nil {
			p.Env.Sha1(p.Side)
		}
		s[in.A] = val.IntV(interp.Sha1Round(s[in.B].I))
	case compile.OpStr:
		s[in.A] = val.StrV(s[in.B].String())
	case compile.OpTblRows:
		t, err := p.Heap.Table(s[in.B].OID())
		if err != nil {
			return err
		}
		s[in.A] = val.IntV(int64(len(t.Rows)))
	case compile.OpTblGet:
		t, err := p.Heap.Table(s[in.B].OID())
		if err != nil {
			return err
		}
		r, c := int(s[in.C].I), int(s[in.Args[0]].I)
		if r < 0 || r >= len(t.Rows) {
			return runErr("table row %d out of range [0,%d)", r, len(t.Rows))
		}
		if c < 0 || c >= len(t.Rows[r]) {
			return runErr("table column %d out of range", c)
		}
		s[in.A] = interp.CoerceCell(t.Rows[r][c], source.Builtin(in.Sub))
	case compile.OpSendPart:
		oid := s[in.A].OID()
		if oid != 0 {
			p.addPending(pendingSync{kind: syncObjPart, oid: oid, part: pdg.Loc(in.Sub)})
		}
	case compile.OpSendNative:
		v := s[in.A]
		switch v.K {
		case val.Arr:
			p.addPending(pendingSync{kind: syncArray, oid: v.OID()})
		case val.Table:
			p.addPending(pendingSync{kind: syncTable, oid: v.OID()})
		}
	default:
		return runErr("bad opcode %d", in.Op)
	}
	return nil
}

func binOp(op source.BinOp, l, r val.Value) (val.Value, error) {
	switch op {
	case source.OpEq, source.OpNe:
		eq := refEqual(l, r)
		if op == source.OpNe {
			eq = !eq
		}
		return val.BoolV(eq), nil
	case source.OpLt, source.OpLe, source.OpGt, source.OpGe:
		c := val.Compare(l, r)
		var b bool
		switch op {
		case source.OpLt:
			b = c < 0
		case source.OpLe:
			b = c <= 0
		case source.OpGt:
			b = c > 0
		default:
			b = c >= 0
		}
		return val.BoolV(b), nil
	case source.OpAnd:
		return val.BoolV(l.AsBool() && r.AsBool()), nil
	case source.OpOr:
		return val.BoolV(l.AsBool() || r.AsBool()), nil
	case source.OpAdd:
		if l.K == val.Str {
			return val.StrV(l.S + r.S), nil
		}
	case source.OpMod:
		if r.I == 0 {
			return val.Value{}, runErr("division by zero")
		}
		return val.IntV(l.I % r.I), nil
	}
	// Numeric + - * /.
	if l.K == val.Double || r.K == val.Double {
		lf, rf := l.AsFloat(), r.AsFloat()
		switch op {
		case source.OpAdd:
			return val.DoubleV(lf + rf), nil
		case source.OpSub:
			return val.DoubleV(lf - rf), nil
		case source.OpMul:
			return val.DoubleV(lf * rf), nil
		case source.OpDiv:
			if rf == 0 {
				return val.Value{}, runErr("division by zero")
			}
			return val.DoubleV(lf / rf), nil
		}
	}
	switch op {
	case source.OpAdd:
		return val.IntV(l.I + r.I), nil
	case source.OpSub:
		return val.IntV(l.I - r.I), nil
	case source.OpMul:
		return val.IntV(l.I * r.I), nil
	case source.OpDiv:
		if r.I == 0 {
			return val.Value{}, runErr("division by zero")
		}
		return val.IntV(l.I / r.I), nil
	}
	return val.Value{}, runErr("bad binary op %d", op)
}

func refEqual(l, r val.Value) bool {
	if l.IsRef() || r.IsRef() {
		if l.K == val.Null {
			return r.K == val.Null || r.I == 0
		}
		if r.K == val.Null {
			return l.I == 0
		}
		return l.K == r.K && l.I == r.I
	}
	return l.Equal(r)
}
