package runtime

import (
	"bytes"
	"strings"
	"testing"

	"pyxis/internal/analysis"
	"pyxis/internal/compile"
	"pyxis/internal/dbapi"
	"pyxis/internal/pdg"
	"pyxis/internal/profile"
	"pyxis/internal/pyxil"
	"pyxis/internal/rpc"
	"pyxis/internal/source"
	"pyxis/internal/sqldb"
	"pyxis/internal/val"
)

// compileAt compiles src with every statement/field forced to the
// given placement map override (nil = all APP except pinned).
func compileWith(t *testing.T, src string, assign func(g *pdg.Graph, place pdg.Placement)) *compile.Program {
	t.Helper()
	prog, err := source.Load(src)
	if err != nil {
		t.Fatal(err)
	}
	res := analysis.Run(prog)
	g := pdg.Build(res, profile.New(), pdg.Options{})
	place := pdg.Placement{}
	for id := range g.Nodes {
		place[id] = pdg.App
	}
	place[g.DBCodeID] = pdg.DB
	if assign != nil {
		assign(g, place)
	}
	px := pyxil.Generate(res, g, place, pyxil.Options{})
	compiled, err := compile.Compile(px)
	if err != nil {
		t.Fatal(err)
	}
	return compiled
}

const calcSrc = `
class Calc {
    int acc;
    int[] history;

    Calc() {
        acc = 0;
        history = new int[8];
    }

    entry int apply(int x, bool double_) {
        if (double_) {
            acc += x * 2;
        } else {
            acc += x;
        }
        history[x % 8] = acc;
        return acc;
    }

    entry int histAt(int i) {
        return history[i % 8];
    }

    entry string describe() {
        string s = "acc=" + sys.str(acc);
        sys.print(s);
        return s;
    }
}
`

func TestSingleSidedExecution(t *testing.T) {
	compiled := compileWith(t, calcSrc, nil)
	var out bytes.Buffer
	dep := NewDeployment(compiled, sqldb.Open(), Options{Out: &out})
	oid, err := dep.Client.NewObject("Calc")
	if err != nil {
		t.Fatal(err)
	}
	if v, err := dep.Client.CallEntry("Calc.apply", oid, val.IntV(5), val.BoolV(true)); err != nil || v.I != 10 {
		t.Fatalf("apply = %v, %v", v, err)
	}
	if v, err := dep.Client.CallEntry("Calc.apply", oid, val.IntV(1), val.BoolV(false)); err != nil || v.I != 11 {
		t.Fatalf("apply2 = %v, %v", v, err)
	}
	if v, err := dep.Client.CallEntry("Calc.histAt", oid, val.IntV(1)); err != nil || v.I != 11 {
		t.Fatalf("histAt = %v, %v", v, err)
	}
	if v, err := dep.Client.CallEntry("Calc.describe", oid); err != nil || v.S != "acc=11" {
		t.Fatalf("describe = %v, %v", v, err)
	}
	if !strings.Contains(out.String(), "acc=11") {
		t.Errorf("print output missing: %q", out.String())
	}
	ctl, _ := dep.WireStats()
	if ctl.Calls != 0 {
		t.Errorf("all-APP program made %d control transfers", ctl.Calls)
	}
}

// TestSplitFieldHeapSync places the `acc` field and the arithmetic on
// the DB while the entry prologue stays on APP, and verifies values
// stay consistent across many alternating calls (heap-consistency
// invariant, DESIGN.md #2).
func TestSplitFieldHeapSync(t *testing.T) {
	compiled := compileWith(t, calcSrc, func(g *pdg.Graph, place pdg.Placement) {
		prog := g.Prog
		// Field acc and the apply method bodies on DB.
		for id, f := range prog.Fields {
			if f.Name == "acc" {
				place[id] = pdg.DB
			}
		}
		m := prog.Method("Calc", "apply")
		source.WalkMethodStmts(m, func(s source.Stmt) bool {
			place[s.ID()] = pdg.DB
			return true
		})
		place[m.EntryID] = pdg.DB
	})
	dep := NewDeployment(compiled, sqldb.Open(), Options{})
	oid, err := dep.Client.NewObject("Calc")
	if err != nil {
		t.Fatal(err)
	}
	want := int64(0)
	for i := int64(1); i <= 20; i++ {
		dbl := i%3 == 0
		add := i
		if dbl {
			add = i * 2
		}
		want += add
		got, err := dep.Client.CallEntry("Calc.apply", oid, val.IntV(i), val.BoolV(dbl))
		if err != nil {
			t.Fatalf("apply(%d): %v", i, err)
		}
		if got.I != want {
			t.Fatalf("apply(%d) = %d, want %d", i, got.I, want)
		}
		// describe() runs on APP and reads acc: the DB-side writes must
		// have been synced across.
		desc, err := dep.Client.CallEntry("Calc.describe", oid)
		if err != nil {
			t.Fatalf("describe: %v", err)
		}
		if want := "acc=" + val.IntV(want).String(); desc.S != want {
			t.Fatalf("describe = %q, want %q", desc.S, want)
		}
	}
	ctl, _ := dep.WireStats()
	if ctl.Calls == 0 {
		t.Error("split placement should transfer control")
	}
}

// TestDistributedOverTCP runs the same split program across a real TCP
// control-transfer server (the cmd/pyxis-dbserver / pyxis-app wiring).
func TestDistributedOverTCP(t *testing.T) {
	compiled := compileWith(t, calcSrc, func(g *pdg.Graph, place pdg.Placement) {
		prog := g.Prog
		for id, f := range prog.Fields {
			if f.Name == "acc" {
				place[id] = pdg.DB
			}
		}
		m := prog.Method("Calc", "apply")
		source.WalkMethodStmts(m, func(s source.Stmt) bool {
			place[s.ID()] = pdg.DB
			return true
		})
		place[m.EntryID] = pdg.DB
	})
	db := sqldb.Open()

	dbSrv, err := rpc.NewServer("127.0.0.1:0", func() rpc.Handler { return dbapi.NewHandler(db) })
	if err != nil {
		t.Fatal(err)
	}
	defer dbSrv.Close()
	dbPeer := NewPeer(compiled, pdg.DB, nil)
	ctlSrv, err := rpc.NewServer("127.0.0.1:0", func() rpc.Handler {
		return Handler(dbPeer.NewSession(dbapi.NewLocal(db)))
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ctlSrv.Close()

	dbWire, err := rpc.Dial(dbSrv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer dbWire.Close()
	ctlWire, err := rpc.Dial(ctlSrv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer ctlWire.Close()

	appPeer := NewPeer(compiled, pdg.App, nil)
	client := NewClient(appPeer.NewSession(dbapi.NewClient(dbWire)), ctlWire)
	oid, err := client.NewObject("Calc")
	if err != nil {
		t.Fatal(err)
	}
	want := int64(0)
	for i := int64(1); i <= 10; i++ {
		want += i
		got, err := client.CallEntry("Calc.apply", oid, val.IntV(i), val.BoolV(false))
		if err != nil {
			t.Fatalf("apply over TCP: %v", err)
		}
		if got.I != want {
			t.Fatalf("apply = %d, want %d", got.I, want)
		}
	}
	if ctlWire.Stats().Calls == 0 {
		t.Error("expected TCP control transfers")
	}
}

func TestRuntimeErrors(t *testing.T) {
	compiled := compileWith(t, `
class E {
    int[] a;
    E() { }
    entry int idx(int i) {
        a = new int[3];
        return a[i];
    }
    entry int div(int x) {
        return 10 / x;
    }
}`, nil)
	dep := NewDeployment(compiled, sqldb.Open(), Options{})
	oid, err := dep.Client.NewObject("E")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dep.Client.CallEntry("E.idx", oid, val.IntV(7)); err == nil {
		t.Error("index out of range should error")
	}
	if _, err := dep.Client.CallEntry("E.div", oid, val.IntV(0)); err == nil {
		t.Error("division by zero should error")
	}
	if v, err := dep.Client.CallEntry("E.div", oid, val.IntV(2)); err != nil || v.I != 5 {
		t.Errorf("div(2) = %v, %v", v, err)
	}
	if _, err := dep.Client.CallEntry("E.missing", oid); err == nil {
		t.Error("unknown method should error")
	}
	if _, err := dep.Client.Call("E.nope", oid); err == nil {
		t.Error("unknown method should error")
	}
	if _, err := dep.Client.NewObject("Nope"); err == nil {
		t.Error("unknown class should error")
	}
}

func TestSwitcherEWMA(t *testing.T) {
	sw := NewSwitcher()
	if sw.UseLowBudget() {
		t.Error("fresh switcher should use high budget")
	}
	sw.Observe(10)
	if sw.UseLowBudget() {
		t.Error("low load should keep high budget")
	}
	// Sustained high load crosses the 40% threshold via EWMA.
	for i := 0; i < 5; i++ {
		sw.Observe(95)
	}
	if !sw.UseLowBudget() {
		t.Errorf("sustained load should switch (ewma=%v)", sw.Load())
	}
	// A single low sample must not flip back immediately (damping).
	sw.Observe(5)
	if sw.Load() < 10 {
		t.Errorf("EWMA dropped too fast: %v", sw.Load())
	}
	for i := 0; i < 10; i++ {
		sw.Observe(5)
	}
	if sw.UseLowBudget() {
		t.Error("sustained recovery should switch back")
	}

	// Exact EWMA math: L = a*L + (1-a)*S.
	s2 := &Switcher{Alpha: 0.5, Threshold: 40}
	s2.Observe(100) // first sample initializes
	if got := s2.Observe(0); got != 50 {
		t.Errorf("ewma = %v, want 50", got)
	}
}

func TestDynamicClientPickCounting(t *testing.T) {
	sw := NewSwitcher()
	d := &DynamicClient{High: &Client{}, Low: &Client{}, Switcher: sw}
	if d.Pick() != d.High {
		t.Error("should pick high initially")
	}
	for i := 0; i < 5; i++ {
		sw.Observe(99)
	}
	if d.Pick() != d.Low {
		t.Error("should pick low under load")
	}
	low, high := d.Picks()
	if low != 1 || high != 1 {
		t.Errorf("picks = %d,%d", low, high)
	}
}

func TestHeapLazyMaterialization(t *testing.T) {
	h := NewHeap(pdg.App)
	ci := &compile.ClassInfo{Name: "X", NumApp: 1, NumDB: 1,
		Fields: []*compile.FieldRef{}}
	oid := h.NewObject(ci)
	if oid%2 != 1 {
		t.Errorf("APP heap should allocate odd OIDs, got %d", oid)
	}
	hd := NewHeap(pdg.DB)
	if oid2 := hd.NewObject(ci); oid2%2 != 0 {
		t.Errorf("DB heap should allocate even OIDs, got %d", oid2)
	}
	// Unknown OID materializes lazily with the instruction's class.
	if _, err := hd.Object(oid, ci); err != nil {
		t.Fatalf("lazy materialization failed: %v", err)
	}
	if _, err := hd.Object(0, ci); err == nil {
		t.Error("null deref should error")
	}
	if _, err := hd.Array(12345); err == nil {
		t.Error("unknown array must not materialize (sendNative required)")
	}
}
