package runtime

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"pyxis/internal/analysis"
	"pyxis/internal/compile"
	"pyxis/internal/dbapi"
	"pyxis/internal/pdg"
	"pyxis/internal/profile"
	"pyxis/internal/pyxil"
	"pyxis/internal/rpc"
	"pyxis/internal/source"
	"pyxis/internal/sqldb"
	"pyxis/internal/val"
)

// compileAt compiles src with every statement/field forced to the
// given placement map override (nil = all APP except pinned).
func compileWith(t *testing.T, src string, assign func(g *pdg.Graph, place pdg.Placement)) *compile.Program {
	t.Helper()
	prog, err := source.Load(src)
	if err != nil {
		t.Fatal(err)
	}
	res := analysis.Run(prog)
	g := pdg.Build(res, profile.New(), pdg.Options{})
	place := pdg.Placement{}
	for id := range g.Nodes {
		place[id] = pdg.App
	}
	place[g.DBCodeID] = pdg.DB
	if assign != nil {
		assign(g, place)
	}
	px := pyxil.Generate(res, g, place, pyxil.Options{})
	compiled, err := compile.Compile(px)
	if err != nil {
		t.Fatal(err)
	}
	return compiled
}

const calcSrc = `
class Calc {
    int acc;
    int[] history;

    Calc() {
        acc = 0;
        history = new int[8];
    }

    entry int apply(int x, bool double_) {
        if (double_) {
            acc += x * 2;
        } else {
            acc += x;
        }
        history[x % 8] = acc;
        return acc;
    }

    entry int histAt(int i) {
        return history[i % 8];
    }

    entry string describe() {
        string s = "acc=" + sys.str(acc);
        sys.print(s);
        return s;
    }
}
`

func TestSingleSidedExecution(t *testing.T) {
	compiled := compileWith(t, calcSrc, nil)
	var out bytes.Buffer
	dep := NewDeployment(compiled, sqldb.Open(), Options{Out: &out})
	oid, err := dep.Client.NewObject("Calc")
	if err != nil {
		t.Fatal(err)
	}
	if v, err := dep.Client.CallEntry("Calc.apply", oid, val.IntV(5), val.BoolV(true)); err != nil || v.I != 10 {
		t.Fatalf("apply = %v, %v", v, err)
	}
	if v, err := dep.Client.CallEntry("Calc.apply", oid, val.IntV(1), val.BoolV(false)); err != nil || v.I != 11 {
		t.Fatalf("apply2 = %v, %v", v, err)
	}
	if v, err := dep.Client.CallEntry("Calc.histAt", oid, val.IntV(1)); err != nil || v.I != 11 {
		t.Fatalf("histAt = %v, %v", v, err)
	}
	if v, err := dep.Client.CallEntry("Calc.describe", oid); err != nil || v.S != "acc=11" {
		t.Fatalf("describe = %v, %v", v, err)
	}
	if !strings.Contains(out.String(), "acc=11") {
		t.Errorf("print output missing: %q", out.String())
	}
	ctl, _ := dep.WireStats()
	if ctl.Calls != 0 {
		t.Errorf("all-APP program made %d control transfers", ctl.Calls)
	}
}

// TestSplitFieldHeapSync places the `acc` field and the arithmetic on
// the DB while the entry prologue stays on APP, and verifies values
// stay consistent across many alternating calls (heap-consistency
// invariant, DESIGN.md #2).
func TestSplitFieldHeapSync(t *testing.T) {
	compiled := compileWith(t, calcSrc, func(g *pdg.Graph, place pdg.Placement) {
		prog := g.Prog
		// Field acc and the apply method bodies on DB.
		for id, f := range prog.Fields {
			if f.Name == "acc" {
				place[id] = pdg.DB
			}
		}
		m := prog.Method("Calc", "apply")
		source.WalkMethodStmts(m, func(s source.Stmt) bool {
			place[s.ID()] = pdg.DB
			return true
		})
		place[m.EntryID] = pdg.DB
	})
	dep := NewDeployment(compiled, sqldb.Open(), Options{})
	oid, err := dep.Client.NewObject("Calc")
	if err != nil {
		t.Fatal(err)
	}
	want := int64(0)
	for i := int64(1); i <= 20; i++ {
		dbl := i%3 == 0
		add := i
		if dbl {
			add = i * 2
		}
		want += add
		got, err := dep.Client.CallEntry("Calc.apply", oid, val.IntV(i), val.BoolV(dbl))
		if err != nil {
			t.Fatalf("apply(%d): %v", i, err)
		}
		if got.I != want {
			t.Fatalf("apply(%d) = %d, want %d", i, got.I, want)
		}
		// describe() runs on APP and reads acc: the DB-side writes must
		// have been synced across.
		desc, err := dep.Client.CallEntry("Calc.describe", oid)
		if err != nil {
			t.Fatalf("describe: %v", err)
		}
		if want := "acc=" + val.IntV(want).String(); desc.S != want {
			t.Fatalf("describe = %q, want %q", desc.S, want)
		}
	}
	ctl, _ := dep.WireStats()
	if ctl.Calls == 0 {
		t.Error("split placement should transfer control")
	}
}

// TestDistributedOverTCP runs the same split program across a real TCP
// control-transfer server (the cmd/pyxis-dbserver / pyxis-app wiring).
func TestDistributedOverTCP(t *testing.T) {
	compiled := compileWith(t, calcSrc, func(g *pdg.Graph, place pdg.Placement) {
		prog := g.Prog
		for id, f := range prog.Fields {
			if f.Name == "acc" {
				place[id] = pdg.DB
			}
		}
		m := prog.Method("Calc", "apply")
		source.WalkMethodStmts(m, func(s source.Stmt) bool {
			place[s.ID()] = pdg.DB
			return true
		})
		place[m.EntryID] = pdg.DB
	})
	db := sqldb.Open()

	dbSrv, err := rpc.NewServer("127.0.0.1:0", func() rpc.Handler { return dbapi.NewHandler(db) })
	if err != nil {
		t.Fatal(err)
	}
	defer dbSrv.Close()
	dbPeer := NewPeer(compiled, pdg.DB, nil)
	ctlSrv, err := rpc.NewServer("127.0.0.1:0", func() rpc.Handler {
		return Handler(dbPeer.NewSession(dbapi.NewLocal(db)))
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ctlSrv.Close()

	dbWire, err := rpc.Dial(dbSrv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer dbWire.Close()
	ctlWire, err := rpc.Dial(ctlSrv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer ctlWire.Close()

	appPeer := NewPeer(compiled, pdg.App, nil)
	client := NewClient(appPeer.NewSession(dbapi.NewClient(dbWire)), ctlWire)
	oid, err := client.NewObject("Calc")
	if err != nil {
		t.Fatal(err)
	}
	want := int64(0)
	for i := int64(1); i <= 10; i++ {
		want += i
		got, err := client.CallEntry("Calc.apply", oid, val.IntV(i), val.BoolV(false))
		if err != nil {
			t.Fatalf("apply over TCP: %v", err)
		}
		if got.I != want {
			t.Fatalf("apply = %d, want %d", got.I, want)
		}
	}
	if ctlWire.Stats().Calls == 0 {
		t.Error("expected TCP control transfers")
	}
}

func TestRuntimeErrors(t *testing.T) {
	compiled := compileWith(t, `
class E {
    int[] a;
    E() { }
    entry int idx(int i) {
        a = new int[3];
        return a[i];
    }
    entry int div(int x) {
        return 10 / x;
    }
}`, nil)
	dep := NewDeployment(compiled, sqldb.Open(), Options{})
	oid, err := dep.Client.NewObject("E")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dep.Client.CallEntry("E.idx", oid, val.IntV(7)); err == nil {
		t.Error("index out of range should error")
	}
	if _, err := dep.Client.CallEntry("E.div", oid, val.IntV(0)); err == nil {
		t.Error("division by zero should error")
	}
	if v, err := dep.Client.CallEntry("E.div", oid, val.IntV(2)); err != nil || v.I != 5 {
		t.Errorf("div(2) = %v, %v", v, err)
	}
	if _, err := dep.Client.CallEntry("E.missing", oid); err == nil {
		t.Error("unknown method should error")
	}
	if _, err := dep.Client.Call("E.nope", oid); err == nil {
		t.Error("unknown method should error")
	}
	if _, err := dep.Client.NewObject("Nope"); err == nil {
		t.Error("unknown class should error")
	}
}

func TestSwitcherEWMA(t *testing.T) {
	sw := NewSwitcher()
	if sw.UseLowBudget() {
		t.Error("fresh switcher should use high budget")
	}
	sw.Observe(10)
	if sw.UseLowBudget() {
		t.Error("low load should keep high budget")
	}
	// Sustained high load crosses the 40% threshold via EWMA.
	for i := 0; i < 5; i++ {
		sw.Observe(95)
	}
	if !sw.UseLowBudget() {
		t.Errorf("sustained load should switch (ewma=%v)", sw.Load())
	}
	// A single low sample must not flip back immediately (damping).
	sw.Observe(5)
	if sw.Load() < 10 {
		t.Errorf("EWMA dropped too fast: %v", sw.Load())
	}
	for i := 0; i < 10; i++ {
		sw.Observe(5)
	}
	if sw.UseLowBudget() {
		t.Error("sustained recovery should switch back")
	}

	// Exact EWMA math: L = a*L + (1-a)*S.
	s2 := &Switcher{Alpha: 0.5, Threshold: 40}
	s2.Observe(100) // first sample initializes
	if got := s2.Observe(0); got != 50 {
		t.Errorf("ewma = %v, want 50", got)
	}
}

func TestDynamicClientPickCounting(t *testing.T) {
	sw := NewSwitcher()
	d := &DynamicClient{High: &Client{}, Low: &Client{}, Switcher: sw}
	cl, doneHigh := d.Pick()
	if cl != d.High {
		t.Error("should pick high initially")
	}
	if low, high := d.Picks(); low != 0 || high != 0 {
		// Regression: the old implementation counted at pick time, so
		// in-flight, shed and failed calls inflated the mix.
		t.Errorf("in-flight call already counted: picks = %d,%d", low, high)
	}
	doneHigh(nil)
	for i := 0; i < 5; i++ {
		sw.Observe(99)
	}
	cl, doneLow := d.Pick()
	if cl != d.Low {
		t.Error("should pick low under load")
	}
	// A call the server shed tallies separately, not in the mix...
	_, doneShed := d.Pick()
	doneShed(fmt.Errorf("runtime: control transfer failed: %w", rpc.ErrOverloaded))
	// ...and so does any other failure.
	_, doneFail := d.Pick()
	doneFail(errors.New("deadlock victim"))
	doneLow(nil)
	low, high := d.Picks()
	if low != 1 || high != 1 {
		t.Errorf("picks = %d,%d, want 1,1", low, high)
	}
	if d.Sheds() != 1 {
		t.Errorf("sheds = %d, want 1", d.Sheds())
	}
	if d.Errors() != 1 {
		t.Errorf("errors = %d, want 1", d.Errors())
	}
}

// TestSwitcherHysteresis drives the flap case table-style: an EWMA
// hovering around Threshold flips the paper's single-threshold rule on
// every sample; the dead band absorbs it. Alpha 0 makes the EWMA equal
// the last sample, so the table exercises the raw state machine.
func TestSwitcherHysteresis(t *testing.T) {
	cases := []struct {
		name  string
		delta float64
		loads []float64
		want  []bool // UseLowBudget after each sample
	}{
		{
			// δ=0 preserves paper behavior: flap right at the threshold.
			name:  "no-hysteresis-flaps",
			delta: 0,
			loads: []float64{39, 41, 39, 41, 39},
			want:  []bool{false, true, false, true, false},
		},
		{
			// Same hovering trace, δ=5: never leaves high-budget.
			name:  "band-absorbs-flap",
			delta: 5,
			loads: []float64{39, 41, 44, 41, 39, 44, 41},
			want:  []bool{false, false, false, false, false, false, false},
		},
		{
			// Crossing the outer edges flips; re-entering the band keeps
			// the current choice both ways.
			name:  "band-edges",
			delta: 5,
			loads: []float64{30, 46, 44, 36, 41, 34, 39, 44, 46},
			want:  []bool{false, true, true, true, true, false, false, false, true},
		},
		{
			// A negative δ clamps to 0 instead of inverting the band
			// into a flap amplifier (steady 38 would otherwise toggle
			// on every sample).
			name:  "negative-delta-clamps",
			delta: -5,
			loads: []float64{38, 38, 38, 41, 41, 39},
			want:  []bool{false, false, false, true, true, false},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sw := &Switcher{Alpha: 0, Threshold: 40, Hysteresis: tc.delta}
			for i, load := range tc.loads {
				sw.Observe(load)
				if got := sw.UseLowBudget(); got != tc.want[i] {
					t.Errorf("after loads[:%d] (=%v): low=%v, want %v", i+1, tc.loads[:i+1], got, tc.want[i])
				}
			}
		})
	}
}

// TestDualSessionManagerRouting checks the session-tag routing that
// lets one manager serve both live deployments of dynamic switching.
func TestDualSessionManagerRouting(t *testing.T) {
	compiled := compileWith(t, calcSrc, nil)
	db := sqldb.Open()
	high := NewPeer(compiled, pdg.DB, nil)
	low := NewPeer(compiled, pdg.DB, nil)
	m := NewDualSessionManager(high, low, func() dbapi.Conn { return dbapi.NewLocal(db) })

	const lowSID = uint32(7) | uint32(TagLowBudget)<<24
	if got := m.Session(7).Peer; got != high {
		t.Error("untagged session routed off the high-budget peer")
	}
	if got := m.Session(lowSID).Peer; got != low {
		t.Error("TagLowBudget session did not route to the low-budget peer")
	}
	if rpc.SessionTag(lowSID) != TagLowBudget {
		t.Fatal("test sid does not carry the low tag")
	}
	if m.Len() != 2 {
		t.Errorf("managed %d sessions, want 2", m.Len())
	}
	// Without a LowPeer the tag is inert (report-less/old peers).
	single := NewSessionManager(high, func() dbapi.Conn { return dbapi.NewLocal(db) })
	if got := single.Session(lowSID).Peer; got != high {
		t.Error("single-deployment manager must ignore session tags")
	}
}

func TestHeapLazyMaterialization(t *testing.T) {
	h := NewHeap(pdg.App)
	ci := &compile.ClassInfo{Name: "X", NumApp: 1, NumDB: 1,
		Fields: []*compile.FieldRef{}}
	oid := h.NewObject(ci)
	if oid%2 != 1 {
		t.Errorf("APP heap should allocate odd OIDs, got %d", oid)
	}
	hd := NewHeap(pdg.DB)
	if oid2 := hd.NewObject(ci); oid2%2 != 0 {
		t.Errorf("DB heap should allocate even OIDs, got %d", oid2)
	}
	// Unknown OID materializes lazily with the instruction's class.
	if _, err := hd.Object(oid, ci); err != nil {
		t.Fatalf("lazy materialization failed: %v", err)
	}
	if _, err := hd.Object(0, ci); err == nil {
		t.Error("null deref should error")
	}
	if _, err := hd.Array(12345); err == nil {
		t.Error("unknown array must not materialize (sendNative required)")
	}
}
