package runtime

// Advisor is the policy half of live rebalancing: it folds the
// per-warehouse access counts the transaction drivers feed it (plus
// which warehouses co-occur inside one transaction) into a co-access
// graph, and when the per-shard load skew passes its trigger it
// min-cuts that graph with the same internal/solver machinery the
// program partitioner uses — the paper's move, applied to data
// placement instead of statement placement.
//
// The cut instance, per plan, is anchored two-terminal: every
// warehouse of the hottest (donor) shard is a free node; one anchor is
// pinned APP (the "stay on the donor" side, at the donor's move cost)
// and one pinned DB (the "move to the recipient" side, at the
// warehouse's own observed traffic — staying hot is what costs).
// Co-access edges between donor warehouses, and between a donor
// warehouse and the recipient's warehouses, bias the cut toward
// keeping transaction neighborhoods together (cutting a pair edge
// models the 2PC round-trips the split would buy). The Budget caps
// moved load at half the donor/recipient gap, so the solver sheds the
// hottest warehouses first and stops at balance instead of swapping
// the skew to the other side.

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"pyxis/internal/solver"
)

// Advisor accumulates per-warehouse access statistics and emits
// migration plans. Observe is cheap (one atomic add per touched
// warehouse; the pair map is only taken for multi-warehouse
// transactions) and safe for concurrent use.
type Advisor struct {
	// Trigger is the imbalance ratio (hottest / median shard load)
	// above which Plan proposes a migration (default 1.25).
	Trigger float64
	// MoveCost is the per-warehouse cost of migrating, in the same
	// unit as access counts; 0 means "1% of the mean warehouse load"
	// — cheap enough to move hot data, dear enough not to churn cold
	// warehouses for nothing.
	MoveCost float64

	warehouses int
	counts     []atomic.Int64

	pairMu sync.Mutex
	pairs  map[[2]int32]float64
}

// NewAdvisor sizes an advisor for warehouses [1, warehouses].
func NewAdvisor(warehouses int) *Advisor {
	return &Advisor{
		Trigger:    1.25,
		warehouses: warehouses,
		counts:     make([]atomic.Int64, warehouses),
		pairs:      map[[2]int32]float64{},
	}
}

// Observe records one transaction touching ws (home warehouse first,
// remote branches after). Out-of-range warehouses are ignored.
func (a *Advisor) Observe(ws ...int64) {
	for _, w := range ws {
		if w >= 1 && w <= int64(a.warehouses) {
			a.counts[w-1].Add(1)
		}
	}
	if len(ws) < 2 {
		return
	}
	a.pairMu.Lock()
	for i := 0; i < len(ws); i++ {
		for j := i + 1; j < len(ws); j++ {
			u, v := int32(ws[i]), int32(ws[j])
			if u == v || ws[i] < 1 || ws[j] < 1 || ws[i] > int64(a.warehouses) || ws[j] > int64(a.warehouses) {
				continue
			}
			if u > v {
				u, v = v, u
			}
			a.pairs[[2]int32{u, v}]++
		}
	}
	a.pairMu.Unlock()
}

// Count returns warehouse w's accumulated access count.
func (a *Advisor) Count(w int64) int64 {
	if w < 1 || w > int64(a.warehouses) {
		return 0
	}
	return a.counts[w-1].Load()
}

// Reset zeroes all counters — called after a migration so the next
// window measures the new placement, not the history that triggered
// the move.
func (a *Advisor) Reset() {
	for i := range a.counts {
		a.counts[i].Store(0)
	}
	a.pairMu.Lock()
	a.pairs = map[[2]int32]float64{}
	a.pairMu.Unlock()
}

// ShardLoads sums the observed counts per owning shard under m.
func (a *Advisor) ShardLoads(m ShardMap) []float64 {
	loads := make([]float64, m.NumShards())
	for w := int64(1); w <= int64(a.warehouses); w++ {
		loads[m.Shard(w)] += float64(a.counts[w-1].Load())
	}
	return loads
}

// Imbalance returns hottest/median shard load under m (the gate the
// rebalance bench enforces) plus the per-shard loads. With an even
// shard count the median averages the two middle loads. A zero median
// with any traffic reports +Inf.
func (a *Advisor) Imbalance(m ShardMap) (float64, []float64) {
	loads := a.ShardLoads(m)
	return ImbalanceRatio(loads), loads
}

// ImbalanceRatio computes hottest/median over a load vector.
func ImbalanceRatio(loads []float64) float64 {
	if len(loads) == 0 {
		return 1
	}
	sorted := append([]float64{}, loads...)
	sort.Float64s(sorted)
	max := sorted[len(sorted)-1]
	var median float64
	if n := len(sorted); n%2 == 1 {
		median = sorted[n/2]
	} else {
		median = (sorted[n/2-1] + sorted[n/2]) / 2
	}
	switch {
	case max == 0:
		return 1
	case median == 0:
		return max / 1e-9 // effectively +Inf: all load on shards above the median
	}
	return max / median
}

// MigrationPlan is one advisor decision: move Warehouses (sorted) from
// shard From to shard To.
type MigrationPlan struct {
	From, To   int
	Warehouses []int64
	// DonorLoad/RecipientLoad/MovedLoad document the decision in
	// observed-access units.
	DonorLoad, RecipientLoad, MovedLoad float64
}

func (p *MigrationPlan) String() string {
	return fmt.Sprintf("move %v shard%d->shard%d (donor %.0f, recipient %.0f, shedding %.0f)",
		p.Warehouses, p.From, p.To, p.DonorLoad, p.RecipientLoad, p.MovedLoad)
}

// Runs splits the plan's warehouses into contiguous [lo, hi] runs —
// the unit Migrator.Move fences and streams.
func (p *MigrationPlan) Runs() [][2]int64 {
	var runs [][2]int64
	for i := 0; i < len(p.Warehouses); {
		j := i
		for j+1 < len(p.Warehouses) && p.Warehouses[j+1] == p.Warehouses[j]+1 {
			j++
		}
		runs = append(runs, [2]int64{p.Warehouses[i], p.Warehouses[j]})
		i = j + 1
	}
	return runs
}

// Plan proposes a migration under the current map, or returns (nil,
// nil) when the tier is balanced (imbalance under Trigger), the donor
// cannot shed anything within budget (one indivisible hotspot), or
// nothing has been observed yet.
func (a *Advisor) Plan(m ShardMap) (*MigrationPlan, error) {
	n := m.NumShards()
	if n < 2 {
		return nil, nil
	}
	loads := a.ShardLoads(m)
	trigger := a.Trigger
	if trigger <= 0 {
		trigger = 1.25
	}
	if ImbalanceRatio(loads) <= trigger {
		return nil, nil
	}
	donor, recip := 0, 0
	for i, l := range loads {
		if l > loads[donor] {
			donor = i
		}
		if l < loads[recip] {
			recip = i
		}
	}
	if donor == recip {
		return nil, nil
	}
	donorWs := m.OwnedWarehouses(donor)
	if len(donorWs) <= 1 {
		return nil, nil // a one-warehouse shard has nothing divisible to shed
	}
	budget := (loads[donor] - loads[recip]) / 2
	if budget <= 0 {
		return nil, nil
	}

	// Auto = exact branch & bound on advisor-sized instances (a few
	// dozen donor warehouses), Lagrangian min cut beyond that. The
	// exact path matters here: the budget makes this a knapsack-shaped
	// cut, and pure Lagrangian relaxation can return the empty move
	// when the single hottest warehouse exceeds the budget on its own
	// (the duality gap lands between "move the hotspot" and "move
	// nothing", skipping the warm middle the plan actually wants).
	sol, err := (solver.Auto{}).Solve(a.cutProblem(m, donorWs, recip, budget))
	if err != nil {
		return nil, fmt.Errorf("runtime: advisor min-cut: %w", err)
	}
	plan := &MigrationPlan{From: donor, To: recip,
		DonorLoad: loads[donor], RecipientLoad: loads[recip]}
	for i, w := range donorWs {
		if sol.Assign[i] {
			plan.Warehouses = append(plan.Warehouses, w)
			plan.MovedLoad += float64(a.counts[w-1].Load())
		}
	}
	if len(plan.Warehouses) == 0 {
		return nil, nil
	}
	return plan, nil
}

// cutProblem builds the anchored two-terminal instance over the
// donor's warehouses. Node i is donorWs[i]; node N-2 is the donor
// anchor (pinned APP = stay), node N-1 the recipient anchor (pinned
// DB = move). Assign[i] == true means "move warehouse i".
func (a *Advisor) cutProblem(m ShardMap, donorWs []int64, recip int, budget float64) *solver.Problem {
	nw := len(donorWs)
	idx := make(map[int64]int, nw)
	for i, w := range donorWs {
		idx[w] = i
	}
	p := &solver.Problem{
		N:          nw + 2,
		NodeWeight: make([]float64, nw+2),
		Budget:     budget,
		Pin:        make([]int8, nw+2),
	}
	donorAnchor, recipAnchor := nw, nw+1
	for i := range p.Pin {
		p.Pin[i] = solver.PinFree
	}
	p.Pin[donorAnchor] = solver.PinApp
	p.Pin[recipAnchor] = solver.PinDB

	var total float64
	for i, w := range donorWs {
		c := float64(a.counts[w-1].Load())
		p.NodeWeight[i] = c
		total += c
	}
	moveCost := a.MoveCost
	if moveCost <= 0 {
		moveCost = total / float64(nw) / 100
		if moveCost <= 0 {
			moveCost = 1e-3
		}
	}
	for i, w := range donorWs {
		c := float64(a.counts[w-1].Load())
		// Staying on the overloaded donor costs the warehouse its own
		// traffic (cut when the node stays APP-side with the recipient
		// anchor DB-side); moving costs the flat migration fee (cut
		// when it leaves the donor anchor's side).
		p.Edges = append(p.Edges,
			solver.Edge{U: i, V: recipAnchor, W: c},
			solver.Edge{U: i, V: donorAnchor, W: moveCost})
	}
	a.pairMu.Lock()
	for pair, w := range a.pairs {
		u, uok := idx[int64(pair[0])]
		v, vok := idx[int64(pair[1])]
		switch {
		case uok && vok:
			// Both on the donor: splitting the pair costs its co-access.
			p.Edges = append(p.Edges, solver.Edge{U: u, V: v, W: w})
		case uok && m.Shard(int64(pair[1])) == recip:
			// Partner already on the recipient: moving u joins them.
			p.Edges = append(p.Edges, solver.Edge{U: u, V: recipAnchor, W: w})
		case vok && m.Shard(int64(pair[0])) == recip:
			p.Edges = append(p.Edges, solver.Edge{U: v, V: recipAnchor, W: w})
		}
	}
	a.pairMu.Unlock()
	return p
}
