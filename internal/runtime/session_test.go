package runtime

import (
	"fmt"
	"net"
	"sync"
	"testing"

	"pyxis/internal/dbapi"
	"pyxis/internal/pdg"
	"pyxis/internal/rpc"
	"pyxis/internal/source"
	"pyxis/internal/sqldb"
	"pyxis/internal/val"
)

// TestConcurrentSessionsOverMux drives many concurrent sessions over
// ONE multiplexed connection against ONE shared DB-side runtime peer.
// Each session is an independent logical thread of control with its
// own object and heap; the test checks full isolation (each session's
// accumulator evolves as if it were alone) while the shared peer's
// metrics aggregate across all of them.
func TestConcurrentSessionsOverMux(t *testing.T) {
	const (
		sessions = 12
		calls    = 25
	)
	compiled := compileWith(t, calcSrc, func(g *pdg.Graph, place pdg.Placement) {
		prog := g.Prog
		for id, f := range prog.Fields {
			if f.Name == "acc" {
				place[id] = pdg.DB
			}
		}
		m := prog.Method("Calc", "apply")
		source.WalkMethodStmts(m, func(s source.Stmt) bool {
			place[s.ID()] = pdg.DB
			return true
		})
		place[m.EntryID] = pdg.DB
	})

	db := sqldb.Open()
	dbPeer := NewPeer(compiled, pdg.DB, nil)
	mgr := NewSessionManager(dbPeer, func() dbapi.Conn { return dbapi.NewLocal(db) })

	srvConn, cliConn := net.Pipe()
	serveDone := make(chan struct{})
	go func() {
		rpc.ServeMuxConn(srvConn, mgr)
		close(serveDone)
	}()
	mux := rpc.NewMuxClient(cliConn)
	defer mux.Close()

	appPeer := NewPeer(compiled, pdg.App, nil)

	var wg sync.WaitGroup
	errs := make([]error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctl := mux.Session()
			client := NewClient(appPeer.NewSession(dbapi.NewLocal(db)), ctl)
			oid, err := client.NewObject("Calc")
			if err != nil {
				errs[i] = err
				return
			}
			want := int64(0)
			for k := int64(1); k <= calls; k++ {
				x := k + int64(i)
				dbl := (k+int64(i))%3 == 0
				add := x
				if dbl {
					add = x * 2
				}
				want += add
				got, err := client.CallEntry("Calc.apply", oid, val.IntV(x), val.BoolV(dbl))
				if err != nil {
					errs[i] = fmt.Errorf("session %d call %d: %w", i, k, err)
					return
				}
				if got.I != want {
					errs[i] = fmt.Errorf("session %d call %d: acc = %d, want %d (session isolation broken)", i, k, got.I, want)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	m := dbPeer.Metrics.Snapshot()
	if m.Transfers < sessions*calls {
		t.Errorf("DB peer served %d transfers, want >= %d", m.Transfers, sessions*calls)
	}
	if got := mgr.Len(); got != sessions {
		t.Errorf("session manager holds %d sessions, want %d", got, sessions)
	}

	// Closing the connection retires every session.
	mux.Close()
	<-serveDone
	if got := mgr.Len(); got != 0 {
		t.Errorf("after teardown session manager holds %d sessions, want 0", got)
	}
}

// TestDeploymentNewSession checks the in-process multi-session path:
// extra sessions opened on one Deployment run concurrently and stay
// isolated.
func TestDeploymentNewSession(t *testing.T) {
	compiled := compileWith(t, calcSrc, func(g *pdg.Graph, place pdg.Placement) {
		prog := g.Prog
		m := prog.Method("Calc", "apply")
		source.WalkMethodStmts(m, func(s source.Stmt) bool {
			place[s.ID()] = pdg.DB
			return true
		})
		place[m.EntryID] = pdg.DB
		for id, f := range prog.Fields {
			if f.Name == "acc" {
				place[id] = pdg.DB
			}
		}
	})
	dep := NewDeployment(compiled, sqldb.Open(), Options{})

	const sessions = 8
	clients := make([]*Client, sessions)
	clients[0] = dep.Client
	for i := 1; i < sessions; i++ {
		clients[i] = dep.NewSession()
	}

	var wg sync.WaitGroup
	errs := make([]error, sessions)
	for i, c := range clients {
		wg.Add(1)
		go func(i int, c *Client) {
			defer wg.Done()
			oid, err := c.NewObject("Calc")
			if err != nil {
				errs[i] = err
				return
			}
			want := int64(0)
			for k := int64(1); k <= 10; k++ {
				want += k
				got, err := c.CallEntry("Calc.apply", oid, val.IntV(k), val.BoolV(false))
				if err != nil {
					errs[i] = err
					return
				}
				if got.I != want {
					errs[i] = fmt.Errorf("session %d: acc = %d, want %d", i, got.I, want)
					return
				}
			}
		}(i, c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := dep.Sessions.Len(); got != sessions {
		t.Errorf("deployment has %d DB-side sessions, want %d", got, sessions)
	}

	// Closing a client releases its DB-side session (idempotently).
	if err := clients[1].Close(); err != nil {
		t.Fatal(err)
	}
	if err := clients[1].Close(); err != nil {
		t.Fatal(err)
	}
	if got := dep.Sessions.Len(); got != sessions-1 {
		t.Errorf("after close deployment has %d DB-side sessions, want %d", got, sessions-1)
	}
}

// TestSessionManagerClose checks that retiring a session rolls back
// its open transaction, releasing row locks for other sessions.
func TestSessionManagerClose(t *testing.T) {
	db := sqldb.Open()
	sess := db.NewSession()
	mustExec := func(sql string, args ...val.Value) {
		t.Helper()
		if _, err := sess.Exec(sql, args...); err != nil {
			t.Fatal(err)
		}
	}
	mustExec("CREATE TABLE kv (k INT PRIMARY KEY, v INT)")
	mustExec("INSERT INTO kv VALUES (1, 10)")

	compiled := compileWith(t, calcSrc, nil)
	peer := NewPeer(compiled, pdg.DB, nil)
	mgr := NewSessionManager(peer, func() dbapi.Conn { return dbapi.NewLocal(db) })

	// Session 7 opens a transaction and locks row 1.
	sn := mgr.Session(7)
	if err := sn.DB.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := sn.DB.Exec("UPDATE kv SET v = 99 WHERE k = 1", nil...); err != nil {
		t.Fatal(err)
	}

	// Closing the session must roll the transaction back.
	mgr.Close(7)
	if got := mgr.Len(); got != 0 {
		t.Fatalf("manager holds %d sessions after close", got)
	}
	rs, err := sess.Query("SELECT v FROM kv WHERE k = 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 || rs.Rows[0][0].I != 10 {
		t.Fatalf("row not rolled back: %v", rs.Rows)
	}

	// A fresh session with the same id starts clean.
	if mgr.Session(7) == sn {
		t.Fatal("closed session was resurrected")
	}
}
