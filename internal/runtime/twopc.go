package runtime

// Coordinator is the app side of two-phase commit over the sharded DB
// tier. A distributed transaction runs its per-shard branches on
// ordinary dbapi sessions (one per participant shard); the coordinator
// then drives prepare/commit as rpc.TxnCtl frames over each branch's
// existing mux session — the decision point is Decide, called after
// every participant voted yes and before any phase-2 frame leaves.
//
// Recovery is presumed abort. The decisions map is the commit log: a
// gid recorded true is committed; a gid recorded false, or not
// recorded at all, is aborted. Participants that time out in prepared
// state re-query this log through dbapi.Participant's resolver (wired
// to Outcome), so a commit frame lost to a dead connection still
// commits and a coordinator crash before the decision still aborts —
// never a split outcome. The log is bounded FIFO: an entry aging out
// reads as "no record", which presumed abort only makes safe because
// entries far outlive any participant's in-doubt deadline.

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pyxis/internal/rpc"
)

// coordinatorLogCap bounds the decision log. At TPC-C rates a
// distributed commit decision is needed by participants for at most
// one in-doubt deadline (~seconds); 1<<16 entries is orders of
// magnitude more history than that window can need.
const coordinatorLogCap = 1 << 16

// ErrTxnAborted reports that a distributed transaction was aborted
// during 2PC (a participant voted no, timed out, or its shard died).
var ErrTxnAborted = errors.New("runtime: distributed transaction aborted")

// Coordinator runs presumed-abort two-phase commit. Safe for
// concurrent use by every client goroutine of a ShardedClient.
type Coordinator struct {
	// Deadline bounds each per-participant control call so a stalled or
	// dead shard cannot wedge the coordinator (<= 0 means
	// rpc.DefaultTxnDeadline).
	Deadline time.Duration

	nextGID atomic.Uint64

	mu        sync.Mutex
	decisions map[uint64]bool
	order     []uint64

	commits, aborts, inDoubt atomic.Int64
}

// NewCoordinator creates a coordinator with the given per-participant
// deadline. GIDs are seeded from the wall clock so distinct
// coordinator incarnations (restarts, tests) do not reuse IDs within
// a participant's tombstone horizon.
func NewCoordinator(deadline time.Duration) *Coordinator {
	c := &Coordinator{Deadline: deadline, decisions: map[uint64]bool{}}
	c.nextGID.Store(uint64(time.Now().UnixNano()) << 16)
	return c
}

// NewGID mints a fresh global transaction ID.
func (c *Coordinator) NewGID() uint64 { return c.nextGID.Add(1) }

// Decide records the outcome for gid in the decision log. Recording
// true is *the* commit point of the protocol: it must happen after
// every participant has prepared and before any commit frame is sent,
// so a participant that re-queries mid-phase-2 sees the decision the
// frames are delivering.
func (c *Coordinator) Decide(gid uint64, commit bool) {
	c.mu.Lock()
	if _, dup := c.decisions[gid]; !dup {
		c.decisions[gid] = commit
		c.order = append(c.order, gid)
		if len(c.order) > coordinatorLogCap {
			delete(c.decisions, c.order[0])
			c.order = c.order[1:]
		}
	}
	c.mu.Unlock()
}

// Outcome answers a participant's in-doubt re-query from the decision
// log; it matches dbapi.Resolver. known=false (no record) means abort
// by presumption.
func (c *Coordinator) Outcome(gid uint64) (commit, known bool) {
	c.mu.Lock()
	commit, known = c.decisions[gid]
	c.mu.Unlock()
	return commit, known
}

// Stats reports distributed-transaction outcomes: commits, aborts, and
// commits whose phase 2 left at least one participant in doubt
// (decision recorded, delivery failed — the participant converges via
// re-query).
func (c *Coordinator) Stats() (commits, aborts, inDoubt int64) {
	return c.commits.Load(), c.aborts.Load(), c.inDoubt.Load()
}

// Commit runs two-phase commit for gid across parts, whose per-shard
// transaction branches must be open (statements done, not yet
// committed). On nil every branch is committed; on error every branch
// is aborted or will converge to abort, and the caller's transaction
// is dead either way.
//
// Phase 1 prepares each participant in turn under the per-participant
// deadline; any refusal, timeout (rpc.ErrTxnDeadline), or dead shard
// (rpc.ErrPoolPoisoned) vetoes the commit: the abort is recorded and
// delivered to every participant that already prepared (an unreachable
// one aborts itself at its in-doubt deadline — no record in the log
// reads as abort). Phase 2 records the commit, then delivers it;
// delivery failures do NOT fail the transaction — the decision is
// logged, the stalled participant re-queries and commits late.
func (c *Coordinator) Commit(gid uint64, parts ...*rpc.MuxSession) error {
	for i, p := range parts {
		st, err := p.TxnCtl(rpc.TxnPrepare, gid, c.Deadline)
		if err == nil && st != rpc.TxnStatePrepared {
			err = fmt.Errorf("participant %d voted %s", i, st)
		}
		if err != nil {
			c.Decide(gid, false)
			c.aborts.Add(1)
			// Best-effort abort of the participants that did prepare; the
			// vetoing one has nothing prepared under gid, and unreachable
			// ones presume abort on their own deadline.
			for _, q := range parts[:i] {
				_, _ = q.TxnCtl(rpc.TxnAbort, gid, c.Deadline)
			}
			// Double-wrap so callers can match both the outcome
			// (ErrTxnAborted) and the cause (ErrTxnDeadline for a stall,
			// ErrPoolPoisoned for a dead shard).
			return fmt.Errorf("%w: prepare on participant %d: %w", ErrTxnAborted, i, err)
		}
	}

	c.Decide(gid, true) // the commit point
	c.commits.Add(1)
	for _, p := range parts {
		if _, err := p.TxnCtl(rpc.TxnCommit, gid, c.Deadline); err != nil {
			// Committed but not yet everywhere: the participant holds its
			// locks until its in-doubt deadline re-queries the decision.
			c.inDoubt.Add(1)
		}
	}
	return nil
}

// Abort aborts gid on every participant (used when a branch statement
// failed before prepare was attempted anywhere).
func (c *Coordinator) Abort(gid uint64, parts ...*rpc.MuxSession) {
	c.Decide(gid, false)
	c.aborts.Add(1)
	for _, p := range parts {
		_, _ = p.TxnCtl(rpc.TxnAbort, gid, c.Deadline)
	}
}
