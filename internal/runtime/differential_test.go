package runtime

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"pyxis/internal/compile"
	"pyxis/internal/pdg"
	"pyxis/internal/sqldb"
	"pyxis/internal/val"
)

// TestDifferentialRandomPlacements is the observational-equivalence
// property test for the fused hot path: for each source program and a
// sweep of seeded random statement/field placements, the same call
// schedule runs through
//
//   - the seed pipeline: unfused blocks on a Legacy deployment
//     (version-0 transfers, string SQL, per-call frame allocation), and
//   - the fused pipeline: Fuse()d superblocks with live-slot delta
//     transfers and pooled frames,
//
// and every observable — return values, errors, printed output — must
// match exactly, while the fused run's control-transfer count must
// never exceed the seed run's (fusion only merges or threads edges, so
// it can only remove boundary crossings).

const diffLoopSrc = `
class L {
    int total;
    int[] buf;

    L() {
        total = 0;
        buf = new int[16];
    }

    int step(int x) {
        int y = x;
        while (y > 0) {
            total = total + y % 3;
            y = y - 1;
        }
        return total;
    }

    entry int run(int n) {
        int i = 0;
        while (i < n) {
            buf[i % 16] = step(i);
            i = i + 1;
        }
        return total;
    }

    entry int peek(int i) {
        return buf[i % 16];
    }

    entry string show() {
        string s = "t=" + sys.str(total);
        sys.print(s);
        return s;
    }
}
`

// diffCall is one step of a deterministic call schedule.
type diffCall struct {
	method string
	args   []val.Value
}

// diffSchedule derives a seeded schedule of entry calls for a source.
func diffSchedule(class string, entries []string, rng *rand.Rand, n int) []diffCall {
	var calls []diffCall
	for i := 0; i < n; i++ {
		m := entries[rng.Intn(len(entries))]
		var args []val.Value
		switch class + "." + m {
		case "Calc.apply":
			args = []val.Value{val.IntV(int64(rng.Intn(20))), val.BoolV(rng.Intn(2) == 0)}
		case "Calc.histAt", "L.peek":
			args = []val.Value{val.IntV(int64(rng.Intn(16)))}
		case "L.run":
			args = []val.Value{val.IntV(int64(1 + rng.Intn(6)))}
		}
		calls = append(calls, diffCall{method: class + "." + m, args: args})
	}
	return calls
}

// runSchedule drives calls against a fresh deployment of compiled and
// returns the observable trace plus the control-transfer count.
func runSchedule(t *testing.T, compiled *compile.Program, legacy bool, class string, calls []diffCall) (trace string, transfers int64) {
	t.Helper()
	var out bytes.Buffer
	dep := NewDeployment(compiled, sqldb.Open(), Options{Out: &out, Legacy: legacy})
	oid, err := dep.Client.NewObject(class)
	if err != nil {
		t.Fatalf("NewObject(%s): %v", class, err)
	}
	var tr bytes.Buffer
	for i, c := range calls {
		v, err := dep.Client.CallEntry(c.method, oid, c.args...)
		if err != nil {
			fmt.Fprintf(&tr, "%d %s -> err %v\n", i, c.method, err)
			continue
		}
		fmt.Fprintf(&tr, "%d %s -> %s\n", i, c.method, v.String())
	}
	tr.WriteString("--- printed ---\n")
	tr.Write(out.Bytes())
	return tr.String(), dep.App.Metrics.Snapshot().Transfers
}

func TestDifferentialRandomPlacements(t *testing.T) {
	programs := []struct {
		name, src, class string
		entries          []string
	}{
		{"calc", calcSrc, "Calc", []string{"apply", "histAt", "describe"}},
		{"loop", diffLoopSrc, "L", []string{"run", "peek", "show"}},
	}
	for _, p := range programs {
		for seed := int64(1); seed <= 8; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", p.name, seed), func(t *testing.T) {
				// Compile the same random placement twice so Fuse (which
				// rewrites in place) gets its own copy.
				unfused := compileWith(t, p.src, pdg.RandomAssign(seed))
				fused := compileWith(t, p.src, pdg.RandomAssign(seed))
				stats := compile.Fuse(fused)
				if len(fused.Blocks) > len(unfused.Blocks) {
					t.Fatalf("fusion grew the program: %d -> %d blocks", len(unfused.Blocks), len(fused.Blocks))
				}

				rng := rand.New(rand.NewSource(seed * 7919))
				calls := diffSchedule(p.class, p.entries, rng, 24)

				seedTrace, seedTransfers := runSchedule(t, unfused, true, p.class, calls)
				fusedTrace, fusedTransfers := runSchedule(t, fused, false, p.class, calls)

				if seedTrace != fusedTrace {
					t.Errorf("fused pipeline diverged (fuse %s):\n-- seed --\n%s\n-- fused --\n%s",
						stats, seedTrace, fusedTrace)
				}
				if fusedTransfers > seedTransfers {
					t.Errorf("fusion increased transfers: %d -> %d", seedTransfers, fusedTransfers)
				}
			})
		}
	}
}
