package runtime

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"pyxis/internal/rpc"
	"pyxis/internal/val"
)

// Switcher implements the dynamic partitioning selection of paper
// §6.3: the database server reports its load (here piggy-backed on
// every mux reply rather than a 10-second side channel); the
// application server keeps an exponentially weighted moving average
// L_t = α·L_{t-1} + (1-α)·S_t and uses a low-CPU-budget partitioning
// while L_t exceeds the threshold, a high-budget one otherwise. The
// EWMA damps oscillation between deployment modes; the optional
// hysteresis band kills the residual flapping the EWMA alone cannot
// (an average hovering exactly at the threshold).
type Switcher struct {
	// Alpha is the EWMA weight on history (paper: 0.2).
	Alpha float64
	// Threshold is the load percentage above which the low-budget
	// partitioning is selected (paper: 40).
	Threshold float64
	// Hysteresis is the half-width δ of the dead band around
	// Threshold: the switcher flips to low-budget only when the EWMA
	// exceeds Threshold+δ and back to high-budget only when it drops
	// below Threshold−δ; in between it keeps its current choice. The
	// default 0 preserves the paper's single-threshold behavior.
	Hysteresis float64

	mu      sync.Mutex
	ewma    float64
	started bool
	low     bool
}

// NewSwitcher returns a switcher with the paper's constants
// (α = 0.2, threshold = 40%, no hysteresis).
func NewSwitcher() *Switcher {
	return &Switcher{Alpha: 0.2, Threshold: 40}
}

// Observe folds one load sample (percent, 0–100) into the EWMA,
// re-evaluates the high/low choice, and returns the new average.
func (s *Switcher) Observe(load float64) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.started {
		s.ewma = load
		s.started = true
	} else {
		s.ewma = s.Alpha*s.ewma + (1-s.Alpha)*load
	}
	// A negative δ would invert the dead band into a flap amplifier
	// (both transitions firing on the same EWMA); clamp to 0.
	h := s.Hysteresis
	if h < 0 {
		h = 0
	}
	if s.low {
		if s.ewma < s.Threshold-h {
			s.low = false
		}
	} else if s.ewma > s.Threshold+h {
		s.low = true
	}
	return s.ewma
}

// ObserveReport folds a piggy-backed DB load report into the EWMA —
// the glue between a MuxClient's SetOnLoad sink and the switcher.
func (s *Switcher) ObserveReport(rep rpc.LoadReport) { s.Observe(rep.Load) }

// Load returns the current EWMA.
func (s *Switcher) Load() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ewma
}

// UseLowBudget reports whether the low-CPU-budget partitioning should
// serve the next request.
func (s *Switcher) UseLowBudget() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.low
}

// DynamicClient routes each entry invocation of one logical client
// session to one of two live deployments of the same program — one
// generated with a high DB-CPU budget (stored-procedure-like) and one
// with a low budget (client-side-query like) — according to the
// shared switcher. This mirrors the paper's TPC-C dynamic switching
// experiment, which pre-generates exactly two partitionings. Like the
// clients it wraps, a DynamicClient serves a single logical thread of
// control, but its counters are atomic so many DynamicClients can
// share one Switcher while a coordinator reads the aggregate mix.
type DynamicClient struct {
	High, Low *Client
	Switcher  *Switcher
	// ShedRetries bounds CallEntry's overload-backoff loop (0 selects
	// DefaultShedRetries).
	ShedRetries int

	lowPicks  atomic.Int64 // completed low-budget calls
	highPicks atomic.Int64 // completed high-budget calls
	sheds     atomic.Int64 // calls shed by an overloaded server
	fails     atomic.Int64 // calls that failed for any other reason
}

// DefaultShedRetries is CallEntry's overload-retry bound when
// ShedRetries is unset.
const DefaultShedRetries = 50

// Pick chooses the deployment for the next call and returns it with a
// completion callback: invoke done(err) once the call finishes. Only
// completed calls count toward the pick mix — a call the server shed
// (rpc.ErrOverloaded) tallies as a shed and any other failure as an
// error, so retried and failed calls never inflate the mix.
func (d *DynamicClient) Pick() (cl *Client, done func(error)) {
	if d.Switcher.UseLowBudget() {
		return d.Low, func(err error) { d.finish(&d.lowPicks, err) }
	}
	return d.High, func(err error) { d.finish(&d.highPicks, err) }
}

func (d *DynamicClient) finish(picks *atomic.Int64, err error) {
	switch {
	case err == nil:
		picks.Add(1)
	case errors.Is(err, rpc.ErrOverloaded):
		d.sheds.Add(1)
	default:
		d.fails.Add(1)
	}
}

// CallResult reports how a routed entry invocation concluded.
type CallResult struct {
	Val val.Value
	// Low reports whether the low-budget deployment served the final
	// attempt.
	Low bool
	// Sheds is the number of overloaded replies absorbed by backoff.
	Sheds int
}

// CallEntry routes one entry invocation through the switcher: it picks
// a deployment per attempt (the EWMA may move between retries), maps
// the pick to that deployment's receiver OID, completes the pick, and
// backs off with jitter (ShedBackoff) while the server sheds the call.
// Non-overload errors return immediately — retry policy for
// application errors (e.g. deadlock victims) belongs to the caller.
func (d *DynamicClient) CallEntry(qname string, oidHigh, oidLow val.OID, args ...val.Value) (CallResult, error) {
	max := d.ShedRetries
	if max <= 0 {
		max = DefaultShedRetries
	}
	var res CallResult
	for attempt := 0; ; attempt++ {
		cl, done := d.Pick()
		res.Low = cl == d.Low
		oid := oidHigh
		if res.Low {
			oid = oidLow
		}
		ret, err := cl.CallEntry(qname, oid, args...)
		done(err)
		if err == nil {
			res.Val = ret
			return res, nil
		}
		if !errors.Is(err, rpc.ErrOverloaded) {
			return res, err
		}
		res.Sheds++ // counted even when the budget is spent, matching Sheds()
		if attempt >= max {
			return res, err
		}
		// The server refused to queue the call, so no transaction
		// state was left behind; back off (jittered, so sessions shed
		// together don't retry in lockstep) and try again.
		time.Sleep(ShedBackoff(attempt))
	}
}

// Picks returns (completed low-budget calls, completed high-budget
// calls).
func (d *DynamicClient) Picks() (low, high int64) {
	return d.lowPicks.Load(), d.highPicks.Load()
}

// Sheds returns how many calls the server shed under overload.
func (d *DynamicClient) Sheds() int64 { return d.sheds.Load() }

// Errors returns how many calls failed for non-overload reasons.
func (d *DynamicClient) Errors() int64 { return d.fails.Load() }

// Close closes both underlying clients.
func (d *DynamicClient) Close() error {
	err := d.High.Close()
	if lerr := d.Low.Close(); err == nil {
		err = lerr
	}
	return err
}
