package runtime

import "sync"

// Switcher implements the dynamic partitioning selection of paper
// §6.3: the database server periodically reports its CPU load; the
// application server keeps an exponentially weighted moving average
// L_t = α·L_{t-1} + (1-α)·S_t and uses a low-CPU-budget partitioning
// while L_t exceeds the threshold, a high-budget one otherwise. The
// EWMA damps oscillation between deployment modes.
type Switcher struct {
	// Alpha is the EWMA weight on history (paper: 0.2).
	Alpha float64
	// Threshold is the load percentage above which the low-budget
	// partitioning is selected (paper: 40).
	Threshold float64

	mu      sync.Mutex
	ewma    float64
	started bool
}

// NewSwitcher returns a switcher with the paper's constants
// (α = 0.2, threshold = 40%).
func NewSwitcher() *Switcher {
	return &Switcher{Alpha: 0.2, Threshold: 40}
}

// Observe folds one load sample (percent, 0–100) into the EWMA and
// returns the new average.
func (s *Switcher) Observe(load float64) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.started {
		s.ewma = load
		s.started = true
	} else {
		s.ewma = s.Alpha*s.ewma + (1-s.Alpha)*load
	}
	return s.ewma
}

// Load returns the current EWMA.
func (s *Switcher) Load() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ewma
}

// UseLowBudget reports whether the low-CPU-budget partitioning should
// serve the next request.
func (s *Switcher) UseLowBudget() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.started && s.ewma > s.Threshold
}

// DynamicClient routes each entry invocation to one of two deployments
// of the same program — one generated with a high DB-CPU budget
// (stored-procedure-like) and one with a low budget (client-side-query
// like) — according to the switcher. This mirrors the paper's TPC-C
// dynamic switching experiment, which pre-generates exactly two
// partitionings.
type DynamicClient struct {
	High, Low *Client
	Switcher  *Switcher
	// picks counts how many calls used the low-budget partitioning.
	mu        sync.Mutex
	lowPicks  int64
	highPicks int64
}

// Pick returns the client for the next call.
func (d *DynamicClient) Pick() *Client {
	if d.Switcher.UseLowBudget() {
		d.mu.Lock()
		d.lowPicks++
		d.mu.Unlock()
		return d.Low
	}
	d.mu.Lock()
	d.highPicks++
	d.mu.Unlock()
	return d.High
}

// Picks returns (low-budget picks, high-budget picks).
func (d *DynamicClient) Picks() (low, high int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.lowPicks, d.highPicks
}
