package runtime

import (
	"math"
	goruntime "runtime"
	"sync"
	"sync/atomic"
	"time"

	"pyxis/internal/rpc"
	"pyxis/internal/sqldb"
)

// LoadMonitor samples the DB server's saturation signal for
// piggy-backing on mux replies (paper §6.3's load messages). Post
// sharding, the engine no longer serializes, so a single CPU figure
// misses how the server actually saturates; the monitor blends the
// three signals ROADMAP names:
//
//   - a run-queue/CPU proxy: runnable goroutines per core relative to
//     a saturation point (interp + statement execution pin the CPU
//     first at high client counts);
//   - the replying session's mux queue depth (per-session
//     backpressure, supplied by the mux layer at reply time);
//   - the sqldb lock-wait rate (hot-row workloads accumulate lock
//     waits while CPU stays flat).
//
// Each component normalizes to percent, the blend takes their max (a
// server is as saturated as its most saturated resource), and any
// external load — background processes in the paper's Fig. 11 spike,
// or a bench-forced ramp — adds on top, clamped to 100. A Source()
// plugs directly into rpc.MuxServer.SetLoadSource; Sample is called
// from every session worker concurrently and is safe for concurrent
// use.
type LoadMonitor struct {
	DB *sqldb.DB
	// GoroutineSat is the goroutines-per-core count treated as 100%
	// CPU-proxy load (default 64). The proxy counts all goroutines,
	// not just runnable ones — a mux server keeps ~2-3 parked
	// goroutines per idle session — so the saturation point sits well
	// above the handful a quiet server runs, while hundreds of active
	// sessions still read as saturation.
	GoroutineSat float64
	// LockWaitSat is the lock-wait rate (waits/second) treated as 100%
	// contention load (default 500).
	LockWaitSat float64

	// external is the forced/background load in percent (float64 bits).
	external atomic.Uint64

	// Lock-wait rate is a windowed derivative of the engine counter.
	// Sample runs on every reply of every session worker, so the
	// steady-state read is two atomic loads; mu serializes only the
	// refresh once per rateWindow (double-checked against
	// nextRefresh).
	rateBits    atomic.Uint64
	nextRefresh atomic.Int64 // unix nanos of the next refresh
	mu          sync.Mutex
	lastWaits   int64
	lastAt      time.Time
}

const rateWindow = 50 * time.Millisecond

// maxRateWindow caps the differentiation window of the lock-wait rate.
// Refreshes are driven by traffic, so after an idle stretch the
// previous sample can be arbitrarily old; dividing a fresh wait burst
// by the whole idle period would average it toward zero exactly when
// load returns and the switcher most needs to see it. Clamping the
// window treats everything before the last few windows as history, not
// denominator.
//
// Attributing the whole delta to the clamped window is sound because
// sampling rides the same wire that creates waits: every statement of
// every session produces replies (and admission checks) that call
// Sample, so a refresh gap much longer than rateWindow means the
// server processed ~nothing — and accumulated ~no waits — for most of
// it; the delta really did arrive near the end. The residual
// distortion is a server trickling ~1 call/s whose rare colliding
// transactions over-report by dt/maxRateWindow — absolute rates there
// are far below LockWaitSat, and dense sampling (with dt ≈ rateWindow)
// resumes exactly when load does.
const maxRateWindow = 4 * rateWindow

// NewLoadMonitor returns a monitor over db with default saturation
// points.
func NewLoadMonitor(db *sqldb.DB) *LoadMonitor {
	now := time.Now()
	m := &LoadMonitor{DB: db, GoroutineSat: 64, LockWaitSat: 500, lastAt: now}
	m.nextRefresh.Store(now.Add(rateWindow).UnixNano())
	return m
}

// SetExternal sets the external load component in percent — the
// paper's "other processes occupy the database server" signal, and the
// lever benchmarks use to force a load ramp through the real stack.
func (m *LoadMonitor) SetExternal(pct float64) {
	m.external.Store(math.Float64bits(pct))
}

// External returns the current external load component.
func (m *LoadMonitor) External() float64 {
	return math.Float64frombits(m.external.Load())
}

// Sample implements rpc.LoadSource: it returns the current blended
// report, tagging it with the replying session's queue depth.
func (m *LoadMonitor) Sample(queueLen int) (rpc.LoadReport, bool) {
	cores := float64(goruntime.GOMAXPROCS(0))
	cpu := 100 * float64(goruntime.NumGoroutine()) / (m.GoroutineSat * cores)
	queue := 100 * float64(queueLen) / float64(rpc.SessionQueueDepth)
	rate := m.lockWaitRate()
	lock := 100 * rate / m.LockWaitSat

	load := math.Max(cpu, math.Max(queue, lock)) + m.External()
	if load > 100 {
		load = 100
	}
	return rpc.LoadReport{
		Load:         load,
		CPU:          cpu,
		LockWaitRate: rate,
		QueueDepth:   uint32(queueLen),
	}, true
}

// Source returns the monitor as an rpc.LoadSource.
func (m *LoadMonitor) Source() rpc.LoadSource { return m.Sample }

func (m *LoadMonitor) lockWaitRate() float64 {
	if m.DB == nil {
		return 0
	}
	now := time.Now()
	if now.UnixNano() >= m.nextRefresh.Load() {
		m.mu.Lock()
		if now.UnixNano() >= m.nextRefresh.Load() {
			waits, _ := m.DB.LockWaits()
			delta := waits - m.lastWaits
			if delta < 0 {
				// The underlying counter moved backwards (a fresh DB
				// swapped in behind the monitor): a negative rate would
				// permanently drag the blend down, so treat a reset as
				// zero waits this window.
				delta = 0
			}
			dt := now.Sub(m.lastAt)
			if dt > maxRateWindow {
				dt = maxRateWindow
			}
			if dt > 0 {
				m.rateBits.Store(math.Float64bits(float64(delta) / dt.Seconds()))
			}
			m.lastWaits, m.lastAt = waits, now
			m.nextRefresh.Store(now.Add(rateWindow).UnixNano())
		}
		m.mu.Unlock()
	}
	return math.Float64frombits(m.rateBits.Load())
}
