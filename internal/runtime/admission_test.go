package runtime

import (
	"io"
	"net"
	"testing"
	"time"

	"pyxis/internal/rpc"
)

// TestAdmissionSessionCap covers the structural gate: the cap admits
// exactly MaxSessions concurrently, refusals don't leak slots, and a
// close frees one.
func TestAdmissionSessionCap(t *testing.T) {
	a := NewAdmissionController(nil, AdmissionConfig{MaxSessions: 2})
	if err := a.AdmitSession(1); err != nil {
		t.Fatal(err)
	}
	if err := a.AdmitSession(2); err != nil {
		t.Fatal(err)
	}
	if err := a.AdmitSession(3); err == nil {
		t.Fatal("third session admitted over a cap of 2")
	}
	if err := a.AdmitSession(4); err == nil {
		t.Fatal("fourth session admitted over a cap of 2")
	}
	a.SessionClosed(1)
	if err := a.AdmitSession(5); err != nil {
		t.Fatalf("slot freed by close not reusable: %v", err)
	}
	st := a.Stats()
	if st.Sessions != 2 || st.AdmittedSessions != 3 || st.ShedSessions != 2 {
		t.Errorf("stats = %+v, want sessions=2 admitted=3 shed=2", st)
	}
	// Without a monitor the load gate must never engage.
	if st.Shedding {
		t.Error("monitor-less controller reports shedding")
	}
}

// forcedMonitor builds a LoadMonitor whose organic components are
// pushed out of reach, so SetExternal is the only signal — the same
// trick the bench drivers use to make load deterministic in-process.
func forcedMonitor() *LoadMonitor {
	m := NewLoadMonitor(nil)
	m.GoroutineSat = 1 << 20
	m.LockWaitSat = 1 << 20
	return m
}

// TestAdmissionHysteresis drives the load gate through a ramp and
// checks the dead band: shedding engages only above HighLoad, holds
// through the band, and releases only below LowLoad — admission
// cannot flap around a single threshold.
func TestAdmissionHysteresis(t *testing.T) {
	mon := forcedMonitor()
	a := NewAdmissionController(mon, AdmissionConfig{HighLoad: 80, LowLoad: 40})

	steps := []struct {
		load     float64
		wantShed bool
		desc     string
	}{
		{10, false, "idle"},
		{70, false, "below high threshold"},
		{90, true, "crossed high: engage"},
		{60, true, "inside the band: hold shedding"},
		{45, true, "still above low: hold shedding"},
		{30, false, "below low: release"},
		{60, false, "inside the band from below: stay open"},
		{85, true, "crossed high again: re-engage"},
	}
	for _, step := range steps {
		mon.SetExternal(step.load)
		err := a.AdmitSession(1)
		if step.wantShed && err == nil {
			t.Errorf("%s (load %.0f): session admitted, want refusal", step.desc, step.load)
		}
		if !step.wantShed && err != nil {
			t.Errorf("%s (load %.0f): session refused: %v", step.desc, step.load, err)
		}
		if !step.wantShed {
			a.SessionClosed(1) // keep the cap-less slot count balanced
		}
		if got := a.Shedding(); got != step.wantShed {
			t.Errorf("%s (load %.0f): shedding=%v, want %v", step.desc, step.load, got, step.wantShed)
		}
	}
}

// TestAdmissionCallShedWhileSaturated covers the per-call gate: while
// shedding, a session with a deep queue is refused but an idle one
// keeps progressing; after recovery the deep queue is admitted again.
func TestAdmissionCallShedWhileSaturated(t *testing.T) {
	mon := forcedMonitor()
	a := NewAdmissionController(mon, AdmissionConfig{HighLoad: 80, LowLoad: 40})
	shedQ := rpc.SessionQueueDepth / 4

	mon.SetExternal(95)
	if err := a.AdmitCall(1, shedQ); err == nil {
		t.Error("deep-queue call admitted while saturated")
	}
	if err := a.AdmitCall(1, 0); err != nil {
		t.Errorf("idle-queue call refused while saturated: %v (admitted sessions must keep moving)", err)
	}

	mon.SetExternal(10)
	if err := a.AdmitCall(1, shedQ); err != nil {
		t.Errorf("deep-queue call refused after recovery: %v", err)
	}
	if st := a.Stats(); st.ShedCalls != 1 {
		t.Errorf("shed calls = %d, want 1", st.ShedCalls)
	}
}

// TestPoolReportsFoldIntoSharedEWMA is the regression the pool must
// never break: muxFlagLoad reports arriving on DIFFERENT pool
// connections all fold into ONE shared EWMA, and a report-less
// (old-peer) connection mixed into the pool interoperates — its
// sessions serve traffic and simply contribute no samples.
func TestPoolReportsFoldIntoSharedEWMA(t *testing.T) {
	echo := rpc.HandlerFactory(func(sid uint32) rpc.Handler {
		return func(req []byte) ([]byte, error) { return req, nil }
	})
	// Connections 0 and 1 report fixed, very different loads;
	// connection 2 is an old peer with no LoadSource at all.
	loads := []float64{10, 90}
	pool, err := rpc.NewMuxPool(3, func(i int) (io.ReadWriteCloser, error) {
		srv, cli := net.Pipe()
		cfg := rpc.MuxServeConfig{}
		if i < len(loads) {
			load := loads[i]
			cfg.Load = func(queueLen int) (rpc.LoadReport, bool) {
				return rpc.LoadReport{Load: load, QueueDepth: uint32(queueLen)}, true
			}
		}
		go rpc.ServeMuxConnConfig(srv, echo, cfg)
		return cli, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	sw := NewSwitcher()
	pool.SetOnLoad(sw.ObserveReport)

	// Find one session per connection (round-robin tie-breaking spreads
	// an idle pool over all three).
	byConn := map[uint8]*rpc.MuxSession{}
	for len(byConn) < 3 {
		s, err := pool.TaggedSession(0)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := byConn[rpc.SessionConn(s.ID())]; !ok {
			byConn[rpc.SessionConn(s.ID())] = s
		}
		if len(byConn) > 3 {
			t.Fatal("more connections than the pool holds")
		}
	}

	// Traffic on the low-load connection alone drags the EWMA to 10...
	for k := 0; k < 40; k++ {
		if _, err := byConn[0].Call([]byte("a")); err != nil {
			t.Fatal(err)
		}
	}
	if got := sw.Load(); got < 9 || got > 11 {
		t.Fatalf("EWMA after low-conn traffic = %.1f, want ~10", got)
	}
	// ...and traffic on the HIGH-load connection moves the SAME EWMA
	// up: the two connections demonstrably feed one average.
	for k := 0; k < 40; k++ {
		if _, err := byConn[1].Call([]byte("b")); err != nil {
			t.Fatal(err)
		}
	}
	if got := sw.Load(); got < 80 {
		t.Fatalf("EWMA after high-conn traffic = %.1f; reports from the second connection did not fold in", got)
	}

	// The report-less old peer serves traffic and feeds nothing.
	before := pool.LoadReports()
	for k := 0; k < 10; k++ {
		if resp, err := byConn[2].Call([]byte("old")); err != nil || string(resp) != "old" {
			t.Fatalf("old-peer connection broken in the pool: %q %v", resp, err)
		}
	}
	if got := pool.LoadReports(); got != before {
		t.Errorf("report-less connection contributed %d reports", got-before)
	}
	if got := sw.Load(); got < 80 {
		t.Errorf("old-peer traffic dragged the EWMA to %.1f", got)
	}
	if before != 80 {
		t.Errorf("reporting connections delivered %d reports, want 80", before)
	}
}

// TestShedBackoffJitter pins the backoff contract: positive, jittered
// (not a fixed ladder — lockstep retries are exactly what it exists to
// break), growing with attempt, and capped.
func TestShedBackoffJitter(t *testing.T) {
	distinct := map[time.Duration]bool{}
	for i := 0; i < 32; i++ {
		d := ShedBackoff(0)
		if d < time.Millisecond || d >= 2*time.Millisecond {
			t.Fatalf("attempt-0 backoff %v outside [1ms, 2ms)", d)
		}
		distinct[d] = true
	}
	if len(distinct) < 2 {
		t.Error("32 attempt-0 backoffs identical: no jitter")
	}
	if d := ShedBackoff(9); d < 10*time.Millisecond || d >= 20*time.Millisecond {
		t.Errorf("attempt-9 backoff %v outside [10ms, 20ms)", d)
	}
	if d := ShedBackoff(1 << 20); d >= 2*maxShedBackoffStep*time.Millisecond {
		t.Errorf("huge attempt backoff %v escaped the cap", d)
	}
}
