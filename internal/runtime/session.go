package runtime

import (
	"sync"

	"pyxis/internal/dbapi"
	"pyxis/internal/rpc"
)

// TagLowBudget is the mux session tag (rpc.SessionTag of the wire
// session ID) that a dual-deployment SessionManager routes to its
// low-budget peer. Tag 0 — every session a plain MuxClient.Session()
// opens — always routes to the primary peer.
const TagLowBudget uint8 = 1

// SessionManager hosts the DB-side sessions of one peer: many logical
// clients share the compiled Program and the database while each keeps
// its own heap, stack, transaction context and pending sync. It
// implements rpc.SessionHandlers, so it plugs directly into a
// multiplexed transport's demux: every session ID observed on the wire
// gets its own runtime Session served concurrently with the others.
//
// With LowPeer set the manager hosts two live deployments at once —
// the high- and low-budget partitionings of dynamic switching (paper
// §6.3) — routing each wire session by the tag byte of its session ID:
// the application side opens a TaggedSession(TagLowBudget) to reach
// the low-budget program, a plain session to reach the high-budget
// one. Both deployments share the database; only the compiled program
// (and so the placement) differs.
type SessionManager struct {
	Peer *Peer
	// LowPeer, when non-nil, serves sessions tagged TagLowBudget.
	LowPeer *Peer
	// NewConn opens one database connection per session (the
	// connection carries the session's transaction context).
	NewConn func() dbapi.Conn

	mu       sync.Mutex
	sessions map[uint32]*Session
	nextID   uint32
}

// NewSessionManager creates a manager over the shared peer. newConn is
// invoked once per session.
func NewSessionManager(peer *Peer, newConn func() dbapi.Conn) *SessionManager {
	return &SessionManager{Peer: peer, NewConn: newConn, sessions: map[uint32]*Session{}}
}

// NewDualSessionManager creates a manager serving two live
// deployments: sessions tagged TagLowBudget run low's program, all
// others run high's.
func NewDualSessionManager(high, low *Peer, newConn func() dbapi.Conn) *SessionManager {
	return &SessionManager{Peer: high, LowPeer: low, NewConn: newConn, sessions: map[uint32]*Session{}}
}

// peerFor routes a wire session ID to the deployment serving it.
func (m *SessionManager) peerFor(id uint32) *Peer {
	if m.LowPeer != nil && rpc.SessionTag(id) == TagLowBudget {
		return m.LowPeer
	}
	return m.Peer
}

// Session returns the session for id, creating it on first use.
func (m *SessionManager) Session(id uint32) *Session {
	m.mu.Lock()
	defer m.mu.Unlock()
	sn := m.sessions[id]
	if sn == nil {
		sn = m.peerFor(id).NewSession(m.NewConn())
		m.sessions[id] = sn
	}
	return sn
}

// NextID allocates a session ID no live session of this manager uses.
func (m *SessionManager) NextID() uint32 {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		m.nextID++
		if _, taken := m.sessions[m.nextID]; !taken {
			return m.nextID
		}
	}
}

// Close retires a session: any transaction left open on its
// connection is rolled back (releasing row locks) and its state is
// dropped. Closing an unknown id is a no-op.
func (m *SessionManager) Close(id uint32) {
	m.mu.Lock()
	sn := m.sessions[id]
	delete(m.sessions, id)
	m.mu.Unlock()
	if sn == nil {
		return
	}
	// Best effort: the connection may have no transaction open.
	_ = sn.DB.Rollback()
	_ = sn.Close()
}

// Len returns the number of live sessions.
func (m *SessionManager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sessions)
}

// Open implements rpc.SessionHandlers: it serves the control-transfer
// protocol for session id.
func (m *SessionManager) Open(id uint32) rpc.Handler {
	return Handler(m.Session(id))
}

// Closed implements rpc.SessionHandlers.
func (m *SessionManager) Closed(id uint32) { m.Close(id) }

var _ rpc.SessionHandlers = (*SessionManager)(nil)
