package runtime

import (
	"sync"

	"pyxis/internal/dbapi"
	"pyxis/internal/rpc"
)

// SessionManager hosts the DB-side sessions of one peer: many logical
// clients share the compiled Program and the database while each keeps
// its own heap, stack, transaction context and pending sync. It
// implements rpc.SessionHandlers, so it plugs directly into a
// multiplexed transport's demux: every session ID observed on the wire
// gets its own runtime Session served concurrently with the others.
type SessionManager struct {
	Peer *Peer
	// NewConn opens one database connection per session (the
	// connection carries the session's transaction context).
	NewConn func() dbapi.Conn

	mu       sync.Mutex
	sessions map[uint32]*Session
	nextID   uint32
}

// NewSessionManager creates a manager over the shared peer. newConn is
// invoked once per session.
func NewSessionManager(peer *Peer, newConn func() dbapi.Conn) *SessionManager {
	return &SessionManager{Peer: peer, NewConn: newConn, sessions: map[uint32]*Session{}}
}

// Session returns the session for id, creating it on first use.
func (m *SessionManager) Session(id uint32) *Session {
	m.mu.Lock()
	defer m.mu.Unlock()
	sn := m.sessions[id]
	if sn == nil {
		sn = m.Peer.NewSession(m.NewConn())
		m.sessions[id] = sn
	}
	return sn
}

// NextID allocates a session ID no live session of this manager uses.
func (m *SessionManager) NextID() uint32 {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		m.nextID++
		if _, taken := m.sessions[m.nextID]; !taken {
			return m.nextID
		}
	}
}

// Close retires a session: any transaction left open on its
// connection is rolled back (releasing row locks) and its state is
// dropped. Closing an unknown id is a no-op.
func (m *SessionManager) Close(id uint32) {
	m.mu.Lock()
	sn := m.sessions[id]
	delete(m.sessions, id)
	m.mu.Unlock()
	if sn == nil {
		return
	}
	// Best effort: the connection may have no transaction open.
	_ = sn.DB.Rollback()
	_ = sn.Close()
}

// Len returns the number of live sessions.
func (m *SessionManager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sessions)
}

// Open implements rpc.SessionHandlers: it serves the control-transfer
// protocol for session id.
func (m *SessionManager) Open(id uint32) rpc.Handler {
	return Handler(m.Session(id))
}

// Closed implements rpc.SessionHandlers.
func (m *SessionManager) Closed(id uint32) { m.Close(id) }

var _ rpc.SessionHandlers = (*SessionManager)(nil)
