// Package runtime executes compiled Pyxis programs (paper §6): it
// maintains the explicit program stack and the distributed heap,
// executes placement-annotated blocks, performs control transfers
// between the application-server and database-server peers with
// piggy-backed heap/stack synchronization, and dynamically switches
// between pre-generated partitionings based on database CPU load.
//
// The runtime is multi-session: a Peer is the shared per-side engine
// (compiled program, environment, aggregate metrics) while each
// logical client owns a Session (heap, frame stack, database
// connection, pending sync). One Session preserves the paper's single
// logical thread of control; a SessionManager hosts many Sessions on
// the DB side concurrently, typically demultiplexed from one
// rpc.MuxClient connection.
package runtime

import (
	"fmt"

	"pyxis/internal/compile"
	"pyxis/internal/pdg"
	"pyxis/internal/rpc"
	"pyxis/internal/val"
)

// Object is the runtime representation of a class instance. Every
// source-level object is split into an APP part and a DB part (paper
// Fig. 6); each peer holds copies of both, and sync operations ship
// the authoritative part across on control transfers.
type Object struct {
	Class *compile.ClassInfo
	App   []val.Value
	DB    []val.Value
}

// Part returns the field storage of one part.
func (o *Object) Part(loc pdg.Loc) []val.Value {
	if loc == pdg.DB {
		return o.DB
	}
	return o.App
}

// Array is a runtime array; placement follows its allocation site.
type Array struct {
	Elems []val.Value
}

// Table is a materialized query result (a "native object" in the
// paper's terminology — shipped wholesale with sendNative).
type Table struct {
	Cols []string
	Rows [][]val.Value
}

// Heap stores one peer's objects, arrays and tables by OID. OID
// parity partitions the ID space: the APP peer allocates odd IDs, the
// DB peer even ones, so both allocate without coordination.
type Heap struct {
	objs map[val.OID]*Object
	arrs map[val.OID]*Array
	tabs map[val.OID]*Table
	next val.OID
}

// NewHeap creates an empty heap for the given side.
func NewHeap(side pdg.Loc) *Heap {
	h := &Heap{
		objs: map[val.OID]*Object{},
		arrs: map[val.OID]*Array{},
		tabs: map[val.OID]*Table{},
	}
	if side == pdg.DB {
		h.next = 2
	} else {
		h.next = 1
	}
	return h
}

func (h *Heap) alloc() val.OID {
	oid := h.next
	h.next += 2
	return oid
}

// NewObject allocates an object with zeroed parts.
func (h *Heap) NewObject(ci *compile.ClassInfo) val.OID {
	oid := h.alloc()
	h.objs[oid] = &Object{Class: ci, App: ci.ZeroPart(pdg.App), DB: ci.ZeroPart(pdg.DB)}
	return oid
}

// NewArray allocates an array of n copies of zero.
func (h *Heap) NewArray(n int, zero val.Value) val.OID {
	oid := h.alloc()
	elems := make([]val.Value, n)
	for i := range elems {
		elems[i] = zero
	}
	h.arrs[oid] = &Array{Elems: elems}
	return oid
}

// NewTable stores a query result.
func (h *Heap) NewTable(cols []string, rows [][]val.Value) val.OID {
	oid := h.alloc()
	h.tabs[oid] = &Table{Cols: cols, Rows: rows}
	return oid
}

// Object returns the object for oid, materializing a zeroed instance
// of class ci if this peer has not seen it (lazy materialization: the
// authoritative state arrives via sync records before any real use —
// guaranteed by the conservative sync insertion).
func (h *Heap) Object(oid val.OID, ci *compile.ClassInfo) (*Object, error) {
	if oid == 0 {
		return nil, fmt.Errorf("runtime: null dereference")
	}
	o, ok := h.objs[oid]
	if !ok {
		o = &Object{Class: ci, App: ci.ZeroPart(pdg.App), DB: ci.ZeroPart(pdg.DB)}
		h.objs[oid] = o
	}
	return o, nil
}

// Array returns the array for oid.
func (h *Heap) Array(oid val.OID) (*Array, error) {
	if oid == 0 {
		return nil, fmt.Errorf("runtime: null array dereference")
	}
	a, ok := h.arrs[oid]
	if !ok {
		return nil, fmt.Errorf("runtime: array %d not present on this peer (missing sendNative?)", oid)
	}
	return a, nil
}

// Table returns the table for oid.
func (h *Heap) Table(oid val.OID) (*Table, error) {
	if oid == 0 {
		return nil, fmt.Errorf("runtime: null table dereference")
	}
	t, ok := h.tabs[oid]
	if !ok {
		return nil, fmt.Errorf("runtime: table %d not present on this peer (missing sendNative?)", oid)
	}
	return t, nil
}

// ---------------------------------------------------------------------------
// Heap synchronization records
// ---------------------------------------------------------------------------

type syncKind uint8

const (
	syncObjPart syncKind = iota
	syncArray
	syncTable
)

// pendingSync identifies dirty heap state to ship on the next control
// transfer; payloads are serialized at transfer time so the latest
// values travel (eager batched updates, §3.2).
type pendingSync struct {
	kind syncKind
	oid  val.OID
	part pdg.Loc // for syncObjPart
}

// encodeSync serializes the pending set against the local heap.
func encodeSync(w *rpc.Writer, h *Heap, pend []pendingSync) {
	w.U32(uint32(len(pend)))
	for _, ps := range pend {
		w.Byte(byte(ps.kind))
		w.I64(int64(ps.oid))
		switch ps.kind {
		case syncObjPart:
			o := h.objs[ps.oid]
			w.Str(o.Class.Name)
			w.Byte(byte(ps.part))
			w.Vals(o.Part(ps.part))
		case syncArray:
			a := h.arrs[ps.oid]
			w.Vals(a.Elems)
		case syncTable:
			t := h.tabs[ps.oid]
			w.U32(uint32(len(t.Cols)))
			for _, c := range t.Cols {
				w.Str(c)
			}
			w.U32(uint32(len(t.Rows)))
			for _, row := range t.Rows {
				w.Vals(row)
			}
		}
	}
}

// applySync installs received sync records into the local heap.
func applySync(r *rpc.Reader, h *Heap, classes map[string]*compile.ClassInfo) error {
	n := int(r.U32())
	for i := 0; i < n; i++ {
		kind := syncKind(r.Byte())
		oid := val.OID(r.I64())
		switch kind {
		case syncObjPart:
			className := r.Str()
			part := pdg.Loc(r.Byte())
			vals := r.Vals()
			ci := classes[className]
			if ci == nil {
				return fmt.Errorf("runtime: sync for unknown class %s", className)
			}
			o, err := h.Object(oid, ci)
			if err != nil {
				return err
			}
			if part == pdg.DB {
				o.DB = vals
			} else {
				o.App = vals
			}
		case syncArray:
			h.arrs[oid] = &Array{Elems: r.Vals()}
		case syncTable:
			nc := int(r.U32())
			cols := make([]string, nc)
			for j := 0; j < nc; j++ {
				cols[j] = r.Str()
			}
			nr := int(r.U32())
			rows := make([][]val.Value, nr)
			for j := 0; j < nr; j++ {
				rows[j] = r.Vals()
			}
			h.tabs[oid] = &Table{Cols: cols, Rows: rows}
		default:
			return fmt.Errorf("runtime: bad sync kind %d", kind)
		}
	}
	return r.Err()
}
