package runtime

// This file is the routing half of the shard-router layer: ShardMap
// decides which shard owns a partition key, ShardedClient applies that
// decision at session-open time and keeps the per-shard load state the
// app side needs once the DB tier is N independent servers instead of
// one.
//
// The base mapping is deliberately dumb — contiguous warehouse ranges
// for TPC-C-shaped keys, a hash for everything else — but it is no
// longer frozen: live rebalancing (migrate.go) publishes successor
// maps that carry per-warehouse ownership Overrides and a bumped
// Epoch, and ShardedClient routes every new decision through the
// latest published map. Sessions stay pinned to their home shard for
// the life of a transaction, but transactions are not confined to it:
// a transaction that must touch rows another shard owns (TPC-C's
// remote Payment / remote NewOrder lines) opens a branch session on
// that shard and commits both branches atomically through the
// client's 2PC Coordinator (twopc.go).

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"pyxis/internal/rpc"
)

// ShardMap maps partition keys onto N shards. The zero value is the
// unsharded deployment (everything on shard 0).
type ShardMap struct {
	// Shards is the shard count (values < 1 behave as 1).
	Shards int
	// Warehouses, when > 0, enables warehouse-range mapping: keys in
	// [1, Warehouses] are split into contiguous ranges, one per shard,
	// with the remainder spread over the first shards. Keys outside
	// the range (and all keys when Warehouses is 0) fall back to a
	// hash — deterministic, uniform, but with no range locality.
	Warehouses int
	// Epoch versions the map. Every published rebalance bumps it;
	// routers compare epochs at transaction boundaries to decide when
	// to re-home their cached sessions (see ShardedClient.Publish).
	Epoch uint64
	// Overrides reassigns individual warehouses away from the range
	// mapping — the migration result. Only keys inside [1, Warehouses]
	// consult it (an override on an out-of-range key is dead data, so
	// the hash fallback stays total and the per-shard ownership audit
	// stays a partition of [1, Warehouses]); override values outside
	// [0, NumShards()) are ignored as corrupt.
	Overrides map[int64]int
}

// NumShards returns the effective shard count (at least 1).
func (m ShardMap) NumShards() int {
	if m.Shards < 1 {
		return 1
	}
	return m.Shards
}

// Shard returns key's home shard, in [0, NumShards()). The range
// answer (including Overrides) applies to in-range keys only; keys
// outside [1, Warehouses] always take the hash fallback, pinned by
// TestShardMapBoundaries so a stray key 0 or Warehouses+1 can never
// silently alias a range-owned warehouse.
func (m ShardMap) Shard(key int64) int {
	n := int64(m.NumShards())
	if n == 1 {
		return 0
	}
	if w := int64(m.Warehouses); w > 0 && key >= 1 && key <= w {
		if o, ok := m.Overrides[key]; ok && o >= 0 && int64(o) < n {
			return o
		}
		// Contiguous ranges: the first w%n shards own one extra
		// warehouse, so [1,w] is covered with ranges differing by at
		// most one.
		base, extra := w/n, w%n
		idx := key - 1
		if wide := extra * (base + 1); idx < wide {
			return int(idx / (base + 1))
		} else {
			return int(extra + (idx-wide)/base)
		}
	}
	return int(splitmix64(uint64(key)) % uint64(n))
}

// OwnedWarehouses returns the sorted warehouses shard owns under the
// full mapping, Overrides included — the per-shard ownership set the
// invariant audits and the migrator's validity checks use.
func (m ShardMap) OwnedWarehouses(shard int) []int64 {
	var out []int64
	for w := int64(1); w <= int64(m.Warehouses); w++ {
		if m.Shard(w) == shard {
			out = append(out, w)
		}
	}
	return out
}

// WithMove returns the successor map: the same layout with warehouses
// [lo, hi] overridden to shard `to` and the epoch bumped. The receiver
// is not modified; Overrides are deep-copied.
func (m ShardMap) WithMove(lo, hi int64, to int) ShardMap {
	next := m
	next.Epoch = m.Epoch + 1
	next.Overrides = make(map[int64]int, len(m.Overrides)+int(hi-lo+1))
	for k, v := range m.Overrides {
		next.Overrides[k] = v
	}
	for w := lo; w <= hi; w++ {
		next.Overrides[w] = to
	}
	return next
}

// WarehouseRange returns the inclusive warehouse range shard owns
// under the base range mapping. It deliberately ignores Overrides —
// it describes the initial data layout migrations start from (the
// loader's contract), not current ownership; use OwnedWarehouses for
// that. A shard with no warehouses (more shards than warehouses)
// returns lo > hi.
func (m ShardMap) WarehouseRange(shard int) (lo, hi int64) {
	n := int64(m.NumShards())
	w := int64(m.Warehouses)
	s := int64(shard)
	base, extra := w/n, w%n
	size := base
	off := s * base
	if s < extra {
		size++
		off += s
	} else {
		off += extra
	}
	lo = off + 1
	return lo, lo + size - 1
}

// splitmix64 is the hash-fallback mixer (public-domain SplitMix64
// finalizer): full-avalanche, so adjacent keys spread uniformly.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// ParseShardSlot parses a "i/n" shard-slot spec (0-based index i of n
// shards), the form cmd/pyxis-dbserver's -shard flag takes.
func ParseShardSlot(spec string) (shard, shards int, err error) {
	i, n, ok := strings.Cut(spec, "/")
	if !ok {
		return 0, 0, fmt.Errorf("shard slot %q: want \"i/n\" (0-based shard i of n)", spec)
	}
	if shard, err = strconv.Atoi(strings.TrimSpace(i)); err != nil {
		return 0, 0, fmt.Errorf("shard slot %q: bad shard index: %w", spec, err)
	}
	if shards, err = strconv.Atoi(strings.TrimSpace(n)); err != nil {
		return 0, 0, fmt.Errorf("shard slot %q: bad shard count: %w", spec, err)
	}
	if shards < 1 || shard < 0 || shard >= shards {
		return 0, 0, fmt.Errorf("shard slot %q: index must be in [0, %d)", spec, shards)
	}
	return shard, shards, nil
}

// ShardedClient is the app side's view of a sharded DB tier: it picks
// every session's home shard at open time (sessions stay pinned — the
// runtime keeps a session's transaction state on one server) and
// keeps one load EWMA per shard, so dynamic switching and
// admission-shed backoff react to the load of the shard actually
// serving a session rather than a blend of all N. Its Observe matches
// rpc.ShardedPool.SetOnLoad, wiring each shard's piggy-backed reports
// into that shard's switcher and nothing else's.
type ShardedClient struct {
	// Map is the map the client was constructed with — the epoch-0
	// view. Routing always goes through CurrentMap, which starts here
	// and advances on every Publish.
	Map ShardMap

	// TwoPC commits transactions that span shards: per-shard branches
	// run on ordinary sessions, then Commit(gid, branches...) drives
	// prepare/commit over each branch's mux connection. Each shard's
	// dbapi.Participant should resolve in-doubt transactions against
	// TwoPC.Outcome.
	TwoPC *Coordinator

	switchers []*Switcher

	// epochMu serializes Publish (epoch monotonicity); readers go
	// through the atomic pointer and never take it.
	epochMu sync.Mutex
	cur     atomic.Pointer[ShardMap]
}

// NewShardedClient builds a client router over m with one
// default-configured Switcher per shard (callers tune thresholds via
// Switcher(i)) and a default-deadline 2PC coordinator.
func NewShardedClient(m ShardMap) *ShardedClient {
	c := &ShardedClient{Map: m, TwoPC: NewCoordinator(0), switchers: make([]*Switcher, m.NumShards())}
	for i := range c.switchers {
		c.switchers[i] = NewSwitcher()
	}
	c.cur.Store(&m)
	return c
}

// CurrentMap returns the latest published shard map. Safe from any
// goroutine; the map value is immutable once published.
func (c *ShardedClient) CurrentMap() ShardMap {
	if p := c.cur.Load(); p != nil {
		return *p
	}
	return c.Map // zero-value client constructed without NewShardedClient
}

// MapEpoch returns the current map's epoch. Drivers compare it at
// transaction boundaries: a bump means cached per-shard sessions may
// be homed by a stale map and must be re-opened.
func (c *ShardedClient) MapEpoch() uint64 { return c.CurrentMap().Epoch }

// Publish installs a successor map. The epoch must strictly increase
// and the shard count must match the client's switcher set (a
// rebalance moves data between existing shards; it cannot grow the
// tier). The map value must not be mutated after publishing.
func (c *ShardedClient) Publish(m ShardMap) error {
	c.epochMu.Lock()
	defer c.epochMu.Unlock()
	cur := c.CurrentMap()
	if m.Epoch <= cur.Epoch {
		return fmt.Errorf("runtime: publish epoch %d not newer than current %d", m.Epoch, cur.Epoch)
	}
	if m.NumShards() != len(c.switchers) {
		return fmt.Errorf("runtime: publish shard count %d != %d", m.NumShards(), len(c.switchers))
	}
	c.cur.Store(&m)
	return nil
}

// NumShards returns the number of shards routed over.
func (c *ShardedClient) NumShards() int { return len(c.switchers) }

// HomeShard returns the shard that owns key under the current map —
// the shard a session keyed by key must open against.
func (c *ShardedClient) HomeShard(key int64) int { return c.CurrentMap().Shard(key) }

// OpenSession picks key's home shard under the current map and opens
// a session there, returning the session with the shard it was pinned
// to.
func (c *ShardedClient) OpenSession(pool *rpc.ShardedPool, key int64) (*rpc.MuxSession, int, error) {
	shard := c.HomeShard(key)
	sess, err := pool.Session(shard)
	return sess, shard, err
}

// OpenTaggedSession is OpenSession with a session tag (e.g.
// TagLowBudget for the low-budget deployment pair of dynamic
// switching).
func (c *ShardedClient) OpenTaggedSession(pool *rpc.ShardedPool, key int64, tag uint8) (*rpc.MuxSession, int, error) {
	shard := c.HomeShard(key)
	sess, err := pool.TaggedSession(shard, tag)
	return sess, shard, err
}

// VerifyHome checks that shard still owns key under the current map;
// a request that raced a completed migration gets the typed
// ErrWrongShard redirect so its driver re-homes instead of failing.
func (c *ShardedClient) VerifyHome(shard int, key int64) error {
	m := c.CurrentMap()
	if home := m.Shard(key); home != shard {
		return fmt.Errorf("%w: key %d is on shard %d, not %d (epoch %d)", ErrWrongShard, key, home, shard, m.Epoch)
	}
	return nil
}

// Switcher returns shard's switcher — the per-shard EWMA a session
// pinned to that shard routes its dynamic high/low choice by.
func (c *ShardedClient) Switcher(shard int) *Switcher { return c.switchers[shard] }

// Observe folds one load report into the EWMA of the shard it arrived
// from. It matches rpc.ShardedPool.SetOnLoad.
func (c *ShardedClient) Observe(shard int, rep rpc.LoadReport) {
	if shard >= 0 && shard < len(c.switchers) {
		c.switchers[shard].Observe(rep.Load)
	}
}

// Load returns shard's current load EWMA.
func (c *ShardedClient) Load(shard int) float64 { return c.switchers[shard].Load() }
