package runtime

// This file is the routing half of the shard-router layer: ShardMap
// decides which shard owns a partition key, ShardedClient applies that
// decision at session-open time and keeps the per-shard load state the
// app side needs once the DB tier is N independent servers instead of
// one.
//
// The mapping is deliberately dumb and static — contiguous warehouse
// ranges for TPC-C-shaped keys, a hash for everything else. Sessions
// stay pinned to their home shard, but transactions are no longer
// confined to it: a transaction that must touch rows another shard
// owns (TPC-C's remote Payment / remote NewOrder lines) opens a branch
// session on that shard and commits both branches atomically through
// the client's 2PC Coordinator (twopc.go). Range rebalancing remains a
// ROADMAP follow-up.

import (
	"fmt"
	"strconv"
	"strings"

	"pyxis/internal/rpc"
)

// ShardMap maps partition keys onto N shards. The zero value is the
// unsharded deployment (everything on shard 0).
type ShardMap struct {
	// Shards is the shard count (values < 1 behave as 1).
	Shards int
	// Warehouses, when > 0, enables warehouse-range mapping: keys in
	// [1, Warehouses] are split into contiguous ranges, one per shard,
	// with the remainder spread over the first shards. Keys outside
	// the range (and all keys when Warehouses is 0) fall back to a
	// hash — deterministic, uniform, but with no range locality.
	Warehouses int
}

// NumShards returns the effective shard count (at least 1).
func (m ShardMap) NumShards() int {
	if m.Shards < 1 {
		return 1
	}
	return m.Shards
}

// Shard returns key's home shard, in [0, NumShards()).
func (m ShardMap) Shard(key int64) int {
	n := int64(m.NumShards())
	if n == 1 {
		return 0
	}
	if w := int64(m.Warehouses); w > 0 && key >= 1 && key <= w {
		// Contiguous ranges: the first w%n shards own one extra
		// warehouse, so [1,w] is covered with ranges differing by at
		// most one.
		base, extra := w/n, w%n
		idx := key - 1
		if wide := extra * (base + 1); idx < wide {
			return int(idx / (base + 1))
		} else {
			return int(extra + (idx-wide)/base)
		}
	}
	return int(splitmix64(uint64(key)) % uint64(n))
}

// WarehouseRange returns the inclusive warehouse range shard owns
// under the range mapping. A shard with no warehouses (more shards
// than warehouses) returns lo > hi.
func (m ShardMap) WarehouseRange(shard int) (lo, hi int64) {
	n := int64(m.NumShards())
	w := int64(m.Warehouses)
	s := int64(shard)
	base, extra := w/n, w%n
	size := base
	off := s * base
	if s < extra {
		size++
		off += s
	} else {
		off += extra
	}
	lo = off + 1
	return lo, lo + size - 1
}

// splitmix64 is the hash-fallback mixer (public-domain SplitMix64
// finalizer): full-avalanche, so adjacent keys spread uniformly.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// ParseShardSlot parses a "i/n" shard-slot spec (0-based index i of n
// shards), the form cmd/pyxis-dbserver's -shard flag takes.
func ParseShardSlot(spec string) (shard, shards int, err error) {
	i, n, ok := strings.Cut(spec, "/")
	if !ok {
		return 0, 0, fmt.Errorf("shard slot %q: want \"i/n\" (0-based shard i of n)", spec)
	}
	if shard, err = strconv.Atoi(strings.TrimSpace(i)); err != nil {
		return 0, 0, fmt.Errorf("shard slot %q: bad shard index: %w", spec, err)
	}
	if shards, err = strconv.Atoi(strings.TrimSpace(n)); err != nil {
		return 0, 0, fmt.Errorf("shard slot %q: bad shard count: %w", spec, err)
	}
	if shards < 1 || shard < 0 || shard >= shards {
		return 0, 0, fmt.Errorf("shard slot %q: index must be in [0, %d)", spec, shards)
	}
	return shard, shards, nil
}

// ShardedClient is the app side's view of a sharded DB tier: it picks
// every session's home shard at open time (sessions stay pinned — the
// runtime keeps a session's transaction state on one server) and
// keeps one load EWMA per shard, so dynamic switching and
// admission-shed backoff react to the load of the shard actually
// serving a session rather than a blend of all N. Its Observe matches
// rpc.ShardedPool.SetOnLoad, wiring each shard's piggy-backed reports
// into that shard's switcher and nothing else's.
type ShardedClient struct {
	Map ShardMap

	// TwoPC commits transactions that span shards: per-shard branches
	// run on ordinary sessions, then Commit(gid, branches...) drives
	// prepare/commit over each branch's mux connection. Each shard's
	// dbapi.Participant should resolve in-doubt transactions against
	// TwoPC.Outcome.
	TwoPC *Coordinator

	switchers []*Switcher
}

// NewShardedClient builds a client router over m with one
// default-configured Switcher per shard (callers tune thresholds via
// Switcher(i)) and a default-deadline 2PC coordinator.
func NewShardedClient(m ShardMap) *ShardedClient {
	c := &ShardedClient{Map: m, TwoPC: NewCoordinator(0), switchers: make([]*Switcher, m.NumShards())}
	for i := range c.switchers {
		c.switchers[i] = NewSwitcher()
	}
	return c
}

// NumShards returns the number of shards routed over.
func (c *ShardedClient) NumShards() int { return len(c.switchers) }

// HomeShard returns the shard that owns key — the shard a session
// keyed by key must open against.
func (c *ShardedClient) HomeShard(key int64) int { return c.Map.Shard(key) }

// OpenSession picks key's home shard and opens a session there,
// returning the session with the shard it was pinned to.
func (c *ShardedClient) OpenSession(pool *rpc.ShardedPool, key int64) (*rpc.MuxSession, int, error) {
	shard := c.Map.Shard(key)
	sess, err := pool.Session(shard)
	return sess, shard, err
}

// OpenTaggedSession is OpenSession with a session tag (e.g.
// TagLowBudget for the low-budget deployment pair of dynamic
// switching).
func (c *ShardedClient) OpenTaggedSession(pool *rpc.ShardedPool, key int64, tag uint8) (*rpc.MuxSession, int, error) {
	shard := c.Map.Shard(key)
	sess, err := pool.TaggedSession(shard, tag)
	return sess, shard, err
}

// Switcher returns shard's switcher — the per-shard EWMA a session
// pinned to that shard routes its dynamic high/low choice by.
func (c *ShardedClient) Switcher(shard int) *Switcher { return c.switchers[shard] }

// Observe folds one load report into the EWMA of the shard it arrived
// from. It matches rpc.ShardedPool.SetOnLoad.
func (c *ShardedClient) Observe(shard int, rep rpc.LoadReport) {
	if shard >= 0 && shard < len(c.switchers) {
		c.switchers[shard].Observe(rep.Load)
	}
}

// Load returns shard's current load EWMA.
func (c *ShardedClient) Load(shard int) float64 { return c.switchers[shard].Load() }
