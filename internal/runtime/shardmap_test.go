package runtime

import (
	"errors"
	"testing"

	"pyxis/internal/rpc"
)

// TestShardMapWarehouseBoundaries is the boundary table: for each
// (warehouses, shards) shape, every shard's first and last warehouse
// must map back to that shard, and the ranges must tile [1, W] exactly
// — contiguous, disjoint, nothing dropped.
func TestShardMapWarehouseBoundaries(t *testing.T) {
	shapes := []struct{ warehouses, shards int }{
		{1, 1}, {4, 1}, {4, 2}, {5, 2}, {4, 4}, {10, 3}, {7, 4}, {16, 5},
	}
	for _, sh := range shapes {
		m := ShardMap{Shards: sh.shards, Warehouses: sh.warehouses}
		next := int64(1)
		for s := 0; s < sh.shards; s++ {
			lo, hi := m.WarehouseRange(s)
			if lo != next {
				t.Errorf("%d/%d: shard %d range starts at %d, want %d (gap or overlap)",
					sh.warehouses, sh.shards, s, lo, next)
			}
			if hi < lo {
				t.Errorf("%d/%d: shard %d has empty range [%d,%d] despite warehouses >= shards",
					sh.warehouses, sh.shards, s, lo, hi)
				continue
			}
			// First and last warehouse of the range route home; so does
			// everything between (ranges are small enough to sweep).
			for w := lo; w <= hi; w++ {
				if got := m.Shard(w); got != s {
					t.Errorf("%d/%d: warehouse %d maps to shard %d, want %d",
						sh.warehouses, sh.shards, w, got, s)
				}
			}
			next = hi + 1
		}
		if next != int64(sh.warehouses)+1 {
			t.Errorf("%d/%d: ranges cover [1,%d], want [1,%d]",
				sh.warehouses, sh.shards, next-1, sh.warehouses)
		}
		// Range sizes differ by at most one warehouse.
		min, max := int64(1<<62), int64(0)
		for s := 0; s < sh.shards; s++ {
			lo, hi := m.WarehouseRange(s)
			size := hi - lo + 1
			if size < min {
				min = size
			}
			if size > max {
				max = size
			}
		}
		if max-min > 1 {
			t.Errorf("%d/%d: range sizes spread %d..%d, want balanced within 1",
				sh.warehouses, sh.shards, min, max)
		}
	}
}

// TestShardMapMoreShardsThanWarehouses: surplus shards get empty
// ranges (lo > hi) and never own a warehouse key.
func TestShardMapMoreShardsThanWarehouses(t *testing.T) {
	m := ShardMap{Shards: 5, Warehouses: 3}
	for w := int64(1); w <= 3; w++ {
		if got := m.Shard(w); got != int(w-1) {
			t.Errorf("warehouse %d maps to shard %d, want %d", w, got, w-1)
		}
	}
	for s := 3; s < 5; s++ {
		if lo, hi := m.WarehouseRange(s); lo <= hi {
			t.Errorf("surplus shard %d owns warehouses [%d,%d], want empty", s, lo, hi)
		}
	}
}

// TestShardMapHashFallback: keys outside the warehouse range (and all
// keys when Warehouses is 0) hash deterministically into [0, shards)
// and actually spread.
func TestShardMapHashFallback(t *testing.T) {
	for _, m := range []ShardMap{{Shards: 4}, {Shards: 4, Warehouses: 8}} {
		hit := make([]int, 4)
		for _, key := range []int64{0, -1, -500, 9, 10_000, 1 << 40} {
			s := m.Shard(key)
			if s < 0 || s >= 4 {
				t.Fatalf("key %d hashed to shard %d, out of [0,4)", key, s)
			}
			if again := m.Shard(key); again != s {
				t.Fatalf("key %d hashed to %d then %d (non-deterministic)", key, s, again)
			}
		}
		for key := int64(1000); key < 1200; key++ {
			hit[m.Shard(key)]++
		}
		for s, n := range hit {
			if n == 0 {
				t.Errorf("map %+v: hash fallback never picked shard %d: %v", m, s, hit)
			}
		}
	}
	// Unsharded and zero-value maps route everything to shard 0.
	for _, m := range []ShardMap{{}, {Shards: 1, Warehouses: 4}} {
		for _, key := range []int64{-3, 0, 1, 4, 99} {
			if got := m.Shard(key); got != 0 {
				t.Errorf("map %+v key %d -> shard %d, want 0", m, key, got)
			}
		}
	}
}

// TestParseShardSlot covers the -shard flag format.
func TestParseShardSlot(t *testing.T) {
	if shard, shards, err := ParseShardSlot("2/4"); err != nil || shard != 2 || shards != 4 {
		t.Errorf("ParseShardSlot(2/4) = %d, %d, %v", shard, shards, err)
	}
	if shard, shards, err := ParseShardSlot(" 0 / 1 "); err != nil || shard != 0 || shards != 1 {
		t.Errorf("ParseShardSlot(' 0 / 1 ') = %d, %d, %v", shard, shards, err)
	}
	for _, bad := range []string{"", "3", "4/4", "-1/4", "a/4", "1/b", "1/0", "1/-2"} {
		if _, _, err := ParseShardSlot(bad); err == nil {
			t.Errorf("ParseShardSlot(%q) accepted", bad)
		}
	}
}

// TestShardedClientPerShardEWMA pins the per-shard isolation of the
// load state: saturating shard 0's reports routes shard 0's sessions
// low while shard 1 — and only shard 1 — stays high.
func TestShardedClientPerShardEWMA(t *testing.T) {
	sc := NewShardedClient(ShardMap{Shards: 2, Warehouses: 4})
	if sc.NumShards() != 2 {
		t.Fatalf("NumShards = %d, want 2", sc.NumShards())
	}

	for k := 0; k < 30; k++ {
		sc.Observe(0, rpc.LoadReport{Load: 95})
		sc.Observe(1, rpc.LoadReport{Load: 5})
	}
	if !sc.Switcher(0).UseLowBudget() {
		t.Errorf("shard 0 saturated (EWMA %.1f) but not routed low", sc.Load(0))
	}
	if sc.Switcher(1).UseLowBudget() {
		t.Errorf("shard 1 idle (EWMA %.1f) but routed low — shard 0's load leaked", sc.Load(1))
	}
	if lo, hi := sc.Load(1), sc.Load(0); lo >= hi {
		t.Errorf("per-shard EWMAs blended: shard0=%.1f shard1=%.1f", hi, lo)
	}

	// Out-of-range shard indexes (a stale report after a resize) are
	// dropped, not a panic.
	sc.Observe(-1, rpc.LoadReport{Load: 50})
	sc.Observe(2, rpc.LoadReport{Load: 50})

	// HomeShard follows the map's warehouse ranges.
	if sc.HomeShard(1) != 0 || sc.HomeShard(4) != 1 {
		t.Errorf("HomeShard(1)=%d HomeShard(4)=%d, want 0 and 1", sc.HomeShard(1), sc.HomeShard(4))
	}
}

// TestShardMapBoundaries pins the edge-key contract: the range answer
// (overrides included) applies to keys in [1, Warehouses] only; keys 0
// and Warehouses+1 take the hash fallback even when ranges are
// configured, and in pure hash mode (Warehouses == 0) every key
// hashes. An override planted on an out-of-range key must be dead
// data.
func TestShardMapBoundaries(t *testing.T) {
	const W, N = 8, 4
	hash := func(key int64) int { return int(splitmix64(uint64(key)) % N) }
	rangeMode := ShardMap{Shards: N, Warehouses: W}
	hashMode := ShardMap{Shards: N}
	cases := []struct {
		key           int64
		wantRange     int // expected in range mode
		wantRangeMode string
	}{
		{0, hash(0), "hash"},           // below the range: fallback
		{1, 0, "range"},                // first warehouse: range answer
		{W, N - 1, "range"},            // last warehouse: range answer
		{W + 1, hash(W + 1), "hash"},   // above the range: fallback
	}
	for _, c := range cases {
		if got := rangeMode.Shard(c.key); got != c.wantRange {
			t.Errorf("range mode key %d -> shard %d, want %d (%s)", c.key, got, c.wantRange, c.wantRangeMode)
		}
		if got := hashMode.Shard(c.key); got != hash(c.key) {
			t.Errorf("hash mode key %d -> shard %d, want %d", c.key, got, hash(c.key))
		}
	}
	// Overrides re-home in-range keys only; out-of-range and corrupt
	// entries are ignored.
	over := ShardMap{Shards: N, Warehouses: W, Overrides: map[int64]int{
		1:     3,  // valid: warehouse 1 moves to shard 3
		0:     2,  // out of range: dead data
		W + 1: 2,  // out of range: dead data
		2:     99, // corrupt target: ignored
	}}
	if got := over.Shard(1); got != 3 {
		t.Errorf("override key 1 -> shard %d, want 3", got)
	}
	if got := over.Shard(0); got != hash(0) {
		t.Errorf("override on key 0 must stay dead: got shard %d, want hash %d", got, hash(0))
	}
	if got := over.Shard(W + 1); got != hash(W+1) {
		t.Errorf("override on key W+1 must stay dead: got shard %d, want hash %d", got, hash(W+1))
	}
	if got := over.Shard(2); got != rangeMode.Shard(2) {
		t.Errorf("corrupt override target must fall back to range: got %d", got)
	}
}

// TestShardMapWithMove covers the successor-map constructor and the
// override-aware ownership sets.
func TestShardMapWithMove(t *testing.T) {
	m := ShardMap{Shards: 2, Warehouses: 6}
	next := m.WithMove(1, 2, 1)
	if next.Epoch != 1 || m.Epoch != 0 {
		t.Fatalf("epochs: next=%d base=%d, want 1 and 0", next.Epoch, m.Epoch)
	}
	if m.Overrides != nil {
		t.Fatal("WithMove mutated the receiver's overrides")
	}
	want0, want1 := []int64{3}, []int64{1, 2, 4, 5, 6}
	got0, got1 := next.OwnedWarehouses(0), next.OwnedWarehouses(1)
	eq := func(a, b []int64) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if !eq(got0, want0) || !eq(got1, want1) {
		t.Fatalf("ownership after move: shard0=%v shard1=%v, want %v / %v", got0, got1, want0, want1)
	}
	// Every warehouse still has exactly one owner.
	owned := 0
	for s := 0; s < 2; s++ {
		owned += len(next.OwnedWarehouses(s))
	}
	if owned != 6 {
		t.Fatalf("ownership is not a partition: %d owned of 6", owned)
	}
	// Chained moves stack overrides and keep bumping the epoch.
	third := next.WithMove(3, 3, 1)
	if third.Epoch != 2 || third.Shard(3) != 1 || third.Shard(1) != 1 {
		t.Fatalf("chained move broken: epoch=%d shard(3)=%d shard(1)=%d", third.Epoch, third.Shard(3), third.Shard(1))
	}
}

// TestShardedClientPublish covers versioned routing: epoch
// monotonicity, re-routing through the published map, and the
// ErrWrongShard redirect.
func TestShardedClientPublish(t *testing.T) {
	base := ShardMap{Shards: 2, Warehouses: 4}
	sc := NewShardedClient(base)
	if sc.MapEpoch() != 0 {
		t.Fatalf("fresh client epoch %d, want 0", sc.MapEpoch())
	}
	if home := sc.HomeShard(1); home != 0 {
		t.Fatalf("warehouse 1 home %d, want 0", home)
	}
	if err := sc.VerifyHome(0, 1); err != nil {
		t.Fatalf("VerifyHome on the right shard: %v", err)
	}
	next := base.WithMove(1, 2, 1)
	if err := sc.Publish(next); err != nil {
		t.Fatal(err)
	}
	if sc.MapEpoch() != 1 || sc.HomeShard(1) != 1 {
		t.Fatalf("after publish: epoch=%d home(1)=%d, want 1/1", sc.MapEpoch(), sc.HomeShard(1))
	}
	if err := sc.VerifyHome(0, 1); !errors.Is(err, ErrWrongShard) {
		t.Fatalf("VerifyHome after move: got %v, want ErrWrongShard", err)
	}
	// Stale and same-epoch publishes are refused; shard-count changes too.
	if err := sc.Publish(next); err == nil {
		t.Fatal("same-epoch publish accepted")
	}
	if err := sc.Publish(ShardMap{Shards: 3, Warehouses: 4, Epoch: 9}); err == nil {
		t.Fatal("shard-count change accepted")
	}
	if sc.MapEpoch() != 1 {
		t.Fatalf("failed publishes moved the epoch to %d", sc.MapEpoch())
	}
}
