package runtime

import (
	"testing"

	"pyxis/internal/rpc"
)

// TestShardMapWarehouseBoundaries is the boundary table: for each
// (warehouses, shards) shape, every shard's first and last warehouse
// must map back to that shard, and the ranges must tile [1, W] exactly
// — contiguous, disjoint, nothing dropped.
func TestShardMapWarehouseBoundaries(t *testing.T) {
	shapes := []struct{ warehouses, shards int }{
		{1, 1}, {4, 1}, {4, 2}, {5, 2}, {4, 4}, {10, 3}, {7, 4}, {16, 5},
	}
	for _, sh := range shapes {
		m := ShardMap{Shards: sh.shards, Warehouses: sh.warehouses}
		next := int64(1)
		for s := 0; s < sh.shards; s++ {
			lo, hi := m.WarehouseRange(s)
			if lo != next {
				t.Errorf("%d/%d: shard %d range starts at %d, want %d (gap or overlap)",
					sh.warehouses, sh.shards, s, lo, next)
			}
			if hi < lo {
				t.Errorf("%d/%d: shard %d has empty range [%d,%d] despite warehouses >= shards",
					sh.warehouses, sh.shards, s, lo, hi)
				continue
			}
			// First and last warehouse of the range route home; so does
			// everything between (ranges are small enough to sweep).
			for w := lo; w <= hi; w++ {
				if got := m.Shard(w); got != s {
					t.Errorf("%d/%d: warehouse %d maps to shard %d, want %d",
						sh.warehouses, sh.shards, w, got, s)
				}
			}
			next = hi + 1
		}
		if next != int64(sh.warehouses)+1 {
			t.Errorf("%d/%d: ranges cover [1,%d], want [1,%d]",
				sh.warehouses, sh.shards, next-1, sh.warehouses)
		}
		// Range sizes differ by at most one warehouse.
		min, max := int64(1<<62), int64(0)
		for s := 0; s < sh.shards; s++ {
			lo, hi := m.WarehouseRange(s)
			size := hi - lo + 1
			if size < min {
				min = size
			}
			if size > max {
				max = size
			}
		}
		if max-min > 1 {
			t.Errorf("%d/%d: range sizes spread %d..%d, want balanced within 1",
				sh.warehouses, sh.shards, min, max)
		}
	}
}

// TestShardMapMoreShardsThanWarehouses: surplus shards get empty
// ranges (lo > hi) and never own a warehouse key.
func TestShardMapMoreShardsThanWarehouses(t *testing.T) {
	m := ShardMap{Shards: 5, Warehouses: 3}
	for w := int64(1); w <= 3; w++ {
		if got := m.Shard(w); got != int(w-1) {
			t.Errorf("warehouse %d maps to shard %d, want %d", w, got, w-1)
		}
	}
	for s := 3; s < 5; s++ {
		if lo, hi := m.WarehouseRange(s); lo <= hi {
			t.Errorf("surplus shard %d owns warehouses [%d,%d], want empty", s, lo, hi)
		}
	}
}

// TestShardMapHashFallback: keys outside the warehouse range (and all
// keys when Warehouses is 0) hash deterministically into [0, shards)
// and actually spread.
func TestShardMapHashFallback(t *testing.T) {
	for _, m := range []ShardMap{{Shards: 4}, {Shards: 4, Warehouses: 8}} {
		hit := make([]int, 4)
		for _, key := range []int64{0, -1, -500, 9, 10_000, 1 << 40} {
			s := m.Shard(key)
			if s < 0 || s >= 4 {
				t.Fatalf("key %d hashed to shard %d, out of [0,4)", key, s)
			}
			if again := m.Shard(key); again != s {
				t.Fatalf("key %d hashed to %d then %d (non-deterministic)", key, s, again)
			}
		}
		for key := int64(1000); key < 1200; key++ {
			hit[m.Shard(key)]++
		}
		for s, n := range hit {
			if n == 0 {
				t.Errorf("map %+v: hash fallback never picked shard %d: %v", m, s, hit)
			}
		}
	}
	// Unsharded and zero-value maps route everything to shard 0.
	for _, m := range []ShardMap{{}, {Shards: 1, Warehouses: 4}} {
		for _, key := range []int64{-3, 0, 1, 4, 99} {
			if got := m.Shard(key); got != 0 {
				t.Errorf("map %+v key %d -> shard %d, want 0", m, key, got)
			}
		}
	}
}

// TestParseShardSlot covers the -shard flag format.
func TestParseShardSlot(t *testing.T) {
	if shard, shards, err := ParseShardSlot("2/4"); err != nil || shard != 2 || shards != 4 {
		t.Errorf("ParseShardSlot(2/4) = %d, %d, %v", shard, shards, err)
	}
	if shard, shards, err := ParseShardSlot(" 0 / 1 "); err != nil || shard != 0 || shards != 1 {
		t.Errorf("ParseShardSlot(' 0 / 1 ') = %d, %d, %v", shard, shards, err)
	}
	for _, bad := range []string{"", "3", "4/4", "-1/4", "a/4", "1/b", "1/0", "1/-2"} {
		if _, _, err := ParseShardSlot(bad); err == nil {
			t.Errorf("ParseShardSlot(%q) accepted", bad)
		}
	}
}

// TestShardedClientPerShardEWMA pins the per-shard isolation of the
// load state: saturating shard 0's reports routes shard 0's sessions
// low while shard 1 — and only shard 1 — stays high.
func TestShardedClientPerShardEWMA(t *testing.T) {
	sc := NewShardedClient(ShardMap{Shards: 2, Warehouses: 4})
	if sc.NumShards() != 2 {
		t.Fatalf("NumShards = %d, want 2", sc.NumShards())
	}

	for k := 0; k < 30; k++ {
		sc.Observe(0, rpc.LoadReport{Load: 95})
		sc.Observe(1, rpc.LoadReport{Load: 5})
	}
	if !sc.Switcher(0).UseLowBudget() {
		t.Errorf("shard 0 saturated (EWMA %.1f) but not routed low", sc.Load(0))
	}
	if sc.Switcher(1).UseLowBudget() {
		t.Errorf("shard 1 idle (EWMA %.1f) but routed low — shard 0's load leaked", sc.Load(1))
	}
	if lo, hi := sc.Load(1), sc.Load(0); lo >= hi {
		t.Errorf("per-shard EWMAs blended: shard0=%.1f shard1=%.1f", hi, lo)
	}

	// Out-of-range shard indexes (a stale report after a resize) are
	// dropped, not a panic.
	sc.Observe(-1, rpc.LoadReport{Load: 50})
	sc.Observe(2, rpc.LoadReport{Load: 50})

	// HomeShard follows the map's warehouse ranges.
	if sc.HomeShard(1) != 0 || sc.HomeShard(4) != 1 {
		t.Errorf("HomeShard(1)=%d HomeShard(4)=%d, want 0 and 1", sc.HomeShard(1), sc.HomeShard(4))
	}
}
