package analysis

import (
	"testing"

	"pyxis/internal/source"
)

const testSrc = `
class Helper {
    int calls;

    Helper() {
        calls = 0;
    }

    int bump(int x) {
        calls++;
        return x + 1;
    }
}

class Main {
    int total;
    int[] data;
    Helper h;

    Main() {
        total = 0;
    }

    entry int run(int n) {
        h = new Helper();
        data = new int[n];
        int i = 0;
        while (i < n) {
            data[i] = h.bump(i);
            i++;
        }
        int s = 0;
        for (int v : data) {
            s += v;
        }
        if (s > 10) {
            total = s;
        } else {
            total = -s;
        }
        return total;
    }
}
`

func load(t *testing.T) (*source.Program, *Result) {
	t.Helper()
	prog, err := source.Load(testSrc)
	if err != nil {
		t.Fatal(err)
	}
	return prog, Run(prog)
}

func stmtByLabel(t *testing.T, prog *source.Program, pred func(source.Stmt) bool) source.Stmt {
	t.Helper()
	for _, s := range prog.Stmts {
		if pred(s) {
			return s
		}
	}
	t.Fatal("statement not found")
	return nil
}

func TestCFGShape(t *testing.T) {
	prog, _ := load(t)
	m := prog.Method("Main", "run")
	cfg := BuildCFG(m)
	// Entry and exit plus every statement.
	stmts := 0
	source.WalkMethodStmts(m, func(source.Stmt) bool { stmts++; return true })
	if len(cfg.Nodes) != stmts+2 {
		t.Fatalf("cfg nodes = %d, want %d", len(cfg.Nodes), stmts+2)
	}
	// Every statement node must be reachable from entry.
	seen := map[int]bool{Entry: true}
	stack := []int{Entry}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range cfg.Nodes[u].Succs {
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	for i := range cfg.Nodes {
		if !seen[i] {
			t.Errorf("cfg node %d unreachable", i)
		}
	}
}

func TestPostDominators(t *testing.T) {
	prog, _ := load(t)
	cfg := BuildCFG(prog.Method("Main", "run"))
	ipdom := cfg.PostDominators()
	if ipdom[Exit] != Exit {
		t.Error("exit must post-dominate itself")
	}
	// Every node's ipdom chain must reach Exit.
	for i := range cfg.Nodes {
		if i == Exit {
			continue
		}
		seen := map[int]bool{}
		cur := i
		for cur != Exit {
			if cur < 0 || seen[cur] {
				t.Fatalf("node %d: broken ipdom chain", i)
			}
			seen[cur] = true
			cur = ipdom[cur]
		}
	}
}

// TestControlDepsMatchStructure: for break-free structured programs,
// post-dominator-based control dependence must equal the syntactic
// nesting structure (loop/if bodies depend on their headers).
func TestControlDepsMatchStructure(t *testing.T) {
	prog, res := load(t)
	for m, mi := range res.Methods {
		// Build the structural oracle.
		want := map[source.NodeID]map[source.NodeID]bool{}
		var visit func(b *source.Block, ctrl source.NodeID)
		visit = func(b *source.Block, ctrl source.NodeID) {
			for _, s := range b.Stmts {
				if want[s.ID()] == nil {
					want[s.ID()] = map[source.NodeID]bool{}
				}
				want[s.ID()][ctrl] = true
				switch st := s.(type) {
				case *source.IfStmt:
					visit(st.Then, s.ID())
					if st.Else != nil {
						visit(st.Else, s.ID())
					}
				case *source.WhileStmt:
					visit(st.Body, s.ID())
				case *source.ForEachStmt:
					visit(st.Body, s.ID())
				}
			}
		}
		visit(m.Body, source.NoNode)
		for sid, ctrls := range mi.CtrlDeps {
			for _, c := range ctrls {
				// Loop headers may be control dependent on themselves
				// (back edge); the structural oracle doesn't model that.
				if c == sid {
					continue
				}
				if !want[sid][c] {
					t.Errorf("%s: stmt %d control-dependent on %d, not in structural oracle", m.QName(), sid, c)
				}
			}
		}
	}
	_ = prog
}

func TestPointsToArrayAndField(t *testing.T) {
	prog, res := load(t)
	m := prog.Method("Main", "run")
	// data = new int[n]: the local `data`... actually `data` is a field.
	var dataField *source.Field
	for _, f := range prog.Class("Main").Fields {
		if f.Name == "data" {
			dataField = f
		}
	}
	sites := res.PT.FieldSites(dataField)
	if len(sites) != 1 {
		t.Fatalf("field data points to %d sites, want 1", len(sites))
	}
	// The foreach over `data` must read the same site.
	fe := stmtByLabel(t, prog, func(s source.Stmt) bool {
		_, ok := s.(*source.ForEachStmt)
		return ok
	})
	eff := res.Effects[fe.ID()]
	if len(eff.ArrReads) == 0 {
		t.Fatal("foreach should read an array")
	}
	got := res.PT.Sites(eff.ArrReads[0])
	for s := range sites {
		if !got[s] {
			t.Errorf("foreach misses alloc site %d", s)
		}
	}
	_ = m
}

func TestDefUseThroughLoop(t *testing.T) {
	prog, res := load(t)
	// `s += v` uses the def of s from `int s = 0` AND its own def
	// (loop-carried).
	target := stmtByLabel(t, prog, func(s source.Stmt) bool {
		as, ok := s.(*source.AssignStmt)
		if !ok || as.Op != source.AsnAdd {
			return false
		}
		v, ok := as.LHS.(*source.VarExpr)
		return ok && v.Local.Name == "s"
	})
	defs := map[source.NodeID]bool{}
	for _, du := range res.DefUse {
		if du.To == target.ID() && du.Local.Name == "s" {
			defs[du.From] = true
		}
	}
	if len(defs) < 2 {
		t.Errorf("s += v should see 2 reaching defs (init + loop-carried), got %d", len(defs))
	}
	if !defs[target.ID()] {
		t.Error("loop-carried def missing")
	}
}

func TestSummariesTransitive(t *testing.T) {
	prog, res := load(t)
	runM := prog.Method("Main", "run")
	sum := res.Summaries[runM]
	var callsField *source.Field
	for _, f := range prog.Class("Helper").Fields {
		if f.Name == "calls" {
			callsField = f
		}
	}
	// run() calls h.bump() which writes Helper.calls: the summary must
	// include it transitively.
	if !sum.WriteFields[callsField] {
		t.Error("run's summary should include Helper.calls (via bump)")
	}
}

func TestFieldDepsAndCallEdges(t *testing.T) {
	prog, res := load(t)
	wantWrite := false
	for _, fd := range res.FieldDeps {
		if fd.Field.Name == "total" && fd.Write {
			wantWrite = true
		}
	}
	if !wantWrite {
		t.Error("total writes missing from FieldDeps")
	}
	foundCall := false
	for _, ce := range res.Calls {
		if ce.Callee.QName() == "Helper.bump" {
			foundCall = true
			if ce.ArgBytes <= 0 {
				t.Error("call edge should estimate arg bytes")
			}
		}
	}
	if !foundCall {
		t.Error("Helper.bump call edge missing")
	}
	foundRet := false
	for _, re := range res.Returns {
		m := res.StmtMethod[re.Ret]
		if m != nil && m.QName() == "Helper.bump" {
			foundRet = true
		}
	}
	if !foundRet {
		t.Error("Helper.bump return edge missing")
	}
	_ = prog
}

func TestConflictsRespectDomains(t *testing.T) {
	prog, err := source.Load(`
class C {
    int x;
    C() { x = 0; }
    entry void f(int a) {
        sys.print(a);
        db.update("UPDATE t SET v = 1 WHERE k = 1");
        x = a;
        int y = x + 1;
        sys.print(y);
    }
}`)
	if err != nil {
		t.Fatal(err)
	}
	res := Run(prog)
	var print1, dbStmt, xWrite, yDecl, print2 source.Stmt
	for _, s := range prog.Stmts {
		switch {
		case source.HasPrint(s) && print1 == nil:
			print1 = s
		case source.HasDBCall(s):
			dbStmt = s
		}
		if as, ok := s.(*source.AssignStmt); ok {
			if fe, ok := as.LHS.(*source.FieldExpr); ok && fe.Field.Name == "x" {
				xWrite = s
			}
		}
		if d, ok := s.(*source.DeclStmt); ok && d.Local.Name == "y" {
			yDecl = s
		}
	}
	for _, s := range prog.Stmts {
		if source.HasPrint(s) && s != print1 {
			print2 = s
		}
	}
	if print1 == nil || dbStmt == nil || xWrite == nil || yDecl == nil || print2 == nil {
		t.Fatal("fixture statements not found")
	}
	// Console and DB are independent effect domains.
	if res.ConflictWW(print1.ID(), dbStmt.ID()) {
		t.Error("print and db.update should not WW-conflict")
	}
	// Two prints are ordered.
	if !res.ConflictWW(print1.ID(), print2.ID()) {
		t.Error("two prints must conflict")
	}
	// Field flow: x = a; y = x + 1 must RW-conflict.
	if !res.ConflictRW(xWrite.ID(), yDecl.ID()) {
		t.Error("x write and x read must conflict")
	}
}
