// Package analysis implements the static analyses Pyxis needs to build
// the partition graph (paper §4.2): control-flow graphs,
// post-dominator-based control dependence, an Andersen-style points-to
// analysis, and interprocedural def/use (reaching definitions plus
// field update/use and array-element dependencies).
package analysis

import (
	"fmt"
	"strings"

	"pyxis/internal/source"
)

// CFG is the control-flow graph of one method. Node 0 is the synthetic
// entry; node 1 is the synthetic exit; the remaining nodes are
// statements.
type CFG struct {
	Method *source.Method
	Nodes  []CFGNode
	// ByStmt maps statement NodeIDs to CFG node indices.
	ByStmt map[source.NodeID]int
}

// CFGNode is one CFG vertex.
type CFGNode struct {
	Stmt  source.Stmt // nil for entry/exit
	Succs []int
	Preds []int
}

// Entry and Exit are the indices of the synthetic entry/exit nodes.
const (
	Entry = 0
	Exit  = 1
)

// BuildCFG constructs the CFG of m.
func BuildCFG(m *source.Method) *CFG {
	g := &CFG{Method: m, ByStmt: map[source.NodeID]int{}}
	g.Nodes = append(g.Nodes, CFGNode{}, CFGNode{}) // entry, exit

	b := &cfgBuilder{g: g}
	frontier := []int{Entry}
	frontier = b.block(m.Body, frontier)
	for _, f := range frontier {
		b.edge(f, Exit)
	}
	// Augment: entry → exit, so exit post-dominates everything even
	// with infinite loops (standard CD augmentation).
	b.edge(Entry, Exit)
	return g
}

type cfgBuilder struct {
	g      *CFG
	breaks [][]int // stack of break-target collectors
}

func (b *cfgBuilder) newNode(s source.Stmt) int {
	idx := len(b.g.Nodes)
	b.g.Nodes = append(b.g.Nodes, CFGNode{Stmt: s})
	b.g.ByStmt[s.ID()] = idx
	return idx
}

func (b *cfgBuilder) edge(from, to int) {
	b.g.Nodes[from].Succs = append(b.g.Nodes[from].Succs, to)
	b.g.Nodes[to].Preds = append(b.g.Nodes[to].Preds, from)
}

// block threads the frontier (dangling edges) through the statements
// of a block and returns the new frontier.
func (b *cfgBuilder) block(blk *source.Block, frontier []int) []int {
	for _, s := range blk.Stmts {
		frontier = b.stmt(s, frontier)
	}
	return frontier
}

func (b *cfgBuilder) stmt(s source.Stmt, frontier []int) []int {
	switch st := s.(type) {
	case *source.IfStmt:
		cond := b.newNode(s)
		for _, f := range frontier {
			b.edge(f, cond)
		}
		thenOut := b.block(st.Then, []int{cond})
		if st.Else != nil {
			elseOut := b.block(st.Else, []int{cond})
			return append(thenOut, elseOut...)
		}
		return append(thenOut, cond)

	case *source.WhileStmt:
		head := b.newNode(s)
		for _, f := range frontier {
			b.edge(f, head)
		}
		b.breaks = append(b.breaks, nil)
		bodyOut := b.block(st.Body, []int{head})
		for _, f := range bodyOut {
			b.edge(f, head) // back edge
		}
		broke := b.breaks[len(b.breaks)-1]
		b.breaks = b.breaks[:len(b.breaks)-1]
		return append([]int{head}, broke...)

	case *source.ForEachStmt:
		head := b.newNode(s)
		for _, f := range frontier {
			b.edge(f, head)
		}
		b.breaks = append(b.breaks, nil)
		bodyOut := b.block(st.Body, []int{head})
		for _, f := range bodyOut {
			b.edge(f, head)
		}
		broke := b.breaks[len(b.breaks)-1]
		b.breaks = b.breaks[:len(b.breaks)-1]
		return append([]int{head}, broke...)

	case *source.ReturnStmt:
		n := b.newNode(s)
		for _, f := range frontier {
			b.edge(f, n)
		}
		b.edge(n, Exit)
		return nil

	case *source.BreakStmt:
		n := b.newNode(s)
		for _, f := range frontier {
			b.edge(f, n)
		}
		if len(b.breaks) > 0 {
			top := len(b.breaks) - 1
			b.breaks[top] = append(b.breaks[top], n)
		}
		return nil

	default:
		n := b.newNode(s)
		for _, f := range frontier {
			b.edge(f, n)
		}
		return []int{n}
	}
}

// String renders the CFG for debugging.
func (g *CFG) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "cfg %s:\n", g.Method.QName())
	for i, n := range g.Nodes {
		label := "entry"
		switch {
		case i == Exit:
			label = "exit"
		case n.Stmt != nil:
			label = fmt.Sprintf("s%d(%T)", n.Stmt.ID(), n.Stmt)
		}
		fmt.Fprintf(&sb, "  %2d %-24s -> %v\n", i, label, n.Succs)
	}
	return sb.String()
}

// PostDominators computes the immediate post-dominator of every node
// using the iterative Cooper-Harvey-Kennedy algorithm on the reverse
// CFG rooted at Exit. ipdom[Exit] == Exit. Unreachable-to-exit nodes
// (none, given the entry→exit augmentation) get -1.
func (g *CFG) PostDominators() []int {
	n := len(g.Nodes)
	// Reverse post-order of the reverse CFG (i.e., order from Exit).
	order := make([]int, 0, n)
	seen := make([]bool, n)
	var dfs func(u int)
	dfs = func(u int) {
		seen[u] = true
		for _, p := range g.Nodes[u].Preds {
			if !seen[p] {
				dfs(p)
			}
		}
		order = append(order, u) // post-order
	}
	dfs(Exit)
	// Process in reverse post-order of reverse graph.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	rpoNum := make([]int, n)
	for i := range rpoNum {
		rpoNum[i] = -1
	}
	for i, u := range order {
		rpoNum[u] = i
	}

	ipdom := make([]int, n)
	for i := range ipdom {
		ipdom[i] = -1
	}
	ipdom[Exit] = Exit

	intersect := func(a, b int) int {
		for a != b {
			for rpoNum[a] > rpoNum[b] {
				a = ipdom[a]
			}
			for rpoNum[b] > rpoNum[a] {
				b = ipdom[b]
			}
		}
		return a
	}

	changed := true
	for changed {
		changed = false
		for _, u := range order {
			if u == Exit {
				continue
			}
			newIdom := -1
			for _, s := range g.Nodes[u].Succs {
				if ipdom[s] == -1 && s != Exit {
					continue
				}
				if rpoNum[s] == -1 {
					continue
				}
				if newIdom == -1 {
					newIdom = s
				} else {
					newIdom = intersect(newIdom, s)
				}
			}
			if newIdom != -1 && ipdom[u] != newIdom {
				ipdom[u] = newIdom
				changed = true
			}
		}
	}
	return ipdom
}

// ControlDeps computes intraprocedural control dependencies with the
// Ferrante-Ottenstein-Warren construction: for each CFG edge u→v where
// v does not post-dominate u, every node on the post-dominator-tree
// path from v up to (but excluding) ipdom(u) is control dependent on
// u. The result maps statement NodeIDs to the statement NodeIDs that
// control them; statements controlled by the method entry are mapped
// to source.NoNode.
func (g *CFG) ControlDeps() map[source.NodeID][]source.NodeID {
	ipdom := g.PostDominators()
	deps := map[int]map[int]bool{} // dependent cfg node -> controlling cfg nodes
	for u := range g.Nodes {
		for _, v := range g.Nodes[u].Succs {
			// Walk from v toward the root until ipdom[u].
			runner := v
			for runner != -1 && runner != ipdom[u] && runner != Exit {
				if runner != u {
					if deps[runner] == nil {
						deps[runner] = map[int]bool{}
					}
					deps[runner][u] = true
				}
				runner = ipdom[runner]
			}
			// Loop headers can be control dependent on themselves
			// (runner == u case): record that too.
			if runner == u {
				if deps[runner] == nil {
					deps[runner] = map[int]bool{}
				}
				deps[runner][u] = true
			}
		}
	}

	out := map[source.NodeID][]source.NodeID{}
	for idx, ctrls := range deps {
		n := g.Nodes[idx]
		if n.Stmt == nil {
			continue
		}
		for c := range ctrls {
			var cid source.NodeID
			if c == Entry {
				cid = source.NoNode
			} else if g.Nodes[c].Stmt != nil {
				cid = g.Nodes[c].Stmt.ID()
			} else {
				continue
			}
			out[n.Stmt.ID()] = append(out[n.Stmt.ID()], cid)
		}
	}
	// Statements with no recorded controller are controlled by entry.
	for _, n := range g.Nodes {
		if n.Stmt == nil {
			continue
		}
		if _, ok := out[n.Stmt.ID()]; !ok {
			out[n.Stmt.ID()] = []source.NodeID{source.NoNode}
		}
	}
	return out
}
