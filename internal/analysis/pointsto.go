package analysis

import (
	"pyxis/internal/source"
)

// PointsTo is a flow-insensitive, field-based, Andersen-style
// points-to analysis over allocation sites. The paper uses a
// "2full+1H" object-sensitive analysis; ours is context-insensitive —
// strictly more conservative, which the partition graph construction
// permits (extra dependencies only add superfluous synchronization,
// never unsoundness).
//
// Abstract objects are allocation sites: `new C(...)`, `new T[n]`, and
// db.query(...) result tables, identified by the parser's AllocID.
type PointsTo struct {
	Prog *source.Program

	// AllocStmt maps an allocation site to the statement containing it.
	AllocStmt map[int]source.NodeID

	locals  map[*source.Local]*ptSet
	fields  map[*source.Field]*ptSet
	elems   map[int]*ptSet // array alloc site -> element points-to
	returns map[*source.Method]*ptSet

	stmtMethod map[source.NodeID]*source.Method
	changed    bool
}

type ptSet struct {
	m map[int]bool
}

func newPTSet() *ptSet { return &ptSet{m: map[int]bool{}} }

func (s *ptSet) addAll(o *ptSet) bool {
	if o == nil {
		return false
	}
	grew := false
	for k := range o.m {
		if !s.m[k] {
			s.m[k] = true
			grew = true
		}
	}
	return grew
}

func (s *ptSet) add(site int) bool {
	if s.m[site] {
		return false
	}
	s.m[site] = true
	return true
}

// Analyze runs the analysis to a fixpoint.
func Analyze(prog *source.Program) *PointsTo {
	pt := &PointsTo{
		Prog:      prog,
		AllocStmt: map[int]source.NodeID{},
		locals:    map[*source.Local]*ptSet{},
		fields:    map[*source.Field]*ptSet{},
		elems:     map[int]*ptSet{},
		returns:   map[*source.Method]*ptSet{},
	}
	// Record allocation sites.
	for _, cl := range prog.Classes {
		for _, m := range cl.Methods {
			source.WalkMethodStmts(m, func(s source.Stmt) bool {
				source.WalkExprs(s, func(e source.Expr) {
					switch x := e.(type) {
					case *source.NewObjectExpr:
						pt.AllocStmt[x.AllocID] = s.ID()
					case *source.NewArrayExpr:
						pt.AllocStmt[x.AllocID] = s.ID()
					case *source.BuiltinExpr:
						if x.B == source.BQuery {
							pt.AllocStmt[x.AllocID] = s.ID()
						}
					}
				})
				return true
			})
		}
	}

	// Iterate transfer functions to a fixpoint.
	for {
		pt.changed = false
		for _, cl := range prog.Classes {
			for _, m := range cl.Methods {
				source.WalkMethodStmts(m, func(s source.Stmt) bool {
					pt.transfer(s)
					return true
				})
			}
		}
		if !pt.changed {
			return pt
		}
	}
}

func (pt *PointsTo) localSet(l *source.Local) *ptSet {
	s, ok := pt.locals[l]
	if !ok {
		s = newPTSet()
		pt.locals[l] = s
	}
	return s
}

func (pt *PointsTo) fieldSet(f *source.Field) *ptSet {
	s, ok := pt.fields[f]
	if !ok {
		s = newPTSet()
		pt.fields[f] = s
	}
	return s
}

func (pt *PointsTo) elemSet(site int) *ptSet {
	s, ok := pt.elems[site]
	if !ok {
		s = newPTSet()
		pt.elems[site] = s
	}
	return s
}

func (pt *PointsTo) returnSet(m *source.Method) *ptSet {
	s, ok := pt.returns[m]
	if !ok {
		s = newPTSet()
		pt.returns[m] = s
	}
	return s
}

// eval returns the points-to set of a (possibly scalar) expression.
// Scalar expressions return an empty set. It also applies call
// side-effects (argument binding) as it encounters calls.
func (pt *PointsTo) eval(e source.Expr) *ptSet {
	out := newPTSet()
	switch x := e.(type) {
	case nil:
	case *source.VarExpr:
		out.addAll(pt.localSet(x.Local))
	case *source.FieldExpr:
		pt.eval(x.Recv)
		out.addAll(pt.fieldSet(x.Field))
	case *source.IndexExpr:
		arr := pt.eval(x.Arr)
		pt.eval(x.Idx)
		for site := range arr.m {
			out.addAll(pt.elemSet(site))
		}
	case *source.NewObjectExpr:
		out.add(x.AllocID)
		pt.bindCtor(x)
	case *source.NewArrayExpr:
		pt.eval(x.Len)
		out.add(x.AllocID)
	case *source.BuiltinExpr:
		pt.eval(x.Recv)
		for _, a := range x.Args {
			pt.eval(a)
		}
		if x.B == source.BQuery {
			out.add(x.AllocID)
		}
	case *source.CallExpr:
		pt.eval(x.Recv)
		for i, a := range x.Args {
			as := pt.eval(a)
			if i < len(x.Method.Params) {
				if pt.localSet(x.Method.Params[i]).addAll(as) {
					pt.changed = true
				}
			}
		}
		out.addAll(pt.returnSet(x.Method))
	case *source.BinaryExpr:
		pt.eval(x.L)
		pt.eval(x.R)
	case *source.UnaryExpr:
		pt.eval(x.X)
	case *source.ConvExpr:
		pt.eval(x.X)
	}
	return out
}

func (pt *PointsTo) bindCtor(x *source.NewObjectExpr) {
	if x.Ctor == nil {
		return
	}
	for i, a := range x.Args {
		as := pt.eval(a)
		if i < len(x.Ctor.Params) {
			if pt.localSet(x.Ctor.Params[i]).addAll(as) {
				pt.changed = true
			}
		}
	}
}

func (pt *PointsTo) transfer(s source.Stmt) {
	switch st := s.(type) {
	case *source.DeclStmt:
		if st.Init != nil {
			if pt.localSet(st.Local).addAll(pt.eval(st.Init)) {
				pt.changed = true
			}
		}
	case *source.AssignStmt:
		rhs := pt.eval(st.RHS)
		switch lhs := st.LHS.(type) {
		case *source.VarExpr:
			if pt.localSet(lhs.Local).addAll(rhs) {
				pt.changed = true
			}
		case *source.FieldExpr:
			pt.eval(lhs.Recv)
			if pt.fieldSet(lhs.Field).addAll(rhs) {
				pt.changed = true
			}
		case *source.IndexExpr:
			arr := pt.eval(lhs.Arr)
			pt.eval(lhs.Idx)
			for site := range arr.m {
				if pt.elemSet(site).addAll(rhs) {
					pt.changed = true
				}
			}
		}
	case *source.ExprStmt:
		pt.eval(st.X)
	case *source.IfStmt:
		pt.eval(st.Cond)
	case *source.WhileStmt:
		pt.eval(st.Cond)
	case *source.ForEachStmt:
		arr := pt.eval(st.Arr)
		for site := range arr.m {
			if pt.localSet(st.Var).addAll(pt.elemSet(site)) {
				pt.changed = true
			}
		}
	case *source.ReturnStmt:
		if st.X != nil {
			m := pt.methodOf(s)
			if m != nil {
				if pt.returnSet(m).addAll(pt.eval(st.X)) {
					pt.changed = true
				}
			} else {
				pt.eval(st.X)
			}
		}
	}
}

// methodOf finds the method containing statement s (cached lazily).
func (pt *PointsTo) methodOf(s source.Stmt) *source.Method {
	if pt.stmtMethod == nil {
		pt.stmtMethod = map[source.NodeID]*source.Method{}
		for _, cl := range pt.Prog.Classes {
			for _, m := range cl.Methods {
				m := m
				source.WalkMethodStmts(m, func(st source.Stmt) bool {
					pt.stmtMethod[st.ID()] = m
					return true
				})
			}
		}
	}
	return pt.stmtMethod[s.ID()]
}

// Sites returns the allocation sites an array/table expression may
// denote, as a sorted-stable map.
func (pt *PointsTo) Sites(e source.Expr) map[int]bool {
	return pt.eval(e).m
}

// LocalSites returns the sites a local may point to.
func (pt *PointsTo) LocalSites(l *source.Local) map[int]bool { return pt.localSet(l).m }

// FieldSites returns the sites a field may point to.
func (pt *PointsTo) FieldSites(f *source.Field) map[int]bool { return pt.fieldSet(f).m }
