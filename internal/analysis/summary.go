package analysis

import "pyxis/internal/source"

// MethodSummary is the transitive heap effect of calling a method:
// which fields and array allocation sites it may read or write, and
// whether it performs externally visible operations (database calls,
// console output). The paper summarizes callee side-effects at call
// sites (§4.4 footnote); these summaries feed the output/anti ordering
// edges so the statement reordering never migrates a call across a
// conflicting access.
type MethodSummary struct {
	ReadFields  map[*source.Field]bool
	WriteFields map[*source.Field]bool
	ReadSites   map[int]bool
	WriteSites  map[int]bool
	// DBEffect / ConsoleEffect mark externally visible operations in
	// their respective effect domains; statements conflict only within
	// a domain (database operations are mutually ordered, console
	// output is mutually ordered, but a print may reorder with a
	// database call).
	DBEffect      bool
	ConsoleEffect bool
}

func newSummary() *MethodSummary {
	return &MethodSummary{
		ReadFields:  map[*source.Field]bool{},
		WriteFields: map[*source.Field]bool{},
		ReadSites:   map[int]bool{},
		WriteSites:  map[int]bool{},
	}
}

// absorb merges o into s, reporting growth.
func (s *MethodSummary) absorb(o *MethodSummary) bool {
	grew := false
	for f := range o.ReadFields {
		if !s.ReadFields[f] {
			s.ReadFields[f] = true
			grew = true
		}
	}
	for f := range o.WriteFields {
		if !s.WriteFields[f] {
			s.WriteFields[f] = true
			grew = true
		}
	}
	for a := range o.ReadSites {
		if !s.ReadSites[a] {
			s.ReadSites[a] = true
			grew = true
		}
	}
	for a := range o.WriteSites {
		if !s.WriteSites[a] {
			s.WriteSites[a] = true
			grew = true
		}
	}
	if o.DBEffect && !s.DBEffect {
		s.DBEffect = true
		grew = true
	}
	if o.ConsoleEffect && !s.ConsoleEffect {
		s.ConsoleEffect = true
		grew = true
	}
	return grew
}

// computeSummaries builds per-method transitive effect summaries to a
// fixpoint over the (possibly recursive) call graph.
func (res *Result) computeSummaries() {
	res.Summaries = map[*source.Method]*MethodSummary{}
	for m := range res.Methods {
		res.Summaries[m] = newSummary()
	}
	// Direct effects.
	for sid, eff := range res.Effects {
		m := res.StmtMethod[sid]
		sum := res.Summaries[m]
		for _, f := range eff.ReadFields {
			sum.ReadFields[f] = true
		}
		for _, f := range eff.WriteFields {
			sum.WriteFields[f] = true
		}
		for _, ae := range eff.ArrReads {
			for site := range res.PT.Sites(ae) {
				sum.ReadSites[site] = true
			}
		}
		for _, ae := range eff.ArrWrites {
			for site := range res.PT.Sites(ae) {
				sum.WriteSites[site] = true
			}
		}
		for _, b := range eff.Builtins {
			if b.B.IsDB() {
				sum.DBEffect = true
			}
			if b.B == source.BPrint {
				sum.ConsoleEffect = true
			}
		}
	}
	// Transitive closure over calls (including constructors).
	for {
		changed := false
		for _, ce := range res.Calls {
			caller := res.StmtMethod[ce.Stmt]
			if res.Summaries[caller].absorb(res.Summaries[ce.Callee]) {
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

// EffectiveEffects returns the statement's effects with callee
// summaries folded in — the read/write sets a reordering must respect.
type EffectiveEffects struct {
	ReadFields    map[*source.Field]bool
	WriteFields   map[*source.Field]bool
	ReadSites     map[int]bool
	WriteSites    map[int]bool
	ReadLocals    []*source.Local
	WriteLocals   []*source.Local
	DBEffect      bool
	ConsoleEffect bool
}

// Effective computes the call-summarized effects of a statement.
func (res *Result) Effective(sid source.NodeID) *EffectiveEffects {
	if ee, ok := res.effCache[sid]; ok {
		return ee
	}
	eff := res.Effects[sid]
	ee := &EffectiveEffects{
		ReadFields:  map[*source.Field]bool{},
		WriteFields: map[*source.Field]bool{},
		ReadSites:   map[int]bool{},
		WriteSites:  map[int]bool{},
		ReadLocals:  eff.ReadLocals,
		WriteLocals: eff.WriteLocals,
	}
	for _, f := range eff.ReadFields {
		ee.ReadFields[f] = true
	}
	for _, f := range eff.WriteFields {
		ee.WriteFields[f] = true
	}
	for _, ae := range eff.ArrReads {
		for site := range res.PT.Sites(ae) {
			ee.ReadSites[site] = true
		}
	}
	for _, ae := range eff.ArrWrites {
		for site := range res.PT.Sites(ae) {
			ee.WriteSites[site] = true
		}
	}
	for _, b := range eff.Builtins {
		if b.B.IsDB() {
			ee.DBEffect = true
		}
		if b.B == source.BPrint {
			ee.ConsoleEffect = true
		}
	}
	fold := func(m *source.Method) {
		sum := res.Summaries[m]
		if sum == nil {
			return
		}
		for f := range sum.ReadFields {
			ee.ReadFields[f] = true
		}
		for f := range sum.WriteFields {
			ee.WriteFields[f] = true
		}
		for a := range sum.ReadSites {
			ee.ReadSites[a] = true
		}
		for a := range sum.WriteSites {
			ee.WriteSites[a] = true
		}
		if sum.DBEffect {
			ee.DBEffect = true
		}
		if sum.ConsoleEffect {
			ee.ConsoleEffect = true
		}
	}
	for _, c := range eff.Calls {
		fold(c.Method)
	}
	source.WalkExprs(res.Prog.Stmts[sid], func(e source.Expr) {
		if nx, ok := e.(*source.NewObjectExpr); ok && nx.Ctor != nil {
			fold(nx.Ctor)
		}
	})
	res.effCache[sid] = ee
	return ee
}

func overlapF(x, y map[*source.Field]bool) bool {
	for f := range x {
		if y[f] {
			return true
		}
	}
	return false
}

func overlapS(x, y map[int]bool) bool {
	for s := range x {
		if y[s] {
			return true
		}
	}
	return false
}

func overlapL(x, y []*source.Local) bool {
	for _, l := range x {
		for _, m := range y {
			if l == m {
				return true
			}
		}
	}
	return false
}

// ConflictWW reports a write/write (output-dependence) conflict
// between two statements, with callee effects summarized in. Pairs of
// externally visible statements (DB, console) are ordered as writes.
func (res *Result) ConflictWW(a, b source.NodeID) bool {
	ea, eb := res.Effective(a), res.Effective(b)
	if ea.DBEffect && eb.DBEffect {
		return true
	}
	if ea.ConsoleEffect && eb.ConsoleEffect {
		return true
	}
	return overlapF(ea.WriteFields, eb.WriteFields) ||
		overlapS(ea.WriteSites, eb.WriteSites) ||
		overlapL(ea.WriteLocals, eb.WriteLocals)
}

// ConflictRW reports a read/write (anti- or flow-dependence) conflict
// in either direction between two statements.
func (res *Result) ConflictRW(a, b source.NodeID) bool {
	ea, eb := res.Effective(a), res.Effective(b)
	return overlapF(ea.ReadFields, eb.WriteFields) || overlapF(eb.ReadFields, ea.WriteFields) ||
		overlapS(ea.ReadSites, eb.WriteSites) || overlapS(eb.ReadSites, ea.WriteSites) ||
		overlapL(ea.ReadLocals, eb.WriteLocals) || overlapL(eb.ReadLocals, ea.WriteLocals)
}

// Conflicts reports whether two statements conflict in any way.
func (res *Result) Conflicts(a, b source.NodeID) bool {
	return res.ConflictWW(a, b) || res.ConflictRW(a, b)
}
