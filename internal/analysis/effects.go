package analysis

import "pyxis/internal/source"

// Effects summarizes what one statement directly reads and writes:
// locals, fields (by declaration — the analysis is field-based), and
// arrays (by the array-valued expression, resolved to allocation sites
// by the points-to analysis). Calls are listed so interprocedural
// edges can be added; effects of callees are NOT folded in here.
type Effects struct {
	ReadLocals  []*source.Local
	WriteLocals []*source.Local
	ReadFields  []*source.Field
	WriteFields []*source.Field
	// ArrReads/ArrWrites hold array-valued expressions whose elements
	// are read/written by this statement.
	ArrReads  []source.Expr
	ArrWrites []source.Expr
	Calls     []*source.CallExpr
	Builtins  []*source.BuiltinExpr
	// Returns is the returned expression for return statements.
	Returns source.Expr
}

// StmtEffects computes the direct effects of s.
func StmtEffects(s source.Stmt) *Effects {
	e := &Effects{}
	readExpr := func(x source.Expr) { e.reads(x) }

	switch st := s.(type) {
	case *source.DeclStmt:
		e.WriteLocals = append(e.WriteLocals, st.Local)
		if st.Init != nil {
			readExpr(st.Init)
		}
	case *source.AssignStmt:
		readExpr(st.RHS)
		switch lhs := st.LHS.(type) {
		case *source.VarExpr:
			e.WriteLocals = append(e.WriteLocals, lhs.Local)
			if st.Op != source.AsnSet {
				e.ReadLocals = append(e.ReadLocals, lhs.Local)
			}
		case *source.FieldExpr:
			e.WriteFields = append(e.WriteFields, lhs.Field)
			readExpr(lhs.Recv)
			if st.Op != source.AsnSet {
				e.ReadFields = append(e.ReadFields, lhs.Field)
			}
		case *source.IndexExpr:
			e.ArrWrites = append(e.ArrWrites, lhs.Arr)
			readExpr(lhs.Arr)
			readExpr(lhs.Idx)
			if st.Op != source.AsnSet {
				e.ArrReads = append(e.ArrReads, lhs.Arr)
			}
		}
	case *source.ExprStmt:
		readExpr(st.X)
	case *source.IfStmt:
		readExpr(st.Cond)
	case *source.WhileStmt:
		readExpr(st.Cond)
	case *source.ForEachStmt:
		e.WriteLocals = append(e.WriteLocals, st.Var)
		e.ArrReads = append(e.ArrReads, st.Arr)
		readExpr(st.Arr)
	case *source.ReturnStmt:
		if st.X != nil {
			e.Returns = st.X
			readExpr(st.X)
		}
	}
	return e
}

// reads records every value read performed while evaluating x.
func (e *Effects) reads(x source.Expr) {
	switch v := x.(type) {
	case nil:
		return
	case *source.Lit, *source.ThisExpr:
	case *source.VarExpr:
		e.ReadLocals = append(e.ReadLocals, v.Local)
	case *source.FieldExpr:
		e.ReadFields = append(e.ReadFields, v.Field)
		e.reads(v.Recv)
	case *source.IndexExpr:
		e.ArrReads = append(e.ArrReads, v.Arr)
		e.reads(v.Arr)
		e.reads(v.Idx)
	case *source.BinaryExpr:
		e.reads(v.L)
		e.reads(v.R)
	case *source.UnaryExpr:
		e.reads(v.X)
	case *source.ConvExpr:
		e.reads(v.X)
	case *source.CallExpr:
		e.Calls = append(e.Calls, v)
		e.reads(v.Recv)
		for _, a := range v.Args {
			e.reads(a)
		}
	case *source.BuiltinExpr:
		e.Builtins = append(e.Builtins, v)
		if v.B == source.BLen {
			e.ArrReads = append(e.ArrReads, v.Recv)
		}
		e.reads(v.Recv)
		for _, a := range v.Args {
			e.reads(a)
		}
	case *source.NewObjectExpr:
		for _, a := range v.Args {
			e.reads(a)
		}
	case *source.NewArrayExpr:
		e.reads(v.Len)
	}
}
