package analysis

import (
	"sort"

	"pyxis/internal/source"
)

// DefUseEdge links a definition to a statement that may observe it.
// From is a statement NodeID, or the method's EntryID when the
// definition is a parameter binding.
type DefUseEdge struct {
	From, To source.NodeID
	Local    *source.Local
}

// FieldDep links a field node to a statement that reads or writes it.
type FieldDep struct {
	Field *source.Field
	Stmt  source.NodeID
	Write bool
}

// ArrayDep links a statement that may write elements of an allocation
// site to a statement that may read them (the paper's "realCosts
// elements" style edges in Fig. 4).
type ArrayDep struct {
	From, To source.NodeID
	Site     int
}

// CallEdge links a call-site statement to the callee.
type CallEdge struct {
	Stmt   source.NodeID
	Callee *source.Method
	// ArgBytes is the static size estimate of the arguments.
	ArgBytes int
}

// ReturnEdge links a return statement to a call site that may receive
// its value.
type ReturnEdge struct {
	Ret, Call source.NodeID
	Bytes     int
}

// MethodInfo holds per-method analysis artifacts.
type MethodInfo struct {
	Method *source.Method
	CFG    *CFG
	// CtrlDeps maps statements to their controlling statements
	// (source.NoNode means the method entry).
	CtrlDeps map[source.NodeID][]source.NodeID
}

// Result is the full interprocedural dependency analysis of a program.
type Result struct {
	Prog    *source.Program
	PT      *PointsTo
	Methods map[*source.Method]*MethodInfo
	// StmtMethod locates each statement's enclosing method.
	StmtMethod map[source.NodeID]*source.Method
	Effects    map[source.NodeID]*Effects
	// Summaries are transitive per-method heap effects (call-site
	// side-effect summarization).
	Summaries map[*source.Method]*MethodSummary
	effCache  map[source.NodeID]*EffectiveEffects

	DefUse    []DefUseEdge
	FieldDeps []FieldDep
	ArrayDeps []ArrayDep
	Calls     []CallEdge
	Returns   []ReturnEdge
}

// Run performs the whole dependency analysis (paper §4.2: points-to,
// def/use, control dependence).
func Run(prog *source.Program) *Result {
	res := &Result{
		Prog:       prog,
		PT:         Analyze(prog),
		Methods:    map[*source.Method]*MethodInfo{},
		StmtMethod: map[source.NodeID]*source.Method{},
		Effects:    map[source.NodeID]*Effects{},
		effCache:   map[source.NodeID]*EffectiveEffects{},
	}
	for _, cl := range prog.Classes {
		for _, m := range cl.Methods {
			cfg := BuildCFG(m)
			res.Methods[m] = &MethodInfo{Method: m, CFG: cfg, CtrlDeps: cfg.ControlDeps()}
			m := m
			source.WalkMethodStmts(m, func(s source.Stmt) bool {
				res.StmtMethod[s.ID()] = m
				res.Effects[s.ID()] = StmtEffects(s)
				return true
			})
		}
	}
	for _, cl := range prog.Classes {
		for _, m := range cl.Methods {
			res.reachingDefs(m)
		}
	}
	res.heapDeps()
	res.callEdges()
	res.computeSummaries()
	return res
}

// reachingDefs runs classic bit-vector reaching definitions for the
// locals of one method and emits def→use edges.
func (res *Result) reachingDefs(m *source.Method) {
	cfg := res.Methods[m].CFG

	// Enumerate definitions: (cfg node, local). Parameters are defined
	// at the CFG entry.
	type def struct {
		node  int
		local *source.Local
	}
	var defs []def
	defIdxByLocal := map[*source.Local][]int{}
	addDef := func(node int, l *source.Local) {
		defIdxByLocal[l] = append(defIdxByLocal[l], len(defs))
		defs = append(defs, def{node, l})
	}
	for _, p := range m.Params {
		addDef(Entry, p)
	}
	for idx, n := range cfg.Nodes {
		if n.Stmt == nil {
			continue
		}
		for _, w := range res.Effects[n.Stmt.ID()].WriteLocals {
			addDef(idx, w)
		}
	}
	nd := len(defs)
	if nd == 0 {
		return
	}
	words := (nd + 63) / 64
	type bv []uint64
	newBV := func() bv { return make(bv, words) }
	set := func(b bv, i int) { b[i/64] |= 1 << (i % 64) }
	clear := func(b bv, i int) { b[i/64] &^= 1 << (i % 64) }
	get := func(b bv, i int) bool { return b[i/64]&(1<<(i%64)) != 0 }
	orInto := func(dst, src bv) bool {
		changed := false
		for i := range dst {
			nv := dst[i] | src[i]
			if nv != dst[i] {
				dst[i] = nv
				changed = true
			}
		}
		return changed
	}

	gen := make([]bv, len(cfg.Nodes))
	kill := make([]bv, len(cfg.Nodes))
	for i := range cfg.Nodes {
		gen[i], kill[i] = newBV(), newBV()
	}
	for di, d := range defs {
		set(gen[d.node], di)
		for _, other := range defIdxByLocal[d.local] {
			if other != di {
				set(kill[d.node], other)
			}
		}
	}
	// Loop-header defs (foreach variables) don't kill within their own
	// node evaluation; treat uniformly — minor conservatism.

	in := make([]bv, len(cfg.Nodes))
	out := make([]bv, len(cfg.Nodes))
	for i := range cfg.Nodes {
		in[i], out[i] = newBV(), newBV()
	}
	changed := true
	for changed {
		changed = false
		for i := range cfg.Nodes {
			for _, p := range cfg.Nodes[i].Preds {
				if orInto(in[i], out[p]) {
					changed = true
				}
			}
			// out = gen ∪ (in − kill)
			tmp := newBV()
			copy(tmp, in[i])
			for di := 0; di < nd; di++ {
				if get(kill[i], di) {
					clear(tmp, di)
				}
			}
			if orInto(tmp, gen[i]) {
			}
			for w := range tmp {
				if out[i][w] != tmp[w] {
					out[i][w] = tmp[w]
					changed = true
				}
			}
		}
	}

	// Emit def→use edges.
	for idx, n := range cfg.Nodes {
		if n.Stmt == nil {
			continue
		}
		sid := n.Stmt.ID()
		for _, r := range res.Effects[sid].ReadLocals {
			for _, di := range defIdxByLocal[r] {
				if !get(in[idx], di) {
					continue
				}
				d := defs[di]
				from := m.EntryID
				if d.node != Entry {
					from = cfg.Nodes[d.node].Stmt.ID()
				}
				res.DefUse = append(res.DefUse, DefUseEdge{From: from, To: sid, Local: r})
			}
		}
	}
}

// heapDeps emits field read/write deps and array-element deps using
// the points-to results.
func (res *Result) heapDeps() {
	// siteWriters/siteReaders: allocation site -> statements.
	siteWriters := map[int][]source.NodeID{}
	siteReaders := map[int][]source.NodeID{}

	for sid, eff := range res.Effects {
		for _, f := range eff.ReadFields {
			res.FieldDeps = append(res.FieldDeps, FieldDep{Field: f, Stmt: sid, Write: false})
		}
		for _, f := range eff.WriteFields {
			res.FieldDeps = append(res.FieldDeps, FieldDep{Field: f, Stmt: sid, Write: true})
		}
		for _, ae := range eff.ArrWrites {
			for site := range res.PT.Sites(ae) {
				siteWriters[site] = append(siteWriters[site], sid)
			}
		}
		for _, ae := range eff.ArrReads {
			for site := range res.PT.Sites(ae) {
				siteReaders[site] = append(siteReaders[site], sid)
			}
		}
	}
	// The allocating statement defines the (zeroed) initial contents.
	for site, stmt := range res.PT.AllocStmt {
		siteWriters[site] = append(siteWriters[site], stmt)
	}

	seen := map[[2]source.NodeID]bool{}
	add := func(from, to source.NodeID, site int) {
		if from == to {
			return
		}
		k := [2]source.NodeID{from, to}
		if seen[k] {
			return
		}
		seen[k] = true
		res.ArrayDeps = append(res.ArrayDeps, ArrayDep{From: from, To: to, Site: site})
	}
	var sites []int
	for site := range siteWriters {
		sites = append(sites, site)
	}
	sort.Ints(sites)
	for _, site := range sites {
		for _, w := range siteWriters[site] {
			// Writer → reader: the read must observe the write.
			for _, r := range siteReaders[site] {
				add(w, r, site)
			}
			// Writer → writer: a remote element write needs the whole
			// array present (storage ships wholesale with sendNative),
			// so cross-placement write-after-write also synchronizes.
			for _, w2 := range siteWriters[site] {
				add(w, w2, site)
			}
		}
	}
}

// TypeSize is a static size estimate in bytes for values of a type,
// used for call/return edges where no profile sample exists.
func TypeSize(t source.Type) int {
	switch t.K {
	case source.KInt, source.KDouble:
		return 9
	case source.KBool:
		return 2
	case source.KString:
		return 32
	case source.KClass:
		n := 16
		if t.Class != nil {
			for _, f := range t.Class.Fields {
				switch f.Type.K {
				case source.KInt, source.KDouble:
					n += 9
				case source.KBool:
					n += 2
				case source.KString:
					n += 32
				default:
					n += 9
				}
			}
		}
		return n
	case source.KArray, source.KTable:
		return 256
	default:
		return 9
	}
}

// callEdges emits call and return edges.
func (res *Result) callEdges() {
	callersOf := map[*source.Method][]source.NodeID{}
	for sid, eff := range res.Effects {
		for _, c := range eff.Calls {
			bytes := 0
			for _, p := range c.Method.Params {
				bytes += TypeSize(p.Type)
			}
			res.Calls = append(res.Calls, CallEdge{Stmt: sid, Callee: c.Method, ArgBytes: bytes})
			callersOf[c.Method] = append(callersOf[c.Method], sid)
		}
		// Constructor invocation behaves like a call to the ctor.
		source.WalkExprs(res.Prog.Stmts[sid], func(e source.Expr) {
			if nx, ok := e.(*source.NewObjectExpr); ok && nx.Ctor != nil {
				bytes := 0
				for _, p := range nx.Ctor.Params {
					bytes += TypeSize(p.Type)
				}
				res.Calls = append(res.Calls, CallEdge{Stmt: sid, Callee: nx.Ctor, ArgBytes: bytes})
				callersOf[nx.Ctor] = append(callersOf[nx.Ctor], sid)
			}
		})
	}
	// Return edges: every return statement of m feeds every call site
	// of m (context-insensitive).
	for sid, eff := range res.Effects {
		if eff.Returns == nil {
			continue
		}
		m := res.StmtMethod[sid]
		for _, call := range callersOf[m] {
			res.Returns = append(res.Returns, ReturnEdge{Ret: sid, Call: call, Bytes: TypeSize(m.Ret)})
		}
	}
	sort.Slice(res.Calls, func(i, j int) bool { return res.Calls[i].Stmt < res.Calls[j].Stmt })
}
