package bench

import (
	"fmt"
	"io"
	"math"
	"net"
	"strings"
	"sync"
	"time"

	"pyxis"
	"pyxis/internal/dbapi"
	"pyxis/internal/pdg"
	"pyxis/internal/rpc"
	"pyxis/internal/runtime"
	"pyxis/internal/sqldb"
	"pyxis/internal/val"
)

// This file measures the scale-OUT story: instead of one DB server
// with N connections (the pool sweep), N independent DB servers each
// own a disjoint warehouse range of the TPC-C schema — separate
// database, separate lock manager, separate DB-side runtime peer,
// separate mux servers; NOTHING shared between shards. Every client
// session routes to its home warehouse's shard at open time
// (runtime.ShardMap + ShardedClient over an rpc.ShardedPool) and
// stays there, so the workload is cross-shard-transaction-free by
// construction — TPC-C is warehouse-partitionable, which is exactly
// why the paper's benchmark is the right vehicle to prove multi-server
// speedup.
//
// The 1-shard point IS the old single-server deployment, so the sweep
// directly prices everything a single server serializes: its one wire
// (per-connection read loop + write mutex), its one lock table, its
// one latch hierarchy. The cross-shard invariant aggregator
// (CheckShardInvariants) then proves the split lost nothing: every
// shard holds exactly its own warehouses, per-shard TPC-C invariants
// hold, and the GLOBAL sums (warehouse YTD vs district YTD, order
// counters) reconcile across all shards together.

// ShardCfg configures one sharded TPC-C measurement.
type ShardCfg struct {
	Clients int // concurrent sessions (goroutines)
	Txns    int // calls per client
	Shards  int // independent shard servers (default 1; must be <= Warehouses)
	Conns   int // pool connections per shard (default 1)
	// WriteEvery makes every k-th call a write transaction (NewOrder,
	// or Payment per PaymentEvery); the rest call the read-only
	// TPCC.lastOrder entry, which keeps the per-call engine work small
	// so the single shard's wire saturates first — exactly the
	// head-of-line scale-out removes. 0 = every call writes.
	WriteEvery int
	// PaymentEvery makes every k-th write a Payment (0 disables).
	PaymentEvery int
	// TCP runs the wires over real loopback TCP mux servers instead of
	// in-process pipes.
	TCP bool
	// MaxRetries bounds deadlock-victim retries per transaction
	// (default 50).
	MaxRetries int
}

// ShardResult aggregates one sharded TPC-C run.
type ShardResult struct {
	Shards    int
	Clients   int
	TotalTxns int
	NewOrders int
	Payments  int
	Reads     int
	Deadlocks int
	Elapsed   time.Duration
	Tput      float64
	MeanMs    float64
	P95Ms     float64
	// SessionsPerShard is how many client sessions each shard served —
	// the routing audit (a broken ShardMap piles everything on shard 0).
	SessionsPerShard []int
}

// RunShardTPCC drives cfg.Clients concurrent TPC-C sessions against
// cfg.Shards independent shard servers, each owning a disjoint
// warehouse range. Every client is assigned a home warehouse, opens
// its sessions on that warehouse's shard, and keeps all its
// transactions inside the shard's range. It returns the result plus
// the per-shard databases so callers audit CheckShardInvariants
// afterwards.
func RunShardTPCC(part *pyxis.Partition, c TPCCConfig, cfg ShardCfg) (*ShardResult, []*sqldb.DB, error) {
	if cfg.Clients < 1 || cfg.Txns < 1 {
		return nil, nil, fmt.Errorf("bench: RunShardTPCC needs Clients >= 1 and Txns >= 1")
	}
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.Shards > c.Warehouses {
		return nil, nil, fmt.Errorf("bench: %d shards over %d warehouses would leave empty shards", cfg.Shards, c.Warehouses)
	}
	if cfg.Conns < 1 {
		cfg.Conns = 1
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 50
	}

	smap := runtime.ShardMap{Shards: cfg.Shards, Warehouses: c.Warehouses}
	prog := part.Compiled
	appPeer := runtime.NewPeer(prog, pdg.App, nil)

	// Per-shard server state — one database slice, one DB-side runtime
	// peer, one handler factory each. No shard ever touches another's.
	dbs := make([]*sqldb.DB, cfg.Shards)
	dbPeers := make([]*runtime.Peer, cfg.Shards)
	for i := range dbs {
		lo, hi := smap.WarehouseRange(i)
		dbs[i] = c.LoadRange(int(lo), int(hi))
		dbPeers[i] = runtime.NewPeer(prog, pdg.DB, nil)
	}
	newMgr := func(shard int) rpc.SessionHandlers {
		return runtime.NewSessionManager(dbPeers[shard], func() dbapi.Conn { return dbapi.NewLocal(dbs[shard]) })
	}

	var ctlPool, dbPool *rpc.ShardedPool
	var err error
	if cfg.TCP {
		ctlAddrs := make([]string, cfg.Shards)
		dbAddrs := make([]string, cfg.Shards)
		for i := 0; i < cfg.Shards; i++ {
			shard := i
			ctlSrv, err := rpc.NewMuxServer("127.0.0.1:0", func() rpc.SessionHandlers { return newMgr(shard) })
			if err != nil {
				return nil, nil, err
			}
			defer ctlSrv.Close()
			dbSrv, err := rpc.NewMuxServer("127.0.0.1:0", func() rpc.SessionHandlers { return dbapi.MuxHandlers(dbs[shard]) })
			if err != nil {
				return nil, nil, err
			}
			defer dbSrv.Close()
			ctlAddrs[i], dbAddrs[i] = ctlSrv.Addr(), dbSrv.Addr()
		}
		if ctlPool, err = rpc.DialShardedPool(ctlAddrs, cfg.Conns); err != nil {
			return nil, nil, err
		}
		defer ctlPool.Close()
		if dbPool, err = rpc.DialShardedPool(dbAddrs, cfg.Conns); err != nil {
			return nil, nil, err
		}
		defer dbPool.Close()
	} else {
		pipeTo := func(handlers func(shard int) rpc.SessionHandlers) func(shard, conn int) (io.ReadWriteCloser, error) {
			return func(shard, _ int) (io.ReadWriteCloser, error) {
				srv, cli := net.Pipe()
				go rpc.ServeMuxConnConfig(srv, handlers(shard), rpc.MuxServeConfig{})
				return cli, nil
			}
		}
		if ctlPool, err = rpc.NewShardedPool(cfg.Shards, cfg.Conns, pipeTo(newMgr)); err != nil {
			return nil, nil, err
		}
		defer ctlPool.Close()
		if dbPool, err = rpc.NewShardedPool(cfg.Shards, cfg.Conns, pipeTo(func(shard int) rpc.SessionHandlers {
			return dbapi.MuxHandlers(dbs[shard])
		})); err != nil {
			return nil, nil, err
		}
		defer dbPool.Close()
	}

	sc := runtime.NewShardedClient(smap)
	type sessionOut struct {
		lats      []float64
		newOrders int
		payments  int
		reads     int
		deadlocks int
		shard     int
		err       error
	}
	outs := make([]sessionOut, cfg.Clients)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < cfg.Clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out := &outs[i]
			// Clients spread evenly over warehouses; the home warehouse
			// picks the shard, and every transaction of the session
			// stays inside that shard's warehouse range.
			homeW := int64(i%c.Warehouses) + 1
			ctlT, shard, err := sc.OpenSession(ctlPool, homeW)
			if err != nil {
				out.err = err
				return
			}
			out.shard = shard
			dbT, err := dbPool.Session(shard)
			if err != nil {
				out.err = err
				return
			}
			lo, hi := smap.WarehouseRange(shard)
			sess := appPeer.NewSession(dbapi.NewClient(dbT))
			client := runtime.NewClient(sess, ctlT)
			defer client.Close()
			oid, err := client.NewObject("TPCC")
			if err != nil {
				out.err = err
				return
			}
			for k := 0; k < cfg.Txns; k++ {
				seq := int64(i)*1_000_003 + int64(k)
				wid, did, cid, olcnt, seed, rb := c.txnParamsRange(seq, lo, hi)
				isWrite := cfg.WriteEvery <= 1 || k%cfg.WriteEvery == 0
				isPayment := isWrite && cfg.PaymentEvery > 0 && k%cfg.PaymentEvery == 0
				t0 := time.Now()
				var err error
				for attempt := 0; ; attempt++ {
					switch {
					case !isWrite:
						_, err = client.CallEntry("TPCC.lastOrder", oid)
					case isPayment:
						amount := float64(seq%97 + 1)
						_, err = client.CallEntry("TPCC.payment", oid,
							val.IntV(wid), val.IntV(did), val.IntV(cid), val.DoubleV(amount))
					default:
						_, err = client.CallEntry("TPCC.newOrder", oid,
							val.IntV(wid), val.IntV(did), val.IntV(cid), val.IntV(olcnt),
							val.IntV(seed), val.IntV(int64(c.Items)), val.BoolV(rb))
					}
					if err == nil {
						break
					}
					if isDeadlockErr(err) && attempt < cfg.MaxRetries {
						out.deadlocks++
						continue
					}
					out.err = fmt.Errorf("session %d (shard %d) txn %d: %w", i, shard, k, err)
					return
				}
				out.lats = append(out.lats, float64(time.Since(t0).Microseconds())/1e3)
				switch {
				case !isWrite:
					out.reads++
				case isPayment:
					out.payments++
				default:
					out.newOrders++
				}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := &ShardResult{Shards: cfg.Shards, Clients: cfg.Clients, Elapsed: elapsed,
		SessionsPerShard: make([]int, cfg.Shards)}
	var all []float64
	for i := range outs {
		if outs[i].err != nil {
			return nil, nil, outs[i].err
		}
		all = append(all, outs[i].lats...)
		res.NewOrders += outs[i].newOrders
		res.Payments += outs[i].payments
		res.Reads += outs[i].reads
		res.Deadlocks += outs[i].deadlocks
		res.SessionsPerShard[outs[i].shard]++
	}
	res.TotalTxns = len(all)
	res.Tput = float64(len(all)) / elapsed.Seconds()
	agg := Summarize(all)
	res.MeanMs, res.P95Ms = agg.MeanMs, agg.P95Ms
	return res, dbs, nil
}

// CheckShardInvariants is the cross-shard consistency aggregator: it
// audits each shard's slice with CheckTPCCInvariantsRange, verifies
// ownership is exactly the disjoint warehouse ranges ShardMap assigns
// (no warehouse duplicated onto or missing from a shard), and then
// reconciles the GLOBAL sums across all shards together — total
// warehouse YTD = total district YTD, and total order counters =
// total orders = total new_order rows — so a transaction booked on
// the wrong shard shows up even when every shard is internally
// consistent. It returns every violation found (nil means consistent).
func CheckShardInvariants(dbs []*sqldb.DB, c TPCCConfig, m runtime.ShardMap) []string {
	var violations []string
	if len(dbs) != m.NumShards() {
		return []string{fmt.Sprintf("shard count mismatch: %d databases for %d shards", len(dbs), m.NumShards())}
	}
	queryOne := func(s *sqldb.Session, sql string) (val.Value, error) {
		rs, err := s.Query(sql)
		if err != nil {
			return val.Value{}, err
		}
		if len(rs.Rows) != 1 || len(rs.Rows[0]) != 1 {
			return val.Value{}, fmt.Errorf("want one value, got %d rows", len(rs.Rows))
		}
		return rs.Rows[0][0], nil
	}
	var totalWarehouses, totalOrders, totalNewOrders, totalNextSum, totalDistricts int64
	var sumWYTD, sumDYTD float64
	for shard, db := range dbs {
		lo, hi := m.WarehouseRange(shard)
		for _, v := range CheckTPCCInvariantsRange(db, c, int(lo), int(hi)) {
			violations = append(violations, fmt.Sprintf("shard %d: %s", shard, v))
		}
		s := db.NewSession()
		// Ownership: the shard holds exactly its assigned range — the
		// per-range audit above would miss a shard that also carries a
		// stray copy of a sibling's warehouse.
		count, err := queryOne(s, "SELECT COUNT(*) FROM warehouse")
		if err != nil {
			violations = append(violations, fmt.Sprintf("shard %d: warehouse count: %v", shard, err))
			continue
		}
		if want := hi - lo + 1; count.I != want {
			violations = append(violations,
				fmt.Sprintf("shard %d: owns %d warehouses, assigned range [%d,%d] has %d", shard, count.I, lo, hi, want))
		}
		totalWarehouses += count.I
		wytd, err1 := queryOne(s, "SELECT SUM(w_ytd) FROM warehouse")
		dytd, err2 := queryOne(s, "SELECT SUM(d_ytd) FROM district")
		orders, err3 := queryOne(s, "SELECT COUNT(*) FROM orders")
		newOrders, err4 := queryOne(s, "SELECT COUNT(*) FROM new_order")
		nextSum, err5 := queryOne(s, "SELECT SUM(d_next_o_id) FROM district")
		districts, err6 := queryOne(s, "SELECT COUNT(*) FROM district")
		for _, err := range []error{err1, err2, err3, err4, err5, err6} {
			if err != nil {
				violations = append(violations, fmt.Sprintf("shard %d: global sums: %v", shard, err))
			}
		}
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil || err5 != nil || err6 != nil {
			continue
		}
		sumWYTD += wytd.AsFloat()
		sumDYTD += dytd.AsFloat()
		totalOrders += orders.I
		totalNewOrders += newOrders.I
		totalNextSum += int64(nextSum.AsFloat())
		totalDistricts += districts.I
	}
	if totalWarehouses != int64(c.Warehouses) {
		violations = append(violations,
			fmt.Sprintf("shards own %d warehouses in total, schema has %d", totalWarehouses, c.Warehouses))
	}
	// Same relative epsilon as the per-warehouse audit: the totals
	// accumulate identical amounts in different orders.
	if diff := math.Abs(sumWYTD - sumDYTD); diff > 1e-6*math.Max(1, math.Abs(sumWYTD)) {
		violations = append(violations,
			fmt.Sprintf("global: sum(w_ytd)=%v != sum(d_ytd)=%v across %d shards", sumWYTD, sumDYTD, len(dbs)))
	}
	// Every district's d_next_o_id starts at 1, so global orders =
	// sum(d_next_o_id - 1) = sum(d_next_o_id) - #districts.
	if wantOrders := totalNextSum - totalDistricts; totalOrders != wantOrders || totalNewOrders != wantOrders {
		violations = append(violations,
			fmt.Sprintf("global: %d orders / %d new_order rows, counters say %d", totalOrders, totalNewOrders, wantOrders))
	}
	return violations
}

// RunShardScaling measures throughput vs. shard count at a fixed
// client count: one RunShardTPCC per entry of shardCounts against a
// fresh set of shard databases per point, auditing the cross-shard
// invariants after each. The first entry (conventionally 1) is the
// old single-server deployment; the ratio of any later point to it is
// the scale-out speedup.
func RunShardScaling(part *pyxis.Partition, c TPCCConfig, base ShardCfg, shardCounts []int) ([]*ShardResult, error) {
	results := make([]*ShardResult, 0, len(shardCounts))
	for _, n := range shardCounts {
		cfg := base
		cfg.Shards = n
		res, dbs, err := RunShardTPCC(part, c, cfg)
		if err != nil {
			return nil, fmt.Errorf("bench: shard point shards=%d: %w", n, err)
		}
		smap := runtime.ShardMap{Shards: n, Warehouses: c.Warehouses}
		if violations := CheckShardInvariants(dbs, c, smap); len(violations) > 0 {
			return nil, fmt.Errorf("bench: shard point shards=%d: invariants violated: %s",
				n, strings.Join(violations, "; "))
		}
		results = append(results, res)
	}
	return results, nil
}

// ShardScalingReport renders a RunShardScaling sweep with speedup
// relative to the first (usually 1-shard) point.
func ShardScalingReport(results []*ShardResult) string {
	if len(results) == 0 {
		return "(no shard points)"
	}
	base := results[0].Tput
	var b strings.Builder
	fmt.Fprintf(&b, "%6s %8s %10s %12s %10s %10s %9s\n", "shards", "clients", "txns", "tput(txn/s)", "mean(ms)", "p95(ms)", "speedup")
	for _, r := range results {
		speedup := 0.0
		if base > 0 {
			speedup = r.Tput / base
		}
		fmt.Fprintf(&b, "%6d %8d %10d %12.0f %10.3f %10.3f %8.2fx\n",
			r.Shards, r.Clients, r.TotalTxns, r.Tput, r.MeanMs, r.P95Ms, speedup)
	}
	return strings.TrimRight(b.String(), "\n")
}

// String renders the result as one table row block.
func (r *ShardResult) String() string {
	return fmt.Sprintf("shards=%d clients=%d txns=%d (no=%d pay=%d read=%d dl-retries=%d) elapsed=%v tput=%.0f txn/s lat(mean=%.3fms p95=%.3fms) sessions/shard=%v",
		r.Shards, r.Clients, r.TotalTxns, r.NewOrders, r.Payments, r.Reads, r.Deadlocks,
		r.Elapsed.Round(time.Millisecond), r.Tput, r.MeanMs, r.P95Ms, r.SessionsPerShard)
}
