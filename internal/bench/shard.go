package bench

import (
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"strings"
	"sync"
	"time"

	"pyxis"
	"pyxis/internal/dbapi"
	"pyxis/internal/pdg"
	"pyxis/internal/rpc"
	"pyxis/internal/runtime"
	"pyxis/internal/sqldb"
	"pyxis/internal/val"
)

// This file measures the scale-OUT story: instead of one DB server
// with N connections (the pool sweep), N independent DB servers each
// own a disjoint warehouse range of the TPC-C schema — separate
// database, separate lock manager, separate DB-side runtime peer,
// separate mux servers; NOTHING shared between shards. Every client
// session routes to its home warehouse's shard at open time
// (runtime.ShardMap + ShardedClient over an rpc.ShardedPool) and
// stays there. With RemoteMix off the workload is cross-shard-free by
// construction; with it on, the TPC-C spec's remote-warehouse rolls
// (15% of Payments, ~10% of NewOrders) point transactions at other
// warehouses — when the remote warehouse lives on another shard the
// transaction runs as two branches over two shards' wires and commits
// atomically through the client's 2PC coordinator
// (runtime.Coordinator + dbapi.Participant).
//
// The 1-shard point IS the old single-server deployment, so the sweep
// directly prices everything a single server serializes: its one wire
// (per-connection read loop + write mutex), its one lock table, its
// one latch hierarchy. The cross-shard invariant aggregator
// (CheckShardInvariants) then proves the split lost nothing: every
// shard holds exactly its own warehouses, per-shard TPC-C invariants
// hold, and the GLOBAL sums (warehouse YTD vs district YTD, order
// counters) reconcile across all shards together.

// ShardCfg configures one sharded TPC-C measurement.
type ShardCfg struct {
	Clients int // concurrent sessions (goroutines)
	Txns    int // calls per client
	Shards  int // independent shard servers (default 1; must be <= Warehouses)
	Conns   int // pool connections per shard (default 1)
	// WriteEvery makes every k-th call a write transaction (NewOrder,
	// or Payment per PaymentEvery); the rest call the read-only
	// TPCC.lastOrder entry, which keeps the per-call engine work small
	// so the single shard's wire saturates first — exactly the
	// head-of-line scale-out removes. 0 = every call writes.
	WriteEvery int
	// PaymentEvery makes every k-th write a Payment (0 disables).
	PaymentEvery int
	// RemoteMix enables the TPC-C remote-warehouse rolls (spec §2.4.1.5
	// and §2.5.1.2): 15% of Payments debit a customer resident at
	// another warehouse, ~10% of NewOrders draw stock from a remote
	// supply warehouse. A remote warehouse owned by another shard makes
	// the transaction distributed: its branches run over both shards'
	// database wires and commit through two-phase commit.
	RemoteMix bool
	// TCP runs the wires over real loopback TCP mux servers instead of
	// in-process pipes.
	TCP bool
	// MaxRetries bounds deadlock-victim retries per transaction
	// (default 50).
	MaxRetries int
}

// ShardResult aggregates one sharded TPC-C run.
type ShardResult struct {
	Shards    int
	Clients   int
	TotalTxns int
	NewOrders int
	Payments  int
	Reads     int
	Deadlocks int
	Elapsed   time.Duration
	Tput      float64
	MeanMs    float64
	P95Ms     float64
	// Remote-mix accounting (all zero when RemoteMix is off).
	// RemotePayments/RemoteNewOrders count transactions whose remote
	// roll fired, whether or not the remote warehouse crossed a shard
	// boundary; DistTxns counts the ones that did cross and therefore
	// ran as two 2PC branches, split into DistCommits and DistAborts
	// (intentional TPC-C rollbacks of a distributed NewOrder).
	RemotePayments  int
	RemoteNewOrders int
	DistTxns        int
	DistCommits     int
	DistAborts      int
	// Per-class latency: Local covers every call that stayed on one
	// shard (reads included), Dist covers the cross-shard 2PC
	// transactions. DistMeanMs prices the extra prepare round trip.
	LocalMeanMs float64
	LocalP95Ms  float64
	DistMeanMs  float64
	DistP95Ms   float64
	// SessionsPerShard is how many client sessions each shard served —
	// the routing audit (a broken ShardMap piles everything on shard 0).
	SessionsPerShard []int
}

// RunShardTPCC drives cfg.Clients concurrent TPC-C sessions against
// cfg.Shards independent shard servers, each owning a disjoint
// warehouse range. Every client is assigned a home warehouse, opens
// its sessions on that warehouse's shard, and keeps all its
// transactions inside the shard's range. It returns the result plus
// the per-shard databases so callers audit CheckShardInvariants
// afterwards.
func RunShardTPCC(part *pyxis.Partition, c TPCCConfig, cfg ShardCfg) (*ShardResult, []*sqldb.DB, error) {
	if cfg.Clients < 1 || cfg.Txns < 1 {
		return nil, nil, fmt.Errorf("bench: RunShardTPCC needs Clients >= 1 and Txns >= 1")
	}
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.Shards > c.Warehouses {
		return nil, nil, fmt.Errorf("bench: %d shards over %d warehouses would leave empty shards", cfg.Shards, c.Warehouses)
	}
	if cfg.Conns < 1 {
		cfg.Conns = 1
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 50
	}

	smap := runtime.ShardMap{Shards: cfg.Shards, Warehouses: c.Warehouses}
	prog := part.Compiled
	appPeer := runtime.NewPeer(prog, pdg.App, nil)

	// Per-shard server state — one database slice, one DB-side runtime
	// peer, one handler factory each. No shard ever touches another's.
	dbs := make([]*sqldb.DB, cfg.Shards)
	dbPeers := make([]*runtime.Peer, cfg.Shards)
	for i := range dbs {
		lo, hi := smap.WarehouseRange(i)
		dbs[i] = c.LoadRange(int(lo), int(hi))
		dbPeers[i] = runtime.NewPeer(prog, pdg.DB, nil)
	}
	newMgr := func(shard int) rpc.SessionHandlers {
		return runtime.NewSessionManager(dbPeers[shard], func() dbapi.Conn { return dbapi.NewLocal(dbs[shard]) })
	}

	// The router + 2PC coordinator exist before any server: each
	// shard's single 2PC participant (shared by every connection to
	// that shard — commit frames may arrive on a different connection
	// than the prepare) resolves in-doubt transactions against the
	// coordinator's decision log.
	sc := runtime.NewShardedClient(smap)
	parts := make([]*dbapi.Participant, cfg.Shards)
	for i := range parts {
		parts[i] = dbapi.NewParticipant(0, sc.TwoPC.Outcome)
	}
	newDBHandlers := func(shard int) rpc.SessionHandlers {
		return dbapi.MuxHandlersTxn(dbs[shard], parts[shard])
	}

	var ctlPool, dbPool *rpc.ShardedPool
	var err error
	if cfg.TCP {
		ctlAddrs := make([]string, cfg.Shards)
		dbAddrs := make([]string, cfg.Shards)
		for i := 0; i < cfg.Shards; i++ {
			shard := i
			ctlSrv, err := rpc.NewMuxServer("127.0.0.1:0", func() rpc.SessionHandlers { return newMgr(shard) })
			if err != nil {
				return nil, nil, err
			}
			defer ctlSrv.Close()
			dbSrv, err := rpc.NewMuxServer("127.0.0.1:0", func() rpc.SessionHandlers { return newDBHandlers(shard) })
			if err != nil {
				return nil, nil, err
			}
			defer dbSrv.Close()
			ctlAddrs[i], dbAddrs[i] = ctlSrv.Addr(), dbSrv.Addr()
		}
		if ctlPool, err = rpc.DialShardedPool(ctlAddrs, cfg.Conns); err != nil {
			return nil, nil, err
		}
		defer ctlPool.Close()
		if dbPool, err = rpc.DialShardedPool(dbAddrs, cfg.Conns); err != nil {
			return nil, nil, err
		}
		defer dbPool.Close()
	} else {
		pipeTo := func(handlers func(shard int) rpc.SessionHandlers) func(shard, conn int) (io.ReadWriteCloser, error) {
			return func(shard, _ int) (io.ReadWriteCloser, error) {
				srv, cli := net.Pipe()
				go rpc.ServeMuxConnConfig(srv, handlers(shard), rpc.MuxServeConfig{})
				return cli, nil
			}
		}
		if ctlPool, err = rpc.NewShardedPool(cfg.Shards, cfg.Conns, pipeTo(newMgr)); err != nil {
			return nil, nil, err
		}
		defer ctlPool.Close()
		if dbPool, err = rpc.NewShardedPool(cfg.Shards, cfg.Conns, pipeTo(newDBHandlers)); err != nil {
			return nil, nil, err
		}
		defer dbPool.Close()
	}

	type sessionOut struct {
		lats            []float64
		distLats        []float64
		newOrders       int
		payments        int
		reads           int
		deadlocks       int
		remotePayments  int
		remoteNewOrders int
		distCommits     int
		distAborts      int
		shard           int
		err             error
	}
	outs := make([]sessionOut, cfg.Clients)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < cfg.Clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out := &outs[i]
			// Clients spread evenly over warehouses; the home warehouse
			// picks the shard, and every transaction of the session
			// stays inside that shard's warehouse range.
			homeW := int64(i%c.Warehouses) + 1
			ctlT, shard, err := sc.OpenSession(ctlPool, homeW)
			if err != nil {
				out.err = err
				return
			}
			out.shard = shard
			dbT, err := dbPool.Session(shard)
			if err != nil {
				out.err = err
				return
			}
			lo, hi := smap.WarehouseRange(shard)
			homeConn := dbapi.NewClient(dbT)
			sess := appPeer.NewSession(homeConn)
			client := runtime.NewClient(sess, ctlT)
			defer client.Close()
			oid, err := client.NewObject("TPCC")
			if err != nil {
				out.err = err
				return
			}
			// Lazily-opened branch sessions on the other shards, one per
			// shard for the session's lifetime — a remote-warehouse
			// transaction runs its second branch over the remote shard's
			// own wire.
			remSess := make(map[int]*rpc.MuxSession)
			remConn := make(map[int]dbapi.Conn)
			branchOn := func(sh int) (*rpc.MuxSession, dbapi.Conn, error) {
				if s, ok := remSess[sh]; ok {
					return s, remConn[sh], nil
				}
				s, err := dbPool.Session(sh)
				if err != nil {
					return nil, nil, err
				}
				remSess[sh] = s
				remConn[sh] = dbapi.NewClient(s)
				return s, remConn[sh], nil
			}
			for k := 0; k < cfg.Txns; k++ {
				seq := int64(i)*1_000_003 + int64(k)
				wid, did, cid, olcnt, seed, rb := c.txnParamsRange(seq, lo, hi)
				isWrite := cfg.WriteEvery <= 1 || k%cfg.WriteEvery == 0
				isPayment := isWrite && cfg.PaymentEvery > 0 && k%cfg.PaymentEvery == 0
				payRemote, noRemote, remW := false, false, int64(0)
				if cfg.RemoteMix && isWrite {
					payRemote, noRemote, remW = c.remoteRoll(seq, wid)
				}
				isRemote := (isPayment && payRemote) || (isWrite && !isPayment && noRemote)
				t0 := time.Now()
				var err error
				distributed, distCommitted := false, false
				for attempt := 0; ; attempt++ {
					distributed, distCommitted = false, false
					switch {
					case !isWrite:
						_, err = client.CallEntry("TPCC.lastOrder", oid)
					case isRemote:
						err = func() error {
							branchSess, branchConn := dbT, dbapi.Conn(homeConn)
							if rsh := smap.Shard(remW); rsh != shard {
								var berr error
								branchSess, branchConn, berr = branchOn(rsh)
								if berr != nil {
									return berr
								}
								distributed = true
							}
							if err := homeConn.Begin(); err != nil {
								return err
							}
							if distributed {
								if err := branchConn.Begin(); err != nil {
									rollbackQuiet(homeConn)
									return err
								}
							}
							abortBoth := func(err error) error {
								rollbackQuiet(homeConn)
								if distributed {
									rollbackQuiet(branchConn)
								}
								return err
							}
							if isPayment {
								amount := float64(seq%97 + 1)
								if err := c.paymentRemoteStmts(homeConn, branchConn, wid, did, remW, did, cid, amount); err != nil {
									return abortBoth(err)
								}
							} else {
								if _, err := c.newOrderRemoteStmts(homeConn, branchConn, wid, did, cid, olcnt, seed, remW); err != nil {
									return abortBoth(err)
								}
								if rb {
									// The intentional TPC-C rollback: nothing
									// prepared yet, so both branches abort
									// unilaterally — trivially atomic.
									return abortBoth(nil)
								}
							}
							if !distributed {
								return homeConn.Commit()
							}
							if err := sc.TwoPC.Commit(sc.TwoPC.NewGID(), dbT, branchSess); err != nil {
								// Both branches are aborted (or converge to
								// abort via presumed abort) — no cleanup owed.
								return err
							}
							distCommitted = true
							return nil
						}()
					case isPayment:
						amount := float64(seq%97 + 1)
						_, err = client.CallEntry("TPCC.payment", oid,
							val.IntV(wid), val.IntV(did), val.IntV(cid), val.DoubleV(amount))
					default:
						_, err = client.CallEntry("TPCC.newOrder", oid,
							val.IntV(wid), val.IntV(did), val.IntV(cid), val.IntV(olcnt),
							val.IntV(seed), val.IntV(int64(c.Items)), val.BoolV(rb))
					}
					if err == nil {
						break
					}
					// A 2PC abort (ErrTxnAborted) retries like a deadlock
					// victim: the usual cause is a branch losing its
					// transaction to deadlock resolution before prepare.
					if (isDeadlockErr(err) || errors.Is(err, runtime.ErrTxnAborted)) && attempt < cfg.MaxRetries {
						out.deadlocks++
						continue
					}
					out.err = fmt.Errorf("session %d (shard %d) txn %d: %w", i, shard, k, err)
					return
				}
				lat := float64(time.Since(t0).Microseconds()) / 1e3
				if distributed {
					out.distLats = append(out.distLats, lat)
					if distCommitted {
						out.distCommits++
					} else {
						out.distAborts++
					}
				} else {
					out.lats = append(out.lats, lat)
				}
				switch {
				case !isWrite:
					out.reads++
				case isPayment:
					out.payments++
					if isRemote {
						out.remotePayments++
					}
				default:
					out.newOrders++
					if isRemote {
						out.remoteNewOrders++
					}
				}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := &ShardResult{Shards: cfg.Shards, Clients: cfg.Clients, Elapsed: elapsed,
		SessionsPerShard: make([]int, cfg.Shards)}
	var local, dist []float64
	for i := range outs {
		if outs[i].err != nil {
			return nil, nil, outs[i].err
		}
		local = append(local, outs[i].lats...)
		dist = append(dist, outs[i].distLats...)
		res.NewOrders += outs[i].newOrders
		res.Payments += outs[i].payments
		res.Reads += outs[i].reads
		res.Deadlocks += outs[i].deadlocks
		res.RemotePayments += outs[i].remotePayments
		res.RemoteNewOrders += outs[i].remoteNewOrders
		res.DistCommits += outs[i].distCommits
		res.DistAborts += outs[i].distAborts
		res.SessionsPerShard[outs[i].shard]++
	}
	res.DistTxns = res.DistCommits + res.DistAborts
	all := append(append([]float64(nil), local...), dist...)
	res.TotalTxns = len(all)
	res.Tput = float64(len(all)) / elapsed.Seconds()
	agg := Summarize(all)
	res.MeanMs, res.P95Ms = agg.MeanMs, agg.P95Ms
	la, da := Summarize(local), Summarize(dist)
	res.LocalMeanMs, res.LocalP95Ms = la.MeanMs, la.P95Ms
	res.DistMeanMs, res.DistP95Ms = da.MeanMs, da.P95Ms
	return res, dbs, nil
}

// CheckShardInvariants is the cross-shard consistency aggregator: it
// audits each shard's slice with CheckTPCCInvariantsSet, verifies
// ownership is exactly the disjoint warehouse sets ShardMap assigns —
// base ranges plus migration Overrides, so it works on post-rebalance
// maps too (no warehouse duplicated onto or missing from a shard) —
// and then
// reconciles the GLOBAL sums across all shards together — total
// warehouse YTD = total district YTD, and total order counters =
// total orders = total new_order rows — so a transaction booked on
// the wrong shard shows up even when every shard is internally
// consistent. It returns every violation found (nil means consistent).
func CheckShardInvariants(dbs []*sqldb.DB, c TPCCConfig, m runtime.ShardMap) []string {
	var violations []string
	if len(dbs) != m.NumShards() {
		return []string{fmt.Sprintf("shard count mismatch: %d databases for %d shards", len(dbs), m.NumShards())}
	}
	queryOne := func(s *sqldb.Session, sql string) (val.Value, error) {
		rs, err := s.Query(sql)
		if err != nil {
			return val.Value{}, err
		}
		if len(rs.Rows) != 1 || len(rs.Rows[0]) != 1 {
			return val.Value{}, fmt.Errorf("want one value, got %d rows", len(rs.Rows))
		}
		return rs.Rows[0][0], nil
	}
	var totalWarehouses, totalOrders, totalNewOrders, totalNextSum, totalDistricts int64
	var sumWYTD, sumDYTD, sumCBal, sumSYTD, sumOLQty float64
	for shard, db := range dbs {
		// Ownership under the FULL map — base ranges plus any migration
		// Overrides — so the audit follows warehouses that were moved by
		// live rebalancing instead of flagging them as strays.
		owned := m.OwnedWarehouses(shard)
		for _, v := range CheckTPCCInvariantsSet(db, c, owned) {
			violations = append(violations, fmt.Sprintf("shard %d: %s", shard, v))
		}
		s := db.NewSession()
		// Ownership: the shard holds exactly its assigned warehouses —
		// the per-set audit above would miss a shard that also carries a
		// stray copy of a sibling's warehouse.
		count, err := queryOne(s, "SELECT COUNT(*) FROM warehouse")
		if err != nil {
			violations = append(violations, fmt.Sprintf("shard %d: warehouse count: %v", shard, err))
			continue
		}
		if want := int64(len(owned)); count.I != want {
			violations = append(violations,
				fmt.Sprintf("shard %d: owns %d warehouses, map assigns it %d", shard, count.I, want))
		}
		totalWarehouses += count.I
		wytd, err1 := queryOne(s, "SELECT SUM(w_ytd) FROM warehouse")
		dytd, err2 := queryOne(s, "SELECT SUM(d_ytd) FROM district")
		orders, err3 := queryOne(s, "SELECT COUNT(*) FROM orders")
		newOrders, err4 := queryOne(s, "SELECT COUNT(*) FROM new_order")
		nextSum, err5 := queryOne(s, "SELECT SUM(d_next_o_id) FROM district")
		districts, err6 := queryOne(s, "SELECT COUNT(*) FROM district")
		cbal, err7 := queryOne(s, "SELECT SUM(c_balance) FROM customer")
		sytd, err8 := queryOne(s, "SELECT SUM(s_ytd) FROM stock")
		olqty, err9 := queryOne(s, "SELECT SUM(ol_quantity) FROM order_line")
		errs := []error{err1, err2, err3, err4, err5, err6, err7, err8, err9}
		bad := false
		for _, err := range errs {
			if err != nil {
				violations = append(violations, fmt.Sprintf("shard %d: global sums: %v", shard, err))
				bad = true
			}
		}
		if bad {
			continue
		}
		sumWYTD += wytd.AsFloat()
		sumDYTD += dytd.AsFloat()
		totalOrders += orders.I
		totalNewOrders += newOrders.I
		totalNextSum += int64(nextSum.AsFloat())
		totalDistricts += districts.I
		sumCBal += cbal.AsFloat()
		sumSYTD += sytd.AsFloat()
		sumOLQty += olqty.AsFloat()
	}
	if totalWarehouses != int64(c.Warehouses) {
		violations = append(violations,
			fmt.Sprintf("shards own %d warehouses in total, schema has %d", totalWarehouses, c.Warehouses))
	}
	// Same relative epsilon as the per-warehouse audit: the totals
	// accumulate identical amounts in different orders.
	if diff := math.Abs(sumWYTD - sumDYTD); diff > 1e-6*math.Max(1, math.Abs(sumWYTD)) {
		violations = append(violations,
			fmt.Sprintf("global: sum(w_ytd)=%v != sum(d_ytd)=%v across %d shards", sumWYTD, sumDYTD, len(dbs)))
	}
	// Every district's d_next_o_id starts at 1, so global orders =
	// sum(d_next_o_id - 1) = sum(d_next_o_id) - #districts.
	if wantOrders := totalNextSum - totalDistricts; totalOrders != wantOrders || totalNewOrders != wantOrders {
		violations = append(violations,
			fmt.Sprintf("global: %d orders / %d new_order rows, counters say %d", totalOrders, totalNewOrders, wantOrders))
	}
	// The remote-mix cross-shard invariants. A remote Payment books its
	// YTD on the home shard but debits the customer on another, and a
	// remote NewOrder books its order lines at home while its stock YTD
	// lands on the supply shard — so neither side reconciles per shard;
	// only the global sums do. A 2PC branch committed without its
	// sibling (lost or double-booked remote update) shifts these by a
	// whole payment amount or line quantity.
	if diff := math.Abs(sumCBal + sumWYTD); diff > 1e-6*math.Max(1, math.Abs(sumWYTD)) {
		violations = append(violations,
			fmt.Sprintf("global: sum(c_balance)=%v != -sum(w_ytd)=%v (half-committed remote Payment)", sumCBal, -sumWYTD))
	}
	if diff := math.Abs(sumSYTD - sumOLQty); diff > 1e-6*math.Max(1, sumOLQty) {
		violations = append(violations,
			fmt.Sprintf("global: sum(s_ytd)=%v != sum(ol_quantity)=%v (half-committed remote NewOrder)", sumSYTD, sumOLQty))
	}
	return violations
}

// RunShardScaling measures throughput vs. shard count at a fixed
// client count: one RunShardTPCC per entry of shardCounts against a
// fresh set of shard databases per point, auditing the cross-shard
// invariants after each. The first entry (conventionally 1) is the
// old single-server deployment; the ratio of any later point to it is
// the scale-out speedup.
func RunShardScaling(part *pyxis.Partition, c TPCCConfig, base ShardCfg, shardCounts []int) ([]*ShardResult, error) {
	results := make([]*ShardResult, 0, len(shardCounts))
	for _, n := range shardCounts {
		cfg := base
		cfg.Shards = n
		res, dbs, err := RunShardTPCC(part, c, cfg)
		if err != nil {
			return nil, fmt.Errorf("bench: shard point shards=%d: %w", n, err)
		}
		smap := runtime.ShardMap{Shards: n, Warehouses: c.Warehouses}
		if violations := CheckShardInvariants(dbs, c, smap); len(violations) > 0 {
			return nil, fmt.Errorf("bench: shard point shards=%d: invariants violated: %s",
				n, strings.Join(violations, "; "))
		}
		results = append(results, res)
	}
	return results, nil
}

// ShardScalingReport renders a RunShardScaling sweep with speedup
// relative to the first (usually 1-shard) point.
func ShardScalingReport(results []*ShardResult) string {
	if len(results) == 0 {
		return "(no shard points)"
	}
	base := results[0].Tput
	var b strings.Builder
	fmt.Fprintf(&b, "%6s %8s %10s %12s %10s %10s %9s\n", "shards", "clients", "txns", "tput(txn/s)", "mean(ms)", "p95(ms)", "speedup")
	for _, r := range results {
		speedup := 0.0
		if base > 0 {
			speedup = r.Tput / base
		}
		fmt.Fprintf(&b, "%6d %8d %10d %12.0f %10.3f %10.3f %8.2fx\n",
			r.Shards, r.Clients, r.TotalTxns, r.Tput, r.MeanMs, r.P95Ms, speedup)
	}
	return strings.TrimRight(b.String(), "\n")
}

// String renders the result as one table row block.
func (r *ShardResult) String() string {
	s := fmt.Sprintf("shards=%d clients=%d txns=%d (no=%d pay=%d read=%d dl-retries=%d) elapsed=%v tput=%.0f txn/s lat(mean=%.3fms p95=%.3fms) sessions/shard=%v",
		r.Shards, r.Clients, r.TotalTxns, r.NewOrders, r.Payments, r.Reads, r.Deadlocks,
		r.Elapsed.Round(time.Millisecond), r.Tput, r.MeanMs, r.P95Ms, r.SessionsPerShard)
	if r.RemotePayments+r.RemoteNewOrders > 0 {
		s += fmt.Sprintf(" remote(pay=%d no=%d) 2pc(txns=%d commits=%d aborts=%d) lat(local mean=%.3fms p95=%.3fms | dist mean=%.3fms p95=%.3fms)",
			r.RemotePayments, r.RemoteNewOrders, r.DistTxns, r.DistCommits, r.DistAborts,
			r.LocalMeanMs, r.LocalP95Ms, r.DistMeanMs, r.DistP95Ms)
	}
	return s
}
