//go:build race

package bench

// raceEnabled reports whether this build is race-detector-instrumented.
// The wall-clock scaling assertions relax their speedup targets under
// the detector's overhead (its happens-before bookkeeping serializes
// part of every synchronization operation, flattening parallel
// speedup), while correctness invariants stay identical.
const raceEnabled = true
