// Package bench reproduces the paper's evaluation (§7): the TPC-C and
// TPC-W workloads in PyxJ plus hand-written JDBC-style and Manual
// (stored-procedure-style) implementations, the two microbenchmarks,
// and the experiment drivers that regenerate every figure and table.
// Timing comes from the deterministic simulator in internal/sim; the
// database operations, partitioned programs and wire traffic are real.
package bench

import (
	"pyxis/internal/dbapi"
	"pyxis/internal/pdg"
	"pyxis/internal/sim"
	"pyxis/internal/sqldb"
	"pyxis/internal/val"
)

// CostModel converts execution events into virtual time. Defaults are
// calibrated in calibrate.go to land near the paper's testbed numbers
// (2 ms ping, MySQL-era per-operation costs, the ~6× Pyxis
// interpretation overhead measured by microbenchmark 1).
type CostModel struct {
	// RTT is the network round-trip time in seconds.
	RTT float64
	// BandwidthBps is the link bandwidth (bytes/second).
	BandwidthBps float64
	// DBOpCost is database-server CPU seconds per database operation.
	DBOpCost float64
	// InstrCost is CPU seconds per Pyxis block instruction (the ~6×
	// interpretive overhead shows up here).
	InstrCost float64
	// NativeLogicCost is CPU seconds of application logic per
	// transaction for the hand-written implementations (≈ the Pyxis
	// instruction cost divided by the interpretation overhead).
	NativeLogicCost float64
	// Sha1Cost is CPU seconds per sys.sha1 call.
	Sha1Cost float64
	// DBReqBytes/DBRespBytes approximate database wire message sizes
	// for per-operation network accounting.
	DBReqBytes, DBRespBytes int
}

// DefaultCosts mirror the paper's environment.
func DefaultCosts() CostModel {
	return CostModel{
		RTT:             0.002,
		BandwidthBps:    125e6, // ~1 Gbit/s
		DBOpCost:        0.00045,
		InstrCost:       0.000012, // 12 µs per block instruction
		NativeLogicCost: 0.0012,
		Sha1Cost:        0.0000025,
		DBReqBytes:      120,
		DBRespBytes:     240,
	}
}

// Env implements runtime.Env on top of the simulator: it charges
// virtual CPU on the right server's core pool and virtual network time
// on the shared link. CPU charges are coalesced and flushed at
// interaction points so event counts stay manageable.
type Env struct {
	P      *sim.Proc
	AppCPU *sim.Resource
	DBCPU  *sim.Resource
	Link   *sim.Link
	CM     CostModel

	// DBSlow, when set, scales DB-side logic execution time (fair-share
	// slowdown from external processes competing for the database
	// server's cores — the Fig. 11 load spike). Engine operations are
	// not scaled: the paper's Fig. 11 shows JDBC latency unaffected by
	// the spike, i.e. the DBMS kept serving operations at speed while
	// colocated program logic starved.
	DBSlow func() float64

	pendApp, pendDB float64 // accumulated CPU seconds not yet charged
}

func (e *Env) dbSlowdown() float64 {
	if e.DBSlow == nil {
		return 1
	}
	return e.DBSlow()
}

const flushThreshold = 0.002 // seconds of accumulated CPU per flush

func (e *Env) pend(side pdg.Loc) *float64 {
	if side == pdg.DB {
		return &e.pendDB
	}
	return &e.pendApp
}

func (e *Env) cpu(side pdg.Loc) *sim.Resource {
	if side == pdg.DB {
		return e.DBCPU
	}
	return e.AppCPU
}

// Flush charges all accumulated CPU debt.
func (e *Env) Flush() {
	if e.pendApp > 0 {
		e.AppCPU.Use(e.P, e.pendApp)
		e.pendApp = 0
	}
	if e.pendDB > 0 {
		e.DBCPU.Use(e.P, e.pendDB)
		e.pendDB = 0
	}
}

// BlockExecuted implements runtime.Env.
func (e *Env) BlockExecuted(side pdg.Loc, instrs int) {
	p := e.pend(side)
	cost := float64(instrs) * e.CM.InstrCost
	if side == pdg.DB {
		cost *= e.dbSlowdown()
	}
	*p += cost
	if *p >= flushThreshold {
		e.cpu(side).Use(e.P, *p)
		*p = 0
	}
}

// DBCall implements runtime.Env: a database operation issued from the
// application server pays a round trip; the engine work itself is
// database CPU either way.
func (e *Env) DBCall(side pdg.Loc) {
	e.Flush()
	if side == pdg.App {
		e.Link.Transfer(e.P, e.CM.DBReqBytes)
	}
	e.DBCPU.Use(e.P, e.CM.DBOpCost)
	if side == pdg.App {
		e.Link.Transfer(e.P, e.CM.DBRespBytes)
	}
}

// Sha1 implements runtime.Env.
func (e *Env) Sha1(side pdg.Loc) {
	p := e.pend(side)
	cost := e.CM.Sha1Cost
	if side == pdg.DB {
		cost *= e.dbSlowdown()
	}
	*p += cost
	if *p >= flushThreshold {
		e.cpu(side).Use(e.P, *p)
		*p = 0
	}
}

// TransferSend implements runtime.Env: control-transfer messages pay
// link latency plus serialization at the measured message size.
func (e *Env) TransferSend(from pdg.Loc, bytes int) {
	e.Flush()
	e.Link.Transfer(e.P, bytes)
}

// Logic charges native (non-Pyxis) application-logic CPU.
func (e *Env) Logic(side pdg.Loc, seconds float64) {
	if side == pdg.DB {
		seconds *= e.dbSlowdown()
	}
	e.cpu(side).Use(e.P, seconds)
}

// ---------------------------------------------------------------------------
// Metered database connections for the native implementations
// ---------------------------------------------------------------------------

// simConn wraps an embedded session and charges the cost model per
// operation as if issued from the given side. The JDBC implementation
// uses side=App (every op is a round trip); the Manual implementation
// uses side=DB (colocated).
type simConn struct {
	inner *dbapi.Local
	env   *Env
	side  pdg.Loc
	// Ops counts operations for reporting.
	Ops int64
}

func newSimConn(db *sqldb.DB, env *Env, side pdg.Loc) *simConn {
	l := dbapi.NewLocal(db)
	l.Sess.WaitPoint = env.P.WaitPoint
	return &simConn{inner: l, env: env, side: side}
}

func (c *simConn) charge() {
	c.Ops++
	c.env.DBCall(c.side)
}

func (c *simConn) Exec(sql string, args ...val.Value) (int, error) {
	c.charge()
	return c.inner.Exec(sql, args...)
}

func (c *simConn) Query(sql string, args ...val.Value) (*sqldb.ResultSet, error) {
	c.charge()
	return c.inner.Query(sql, args...)
}

func (c *simConn) Begin() error    { c.charge(); return c.inner.Begin() }
func (c *simConn) Commit() error   { c.charge(); return c.inner.Commit() }
func (c *simConn) Rollback() error { c.charge(); return c.inner.Rollback() }
func (c *simConn) Close() error    { return nil }

// InTxn reports whether the underlying session has an open transaction.
func (c *simConn) InTxn() bool { return c.inner.Sess.InTxn() }
