package bench

import (
	"testing"
)

// TestRunParallelMux is the acceptance test for the concurrent
// runtime: >= 8 concurrent sessions multiplexed over one connection
// per wire against one shared DB-side runtime, with the ledger
// invariant proving no update was lost under contention.
func TestRunParallelMux(t *testing.T) {
	part, err := ParallelPartition(1.0)
	if err != nil {
		t.Fatal(err)
	}
	if part.DBStatements() == 0 {
		t.Fatal("budget 1.0 should place statements on the DB server")
	}
	cfg := ParallelCfg{Clients: 8, Txns: 10, ShareEvery: 4}
	res, err := RunParallel(part, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantTxns := cfg.Clients * cfg.Txns
	if res.TotalTxns != wantTxns {
		t.Errorf("completed %d txns, want %d", res.TotalTxns, wantTxns)
	}
	if res.Transfers == 0 {
		t.Error("shared DB-side peer served no control transfers")
	}
	// Every deposit added exactly 1.0 somewhere; lost updates on the
	// contended shared account would show up as a lower total.
	if res.FinalTotal != float64(wantTxns) {
		t.Errorf("sum of balances = %v, want %v (lost update under concurrency)", res.FinalTotal, wantTxns)
	}
	if len(res.PerSession) != cfg.Clients {
		t.Errorf("per-session stats for %d sessions, want %d", len(res.PerSession), cfg.Clients)
	}
	for i, s := range res.PerSession {
		if s.N != cfg.Txns {
			t.Errorf("session %d recorded %d latencies, want %d", i, s.N, cfg.Txns)
		}
	}
}

// TestRunParallelTCP runs the same shape over real loopback TCP.
func TestRunParallelTCP(t *testing.T) {
	part, err := ParallelPartition(1.0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunParallel(part, ParallelCfg{Clients: 8, Txns: 5, ShareEvery: 2, TCP: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTxns != 40 {
		t.Errorf("completed %d txns, want 40", res.TotalTxns)
	}
	if res.FinalTotal != 40 {
		t.Errorf("sum of balances = %v, want 40", res.FinalTotal)
	}
}

// TestRunParallelAppSide exercises the low-budget partition (queries
// issued from the APP side over the database wire) under concurrency.
func TestRunParallelAppSide(t *testing.T) {
	part, err := ParallelPartition(0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunParallel(part, ParallelCfg{Clients: 8, Txns: 5, ShareEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTxns != 40 {
		t.Errorf("completed %d txns, want 40", res.TotalTxns)
	}
	if res.FinalTotal != 40 {
		t.Errorf("sum of balances = %v, want 40", res.FinalTotal)
	}
}
