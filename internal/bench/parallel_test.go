package bench

import (
	"runtime"
	"testing"
)

// TestRunParallelMux is the acceptance test for the concurrent
// runtime: >= 8 concurrent sessions multiplexed over one connection
// per wire against one shared DB-side runtime, with the ledger
// invariant proving no update was lost under contention.
func TestRunParallelMux(t *testing.T) {
	part, err := ParallelPartition(1.0)
	if err != nil {
		t.Fatal(err)
	}
	if part.DBStatements() == 0 {
		t.Fatal("budget 1.0 should place statements on the DB server")
	}
	cfg := ParallelCfg{Clients: 8, Txns: 10, ShareEvery: 4}
	res, err := RunParallel(part, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantTxns := cfg.Clients * cfg.Txns
	if res.TotalTxns != wantTxns {
		t.Errorf("completed %d txns, want %d", res.TotalTxns, wantTxns)
	}
	if res.Transfers == 0 {
		t.Error("shared DB-side peer served no control transfers")
	}
	// Every deposit added exactly 1.0 somewhere; lost updates on the
	// contended shared account would show up as a lower total.
	if res.FinalTotal != float64(wantTxns) {
		t.Errorf("sum of balances = %v, want %v (lost update under concurrency)", res.FinalTotal, wantTxns)
	}
	if len(res.PerSession) != cfg.Clients {
		t.Errorf("per-session stats for %d sessions, want %d", len(res.PerSession), cfg.Clients)
	}
	for i, s := range res.PerSession {
		if s.N != cfg.Txns {
			t.Errorf("session %d recorded %d latencies, want %d", i, s.N, cfg.Txns)
		}
	}
}

// TestRunParallelTCP runs the same shape over real loopback TCP.
func TestRunParallelTCP(t *testing.T) {
	part, err := ParallelPartition(1.0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunParallel(part, ParallelCfg{Clients: 8, Txns: 5, ShareEvery: 2, TCP: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTxns != 40 {
		t.Errorf("completed %d txns, want 40", res.TotalTxns)
	}
	if res.FinalTotal != 40 {
		t.Errorf("sum of balances = %v, want 40", res.FinalTotal)
	}
}

// TestParallelLedgerScaling is the acceptance benchmark for the
// sharded engine: ledger throughput at 8 clients vs. 1 client, using
// the stored-procedure partition so every statement hits the shared
// database. Under the old single engine mutex the curve was flat; the
// sharded engine must reach >= 2x at 8 clients.
//
// Wall-clock parallel speedup needs parallel hardware: with fewer than
// 4 schedulable CPUs the 1-client baseline already saturates the
// machine (the deposit path is CPU-bound end to end), so no storage
// engine could pass the ratio. On such hosts the sweep still runs and
// every correctness invariant is enforced, plus a no-collapse bound on
// throughput; the 2x assertion applies on >= 4 CPUs.
func TestParallelLedgerScaling(t *testing.T) {
	part, err := ParallelPartition(1.0)
	if err != nil {
		t.Fatal(err)
	}
	const txnsPerClient = 50
	base := ParallelCfg{Txns: txnsPerClient, ShareEvery: 8}
	sizes := []int{1, 8}

	assertRatio := runtime.GOMAXPROCS(0) >= 4
	// The 2x acceptance target applies to uninstrumented builds; the
	// race detector's synchronization bookkeeping flattens parallel
	// speedup, so race builds assert a softer (still rising) curve.
	wantRatio := 2.0
	if raceEnabled {
		wantRatio = 1.4
	}
	// Wall-clock measurement: allow scheduler-noise retries. The
	// serialized-host path gets them too — its 0.5x collapse guard is
	// just as exposed to a noisy neighbor or GC pause as the scaling
	// assertion, especially on a 1-CPU box under the race detector.
	const attempts = 3

	var ratio float64
	for attempt := 0; attempt < attempts; attempt++ {
		results, err := RunScaling(part, base, sizes)
		if err != nil {
			t.Fatal(err)
		}
		for _, res := range results {
			wantTxns := res.Clients * txnsPerClient
			if res.TotalTxns != wantTxns {
				t.Fatalf("clients=%d: completed %d txns, want %d", res.Clients, res.TotalTxns, wantTxns)
			}
			if res.FinalTotal != float64(wantTxns) {
				t.Fatalf("clients=%d: sum of balances = %v, want %v (lost update)",
					res.Clients, res.FinalTotal, wantTxns)
			}
		}
		one, eight := results[0], results[len(results)-1]
		ratio = eight.Tput / one.Tput
		t.Logf("attempt %d (GOMAXPROCS=%d):\n%s", attempt+1, runtime.GOMAXPROCS(0), ScalingReport(results))
		if assertRatio && ratio >= wantRatio {
			break
		}
		if !assertRatio && ratio >= 0.5 {
			break
		}
	}
	if !assertRatio {
		if ratio < 0.5 {
			t.Errorf("8-client throughput collapsed to %.2fx of 1-client on a %d-CPU host",
				ratio, runtime.GOMAXPROCS(0))
		}
		t.Skipf("GOMAXPROCS=%d < 4: ran sweep + invariants (ratio %.2fx); the 2x scaling assertion needs parallel hardware",
			runtime.GOMAXPROCS(0), ratio)
	}
	if ratio < wantRatio {
		t.Errorf("8-client throughput only %.2fx of 1-client, want >= %.1fx (race=%v; engine still serializing?)",
			ratio, wantRatio, raceEnabled)
	}
}

// TestRunParallelAppSide exercises the low-budget partition (queries
// issued from the APP side over the database wire) under concurrency.
func TestRunParallelAppSide(t *testing.T) {
	part, err := ParallelPartition(0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunParallel(part, ParallelCfg{Clients: 8, Txns: 5, ShareEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTxns != 40 {
		t.Errorf("completed %d txns, want 40", res.TotalTxns)
	}
	if res.FinalTotal != 40 {
		t.Errorf("sum of balances = %v, want 40", res.FinalTotal)
	}
}
