package bench

import (
	"pyxis/internal/compile"
	"pyxis/internal/dbapi"
	"pyxis/internal/pdg"
	"pyxis/internal/rpc"
	"pyxis/internal/runtime"
	"pyxis/internal/sim"
	"pyxis/internal/sqldb"
)

// Workload describes one benchmark implementation to drive.
type Workload struct {
	Name string
	// NewDB loads a fresh database instance.
	NewDB func() *sqldb.DB
	// NewClient builds a per-client transaction function; k is the
	// transaction sequence number (workload generator seed).
	NewClient func(db *sqldb.DB, p *sim.Proc, env *Env, id int) func(k int64) error
}

// RunCfg configures one simulated measurement (one point of a figure).
type RunCfg struct {
	Clients  int
	Rate     float64 // target transactions/second across all clients
	Warmup   float64 // simulated seconds before measurement
	Window   float64 // simulated measurement seconds
	AppCores int
	DBCores  int
	CM       CostModel
	// BGLoad occupies this many DB cores with background work
	// (emulating a contended database server).
	BGLoad int
}

// Point is one measured sample of a latency/throughput experiment.
type Point struct {
	Impl      string
	Rate      float64 // offered rate
	Tput      float64 // completed transactions/second
	MeanLatMs float64
	P95LatMs  float64
	DBUtil    float64 // percent of DB core pool busy
	AppUtil   float64 // percent of app core pool busy
	NetKBps   float64 // link bytes/second, in KB/s
	Errors    int64
}

// Run drives cfg.Clients closed-loop clients, each pacing itself to
// the per-client share of cfg.Rate (a client never has more than one
// transaction outstanding, like the paper's 20-client harness), and
// measures latency/throughput/CPU/network during the window.
func Run(w Workload, cfg RunCfg) Point {
	eng := sim.New()
	appCPU := eng.NewResource("app-cpu", cfg.AppCores)
	dbCPU := eng.NewResource("db-cpu", cfg.DBCores)
	link := eng.NewLink(cfg.CM.RTT, cfg.CM.BandwidthBps)
	db := w.NewDB()

	measureStart := cfg.Warmup
	end := cfg.Warmup + cfg.Window
	var hist sim.Hist
	completed := 0
	var errors int64

	// Background load occupies DB cores in 1 ms slices.
	for i := 0; i < cfg.BGLoad; i++ {
		eng.Spawn(0, func(p *sim.Proc) {
			for p.Now() < end {
				dbCPU.Use(p, 0.001)
			}
		})
	}

	interval := float64(cfg.Clients) / cfg.Rate
	for i := 0; i < cfg.Clients; i++ {
		i := i
		start := interval * float64(i) / float64(cfg.Clients)
		eng.Spawn(start, func(p *sim.Proc) {
			env := &Env{P: p, AppCPU: appCPU, DBCPU: dbCPU, Link: link, CM: cfg.CM}
			txn := w.NewClient(db, p, env, i)
			next := p.Now()
			for k := int64(0); ; k++ {
				if p.Now() < next {
					p.Sleep(next - p.Now())
				}
				if p.Now() >= end {
					return
				}
				next += interval
				t0 := p.Now()
				err := txn(int64(i)*1_000_003 + k)
				env.Flush()
				if t0 >= measureStart {
					if err != nil {
						errors++
					} else {
						hist.Add(p.Now() - t0)
						completed++
					}
				}
			}
		})
	}

	// Coordinator resets the stats windows at measurement start.
	eng.Spawn(measureStart, func(p *sim.Proc) {
		appCPU.ResetStats()
		dbCPU.ResetStats()
		link.ResetStats()
	})

	eng.Run(end)

	return Point{
		Impl:      w.Name,
		Rate:      cfg.Rate,
		Tput:      float64(completed) / cfg.Window,
		MeanLatMs: hist.Mean() * 1e3,
		P95LatMs:  hist.P(0.95) * 1e3,
		DBUtil:    dbCPU.Utilization() * 100,
		AppUtil:   appCPU.Utilization() * 100,
		NetKBps:   link.Throughput() / 1e3,
		Errors:    errors,
	}
}

// SimClient is one simulated client's Pyxis deployment.
type SimClient struct {
	Client  *runtime.Client
	AppConn *dbapi.Local
	DBConn  *dbapi.Local
	DBPeer  *runtime.Peer
}

// RollbackAll aborts any transaction left open on either side (used
// when a transaction fails mid-flight, e.g. as a deadlock victim).
func (sc *SimClient) RollbackAll() {
	if sc.AppConn.Sess.InTxn() {
		_ = sc.AppConn.Rollback()
	}
	if sc.DBConn.Sess.InTxn() {
		_ = sc.DBConn.Rollback()
	}
}

// NewSimClient wires one simulated client's Pyxis deployment: an APP
// peer and a DB peer sharing the compiled program, both charging the
// env, with lock waits parked in virtual time.
func NewSimClient(prog *compile.Program, db *sqldb.DB, p *sim.Proc, env *Env) *SimClient {
	dbLocal := dbapi.NewLocal(db)
	dbLocal.Sess.WaitPoint = p.WaitPoint
	dbPeer := runtime.NewPeer(prog, pdg.DB, nil)
	dbPeer.Env = env
	dbSess := dbPeer.NewSession(dbLocal)

	appLocal := dbapi.NewLocal(db)
	appLocal.Sess.WaitPoint = p.WaitPoint
	appPeer := runtime.NewPeer(prog, pdg.App, nil)
	appPeer.Env = env
	appSess := appPeer.NewSession(appLocal)

	ctl := rpc.NewInProc(runtime.Handler(dbSess), 0) // latency charged via env
	return &SimClient{
		Client:  runtime.NewClient(appSess, ctl),
		AppConn: appLocal,
		DBConn:  dbLocal,
		DBPeer:  dbPeer,
	}
}
