package bench

import (
	"fmt"

	"pyxis"
	"pyxis/internal/interp"
	"pyxis/internal/pdg"
	"pyxis/internal/sim"
	"pyxis/internal/sqldb"
	"pyxis/internal/val"
)

// TPCWConfig scales the TPC-W-like bookstore (paper §7.2: 10,000
// items, browsing mix, 20 emulated browsers). The browsing mix drives
// six interaction types; order-inquiry touches no tables at all —
// the paper highlights that Pyxis leaves it on the application server
// even with a full budget.
type TPCWConfig struct {
	Items   int
	Authors int
}

// DefaultTPCW returns the evaluation configuration.
func DefaultTPCW() TPCWConfig { return TPCWConfig{Items: 1000, Authors: 100} }

var tpcwDDL = []string{
	"CREATE TABLE item (i_id INT PRIMARY KEY, i_title VARCHAR(60), i_a_id INT, i_pub_date INT, i_price DOUBLE, i_total_sold INT)",
	"CREATE TABLE author (a_id INT PRIMARY KEY, a_name VARCHAR(40))",
	"CREATE TABLE customer (c_id INT PRIMARY KEY, c_uname VARCHAR(20), c_since INT)",
	"CREATE INDEX idx_item_date ON item (i_pub_date)",
	"CREATE INDEX idx_item_sold ON item (i_total_sold)",
}

// Load builds and populates the store.
func (c TPCWConfig) Load() *sqldb.DB {
	db := sqldb.Open()
	s := db.NewSession()
	must := func(sql string, args ...val.Value) {
		if _, err := s.Exec(sql, args...); err != nil {
			panic(fmt.Sprintf("tpcw load: %s: %v", sql, err))
		}
	}
	for _, ddl := range tpcwDDL {
		must(ddl)
	}
	for a := 1; a <= c.Authors; a++ {
		must("INSERT INTO author VALUES (?, ?)", val.IntV(int64(a)), val.StrV(fmt.Sprintf("author-%d", a)))
	}
	for i := 1; i <= c.Items; i++ {
		must("INSERT INTO item VALUES (?, ?, ?, ?, ?, ?)",
			val.IntV(int64(i)), val.StrV(fmt.Sprintf("book title %d", i)),
			val.IntV(int64(i%c.Authors+1)), val.IntV(int64(20000000+i%3650)),
			val.DoubleV(5+float64(i%40)), val.IntV(int64((i*37)%500)))
	}
	for cu := 1; cu <= 100; cu++ {
		must("INSERT INTO customer VALUES (?, ?, ?)",
			val.IntV(int64(cu)), val.StrV(fmt.Sprintf("user%d", cu)), val.IntV(int64(20050000+cu)))
	}
	return db
}

// TPCWSource implements six web interactions of the browsing mix in
// PyxJ. Each builds an HTML page and returns its length. Interactions
// with heavy per-page query sequences (home, product detail, best
// sellers) benefit from server-side placement; orderInquiry performs
// no database access and must stay on the application server.
const TPCWSource = `
class TPCW {
    int pages;

    TPCW() {
        pages = 0;
    }

    entry int home(int cid) {
        string html = "<html><body>";
        table cu = db.query("SELECT c_uname FROM customer WHERE c_id = ?", cid);
        if (cu.rows() > 0) {
            html = html + "<h1>Welcome " + cu.getString(0, 0) + "</h1>";
        }
        table promo = db.query("SELECT i_id, i_title FROM item WHERE i_id <= 5");
        int r = 0;
        while (r < promo.rows()) {
            html = html + "<a href=/item/" + sys.str(promo.getInt(r, 0)) + ">" + promo.getString(r, 1) + "</a>";
            r++;
        }
        html = html + "</body></html>";
        pages++;
        return html.length();
    }

    entry int productDetail(int iid) {
        string html = "<html><body>";
        table it = db.query("SELECT i_title, i_price, i_a_id FROM item WHERE i_id = ?", iid);
        if (it.rows() > 0) {
            table au = db.query("SELECT a_name FROM author WHERE a_id = ?", it.getInt(0, 2));
            html = html + "<h1>" + it.getString(0, 0) + "</h1>";
            html = html + "<p>by " + au.getString(0, 0) + "</p>";
            html = html + "<p>$" + sys.str(it.getDouble(0, 1)) + "</p>";
        }
        html = html + "</body></html>";
        pages++;
        return html.length();
    }

    entry int searchByTitle(int seed) {
        string pat = "book title " + sys.str(seed % 100) + "%";
        table rs = db.query("SELECT i_id, i_title, i_price FROM item WHERE i_title LIKE ? ORDER BY i_title LIMIT 20", pat);
        string html = "<html><body><ul>";
        int r = 0;
        while (r < rs.rows()) {
            html = html + "<li>" + rs.getString(r, 1) + " $" + sys.str(rs.getDouble(r, 2)) + "</li>";
            r++;
        }
        html = html + "</ul></body></html>";
        pages++;
        return html.length();
    }

    entry int newProducts(int day) {
        table rs = db.query("SELECT i_id, i_title FROM item WHERE i_pub_date >= ? ORDER BY i_pub_date DESC LIMIT 20", day);
        string html = "<html><body><ol>";
        int r = 0;
        while (r < rs.rows()) {
            html = html + "<li><a href=/item/" + sys.str(rs.getInt(r, 0)) + ">" + rs.getString(r, 1) + "</a></li>";
            r++;
        }
        html = html + "</ol></body></html>";
        pages++;
        return html.length();
    }

    entry int bestSellers() {
        table rs = db.query("SELECT i_id, i_title, i_total_sold FROM item ORDER BY i_total_sold DESC LIMIT 20");
        string html = "<html><body><table>";
        int r = 0;
        while (r < rs.rows()) {
            table au = db.query("SELECT a_name FROM author, item WHERE item.i_id = ? AND a_id = i_a_id", rs.getInt(r, 0));
            string aname = "?";
            if (au.rows() > 0) {
                aname = au.getString(0, 0);
            }
            html = html + "<tr><td>" + rs.getString(r, 1) + "</td><td>" + aname + "</td><td>" + sys.str(rs.getInt(r, 2)) + "</td></tr>";
            r++;
        }
        html = html + "</table></body></html>";
        pages++;
        return html.length();
    }

    entry int orderInquiry(int cid) {
        string html = "<html><body><form action=/order-display method=POST>";
        html = html + "<input type=text name=uname value=user" + sys.str(cid) + ">";
        html = html + "<input type=password name=passwd>";
        html = html + "<input type=submit value=Submit>";
        html = html + "</form></body></html>";
        pages++;
        return html.length();
    }
}
`

// Browsing-mix weights (percent), following the TPC-W browsing mix
// shape: home 29, new products 11, best sellers 11, product detail 21,
// search 23, order inquiry 5.
var tpcwMix = []struct {
	method string
	weight int
}{
	{"home", 29},
	{"newProducts", 11},
	{"bestSellers", 11},
	{"productDetail", 21},
	{"searchByTitle", 23},
	{"orderInquiry", 5},
}

// pickInteraction maps a sequence number to an interaction.
func pickInteraction(k int64) string {
	h := (k*48271 + 11) % 100
	if h < 0 {
		h = -h
	}
	acc := int64(0)
	for _, m := range tpcwMix {
		acc += int64(m.weight)
		if h < acc {
			return m.method
		}
	}
	return "home"
}

func (c TPCWConfig) interactionArg(method string, k int64) val.Value {
	h := k*7919 + 13
	if h < 0 {
		h = -h
	}
	switch method {
	case "home", "orderInquiry":
		return val.IntV(h%100 + 1)
	case "productDetail":
		return val.IntV(h%int64(c.Items) + 1)
	case "searchByTitle":
		return val.IntV(h % 100)
	case "newProducts":
		return val.IntV(20000000 + h%3650)
	case "bestSellers":
		return val.Value{}
	}
	return val.IntV(1)
}

// PyxisPartition profiles the browsing mix and partitions at the given
// budget fraction.
func (c TPCWConfig) PyxisPartition(budgetFrac float64) (*pyxis.Partition, error) {
	sys, err := pyxis.Load(TPCWSource)
	if err != nil {
		return nil, err
	}
	profDB := TPCWConfig{Items: 100, Authors: 10}.Load()
	pcfg := TPCWConfig{Items: 100, Authors: 10}
	err = sys.ProfileWorkload(profDB, func(ip *interp.Interp) error {
		obj, err := ip.NewObject("TPCW")
		if err != nil {
			return err
		}
		for k := int64(0); k < 100; k++ {
			method := pickInteraction(k)
			m := sys.Prog.Method("TPCW", method)
			arg := pcfg.interactionArg(method, k)
			var callErr error
			if method == "bestSellers" {
				_, callErr = ip.CallEntry(m, obj)
			} else {
				_, callErr = ip.CallEntry(m, obj, arg)
			}
			if callErr != nil {
				return fmt.Errorf("%s: %w", method, callErr)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return sys.PartitionAt(budgetFrac)
}

// JDBCWorkload: interactions implemented in native Go against the
// wire-cost connection (one round trip per query).
func (c TPCWConfig) JDBCWorkload() Workload {
	return Workload{
		Name:  "JDBC",
		NewDB: c.Load,
		NewClient: func(db *sqldb.DB, p *sim.Proc, env *Env, id int) func(int64) error {
			conn := newSimConn(db, env, pdg.App)
			return func(k int64) error {
				env.Logic(pdg.App, env.CM.NativeLogicCost)
				return c.nativeInteraction(conn, k)
			}
		},
	}
}

// ManualWorkload: one RPC per interaction; logic colocated with the DB.
func (c TPCWConfig) ManualWorkload() Workload {
	return Workload{
		Name:  "Manual",
		NewDB: c.Load,
		NewClient: func(db *sqldb.DB, p *sim.Proc, env *Env, id int) func(int64) error {
			conn := newSimConn(db, env, pdg.DB)
			return func(k int64) error {
				env.Link.Transfer(p, 80)
				env.Logic(pdg.DB, env.CM.NativeLogicCost)
				err := c.nativeInteraction(conn, k)
				env.Link.Transfer(p, 640) // page HTML ships back
				return err
			}
		},
	}
}

// PyxisWorkload: the partitioned PyxJ interactions.
func (c TPCWConfig) PyxisWorkload(part *pyxis.Partition) Workload {
	return Workload{
		Name:  "Pyxis",
		NewDB: c.Load,
		NewClient: func(db *sqldb.DB, p *sim.Proc, env *Env, id int) func(int64) error {
			sc := NewSimClient(part.Compiled, db, p, env)
			oid, err := sc.Client.NewObject("TPCW")
			if err != nil {
				panic(err)
			}
			return func(k int64) error {
				method := pickInteraction(k)
				arg := c.interactionArg(method, k)
				var callErr error
				if method == "bestSellers" {
					_, callErr = sc.Client.CallEntry("TPCW.bestSellers", oid)
				} else {
					_, callErr = sc.Client.CallEntry("TPCW."+method, oid, arg)
				}
				if callErr != nil {
					sc.RollbackAll()
				}
				return callErr
			}
		},
	}
}

// nativeInteraction mirrors the PyxJ interactions' SQL access patterns
// for the hand-written implementations.
func (c TPCWConfig) nativeInteraction(conn *simConn, k int64) error {
	method := pickInteraction(k)
	arg := c.interactionArg(method, k)
	switch method {
	case "home":
		if _, err := conn.Query("SELECT c_uname FROM customer WHERE c_id = ?", arg); err != nil {
			return err
		}
		_, err := conn.Query("SELECT i_id, i_title FROM item WHERE i_id <= 5")
		return err
	case "productDetail":
		it, err := conn.Query("SELECT i_title, i_price, i_a_id FROM item WHERE i_id = ?", arg)
		if err != nil {
			return err
		}
		if len(it.Rows) > 0 {
			_, err = conn.Query("SELECT a_name FROM author WHERE a_id = ?", it.Rows[0][2])
		}
		return err
	case "searchByTitle":
		pat := fmt.Sprintf("book title %d%%", arg.I)
		_, err := conn.Query("SELECT i_id, i_title, i_price FROM item WHERE i_title LIKE ? ORDER BY i_title LIMIT 20", val.StrV(pat))
		return err
	case "newProducts":
		_, err := conn.Query("SELECT i_id, i_title FROM item WHERE i_pub_date >= ? ORDER BY i_pub_date DESC LIMIT 20", arg)
		return err
	case "bestSellers":
		rs, err := conn.Query("SELECT i_id, i_title, i_total_sold FROM item ORDER BY i_total_sold DESC LIMIT 20")
		if err != nil {
			return err
		}
		for _, row := range rs.Rows {
			if _, err := conn.Query("SELECT a_name FROM author, item WHERE item.i_id = ? AND a_id = i_a_id", row[0]); err != nil {
				return err
			}
		}
		return nil
	case "orderInquiry":
		return nil // no database access: pure page generation
	}
	return nil
}
