package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestExampleFilesMatchBenchSources pins examples/neworder/tpcc.pyxj
// and tpcc.sql to the TPCCSource/tpccDDL constants the benchmarks
// compile. CI feeds the files to `pyxisc -verify`, so a drift would
// mean CI verifies a different program than the benchmarks run.
func TestExampleFilesMatchBenchSources(t *testing.T) {
	dir := filepath.Join("..", "..", "examples", "neworder")

	pyxj, err := os.ReadFile(filepath.Join(dir, "tpcc.pyxj"))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := strings.TrimSpace(string(pyxj)), strings.TrimSpace(TPCCSource); got != want {
		t.Errorf("examples/neworder/tpcc.pyxj is out of sync with bench.TPCCSource — regenerate it from the constant")
	}

	sql, err := os.ReadFile(filepath.Join(dir, "tpcc.sql"))
	if err != nil {
		t.Fatal(err)
	}
	var stmts []string
	for _, s := range strings.Split(string(sql), ";") {
		if s = strings.TrimSpace(s); s != "" {
			stmts = append(stmts, s)
		}
	}
	if len(stmts) != len(tpccDDL) {
		t.Fatalf("examples/neworder/tpcc.sql has %d statements; tpccDDL has %d", len(stmts), len(tpccDDL))
	}
	for i, want := range tpccDDL {
		if stmts[i] != want {
			t.Errorf("tpcc.sql statement %d out of sync:\n  file: %s\n  code: %s", i, stmts[i], want)
		}
	}
}
