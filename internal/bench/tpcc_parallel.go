package bench

import (
	"fmt"
	"math"
	goruntime "runtime"
	"strings"
	"sync"
	"time"

	"pyxis"
	"pyxis/internal/dbapi"
	"pyxis/internal/pdg"
	"pyxis/internal/rpc"
	"pyxis/internal/runtime"
	"pyxis/internal/sqldb"
	"pyxis/internal/val"
)

// This file ports the simulated TPC-C workload (tpcc.go) to the real
// concurrent driver: N goroutine clients run the PyxJ NewOrder/Payment
// mix through the partitioned runtime over multiplexed wires against
// ONE shared database, measured on the wall clock — the live
// counterpart of the paper's Figs. 9-11 setup, now with genuinely
// parallel sessions exercising the sharded engine and its lock
// manager (stock updates arrive in per-transaction random order, so
// real deadlocks occur and must resolve via victim abort + retry).

// TPCCParallelCfg configures one wall-clock TPC-C run.
type TPCCParallelCfg struct {
	Clients int // concurrent sessions (goroutines)
	Txns    int // transactions per client
	// PaymentEvery makes every k-th transaction a Payment (0 disables
	// payments; 3 gives a roughly TPC-C-like share of the mix).
	PaymentEvery int
	// TCP runs the wires over real loopback TCP mux servers instead of
	// in-process pipes.
	TCP bool
	// MaxRetries bounds deadlock-victim retries per transaction
	// (default 50; every victim abort implies another transaction
	// progressed, so retries converge — the bound guards against a
	// livelocked engine).
	MaxRetries int
	// Legacy runs both peers on the seed pipeline — version-0 stack
	// transfers, string-SQL database calls, a fresh allocation per
	// activation frame. The interp-vs-vm experiment uses it as the
	// baseline against the fused/prepared hot path.
	Legacy bool
}

// TPCCParallelResult aggregates one wall-clock TPC-C run.
type TPCCParallelResult struct {
	Clients   int
	TotalTxns int // committed or intentionally rolled back
	NewOrders int
	Payments  int
	// Deadlocks counts victim aborts that were retried (the workload's
	// stock updates are unordered across transactions, so these are
	// expected under concurrency).
	Deadlocks int
	Elapsed   time.Duration
	Tput      float64
	MeanMs    float64
	P95Ms     float64
	Transfers int64
	// TransferBytes is the control-transfer traffic both directions
	// (APP-peer sends plus DB-peer sends); BytesPerTxn normalizes it.
	TransferBytes int64
	BytesPerTxn   float64
	// AllocsPerTxn is the process-wide heap allocation count per
	// transaction over the measured window (driver included — both
	// variants of a comparison run the identical driver).
	AllocsPerTxn float64
	// LockWaits/LockDeadlocks snapshot the engine's contention counters
	// after the run.
	LockWaits     int64
	LockDeadlocks int64
}

// TPCCParallelPartition profiles the TPC-C PyxJ program (NewOrder and
// Payment) and solves a partition at the given budget fraction.
func TPCCParallelPartition(c TPCCConfig, budgetFrac float64) (*pyxis.Partition, error) {
	return TPCCParallelPartitionOpts(c, budgetFrac, false)
}

// TPCCParallelPartitionOpts is TPCCParallelPartition with the
// superblock fusion post-pass optionally disabled — the interp-vs-vm
// baseline compiles the same placement without fusion.
func TPCCParallelPartitionOpts(c TPCCConfig, budgetFrac float64, noFuse bool) (*pyxis.Partition, error) {
	sys, err := profiledTPCCSystem(c)
	if err != nil {
		return nil, err
	}
	sys.NoFuse = noFuse
	return sys.PartitionAt(budgetFrac)
}

// isDeadlockErr matches a deadlock abort whether it surfaces as the
// sqldb sentinel (APP-side statements over the database wire) or as a
// remote runtime error string (DB-side statements inside a control
// transfer).
func isDeadlockErr(err error) bool {
	return err != nil && strings.Contains(err.Error(), "deadlock")
}

// RunParallelTPCC drives cfg.Clients concurrent sessions of the
// NewOrder/Payment mix against one shared TPC-C database and returns
// the aggregate result plus the database, so callers can audit the
// TPC-C consistency invariants (warehouse YTD vs. district YTDs,
// order counters vs. order rows).
func RunParallelTPCC(part *pyxis.Partition, c TPCCConfig, cfg TPCCParallelCfg) (*TPCCParallelResult, *sqldb.DB, error) {
	if cfg.Clients < 1 || cfg.Txns < 1 {
		return nil, nil, fmt.Errorf("bench: RunParallelTPCC needs Clients >= 1 and Txns >= 1")
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 50
	}
	db := c.Load()

	prog := part.Compiled
	dbPeer := runtime.NewPeer(prog, pdg.DB, nil)
	dbPeer.Legacy = cfg.Legacy
	appPeer := runtime.NewPeer(prog, pdg.App, nil)
	appPeer.Legacy = cfg.Legacy
	newMgr := func() rpc.SessionHandlers {
		return runtime.NewSessionManager(dbPeer, func() dbapi.Conn { return dbapi.NewLocal(db) })
	}

	var ctlMux, dbMux *rpc.MuxClient
	if cfg.TCP {
		ctlSrv, err := rpc.NewMuxServer("127.0.0.1:0", newMgr)
		if err != nil {
			return nil, nil, err
		}
		defer ctlSrv.Close()
		dbSrv, err := rpc.NewMuxServer("127.0.0.1:0", func() rpc.SessionHandlers { return dbapi.MuxHandlers(db) })
		if err != nil {
			return nil, nil, err
		}
		defer dbSrv.Close()
		if ctlMux, err = rpc.DialMux(ctlSrv.Addr()); err != nil {
			return nil, nil, err
		}
		defer ctlMux.Close()
		if dbMux, err = rpc.DialMux(dbSrv.Addr()); err != nil {
			return nil, nil, err
		}
		defer dbMux.Close()
	} else {
		ctlMux = inProcMux(newMgr())
		defer ctlMux.Close()
		dbMux = inProcMux(dbapi.MuxHandlers(db))
		defer dbMux.Close()
	}

	type sessionOut struct {
		lats      []float64
		newOrders int
		payments  int
		deadlocks int
		err       error
	}
	outs := make([]sessionOut, cfg.Clients)
	var wg sync.WaitGroup
	var memBefore goruntime.MemStats
	goruntime.ReadMemStats(&memBefore)
	start := time.Now()
	for i := 0; i < cfg.Clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out := &outs[i]
			ctlT := ctlMux.Session()
			dbT := dbMux.Session()
			sess := appPeer.NewSession(dbapi.NewClient(dbT))
			client := runtime.NewClient(sess, ctlT)
			defer client.Close()
			oid, err := client.NewObject("TPCC")
			if err != nil {
				out.err = err
				return
			}
			for k := 0; k < cfg.Txns; k++ {
				seq := int64(i)*1_000_003 + int64(k)
				wid, did, cid, olcnt, seed, rb := c.txnParams(seq)
				isPayment := cfg.PaymentEvery > 0 && k%cfg.PaymentEvery == 0
				t0 := time.Now()
				for attempt := 0; ; attempt++ {
					if isPayment {
						amount := float64(seq%97 + 1)
						_, err = client.CallEntry("TPCC.payment", oid,
							val.IntV(wid), val.IntV(did), val.IntV(cid), val.DoubleV(amount))
					} else {
						_, err = client.CallEntry("TPCC.newOrder", oid,
							val.IntV(wid), val.IntV(did), val.IntV(cid), val.IntV(olcnt),
							val.IntV(seed), val.IntV(int64(c.Items)), val.BoolV(rb))
					}
					if err == nil {
						break
					}
					// Deadlock victims were rolled back engine-side
					// (finishAuto aborts the whole transaction); the entry
					// call is simply retried.
					if isDeadlockErr(err) && attempt < cfg.MaxRetries {
						out.deadlocks++
						continue
					}
					out.err = fmt.Errorf("session %d txn %d: %w", i, k, err)
					return
				}
				out.lats = append(out.lats, float64(time.Since(t0).Microseconds())/1e3)
				if isPayment {
					out.payments++
				} else {
					out.newOrders++
				}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	var memAfter goruntime.MemStats
	goruntime.ReadMemStats(&memAfter)

	res := &TPCCParallelResult{Clients: cfg.Clients, Elapsed: elapsed}
	var all []float64
	for i := range outs {
		if outs[i].err != nil {
			return nil, nil, outs[i].err
		}
		all = append(all, outs[i].lats...)
		res.NewOrders += outs[i].newOrders
		res.Payments += outs[i].payments
		res.Deadlocks += outs[i].deadlocks
	}
	res.TotalTxns = len(all)
	res.Tput = float64(len(all)) / elapsed.Seconds()
	agg := Summarize(all)
	res.MeanMs, res.P95Ms = agg.MeanMs, agg.P95Ms
	dbSnap := dbPeer.Metrics.Snapshot()
	appSnap := appPeer.Metrics.Snapshot()
	res.Transfers = dbSnap.Transfers
	res.TransferBytes = dbSnap.BytesSent + appSnap.BytesSent
	if res.TotalTxns > 0 {
		res.BytesPerTxn = float64(res.TransferBytes) / float64(res.TotalTxns)
		res.AllocsPerTxn = float64(memAfter.Mallocs-memBefore.Mallocs) / float64(res.TotalTxns)
	}
	res.LockWaits, res.LockDeadlocks = db.LockWaits()
	return res, db, nil
}

// CheckTPCCInvariants audits the consistency invariants the concurrent
// NewOrder/Payment mix must preserve (the wall-clock port of the
// ledger lost-update check):
//
//   - per warehouse, w_ytd equals the sum of its districts' d_ytd
//     (TPC-C consistency condition 1 — Payment books both or neither);
//   - per district, d_next_o_id - 1 equals the number of orders and of
//     new_order rows (condition 2/3 — NewOrder's counter increment and
//     inserts commit or roll back atomically).
//
// It returns every violation found (nil means consistent).
func CheckTPCCInvariants(db *sqldb.DB, c TPCCConfig) []string {
	return CheckTPCCInvariantsRange(db, c, 1, c.Warehouses)
}

// CheckTPCCInvariantsRange audits the invariants for warehouses
// loW..hiW (inclusive) only — the per-shard half of the cross-shard
// aggregator, since a shard's database holds just its own warehouse
// range.
func CheckTPCCInvariantsRange(db *sqldb.DB, c TPCCConfig, loW, hiW int) []string {
	var ws []int64
	for w := loW; w <= hiW; w++ {
		ws = append(ws, int64(w))
	}
	return CheckTPCCInvariantsSet(db, c, ws)
}

// CheckTPCCInvariantsSet is CheckTPCCInvariantsRange over an arbitrary
// warehouse set — what a shard owns after live rebalancing, where
// ownership is the base range plus migration Overrides and need not be
// contiguous.
func CheckTPCCInvariantsSet(db *sqldb.DB, c TPCCConfig, ws []int64) []string {
	var violations []string
	s := db.NewSession()
	for _, w := range ws {
		wrs, err := s.Query("SELECT w_ytd FROM warehouse WHERE w_id = ?", val.IntV(int64(w)))
		if err != nil || len(wrs.Rows) != 1 {
			violations = append(violations, fmt.Sprintf("warehouse %d: %v", w, err))
			continue
		}
		drs, err := s.Query("SELECT SUM(d_ytd) FROM district WHERE d_w_id = ?", val.IntV(int64(w)))
		if err != nil {
			violations = append(violations, fmt.Sprintf("district sum w=%d: %v", w, err))
			continue
		}
		// The two totals accumulate the same amounts in different
		// orders, so compare with a relative epsilon: float addition is
		// not associative (current drivers use integer-valued amounts,
		// where the sums are exact, but the API takes arbitrary
		// float64s). A lost update shifts the totals by a whole amount,
		// far outside the tolerance.
		wYTD, dSum := wrs.Rows[0][0].F, drs.Rows[0][0].AsFloat()
		if diff := math.Abs(wYTD - dSum); diff > 1e-6*math.Max(1, math.Abs(wYTD)) {
			violations = append(violations,
				fmt.Sprintf("warehouse %d: w_ytd=%v != sum(d_ytd)=%v (lost Payment update)", w, wYTD, dSum))
		}
		for d := 1; d <= c.DistrictsPerW; d++ {
			nrs, err := s.Query("SELECT d_next_o_id FROM district WHERE d_w_id = ? AND d_id = ?",
				val.IntV(int64(w)), val.IntV(int64(d)))
			if err != nil || len(nrs.Rows) != 1 {
				violations = append(violations, fmt.Sprintf("district %d/%d: %v", w, d, err))
				continue
			}
			next := nrs.Rows[0][0].I
			ors, err := s.Query("SELECT COUNT(*) FROM orders WHERE o_w_id = ? AND o_d_id = ?",
				val.IntV(int64(w)), val.IntV(int64(d)))
			if err != nil {
				violations = append(violations, fmt.Sprintf("orders count %d/%d: %v", w, d, err))
				continue
			}
			nrs2, err := s.Query("SELECT COUNT(*) FROM new_order WHERE no_w_id = ? AND no_d_id = ?",
				val.IntV(int64(w)), val.IntV(int64(d)))
			if err != nil {
				violations = append(violations, fmt.Sprintf("new_order count %d/%d: %v", w, d, err))
				continue
			}
			if got := ors.Rows[0][0].I; got != next-1 {
				violations = append(violations,
					fmt.Sprintf("district %d/%d: %d orders but d_next_o_id=%d (want %d)", w, d, got, next, got+1))
			}
			if got := nrs2.Rows[0][0].I; got != next-1 {
				violations = append(violations,
					fmt.Sprintf("district %d/%d: %d new_order rows but d_next_o_id=%d", w, d, got, next))
			}
		}
	}
	return violations
}

// String renders the result as one table row block.
func (r *TPCCParallelResult) String() string {
	return fmt.Sprintf("clients=%d txns=%d (no=%d pay=%d dl-retries=%d) elapsed=%v tput=%.0f txn/s lat(mean=%.3fms p95=%.3fms) waits=%d",
		r.Clients, r.TotalTxns, r.NewOrders, r.Payments, r.Deadlocks,
		r.Elapsed.Round(time.Millisecond), r.Tput, r.MeanMs, r.P95Ms, r.LockWaits)
}
