package bench

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pyxis"
	"pyxis/internal/dbapi"
	"pyxis/internal/pdg"
	"pyxis/internal/rpc"
	"pyxis/internal/runtime"
	"pyxis/internal/sqldb"
	"pyxis/internal/val"
)

// This file is the wall-clock counterpart of Fig. 11: the paper's §6.3
// dynamic switching running live through the concurrent runtime
// instead of the discrete-event simulator (figures.go). One DB server
// hosts BOTH the high- and low-budget TPC-C deployments behind a dual
// SessionManager; a LoadMonitor samples the server's real saturation
// signal (CPU proxy, per-session mux queue depth, sqldb lock-wait
// rate) plus a forced external ramp, and piggy-backs it on every mux
// reply. The application side folds the reports into one shared
// Switcher EWMA while every session routes its next entry call
// independently through its own DynamicClient — so during a load
// transition, concurrent sessions genuinely disagree about the best
// deployment, exactly the per-session behavior ROADMAP asked for.

// DynamicPhase is one step of the forced DB-load ramp.
type DynamicPhase struct {
	Name string
	// Load is the external DB load percent forced for the phase —
	// the wall-clock analogue of Fig. 11's background spike.
	Load float64
	// Txns is the number of transactions each client runs this phase.
	Txns int
}

// DefaultDynamicRamp is the idle → spike → recover ramp of Fig. 11.
func DefaultDynamicRamp(txnsPerPhase int) []DynamicPhase {
	return []DynamicPhase{
		{Name: "idle", Load: 5, Txns: txnsPerPhase},
		{Name: "spike", Load: 95, Txns: txnsPerPhase},
		{Name: "recover", Load: 5, Txns: txnsPerPhase},
	}
}

// DynamicCfg configures one wall-clock dynamic-switching run.
type DynamicCfg struct {
	Clients int
	// Phases is the load ramp (nil selects DefaultDynamicRamp(20)).
	Phases []DynamicPhase
	// PaymentEvery makes every k-th transaction a Payment (0 disables).
	PaymentEvery int
	// TCP runs the wires over real loopback TCP mux servers instead of
	// in-process pipes.
	TCP bool
	// MaxRetries bounds deadlock/overload retries per transaction
	// (default 50).
	MaxRetries int
	// Hysteresis is the switcher's dead-band half-width δ (default 0 =
	// paper behavior).
	Hysteresis float64
	// Stagger offsets session i's phase start by i*Stagger so the
	// EWMA's flip lands at different transaction indices in different
	// sessions (default 3ms).
	Stagger time.Duration
}

// DynamicPhaseResult aggregates one phase of a run.
type DynamicPhaseResult struct {
	Name    string
	Load    float64 // forced external load during the phase
	Txns    int
	Elapsed time.Duration
	Tput    float64
	// LowPicks/HighPicks count completed calls per deployment across
	// all sessions in this phase; LowShare = low / (low + high).
	LowPicks, HighPicks int64
	LowShare            float64
	// EWMA is the switcher's average when the phase ended.
	EWMA float64
	// PerSessionLow is each session's completed low-budget calls this
	// phase; DistinctMixes counts distinct values in it — ≥ 2 proves
	// sessions routed differently within the same phase.
	PerSessionLow []int64
	DistinctMixes int
}

// DynamicResult aggregates one wall-clock dynamic-switching run.
type DynamicResult struct {
	Clients             int
	Phases              []DynamicPhaseResult
	TotalTxns           int
	NewOrders, Payments int
	Deadlocks           int
	// Sheds counts calls the server rejected with rpc.ErrOverloaded
	// (retried with backoff, never counted in the pick mix).
	Sheds int64
	// Reports is how many piggy-backed load reports fed the EWMA.
	Reports       int64
	MeanMs, P95Ms float64
}

// RunParallelDynamic drives cfg.Clients concurrent sessions of the
// TPC-C NewOrder/Payment mix through BOTH deployments of a dynamic
// pair under the configured load ramp, and returns the per-phase
// result plus the shared database so callers can audit
// CheckTPCCInvariants afterwards.
func RunParallelDynamic(high, low *pyxis.Partition, c TPCCConfig, cfg DynamicCfg) (*DynamicResult, *sqldb.DB, error) {
	if cfg.Clients < 1 {
		return nil, nil, fmt.Errorf("bench: RunParallelDynamic needs Clients >= 1")
	}
	if len(cfg.Phases) == 0 {
		cfg.Phases = DefaultDynamicRamp(20)
	}
	for _, ph := range cfg.Phases {
		if ph.Txns < 1 {
			return nil, nil, fmt.Errorf("bench: phase %q needs Txns >= 1", ph.Name)
		}
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 50
	}
	if cfg.Stagger == 0 {
		cfg.Stagger = 3 * time.Millisecond
	}
	db := c.Load()

	// One DB-side peer per deployment, both behind every connection's
	// dual SessionManager; one APP-side peer per deployment shared by
	// all client sessions.
	dbPeerHigh := runtime.NewPeer(high.Compiled, pdg.DB, nil)
	dbPeerLow := runtime.NewPeer(low.Compiled, pdg.DB, nil)
	appPeerHigh := runtime.NewPeer(high.Compiled, pdg.App, nil)
	appPeerLow := runtime.NewPeer(low.Compiled, pdg.App, nil)
	newMgr := func() rpc.SessionHandlers {
		return runtime.NewDualSessionManager(dbPeerHigh, dbPeerLow,
			func() dbapi.Conn { return dbapi.NewLocal(db) })
	}

	// The forced ramp drives the experiment, so the organic saturation
	// points are pushed out of reach: client goroutines share this
	// process with the server (their count says nothing about DB CPU),
	// and at colocated speeds the low-budget deployment's own lock
	// waits would otherwise pin the blend at 100% and mask the ramp's
	// recovery. The components still ride every report — QueueDepth
	// and LockWaitRate stay real — and the two-process
	// cmd/pyxis-dbserver keeps the calibrated defaults.
	mon := runtime.NewLoadMonitor(db)
	mon.GoroutineSat = 1 << 20
	mon.LockWaitSat = 1 << 20
	mon.SetExternal(cfg.Phases[0].Load)
	muxCfg := rpc.MuxServeConfig{Load: mon.Source()}

	var ctlMux, dbMux *rpc.MuxClient
	if cfg.TCP {
		ctlSrv, err := rpc.NewMuxServerConfig("127.0.0.1:0", newMgr, muxCfg)
		if err != nil {
			return nil, nil, err
		}
		defer ctlSrv.Close()
		dbSrv, err := rpc.NewMuxServerConfig("127.0.0.1:0",
			func() rpc.SessionHandlers { return dbapi.MuxHandlers(db) }, muxCfg)
		if err != nil {
			return nil, nil, err
		}
		defer dbSrv.Close()
		if ctlMux, err = rpc.DialMux(ctlSrv.Addr()); err != nil {
			return nil, nil, err
		}
		defer ctlMux.Close()
		if dbMux, err = rpc.DialMux(dbSrv.Addr()); err != nil {
			return nil, nil, err
		}
		defer dbMux.Close()
	} else {
		ctlMux = inProcMuxConfig(newMgr(), muxCfg)
		defer ctlMux.Close()
		dbMux = inProcMuxConfig(dbapi.MuxHandlers(db), muxCfg)
		defer dbMux.Close()
	}

	// The shared EWMA, fed by every reply on both wires: control
	// transfers while the high-budget deployment serves, database
	// round trips while the low-budget one does.
	sw := runtime.NewSwitcher()
	sw.Hysteresis = cfg.Hysteresis
	var reports atomic.Int64
	sink := func(rep rpc.LoadReport) {
		reports.Add(1)
		sw.ObserveReport(rep)
	}
	ctlMux.SetOnLoad(sink)
	dbMux.SetOnLoad(sink)

	// Per logical client: one DynamicClient spanning a (high, low)
	// session pair — the low-budget control session rides the tag byte
	// of its mux session ID — with one TPCC object on each heap.
	type dynSession struct {
		dyn             *runtime.DynamicClient
		oidHigh, oidLow val.OID
	}
	sessions := make([]*dynSession, cfg.Clients)
	for i := range sessions {
		clHigh := runtime.NewClient(appPeerHigh.NewSession(dbapi.NewClient(dbMux.Session())), ctlMux.Session())
		clLow := runtime.NewClient(appPeerLow.NewSession(dbapi.NewClient(dbMux.Session())),
			ctlMux.TaggedSession(runtime.TagLowBudget))
		dyn := &runtime.DynamicClient{High: clHigh, Low: clLow, Switcher: sw, ShedRetries: cfg.MaxRetries}
		oidHigh, err := clHigh.NewObject("TPCC")
		if err != nil {
			return nil, nil, fmt.Errorf("bench: dynamic session %d (high): %w", i, err)
		}
		oidLow, err := clLow.NewObject("TPCC")
		if err != nil {
			return nil, nil, fmt.Errorf("bench: dynamic session %d (low): %w", i, err)
		}
		sessions[i] = &dynSession{dyn: dyn, oidHigh: oidHigh, oidLow: oidLow}
		defer dyn.Close()
	}

	// One unrecorded warm-up NewOrder per session (both deployments
	// stay cold on the low side, which is fine — the goal is warming
	// the shared plan cache and interpreter paths so phase-boundary
	// latencies reflect steady state, not cold starts).
	for i, sn := range sessions {
		wid, did, cid, olcnt, seed, _ := c.txnParams(int64(i)*1_000_003 + 977_777)
		if _, err := sn.dyn.High.CallEntry("TPCC.newOrder", sn.oidHigh,
			val.IntV(wid), val.IntV(did), val.IntV(cid), val.IntV(olcnt),
			val.IntV(seed), val.IntV(int64(c.Items)), val.BoolV(false)); err != nil {
			return nil, nil, fmt.Errorf("bench: dynamic warmup session %d: %w", i, err)
		}
	}

	res := &DynamicResult{Clients: cfg.Clients}
	var allLats []float64
	for pi, ph := range cfg.Phases {
		mon.SetExternal(ph.Load)
		type phaseOut struct {
			low, high int64
			lats      []float64
			newOrders int
			payments  int
			deadlocks int
			sheds     int64
			err       error
		}
		outs := make([]phaseOut, cfg.Clients)
		var wg sync.WaitGroup
		start := time.Now()
		for i := range sessions {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				time.Sleep(time.Duration(i) * cfg.Stagger)
				out := &outs[i]
				sn := sessions[i]
				for k := 0; k < ph.Txns; k++ {
					seq := int64(i)*1_000_003 + int64(pi)*59_999 + int64(k)
					wid, did, cid, olcnt, seed, rb := c.txnParams(seq)
					isPayment := cfg.PaymentEvery > 0 && k%cfg.PaymentEvery == 0
					entry := "TPCC.newOrder"
					args := []val.Value{val.IntV(wid), val.IntV(did), val.IntV(cid), val.IntV(olcnt),
						val.IntV(seed), val.IntV(int64(c.Items)), val.BoolV(rb)}
					if isPayment {
						entry = "TPCC.payment"
						args = []val.Value{val.IntV(wid), val.IntV(did), val.IntV(cid), val.DoubleV(float64(seq%97 + 1))}
					}
					t0 := time.Now()
					var isLow bool
					for attempt := 0; ; attempt++ {
						// CallEntry re-picks per attempt (the EWMA may move
						// between retries) and absorbs overload sheds with
						// backoff; deadlock retry policy stays here.
						r, err := sn.dyn.CallEntry(entry, sn.oidHigh, sn.oidLow, args...)
						out.sheds += int64(r.Sheds)
						isLow = r.Low
						if err == nil {
							break
						}
						if isDeadlockErr(err) && attempt < cfg.MaxRetries {
							// Victim was rolled back engine-side; retry.
							out.deadlocks++
							continue
						}
						if errors.Is(err, rpc.ErrOverloaded) && attempt < cfg.MaxRetries {
							// CallEntry exhausted its inner shed budget:
							// keep backing off out here — jittered, so the
							// flooded sessions don't all retry in lockstep
							// and re-flood the server at the same instant.
							time.Sleep(runtime.ShedBackoff(attempt))
							continue
						}
						out.err = fmt.Errorf("session %d phase %s txn %d: %w", i, ph.Name, k, err)
						return
					}
					out.lats = append(out.lats, float64(time.Since(t0).Microseconds())/1e3)
					if isLow {
						out.low++
					} else {
						out.high++
					}
					if isPayment {
						out.payments++
					} else {
						out.newOrders++
					}
				}
			}(i)
		}
		wg.Wait()
		elapsed := time.Since(start)

		pr := DynamicPhaseResult{Name: ph.Name, Load: ph.Load, Elapsed: elapsed, EWMA: sw.Load()}
		distinct := map[int64]bool{}
		for i := range outs {
			if outs[i].err != nil {
				return nil, nil, outs[i].err
			}
			pr.Txns += len(outs[i].lats)
			pr.LowPicks += outs[i].low
			pr.HighPicks += outs[i].high
			pr.PerSessionLow = append(pr.PerSessionLow, outs[i].low)
			distinct[outs[i].low] = true
			allLats = append(allLats, outs[i].lats...)
			res.NewOrders += outs[i].newOrders
			res.Payments += outs[i].payments
			res.Deadlocks += outs[i].deadlocks
			res.Sheds += outs[i].sheds
		}
		pr.DistinctMixes = len(distinct)
		if total := pr.LowPicks + pr.HighPicks; total > 0 {
			pr.LowShare = float64(pr.LowPicks) / float64(total)
		}
		if elapsed > 0 {
			pr.Tput = float64(pr.Txns) / elapsed.Seconds()
		}
		res.Phases = append(res.Phases, pr)
		res.TotalTxns += pr.Txns
	}

	res.Reports = reports.Load()
	agg := Summarize(allLats)
	res.MeanMs, res.P95Ms = agg.MeanMs, agg.P95Ms
	return res, db, nil
}

// String renders the run as a per-phase table.
func (r *DynamicResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %7s %6s %12s %10s %10s %8s %8s\n",
		"phase", "load%", "txns", "tput(txn/s)", "low-picks", "high-picks", "low%", "ewma%")
	for _, ph := range r.Phases {
		fmt.Fprintf(&b, "%-8s %7.0f %6d %12.0f %10d %10d %7.0f%% %7.1f\n",
			ph.Name, ph.Load, ph.Txns, ph.Tput, ph.LowPicks, ph.HighPicks, ph.LowShare*100, ph.EWMA)
	}
	fmt.Fprintf(&b, "clients=%d txns=%d (no=%d pay=%d dl-retries=%d sheds=%d) lat(mean=%.3fms p95=%.3fms) load-reports=%d",
		r.Clients, r.TotalTxns, r.NewOrders, r.Payments, r.Deadlocks, r.Sheds, r.MeanMs, r.P95Ms, r.Reports)
	return b.String()
}
