package bench

import (
	"runtime"
	"sync"
	"testing"

	"pyxis/internal/dbapi"
)

// TestParallelTPCCInvariants is the wall-clock TPC-C counterpart of
// the ledger lost-update check: >= 8 concurrent sessions run the
// NewOrder/Payment mix through the partitioned runtime against one
// shared sharded database, then the TPC-C consistency conditions are
// audited — warehouse YTD totals must equal the sum of their district
// YTDs, and district order counters must equal the order rows.
// Payments hammer the per-warehouse hot row (4 warehouses, 8 clients)
// and NewOrders lock stock rows in per-transaction random order, so
// this run exercises lock waits and usually real deadlock resolution.
func TestParallelTPCCInvariants(t *testing.T) {
	cfg := DefaultTPCC()
	part, err := TPCCParallelPartition(cfg, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if part.DBStatements() == 0 {
		t.Fatal("budget 1.0 should place statements on the DB server")
	}
	pcfg := TPCCParallelCfg{Clients: 8, Txns: 12, PaymentEvery: 3}
	res, db, err := RunParallelTPCC(part, cfg, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%s", res)
	if want := pcfg.Clients * pcfg.Txns; res.TotalTxns != want {
		t.Errorf("completed %d txns, want %d", res.TotalTxns, want)
	}
	if res.Payments == 0 || res.NewOrders == 0 {
		t.Errorf("degenerate mix: %d new-orders, %d payments", res.NewOrders, res.Payments)
	}
	if res.Transfers == 0 {
		t.Error("shared DB-side peer served no control transfers")
	}
	for _, v := range CheckTPCCInvariants(db, cfg) {
		t.Errorf("invariant violated: %s", v)
	}
}

// TestParallelTPCCAppSide runs the same audit with the budget-0
// partition: every statement issued from the APP side over the
// multiplexed database wire, transactions holding row locks across
// wire round trips.
func TestParallelTPCCAppSide(t *testing.T) {
	cfg := DefaultTPCC()
	part, err := TPCCParallelPartition(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	pcfg := TPCCParallelCfg{Clients: 8, Txns: 6, PaymentEvery: 3}
	res, db, err := RunParallelTPCC(part, cfg, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%s", res)
	if want := pcfg.Clients * pcfg.Txns; res.TotalTxns != want {
		t.Errorf("completed %d txns, want %d", res.TotalTxns, want)
	}
	for _, v := range CheckTPCCInvariants(db, cfg) {
		t.Errorf("invariant violated: %s", v)
	}
}

// TestPaymentNativeConcurrent drives the hand-written Payment
// transaction (the PyxJ program's native twin, sharing its SQL) from
// concurrent embedded connections: the warehouse hot rows serialize
// under 2PL, every booked amount must land in both YTD totals, and the
// final totals must equal the sum of the amounts applied. This also
// keeps paymentNative from drifting from the schema.
func TestPaymentNativeConcurrent(t *testing.T) {
	cfg := DefaultTPCC()
	db := cfg.Load()
	const workers, payments = 8, 20
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			conn := dbapi.NewLocal(db)
			for k := 0; k < payments; k++ {
				seq := int64(w)*1_000_003 + int64(k)
				wid, did, cid, _, _, _ := cfg.txnParams(seq)
				if _, err := cfg.paymentNative(conn, wid, did, cid, 1.0); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, v := range CheckTPCCInvariants(db, cfg) {
		t.Errorf("invariant violated: %s", v)
	}
	s := db.NewSession()
	rs, err := s.Query("SELECT SUM(w_ytd) FROM warehouse")
	if err != nil {
		t.Fatal(err)
	}
	if got := rs.Rows[0][0].AsFloat(); got != workers*payments {
		t.Errorf("total w_ytd = %v, want %d (lost Payment under concurrency)", got, workers*payments)
	}
	crs, err := s.Query("SELECT SUM(c_balance) FROM customer")
	if err != nil {
		t.Fatal(err)
	}
	if got := crs.Rows[0][0].AsFloat(); got != -float64(workers*payments) {
		t.Errorf("total c_balance = %v, want %d", got, -(workers * payments))
	}
}

// TestParallelTPCCScaling measures wall-clock TPC-C throughput at 1
// vs. 4 clients. Like the ledger scaling test, the speedup assertion
// needs parallel hardware; on smaller hosts it still runs the sweep,
// audits the invariants at every point, and bounds the collapse.
func TestParallelTPCCScaling(t *testing.T) {
	cfg := DefaultTPCC()
	part, err := TPCCParallelPartition(cfg, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	const txnsPerClient = 15
	// Both arms of the sweep are single samples, so both assertions —
	// the >1.0x speedup on parallel hosts and the 0.4x collapse floor
	// on serial ones — get retries before they bind; one preempted
	// 15-txn run on a loaded 1-CPU host can halve a measured tput.
	assertRatio := runtime.GOMAXPROCS(0) >= 4
	const attempts = 3
	var ratio float64
	for attempt := 0; attempt < attempts; attempt++ {
		var tputs []float64
		for _, n := range []int{1, 4} {
			res, db, err := RunParallelTPCC(part, cfg, TPCCParallelCfg{Clients: n, Txns: txnsPerClient, PaymentEvery: 3})
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%s", res)
			for _, v := range CheckTPCCInvariants(db, cfg) {
				t.Errorf("clients=%d: invariant violated: %s", n, v)
			}
			tputs = append(tputs, res.Tput)
		}
		ratio = tputs[1] / tputs[0]
		if assertRatio && ratio > 1.0 {
			break
		}
		if !assertRatio && ratio >= 0.4 {
			break
		}
	}
	if !assertRatio {
		if ratio < 0.4 {
			t.Errorf("4-client TPC-C throughput collapsed to %.2fx of 1-client on a %d-CPU host",
				ratio, runtime.GOMAXPROCS(0))
		}
		t.Skipf("GOMAXPROCS=%d < 4: ran sweep + invariants (ratio %.2fx); the scaling assertion needs parallel hardware",
			runtime.GOMAXPROCS(0), ratio)
	}
	if ratio <= 1.0 {
		t.Errorf("4-client TPC-C throughput %.2fx of 1-client, want improvement (> 1.0x)", ratio)
	}
}
