package bench

import "testing"

func TestFig14Quick(t *testing.T) {
	tab, err := Fig14(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tab)
}

func TestFig11Quick(t *testing.T) {
	tab, err := Fig11(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tab)
}
