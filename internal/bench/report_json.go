package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	goruntime "runtime"
	"time"
)

// BenchReport wraps one experiment's result for the machine-readable
// bench trajectory: pyxis-bench -json writes one BENCH_<experiment>.json
// per experiment so successive PRs can be compared number-for-number
// instead of by eyeballing tables. The envelope carries the host facts
// a comparison must normalize by (a 1-CPU runner cannot show parallel
// speedup; race instrumentation flattens it).
type BenchReport struct {
	Experiment string    `json:"experiment"`
	Generated  time.Time `json:"generated"`
	GoMaxProcs int       `json:"gomaxprocs"`
	NumCPU     int       `json:"num_cpu"`
	Race       bool      `json:"race"`
	Data       any       `json:"data"`
}

// RaceEnabled reports whether this build is race-detector-instrumented
// (exported so cmd/pyxis-bench can relax wall-clock speedup
// enforcement exactly like the package's own scaling tests do).
func RaceEnabled() bool { return raceEnabled }

// SaveReport writes data as BENCH_<experiment>.json under dir (""
// means the current directory) and returns the path written.
func SaveReport(dir, experiment string, data any) (string, error) {
	rep := BenchReport{
		Experiment: experiment,
		Generated:  time.Now().UTC(),
		GoMaxProcs: goruntime.GOMAXPROCS(0),
		NumCPU:     goruntime.NumCPU(),
		Race:       raceEnabled,
		Data:       data,
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return "", fmt.Errorf("bench: marshal %s report: %w", experiment, err)
	}
	path := filepath.Join(dir, "BENCH_"+experiment+".json")
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}
