package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	goruntime "runtime"
	"time"
)

// BenchReport wraps one experiment's result for the machine-readable
// bench trajectory: pyxis-bench -json writes one BENCH_<experiment>.json
// per experiment so successive PRs can be compared number-for-number
// instead of by eyeballing tables. The envelope carries the host facts
// a comparison must normalize by (a 1-CPU runner cannot show parallel
// speedup; race instrumentation flattens it).
type BenchReport struct {
	Experiment string    `json:"experiment"`
	Generated  time.Time `json:"generated"`
	GoMaxProcs int       `json:"gomaxprocs"`
	NumCPU     int       `json:"num_cpu"`
	Race       bool      `json:"race"`
	// GatesSkipped lists every wall-clock acceptance gate the run
	// self-skipped (too few CPUs, too few sessions, race detector on),
	// one human-readable entry per gate. Always present — an empty list
	// is the machine-readable statement that every gate was enforced,
	// so CI can reject reports that silently dodged their gates.
	GatesSkipped []string `json:"gates_skipped"`
	Data         any      `json:"data"`
}

// RaceEnabled reports whether this build is race-detector-instrumented
// (exported so cmd/pyxis-bench can relax wall-clock speedup
// enforcement exactly like the package's own scaling tests do).
func RaceEnabled() bool { return raceEnabled }

// SaveReport writes data as BENCH_<experiment>.json under dir (""
// means the current directory) and returns the path written.
// gatesSkipped names the wall-clock gates this run did not enforce;
// pass nothing when every gate ran.
func SaveReport(dir, experiment string, data any, gatesSkipped ...string) (string, error) {
	if gatesSkipped == nil {
		gatesSkipped = []string{} // marshal as [], never null
	}
	rep := BenchReport{
		Experiment:   experiment,
		Generated:    time.Now().UTC(),
		GoMaxProcs:   goruntime.GOMAXPROCS(0),
		NumCPU:       goruntime.NumCPU(),
		Race:         raceEnabled,
		GatesSkipped: gatesSkipped,
		Data:         data,
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return "", fmt.Errorf("bench: marshal %s report: %w", experiment, err)
	}
	path := filepath.Join(dir, "BENCH_"+experiment+".json")
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}
