package bench

import (
	"errors"
	"fmt"

	"pyxis"
	"pyxis/internal/dbapi"
	"pyxis/internal/pdg"
	"pyxis/internal/sim"
	"pyxis/internal/sqldb"
	"pyxis/internal/val"
)

// TPCCConfig scales the TPC-C-like database (paper §7.1; our scale is
// reduced so simulated sweeps stay fast — relative behaviour, not
// absolute gigabytes, is what the experiments compare).
type TPCCConfig struct {
	Warehouses    int
	DistrictsPerW int
	CustomersPerD int
	Items         int
	// MinLines/MaxLines bound order-line counts per new-order.
	MinLines, MaxLines int
	// RollbackPct is the percentage of transactions rolled back (paper: 10).
	RollbackPct int
}

// DefaultTPCC returns the evaluation configuration.
func DefaultTPCC() TPCCConfig {
	return TPCCConfig{
		Warehouses:    4,
		DistrictsPerW: 10,
		CustomersPerD: 30,
		Items:         1000,
		MinLines:      3,
		MaxLines:      7,
		RollbackPct:   10,
	}
}

var tpccDDL = []string{
	"CREATE TABLE warehouse (w_id INT PRIMARY KEY, w_name VARCHAR(10), w_tax DOUBLE, w_ytd DOUBLE)",
	"CREATE TABLE district (d_w_id INT, d_id INT, d_tax DOUBLE, d_ytd DOUBLE, d_next_o_id INT, PRIMARY KEY (d_w_id, d_id))",
	"CREATE TABLE customer (c_w_id INT, c_d_id INT, c_id INT, c_last VARCHAR(16), c_discount DOUBLE, c_balance DOUBLE, PRIMARY KEY (c_w_id, c_d_id, c_id))",
	"CREATE TABLE orders (o_w_id INT, o_d_id INT, o_id INT, o_c_id INT, o_ol_cnt INT, PRIMARY KEY (o_w_id, o_d_id, o_id))",
	"CREATE TABLE new_order (no_w_id INT, no_d_id INT, no_o_id INT, PRIMARY KEY (no_w_id, no_d_id, no_o_id))",
	"CREATE TABLE order_line (ol_w_id INT, ol_d_id INT, ol_o_id INT, ol_number INT, ol_i_id INT, ol_quantity INT, ol_amount DOUBLE, PRIMARY KEY (ol_w_id, ol_d_id, ol_o_id, ol_number))",
	"CREATE TABLE item (i_id INT PRIMARY KEY, i_name VARCHAR(24), i_price DOUBLE)",
	"CREATE TABLE stock (s_w_id INT, s_i_id INT, s_quantity INT, s_ytd DOUBLE, s_order_cnt INT, PRIMARY KEY (s_w_id, s_i_id))",
}

// Load builds and populates a TPC-C database.
func (c TPCCConfig) Load() *sqldb.DB { return c.LoadRange(1, c.Warehouses) }

// LoadRange builds one shard's slice of the TPC-C database: only
// warehouses loW..hiW (inclusive) with their districts, customers and
// stock, plus the full read-only item catalog (reference data, cheap
// enough to replicate on every shard). LoadRange(1, c.Warehouses) is
// the unsharded database.
func (c TPCCConfig) LoadRange(loW, hiW int) *sqldb.DB {
	db := sqldb.Open()
	s := db.NewSession()
	must := func(sql string, args ...val.Value) {
		if _, err := s.Exec(sql, args...); err != nil {
			panic(fmt.Sprintf("tpcc load: %s: %v", sql, err))
		}
	}
	for _, ddl := range tpccDDL {
		must(ddl)
	}
	for w := loW; w <= hiW; w++ {
		must("INSERT INTO warehouse VALUES (?, ?, ?, 0.0)",
			val.IntV(int64(w)), val.StrV(fmt.Sprintf("wh%d", w)), val.DoubleV(float64(w%5)*0.02))
		for d := 1; d <= c.DistrictsPerW; d++ {
			must("INSERT INTO district VALUES (?, ?, ?, 0.0, 1)",
				val.IntV(int64(w)), val.IntV(int64(d)), val.DoubleV(float64(d%5)*0.015))
			for cu := 1; cu <= c.CustomersPerD; cu++ {
				must("INSERT INTO customer VALUES (?, ?, ?, ?, ?, 0.0)",
					val.IntV(int64(w)), val.IntV(int64(d)), val.IntV(int64(cu)),
					val.StrV(fmt.Sprintf("cust%d", cu)), val.DoubleV(float64(cu%10)*0.01))
			}
		}
		for i := 1; i <= c.Items; i++ {
			must("INSERT INTO stock VALUES (?, ?, ?, 0.0, 0)",
				val.IntV(int64(w)), val.IntV(int64(i)), val.IntV(int64(50+i%50)))
		}
	}
	for i := 1; i <= c.Items; i++ {
		must("INSERT INTO item VALUES (?, ?, ?)",
			val.IntV(int64(i)), val.StrV(fmt.Sprintf("item-%d", i)), val.DoubleV(1.0+float64(i%100)*0.25))
	}
	return db
}

// TPCCSource is the new-order transaction in PyxJ — the program Pyxis
// partitions. The item-selection LCG runs inside the transaction so
// entry parameters stay scalar.
const TPCCSource = `
class TPCC {
    int lastOrderId;

    TPCC() {
        lastOrderId = 0;
    }

    entry double newOrder(int wid, int did, int cid, int olcnt, int seed, int nitems, bool doRollback) {
        db.begin();
        table wt = db.query("SELECT w_tax FROM warehouse WHERE w_id = ?", wid);
        double wtax = wt.getDouble(0, 0);
        table dt = db.query("SELECT d_tax, d_next_o_id FROM district WHERE d_w_id = ? AND d_id = ?", wid, did);
        double dtax = dt.getDouble(0, 0);
        int oid = dt.getInt(0, 1);
        db.update("UPDATE district SET d_next_o_id = d_next_o_id + 1 WHERE d_w_id = ? AND d_id = ?", wid, did);
        table ct = db.query("SELECT c_discount FROM customer WHERE c_w_id = ? AND c_d_id = ? AND c_id = ?", wid, did, cid);
        double disc = ct.getDouble(0, 0);
        db.update("INSERT INTO orders VALUES (?, ?, ?, ?, ?)", wid, did, oid, cid, olcnt);
        db.update("INSERT INTO new_order VALUES (?, ?, ?)", wid, did, oid);
        double total = 0;
        int rnd = seed;
        int ol = 1;
        while (ol <= olcnt) {
            rnd = (rnd * 1103515245 + 12345) % 100000;
            if (rnd < 0) {
                rnd = -rnd;
            }
            int iid = (rnd % nitems) + 1;
            int qty = (rnd % 10) + 1;
            table ist = db.query("SELECT i_price, s_quantity FROM item, stock WHERE i_id = ? AND s_w_id = ? AND s_i_id = ?", iid, wid, iid);
            double price = ist.getDouble(0, 0);
            int squant = ist.getInt(0, 1);
            int newq = squant - qty;
            if (newq < 10) {
                newq = newq + 91;
            }
            db.update("UPDATE stock SET s_quantity = ?, s_ytd = s_ytd + ?, s_order_cnt = s_order_cnt + 1 WHERE s_w_id = ? AND s_i_id = ?", newq, qty, wid, iid);
            double amount = price * qty;
            total += amount;
            db.update("INSERT INTO order_line VALUES (?, ?, ?, ?, ?, ?, ?)", wid, did, oid, ol, iid, qty, amount);
            ol++;
        }
        total = total * (1.0 + wtax + dtax) * (1.0 - disc);
        lastOrderId = oid;
        if (doRollback) {
            db.rollback();
        } else {
            db.commit();
        }
        return total;
    }

    entry int lastOrder() {
        return lastOrderId;
    }

    entry double payment(int wid, int did, int cid, double amount) {
        db.begin();
        db.update("UPDATE warehouse SET w_ytd = w_ytd + ? WHERE w_id = ?", amount, wid);
        db.update("UPDATE district SET d_ytd = d_ytd + ? WHERE d_w_id = ? AND d_id = ?", amount, wid, did);
        db.update("UPDATE customer SET c_balance = c_balance - ? WHERE c_w_id = ? AND c_d_id = ? AND c_id = ?", amount, wid, did, cid);
        table t = db.query("SELECT w_ytd FROM warehouse WHERE w_id = ?", wid);
        db.commit();
        return t.getDouble(0, 0);
    }
}
`

// paymentNative is the hand-written Payment transaction (TPC-C §2.5,
// reduced): it books amount into the warehouse and district YTD totals
// and debits the customer. The warehouse row is the workload's
// contention point — every Payment on a warehouse serializes on its
// row lock, exactly the hot spot the wall-clock concurrency tests
// probe.
func (c TPCCConfig) paymentNative(conn dbapi.Conn, wid, did, cid int64, amount float64) (float64, error) {
	if err := conn.Begin(); err != nil {
		return 0, err
	}
	abort := func(err error) (float64, error) {
		_ = conn.Rollback()
		return 0, err
	}
	if _, err := conn.Exec("UPDATE warehouse SET w_ytd = w_ytd + ? WHERE w_id = ?",
		val.DoubleV(amount), val.IntV(wid)); err != nil {
		return abort(err)
	}
	if _, err := conn.Exec("UPDATE district SET d_ytd = d_ytd + ? WHERE d_w_id = ? AND d_id = ?",
		val.DoubleV(amount), val.IntV(wid), val.IntV(did)); err != nil {
		return abort(err)
	}
	if _, err := conn.Exec("UPDATE customer SET c_balance = c_balance - ? WHERE c_w_id = ? AND c_d_id = ? AND c_id = ?",
		val.DoubleV(amount), val.IntV(wid), val.IntV(did), val.IntV(cid)); err != nil {
		return abort(err)
	}
	rs, err := conn.Query("SELECT w_ytd FROM warehouse WHERE w_id = ?", val.IntV(wid))
	if err != nil {
		return abort(err)
	}
	if len(rs.Rows) == 0 {
		return abort(fmt.Errorf("tpcc: payment: warehouse %d does not exist", wid))
	}
	total := rs.Rows[0][0].F
	if err := conn.Commit(); err != nil {
		return 0, err
	}
	return total, nil
}

// paymentRemoteStmts issues the remote-Payment statements on ALREADY
// OPEN transaction branches: the YTD totals book at the home
// warehouse on home, the customer debit at the customer's resident
// warehouse on cust. The two conns are the same when the customer's
// warehouse lives on the home shard; when they differ the caller owns
// atomicity — commit both branches through the 2PC coordinator or
// roll both back.
func (c TPCCConfig) paymentRemoteStmts(home, cust dbapi.Conn, wid, did, cwid, cdid, ccid int64, amount float64) error {
	if _, err := home.Exec("UPDATE warehouse SET w_ytd = w_ytd + ? WHERE w_id = ?",
		val.DoubleV(amount), val.IntV(wid)); err != nil {
		return err
	}
	if _, err := home.Exec("UPDATE district SET d_ytd = d_ytd + ? WHERE d_w_id = ? AND d_id = ?",
		val.DoubleV(amount), val.IntV(wid), val.IntV(did)); err != nil {
		return err
	}
	if _, err := cust.Exec("UPDATE customer SET c_balance = c_balance - ? WHERE c_w_id = ? AND c_d_id = ? AND c_id = ?",
		val.DoubleV(amount), val.IntV(cwid), val.IntV(cdid), val.IntV(ccid)); err != nil {
		return err
	}
	return nil
}

// newOrderRemoteStmts issues the remote-supply NewOrder statements on
// ALREADY OPEN transaction branches: the order bookkeeping (district
// counter, orders, new_order, order_line) stays at the home warehouse
// on home, while every line's stock draws from supply warehouse swid
// on supply (the item catalog is replicated per shard, so the price
// lookup rides the supply branch). Commit/abort is the caller's — via
// 2PC when the supply warehouse lives on another shard.
func (c TPCCConfig) newOrderRemoteStmts(home, supply dbapi.Conn, wid, did, cid, olcnt, seed, swid int64) (float64, error) {
	wt, err := home.Query("SELECT w_tax FROM warehouse WHERE w_id = ?", val.IntV(wid))
	if err != nil {
		return 0, err
	}
	wtax := wt.Rows[0][0].F
	dt, err := home.Query("SELECT d_tax, d_next_o_id FROM district WHERE d_w_id = ? AND d_id = ?",
		val.IntV(wid), val.IntV(did))
	if err != nil {
		return 0, err
	}
	dtax := dt.Rows[0][0].F
	oid := dt.Rows[0][1].I
	if _, err := home.Exec("UPDATE district SET d_next_o_id = d_next_o_id + 1 WHERE d_w_id = ? AND d_id = ?",
		val.IntV(wid), val.IntV(did)); err != nil {
		return 0, err
	}
	ct, err := home.Query("SELECT c_discount FROM customer WHERE c_w_id = ? AND c_d_id = ? AND c_id = ?",
		val.IntV(wid), val.IntV(did), val.IntV(cid))
	if err != nil {
		return 0, err
	}
	disc := ct.Rows[0][0].F
	if _, err := home.Exec("INSERT INTO orders VALUES (?, ?, ?, ?, ?)",
		val.IntV(wid), val.IntV(did), val.IntV(oid), val.IntV(cid), val.IntV(olcnt)); err != nil {
		return 0, err
	}
	if _, err := home.Exec("INSERT INTO new_order VALUES (?, ?, ?)",
		val.IntV(wid), val.IntV(did), val.IntV(oid)); err != nil {
		return 0, err
	}
	total := 0.0
	rnd := seed
	for ol := int64(1); ol <= olcnt; ol++ {
		rnd = lcg(rnd)
		iid := rnd%int64(c.Items) + 1
		qty := rnd%10 + 1
		ist, err := supply.Query("SELECT i_price, s_quantity FROM item, stock WHERE i_id = ? AND s_w_id = ? AND s_i_id = ?",
			val.IntV(iid), val.IntV(swid), val.IntV(iid))
		if err != nil {
			return 0, err
		}
		price := ist.Rows[0][0].F
		squant := ist.Rows[0][1].I
		newq := squant - qty
		if newq < 10 {
			newq += 91
		}
		if _, err := supply.Exec("UPDATE stock SET s_quantity = ?, s_ytd = s_ytd + ?, s_order_cnt = s_order_cnt + 1 WHERE s_w_id = ? AND s_i_id = ?",
			val.IntV(newq), val.IntV(qty), val.IntV(swid), val.IntV(iid)); err != nil {
			return 0, err
		}
		amount := price * float64(qty)
		total += amount
		if _, err := home.Exec("INSERT INTO order_line VALUES (?, ?, ?, ?, ?, ?, ?)",
			val.IntV(wid), val.IntV(did), val.IntV(oid), val.IntV(ol), val.IntV(iid),
			val.IntV(qty), val.DoubleV(amount)); err != nil {
			return 0, err
		}
	}
	return total * (1.0 + wtax + dtax) * (1.0 - disc), nil
}

// lcg matches the PyxJ transaction's item-selection generator.
func lcg(rnd int64) int64 {
	rnd = (rnd*1103515245 + 12345) % 100000
	if rnd < 0 {
		rnd = -rnd
	}
	return rnd
}

// txnParams derives deterministic new-order parameters from a
// transaction sequence number.
func (c TPCCConfig) txnParams(k int64) (wid, did, cid, olcnt, seed int64, rollback bool) {
	h := k*2654435761 + 104729
	if h < 0 {
		h = -h
	}
	wid = h%int64(c.Warehouses) + 1
	did = (h/7)%int64(c.DistrictsPerW) + 1
	cid = (h/61)%int64(c.CustomersPerD) + 1
	olcnt = int64(c.MinLines) + (h/997)%int64(c.MaxLines-c.MinLines+1)
	seed = h % 99991
	rollback = int(h/13)%100 < c.RollbackPct
	return
}

// txnParamsRange is txnParams with the HOME warehouse remapped into
// the inclusive range [loW, hiW] — the sharded drivers pin every
// session's home warehouse inside its shard's range. Remote-warehouse
// rolls (remoteRoll) may still point a transaction at another shard's
// warehouse; those run as distributed transactions through the 2PC
// coordinator.
func (c TPCCConfig) txnParamsRange(k, loW, hiW int64) (wid, did, cid, olcnt, seed int64, rollback bool) {
	wid, did, cid, olcnt, seed, rollback = c.txnParams(k)
	wid = loW + (wid-1)%(hiW-loW+1)
	return
}

// remoteRoll derives the TPC-C remote-warehouse decisions for txn k
// against home warehouse wid: 15% of Payments pay for a customer who
// resides at another warehouse (§2.5.1.2), and ~10% of NewOrders draw
// their stock from a remote supply warehouse (§2.4.1.5 rolls 1% per
// order line; over 5-15 lines that is ~10% of orders, which we roll
// once per transaction and apply to every line). The remote warehouse
// is uniform over the other warehouses; with a single warehouse there
// is nothing remote to pick.
func (c TPCCConfig) remoteRoll(k, wid int64) (payRemote, noRemote bool, remW int64) {
	if c.Warehouses < 2 {
		return false, false, 0
	}
	h := k*1300637 + 104987
	if h < 0 {
		h = -h
	}
	payRemote = (h/17)%100 < 15
	noRemote = (h/131)%100 < 10
	remW = h%int64(c.Warehouses-1) + 1
	if remW >= wid {
		remW++
	}
	return
}

// newOrderNative is the hand-written transaction logic, shared by the
// JDBC and Manual implementations. It issues exactly the SQL the PyxJ
// version issues.
func (c TPCCConfig) newOrderNative(conn dbapi.Conn, wid, did, cid, olcnt, seed int64, rollback bool) (float64, error) {
	if err := conn.Begin(); err != nil {
		return 0, err
	}
	abort := func(err error) (float64, error) {
		_ = conn.Rollback()
		return 0, err
	}
	wt, err := conn.Query("SELECT w_tax FROM warehouse WHERE w_id = ?", val.IntV(wid))
	if err != nil {
		return abort(err)
	}
	wtax := wt.Rows[0][0].F
	dt, err := conn.Query("SELECT d_tax, d_next_o_id FROM district WHERE d_w_id = ? AND d_id = ?",
		val.IntV(wid), val.IntV(did))
	if err != nil {
		return abort(err)
	}
	dtax := dt.Rows[0][0].F
	oid := dt.Rows[0][1].I
	if _, err := conn.Exec("UPDATE district SET d_next_o_id = d_next_o_id + 1 WHERE d_w_id = ? AND d_id = ?",
		val.IntV(wid), val.IntV(did)); err != nil {
		return abort(err)
	}
	ct, err := conn.Query("SELECT c_discount FROM customer WHERE c_w_id = ? AND c_d_id = ? AND c_id = ?",
		val.IntV(wid), val.IntV(did), val.IntV(cid))
	if err != nil {
		return abort(err)
	}
	disc := ct.Rows[0][0].F
	if _, err := conn.Exec("INSERT INTO orders VALUES (?, ?, ?, ?, ?)",
		val.IntV(wid), val.IntV(did), val.IntV(oid), val.IntV(cid), val.IntV(olcnt)); err != nil {
		return abort(err)
	}
	if _, err := conn.Exec("INSERT INTO new_order VALUES (?, ?, ?)",
		val.IntV(wid), val.IntV(did), val.IntV(oid)); err != nil {
		return abort(err)
	}
	total := 0.0
	rnd := seed
	for ol := int64(1); ol <= olcnt; ol++ {
		rnd = lcg(rnd)
		iid := rnd%int64(c.Items) + 1
		qty := rnd%10 + 1
		ist, err := conn.Query("SELECT i_price, s_quantity FROM item, stock WHERE i_id = ? AND s_w_id = ? AND s_i_id = ?",
			val.IntV(iid), val.IntV(wid), val.IntV(iid))
		if err != nil {
			return abort(err)
		}
		price := ist.Rows[0][0].F
		squant := ist.Rows[0][1].I
		newq := squant - qty
		if newq < 10 {
			newq += 91
		}
		if _, err := conn.Exec("UPDATE stock SET s_quantity = ?, s_ytd = s_ytd + ?, s_order_cnt = s_order_cnt + 1 WHERE s_w_id = ? AND s_i_id = ?",
			val.IntV(newq), val.IntV(qty), val.IntV(wid), val.IntV(iid)); err != nil {
			return abort(err)
		}
		amount := price * float64(qty)
		total += amount
		if _, err := conn.Exec("INSERT INTO order_line VALUES (?, ?, ?, ?, ?, ?, ?)",
			val.IntV(wid), val.IntV(did), val.IntV(oid), val.IntV(ol), val.IntV(iid),
			val.IntV(qty), val.DoubleV(amount)); err != nil {
			return abort(err)
		}
	}
	total = total * (1.0 + wtax + dtax) * (1.0 - disc)
	if rollback {
		return total, conn.Rollback()
	}
	return total, conn.Commit()
}

// JDBCWorkload is the client-side-queries implementation: logic on the
// application server, one round trip per database operation.
func (c TPCCConfig) JDBCWorkload() Workload {
	return Workload{
		Name:  "JDBC",
		NewDB: c.Load,
		NewClient: func(db *sqldb.DB, p *sim.Proc, env *Env, id int) func(int64) error {
			conn := newSimConn(db, env, pdg.App)
			return func(k int64) error {
				wid, did, cid, olcnt, seed, rb := c.txnParams(k)
				env.Logic(pdg.App, env.CM.NativeLogicCost)
				_, err := c.newOrderNative(conn, wid, did, cid, olcnt, seed, rb)
				return err
			}
		},
	}
}

// ManualWorkload is the hand-converted stored-procedure implementation:
// one RPC ships the parameters to the database server, which runs the
// logic colocated with the DBMS.
func (c TPCCConfig) ManualWorkload() Workload {
	return Workload{
		Name:  "Manual",
		NewDB: c.Load,
		NewClient: func(db *sqldb.DB, p *sim.Proc, env *Env, id int) func(int64) error {
			conn := newSimConn(db, env, pdg.DB)
			return func(k int64) error {
				wid, did, cid, olcnt, seed, rb := c.txnParams(k)
				env.Link.Transfer(p, 96) // RPC request with txn arguments
				env.Logic(pdg.DB, env.CM.NativeLogicCost)
				_, err := c.newOrderNative(conn, wid, did, cid, olcnt, seed, rb)
				env.Link.Transfer(p, 32) // RPC response
				return err
			}
		},
	}
}

// PyxisPartition profiles the PyxJ transaction and solves a partition
// at the given budget fraction.
func (c TPCCConfig) PyxisPartition(budgetFrac float64) (*pyxis.Partition, error) {
	sys, err := profiledTPCCSystem(c)
	if err != nil {
		return nil, err
	}
	return sys.PartitionAt(budgetFrac)
}

// PyxisWorkload runs the partitioned PyxJ program under the simulator.
func (c TPCCConfig) PyxisWorkload(part *pyxis.Partition) Workload {
	return Workload{
		Name:  "Pyxis",
		NewDB: c.Load,
		NewClient: func(db *sqldb.DB, p *sim.Proc, env *Env, id int) func(int64) error {
			sc := NewSimClient(part.Compiled, db, p, env)
			oid, err := sc.Client.NewObject("TPCC")
			if err != nil {
				panic(err)
			}
			return func(k int64) error {
				wid, did, cid, olcnt, seed, rb := c.txnParams(k)
				_, err := sc.Client.CallEntry("TPCC.newOrder", oid,
					val.IntV(wid), val.IntV(did), val.IntV(cid), val.IntV(olcnt),
					val.IntV(seed), val.IntV(int64(c.Items)), val.BoolV(rb))
				if err != nil {
					// Abort any open transaction so its locks release.
					sc.RollbackAll()
					return err
				}
				return nil
			}
		},
	}
}

func rollbackQuiet(conn dbapi.Conn) {
	if err := conn.Rollback(); err != nil && !errors.Is(err, sqldb.ErrNoTransaction) {
		_ = err
	}
}
