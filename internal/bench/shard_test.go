package bench

import (
	"strings"
	"testing"

	"pyxis/internal/runtime"
	"pyxis/internal/sqldb"
	"pyxis/internal/val"
)

// TestRunShardScalingSmoke drives the sharded TPC-C driver end to end
// over in-process pipes: the 1-shard baseline and a 2-shard tier, each
// point audited by the cross-shard invariant aggregator inside
// RunShardScaling. It checks the routing story — sessions striped
// across both shards, every transaction completed — rather than
// throughput (a unit test box proves nothing about speedup).
func TestRunShardScalingSmoke(t *testing.T) {
	c := DefaultTPCC()
	part, err := TPCCParallelPartition(c, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	base := ShardCfg{Clients: 4, Txns: 6, WriteEvery: 2, PaymentEvery: 3}
	results, err := RunShardScaling(part, c, base, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", ShardScalingReport(results))
	for _, res := range results {
		if res.TotalTxns != base.Clients*base.Txns {
			t.Errorf("shards=%d: %d of %d transactions completed", res.Shards, res.TotalTxns, base.Clients*base.Txns)
		}
		if res.NewOrders == 0 || res.Payments == 0 || res.Reads == 0 {
			t.Errorf("shards=%d: mix degenerated (no=%d pay=%d read=%d)", res.Shards, res.NewOrders, res.Payments, res.Reads)
		}
	}
	for s, n := range results[1].SessionsPerShard {
		if n == 0 {
			t.Errorf("2-shard point never routed a session to shard %d: %v", s, results[1].SessionsPerShard)
		}
	}
}

// TestRunShardTPCCOverTCP is the end-to-end smoke over real loopback
// TCP servers — the deployment shape shard-wall measures.
func TestRunShardTPCCOverTCP(t *testing.T) {
	c := DefaultTPCC()
	part, err := TPCCParallelPartition(c, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ShardCfg{Clients: 4, Txns: 4, Shards: 2, Conns: 2, WriteEvery: 2, PaymentEvery: 3, TCP: true}
	res, dbs, err := RunShardTPCC(part, c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res.String())
	smap := runtime.ShardMap{Shards: 2, Warehouses: c.Warehouses}
	if violations := CheckShardInvariants(dbs, c, smap); len(violations) > 0 {
		t.Fatalf("invariants violated:\n%s", strings.Join(violations, "\n"))
	}
	if len(dbs) != 2 {
		t.Fatalf("got %d shard databases, want 2", len(dbs))
	}
}

// TestRunShardTPCCRejectsEmptyShards: more shards than warehouses
// would leave shards with nothing to own.
func TestRunShardTPCCRejectsEmptyShards(t *testing.T) {
	c := DefaultTPCC()
	part, err := TPCCParallelPartition(c, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ShardCfg{Clients: 2, Txns: 2, Shards: c.Warehouses + 1}
	if _, _, err := RunShardTPCC(part, c, cfg); err == nil {
		t.Fatal("oversharded config accepted")
	}
}

// TestCheckShardInvariantsCatchesCrossShardDrift seeds two consistent
// shard slices, then books a Payment-shaped update on the WRONG
// place: a warehouse YTD bump with no matching district booking, and a
// stray copy of a sibling's warehouse. Per-shard audits alone can miss
// ownership drift; the aggregator's global sums and ownership checks
// must flag both.
func TestCheckShardInvariantsCatchesCrossShardDrift(t *testing.T) {
	c := DefaultTPCC()
	m := runtime.ShardMap{Shards: 2, Warehouses: c.Warehouses}
	lo0, hi0 := m.WarehouseRange(0)
	lo1, hi1 := m.WarehouseRange(1)
	db0 := c.LoadRange(int(lo0), int(hi0))
	db1 := c.LoadRange(int(lo1), int(hi1))

	if violations := CheckShardInvariants([]*sqldb.DB{db0, db1}, c, m); len(violations) > 0 {
		t.Fatalf("fresh shards flagged: %v", violations)
	}

	// A w_ytd bump with no matching d_ytd anywhere — a lost/misbooked
	// Payment half.
	s := db1.NewSession()
	if _, err := s.Exec("UPDATE warehouse SET w_ytd = w_ytd + 100.0 WHERE w_id = ?", val.IntV(lo1)); err != nil {
		t.Fatal(err)
	}
	if violations := CheckShardInvariants([]*sqldb.DB{db0, db1}, c, m); len(violations) == 0 {
		t.Fatal("lost cross-shard update not detected")
	}

	// A stray warehouse copy on the wrong shard: per-range audits pass,
	// ownership must not.
	db2 := c.LoadRange(int(lo0), int(hi0))
	s2 := db2.NewSession()
	if _, err := s2.Exec("INSERT INTO warehouse VALUES (?, ?, ?, 0.0)",
		val.IntV(hi1), val.StrV("stray"), val.DoubleV(0)); err != nil {
		t.Fatal(err)
	}
	db3 := c.LoadRange(int(lo1), int(hi1))
	violations := CheckShardInvariants([]*sqldb.DB{db2, db3}, c, m)
	found := false
	for _, v := range violations {
		if strings.Contains(v, "owns") || strings.Contains(v, "warehouses in total") {
			found = true
		}
	}
	if !found {
		t.Fatalf("stray warehouse ownership not detected: %v", violations)
	}
}
