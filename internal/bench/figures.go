package bench

import (
	"fmt"
	"strings"

	"pyxis"
	"pyxis/internal/runtime"
	"pyxis/internal/sim"
	"pyxis/internal/sqldb"
	"pyxis/internal/val"
)

func intv(i int64) val.Value { return val.IntV(i) }
func boolv(b bool) val.Value { return val.BoolV(b) }

// Table is a rendered experiment artifact (one paper figure/table).
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&b, "%-*s  ", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Scale controls experiment sizes: Full reproduces the paper-shaped
// sweeps; Quick keeps `go test -bench` fast.
type Scale struct {
	Warmup  float64
	Window  float64
	Clients int
	Rates   []float64
	// Fig11 parameters.
	SeriesDuration float64
	SeriesBucket   float64
	SeriesRate     float64
	// Micro2 parameters.
	Q1, Rounds, Q2 int
}

// FullScale mirrors the paper's ranges (20 clients, rates to 1500/s).
func FullScale() Scale {
	return Scale{
		Warmup: 2, Window: 8, Clients: 20,
		Rates:          []float64{100, 200, 400, 600, 800, 1000, 1200, 1500},
		SeriesDuration: 240, SeriesBucket: 20, SeriesRate: 300,
		Q1: 5000, Rounds: 25000, Q2: 5000,
	}
}

// QuickScale is a reduced configuration for tests/benchmarks.
func QuickScale() Scale {
	return Scale{
		Warmup: 1, Window: 3, Clients: 10,
		Rates:          []float64{100, 300, 600, 1000},
		SeriesDuration: 90, SeriesBucket: 15, SeriesRate: 150,
		Q1: 400, Rounds: 2000, Q2: 400,
	}
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f0(v float64) string { return fmt.Sprintf("%.0f", v) }

// LatencySweep runs the three implementations across the rate sweep —
// the engine behind Figs. 9, 10, 12 and 13.
func LatencySweep(title string, workloads []Workload, sc Scale, appCores, dbCores int, cm CostModel) *Table {
	t := &Table{
		Title:  title,
		Header: []string{"impl", "offered/s", "tput/s", "lat-ms", "p95-ms", "db-cpu%", "app-cpu%", "net-KB/s", "errs"},
	}
	for _, w := range workloads {
		for _, rate := range sc.Rates {
			pt := Run(w, RunCfg{
				Clients: sc.Clients, Rate: rate,
				Warmup: sc.Warmup, Window: sc.Window,
				AppCores: appCores, DBCores: dbCores, CM: cm,
			})
			t.Rows = append(t.Rows, []string{
				w.Name, f0(rate), f1(pt.Tput), f1(pt.MeanLatMs), f1(pt.P95LatMs),
				f1(pt.DBUtil), f1(pt.AppUtil), f1(pt.NetKBps), fmt.Sprintf("%d", pt.Errors),
			})
		}
	}
	return t
}

// Fig9 — TPC-C latency/CPU/network vs throughput, 16-core DB, high
// Pyxis budget (paper Fig. 9a–c).
func Fig9(sc Scale) (*Table, error) {
	cfg := DefaultTPCC()
	part, err := cfg.PyxisPartition(1.0)
	if err != nil {
		return nil, err
	}
	t := LatencySweep("Fig 9: TPC-C on 16-core database server (high budget)",
		[]Workload{cfg.JDBCWorkload(), cfg.ManualWorkload(), cfg.PyxisWorkload(part)},
		sc, 8, 16, DefaultCosts())
	t.Notes = append(t.Notes, "expect: JDBC ~3-4x Manual latency; Pyxis tracks Manual; JDBC saturates first",
		fmt.Sprintf("pyxis partition: %s", part.Describe()))
	return t, nil
}

// Fig10 — same workload on a 3-core database server with a low Pyxis
// budget (paper Fig. 10a–c).
func Fig10(sc Scale) (*Table, error) {
	cfg := DefaultTPCC()
	part, err := cfg.PyxisPartition(0)
	if err != nil {
		return nil, err
	}
	t := LatencySweep("Fig 10: TPC-C on 3-core database server (low budget)",
		[]Workload{cfg.JDBCWorkload(), cfg.ManualWorkload(), cfg.PyxisWorkload(part)},
		sc, 8, 3, DefaultCosts())
	t.Notes = append(t.Notes, "expect: Manual lowest latency at low rate but saturates early; Pyxis tracks JDBC and sustains high rates",
		fmt.Sprintf("pyxis partition: %s", part.Describe()))
	return t, nil
}

// Fig12 / Fig13 — TPC-W browsing-mix latency on 16 and 3 cores.
func Fig12(sc Scale) (*Table, error) {
	cfg := DefaultTPCW()
	part, err := cfg.PyxisPartition(1.0)
	if err != nil {
		return nil, err
	}
	t := LatencySweep("Fig 12: TPC-W browsing mix on 16-core database server (high budget)",
		[]Workload{cfg.JDBCWorkload(), cfg.ManualWorkload(), cfg.PyxisWorkload(part)},
		sc, 8, 16, DefaultCosts())
	t.Notes = append(t.Notes, "expect: Pyxis ~= Manual (slightly above: more app logic than TPC-C); JDBC worst",
		fmt.Sprintf("pyxis partition: %s", part.Describe()))
	return t, nil
}

// Fig13 is the 3-core TPC-W variant.
func Fig13(sc Scale) (*Table, error) {
	cfg := DefaultTPCW()
	part, err := cfg.PyxisPartition(0)
	if err != nil {
		return nil, err
	}
	t := LatencySweep("Fig 13: TPC-W browsing mix on 3-core database server (low budget)",
		[]Workload{cfg.JDBCWorkload(), cfg.ManualWorkload(), cfg.PyxisWorkload(part)},
		sc, 8, 3, DefaultCosts())
	t.Notes = append(t.Notes, "expect: ordering flips under limited CPU — JDBC/Pyxis beat Manual at high WIPS")
	return t, nil
}

// ---------------------------------------------------------------------------
// Fig 11 — dynamic partition switching under a load spike
// ---------------------------------------------------------------------------

// Bucket is one time slice of the Fig. 11 series.
type Bucket struct {
	T         float64
	Tput      float64
	MeanLatMs float64
	LowFrac   float64 // fraction of calls served by the low-budget partition
}

// seriesRun drives one implementation at a fixed rate. At t = T/3 an
// external load occupies the database server's cores: following the
// paper's observed behaviour (JDBC latency stays flat through the
// spike), the load starves colocated *program logic* by a fair-share
// factor while the DBMS keeps serving operations.
func seriesRun(w Workload, sc Scale, dbCores int, spikeFactor float64, cm CostModel,
	sw *runtime.Switcher, picks func() (int64, int64)) []Bucket {

	eng := sim.New()
	appCPU := eng.NewResource("app-cpu", 8)
	dbCPU := eng.NewResource("db-cpu", dbCores)
	link := eng.NewLink(cm.RTT, cm.BandwidthBps)
	db := w.NewDB()
	end := sc.SeriesDuration
	spikeAt := end / 3
	spiked := func(now float64) bool { return now >= spikeAt }

	type sample struct{ t, lat float64 }
	var samples []sample
	var pickMarks []struct {
		t        float64
		low, all int64
	}

	// Load monitor: every 10 s report windowed DB CPU load to the
	// switcher (paper §6.3: messages every 10 s, EWMA alpha 0.2). The
	// external load shows up in the reported figure.
	if sw != nil {
		eng.Spawn(0, func(p *sim.Proc) {
			lastBusy := 0.0
			lastT := 0.0
			for p.Now() < end {
				p.Sleep(10)
				util := (dbCPU.BusyTime - lastBusy) / ((p.Now() - lastT) * float64(dbCores)) * 100
				lastBusy, lastT = dbCPU.BusyTime, p.Now()
				if spiked(p.Now()) {
					util = 100 - (100-util)/spikeFactor // external processes fill the rest
				}
				sw.Observe(util)
			}
		})
	}

	interval := float64(sc.Clients) / sc.SeriesRate
	for i := 0; i < sc.Clients; i++ {
		i := i
		eng.Spawn(interval*float64(i)/float64(sc.Clients), func(p *sim.Proc) {
			env := &Env{P: p, AppCPU: appCPU, DBCPU: dbCPU, Link: link, CM: cm}
			env.DBSlow = func() float64 {
				if spiked(p.Now()) {
					return spikeFactor
				}
				return 1
			}
			txn := w.NewClient(db, p, env, i)
			next := p.Now()
			for k := int64(0); ; k++ {
				if p.Now() < next {
					p.Sleep(next - p.Now())
				}
				if p.Now() >= end {
					return
				}
				next += interval
				t0 := p.Now()
				if err := txn(int64(i)*1_000_003 + k); err == nil {
					samples = append(samples, sample{t0, p.Now() - t0})
				}
				env.Flush()
			}
		})
	}
	if picks != nil {
		eng.Spawn(0, func(p *sim.Proc) {
			for p.Now() < end {
				p.Sleep(sc.SeriesBucket)
				low, high := picks()
				pickMarks = append(pickMarks, struct {
					t        float64
					low, all int64
				}{p.Now(), low, low + high})
			}
		})
	}
	eng.Run(end + 1)

	nb := int(sc.SeriesDuration/sc.SeriesBucket) + 1
	buckets := make([]Bucket, nb)
	counts := make([]int, nb)
	for _, s := range samples {
		b := int(s.t / sc.SeriesBucket)
		if b >= nb {
			b = nb - 1
		}
		buckets[b].MeanLatMs += s.lat * 1e3
		counts[b]++
	}
	var prevLow, prevAll int64
	for i := range buckets {
		buckets[i].T = float64(i) * sc.SeriesBucket
		if counts[i] > 0 {
			buckets[i].MeanLatMs /= float64(counts[i])
			buckets[i].Tput = float64(counts[i]) / sc.SeriesBucket
		}
		for _, pm := range pickMarks {
			if pm.t <= buckets[i].T+sc.SeriesBucket && pm.t > buckets[i].T {
				dLow, dAll := pm.low-prevLow, pm.all-prevAll
				if dAll > 0 {
					buckets[i].LowFrac = float64(dLow) / float64(dAll)
				}
				prevLow, prevAll = pm.low, pm.all
			}
		}
	}
	if len(buckets) > 0 && counts[len(buckets)-1] == 0 {
		buckets = buckets[:len(buckets)-1]
	}
	return buckets
}

// pickCounter tallies partition selections across all simulated
// clients (the simulator is single-threaded, so plain fields suffice).
type pickCounter struct {
	low, all int64
}

// PyxisDynamicWorkload deploys both the high- and low-budget
// partitions at every client and routes each transaction according to
// the shared load switcher (paper §6.3).
func (c TPCCConfig) PyxisDynamicWorkload(high, low *pyxis.Partition, sw *runtime.Switcher, picks *pickCounter) Workload {
	return Workload{
		Name:  "Pyxis-dynamic",
		NewDB: c.Load,
		NewClient: func(db *sqldb.DB, p *sim.Proc, env *Env, id int) func(int64) error {
			scHigh := NewSimClient(high.Compiled, db, p, env)
			scLow := NewSimClient(low.Compiled, db, p, env)
			oidHigh, err := scHigh.Client.NewObject("TPCC")
			if err != nil {
				panic(err)
			}
			oidLow, err := scLow.Client.NewObject("TPCC")
			if err != nil {
				panic(err)
			}
			return func(k int64) error {
				wid, did, cid, olcnt, seed, rb := c.txnParams(k)
				sc, oid := scHigh, oidHigh
				if sw.UseLowBudget() {
					sc, oid = scLow, oidLow
					picks.low++
				}
				picks.all++
				_, err := sc.Client.CallEntry("TPCC.newOrder", oid,
					intv(wid), intv(did), intv(cid), intv(olcnt), intv(seed),
					intv(int64(c.Items)), boolv(rb))
				if err != nil {
					sc.RollbackAll()
				}
				return err
			}
		},
	}
}

// Fig11 — dynamic switching time series (paper Fig. 11).
func Fig11(sc Scale) (*Table, error) {
	cfg := DefaultTPCC()
	high, err := cfg.PyxisPartition(1.0)
	if err != nil {
		return nil, err
	}
	low, err := cfg.PyxisPartition(0)
	if err != nil {
		return nil, err
	}
	cm := DefaultCosts()
	const dbCores = 16
	// The external load gives colocated logic a 1/50 fair share
	// (≈ 49 competing processes).
	const spikeFactor = 50.0

	manual := seriesRun(cfg.ManualWorkload(), sc, dbCores, spikeFactor, cm, nil, nil)
	jdbc := seriesRun(cfg.JDBCWorkload(), sc, dbCores, spikeFactor, cm, nil, nil)

	sw := runtime.NewSwitcher()
	picks := &pickCounter{}
	pyxisBuckets := seriesRun(cfg.PyxisDynamicWorkload(high, low, sw, picks), sc, dbCores, spikeFactor, cm,
		sw, func() (int64, int64) { return picks.low, picks.all - picks.low })

	t := &Table{
		Title:  "Fig 11: TPC-C dynamic partition switching (load spike at t=T/3)",
		Header: []string{"t-sec", "Manual-ms", "JDBC-ms", "Pyxis-ms", "pyxis-low-frac"},
	}
	n := len(manual)
	if len(jdbc) < n {
		n = len(jdbc)
	}
	if len(pyxisBuckets) < n {
		n = len(pyxisBuckets)
	}
	for i := 0; i < n; i++ {
		t.Rows = append(t.Rows, []string{
			f0(manual[i].T), f1(manual[i].MeanLatMs), f1(jdbc[i].MeanLatMs),
			f1(pyxisBuckets[i].MeanLatMs), fmt.Sprintf("%.0f%%", pyxisBuckets[i].LowFrac*100),
		})
	}
	t.Notes = append(t.Notes,
		"expect: before the spike Pyxis tracks Manual (low-frac 0%); after it, EWMA shifts traffic to the JDBC-like partition (low-frac -> 100%) and latency tracks JDBC")
	return t, nil
}

// Fig14 — microbenchmark 2: three partitions x three load levels
// (paper Fig. 14; the diagonal should win).
func Fig14(sc Scale) (*Table, error) {
	app, mid, dbp, err := Micro2Partitions()
	if err != nil {
		return nil, err
	}
	cm := DefaultCosts()
	const dbCores = 16
	loads := []struct {
		name string
		bg   int
	}{
		{"No load", 0},
		{"Partial load", dbCores * 2},
		{"Full load", dbCores * 4},
	}
	parts := []struct {
		name string
		p    *pyxis.Partition
	}{
		{"APP", app}, {"APP-DB", mid}, {"DB", dbp},
	}
	t := &Table{
		Title:  "Fig 14 (microbenchmark 2): completion seconds per partition x server load",
		Header: []string{"CPU load", "APP", "APP-DB", "DB", "winner"},
	}
	for _, ld := range loads {
		row := []string{ld.name}
		best := ""
		bestV := 0.0
		for _, pp := range parts {
			secs := Micro2Run(pp.p, dbCores, ld.bg, sc.Q1, sc.Rounds, sc.Q2, cm)
			row = append(row, fmt.Sprintf("%.3f", secs))
			if best == "" || secs < bestV {
				best, bestV = pp.name, secs
			}
		}
		row = append(row, best)
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"expect the highlighted diagonal of the paper: DB wins unloaded, APP-DB wins partially loaded, APP wins fully loaded",
		fmt.Sprintf("partitions: APP {%d db-stmts}, APP-DB {%d}, DB {%d}", app.Report.DBNodes, mid.Report.DBNodes, dbp.Report.DBNodes))
	return t, nil
}
