package bench

import (
	"fmt"

	"pyxis"
	"pyxis/internal/interp"
	"pyxis/internal/runtime"
	"pyxis/internal/sim"
	"pyxis/internal/sqldb"
	"pyxis/internal/val"
)

// ---------------------------------------------------------------------------
// Microbenchmark 1 (paper §7.3): Pyxis execution-block overhead versus
// native code, measured on a linked list with everything placed on one
// server (no control transfers — worst case for Pyxis).
// ---------------------------------------------------------------------------

// Micro1Source is the linked-list program in PyxJ.
const Micro1Source = `
class Node {
    int v;
    Node next;

    Node() {
    }
}

class List {
    Node head;
    int size;

    List() {
        size = 0;
    }

    entry void push(int v) {
        Node n = new Node();
        n.v = v;
        n.next = head;
        head = n;
        size++;
    }

    entry int sum() {
        int s = 0;
        Node cur = head;
        while (cur != null) {
            s += cur.v;
            cur = cur.next;
        }
        return s;
    }

    entry int count() {
        return size;
    }
}
`

// Micro1Partition compiles the linked list with everything on the
// application server (budget 0).
func Micro1Partition() (*pyxis.Partition, error) {
	sys, err := pyxis.Load(Micro1Source)
	if err != nil {
		return nil, err
	}
	db := sqldb.Open()
	err = sys.ProfileWorkload(db, func(ip *interp.Interp) error {
		obj, err := ip.NewObject("List")
		if err != nil {
			return err
		}
		push := sys.Prog.Method("List", "push")
		sum := sys.Prog.Method("List", "sum")
		for i := 0; i < 50; i++ {
			if _, err := ip.CallEntry(push, obj, val.IntV(int64(i))); err != nil {
				return err
			}
		}
		_, err = ip.CallEntry(sum, obj)
		return err
	})
	if err != nil {
		return nil, err
	}
	return sys.Partition(0)
}

// Micro1Pyxis runs n pushes and one sum through the Pyxis runtime
// (single-sided deployment, wall-clock measured by the caller) and
// returns the sum.
func Micro1Pyxis(part *pyxis.Partition, n int) (int64, error) {
	dep := part.Deploy(sqldb.Open(), runtime.Options{})
	oid, err := dep.Client.NewObject("List")
	if err != nil {
		return 0, err
	}
	for i := 0; i < n; i++ {
		if _, err := dep.Client.CallEntry("List.push", oid, val.IntV(int64(i))); err != nil {
			return 0, err
		}
	}
	v, err := dep.Client.CallEntry("List.sum", oid)
	return v.I, err
}

// nativeNode mirrors the PyxJ list in plain Go.
type nativeNode struct {
	v    int64
	next *nativeNode
}

// Micro1Native runs the same workload in native Go.
func Micro1Native(n int) int64 {
	var head *nativeNode
	for i := 0; i < n; i++ {
		head = &nativeNode{v: int64(i), next: head}
	}
	s := int64(0)
	for cur := head; cur != nil; cur = cur.next {
		s += cur.v
	}
	return s
}

// ---------------------------------------------------------------------------
// Microbenchmark 2 (paper §7.4, Fig. 14): q1 selects, then CPU-bound
// SHA-1 rounds, then q2 selects — partitioned at three budgets and run
// under three database-server load levels.
// ---------------------------------------------------------------------------

// Micro2Source is the three-phase program.
const Micro2Source = `
class Micro {
    int acc;

    Micro() {
        acc = 0;
    }

    entry int run(int q1, int rounds, int q2) {
        int a = 0;
        int i = 0;
        while (i < q1) {
            table t = db.query("SELECT v FROM kv WHERE k = ?", i % 100);
            a += t.getInt(0, 0);
            i++;
        }
        int h = 7 + a % 13;
        int j = 0;
        while (j < rounds) {
            h = sys.sha1(h);
            j++;
        }
        if (h < 0) {
            h = -h;
        }
        int k = 0;
        while (k < q2) {
            table u = db.query("SELECT v FROM kv WHERE k = ?", (k + h) % 100);
            a += u.getInt(0, 0);
            k++;
        }
        acc = a;
        return a + h % 1000;
    }
}
`

// micro2DB builds the 100-row key/value table the queries hit.
func micro2DB() *sqldb.DB {
	db := sqldb.Open()
	s := db.NewSession()
	if _, err := s.Exec("CREATE TABLE kv (k INT PRIMARY KEY, v INT)"); err != nil {
		panic(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := s.Exec("INSERT INTO kv VALUES (?, ?)", val.IntV(int64(i)), val.IntV(int64(i*3))); err != nil {
			panic(err)
		}
	}
	return db
}

// Micro2Partitions generates the three partitions of Fig. 14: APP
// (low budget), APP—DB (medium budget: query phases on the database,
// compute phase on the application server), DB (high budget).
func Micro2Partitions() (app, mid, db *pyxis.Partition, err error) {
	build := func(frac float64) (*pyxis.Partition, error) {
		sys, err := pyxis.Load(Micro2Source)
		if err != nil {
			return nil, err
		}
		prof := micro2DB()
		err = sys.ProfileWorkload(prof, func(ip *interp.Interp) error {
			obj, err := ip.NewObject("Micro")
			if err != nil {
				return err
			}
			// Profile with the production ratio of queries to compute.
			_, err = ip.CallEntry(sys.Prog.Method("Micro", "run"), obj,
				val.IntV(40), val.IntV(200), val.IntV(40))
			return err
		})
		if err != nil {
			return nil, err
		}
		return sys.PartitionAt(frac)
	}
	if app, err = build(0); err != nil {
		return
	}
	if mid, err = build(0.55); err != nil {
		return
	}
	db, err = build(1.0)
	return
}

// Micro2Result is one cell of the Fig. 14 table.
type Micro2Result struct {
	Partition string
	Load      string
	Seconds   float64
}

// Micro2Run measures the virtual completion time of one partition
// under a given number of background-loaded DB cores.
func Micro2Run(part *pyxis.Partition, dbCores, bgLoad, q1, rounds, q2 int, cm CostModel) float64 {
	eng := sim.New()
	appCPU := eng.NewResource("app-cpu", 8)
	dbCPU := eng.NewResource("db-cpu", dbCores)
	link := eng.NewLink(cm.RTT, cm.BandwidthBps)
	db := micro2DB()

	var took float64
	done := false
	// Background load: bgLoad processes burning 1 ms CPU slices.
	for i := 0; i < bgLoad; i++ {
		eng.Spawn(0, func(p *sim.Proc) {
			for !done {
				dbCPU.Use(p, 0.001)
			}
		})
	}
	eng.Spawn(0, func(p *sim.Proc) {
		env := &Env{P: p, AppCPU: appCPU, DBCPU: dbCPU, Link: link, CM: cm}
		sc := NewSimClient(part.Compiled, db, p, env)
		oid, err := sc.Client.NewObject("Micro")
		if err != nil {
			panic(err)
		}
		t0 := p.Now()
		if _, err := sc.Client.CallEntry("Micro.run", oid,
			val.IntV(int64(q1)), val.IntV(int64(rounds)), val.IntV(int64(q2))); err != nil {
			panic(fmt.Sprintf("micro2: %v", err))
		}
		env.Flush()
		took = p.Now() - t0
		done = true
	})
	eng.Run(1e12)
	return took
}
