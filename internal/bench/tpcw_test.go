package bench

import "testing"

// TestTPCWSmoke checks the TPC-W pipeline end to end and the paper's
// §7.2 observation: order-inquiry code stays on the application server
// even when the budget is unconstrained.
func TestTPCWSmoke(t *testing.T) {
	cfg := DefaultTPCW()
	part, err := cfg.PyxisPartition(1.0)
	if err != nil {
		t.Fatalf("partition: %v", err)
	}
	t.Logf("partition: %s", part.Describe())

	// The orderInquiry body must be on APP despite the full budget.
	sys := part.System
	m := sys.Prog.Method("TPCW", "orderInquiry")
	onDB := 0
	total := 0
	for id, stmt := range sys.Prog.Stmts {
		_ = stmt
		if sys.Analysis.StmtMethod[id] == m {
			total++
			if part.Place.Of(id).String() == "DB" {
				onDB++
			}
		}
	}
	if total == 0 {
		t.Fatal("no orderInquiry statements found")
	}
	if onDB != 0 {
		t.Errorf("orderInquiry: %d/%d statements on DB; want 0 (no database access)", onDB, total)
	}

	run := func(w Workload) Point {
		return Run(w, RunCfg{Clients: 10, Rate: 50, Warmup: 1, Window: 3,
			AppCores: 8, DBCores: 16, CM: DefaultCosts()})
	}
	jdbc := run(cfg.JDBCWorkload())
	manual := run(cfg.ManualWorkload())
	pyx := run(cfg.PyxisWorkload(part))
	t.Logf("JDBC:   %+v", jdbc)
	t.Logf("Manual: %+v", manual)
	t.Logf("Pyxis:  %+v", pyx)
	if jdbc.Errors+manual.Errors+pyx.Errors > 0 {
		t.Errorf("errors: %d/%d/%d", jdbc.Errors, manual.Errors, pyx.Errors)
	}
	if jdbc.MeanLatMs < manual.MeanLatMs {
		t.Errorf("JDBC (%.2f) should be slower than Manual (%.2f)", jdbc.MeanLatMs, manual.MeanLatMs)
	}
}
