package bench

import (
	"errors"
	"fmt"
	goruntime "runtime"
	"testing"
	"time"

	"pyxis/internal/dbapi"
	"pyxis/internal/pdg"
	"pyxis/internal/rpc"
	"pyxis/internal/runtime"
	"pyxis/internal/val"
)

// shedTransport refuses every control transfer the way a saturated
// server does.
type shedTransport struct{}

func (shedTransport) Call([]byte) ([]byte, error) {
	return nil, fmt.Errorf("test shed: %w", rpc.ErrOverloaded)
}
func (shedTransport) Close() error { return nil }

// TestShedRollsBackAppSideTxn pins the orphaned-transaction fix: when
// a control transfer is shed with ErrOverloaded, any transaction the
// entry had already opened on the APP-side connection must be rolled
// back before the error surfaces — a shed-retry re-runs the entry
// from the top (begin would fail "already in a transaction") and the
// abandoned transaction's row locks would otherwise block admitted
// sessions until the connection died.
func TestShedRollsBackAppSideTxn(t *testing.T) {
	part, err := ParallelPartition(1.0)
	if err != nil {
		t.Fatal(err)
	}
	db, err := parallelDB(1)
	if err != nil {
		t.Fatal(err)
	}
	appPeer := runtime.NewPeer(part.Compiled, pdg.App, nil)
	local := dbapi.NewLocal(db)
	client := runtime.NewClient(appPeer.NewSession(local), shedTransport{})

	// Simulate the entry's app-side prefix: transaction open, row lock
	// held, right before a control transfer the server then refuses.
	if err := local.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := local.Exec("UPDATE accounts SET balance = 1.0 WHERE cid = 0"); err != nil {
		t.Fatal(err)
	}
	oid, err := client.NewObject("Ledger", val.IntV(0))
	if err == nil {
		_, err = client.CallEntry("Ledger.deposit", oid,
			val.IntV(0), val.IntV(0), val.DoubleV(1))
	}
	if !errors.Is(err, rpc.ErrOverloaded) {
		t.Fatalf("shedding transport surfaced %v, want ErrOverloaded", err)
	}

	if local.Sess.InTxn() {
		t.Fatal("shed left the app-side transaction open")
	}
	// The orphaned transaction's row lock must be gone: an independent
	// session can write the same row without blocking.
	done := make(chan error, 1)
	go func() {
		other := db.NewSession()
		_, werr := other.Exec("UPDATE accounts SET balance = 2.0 WHERE cid = 0")
		done <- werr
	}()
	select {
	case werr := <-done:
		if werr != nil {
			t.Fatalf("post-shed writer failed: %v", werr)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("post-shed writer blocked on an orphaned row lock")
	}
}

// TestRunPoolLedgerStripes drives the pooled ledger driver end to end
// over in-process pipes: all transactions complete, sessions stripe
// across the pool's connections instead of piling onto one, and the
// deposit audit holds (no lost updates through the pool).
func TestRunPoolLedgerStripes(t *testing.T) {
	part, err := ParallelPartition(1.0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunPoolLedger(part, PoolCfg{Clients: 8, Txns: 12, Conns: 4, DepositEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTxns != 8*12 {
		t.Errorf("completed %d txns, want %d", res.TotalTxns, 8*12)
	}
	if res.FinalTotal != res.ExpectTotal {
		t.Errorf("lost updates through the pool: balances sum to %v, deposits were %v",
			res.FinalTotal, res.ExpectTotal)
	}
	// Placement audit: 8 idle-pool sessions over 4 connections must
	// spread (round-robin tie-break) — a broken pool puts all 8 on
	// connection 0.
	spread := 0
	for _, n := range res.SessionsPerConn {
		if n > 0 {
			spread++
		}
	}
	if spread < 2 {
		t.Errorf("sessions did not stripe: per-conn counts %v", res.SessionsPerConn)
	}
	if res.Sheds != 0 {
		t.Errorf("un-gated server shed %d calls", res.Sheds)
	}
}

// TestRunPoolScalingSweep runs the 1-conn vs N-conn comparison at
// small scale. Wall-clock speedup is only asserted on parallel
// hardware (and never under the race detector) — the contract here is
// that every point completes and audits clean, and that the pooled
// points are not catastrophically SLOWER than the single connection
// (the pool must at worst be ~free).
func TestRunPoolScalingSweep(t *testing.T) {
	part, err := ParallelPartition(1.0)
	if err != nil {
		t.Fatal(err)
	}
	results, err := RunPoolScaling(part, PoolCfg{Clients: 8, Txns: 20, DepositEvery: 8}, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", PoolScalingReport(results))
	for _, r := range results {
		if r.TotalTxns != 8*20 {
			t.Errorf("conns=%d completed %d txns, want %d", r.Conns, r.TotalTxns, 8*20)
		}
		if r.FinalTotal != r.ExpectTotal {
			t.Errorf("conns=%d lost updates: %v != %v", r.Conns, r.FinalTotal, r.ExpectTotal)
		}
	}
	if !raceEnabled && goruntime.GOMAXPROCS(0) >= 4 {
		if ratio := results[1].Tput / results[0].Tput; ratio < 0.5 {
			t.Errorf("4-conn pool ran at %.2fx of single-conn throughput; pooling should never cost half the wire", ratio)
		}
	}
}

// TestRunPoolSaturationShedsGracefully is the wall-clock admission
// proof at test scale: more clients than admitted-session slots, so
// the server MUST shed with ErrOverloaded — yet every transaction
// eventually commits, the concurrent population stays at the cap, and
// the TPC-C invariants hold afterwards.
func TestRunPoolSaturationShedsGracefully(t *testing.T) {
	c := DefaultTPCC()
	part, err := TPCCParallelPartition(c, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := PoolSatCfg{Clients: 6, Txns: 4, Conns: 2, MaxSessions: 2, PaymentEvery: 3}
	res, db, err := RunPoolSaturation(part, c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%s", res)
	if res.TotalTxns != cfg.Clients*cfg.Txns {
		t.Errorf("completed %d txns, want %d (shed work must be retried, not dropped)",
			res.TotalTxns, cfg.Clients*cfg.Txns)
	}
	if res.ClientSheds == 0 || res.Admission.ShedSessions == 0 {
		t.Errorf("no sheds despite %d clients over a %d-session cap (client=%d server=%d)",
			cfg.Clients, cfg.MaxSessions, res.ClientSheds, res.Admission.ShedSessions)
	}
	if res.Admission.Sessions != 0 {
		t.Errorf("%d admission slots leaked after all clients closed", res.Admission.Sessions)
	}
	if got := res.Admission.AdmittedSessions; got < int64(cfg.Clients) {
		t.Errorf("only %d sessions ever admitted, want >= %d (every client must get through)", got, cfg.Clients)
	}
	if violations := CheckTPCCInvariants(db, c); len(violations) > 0 {
		for _, v := range violations {
			t.Errorf("invariant violated under shedding: %s", v)
		}
	}
}
