package bench

import (
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pyxis"
	"pyxis/internal/dbapi"
	"pyxis/internal/pdg"
	"pyxis/internal/rpc"
	"pyxis/internal/runtime"
	"pyxis/internal/sqldb"
	"pyxis/internal/val"
)

// This file measures the two halves of the saturation story:
//
//   - RunPoolLedger / RunPoolScaling: the same wall-clock ledger
//     workload as RunParallel, but with sessions striped across an
//     rpc.MuxPool of N connections instead of funneling through one.
//     The 1-conn point IS the old deployment shape, so the sweep
//     directly prices the single connection's head-of-line: every
//     frame of every session through one read loop and one write
//     mutex per end.
//
//   - RunPoolSaturation: the TPC-C mix pushed at an admission-gated
//     server with more clients than admitted-session slots. The server
//     sheds the excess with the typed rpc.ErrOverloaded; clients back
//     off (jittered) and retry, so every transaction eventually
//     commits, queues never grow past the admitted population, and the
//     TPC-C invariants must hold bit-for-bit afterwards — graceful
//     shed, not dropped work.

// PoolCfg configures one pooled ledger measurement.
type PoolCfg struct {
	Clients int // concurrent sessions (goroutines)
	Txns    int // calls per client
	Conns   int // mux connections in the pool (default 1)
	// DepositEvery makes every k-th call a deposit; the rest are
	// balance reads, which keep the handler cheap so the run is
	// wire-bound — exactly where the pool pays off. 0 = all deposits.
	DepositEvery int
	// TCP runs the wires over real loopback TCP mux servers instead of
	// in-process pipes.
	TCP bool
	// MaxRetries bounds overload retries per call (default 50).
	MaxRetries int
}

// PoolResult aggregates one pooled ledger run.
type PoolResult struct {
	Conns     int
	Clients   int
	TotalTxns int
	Deposits  int
	Elapsed   time.Duration
	Tput      float64
	MeanMs    float64
	P95Ms     float64
	// Sheds counts rpc.ErrOverloaded replies absorbed by backoff.
	Sheds int64
	// SessionsPerConn is how many control sessions the pool placed on
	// each connection — the striping audit (a broken pool piles all of
	// them on index 0).
	SessionsPerConn []int
	// FinalTotal is the sum of account balances afterwards;
	// ExpectTotal is what the deposits should have produced. Unequal
	// values mean lost updates.
	FinalTotal, ExpectTotal float64
}

// inProcMuxPool builds a MuxPool whose connections are in-process
// pipes, each served by its own demux loop over handlers from
// newHandlers (one per connection, exactly like a TCP server's
// per-connection factory) under one shared config.
func inProcMuxPool(n int, newHandlers func() rpc.SessionHandlers, cfg rpc.MuxServeConfig) (*rpc.MuxPool, error) {
	return rpc.NewMuxPool(n, func(int) (io.ReadWriteCloser, error) {
		srv, cli := net.Pipe()
		go rpc.ServeMuxConnConfig(srv, newHandlers(), cfg)
		return cli, nil
	})
}

// callWithShedRetry adapts runtime.RetryOverloaded (the shared
// jittered shed-retry loop) to the drivers' value-returning calls.
func callWithShedRetry(maxRetries int, call func() (val.Value, error)) (val.Value, int64, error) {
	var ret val.Value
	sheds, err := runtime.RetryOverloaded(maxRetries, func() error {
		var cerr error
		ret, cerr = call()
		return cerr
	})
	return ret, sheds, err
}

// RunPoolLedger drives cfg.Clients concurrent ledger sessions with
// their wires striped across a pool of cfg.Conns mux connections per
// port. Everything else matches RunParallel: one shared DB-side
// runtime, one shared database, per-session latency.
func RunPoolLedger(part *pyxis.Partition, cfg PoolCfg) (*PoolResult, error) {
	if cfg.Clients < 1 || cfg.Txns < 1 {
		return nil, fmt.Errorf("bench: RunPoolLedger needs Clients >= 1 and Txns >= 1")
	}
	if cfg.Conns < 1 {
		cfg.Conns = 1
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 50
	}
	db, err := parallelDB(cfg.Clients)
	if err != nil {
		return nil, err
	}

	prog := part.Compiled
	dbPeer := runtime.NewPeer(prog, pdg.DB, nil)
	appPeer := runtime.NewPeer(prog, pdg.App, nil)
	newMgr := func() rpc.SessionHandlers {
		return runtime.NewSessionManager(dbPeer, func() dbapi.Conn { return dbapi.NewLocal(db) })
	}

	var ctlPool, dbPool *rpc.MuxPool
	if cfg.TCP {
		ctlSrv, err := rpc.NewMuxServer("127.0.0.1:0", newMgr)
		if err != nil {
			return nil, err
		}
		defer ctlSrv.Close()
		dbSrv, err := rpc.NewMuxServer("127.0.0.1:0", func() rpc.SessionHandlers { return dbapi.MuxHandlers(db) })
		if err != nil {
			return nil, err
		}
		defer dbSrv.Close()
		if ctlPool, err = rpc.DialMuxPool(ctlSrv.Addr(), cfg.Conns); err != nil {
			return nil, err
		}
		defer ctlPool.Close()
		if dbPool, err = rpc.DialMuxPool(dbSrv.Addr(), cfg.Conns); err != nil {
			return nil, err
		}
		defer dbPool.Close()
	} else {
		if ctlPool, err = inProcMuxPool(cfg.Conns, newMgr, rpc.MuxServeConfig{}); err != nil {
			return nil, err
		}
		defer ctlPool.Close()
		if dbPool, err = inProcMuxPool(cfg.Conns, func() rpc.SessionHandlers { return dbapi.MuxHandlers(db) }, rpc.MuxServeConfig{}); err != nil {
			return nil, err
		}
		defer dbPool.Close()
	}

	type sessionOut struct {
		lats     []float64
		deposits int
		sheds    int64
		connIdx  uint8
		err      error
	}
	outs := make([]sessionOut, cfg.Clients)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < cfg.Clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out := &outs[i]
			ctlT, err := ctlPool.Session()
			if err != nil {
				out.err = err
				return
			}
			dbT, err := dbPool.Session()
			if err != nil {
				out.err = err
				return
			}
			out.connIdx = rpc.SessionConn(ctlT.ID())
			sess := appPeer.NewSession(dbapi.NewClient(dbT))
			client := runtime.NewClient(sess, ctlT)
			defer client.Close()
			oid, sheds, err := callWithShedRetry(cfg.MaxRetries, func() (val.Value, error) {
				o, err := client.NewObject("Ledger", val.IntV(int64(i)))
				return val.ObjV(o), err
			})
			out.sheds += sheds
			if err != nil {
				out.err = err
				return
			}
			for k := 0; k < cfg.Txns; k++ {
				isDeposit := cfg.DepositEvery == 0 || k%cfg.DepositEvery == 0
				t0 := time.Now()
				_, sheds, err := callWithShedRetry(cfg.MaxRetries, func() (val.Value, error) {
					if isDeposit {
						return client.CallEntry("Ledger.deposit", val.OID(oid.I),
							val.IntV(int64(i)), val.IntV(int64(k)), val.DoubleV(1))
					}
					return client.CallEntry("Ledger.balance", val.OID(oid.I), val.IntV(int64(i)))
				})
				out.sheds += sheds
				if err != nil {
					out.err = fmt.Errorf("session %d txn %d: %w", i, k, err)
					return
				}
				out.lats = append(out.lats, float64(time.Since(t0).Microseconds())/1e3)
				if isDeposit {
					out.deposits++
				}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := &PoolResult{Conns: cfg.Conns, Clients: cfg.Clients, Elapsed: elapsed,
		SessionsPerConn: make([]int, cfg.Conns)}
	var all []float64
	for i := range outs {
		if outs[i].err != nil {
			return nil, outs[i].err
		}
		all = append(all, outs[i].lats...)
		res.Deposits += outs[i].deposits
		res.Sheds += outs[i].sheds
		res.SessionsPerConn[int(outs[i].connIdx)%cfg.Conns]++
	}
	res.TotalTxns = len(all)
	res.Tput = float64(len(all)) / elapsed.Seconds()
	agg := Summarize(all)
	res.MeanMs, res.P95Ms = agg.MeanMs, agg.P95Ms
	res.ExpectTotal = float64(res.Deposits)

	sess := db.NewSession()
	rs, err := sess.Query("SELECT balance FROM accounts")
	if err != nil {
		return nil, err
	}
	for _, row := range rs.Rows {
		res.FinalTotal += row[0].F
	}
	return res, nil
}

// String renders the result as one table row block.
func (r *PoolResult) String() string {
	return fmt.Sprintf("conns=%d clients=%d txns=%d elapsed=%v tput=%.0f txn/s lat(mean=%.3fms p95=%.3fms) sheds=%d sessions/conn=%v",
		r.Conns, r.Clients, r.TotalTxns, r.Elapsed.Round(time.Millisecond), r.Tput, r.MeanMs, r.P95Ms, r.Sheds, r.SessionsPerConn)
}

// RunPoolScaling measures throughput vs. pool size at a fixed client
// count: one RunPoolLedger per entry of conns against a fresh database
// per point. The first entry (conventionally 1) is the old
// single-connection deployment; the ratio of any later point to it is
// the price of the head-of-line the pool removed.
func RunPoolScaling(part *pyxis.Partition, base PoolCfg, conns []int) ([]*PoolResult, error) {
	results := make([]*PoolResult, 0, len(conns))
	for _, n := range conns {
		cfg := base
		cfg.Conns = n
		res, err := RunPoolLedger(part, cfg)
		if err != nil {
			return nil, fmt.Errorf("bench: pool point conns=%d: %w", n, err)
		}
		results = append(results, res)
	}
	return results, nil
}

// PoolScalingReport renders a RunPoolScaling sweep with speedup
// relative to the first (usually 1-connection) point.
func PoolScalingReport(results []*PoolResult) string {
	if len(results) == 0 {
		return "(no pool points)"
	}
	base := results[0].Tput
	var b strings.Builder
	fmt.Fprintf(&b, "%6s %8s %10s %12s %10s %10s %9s\n", "conns", "clients", "txns", "tput(txn/s)", "mean(ms)", "p95(ms)", "speedup")
	for _, r := range results {
		speedup := 0.0
		if base > 0 {
			speedup = r.Tput / base
		}
		fmt.Fprintf(&b, "%6d %8d %10d %12.0f %10.3f %10.3f %8.2fx\n",
			r.Conns, r.Clients, r.TotalTxns, r.Tput, r.MeanMs, r.P95Ms, speedup)
	}
	return strings.TrimRight(b.String(), "\n")
}

// ---------------------------------------------------------------------------
// Saturation: admission control shedding under forced overload
// ---------------------------------------------------------------------------

// PoolSatCfg configures one saturation run: more clients than the
// server admits at once.
type PoolSatCfg struct {
	Clients int // concurrent client goroutines
	Txns    int // transactions per client
	Conns   int // pool connections per wire (default 1)
	// MaxSessions is the server's admitted-session cap; Clients >
	// MaxSessions forces session sheds (0 disables the cap, in which
	// case nothing sheds and the run degenerates to RunParallelTPCC).
	MaxSessions int
	// PaymentEvery makes every k-th transaction a Payment (0 disables).
	PaymentEvery int
	// TCP runs the wires over real loopback TCP mux servers.
	TCP bool
	// MaxRetries bounds deadlock retries per transaction (default 50).
	MaxRetries int
	// OpenTimeout bounds how long one client keeps retrying session
	// admission (default 120s; capacity frees as admitted clients
	// finish, so waits are bounded by the workload, not the timeout).
	OpenTimeout time.Duration
}

// PoolSatResult aggregates one saturation run.
type PoolSatResult struct {
	Clients     int
	Conns       int
	MaxSessions int
	TotalTxns   int
	NewOrders   int
	Payments    int
	Deadlocks   int
	Elapsed     time.Duration
	Tput        float64
	MeanMs      float64
	P95Ms       float64
	// ClientSheds counts rpc.ErrOverloaded replies clients observed
	// (and absorbed with jittered backoff).
	ClientSheds int64
	// Admission snapshots the server-side controller after the run.
	Admission runtime.AdmissionStats
}

// RunPoolSaturation floods an admission-gated DB server: cfg.Clients
// TPC-C sessions arrive over a cfg.Conns-connection pool at a server
// that admits only cfg.MaxSessions of them at once. Excess sessions
// are shed with rpc.ErrOverloaded and retry with jittered backoff
// until slots free, so the run completes every transaction while the
// concurrent population — and with it queue growth and p95 — stays
// bounded. It returns the result plus the shared database so callers
// audit CheckTPCCInvariants afterwards.
func RunPoolSaturation(part *pyxis.Partition, c TPCCConfig, cfg PoolSatCfg) (*PoolSatResult, *sqldb.DB, error) {
	if cfg.Clients < 1 || cfg.Txns < 1 {
		return nil, nil, fmt.Errorf("bench: RunPoolSaturation needs Clients >= 1 and Txns >= 1")
	}
	if cfg.Conns < 1 {
		cfg.Conns = 1
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 50
	}
	if cfg.OpenTimeout <= 0 {
		cfg.OpenTimeout = 120 * time.Second
	}
	db := c.Load()

	prog := part.Compiled
	dbPeer := runtime.NewPeer(prog, pdg.DB, nil)
	appPeer := runtime.NewPeer(prog, pdg.App, nil)
	newMgr := func() rpc.SessionHandlers {
		return runtime.NewSessionManager(dbPeer, func() dbapi.Conn { return dbapi.NewLocal(db) })
	}

	// The admission controller is the experiment: session slots capped
	// at MaxSessions, the load monitor supplying the (a) queue-depth /
	// (b) lock-wait / (c) CPU-proxy blend. As in RunParallelDynamic the
	// organic saturation points are pushed out — clients share this
	// process with the server, so goroutine counts and colocated lock
	// waits would otherwise trip the load gate nondeterministically;
	// the session cap is the forcing function here, and the two-process
	// cmd/pyxis-dbserver keeps the calibrated defaults.
	mon := runtime.NewLoadMonitor(db)
	mon.GoroutineSat = 1 << 20
	mon.LockWaitSat = 1 << 20
	adm := runtime.NewAdmissionController(mon, runtime.AdmissionConfig{MaxSessions: cfg.MaxSessions})
	muxCfg := rpc.MuxServeConfig{Load: mon.Source(), Admission: adm}

	var ctlPool, dbPool *rpc.MuxPool
	var err error
	if cfg.TCP {
		ctlSrv, err := rpc.NewMuxServerConfig("127.0.0.1:0", newMgr, muxCfg)
		if err != nil {
			return nil, nil, err
		}
		defer ctlSrv.Close()
		dbSrv, err := rpc.NewMuxServer("127.0.0.1:0", func() rpc.SessionHandlers { return dbapi.MuxHandlers(db) })
		if err != nil {
			return nil, nil, err
		}
		defer dbSrv.Close()
		if ctlPool, err = rpc.DialMuxPool(ctlSrv.Addr(), cfg.Conns); err != nil {
			return nil, nil, err
		}
		defer ctlPool.Close()
		if dbPool, err = rpc.DialMuxPool(dbSrv.Addr(), cfg.Conns); err != nil {
			return nil, nil, err
		}
		defer dbPool.Close()
	} else {
		if ctlPool, err = inProcMuxPool(cfg.Conns, newMgr, muxCfg); err != nil {
			return nil, nil, err
		}
		defer ctlPool.Close()
		if dbPool, err = inProcMuxPool(cfg.Conns, func() rpc.SessionHandlers { return dbapi.MuxHandlers(db) }, rpc.MuxServeConfig{}); err != nil {
			return nil, nil, err
		}
		defer dbPool.Close()
	}

	type sessionOut struct {
		lats      []float64
		newOrders int
		payments  int
		deadlocks int
		sheds     int64
		err       error
	}
	outs := make([]sessionOut, cfg.Clients)
	// With more clients than slots a shed is inevitable — but only if
	// the admitted sessions actually overlap the excess clients'
	// arrival, which goroutine scheduling (especially on few cores)
	// does not guarantee for a short workload. So the first wave of
	// admitted clients HOLDS its sessions until some client has
	// observed a shed: the excess clients keep retrying against full
	// slots, the flag flips, the holders release. That makes the
	// saturation genuinely forced rather than scheduling-dependent,
	// with no deadlock — the waiters' retries are exactly what sets
	// the flag.
	oversubscribed := cfg.MaxSessions > 0 && cfg.Clients > cfg.MaxSessions
	var shedObserved atomic.Bool
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < cfg.Clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out := &outs[i]
			ctlT, err := ctlPool.Session()
			if err != nil {
				out.err = err
				return
			}
			dbT, err := dbPool.Session()
			if err != nil {
				out.err = err
				return
			}
			sess := appPeer.NewSession(dbapi.NewClient(dbT))
			client := runtime.NewClient(sess, ctlT)
			defer client.Close()
			if oversubscribed {
				defer func() {
					if out.err != nil {
						return
					}
					deadline := time.Now().Add(cfg.OpenTimeout)
					for !shedObserved.Load() && time.Now().Before(deadline) {
						time.Sleep(time.Millisecond)
					}
				}()
			}

			// Session admission: the first control transfer creates the
			// server-side session, so a shed here means "no slot free";
			// the session holds no server state and simply retries with
			// jittered backoff until a slot opens or the timeout fires.
			var oid val.OID
			deadline := time.Now().Add(cfg.OpenTimeout)
			for attempt := 0; ; attempt++ {
				o, err := client.NewObject("TPCC")
				if err == nil {
					oid = o
					break
				}
				if !errors.Is(err, rpc.ErrOverloaded) {
					out.err = fmt.Errorf("session %d open: %w", i, err)
					return
				}
				out.sheds++
				shedObserved.Store(true)
				if time.Now().After(deadline) {
					out.err = fmt.Errorf("session %d never admitted within %v: %w", i, cfg.OpenTimeout, err)
					return
				}
				time.Sleep(runtime.ShedBackoff(attempt))
			}

			for k := 0; k < cfg.Txns; k++ {
				seq := int64(i)*1_000_003 + int64(k)
				wid, did, cid, olcnt, seed, rb := c.txnParams(seq)
				isPayment := cfg.PaymentEvery > 0 && k%cfg.PaymentEvery == 0
				t0 := time.Now()
				var err error
				for attempt := 0; ; attempt++ {
					if isPayment {
						amount := float64(seq%97 + 1)
						_, err = client.CallEntry("TPCC.payment", oid,
							val.IntV(wid), val.IntV(did), val.IntV(cid), val.DoubleV(amount))
					} else {
						_, err = client.CallEntry("TPCC.newOrder", oid,
							val.IntV(wid), val.IntV(did), val.IntV(cid), val.IntV(olcnt),
							val.IntV(seed), val.IntV(int64(c.Items)), val.BoolV(rb))
					}
					if err == nil {
						break
					}
					if attempt >= cfg.MaxRetries {
						out.err = fmt.Errorf("session %d txn %d: %w", i, k, err)
						return
					}
					switch {
					case isDeadlockErr(err):
						out.deadlocks++
					case errors.Is(err, rpc.ErrOverloaded):
						// A per-call shed on an admitted session (the
						// tightened queue bound while saturated).
						out.sheds++
						shedObserved.Store(true)
						time.Sleep(runtime.ShedBackoff(attempt))
					default:
						out.err = fmt.Errorf("session %d txn %d: %w", i, k, err)
						return
					}
				}
				out.lats = append(out.lats, float64(time.Since(t0).Microseconds())/1e3)
				if isPayment {
					out.payments++
				} else {
					out.newOrders++
				}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := &PoolSatResult{Clients: cfg.Clients, Conns: cfg.Conns, MaxSessions: cfg.MaxSessions, Elapsed: elapsed}
	var all []float64
	for i := range outs {
		if outs[i].err != nil {
			return nil, nil, outs[i].err
		}
		all = append(all, outs[i].lats...)
		res.NewOrders += outs[i].newOrders
		res.Payments += outs[i].payments
		res.Deadlocks += outs[i].deadlocks
		res.ClientSheds += outs[i].sheds
	}
	res.TotalTxns = len(all)
	res.Tput = float64(len(all)) / elapsed.Seconds()
	agg := Summarize(all)
	res.MeanMs, res.P95Ms = agg.MeanMs, agg.P95Ms
	// Admission slots release asynchronously: the server worker frees a
	// session's slot only after the handler drained (mux close path),
	// which can land after the client's Close returns. Wait for the
	// controller to converge so the snapshot reflects the settled state.
	deadline := time.Now().Add(2 * time.Second)
	for adm.Stats().Sessions != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	res.Admission = adm.Stats()
	return res, db, nil
}

// String renders the result as one table row block.
func (r *PoolSatResult) String() string {
	return fmt.Sprintf("clients=%d conns=%d max-sessions=%d txns=%d (no=%d pay=%d dl-retries=%d) elapsed=%v tput=%.0f txn/s lat(mean=%.3fms p95=%.3fms) sheds(client=%d server-sessions=%d server-calls=%d)",
		r.Clients, r.Conns, r.MaxSessions, r.TotalTxns, r.NewOrders, r.Payments, r.Deadlocks,
		r.Elapsed.Round(time.Millisecond), r.Tput, r.MeanMs, r.P95Ms,
		r.ClientSheds, r.Admission.ShedSessions, r.Admission.ShedCalls)
}
