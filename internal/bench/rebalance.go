package bench

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"pyxis/internal/dbapi"
	"pyxis/internal/rpc"
	"pyxis/internal/runtime"
	"pyxis/internal/sqldb"
)

// This file measures the live-rebalancing story end to end: a
// Zipf-skewed TPC-C mix makes one shard hot, the runtime.Advisor
// notices (imbalance ratio over its trigger), min-cuts the co-access
// graph into a migration plan, and runtime.Migrator moves the chosen
// warehouse ranges shard-to-shard over the live database wire —
// fence, stream, drain, 2PC cutover, epoch-bumped map publish — while
// the clients keep running. The drivers exercise exactly the three
// retry classes a live migration exposes:
//
//   - ErrRangeFenced: the warehouse is mid-move; back off briefly and
//     retry (does not count against the deadlock retry budget — the
//     fence clears when the move commits or its TTL lapses);
//   - ErrRangeMoved / ErrWrongShard: the move committed; drop the
//     cached shard session, re-read the (epoch-bumped) map and re-home;
//   - deadlock / ErrTxnAborted: the usual victim retry.
//
// The frozen-map baseline (Advisor off) runs the identical workload
// without the migration, so the post-rebalance throughput gate has a
// denominator measured under the same skew.

// RebalanceCfg configures one live-rebalancing TPC-C measurement.
type RebalanceCfg struct {
	Clients int // concurrent driver goroutines
	Txns    int // transactions per client
	Shards  int // independent shard servers (>= 2 for a migration to exist)
	Conns   int // pooled connections per shard (default 1)
	// ZipfS is the warehouse-pick skew exponent (default 1.4): rank 1
	// (warehouse 1, shard 0) is the hotspot.
	ZipfS float64
	// PaymentEvery makes every k-th transaction a Payment; the rest are
	// NewOrders (default 2).
	PaymentEvery int
	// Live runs the advisor->migrator controller at the halfway point;
	// off = the frozen-map baseline.
	Live bool
	// ForceMove skips the advisor and moves the upper half of shard 0's
	// base range to shard 1 at the halfway point regardless of load —
	// the deterministic single migration the differential test diffs
	// against a no-migration run.
	ForceMove bool
	// MaxRetries bounds deadlock-victim retries per transaction
	// (default 50). Fence retries are bounded by FenceTTL, not this.
	MaxRetries int
	// FenceTTL is the migration fence's crash-safety TTL (default 10s;
	// it must comfortably exceed one move's stream time, or writers
	// wake mid-stream on drained rows).
	FenceTTL time.Duration
	// Trigger overrides the advisor's imbalance trigger (default 1.25).
	Trigger float64
}

// RebalanceResult aggregates one rebalancing run.
type RebalanceResult struct {
	Shards    int
	Clients   int
	TotalTxns int
	NewOrders int
	Payments  int
	Deadlocks int
	// FenceRetries counts transactions that backed off on a fenced
	// range; Rehomes counts cached-session drops forced by an epoch
	// bump or a moved-range redirect.
	FenceRetries int
	Rehomes      int
	// Migrations is the number of completed Move calls; MovedWarehouses
	// lists every warehouse that changed shards; RowsMoved sums the
	// streamed rows; MigrationMs the fence-to-publish wall time.
	Migrations      int
	MovedWarehouses []int64
	RowsMoved       int
	MigrationMs     float64
	// ImbalanceBefore is the advisor's hottest/median ratio at the
	// trigger point; ImbalanceAfter is the same ratio over the
	// post-migration observation window under the final map.
	ImbalanceBefore float64
	ImbalanceAfter  float64
	Elapsed         time.Duration
	Tput            float64 // whole-run txn/s
	PostTput        float64 // txn/s from migration end (or halfway, frozen) to finish
	FinalEpoch      uint64
}

// String renders the result as one table row block.
func (r *RebalanceResult) String() string {
	s := fmt.Sprintf("shards=%d clients=%d txns=%d (no=%d pay=%d dl-retries=%d) elapsed=%v tput=%.0f txn/s post-tput=%.0f txn/s imbalance=%.2f",
		r.Shards, r.Clients, r.TotalTxns, r.NewOrders, r.Payments, r.Deadlocks,
		r.Elapsed.Round(time.Millisecond), r.Tput, r.PostTput, r.ImbalanceAfter)
	if r.Migrations > 0 {
		s += fmt.Sprintf(" migrated=%v (%d rows in %.0fms, %.2f->%.2f, epoch %d) fence-retries=%d rehomes=%d",
			r.MovedWarehouses, r.RowsMoved, r.MigrationMs, r.ImbalanceBefore, r.ImbalanceAfter,
			r.FinalEpoch, r.FenceRetries, r.Rehomes)
	}
	return s
}

// TPCCWarehouseKeys maps every warehouse-partitioned TPC-C table to
// its partition-key column — the table set a migration fences and
// streams. The item catalog is replicated per shard and deliberately
// absent.
func TPCCWarehouseKeys() map[string]string {
	return map[string]string{
		"warehouse":  "w_id",
		"district":   "d_w_id",
		"customer":   "c_w_id",
		"orders":     "o_w_id",
		"new_order":  "no_w_id",
		"order_line": "ol_w_id",
		"stock":      "s_w_id",
	}
}

// RunRebalance drives cfg.Clients Zipf-skewed TPC-C drivers against
// cfg.Shards shard servers and (when cfg.Live) lets the advisor
// trigger a live migration at the halfway point. It returns the
// result, the per-shard databases and the FINAL shard map, so callers
// audit CheckShardInvariants against post-move ownership.
func RunRebalance(c TPCCConfig, cfg RebalanceCfg) (*RebalanceResult, []*sqldb.DB, runtime.ShardMap, error) {
	var zero runtime.ShardMap
	if cfg.Clients < 1 || cfg.Txns < 1 {
		return nil, nil, zero, fmt.Errorf("bench: RunRebalance needs Clients >= 1 and Txns >= 1")
	}
	if cfg.Shards < 2 {
		return nil, nil, zero, fmt.Errorf("bench: RunRebalance needs Shards >= 2 (got %d)", cfg.Shards)
	}
	if cfg.Shards > c.Warehouses {
		return nil, nil, zero, fmt.Errorf("bench: %d shards over %d warehouses would leave empty shards", cfg.Shards, c.Warehouses)
	}
	if cfg.Conns < 1 {
		cfg.Conns = 1
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 50
	}
	if cfg.ZipfS <= 1 {
		cfg.ZipfS = 1.4
	}
	if cfg.PaymentEvery <= 0 {
		cfg.PaymentEvery = 2
	}
	if cfg.FenceTTL <= 0 {
		cfg.FenceTTL = 10 * time.Second
	}

	smap := runtime.ShardMap{Shards: cfg.Shards, Warehouses: c.Warehouses}
	dbs := make([]*sqldb.DB, cfg.Shards)
	for i := range dbs {
		lo, hi := smap.WarehouseRange(i)
		dbs[i] = c.LoadRange(int(lo), int(hi))
	}
	sc := runtime.NewShardedClient(smap)
	parts := make([]*dbapi.Participant, cfg.Shards)
	for i := range parts {
		parts[i] = dbapi.NewParticipant(0, sc.TwoPC.Outcome)
	}
	dbPool, err := rpc.NewShardedPool(cfg.Shards, cfg.Conns,
		func(shard, _ int) (io.ReadWriteCloser, error) {
			srv, cli := net.Pipe()
			go rpc.ServeMuxConnConfig(srv, dbapi.MuxHandlersTxn(dbs[shard], parts[shard]), rpc.MuxServeConfig{})
			return cli, nil
		})
	if err != nil {
		return nil, nil, zero, err
	}
	defer dbPool.Close()

	adv := runtime.NewAdvisor(c.Warehouses)
	if cfg.Trigger > 0 {
		adv.Trigger = cfg.Trigger
	}
	mig := &runtime.Migrator{Client: sc, Pool: dbPool, Tables: TPCCWarehouseKeys(), FenceTTL: cfg.FenceTTL}

	res := &RebalanceResult{Shards: cfg.Shards, Clients: cfg.Clients}
	totalTxns := cfg.Clients * cfg.Txns
	var done atomic.Int64
	halfway := make(chan struct{})
	var halfOnce sync.Once

	// The controller: woken when half the workload has committed, it
	// reads the advisor, migrates, resets the observation window and
	// records the post-migration throughput baseline.
	var postStart time.Time
	var postStartTxns int64
	var ctlErr error
	ctlDone := make(chan struct{})
	go func() {
		defer close(ctlDone)
		<-halfway
		if cfg.Live || cfg.ForceMove {
			before, _ := adv.Imbalance(sc.CurrentMap())
			res.ImbalanceBefore = before
			var runs [][2]int64
			from, to := 0, 1
			if cfg.ForceMove {
				lo, hi := smap.WarehouseRange(0)
				runs = [][2]int64{{(lo + hi + 1) / 2, hi}}
			} else {
				plan, err := adv.Plan(sc.CurrentMap())
				if err != nil {
					ctlErr = err
					return
				}
				if plan != nil {
					runs, from, to = plan.Runs(), plan.From, plan.To
				}
			}
			for _, r := range runs {
				var mv *runtime.MoveResult
				var err error
				// The drain transaction can lose a deadlock to an
				// in-flight writer; that aborts the move cleanly (fence
				// released, both sides rolled back), so retry it.
				for attempt := 0; attempt < 5; attempt++ {
					mv, err = mig.Move(from, to, r[0], r[1])
					if err == nil || !(isDeadlockErr(err) || errors.Is(err, runtime.ErrTxnAborted)) {
						break
					}
				}
				if err != nil {
					ctlErr = fmt.Errorf("bench: migrate w[%d,%d]: %w", r[0], r[1], err)
					return
				}
				res.Migrations++
				res.RowsMoved += mv.Rows
				res.MigrationMs += float64(mv.Elapsed.Microseconds()) / 1e3
				for w := r[0]; w <= r[1]; w++ {
					res.MovedWarehouses = append(res.MovedWarehouses, w)
				}
			}
			// Measure the next window against the new placement only.
			adv.Reset()
		}
		postStart = time.Now()
		postStartTxns = done.Load()
	}()

	type driverOut struct {
		newOrders, payments, deadlocks, fenceRetries, rehomes int
		err                                                   error
	}
	outs := make([]driverOut, cfg.Clients)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < cfg.Clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out := &outs[i]
			rng := rand.New(rand.NewSource(int64(i)*7919 + 17))
			zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(c.Warehouses-1))
			// Cached per-shard sessions, dropped whole on an epoch bump:
			// a session opened under a stale map may be homed wrong.
			conns := map[int]*dbapi.Client{}
			epoch := sc.MapEpoch()
			dropConns := func() {
				for sh, cl := range conns {
					_ = cl.Close()
					delete(conns, sh)
				}
			}
			defer dropConns()
			connOn := func(sh int) (*dbapi.Client, error) {
				if cl, ok := conns[sh]; ok {
					return cl, nil
				}
				sess, err := dbPool.Session(sh)
				if err != nil {
					return nil, err
				}
				conns[sh] = dbapi.NewClient(sess)
				return conns[sh], nil
			}
			for k := 0; k < cfg.Txns; k++ {
				// Re-home at the transaction boundary: an epoch bump means
				// the map changed under us.
				if e := sc.MapEpoch(); e != epoch {
					dropConns()
					epoch = e
					out.rehomes++
				}
				wid := int64(zipf.Uint64()) + 1
				seq := int64(i)*1_000_003 + int64(k)
				_, did, cid, olcnt, seed, rb := c.txnParams(seq)
				isPayment := k%cfg.PaymentEvery == 0
				var fenceDeadline time.Time
				deadlocks := 0
				for {
					shard := sc.HomeShard(wid)
					var err error
					conn, err := connOn(shard)
					if err == nil {
						if isPayment {
							_, err = c.paymentNative(conn, wid, did, cid, float64(seq%97+1))
						} else {
							_, err = c.newOrderNative(conn, wid, did, cid, olcnt, seed, rb)
						}
					}
					if err == nil {
						break
					}
					switch {
					case errors.Is(err, sqldb.ErrRangeFenced):
						// Mid-migration: the fence clears on cutover (or
						// its TTL), so back off without burning the
						// deadlock budget — but bound the wait so a stuck
						// fence fails the run instead of hanging it.
						if fenceDeadline.IsZero() {
							fenceDeadline = time.Now().Add(cfg.FenceTTL + 5*time.Second)
						}
						if time.Now().After(fenceDeadline) {
							out.err = fmt.Errorf("driver %d txn %d: fence never cleared: %w", i, k, err)
							return
						}
						out.fenceRetries++
						time.Sleep(500 * time.Microsecond)
					case errors.Is(err, sqldb.ErrRangeMoved) || errors.Is(err, runtime.ErrWrongShard):
						// The move committed and this shard tombstoned the
						// range: drop the cached session and re-route via
						// the (about-to-be or already) published map.
						if cl, ok := conns[shard]; ok {
							_ = cl.Close()
							delete(conns, shard)
						}
						epoch = sc.MapEpoch()
						out.rehomes++
						time.Sleep(200 * time.Microsecond)
					case isDeadlockErr(err) || errors.Is(err, runtime.ErrTxnAborted):
						deadlocks++
						out.deadlocks++
						if deadlocks > cfg.MaxRetries {
							out.err = fmt.Errorf("driver %d txn %d: retries exhausted: %w", i, k, err)
							return
						}
						// Jittered backoff: the Zipf hotspot concentrates
						// half the tier's traffic on one warehouse, so
						// victims that retry instantly re-collide as a
						// herd (uniform mixes never see this livelock).
						back := deadlocks
						if back > 10 {
							back = 10
						}
						time.Sleep(time.Duration(rng.Intn(100)+back*50) * time.Microsecond)
					default:
						out.err = fmt.Errorf("driver %d (shard %d) txn %d: %w", i, shard, k, err)
						return
					}
				}
				if isPayment {
					out.payments++
				} else {
					out.newOrders++
				}
				adv.Observe(wid)
				if n := done.Add(1); n >= int64(totalTxns/2) {
					halfOnce.Do(func() { close(halfway) })
				}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	// A tiny run may never cross the halfway mark (driver error exits);
	// unblock the controller either way.
	halfOnce.Do(func() { close(halfway) })
	<-ctlDone
	if ctlErr != nil {
		return nil, nil, zero, ctlErr
	}

	final := sc.CurrentMap()
	for i := range outs {
		if outs[i].err != nil {
			return nil, nil, zero, outs[i].err
		}
		res.NewOrders += outs[i].newOrders
		res.Payments += outs[i].payments
		res.Deadlocks += outs[i].deadlocks
		res.FenceRetries += outs[i].fenceRetries
		res.Rehomes += outs[i].rehomes
	}
	res.TotalTxns = res.NewOrders + res.Payments
	res.Elapsed = elapsed
	res.Tput = float64(res.TotalTxns) / elapsed.Seconds()
	if !postStart.IsZero() {
		if win := time.Since(postStart).Seconds(); win > 0 {
			res.PostTput = float64(done.Load()-postStartTxns) / win
		}
	}
	res.ImbalanceAfter = runtime.ImbalanceRatio(adv.ShardLoads(final))
	res.FinalEpoch = final.Epoch
	return res, dbs, final, nil
}
