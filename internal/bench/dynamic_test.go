package bench

import "testing"

// TestParallelDynamicSwitchingRamp is the acceptance run for live
// session-aware switching: under a forced idle → spike → recover DB
// load ramp, the low-budget pick share must rise then fall, concurrent
// sessions must route differently within the mixed (spike) phase, and
// the TPC-C invariants must hold on the shared database both
// deployments wrote to.
func TestParallelDynamicSwitchingRamp(t *testing.T) {
	cfg := DefaultTPCC()
	high, err := TPCCParallelPartition(cfg, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	low, err := TPCCParallelPartition(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if high.DBStatements() <= low.DBStatements() {
		t.Fatalf("budget pair inverted: high has %d DB statements, low %d",
			high.DBStatements(), low.DBStatements())
	}

	dcfg := DynamicCfg{Clients: 6, PaymentEvery: 3, Phases: DefaultDynamicRamp(14)}
	res, db, err := RunParallelDynamic(high, low, cfg, dcfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res)

	if want := dcfg.Clients * 3 * 14; res.TotalTxns != want {
		t.Errorf("completed %d txns, want %d", res.TotalTxns, want)
	}
	if res.Reports == 0 {
		t.Fatal("no load reports were piggy-backed on mux replies")
	}
	if res.NewOrders == 0 || res.Payments == 0 {
		t.Errorf("degenerate mix: %d new-orders, %d payments", res.NewOrders, res.Payments)
	}

	idle, spike, recover := res.Phases[0], res.Phases[1], res.Phases[2]
	// The pick share must track the ramp: rise into the spike, fall out
	// of it.
	if idle.LowShare >= 0.3 {
		t.Errorf("idle phase routed %.0f%% low-budget (EWMA %.1f); expected mostly high",
			idle.LowShare*100, idle.EWMA)
	}
	if spike.LowShare <= 0.5 {
		t.Errorf("spike phase routed only %.0f%% low-budget (EWMA %.1f); expected mostly low",
			spike.LowShare*100, spike.EWMA)
	}
	if spike.LowShare <= idle.LowShare || recover.LowShare >= spike.LowShare {
		t.Errorf("low share did not rise then fall: idle=%.2f spike=%.2f recover=%.2f",
			idle.LowShare, spike.LowShare, recover.LowShare)
	}
	if recover.LowShare >= 0.5 {
		t.Errorf("recover phase stuck on low-budget: %.0f%% (EWMA %.1f)",
			recover.LowShare*100, recover.EWMA)
	}

	// The spike phase is the mixed one: it starts on the idle EWMA, so
	// every session serves some calls high before the average crosses
	// the threshold — and because sessions observe the shared EWMA at
	// independent moments, their mixes differ.
	if spike.LowPicks == 0 || spike.HighPicks == 0 {
		t.Errorf("spike phase not mixed: low=%d high=%d", spike.LowPicks, spike.HighPicks)
	}
	if spike.DistinctMixes < 2 {
		t.Errorf("all %d sessions routed identically in the mixed phase (per-session low picks %v)",
			dcfg.Clients, spike.PerSessionLow)
	}

	// Both deployments committed against one database: the TPC-C
	// consistency conditions must survive the whole dynamic run.
	for _, v := range CheckTPCCInvariants(db, cfg) {
		t.Errorf("invariant violated: %s", v)
	}
}

// TestParallelDynamicTCP smokes the same stack over real loopback TCP
// mux servers (the cmd/pyxis-dbserver + pyxis-app wiring) with a
// shorter ramp.
func TestParallelDynamicTCP(t *testing.T) {
	cfg := DefaultTPCC()
	high, err := TPCCParallelPartition(cfg, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	low, err := TPCCParallelPartition(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, db, err := RunParallelDynamic(high, low, cfg, DynamicCfg{
		Clients: 4, PaymentEvery: 3, TCP: true, Phases: DefaultDynamicRamp(6),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res)
	if res.Reports == 0 {
		t.Error("no load reports crossed the TCP wire")
	}
	if res.Phases[1].LowPicks == 0 {
		t.Error("spike phase never routed low-budget over TCP")
	}
	for _, v := range CheckTPCCInvariants(db, cfg) {
		t.Errorf("invariant violated: %s", v)
	}
}
