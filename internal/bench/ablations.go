package bench

import (
	"pyxis"
	"pyxis/internal/interp"
	"pyxis/internal/pdg"
	"pyxis/internal/pyxil"
	"pyxis/internal/solver"
	"pyxis/internal/source"
	"pyxis/internal/sqldb"
	"pyxis/internal/val"
)

// This file backs the ablation benchmarks in bench_test.go (DESIGN.md
// §5): solver quality, statement reordering, and the data-edge weight
// model.

// micro2IndependentSource is the microbenchmark-2 program with
// data-independent phases: the reorderer may hoist the compute loop
// past the query loops and merge the two query phases into one
// contiguous DB region, halving the control transfers. This is the
// program for the reordering ablation (the main Fig. 14 program makes
// its phases data-dependent, so reordering correctly refuses there).
const micro2IndependentSource = `
class Micro {
    int acc;

    Micro() {
        acc = 0;
    }

    entry int run(int q1, int rounds, int q2) {
        int a = 0;
        int i = 0;
        while (i < q1) {
            table t = db.query("SELECT v FROM kv WHERE k = ?", i % 100);
            a += t.getInt(0, 0);
            i++;
        }
        int h = 7;
        int j = 0;
        while (j < rounds) {
            h = sys.sha1(h);
            j++;
        }
        int k = 0;
        while (k < q2) {
            table u = db.query("SELECT v FROM kv WHERE k = ?", k % 100);
            a += u.getInt(0, 0);
            k++;
        }
        acc = a;
        return a + h % 1000;
    }
}
`

// interleavedSource alternates console output (pinned APP) with
// database updates (grouped; placed DB at high budget). In program
// order every adjacent pair changes placement; the two-queue reorder
// (§4.4) is free to group each side into one contiguous run.
const interleavedSource = `
class R {
    int n;

    R() {
        n = 0;
    }

    entry void run(int x) {
        sys.print("stage a", x);
        db.update("UPDATE t SET v = v + 1 WHERE k = 1");
        sys.print("stage b", x);
        db.update("UPDATE t SET v = v + 1 WHERE k = 2");
        sys.print("stage c", x);
        db.update("UPDATE t SET v = v + 1 WHERE k = 3");
        n++;
    }
}
`

func interleavedDB() *sqldb.DB {
	db := sqldb.Open()
	s := db.NewSession()
	if _, err := s.Exec("CREATE TABLE t (k INT PRIMARY KEY, v INT)"); err != nil {
		panic(err)
	}
	for k := 1; k <= 3; k++ {
		if _, err := s.Exec("INSERT INTO t VALUES (?, 0)", val.IntV(int64(k))); err != nil {
			panic(err)
		}
	}
	return db
}

// InterleavedReorderAblation fixes the natural placement of the
// interleaved program (console on APP, database statements on DB) and
// measures the static control-transfer count with and without the
// §4.4 reordering. The placement is fixed rather than solved because
// the cost model deliberately overestimates per-statement control
// cuts (paper §4.2 "our simple cost model does not always accurately
// estimate the cost of control transfers") — reordering is the
// mechanism that recovers the single-transfer reality.
func InterleavedReorderAblation() (reordered, unordered int, err error) {
	count := func(noReorder bool) (int, error) {
		sys, err := pyxis.Load(interleavedSource)
		if err != nil {
			return 0, err
		}
		prof := interleavedDB()
		err = sys.ProfileWorkload(prof, func(ip *interp.Interp) error {
			obj, err := ip.NewObject("R")
			if err != nil {
				return err
			}
			for i := 0; i < 5; i++ {
				if _, err := ip.CallEntry(sys.Prog.Method("R", "run"), obj, val.IntV(int64(i))); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return 0, err
		}
		g := sys.EnsureGraph()
		place := pdg.Placement{}
		for id := range g.Nodes {
			place[id] = pdg.App
		}
		place[g.DBCodeID] = pdg.DB
		for id, s := range sys.Prog.Stmts {
			if source.HasDBCall(s) {
				place[id] = pdg.DB
			}
		}
		pyxil.Generate(sys.Analysis, g, place, pyxil.Options{NoReorder: noReorder})
		return pyxil.ControlTransfers(sys.Prog, place), nil
	}
	if unordered, err = count(true); err != nil {
		return
	}
	reordered, err = count(false)
	return
}

// Micro2MidPartition builds the mid-budget partition of the
// independent-phases microbenchmark with reordering optionally
// disabled.
func Micro2MidPartition(noReorder bool) (*pyxis.Partition, error) {
	sys, err := pyxis.Load(micro2IndependentSource)
	if err != nil {
		return nil, err
	}
	sys.NoReorder = noReorder
	prof := micro2DB()
	err = sys.ProfileWorkload(prof, func(ip *interp.Interp) error {
		obj, err := ip.NewObject("Micro")
		if err != nil {
			return err
		}
		_, err = ip.CallEntry(sys.Prog.Method("Micro", "run"), obj,
			val.IntV(40), val.IntV(200), val.IntV(40))
		return err
	})
	if err != nil {
		return nil, err
	}
	return sys.PartitionAt(0.55)
}

// TPCCSolverObjective partitions the profiled TPC-C graph with the
// given solver and returns the achieved objective (estimated seconds
// of cut network time).
func TPCCSolverObjective(s solver.Solver, budgetFrac float64) (float64, error) {
	cfg := DefaultTPCC()
	sys, err := profiledTPCCSystem(cfg)
	if err != nil {
		return 0, err
	}
	sys.Solver = s
	part, err := sys.PartitionAt(budgetFrac)
	if err != nil {
		return 0, err
	}
	return part.Report.Objective, nil
}

// TPCCWeightAblation partitions TPC-C at a mid budget twice: with the
// paper's bandwidth-proportional data-edge weights, and with data
// edges (incorrectly) charged a full latency each. It returns the
// objective each model reports for its own solution — the naive model
// grossly overestimates communication cost, which is exactly why the
// paper prices data movement at bandwidth (§4.2: updates piggy-back on
// control transfers).
func TPCCWeightAblation() (correct, naive float64, err error) {
	cfg := DefaultTPCC()
	sys, err := profiledTPCCSystem(cfg)
	if err != nil {
		return 0, 0, err
	}
	partA, err := sys.PartitionAt(1.0)
	if err != nil {
		return 0, 0, err
	}
	sysB, err := profiledTPCCSystem(cfg)
	if err != nil {
		return 0, 0, err
	}
	sysB.GraphOpts = pdg.Options{ChargeDataAtLatency: true}
	partB, err := sysB.PartitionAt(1.0)
	if err != nil {
		return 0, 0, err
	}
	return float64(partA.DBStatements()), float64(partB.DBStatements()), nil
}

// profiledTPCCSystem loads and profiles the TPC-C PyxJ program.
func profiledTPCCSystem(c TPCCConfig) (*pyxis.System, error) {
	sys, err := pyxis.Load(TPCCSource)
	if err != nil {
		return nil, err
	}
	pcfg := TPCCConfig{Warehouses: 1, DistrictsPerW: 2, CustomersPerD: 5,
		Items: 100, MinLines: c.MinLines, MaxLines: c.MaxLines, RollbackPct: c.RollbackPct}
	profDB := pcfg.Load()
	err = sys.ProfileWorkload(profDB, func(ip *interp.Interp) error {
		obj, err := ip.NewObject("TPCC")
		if err != nil {
			return err
		}
		m := sys.Prog.Method("TPCC", "newOrder")
		for k := int64(0); k < 20; k++ {
			wid, did, cid, olcnt, seed, rb := pcfg.txnParams(k)
			if _, err := ip.CallEntry(m, obj, val.IntV(wid), val.IntV(did), val.IntV(cid),
				val.IntV(olcnt), val.IntV(seed), val.IntV(int64(pcfg.Items)), val.BoolV(rb)); err != nil {
				return err
			}
		}
		pm := sys.Prog.Method("TPCC", "payment")
		for k := int64(0); k < 8; k++ {
			wid, did, cid, _, _, _ := pcfg.txnParams(k)
			if _, err := ip.CallEntry(pm, obj, val.IntV(wid), val.IntV(did), val.IntV(cid),
				val.DoubleV(float64(k+1))); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return sys, nil
}
