package bench

import (
	"errors"
	"io"
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"pyxis/internal/dbapi"
	"pyxis/internal/rpc"
	"pyxis/internal/runtime"
	"pyxis/internal/sqldb"
	"pyxis/internal/val"
)

func rebalanceTPCC() TPCCConfig {
	return TPCCConfig{Warehouses: 8, DistrictsPerW: 2, CustomersPerD: 5,
		Items: 30, MinLines: 1, MaxLines: 3, RollbackPct: 10}
}

// TestRebalanceLiveMigration is the end-to-end story: Zipf skew makes
// shard 0 hot, the advisor plans mid-run, the migrator moves the
// chosen warehouses over the live wire, and the cross-shard invariants
// hold under the FINAL (override-carrying) map.
func TestRebalanceLiveMigration(t *testing.T) {
	c := rebalanceTPCC()
	res, dbs, final, err := RunRebalance(c, RebalanceCfg{
		Clients: 4, Txns: 40, Shards: 2, Live: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrations < 1 {
		t.Fatalf("skewed live run performed no migration: %v", res)
	}
	if final.Epoch == 0 || res.FinalEpoch == 0 {
		t.Fatalf("migration did not bump the map epoch: %v", res)
	}
	for _, w := range res.MovedWarehouses {
		if final.Shard(w) == 0 {
			t.Fatalf("moved warehouse %d still maps to shard 0", w)
		}
	}
	if res.ImbalanceAfter >= res.ImbalanceBefore {
		t.Fatalf("migration did not improve balance: %.2f -> %.2f", res.ImbalanceBefore, res.ImbalanceAfter)
	}
	if v := CheckShardInvariants(dbs, c, final); len(v) > 0 {
		t.Fatalf("post-migration invariants violated: %v", v)
	}
}

// TestRebalanceFrozenBaseline pins the control arm: same skew, advisor
// off, so nothing moves and the epoch stays 0.
func TestRebalanceFrozenBaseline(t *testing.T) {
	c := rebalanceTPCC()
	res, dbs, final, err := RunRebalance(c, RebalanceCfg{
		Clients: 4, Txns: 30, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrations != 0 || final.Epoch != 0 || res.Rehomes != 0 {
		t.Fatalf("frozen run migrated: %v", res)
	}
	if v := CheckShardInvariants(dbs, c, final); len(v) > 0 {
		t.Fatalf("frozen-run invariants violated: %v", v)
	}
}

// TestRebalanceDifferential is the migration no-op check: the same
// deterministic workload with one forced mid-run migration must
// produce the same global TPC-C sums as the run without it — a
// migration may move data, never change it.
func TestRebalanceDifferential(t *testing.T) {
	c := rebalanceTPCC()
	cfg := RebalanceCfg{Clients: 4, Txns: 30, Shards: 2}
	_, plainDBs, plainMap, err := RunRebalance(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ForceMove = true
	res, movedDBs, movedMap, err := RunRebalance(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrations < 1 {
		t.Fatal("ForceMove run performed no migration")
	}
	if v := CheckShardInvariants(plainDBs, c, plainMap); len(v) > 0 {
		t.Fatalf("plain-run invariants violated: %v", v)
	}
	if v := CheckShardInvariants(movedDBs, c, movedMap); len(v) > 0 {
		t.Fatalf("moved-run invariants violated: %v", v)
	}
	pw, po := rebalanceGlobalSums(t, plainDBs)
	mw, mo := rebalanceGlobalSums(t, movedDBs)
	if math.Abs(pw-mw) > 1e-6*math.Max(1, math.Abs(pw)) {
		t.Fatalf("sum(w_ytd) differs with migration: %v vs %v", pw, mw)
	}
	if po != mo {
		t.Fatalf("order count differs with migration: %d vs %d", po, mo)
	}
}

// rebalanceGlobalSums folds sum(w_ytd) and the order count over every
// shard — the quantities a migration must carry across unchanged.
func rebalanceGlobalSums(t *testing.T, dbs []*sqldb.DB) (wytd float64, orders int64) {
	t.Helper()
	for _, db := range dbs {
		s := db.NewSession()
		rs, err := s.Query("SELECT SUM(w_ytd) FROM warehouse")
		if err != nil {
			t.Fatal(err)
		}
		wytd += rs.Rows[0][0].AsFloat()
		rs, err = s.Query("SELECT COUNT(*) FROM orders")
		if err != nil {
			t.Fatal(err)
		}
		orders += rs.Rows[0][0].I
	}
	return wytd, orders
}

// rebalanceTier spins up a 2-shard dbapi tier over in-process pipes and
// hands back everything a migration fault test needs, including the
// raw server-side conns so a test can sever one shard's wire.
func rebalanceTier(t *testing.T, c TPCCConfig) (sc *runtime.ShardedClient, pool *rpc.ShardedPool, dbs []*sqldb.DB, srvConns *sync.Map) {
	t.Helper()
	smap := runtime.ShardMap{Shards: 2, Warehouses: c.Warehouses}
	dbs = make([]*sqldb.DB, 2)
	for i := range dbs {
		lo, hi := smap.WarehouseRange(i)
		dbs[i] = c.LoadRange(int(lo), int(hi))
	}
	sc = runtime.NewShardedClient(smap)
	parts := []*dbapi.Participant{
		dbapi.NewParticipant(0, sc.TwoPC.Outcome),
		dbapi.NewParticipant(0, sc.TwoPC.Outcome),
	}
	srvConns = &sync.Map{} // shard -> []io.Closer of that shard's server pipe ends
	var mu sync.Mutex
	pool, err := rpc.NewShardedPool(2, 1, func(shard, _ int) (io.ReadWriteCloser, error) {
		srv, cli := net.Pipe()
		mu.Lock()
		var cs []io.Closer
		if v, ok := srvConns.Load(shard); ok {
			cs = v.([]io.Closer)
		}
		srvConns.Store(shard, append(cs, srv))
		mu.Unlock()
		go rpc.ServeMuxConnConfig(srv, dbapi.MuxHandlersTxn(dbs[shard], parts[shard]), rpc.MuxServeConfig{})
		return cli, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pool.Close() })
	return sc, pool, dbs, srvConns
}

// TestMigrateDestShardDown kills the destination shard's wire the
// moment the source fence arms — mid-move, before the stream can
// land. The move must fail, the fence must come down, the epoch must
// not advance, and the source must keep serving the range it almost
// lost.
func TestMigrateDestShardDown(t *testing.T) {
	c := rebalanceTPCC()
	sc, pool, dbs, srvConns := rebalanceTier(t, c)
	mg := &runtime.Migrator{Client: sc, Pool: pool, Tables: TPCCWarehouseKeys()}

	// The killer: sever shard 1's server pipes as soon as the source
	// fence is armed (which Move does before it ever talks to the
	// destination).
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		for i := 0; i < 10000; i++ {
			if armed, _ := dbs[0].FenceArmed(); armed {
				if v, ok := srvConns.Load(1); ok {
					for _, conn := range v.([]io.Closer) {
						_ = conn.Close()
					}
				}
				return
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()

	_, err := mg.Move(0, 1, 3, 4)
	<-killed
	if err == nil {
		t.Fatal("move succeeded with a dead destination")
	}
	if errors.Is(err, runtime.ErrWrongShard) {
		t.Fatalf("dead destination misreported as ownership error: %v", err)
	}
	if sc.MapEpoch() != 0 {
		t.Fatalf("failed move advanced the epoch to %d", sc.MapEpoch())
	}
	if armed, _ := dbs[0].FenceArmed(); armed {
		t.Fatal("fence still armed after the aborted move")
	}
	// The source still owns and serves the range it almost lost.
	sess, err := pool.Session(0)
	if err != nil {
		t.Fatal(err)
	}
	conn := dbapi.NewClient(sess)
	defer conn.Close()
	if _, err := c.paymentNative(conn, 3, 1, 1, 10); err != nil {
		t.Fatalf("source stopped serving the unmoved range: %v", err)
	}
	if v := CheckShardInvariants(dbs, c, sc.CurrentMap()); len(v) > 0 {
		t.Fatalf("aborted move broke invariants: %v", v)
	}
}

// TestMigrateFenceAbandonTTL is the coordinator-death fault at the
// wire level: a fence armed over the mux and never released (the
// coordinator "dies" between FENCE and CUTOVER) must lapse on its TTL
// and let the source serve again.
func TestMigrateFenceAbandonTTL(t *testing.T) {
	c := rebalanceTPCC()
	_, pool, _, _ := rebalanceTier(t, c)

	sess, err := pool.Session(0)
	if err != nil {
		t.Fatal(err)
	}
	coordinator := dbapi.NewClient(sess)
	if _, err := sess.MigCtl(rpc.MigRequest{
		Op: rpc.MigFence, Lo: 1, Hi: 2, TTL: 50 * time.Millisecond,
		Tables: TPCCWarehouseKeys()}, 0); err != nil {
		t.Fatal(err)
	}
	// The coordinator dies: its session goes away without a release.
	_ = coordinator.Close()

	work, err := pool.Session(0)
	if err != nil {
		t.Fatal(err)
	}
	conn := dbapi.NewClient(work)
	defer conn.Close()
	// Immediately the range is fenced...
	if _, err := c.paymentNative(conn, 1, 1, 1, 5); !errors.Is(err, sqldb.ErrRangeFenced) {
		t.Fatalf("want ErrRangeFenced while fence lives, got %v", err)
	}
	// ...and after the TTL it serves again, no release frame required.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err := c.paymentNative(conn, 1, 1, 1, 5)
		if err == nil {
			break
		}
		if !errors.Is(err, sqldb.ErrRangeFenced) {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("fence never lapsed after its TTL")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// A later migration can re-arm over the lapsed fence.
	if _, err := work.MigCtl(rpc.MigRequest{
		Op: rpc.MigFence, Lo: 1, Hi: 1, TTL: time.Second,
		Tables: TPCCWarehouseKeys()}, 0); err != nil {
		t.Fatalf("re-arm over lapsed fence: %v", err)
	}
	if _, err := c.paymentNative(conn, 1, 1, 1, 5); !errors.Is(err, sqldb.ErrRangeFenced) {
		t.Fatalf("re-armed fence not enforced, got %v", err)
	}
}

// TestRebalanceForcedMoveKeysRelocate pins the data plane: after a
// forced move, the moved warehouses' rows live on the destination and
// are tombstoned on the source.
func TestRebalanceForcedMoveKeysRelocate(t *testing.T) {
	c := rebalanceTPCC()
	sc, pool, dbs, _ := rebalanceTier(t, c)
	mg := &runtime.Migrator{Client: sc, Pool: pool, Tables: TPCCWarehouseKeys()}
	mv, err := mg.Move(0, 1, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if mv.Rows == 0 {
		t.Fatal("move streamed no rows")
	}
	for _, w := range []int64{3, 4} {
		if home := sc.CurrentMap().Shard(w); home != 1 {
			t.Fatalf("warehouse %d maps to shard %d after move", w, home)
		}
	}
	// Destination owns the rows.
	s1 := dbs[1].NewSession()
	rs, err := s1.Query("SELECT COUNT(*) FROM warehouse WHERE w_id = ?", val.IntV(3))
	if err != nil || rs.Rows[0][0].I != 1 {
		t.Fatalf("destination missing moved warehouse: %v %v", rs, err)
	}
	// Source redirects with the typed tombstone error.
	sess, err := pool.Session(0)
	if err != nil {
		t.Fatal(err)
	}
	conn := dbapi.NewClient(sess)
	defer conn.Close()
	if _, err := c.paymentNative(conn, 3, 1, 1, 5); !errors.Is(err, sqldb.ErrRangeMoved) {
		t.Fatalf("source did not tombstone the moved range: %v", err)
	}
	if v := CheckShardInvariants(dbs, c, sc.CurrentMap()); len(v) > 0 {
		t.Fatalf("post-move invariants violated: %v", v)
	}
}
