package bench

import (
	"fmt"
	"math"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"pyxis"
	"pyxis/internal/dbapi"
	"pyxis/internal/interp"
	"pyxis/internal/pdg"
	"pyxis/internal/rpc"
	"pyxis/internal/runtime"
	"pyxis/internal/sqldb"
	"pyxis/internal/val"
)

// This file is the wall-clock concurrent workload driver: unlike the
// discrete-event harness in runner.go (which simulates many clients on
// one goroutine), it runs N real goroutine clients, each an
// independent Pyxis session, multiplexed over one connection per port
// against ONE shared DB-side runtime — the deployment shape
// cmd/pyxis-dbserver + cmd/pyxis-app produce, measured for real.

// ParallelSource is the driver's ledger workload: every transaction
// explicitly begins, updates an account balance, appends a history
// row, reads the balance back, and commits — so concurrent clients
// hold multi-statement row locks, exercising per-session transaction
// contexts and 2PL contention in the shared database.
const ParallelSource = `
class Ledger {
    int id;

    Ledger(int id) {
        this.id = id;
    }

    entry double deposit(int acct, int seq, double amt) {
        db.begin();
        db.update("UPDATE accounts SET balance = balance + ? WHERE cid = ?", amt, acct);
        db.update("INSERT INTO history VALUES (?, ?, ?)", id, seq, amt);
        table t = db.query("SELECT balance FROM accounts WHERE cid = ?", acct);
        db.commit();
        return t.getDouble(0, 0);
    }

    entry double balance(int acct) {
        table t = db.query("SELECT balance FROM accounts WHERE cid = ?", acct);
        return t.getDouble(0, 0);
    }
}
`

// parallelDB creates the ledger schema with one account per client
// plus one shared account (id = clients), all starting at balance 0.
func parallelDB(clients int) (*sqldb.DB, error) {
	db := sqldb.Open()
	sess := db.NewSession()
	stmts := []string{
		"CREATE TABLE accounts (cid INT PRIMARY KEY, balance DOUBLE)",
		"CREATE TABLE history (owner INT, seq INT, amt DOUBLE, PRIMARY KEY (owner, seq))",
	}
	for _, sql := range stmts {
		if _, err := sess.Exec(sql); err != nil {
			return nil, err
		}
	}
	for i := 0; i <= clients; i++ {
		if _, err := sess.Exec("INSERT INTO accounts VALUES (?, 0.0)", val.IntV(int64(i))); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// ParallelPartition compiles the ledger workload at the given budget
// fraction (1.0 = stored-procedure-like: the whole transaction body on
// the database server, one control transfer per call).
func ParallelPartition(budget float64) (*pyxis.Partition, error) {
	sys, err := pyxis.Load(ParallelSource)
	if err != nil {
		return nil, err
	}
	profDB, err := parallelDB(1)
	if err != nil {
		return nil, err
	}
	err = sys.ProfileWorkload(profDB, func(ip *interp.Interp) error {
		obj, err := ip.NewObject("Ledger", interp.Scalar(val.IntV(0)))
		if err != nil {
			return err
		}
		dep := sys.Prog.Method("Ledger", "deposit")
		bal := sys.Prog.Method("Ledger", "balance")
		for k := 0; k < 10; k++ {
			if _, err := ip.CallEntry(dep, obj, val.IntV(0), val.IntV(int64(k)), val.DoubleV(1)); err != nil {
				return err
			}
		}
		_, err = ip.CallEntry(bal, obj, val.IntV(0))
		return err
	})
	if err != nil {
		return nil, err
	}
	return sys.PartitionAt(budget)
}

// ParallelCfg configures one concurrent measurement.
type ParallelCfg struct {
	Clients int // concurrent sessions (goroutines)
	Txns    int // deposits per client
	// ShareEvery: every k-th deposit goes to the shared account
	// (contended row). 0 disables sharing.
	ShareEvery int
	// TCP runs the wires over real loopback TCP mux servers instead of
	// in-process pipes.
	TCP bool
}

// SessionStat is one session's latency profile.
type SessionStat struct {
	N                    int
	MeanMs, P95Ms, MaxMs float64
}

// ParallelResult aggregates one run.
type ParallelResult struct {
	Clients    int
	TotalTxns  int
	Elapsed    time.Duration
	Tput       float64 // transactions/second across all sessions
	MeanMs     float64
	P95Ms      float64
	PerSession []SessionStat
	// Transfers is the number of control transfers the shared DB-side
	// peer served (> 0 proves partitioned code ran on the DB side).
	Transfers int64
	// FinalTotal is the sum of all account balances after the run; the
	// caller can check it equals the sum of all deposits (no lost
	// updates under concurrency).
	FinalTotal float64
}

// RunParallel drives cfg.Clients concurrent sessions — each its own
// logical thread of control with its own Ledger object — over ONE
// multiplexed connection per wire against one shared DB-side runtime
// and one shared database, and reports aggregate throughput plus
// per-session latency.
func RunParallel(part *pyxis.Partition, cfg ParallelCfg) (*ParallelResult, error) {
	if cfg.Clients < 1 || cfg.Txns < 1 {
		return nil, fmt.Errorf("bench: RunParallel needs Clients >= 1 and Txns >= 1")
	}
	db, err := parallelDB(cfg.Clients)
	if err != nil {
		return nil, err
	}

	prog := part.Compiled
	dbPeer := runtime.NewPeer(prog, pdg.DB, nil)
	appPeer := runtime.NewPeer(prog, pdg.App, nil)
	// Session IDs are connection-scoped, so each connection needs its
	// own manager; they all share dbPeer (and so its metrics).
	newMgr := func() rpc.SessionHandlers {
		return runtime.NewSessionManager(dbPeer, func() dbapi.Conn { return dbapi.NewLocal(db) })
	}

	// One mux connection for control transfers, one for the APP-side
	// database wire — all sessions share them.
	var ctlMux, dbMux *rpc.MuxClient
	if cfg.TCP {
		ctlSrv, err := rpc.NewMuxServer("127.0.0.1:0", newMgr)
		if err != nil {
			return nil, err
		}
		defer ctlSrv.Close()
		dbSrv, err := rpc.NewMuxServer("127.0.0.1:0", func() rpc.SessionHandlers { return dbapi.MuxHandlers(db) })
		if err != nil {
			return nil, err
		}
		defer dbSrv.Close()
		if ctlMux, err = rpc.DialMux(ctlSrv.Addr()); err != nil {
			return nil, err
		}
		defer ctlMux.Close()
		if dbMux, err = rpc.DialMux(dbSrv.Addr()); err != nil {
			return nil, err
		}
		defer dbMux.Close()
	} else {
		ctlMux = inProcMux(newMgr())
		defer ctlMux.Close()
		dbMux = inProcMux(dbapi.MuxHandlers(db))
		defer dbMux.Close()
	}

	type sessionOut struct {
		lats []float64 // milliseconds
		err  error
	}
	outs := make([]sessionOut, cfg.Clients)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < cfg.Clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctlT := ctlMux.Session()
			dbT := dbMux.Session()
			sess := appPeer.NewSession(dbapi.NewClient(dbT))
			client := runtime.NewClient(sess, ctlT)
			// Retire both server-side sessions as this client finishes
			// instead of letting them accumulate until connection
			// teardown.
			defer client.Close()
			oid, err := client.NewObject("Ledger", val.IntV(int64(i)))
			if err != nil {
				outs[i].err = err
				return
			}
			for k := 0; k < cfg.Txns; k++ {
				acct := int64(i)
				if cfg.ShareEvery > 0 && k%cfg.ShareEvery == 0 {
					acct = int64(cfg.Clients) // contended shared account
				}
				t0 := time.Now()
				_, err := client.CallEntry("Ledger.deposit", oid,
					val.IntV(acct), val.IntV(int64(k)), val.DoubleV(1))
				if err != nil {
					outs[i].err = fmt.Errorf("session %d txn %d: %w", i, k, err)
					return
				}
				outs[i].lats = append(outs[i].lats, float64(time.Since(t0).Microseconds())/1e3)
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := &ParallelResult{Clients: cfg.Clients, Elapsed: elapsed}
	var all []float64
	for i := range outs {
		if outs[i].err != nil {
			return nil, outs[i].err
		}
		res.PerSession = append(res.PerSession, Summarize(outs[i].lats))
		all = append(all, outs[i].lats...)
	}
	res.TotalTxns = len(all)
	res.Tput = float64(len(all)) / elapsed.Seconds()
	agg := Summarize(all)
	res.MeanMs, res.P95Ms = agg.MeanMs, agg.P95Ms
	res.Transfers = dbPeer.Metrics.Snapshot().Transfers

	sess := db.NewSession()
	rs, err := sess.Query("SELECT balance FROM accounts")
	if err != nil {
		return nil, err
	}
	for _, row := range rs.Rows {
		res.FinalTotal += row[0].F
	}
	return res, nil
}

// inProcMux wires a MuxClient directly to a demux loop over an
// in-process pipe (no TCP, but the same framed mux protocol).
func inProcMux(h rpc.SessionHandlers) *rpc.MuxClient {
	return inProcMuxConfig(h, rpc.MuxServeConfig{})
}

// inProcMuxConfig is inProcMux with an explicit demux configuration
// (the dynamic driver attaches a load source).
func inProcMuxConfig(h rpc.SessionHandlers, cfg rpc.MuxServeConfig) *rpc.MuxClient {
	srv, cli := net.Pipe()
	go rpc.ServeMuxConnConfig(srv, h, cfg)
	return rpc.NewMuxClient(cli)
}

// Summarize computes mean/p95/max over a latency sample in
// milliseconds (shared by the bench driver and cmd/pyxis-app).
func Summarize(lats []float64) SessionStat {
	st := SessionStat{N: len(lats)}
	if len(lats) == 0 {
		return st
	}
	sorted := append([]float64{}, lats...)
	sort.Float64s(sorted)
	sum := 0.0
	for _, v := range sorted {
		sum += v
	}
	st.MeanMs = sum / float64(len(sorted))
	// Nearest-rank percentile: ceil(q*n) is the rank, 1-indexed.
	i := int(math.Ceil(0.95*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	st.P95Ms = sorted[i]
	st.MaxMs = sorted[len(sorted)-1]
	return st
}

// String renders the result as one table row block.
func (r *ParallelResult) String() string {
	return fmt.Sprintf("clients=%d txns=%d elapsed=%v tput=%.0f txn/s lat(mean=%.3fms p95=%.3fms) transfers=%d",
		r.Clients, r.TotalTxns, r.Elapsed.Round(time.Millisecond), r.Tput, r.MeanMs, r.P95Ms, r.Transfers)
}

// RunScaling measures throughput vs. client count: one RunParallel per
// entry of sizes (each with base's Txns per client, ShareEvery and TCP
// settings), against a fresh database per point. It is the wall-clock
// scaling curve the sharded engine is judged by — under the old single
// engine mutex the curve was flat.
func RunScaling(part *pyxis.Partition, base ParallelCfg, sizes []int) ([]*ParallelResult, error) {
	results := make([]*ParallelResult, 0, len(sizes))
	for _, n := range sizes {
		cfg := base
		cfg.Clients = n
		res, err := RunParallel(part, cfg)
		if err != nil {
			return nil, fmt.Errorf("bench: scaling point clients=%d: %w", n, err)
		}
		results = append(results, res)
	}
	return results, nil
}

// ScalingReport renders a RunScaling sweep as a table with speedup
// relative to the first (usually 1-client) point.
func ScalingReport(results []*ParallelResult) string {
	if len(results) == 0 {
		return "(no scaling points)"
	}
	base := results[0].Tput
	var b strings.Builder
	fmt.Fprintf(&b, "%8s %10s %12s %10s %10s %9s\n", "clients", "txns", "tput(txn/s)", "mean(ms)", "p95(ms)", "speedup")
	for _, r := range results {
		speedup := 0.0
		if base > 0 {
			speedup = r.Tput / base
		}
		fmt.Fprintf(&b, "%8d %10d %12.0f %10.3f %10.3f %8.2fx\n",
			r.Clients, r.TotalTxns, r.Tput, r.MeanMs, r.P95Ms, speedup)
	}
	return strings.TrimRight(b.String(), "\n")
}
