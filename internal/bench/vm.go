package bench

import (
	"fmt"
	"strings"
	"time"
)

// This file is the acceptance experiment for the fused hot path: the
// same TPC-C NewOrder/Payment mix driven twice through the wall-clock
// harness —
//
//   - "interp": the seed pipeline. No superblock fusion, version-0
//     stack transfers (every slot plus method qname strings), string
//     SQL on every database call, a fresh allocation per activation
//     frame.
//   - "vm": the fused pipeline. Superblocks, version-1 live-slot delta
//     transfers, the prepared-statement wire, pooled frames.
//
// Both runs execute the identical transaction schedule against a fresh
// database each, so wall clock, transfer bytes per transaction and
// allocations per transaction are directly comparable.

// VMPoint is one budget's interp-vs-vm comparison.
type VMPoint struct {
	Budget      float64             `json:"budget"`
	BlocksSeed  int                 `json:"blocks_seed"`
	BlocksFused int                 `json:"blocks_fused"`
	Seed        *TPCCParallelResult `json:"seed"`
	Fused       *TPCCParallelResult `json:"fused"`
	// Speedup is seed elapsed over fused elapsed (>1 means the fused
	// pipeline is faster).
	Speedup float64 `json:"speedup"`
	// BytesRatio and AllocsRatio are seed-per-txn over fused-per-txn.
	BytesRatio  float64 `json:"bytes_ratio"`
	AllocsRatio float64 `json:"allocs_ratio"`
}

// RunInterpVsVM runs the comparison at each budget fraction. The fused
// run's database is audited with CheckTPCCInvariants — a fused program
// that is faster but inconsistent is a failure, not a result.
func RunInterpVsVM(c TPCCConfig, cfg TPCCParallelCfg, budgets []float64) ([]*VMPoint, error) {
	var points []*VMPoint
	for _, b := range budgets {
		seedPart, err := TPCCParallelPartitionOpts(c, b, true)
		if err != nil {
			return nil, fmt.Errorf("bench: seed partition at %.2f: %w", b, err)
		}
		fusedPart, err := TPCCParallelPartitionOpts(c, b, false)
		if err != nil {
			return nil, fmt.Errorf("bench: fused partition at %.2f: %w", b, err)
		}

		seedCfg := cfg
		seedCfg.Legacy = true
		seedRes, _, err := RunParallelTPCC(seedPart, c, seedCfg)
		if err != nil {
			return nil, fmt.Errorf("bench: seed run at %.2f: %w", b, err)
		}

		fusedCfg := cfg
		fusedCfg.Legacy = false
		fusedRes, fdb, err := RunParallelTPCC(fusedPart, c, fusedCfg)
		if err != nil {
			return nil, fmt.Errorf("bench: fused run at %.2f: %w", b, err)
		}
		if violations := CheckTPCCInvariants(fdb, c); len(violations) > 0 {
			return nil, fmt.Errorf("bench: fused run at %.2f violated TPC-C invariants: %s",
				b, strings.Join(violations, "; "))
		}

		pt := &VMPoint{
			Budget:      b,
			BlocksSeed:  len(seedPart.Compiled.Blocks),
			BlocksFused: len(fusedPart.Compiled.Blocks),
			Seed:        seedRes,
			Fused:       fusedRes,
		}
		if fusedRes.Elapsed > 0 {
			pt.Speedup = float64(seedRes.Elapsed) / float64(fusedRes.Elapsed)
		}
		if fusedRes.BytesPerTxn > 0 {
			pt.BytesRatio = seedRes.BytesPerTxn / fusedRes.BytesPerTxn
		}
		if fusedRes.AllocsPerTxn > 0 {
			pt.AllocsRatio = seedRes.AllocsPerTxn / fusedRes.AllocsPerTxn
		}
		points = append(points, pt)
	}
	return points, nil
}

// String renders one comparison point as a two-row block.
func (p *VMPoint) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "budget %.2f: blocks %d -> %d\n", p.Budget, p.BlocksSeed, p.BlocksFused)
	fmt.Fprintf(&sb, "  interp: elapsed=%-10v tput=%8.0f txn/s  bytes/txn=%8.1f  allocs/txn=%8.1f\n",
		p.Seed.Elapsed.Round(time.Millisecond), p.Seed.Tput, p.Seed.BytesPerTxn, p.Seed.AllocsPerTxn)
	fmt.Fprintf(&sb, "  vm:     elapsed=%-10v tput=%8.0f txn/s  bytes/txn=%8.1f  allocs/txn=%8.1f\n",
		p.Fused.Elapsed.Round(time.Millisecond), p.Fused.Tput, p.Fused.BytesPerTxn, p.Fused.AllocsPerTxn)
	fmt.Fprintf(&sb, "  speedup=%.2fx  bytes ratio=%.2fx  allocs ratio=%.2fx",
		p.Speedup, p.BytesRatio, p.AllocsRatio)
	return sb.String()
}
