package bench

import (
	"fmt"
	"reflect"
	"testing"
)

// TestDifferentialTPCC runs the identical single-client TPC-C
// NewOrder/Payment schedule through the seed pipeline (unfused blocks,
// Legacy deployment) and the fused/prepared pipeline at three budgets,
// and requires:
//
//   - bit-identical final database state (every table, every row);
//   - the fused run to make no more control transfers than the seed;
//   - the TPC-C consistency invariants to hold on the fused database.
//
// One client keeps the schedule deterministic — txnParams is a pure
// function of the sequence number, and without concurrency there are
// no deadlock-retry reorderings.
func TestDifferentialTPCC(t *testing.T) {
	c := DefaultTPCC()
	for _, budget := range []float64{1.0, 0.5, 0} {
		t.Run(fmt.Sprintf("budget%.2f", budget), func(t *testing.T) {
			seedPart, err := TPCCParallelPartitionOpts(c, budget, true)
			if err != nil {
				t.Fatal(err)
			}
			fusedPart, err := TPCCParallelPartitionOpts(c, budget, false)
			if err != nil {
				t.Fatal(err)
			}
			if len(fusedPart.Compiled.Blocks) > len(seedPart.Compiled.Blocks) {
				t.Fatalf("fusion grew the program: %d -> %d blocks",
					len(seedPart.Compiled.Blocks), len(fusedPart.Compiled.Blocks))
			}

			cfg := TPCCParallelCfg{Clients: 1, Txns: 40, PaymentEvery: 3}
			seedCfg := cfg
			seedCfg.Legacy = true
			seedRes, seedDB, err := RunParallelTPCC(seedPart, c, seedCfg)
			if err != nil {
				t.Fatalf("seed run: %v", err)
			}
			fusedRes, fusedDB, err := RunParallelTPCC(fusedPart, c, cfg)
			if err != nil {
				t.Fatalf("fused run: %v", err)
			}

			seedSnap, fusedSnap := seedDB.Snapshot(), fusedDB.Snapshot()
			if !reflect.DeepEqual(seedSnap, fusedSnap) {
				for name, rows := range seedSnap {
					if !reflect.DeepEqual(rows, fusedSnap[name]) {
						t.Errorf("table %s diverged: seed %d rows, fused %d rows",
							name, len(rows), len(fusedSnap[name]))
					}
				}
				t.Fatal("fused pipeline produced a different database state")
			}
			if fusedRes.Transfers > seedRes.Transfers {
				t.Errorf("fusion increased transfers: %d -> %d", seedRes.Transfers, fusedRes.Transfers)
			}
			if violations := CheckTPCCInvariants(fusedDB, c); len(violations) > 0 {
				t.Errorf("fused run violated TPC-C invariants: %v", violations)
			}
		})
	}
}
