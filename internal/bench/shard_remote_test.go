package bench

import (
	"strings"
	"testing"

	"pyxis/internal/runtime"
	"pyxis/internal/sqldb"
	"pyxis/internal/val"
)

// TestShardTPCCRemoteMixTwoPC drives the full-spec TPC-C mix — remote
// Payments and remote-supply NewOrders included — against a 2-shard
// tier. Remote rolls whose warehouse lands on the other shard run as
// real two-branch 2PC transactions; afterwards the cross-shard
// aggregator must prove no remote update was lost or double-booked
// (global c_balance vs w_ytd, global s_ytd vs ol_quantity).
func TestShardTPCCRemoteMixTwoPC(t *testing.T) {
	c := DefaultTPCC()
	part, err := TPCCParallelPartition(c, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ShardCfg{Clients: 8, Txns: 40, Shards: 2, PaymentEvery: 3, RemoteMix: true}
	res, dbs, err := RunShardTPCC(part, c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res.String())

	if res.TotalTxns != cfg.Clients*cfg.Txns {
		t.Errorf("%d of %d transactions completed", res.TotalTxns, cfg.Clients*cfg.Txns)
	}
	if res.RemotePayments == 0 || res.RemoteNewOrders == 0 {
		t.Errorf("remote mix degenerated: %d remote payments, %d remote new-orders",
			res.RemotePayments, res.RemoteNewOrders)
	}
	if res.DistCommits == 0 {
		t.Error("no distributed transaction committed: 2PC never exercised")
	}
	if res.DistTxns != res.DistCommits+res.DistAborts {
		t.Errorf("DistTxns=%d != commits %d + aborts %d", res.DistTxns, res.DistCommits, res.DistAborts)
	}
	// The spec rates (15% remote Payment, ~10% remote NewOrder) with a
	// loose floor — the acceptance gates are >=1% and >=10%.
	if rate := float64(res.RemotePayments) / float64(res.Payments); rate < 0.01 {
		t.Errorf("remote Payment rate %.1f%% below the 1%% spec floor", rate*100)
	}
	if rate := float64(res.RemoteNewOrders) / float64(res.NewOrders); rate < 0.05 {
		t.Errorf("remote NewOrder rate %.1f%% below 5%% (spec target ~10%%)", rate*100)
	}

	smap := runtime.ShardMap{Shards: cfg.Shards, Warehouses: c.Warehouses}
	if violations := CheckShardInvariants(dbs, c, smap); len(violations) > 0 {
		t.Fatalf("invariants violated after remote mix:\n%s", strings.Join(violations, "\n"))
	}
}

// TestCheckShardInvariantsCatchesHalfRemote2PC forges the exact
// failure 2PC exists to prevent: one branch of a distributed
// transaction committed without its sibling. Each half keeps every
// per-shard audit green — only the new global cross-shard sums can
// catch it.
func TestCheckShardInvariantsCatchesHalfRemote2PC(t *testing.T) {
	c := DefaultTPCC()
	m := runtime.ShardMap{Shards: 2, Warehouses: c.Warehouses}
	lo0, hi0 := m.WarehouseRange(0)
	lo1, hi1 := m.WarehouseRange(1)
	fresh := func() []*sqldb.DB {
		return []*sqldb.DB{c.LoadRange(int(lo0), int(hi0)), c.LoadRange(int(lo1), int(hi1))}
	}

	// A remote Payment whose customer-debit branch committed but whose
	// home YTD branch did not: c_balance moves, w_ytd does not.
	dbs := fresh()
	if _, err := dbs[0].NewSession().Exec(
		"UPDATE customer SET c_balance = c_balance - 42.0 WHERE c_w_id = ? AND c_d_id = 1 AND c_id = 1",
		val.IntV(lo0)); err != nil {
		t.Fatal(err)
	}
	if !violationMatches(CheckShardInvariants(dbs, c, m), "half-committed remote Payment") {
		t.Error("half-committed remote Payment (customer branch only) not detected")
	}

	// A remote NewOrder whose supply-stock branch committed but whose
	// home order-line branch did not: s_ytd moves, ol_quantity does not.
	dbs = fresh()
	if _, err := dbs[1].NewSession().Exec(
		"UPDATE stock SET s_ytd = s_ytd + 5 WHERE s_w_id = ? AND s_i_id = 1", val.IntV(lo1)); err != nil {
		t.Fatal(err)
	}
	if !violationMatches(CheckShardInvariants(dbs, c, m), "half-committed remote NewOrder") {
		t.Error("half-committed remote NewOrder (stock branch only) not detected")
	}
}

func violationMatches(violations []string, want string) bool {
	for _, v := range violations {
		if strings.Contains(v, want) {
			return true
		}
	}
	return false
}
