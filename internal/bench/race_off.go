//go:build !race

package bench

// raceEnabled reports whether this build is race-detector-instrumented.
const raceEnabled = false
