package bench

import (
	"testing"
)

// TestTPCCSmoke runs a short simulated point for each implementation
// and checks the paper's qualitative ordering at low load with ample
// CPU: Manual latency < Pyxis(high budget) ≈ Manual << JDBC.
func TestTPCCSmoke(t *testing.T) {
	cfg := DefaultTPCC()
	part, err := cfg.PyxisPartition(1.0)
	if err != nil {
		t.Fatalf("partition: %v", err)
	}
	t.Logf("pyxis partition: %s", part.Describe())

	run := func(w Workload) Point {
		return Run(w, RunCfg{
			Clients: 10, Rate: 100, Warmup: 1, Window: 4,
			AppCores: 8, DBCores: 16, CM: DefaultCosts(),
		})
	}
	jdbc := run(cfg.JDBCWorkload())
	manual := run(cfg.ManualWorkload())
	pyx := run(cfg.PyxisWorkload(part))
	t.Logf("JDBC:   %+v", jdbc)
	t.Logf("Manual: %+v", manual)
	t.Logf("Pyxis:  %+v", pyx)

	if jdbc.Tput < 90 || manual.Tput < 90 || pyx.Tput < 90 {
		t.Fatalf("throughput collapsed: jdbc=%v manual=%v pyxis=%v", jdbc.Tput, manual.Tput, pyx.Tput)
	}
	if jdbc.MeanLatMs < 2*manual.MeanLatMs {
		t.Errorf("JDBC (%.2fms) should be far slower than Manual (%.2fms)", jdbc.MeanLatMs, manual.MeanLatMs)
	}
	if pyx.MeanLatMs > 2*manual.MeanLatMs {
		t.Errorf("Pyxis high-budget (%.2fms) should track Manual (%.2fms)", pyx.MeanLatMs, manual.MeanLatMs)
	}
	if jdbc.Errors+manual.Errors+pyx.Errors > 20 {
		t.Errorf("too many errors: %d/%d/%d", jdbc.Errors, manual.Errors, pyx.Errors)
	}
}

// TestTPCCLowBudgetTracksJDBC: with a zero budget the generated
// partition must behave like the JDBC implementation.
func TestTPCCLowBudgetTracksJDBC(t *testing.T) {
	cfg := DefaultTPCC()
	part, err := cfg.PyxisPartition(0)
	if err != nil {
		t.Fatal(err)
	}
	if part.Report.DBNodes != 0 {
		t.Fatalf("budget-0 partition has %d DB statements", part.Report.DBNodes)
	}
	run := func(w Workload) Point {
		return Run(w, RunCfg{
			Clients: 10, Rate: 80, Warmup: 1, Window: 3,
			AppCores: 8, DBCores: 3, CM: DefaultCosts(),
		})
	}
	jdbc := run(cfg.JDBCWorkload())
	pyx := run(cfg.PyxisWorkload(part))
	t.Logf("JDBC:  %+v", jdbc)
	t.Logf("Pyxis: %+v", pyx)
	// Same round-trip pattern: latencies within ~40% of each other.
	if pyx.MeanLatMs > jdbc.MeanLatMs*1.4 || pyx.MeanLatMs < jdbc.MeanLatMs*0.6 {
		t.Errorf("low-budget Pyxis (%.2fms) should track JDBC (%.2fms)", pyx.MeanLatMs, jdbc.MeanLatMs)
	}
}
