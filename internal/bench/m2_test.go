package bench

import (
	"testing"

	"pyxis"
	"pyxis/internal/source"
)

// findSha1Stmt locates the `h = sys.sha1(h)` statement.
func findSha1Stmt(t *testing.T, part *pyxis.Partition) source.NodeID {
	t.Helper()
	for id, s := range part.System.Prog.Stmts {
		for _, b := range source.Builtins(s) {
			if b.B == source.BSha1 {
				return id
			}
		}
	}
	t.Fatal("no sys.sha1 statement found")
	return 0
}

// TestMicro2Diagonal asserts the Fig. 14 property: each partition wins
// exactly the load regime the paper highlights.
func TestMicro2Diagonal(t *testing.T) {
	app, mid, dbp, err := Micro2Partitions()
	if err != nil {
		t.Fatal(err)
	}
	// Partition shapes first (paper §7.4): APP has no DB statements;
	// APP-DB places the query loops on the DB but keeps the SHA-1 loop
	// on the app server; DB moves (almost) everything.
	if app.Report.DBNodes != 0 {
		t.Errorf("APP partition has %d DB statements, want 0", app.Report.DBNodes)
	}
	if mid.Report.DBNodes == 0 || mid.Report.DBNodes >= dbp.Report.DBNodes {
		t.Errorf("APP-DB partition shape wrong: mid=%d db=%d", mid.Report.DBNodes, dbp.Report.DBNodes)
	}
	if loc := mid.Place.Of(findSha1Stmt(t, mid)); loc.String() != "APP" {
		t.Errorf("APP-DB partition put the SHA-1 loop on %s, want APP", loc)
	}
	if loc := dbp.Place.Of(findSha1Stmt(t, dbp)); loc.String() != "DB" {
		t.Errorf("DB partition put the SHA-1 loop on %s, want DB", loc)
	}

	cm := DefaultCosts()
	const q1, rounds, q2 = 400, 2000, 400
	times := map[string]map[string]float64{}
	for _, ld := range []struct {
		name string
		bg   int
	}{{"none", 0}, {"partial", 32}, {"full", 64}} {
		times[ld.name] = map[string]float64{
			"APP":    Micro2Run(app, 16, ld.bg, q1, rounds, q2, cm),
			"APP-DB": Micro2Run(mid, 16, ld.bg, q1, rounds, q2, cm),
			"DB":     Micro2Run(dbp, 16, ld.bg, q1, rounds, q2, cm),
		}
	}
	t.Logf("times: %v", times)
	if !(times["none"]["DB"] < times["none"]["APP-DB"] && times["none"]["DB"] < times["none"]["APP"]) {
		t.Errorf("no load: DB should win: %v", times["none"])
	}
	if !(times["partial"]["APP-DB"] < times["partial"]["APP"] && times["partial"]["APP-DB"] < times["partial"]["DB"]) {
		t.Errorf("partial load: APP-DB should win: %v", times["partial"])
	}
	if !(times["full"]["APP"] < times["full"]["APP-DB"] && times["full"]["APP"] < times["full"]["DB"]) {
		t.Errorf("full load: APP should win: %v", times["full"])
	}
}
