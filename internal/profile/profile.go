// Package profile holds the dynamic information Pyxis gathers by
// instrumenting a workload run (paper §4.1): per-statement execution
// counts, average assigned-data sizes, and the network parameters
// (latency, bandwidth) that convert cut dependencies into estimated
// time. The partitioner weights the partition graph with these.
package profile

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"pyxis/internal/interp"
	"pyxis/internal/source"
)

// Profile is the collected workload profile.
type Profile struct {
	// Count is per-statement execution count (loop headers count one
	// per condition evaluation).
	Count map[source.NodeID]int64
	// SizeSum/SizeN accumulate assigned-value sizes per def statement.
	SizeSum map[source.NodeID]int64
	SizeN   map[source.NodeID]int64
	// FieldSizeSum/FieldSizeN accumulate sizes per field node, and
	// FieldWrites counts stores.
	FieldSizeSum map[source.NodeID]int64
	FieldSizeN   map[source.NodeID]int64
	FieldWrites  map[source.NodeID]int64
	// DBCalls counts database operations per statement.
	DBCalls map[source.NodeID]int64
	// EntryCalls counts external invocations per method entry node
	// (entry-point wrappers and external object construction).
	EntryCalls map[source.NodeID]int64

	// Latency is the measured network round-trip time between the
	// application and database servers.
	Latency time.Duration
	// BandwidthBps is the measured link bandwidth in bytes/second.
	BandwidthBps float64
}

// New returns an empty profile with the paper's testbed defaults
// (2 ms ping RTT; ~1 Gbit/s link).
func New() *Profile {
	return &Profile{
		Count:        map[source.NodeID]int64{},
		SizeSum:      map[source.NodeID]int64{},
		SizeN:        map[source.NodeID]int64{},
		FieldSizeSum: map[source.NodeID]int64{},
		FieldSizeN:   map[source.NodeID]int64{},
		FieldWrites:  map[source.NodeID]int64{},
		DBCalls:      map[source.NodeID]int64{},
		EntryCalls:   map[source.NodeID]int64{},
		Latency:      2 * time.Millisecond,
		BandwidthBps: 125e6,
	}
}

// Hooks returns interpreter hooks that record into p.
func (p *Profile) Hooks() interp.Hooks {
	return interp.Hooks{
		OnStmt:   func(id source.NodeID) { p.Count[id]++ },
		OnAssign: func(id source.NodeID, size int) { p.SizeSum[id] += int64(size); p.SizeN[id]++ },
		OnFieldWrite: func(fieldID source.NodeID, size int) {
			p.FieldSizeSum[fieldID] += int64(size)
			p.FieldSizeN[fieldID]++
			p.FieldWrites[fieldID]++
		},
		OnDBCall:    func(id source.NodeID) { p.DBCalls[id]++ },
		OnEntryCall: func(m *source.Method) { p.EntryCalls[m.EntryID]++ },
	}
}

// Cnt returns the execution count of a node as float.
func (p *Profile) Cnt(id source.NodeID) float64 { return float64(p.Count[id]) }

// DefaultSize is the assumed size for defs never observed at runtime.
const DefaultSize = 16

// AvgSize returns the average assigned size at a def statement.
func (p *Profile) AvgSize(id source.NodeID) float64 {
	if n := p.SizeN[id]; n > 0 {
		return float64(p.SizeSum[id]) / float64(n)
	}
	return DefaultSize
}

// FieldAvgSize returns the average size stored into a field.
func (p *Profile) FieldAvgSize(id source.NodeID) float64 {
	if n := p.FieldSizeN[id]; n > 0 {
		return float64(p.FieldSizeSum[id]) / float64(n)
	}
	return DefaultSize
}

// Scale multiplies all counts by k (to extrapolate a short profiling
// run to a longer deployment; relative weights are unchanged).
func (p *Profile) Scale(k float64) {
	for id := range p.Count {
		p.Count[id] = int64(float64(p.Count[id]) * k)
	}
}

// Merge adds another profile's counts into p (for combining runs of
// different workload modes).
func (p *Profile) Merge(o *Profile) {
	for id, c := range o.Count {
		p.Count[id] += c
	}
	for id, c := range o.SizeSum {
		p.SizeSum[id] += c
	}
	for id, c := range o.SizeN {
		p.SizeN[id] += c
	}
	for id, c := range o.FieldSizeSum {
		p.FieldSizeSum[id] += c
	}
	for id, c := range o.FieldSizeN {
		p.FieldSizeN[id] += c
	}
	for id, c := range o.FieldWrites {
		p.FieldWrites[id] += c
	}
	for id, c := range o.DBCalls {
		p.DBCalls[id] += c
	}
}

// String renders the hottest statements for debugging.
func (p *Profile) String() string {
	type kv struct {
		id source.NodeID
		n  int64
	}
	var all []kv
	for id, n := range p.Count {
		all = append(all, kv{id, n})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].n > all[j].n })
	var b strings.Builder
	fmt.Fprintf(&b, "profile: %d statements, RTT=%v BW=%.0fMB/s\n", len(all), p.Latency, p.BandwidthBps/1e6)
	for i, e := range all {
		if i >= 10 {
			break
		}
		fmt.Fprintf(&b, "  node %-4d count=%d\n", e.id, e.n)
	}
	return b.String()
}
