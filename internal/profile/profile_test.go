package profile

import (
	"strings"
	"testing"

	"pyxis/internal/dbapi"
	"pyxis/internal/interp"
	"pyxis/internal/source"
	"pyxis/internal/sqldb"
	"pyxis/internal/val"
)

func collect(t *testing.T, calls int) (*Profile, *source.Program) {
	t.Helper()
	prog, err := source.Load(`
class C {
    int f;
    C() { f = 0; }
    entry int run(int n) {
        int s = 0;
        for (int i = 0; i < n; i++) {
            s += i;
        }
        f = s;
        return s;
    }
}`)
	if err != nil {
		t.Fatal(err)
	}
	p := New()
	ip := interp.New(prog, dbapi.NewLocal(sqldb.Open()))
	ip.Hooks = p.Hooks()
	obj, err := ip.NewObject("C")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < calls; i++ {
		if _, err := ip.CallEntry(prog.Method("C", "run"), obj, val.IntV(5)); err != nil {
			t.Fatal(err)
		}
	}
	return p, prog
}

func findLoopBody(t *testing.T, prog *source.Program) source.NodeID {
	t.Helper()
	for id, s := range prog.Stmts {
		if as, ok := s.(*source.AssignStmt); ok && as.Op == source.AsnAdd {
			if v, ok := as.LHS.(*source.VarExpr); ok && v.Local.Name == "s" {
				return id
			}
		}
	}
	t.Fatal("loop body not found")
	return 0
}

func TestCountsScaleWithCalls(t *testing.T) {
	p1, prog := collect(t, 1)
	p3, _ := collect(t, 3)
	body := findLoopBody(t, prog)
	if p1.Count[body] != 5 {
		t.Errorf("1 call: body count = %d, want 5", p1.Count[body])
	}
	if p3.Count[findLoopBody(t, prog)] != 15 {
		t.Errorf("3 calls: body count = %d, want 15", p3.Count[findLoopBody(t, prog)])
	}
	m := prog.Method("C", "run")
	if p3.EntryCalls[m.EntryID] != 3 {
		t.Errorf("entry calls = %d, want 3", p3.EntryCalls[m.EntryID])
	}
}

func TestFieldSizesAndAverages(t *testing.T) {
	p, prog := collect(t, 2)
	var f *source.Field
	for _, fl := range prog.Class("C").Fields {
		if fl.Name == "f" {
			f = fl
		}
	}
	if p.FieldWrites[f.ID] != 3 { // ctor + 2 runs
		t.Errorf("field writes = %d, want 3", p.FieldWrites[f.ID])
	}
	if p.FieldAvgSize(f.ID) != 9 { // int
		t.Errorf("avg size = %v, want 9", p.FieldAvgSize(f.ID))
	}
	if p.AvgSize(99999) != DefaultSize {
		t.Error("unknown def should report default size")
	}
}

func TestScaleAndMerge(t *testing.T) {
	p, prog := collect(t, 1)
	body := findLoopBody(t, prog)
	before := p.Count[body]
	p.Scale(3)
	if p.Count[body] != before*3 {
		t.Errorf("scale: %d, want %d", p.Count[body], before*3)
	}
	q, _ := collect(t, 1)
	total := p.Count[body] + q.Count[findLoopBody(t, prog)]
	// Merging q's counts: note q uses its own program's IDs, which are
	// identical since the source is identical.
	p.Merge(q)
	if p.Count[body] != total {
		t.Errorf("merge: %d, want %d", p.Count[body], total)
	}
}

func TestStringRendersHottest(t *testing.T) {
	p, _ := collect(t, 1)
	if !strings.Contains(p.String(), "profile:") {
		t.Error("String() malformed")
	}
}
