package dbapi

import (
	"errors"
	"testing"

	"pyxis/internal/rpc"
	"pyxis/internal/sqldb"
	"pyxis/internal/val"
)

// preparedContract runs the same statements over the prepared and
// string paths and requires identical results.
func preparedContract(t *testing.T, conn PreparedConn) {
	t.Helper()
	const sel = "SELECT v FROM t WHERE k = ?"
	for i := 0; i < 3; i++ {
		got, err := conn.QueryStmt(0, sel, val.IntV(1))
		if err != nil {
			t.Fatalf("QueryStmt: %v", err)
		}
		want, err := conn.Query(sel, val.IntV(1))
		if err != nil {
			t.Fatalf("Query: %v", err)
		}
		if len(got.Rows) != len(want.Rows) || got.Rows[0][0].S != want.Rows[0][0].S {
			t.Fatalf("prepared %v vs string %v", got.Rows, want.Rows)
		}
	}
	n, err := conn.ExecStmt(1, "INSERT INTO t VALUES (?, ?)", val.IntV(50), val.StrV("x"))
	if err != nil || n != 1 {
		t.Fatalf("ExecStmt: %d %v", n, err)
	}
	// Errors keep identity over the prepared path too.
	if _, err := conn.ExecStmt(1, "INSERT INTO t VALUES (?, ?)", val.IntV(50), val.StrV("x")); !errors.Is(err, sqldb.ErrDupKey) {
		t.Fatalf("dup key error lost on prepared path: %v", err)
	}
}

func TestLocalPreparedConn(t *testing.T) {
	preparedContract(t, NewLocal(setup(t)))
}

func TestClientPreparedWire(t *testing.T) {
	db := setup(t)
	conn := NewClient(rpc.NewInProc(NewHandler(db), 0))
	preparedContract(t, conn)
}

// TestPreparedWireByteSavings: after the first touch, prepared calls
// carry only the statement id — strictly fewer bytes than the string
// path for the same call.
func TestPreparedWireByteSavings(t *testing.T) {
	db := setup(t)
	conn := NewClient(rpc.NewInProc(NewHandler(db), 0))
	const sel = "SELECT v FROM t WHERE k = ?"

	if _, err := conn.QueryStmt(0, sel, val.IntV(1)); err != nil {
		t.Fatal(err)
	}
	base := conn.BytesSent
	if _, err := conn.QueryStmt(0, sel, val.IntV(1)); err != nil {
		t.Fatal(err)
	}
	preparedCost := conn.BytesSent - base

	base = conn.BytesSent
	if _, err := conn.Query(sel, val.IntV(1)); err != nil {
		t.Fatal(err)
	}
	stringCost := conn.BytesSent - base

	if preparedCost >= stringCost {
		t.Fatalf("prepared call cost %d bytes, string call %d — no savings", preparedCost, stringCost)
	}
	if preparedCost > 16 {
		t.Errorf("prepared call cost %d bytes; want id+args only (≤16)", preparedCost)
	}
}

// TestPreparedUnpreparedRecovery: a server session that never saw the
// statement (here: the client's transport is repointed at a fresh
// handler) answers ErrUnprepared; the client must transparently
// re-send the text and succeed.
func TestPreparedUnpreparedRecovery(t *testing.T) {
	db := setup(t)
	conn := NewClient(rpc.NewInProc(NewHandler(db), 0))
	const sel = "SELECT v FROM t WHERE k = ?"
	if _, err := conn.QueryStmt(0, sel, val.IntV(1)); err != nil {
		t.Fatal(err)
	}
	// New handler = new server-side session with an empty statement
	// table, while the client still believes id 0 is prepared.
	conn.T = rpc.NewInProc(NewHandler(db), 0)
	rs, err := conn.QueryStmt(0, sel, val.IntV(2))
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	if len(rs.Rows) != 1 || rs.Rows[0][0].S != "b" {
		t.Fatalf("wrong rows after recovery: %v", rs.Rows)
	}
}

// oldHandler replicates the pre-prepared-statement server: every
// request is parsed as [op][sql][args] and unknown ops are rejected.
func oldHandler(db *sqldb.DB) rpc.Handler {
	sess := db.NewSession()
	return func(req []byte) ([]byte, error) {
		r := &rpc.Reader{Buf: req}
		op := r.Byte()
		sql := r.Str()
		args := r.Vals()
		if err := r.Err(); err != nil {
			return nil, err
		}
		var w rpc.Writer
		switch op {
		case opExec:
			n, err := sess.Exec(sql, args...)
			if err != nil {
				return encodeErr(err), nil
			}
			w.Bool(true)
			w.I64(int64(n))
		case opQuery:
			rs, err := sess.Query(sql, args...)
			if err != nil {
				return encodeErr(err), nil
			}
			w.Bool(true)
			writeResultSet(&w, rs)
		default:
			return nil, errors.New("dbapi: unknown op")
		}
		return w.Buf, nil
	}
}

// TestPreparedOldPeerFallback: against a server that predates the
// prepared ops, the client must fall back to the string protocol and
// stay there.
func TestPreparedOldPeerFallback(t *testing.T) {
	db := setup(t)
	conn := NewClient(rpc.NewInProc(oldHandler(db), 0))
	const sel = "SELECT v FROM t WHERE k = ?"
	rs, err := conn.QueryStmt(0, sel, val.IntV(1))
	if err != nil {
		t.Fatalf("fallback failed: %v", err)
	}
	if rs.Rows[0][0].S != "a" {
		t.Fatalf("wrong rows over fallback: %v", rs.Rows)
	}
	if !conn.noPrepare {
		t.Error("client did not latch the string path after an old-peer error")
	}
	if _, err := conn.ExecStmt(1, "INSERT INTO t VALUES (?, ?)", val.IntV(9), val.StrV("z")); err != nil {
		t.Fatalf("string path after fallback: %v", err)
	}
}
