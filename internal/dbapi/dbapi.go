// Package dbapi is this repository's JDBC analogue: a uniform database
// connection interface with two implementations. Local wraps an
// embedded sqldb session (what the database-side partition uses —
// colocated, no network). Client speaks the wire protocol over an
// rpc.Transport (what the application-side partition uses — every
// operation is one round trip, exactly the cost the paper's JDBC
// implementation pays).
//
// Statement routing makes no serialization assumptions about the
// engine: distinct connections (and the sqldb sessions behind them)
// execute genuinely in parallel against the sharded engine, which
// serializes only where data actually conflicts (per-table latches,
// row-lock waits). One Conn is still one logical thread of control.
package dbapi

import (
	"errors"
	"fmt"
	"sync"

	"pyxis/internal/rpc"
	"pyxis/internal/sqldb"
	"pyxis/internal/val"
)

// Conn is a database connection. Implementations are not safe for
// concurrent use; each logical thread of control owns one Conn.
// Distinct Conns run concurrently: statements on different connections
// are not serialized by the engine unless they touch conflicting data.
type Conn interface {
	// Exec runs DDL/DML and returns the affected row count.
	Exec(sql string, args ...val.Value) (int, error)
	// Query runs a SELECT.
	Query(sql string, args ...val.Value) (*sqldb.ResultSet, error)
	// Begin / Commit / Rollback manage an explicit transaction.
	Begin() error
	Commit() error
	Rollback() error
	Close() error
}

// ---------------------------------------------------------------------------
// Local (embedded) connection
// ---------------------------------------------------------------------------

// Local is an embedded connection to an in-process database.
type Local struct {
	Sess *sqldb.Session
}

// NewLocal opens an embedded connection on db.
func NewLocal(db *sqldb.DB) *Local { return &Local{Sess: db.NewSession()} }

func (l *Local) Exec(sql string, args ...val.Value) (int, error) { return l.Sess.Exec(sql, args...) }
func (l *Local) Query(sql string, args ...val.Value) (*sqldb.ResultSet, error) {
	return l.Sess.Query(sql, args...)
}
func (l *Local) Begin() error    { return l.Sess.Begin() }
func (l *Local) Commit() error   { return l.Sess.Commit() }
func (l *Local) Rollback() error { return l.Sess.Rollback() }
func (l *Local) Close() error    { return nil }

// ---------------------------------------------------------------------------
// Wire protocol
// ---------------------------------------------------------------------------

const (
	opExec byte = iota + 1
	opQuery
	opBegin
	opCommit
	opRollback
)

// EncodeRequest marshals one database operation.
func EncodeRequest(op byte, sql string, args []val.Value) []byte {
	var w rpc.Writer
	w.Byte(op)
	w.Str(sql)
	w.Vals(args)
	return w.Buf
}

// Client is a remote connection over a transport. One Client maps to
// one server-side session (and so one transaction context).
type Client struct {
	T rpc.Transport
}

// NewClient wraps a transport as a database connection.
func NewClient(t rpc.Transport) *Client { return &Client{T: t} }

func (c *Client) do(op byte, sql string, args []val.Value) (*rpc.Reader, error) {
	resp, err := c.T.Call(EncodeRequest(op, sql, args))
	if err != nil {
		return nil, err
	}
	r := &rpc.Reader{Buf: resp}
	if !r.Bool() { // ok flag
		msg := r.Str()
		return nil, decodeError(msg)
	}
	return r, nil
}

func (c *Client) Exec(sql string, args ...val.Value) (int, error) {
	r, err := c.do(opExec, sql, args)
	if err != nil {
		return 0, err
	}
	n := int(r.I64())
	return n, r.Err()
}

func (c *Client) Query(sql string, args ...val.Value) (*sqldb.ResultSet, error) {
	r, err := c.do(opQuery, sql, args)
	if err != nil {
		return nil, err
	}
	rs := &sqldb.ResultSet{}
	ncols := int(r.U32())
	for i := 0; i < ncols; i++ {
		rs.Cols = append(rs.Cols, r.Str())
	}
	nrows := int(r.U32())
	for i := 0; i < nrows; i++ {
		rs.Rows = append(rs.Rows, r.Vals())
	}
	return rs, r.Err()
}

func (c *Client) Begin() error    { _, err := c.do(opBegin, "", nil); return err }
func (c *Client) Commit() error   { _, err := c.do(opCommit, "", nil); return err }
func (c *Client) Rollback() error { _, err := c.do(opRollback, "", nil); return err }
func (c *Client) Close() error    { return c.T.Close() }

// Sentinel errors cross the wire by name so clients can match them.
var wireErrors = map[string]error{
	"deadlock":       sqldb.ErrDeadlock,
	"dup-key":        sqldb.ErrDupKey,
	"no-transaction": sqldb.ErrNoTransaction,
}

func encodeError(err error) string {
	switch {
	case errors.Is(err, sqldb.ErrDeadlock):
		return "deadlock"
	case errors.Is(err, sqldb.ErrDupKey):
		return "dup-key"
	case errors.Is(err, sqldb.ErrNoTransaction):
		return "no-transaction"
	}
	return "! " + err.Error()
}

func decodeError(msg string) error {
	if e, ok := wireErrors[msg]; ok {
		return e
	}
	if len(msg) > 2 && msg[0] == '!' {
		return errors.New(msg[2:])
	}
	return errors.New(msg)
}

// ---------------------------------------------------------------------------
// Server side
// ---------------------------------------------------------------------------

// NewHandler returns an rpc.Handler serving the wire protocol against
// a fresh session of db. Create one handler per client connection.
func NewHandler(db *sqldb.DB) rpc.Handler {
	sess := db.NewSession()
	return SessionHandler(sess)
}

// MuxHandlers serves the database wire protocol on a multiplexed
// connection: each mux session gets its own sqldb session (and so its
// own transaction context); a session left with an open transaction is
// rolled back on close so its locks never outlive it.
func MuxHandlers(db *sqldb.DB) rpc.SessionHandlers {
	return &muxHandlers{db: db, sessions: map[uint32]*sqldb.Session{}}
}

type muxHandlers struct {
	db       *sqldb.DB
	mu       sync.Mutex
	sessions map[uint32]*sqldb.Session
}

func (h *muxHandlers) Open(sid uint32) rpc.Handler {
	sess := h.db.NewSession()
	h.mu.Lock()
	h.sessions[sid] = sess
	h.mu.Unlock()
	return SessionHandler(sess)
}

func (h *muxHandlers) Closed(sid uint32) {
	h.mu.Lock()
	sess := h.sessions[sid]
	delete(h.sessions, sid)
	h.mu.Unlock()
	if sess != nil && sess.InTxn() {
		_ = sess.Rollback()
	}
}

// SessionHandler serves the wire protocol against an existing session
// (useful when the caller needs to control the session's WaitPoint).
func SessionHandler(sess *sqldb.Session) rpc.Handler {
	return func(req []byte) ([]byte, error) {
		r := &rpc.Reader{Buf: req}
		op := r.Byte()
		sql := r.Str()
		args := r.Vals()
		if err := r.Err(); err != nil {
			return nil, err
		}
		var w rpc.Writer
		switch op {
		case opExec:
			n, err := sess.Exec(sql, args...)
			if err != nil {
				return encodeErr(err), nil
			}
			w.Bool(true)
			w.I64(int64(n))
		case opQuery:
			rs, err := sess.Query(sql, args...)
			if err != nil {
				return encodeErr(err), nil
			}
			w.Bool(true)
			w.U32(uint32(len(rs.Cols)))
			for _, c := range rs.Cols {
				w.Str(c)
			}
			w.U32(uint32(len(rs.Rows)))
			for _, row := range rs.Rows {
				w.Vals(row)
			}
		case opBegin:
			if err := sess.Begin(); err != nil {
				return encodeErr(err), nil
			}
			w.Bool(true)
		case opCommit:
			if err := sess.Commit(); err != nil {
				return encodeErr(err), nil
			}
			w.Bool(true)
		case opRollback:
			if err := sess.Rollback(); err != nil {
				return encodeErr(err), nil
			}
			w.Bool(true)
		default:
			return nil, fmt.Errorf("dbapi: unknown op %d", op)
		}
		return w.Buf, nil
	}
}

func encodeErr(err error) []byte {
	var w rpc.Writer
	w.Bool(false)
	w.Str(encodeError(err))
	return w.Buf
}
