// Package dbapi is this repository's JDBC analogue: a uniform database
// connection interface with two implementations. Local wraps an
// embedded sqldb session (what the database-side partition uses —
// colocated, no network). Client speaks the wire protocol over an
// rpc.Transport (what the application-side partition uses — every
// operation is one round trip, exactly the cost the paper's JDBC
// implementation pays).
//
// Statement routing makes no serialization assumptions about the
// engine: distinct connections (and the sqldb sessions behind them)
// execute genuinely in parallel against the sharded engine, which
// serializes only where data actually conflicts (per-table latches,
// row-lock waits). One Conn is still one logical thread of control.
package dbapi

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"pyxis/internal/rpc"
	"pyxis/internal/sqldb"
	"pyxis/internal/val"
)

// Conn is a database connection. Implementations are not safe for
// concurrent use; each logical thread of control owns one Conn.
// Distinct Conns run concurrently: statements on different connections
// are not serialized by the engine unless they touch conflicting data.
type Conn interface {
	// Exec runs DDL/DML and returns the affected row count.
	Exec(sql string, args ...val.Value) (int, error)
	// Query runs a SELECT.
	Query(sql string, args ...val.Value) (*sqldb.ResultSet, error)
	// Begin / Commit / Rollback manage an explicit transaction.
	Begin() error
	Commit() error
	Rollback() error
	Close() error
}

// PreparedConn is implemented by connections that execute
// compile-numbered statements without re-shipping (or re-parsing) the
// SQL text on every call. id is the program-wide statement number
// (compile.Program.SQLTable index); sql is the statement text, used to
// prepare on first touch and as the fallback when the peer doesn't
// speak the prepared protocol.
type PreparedConn interface {
	Conn
	ExecStmt(id int, sql string, args ...val.Value) (int, error)
	QueryStmt(id int, sql string, args ...val.Value) (*sqldb.ResultSet, error)
}

// ErrUnprepared reports a prepared-statement id the server session has
// no statement for (e.g. a fresh session); the client re-sends the
// call with the SQL text attached.
var ErrUnprepared = errors.New("dbapi: statement not prepared")

// ---------------------------------------------------------------------------
// Local (embedded) connection
// ---------------------------------------------------------------------------

// Local is an embedded connection to an in-process database.
type Local struct {
	Sess *sqldb.Session
	// stmts memoizes parsed statements by program-wide id, so the hot
	// path skips even the (lock-free) plan-cache lookup.
	stmts []sqldb.SQLStmt
}

// NewLocal opens an embedded connection on db.
func NewLocal(db *sqldb.DB) *Local { return &Local{Sess: db.NewSession()} }

func (l *Local) Exec(sql string, args ...val.Value) (int, error) { return l.Sess.Exec(sql, args...) }
func (l *Local) Query(sql string, args ...val.Value) (*sqldb.ResultSet, error) {
	return l.Sess.Query(sql, args...)
}
func (l *Local) Begin() error    { return l.Sess.Begin() }
func (l *Local) Commit() error   { return l.Sess.Commit() }
func (l *Local) Rollback() error { return l.Sess.Rollback() }
func (l *Local) Close() error    { return nil }

func (l *Local) stmt(id int, sql string) (sqldb.SQLStmt, error) {
	if id >= 0 && id < len(l.stmts) && l.stmts[id] != nil {
		return l.stmts[id], nil
	}
	st, err := l.Sess.Prepare(sql)
	if err != nil {
		return nil, err
	}
	if id >= 0 {
		for len(l.stmts) <= id {
			l.stmts = append(l.stmts, nil)
		}
		l.stmts[id] = st
	}
	return st, nil
}

func (l *Local) ExecStmt(id int, sql string, args ...val.Value) (int, error) {
	st, err := l.stmt(id, sql)
	if err != nil {
		return 0, err
	}
	return l.Sess.ExecParsed(st, args...)
}

func (l *Local) QueryStmt(id int, sql string, args ...val.Value) (*sqldb.ResultSet, error) {
	st, err := l.stmt(id, sql)
	if err != nil {
		return nil, err
	}
	return l.Sess.QueryParsed(st, args...)
}

// ---------------------------------------------------------------------------
// Wire protocol
// ---------------------------------------------------------------------------

const (
	opExec byte = iota + 1
	opQuery
	opBegin
	opCommit
	opRollback
	// Prepared variants: [op][uvarint id][bool hasSQL][sql?][args].
	// The text rides along only on first touch (or after the server
	// answers ErrUnprepared); every later call is id + args.
	opPrepExec
	opPrepQuery
)

// EncodeRequest marshals one string-path database operation.
func EncodeRequest(op byte, sql string, args []val.Value) []byte {
	var w rpc.Writer
	w.Byte(op)
	w.Str(sql)
	w.Vals(args)
	return w.Buf
}

// encodePrepared marshals one prepared-path operation.
func encodePrepared(op byte, id int, hasSQL bool, sql string, args []val.Value) []byte {
	var w rpc.Writer
	w.Byte(op)
	w.Uvarint(uint64(id))
	w.Bool(hasSQL)
	if hasSQL {
		w.Str(sql)
	}
	w.Vals(args)
	return w.Buf
}

// Client is a remote connection over a transport. One Client maps to
// one server-side session (and so one transaction context).
type Client struct {
	T rpc.Transport
	// BytesSent/BytesRecv count request/response payload bytes
	// (benchmark instrumentation; a Conn is single-threaded).
	BytesSent int64
	BytesRecv int64

	prepared  []bool // ids the server session has the text for
	noPrepare bool   // peer doesn't speak the prepared ops
}

// NewClient wraps a transport as a database connection.
func NewClient(t rpc.Transport) *Client { return &Client{T: t} }

func (c *Client) call(req []byte) (*rpc.Reader, error) {
	c.BytesSent += int64(len(req))
	resp, err := c.T.Call(req)
	if err != nil {
		return nil, err
	}
	c.BytesRecv += int64(len(resp))
	r := &rpc.Reader{Buf: resp}
	if !r.Bool() { // ok flag
		msg := r.Str()
		return nil, decodeError(msg)
	}
	return r, nil
}

func (c *Client) do(op byte, sql string, args []val.Value) (*rpc.Reader, error) {
	return c.call(EncodeRequest(op, sql, args))
}

// doPrepared runs op over the prepared wire with the string path as
// fallback: servers that answer ErrUnprepared get the text re-sent
// once; peers that don't understand the op at all (a pre-prepared-wire
// server mangles or rejects the frame) drop the connection to the
// string protocol permanently.
func (c *Client) doPrepared(op, strOp byte, id int, sql string, args []val.Value) (*rpc.Reader, error) {
	if c.noPrepare || id < 0 {
		return c.do(strOp, sql, args)
	}
	hasSQL := id >= len(c.prepared) || !c.prepared[id]
	r, err := c.call(encodePrepared(op, id, hasSQL, sql, args))
	if err == nil {
		c.markPrepared(id)
		return r, nil
	}
	if errors.Is(err, ErrUnprepared) {
		r, err = c.call(encodePrepared(op, id, true, sql, args))
		if err == nil {
			c.markPrepared(id)
		}
		return r, err
	}
	if isOldPeer(err) {
		c.noPrepare = true
		return c.do(strOp, sql, args)
	}
	return nil, err
}

func (c *Client) markPrepared(id int) {
	for len(c.prepared) <= id {
		c.prepared = append(c.prepared, false)
	}
	c.prepared[id] = true
}

// isOldPeer recognizes how a server without the prepared ops fails:
// its handler either rejects the op byte outright or misparses the
// frame as a string request and runs off the buffer. Execution never
// started in either case, so retrying on the string path is safe.
func isOldPeer(err error) bool {
	s := err.Error()
	return strings.Contains(s, "unknown op") || strings.Contains(s, "short buffer")
}

func (c *Client) Exec(sql string, args ...val.Value) (int, error) {
	r, err := c.do(opExec, sql, args)
	if err != nil {
		return 0, err
	}
	n := int(r.I64())
	return n, r.Err()
}

func (c *Client) ExecStmt(id int, sql string, args ...val.Value) (int, error) {
	r, err := c.doPrepared(opPrepExec, opExec, id, sql, args)
	if err != nil {
		return 0, err
	}
	n := int(r.I64())
	return n, r.Err()
}

func (c *Client) Query(sql string, args ...val.Value) (*sqldb.ResultSet, error) {
	r, err := c.do(opQuery, sql, args)
	if err != nil {
		return nil, err
	}
	return decodeResultSet(r)
}

func (c *Client) QueryStmt(id int, sql string, args ...val.Value) (*sqldb.ResultSet, error) {
	r, err := c.doPrepared(opPrepQuery, opQuery, id, sql, args)
	if err != nil {
		return nil, err
	}
	return decodeResultSet(r)
}

func decodeResultSet(r *rpc.Reader) (*sqldb.ResultSet, error) {
	rs := &sqldb.ResultSet{}
	ncols := int(r.U32())
	for i := 0; i < ncols; i++ {
		rs.Cols = append(rs.Cols, r.Str())
	}
	nrows := int(r.U32())
	for i := 0; i < nrows; i++ {
		rs.Rows = append(rs.Rows, r.Vals())
	}
	return rs, r.Err()
}

func (c *Client) Begin() error    { _, err := c.do(opBegin, "", nil); return err }
func (c *Client) Commit() error   { _, err := c.do(opCommit, "", nil); return err }
func (c *Client) Rollback() error { _, err := c.do(opRollback, "", nil); return err }
func (c *Client) Close() error    { return c.T.Close() }

// Sentinel errors cross the wire by name so clients can match them.
var wireErrors = map[string]error{
	"deadlock":       sqldb.ErrDeadlock,
	"dup-key":        sqldb.ErrDupKey,
	"no-transaction": sqldb.ErrNoTransaction,
	"unprepared":     ErrUnprepared,
	"range-fenced":   sqldb.ErrRangeFenced,
	"range-moved":    sqldb.ErrRangeMoved,
}

func encodeError(err error) string {
	switch {
	case errors.Is(err, sqldb.ErrDeadlock):
		return "deadlock"
	case errors.Is(err, sqldb.ErrDupKey):
		return "dup-key"
	case errors.Is(err, sqldb.ErrNoTransaction):
		return "no-transaction"
	case errors.Is(err, ErrUnprepared):
		return "unprepared"
	case errors.Is(err, sqldb.ErrRangeFenced):
		return "range-fenced"
	case errors.Is(err, sqldb.ErrRangeMoved):
		return "range-moved"
	}
	return "! " + err.Error()
}

func decodeError(msg string) error {
	if e, ok := wireErrors[msg]; ok {
		return e
	}
	if len(msg) > 2 && msg[0] == '!' {
		return errors.New(msg[2:])
	}
	return errors.New(msg)
}

// ---------------------------------------------------------------------------
// Server side
// ---------------------------------------------------------------------------

// NewHandler returns an rpc.Handler serving the wire protocol against
// a fresh session of db. Create one handler per client connection.
func NewHandler(db *sqldb.DB) rpc.Handler {
	sess := db.NewSession()
	return SessionHandler(sess)
}

// MuxHandlers serves the database wire protocol on a multiplexed
// connection: each mux session gets its own sqldb session (and so its
// own transaction context); a session left with an open transaction is
// rolled back on close so its locks never outlive it. (A transaction
// in the 2PC prepared state is detached from its session and is NOT
// rolled back by close — only the coordinator's decision or the
// participant's in-doubt deadline resolves it.)
//
// Each call creates a private Participant, which is enough for tests
// and single-connection setups; servers use MuxHandlersTxn so commit
// and abort frames arriving on a different connection than the prepare
// still find the transaction.
func MuxHandlers(db *sqldb.DB) rpc.SessionHandlers {
	return MuxHandlersTxn(db, NewParticipant(0, nil))
}

// MuxHandlersTxn is MuxHandlers with an explicit (typically
// server-shared) 2PC participant.
func MuxHandlersTxn(db *sqldb.DB, part *Participant) rpc.SessionHandlers {
	return &muxHandlers{db: db, part: part, sessions: map[uint32]*sqldb.Session{}}
}

type muxHandlers struct {
	db       *sqldb.DB
	part     *Participant
	mu       sync.Mutex
	sessions map[uint32]*sqldb.Session
}

// TxnCtl implements rpc.TxnParticipant: prepare binds to the live
// session's open transaction, everything else is keyed by gid alone.
func (h *muxHandlers) TxnCtl(sid uint32, op rpc.TxnOp, gid uint64) (rpc.TxnState, error) {
	switch op {
	case rpc.TxnPrepare:
		h.mu.Lock()
		sess := h.sessions[sid]
		h.mu.Unlock()
		if sess == nil {
			return rpc.TxnStateUnknown, fmt.Errorf("dbapi: prepare for unknown session %d", sid)
		}
		return h.part.Prepare(sess, gid)
	case rpc.TxnCommit:
		return h.part.Finish(gid, true)
	case rpc.TxnAbort:
		return h.part.Finish(gid, false)
	case rpc.TxnStatus:
		return h.part.Status(gid), nil
	}
	return rpc.TxnStateUnknown, fmt.Errorf("dbapi: unknown txn op %d", op)
}

// MigCtl implements rpc.MigParticipant: fence and release address the
// shard's database as a whole; adopt exempts the addressed live
// session from the armed fence (it rides that session's worker, so it
// is ordered with the migrator's own calls).
func (h *muxHandlers) MigCtl(sid uint32, req rpc.MigRequest) (uint64, error) {
	switch req.Op {
	case rpc.MigFence:
		return h.db.ArmFence(sqldb.FenceSpec{Tables: req.Tables, Lo: req.Lo, Hi: req.Hi}, req.TTL)
	case rpc.MigRelease:
		return req.Token, h.db.ReleaseFence(req.Token, req.Moved)
	case rpc.MigAdopt:
		h.mu.Lock()
		sess := h.sessions[sid]
		h.mu.Unlock()
		if sess == nil {
			return 0, fmt.Errorf("dbapi: fence adopt for unknown session %d", sid)
		}
		sess.AdoptFence(req.Token)
		return req.Token, nil
	}
	return 0, fmt.Errorf("dbapi: unknown mig op %d", req.Op)
}

func (h *muxHandlers) Open(sid uint32) rpc.Handler {
	sess := h.db.NewSession()
	h.mu.Lock()
	h.sessions[sid] = sess
	h.mu.Unlock()
	return SessionHandler(sess)
}

func (h *muxHandlers) Closed(sid uint32) {
	h.mu.Lock()
	sess := h.sessions[sid]
	delete(h.sessions, sid)
	h.mu.Unlock()
	if sess != nil && sess.InTxn() {
		_ = sess.Rollback()
	}
}

// SessionHandler serves the wire protocol against an existing session
// (useful when the caller needs to control the session's WaitPoint).
// Each handler keeps its session's prepared-statement table: ids are
// bound when a request carries the SQL text and resolved to the
// pre-parsed statement on every later call.
func SessionHandler(sess *sqldb.Session) rpc.Handler {
	prepared := map[uint64]sqldb.SQLStmt{}
	return func(req []byte) ([]byte, error) {
		r := &rpc.Reader{Buf: req}
		op := r.Byte()
		if op == opPrepExec || op == opPrepQuery {
			return servePrepared(sess, prepared, op, r)
		}
		sql := r.Str()
		args := r.Vals()
		if err := r.Err(); err != nil {
			return nil, err
		}
		var w rpc.Writer
		switch op {
		case opExec:
			n, err := sess.Exec(sql, args...)
			if err != nil {
				return encodeErr(err), nil
			}
			w.Bool(true)
			w.I64(int64(n))
		case opQuery:
			rs, err := sess.Query(sql, args...)
			if err != nil {
				return encodeErr(err), nil
			}
			w.Bool(true)
			writeResultSet(&w, rs)
		case opBegin:
			if err := sess.Begin(); err != nil {
				return encodeErr(err), nil
			}
			w.Bool(true)
		case opCommit:
			if err := sess.Commit(); err != nil {
				return encodeErr(err), nil
			}
			w.Bool(true)
		case opRollback:
			if err := sess.Rollback(); err != nil {
				return encodeErr(err), nil
			}
			w.Bool(true)
		default:
			return nil, fmt.Errorf("dbapi: unknown op %d", op)
		}
		return w.Buf, nil
	}
}

// servePrepared handles the prepared-statement ops.
func servePrepared(sess *sqldb.Session, prepared map[uint64]sqldb.SQLStmt, op byte, r *rpc.Reader) ([]byte, error) {
	id := r.Uvarint()
	hasSQL := r.Bool()
	var sqlText string
	if hasSQL {
		sqlText = r.Str()
	}
	args := r.Vals()
	if err := r.Err(); err != nil {
		return nil, err
	}
	var st sqldb.SQLStmt
	if hasSQL {
		var perr error
		st, perr = sess.Prepare(sqlText)
		if perr != nil {
			return encodeErr(perr), nil
		}
		prepared[id] = st
	} else if st = prepared[id]; st == nil {
		return encodeErr(ErrUnprepared), nil
	}
	var w rpc.Writer
	if op == opPrepExec {
		n, err := sess.ExecParsed(st, args...)
		if err != nil {
			return encodeErr(err), nil
		}
		w.Bool(true)
		w.I64(int64(n))
	} else {
		rs, err := sess.QueryParsed(st, args...)
		if err != nil {
			return encodeErr(err), nil
		}
		w.Bool(true)
		writeResultSet(&w, rs)
	}
	return w.Buf, nil
}

func writeResultSet(w *rpc.Writer, rs *sqldb.ResultSet) {
	w.U32(uint32(len(rs.Cols)))
	for _, c := range rs.Cols {
		w.Str(c)
	}
	w.U32(uint32(len(rs.Rows)))
	for _, row := range rs.Rows {
		w.Vals(row)
	}
}

func encodeErr(err error) []byte {
	var w rpc.Writer
	w.Bool(false)
	w.Str(encodeError(err))
	return w.Buf
}
