package dbapi

// Participant is the DB-server half of two-phase commit: it turns a
// session's open transaction into a prepared sqldb.PreparedTxn keyed
// by the coordinator's global transaction ID, delivers the
// coordinator's commit/abort decision to it, and — because a prepared
// transaction pins its locks — guarantees the in-doubt window is
// bounded: a prepared transaction whose decision never arrives is
// resolved after a deadline by re-querying the coordinator's decision
// log (the resolver), presuming abort when the coordinator is gone or
// has no record.
//
// One Participant is shared across every connection of a server (see
// MuxHandlersTxn): commit and abort are keyed by gid alone, so a
// decision may arrive on a different connection — or after a
// reconnect — than the prepare did.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pyxis/internal/rpc"
	"pyxis/internal/sqldb"
)

// DefaultInDoubtDeadline bounds how long a prepared transaction may
// pin its locks waiting for the coordinator's decision before the
// participant resolves it itself (re-query, else presumed abort).
const DefaultInDoubtDeadline = 5 * time.Second

// outcomeTombstones bounds the per-participant outcome log: decisions
// for the last outcomeTombstones resolved transactions are remembered
// so duplicate decision frames stay idempotent; older entries age out
// FIFO (a duplicate arriving later than 4096 transactions behind is a
// coordinator bug, and presumed abort still answers safely).
const outcomeTombstones = 4096

// Resolver answers "what did the coordinator decide for gid?" during
// in-doubt recovery. known=false means the coordinator is unreachable
// or has no record — by presumed abort both mean the same thing.
type Resolver func(gid uint64) (commit, known bool)

type preparedRec struct {
	pt    *sqldb.PreparedTxn
	timer *time.Timer
}

// Participant tracks this server's prepared transactions and resolved
// outcomes. Safe for concurrent use from every connection's demux
// loop and session workers.
type Participant struct {
	deadline time.Duration
	resolver Resolver

	mu           sync.Mutex
	prepared     map[uint64]*preparedRec
	outcomes     map[uint64]rpc.TxnState
	outcomeOrder []uint64

	prepares, commits, aborts, inDoubt atomic.Int64
}

// NewParticipant creates a participant with the given in-doubt
// deadline (<= 0 means DefaultInDoubtDeadline) and resolver (nil
// means straight presumed abort on deadline).
func NewParticipant(deadline time.Duration, resolver Resolver) *Participant {
	if deadline <= 0 {
		deadline = DefaultInDoubtDeadline
	}
	return &Participant{
		deadline: deadline,
		resolver: resolver,
		prepared: map[uint64]*preparedRec{},
		outcomes: map[uint64]rpc.TxnState{},
	}
}

// Stats reports how many transactions this participant prepared,
// committed, aborted, and resolved via the in-doubt path.
func (p *Participant) Stats() (prepares, commits, aborts, inDoubt int64) {
	return p.prepares.Load(), p.commits.Load(), p.aborts.Load(), p.inDoubt.Load()
}

// Prepare moves sess's open transaction into the prepared state under
// gid and arms the in-doubt deadline. The session is left without a
// transaction (see sqldb.Session.Prepare2PC); only Finish — from a
// decision frame or the deadline — can release the pinned locks.
func (p *Participant) Prepare(sess *sqldb.Session, gid uint64) (rpc.TxnState, error) {
	p.mu.Lock()
	if _, dup := p.prepared[gid]; dup {
		p.mu.Unlock()
		return rpc.TxnStateUnknown, fmt.Errorf("dbapi: gid %d already prepared", gid)
	}
	if st, done := p.outcomes[gid]; done {
		p.mu.Unlock()
		return rpc.TxnStateUnknown, fmt.Errorf("dbapi: gid %d already resolved (%s)", gid, st)
	}
	p.mu.Unlock()

	pt, err := sess.Prepare2PC()
	if err != nil {
		return rpc.TxnStateUnknown, err
	}
	rec := &preparedRec{pt: pt}
	p.mu.Lock()
	p.prepared[gid] = rec
	rec.timer = time.AfterFunc(p.deadline, func() { p.resolveInDoubt(gid) })
	p.mu.Unlock()
	p.prepares.Add(1)
	return rpc.TxnStatePrepared, nil
}

// Finish applies a decision for gid. It is idempotent against
// duplicate decision frames and answers by presumed abort for
// transactions it has no record of: aborting an unknown gid succeeds
// (there is nothing to undo — either it never prepared here or it
// already aged out), committing one fails (a commit decision for a
// transaction this participant cannot have voted yes on).
func (p *Participant) Finish(gid uint64, commit bool) (rpc.TxnState, error) {
	want := rpc.TxnStateAborted
	if commit {
		want = rpc.TxnStateCommitted
	}
	p.mu.Lock()
	rec := p.prepared[gid]
	if rec == nil {
		st, done := p.outcomes[gid]
		p.mu.Unlock()
		if done {
			if st == want {
				return st, nil
			}
			return st, fmt.Errorf("dbapi: gid %d already resolved (%s), cannot %s", gid, st, want)
		}
		if commit {
			return rpc.TxnStateAborted, fmt.Errorf("dbapi: gid %d not prepared here (presumed abort)", gid)
		}
		return rpc.TxnStateAborted, nil
	}
	delete(p.prepared, gid)
	p.recordOutcome(gid, want)
	p.mu.Unlock()

	rec.timer.Stop()
	var err error
	if commit {
		err = rec.pt.Commit()
		p.commits.Add(1)
	} else {
		err = rec.pt.Abort()
		p.aborts.Add(1)
	}
	if err != nil {
		return rpc.TxnStateUnknown, err
	}
	return want, nil
}

// Status answers a coordinator's (or operator's) state query. No
// record at all means presumed abort.
func (p *Participant) Status(gid uint64) rpc.TxnState {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.prepared[gid]; ok {
		return rpc.TxnStatePrepared
	}
	if st, ok := p.outcomes[gid]; ok {
		return st
	}
	return rpc.TxnStateAborted
}

// resolveInDoubt fires when a prepared transaction's decision never
// arrived: re-query the coordinator's decision log, presume abort if
// it is unreachable or has no record. The resolver runs outside the
// participant mutex (it may itself be a network call).
func (p *Participant) resolveInDoubt(gid uint64) {
	p.mu.Lock()
	_, still := p.prepared[gid]
	p.mu.Unlock()
	if !still {
		return // decision frame won the race
	}
	commit := false
	if p.resolver != nil {
		if c, known := p.resolver(gid); known {
			commit = c
		}
	}
	p.inDoubt.Add(1)
	_, _ = p.Finish(gid, commit)
}

// recordOutcome logs gid's decision in the bounded tombstone FIFO.
// Caller holds p.mu.
func (p *Participant) recordOutcome(gid uint64, st rpc.TxnState) {
	p.outcomes[gid] = st
	p.outcomeOrder = append(p.outcomeOrder, gid)
	if len(p.outcomeOrder) > outcomeTombstones {
		delete(p.outcomes, p.outcomeOrder[0])
		p.outcomeOrder = p.outcomeOrder[1:]
	}
}
