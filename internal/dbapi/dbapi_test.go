package dbapi

import (
	"errors"
	"testing"

	"pyxis/internal/rpc"
	"pyxis/internal/sqldb"
	"pyxis/internal/val"
)

func setup(t *testing.T) *sqldb.DB {
	t.Helper()
	db := sqldb.Open()
	s := db.NewSession()
	for _, q := range []string{
		"CREATE TABLE t (k INT PRIMARY KEY, v VARCHAR(8))",
		"INSERT INTO t VALUES (1, 'a')",
		"INSERT INTO t VALUES (2, 'b')",
	} {
		if _, err := s.Exec(q); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// connContract exercises the Conn interface identically for local and
// remote implementations.
func connContract(t *testing.T, conn Conn) {
	t.Helper()
	rs, err := conn.Query("SELECT v FROM t WHERE k = ?", val.IntV(2))
	if err != nil || len(rs.Rows) != 1 || rs.Rows[0][0].S != "b" {
		t.Fatalf("query: %v %v", rs, err)
	}
	n, err := conn.Exec("INSERT INTO t VALUES (?, ?)", val.IntV(3), val.StrV("c"))
	if err != nil || n != 1 {
		t.Fatalf("exec: %d %v", n, err)
	}
	// Transaction rollback.
	if err := conn.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Exec("UPDATE t SET v = 'zz' WHERE k = 1"); err != nil {
		t.Fatal(err)
	}
	if err := conn.Rollback(); err != nil {
		t.Fatal(err)
	}
	rs, err = conn.Query("SELECT v FROM t WHERE k = 1")
	if err != nil || rs.Rows[0][0].S != "a" {
		t.Fatalf("rollback failed: %v %v", rs, err)
	}
	// Errors cross the boundary with identity where sentinel.
	_, err = conn.Exec("INSERT INTO t VALUES (1, 'dup')")
	if !errors.Is(err, sqldb.ErrDupKey) {
		t.Fatalf("dup key error lost: %v", err)
	}
	if err := conn.Commit(); !errors.Is(err, sqldb.ErrNoTransaction) {
		t.Fatalf("commit outside txn: %v", err)
	}
	if _, err := conn.Query("SELECT nope FROM t"); err == nil {
		t.Fatal("bad query should error")
	}
}

func TestLocalConn(t *testing.T) {
	connContract(t, NewLocal(setup(t)))
}

func TestRemoteConnInProc(t *testing.T) {
	db := setup(t)
	conn := NewClient(rpc.NewInProc(NewHandler(db), 0))
	connContract(t, conn)
}

func TestRemoteConnTCP(t *testing.T) {
	db := setup(t)
	srv, err := rpc.NewServer("127.0.0.1:0", func() rpc.Handler { return NewHandler(db) })
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := rpc.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	connContract(t, NewClient(cli))
}

// TestSessionIsolationPerConnection: two clients get independent
// transaction contexts.
func TestSessionIsolationPerConnection(t *testing.T) {
	db := setup(t)
	c1 := NewClient(rpc.NewInProc(NewHandler(db), 0))
	c2 := NewClient(rpc.NewInProc(NewHandler(db), 0))
	if err := c1.Begin(); err != nil {
		t.Fatal(err)
	}
	// c2 has no transaction open.
	if err := c2.Commit(); !errors.Is(err, sqldb.ErrNoTransaction) {
		t.Fatalf("c2 shares c1's txn: %v", err)
	}
	if err := c1.Rollback(); err != nil {
		t.Fatal(err)
	}
}
