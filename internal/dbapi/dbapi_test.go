package dbapi

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"pyxis/internal/rpc"
	"pyxis/internal/sqldb"
	"pyxis/internal/val"
)

func setup(t *testing.T) *sqldb.DB {
	t.Helper()
	db := sqldb.Open()
	s := db.NewSession()
	for _, q := range []string{
		"CREATE TABLE t (k INT PRIMARY KEY, v VARCHAR(8))",
		"INSERT INTO t VALUES (1, 'a')",
		"INSERT INTO t VALUES (2, 'b')",
	} {
		if _, err := s.Exec(q); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// connContract exercises the Conn interface identically for local and
// remote implementations.
func connContract(t *testing.T, conn Conn) {
	t.Helper()
	rs, err := conn.Query("SELECT v FROM t WHERE k = ?", val.IntV(2))
	if err != nil || len(rs.Rows) != 1 || rs.Rows[0][0].S != "b" {
		t.Fatalf("query: %v %v", rs, err)
	}
	n, err := conn.Exec("INSERT INTO t VALUES (?, ?)", val.IntV(3), val.StrV("c"))
	if err != nil || n != 1 {
		t.Fatalf("exec: %d %v", n, err)
	}
	// Transaction rollback.
	if err := conn.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Exec("UPDATE t SET v = 'zz' WHERE k = 1"); err != nil {
		t.Fatal(err)
	}
	if err := conn.Rollback(); err != nil {
		t.Fatal(err)
	}
	rs, err = conn.Query("SELECT v FROM t WHERE k = 1")
	if err != nil || rs.Rows[0][0].S != "a" {
		t.Fatalf("rollback failed: %v %v", rs, err)
	}
	// Errors cross the boundary with identity where sentinel.
	_, err = conn.Exec("INSERT INTO t VALUES (1, 'dup')")
	if !errors.Is(err, sqldb.ErrDupKey) {
		t.Fatalf("dup key error lost: %v", err)
	}
	if err := conn.Commit(); !errors.Is(err, sqldb.ErrNoTransaction) {
		t.Fatalf("commit outside txn: %v", err)
	}
	if _, err := conn.Query("SELECT nope FROM t"); err == nil {
		t.Fatal("bad query should error")
	}
}

func TestLocalConn(t *testing.T) {
	connContract(t, NewLocal(setup(t)))
}

func TestRemoteConnInProc(t *testing.T) {
	db := setup(t)
	conn := NewClient(rpc.NewInProc(NewHandler(db), 0))
	connContract(t, conn)
}

func TestRemoteConnTCP(t *testing.T) {
	db := setup(t)
	srv, err := rpc.NewServer("127.0.0.1:0", func() rpc.Handler { return NewHandler(db) })
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := rpc.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	connContract(t, NewClient(cli))
}

// TestMuxSessionsConcurrentTxns drives many concurrent transactions
// over one multiplexed connection against the sharded engine: every
// session increments a shared hot row and its own private row inside
// an explicit transaction. No increment may be lost, and private rows
// must equal each session's committed count.
func TestMuxSessionsConcurrentTxns(t *testing.T) {
	db := sqldb.Open()
	s := db.NewSession()
	mustExec := func(sql string, args ...val.Value) {
		t.Helper()
		if _, err := s.Exec(sql, args...); err != nil {
			t.Fatal(err)
		}
	}
	mustExec("CREATE TABLE hot (k INT PRIMARY KEY, v INT)")
	mustExec("CREATE TABLE own (sid INT PRIMARY KEY, v INT)")
	mustExec("INSERT INTO hot VALUES (1, 0)")

	srvConn, cliConn := net.Pipe()
	go rpc.ServeMuxConn(srvConn, MuxHandlers(db))
	mux := rpc.NewMuxClient(cliConn)
	defer mux.Close()

	const sessions, txns = 8, 15
	var wg sync.WaitGroup
	errs := make([]error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn := NewClient(mux.Session())
			if _, err := conn.Exec("INSERT INTO own VALUES (?, 0)", val.IntV(int64(i))); err != nil {
				errs[i] = err
				return
			}
			for k := 0; k < txns; k++ {
				if err := conn.Begin(); err != nil {
					errs[i] = err
					return
				}
				_, err := conn.Exec("UPDATE hot SET v = v + 1 WHERE k = 1")
				if err == nil {
					_, err = conn.Exec("UPDATE own SET v = v + 1 WHERE sid = ?", val.IntV(int64(i)))
				}
				if err != nil {
					errs[i] = fmt.Errorf("session %d txn %d: %w", i, k, err)
					_ = conn.Rollback()
					return
				}
				if err := conn.Commit(); err != nil {
					errs[i] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	rs, err := s.Query("SELECT v FROM hot WHERE k = 1")
	if err != nil || rs.Rows[0][0].I != sessions*txns {
		t.Errorf("hot row = %v (err %v), want %d (lost update over the wire)", rs.Rows, err, sessions*txns)
	}
	for i := 0; i < sessions; i++ {
		rs, err := s.Query("SELECT v FROM own WHERE sid = ?", val.IntV(int64(i)))
		if err != nil || rs.Rows[0][0].I != txns {
			t.Errorf("session %d private row = %v (err %v), want %d", i, rs.Rows, err, txns)
		}
	}
}

// TestDeadlockSentinelOverMux forces a deadlock between two mux
// sessions and checks the victim receives the sqldb.ErrDeadlock
// sentinel (by identity, through the wire encoding) with its
// transaction fully rolled back server-side.
func TestDeadlockSentinelOverMux(t *testing.T) {
	db := setup(t)
	srvConn, cliConn := net.Pipe()
	go rpc.ServeMuxConn(srvConn, MuxHandlers(db))
	mux := rpc.NewMuxClient(cliConn)
	defer mux.Close()

	c1, c2 := NewClient(mux.Session()), NewClient(mux.Session())
	if err := c1.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := c2.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Exec("UPDATE t SET v = 'x' WHERE k = 1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Exec("UPDATE t SET v = 'y' WHERE k = 2"); err != nil {
		t.Fatal(err)
	}
	blocked := make(chan error, 1)
	go func() {
		_, err := c1.Exec("UPDATE t SET v = 'x' WHERE k = 2")
		blocked <- err
	}()
	// Wait until c1 is parked on c2's lock, then close the cycle.
	waitForLockWaits(t, db, 1)
	_, err := c2.Exec("UPDATE t SET v = 'y' WHERE k = 1")
	if !errors.Is(err, sqldb.ErrDeadlock) {
		t.Fatalf("victim error = %v, want ErrDeadlock sentinel", err)
	}
	if err := <-blocked; err != nil {
		t.Fatalf("survivor should proceed after victim aborts: %v", err)
	}
	if err := c1.Commit(); err != nil {
		t.Fatal(err)
	}
	// The victim's transaction was rolled back engine-side: k=2 kept the
	// survivor's value and the victim's session is txn-free.
	if err := c2.Commit(); !errors.Is(err, sqldb.ErrNoTransaction) {
		t.Fatalf("victim session should have no open txn, got %v", err)
	}
	rs, err := db.NewSession().Query("SELECT v FROM t WHERE k = 2")
	if err != nil || rs.Rows[0][0].S != "x" {
		t.Fatalf("k=2 = %v (err %v), want survivor's value 'x'", rs.Rows, err)
	}
}

func waitForLockWaits(t *testing.T, db *sqldb.DB, n int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if w, _ := db.LockWaits(); w >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("lock waiter never queued")
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestSessionIsolationPerConnection: two clients get independent
// transaction contexts.
func TestSessionIsolationPerConnection(t *testing.T) {
	db := setup(t)
	c1 := NewClient(rpc.NewInProc(NewHandler(db), 0))
	c2 := NewClient(rpc.NewInProc(NewHandler(db), 0))
	if err := c1.Begin(); err != nil {
		t.Fatal(err)
	}
	// c2 has no transaction open.
	if err := c2.Commit(); !errors.Is(err, sqldb.ErrNoTransaction) {
		t.Fatalf("c2 shares c1's txn: %v", err)
	}
	if err := c1.Rollback(); err != nil {
		t.Fatal(err)
	}
}
