package sqldb

import "pyxis/internal/val"

// btree is an in-memory B+tree mapping composite val.Value keys to
// int payloads (row slots). Leaves are linked for range scans. It
// backs both primary-key and secondary indexes; non-unique indexes
// append the row slot to the key to disambiguate duplicates.
//
// Concurrency contract: the tree has no internal synchronization — it
// is guarded by the owning table's latch in the engine's latch
// hierarchy (db.go): Insert and Delete run only under the table latch
// held exclusively; Get, Scan and Len are safe under the shared latch
// (nothing mutates node structure while any shared holder exists).
// The latch audit test enforces that every access site lives in a
// function with a documented latch story.
type btree struct {
	root   *bnode
	order  int // max keys per node
	height int
	size   int
}

type bnode struct {
	leaf     bool
	keys     [][]val.Value
	children []*bnode // internal nodes: len(keys)+1
	vals     []int    // leaf nodes: parallel to keys
	next     *bnode   // leaf chain
}

const defaultOrder = 64

func newBTree() *btree {
	return &btree{root: &bnode{leaf: true}, order: defaultOrder, height: 1}
}

// cmpKey compares composite keys lexicographically. A shorter key that
// is a prefix of a longer one compares equal — this gives prefix scans
// for free (search with a partial key finds the first row with that
// prefix).
func cmpKey(a, b []val.Value) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := val.Compare(a[i], b[i]); c != 0 {
			return c
		}
	}
	return 0
}

// cmpKeyStrict orders keys with shorter-prefix-first tiebreak; used
// internally so equal-prefix keys of different lengths order stably.
func cmpKeyStrict(a, b []val.Value) int {
	if c := cmpKey(a, b); c != 0 {
		return c
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	default:
		return 0
	}
}

// search returns the index of the first key in n.keys >= key.
func (n *bnode) search(key []val.Value) int {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if cmpKeyStrict(n.keys[mid], key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Get returns the payload for an exactly matching key.
func (t *btree) Get(key []val.Value) (int, bool) {
	n := t.root
	for !n.leaf {
		i := n.search(key)
		if i < len(n.keys) && cmpKeyStrict(n.keys[i], key) == 0 {
			i++
		}
		n = n.children[i]
	}
	i := n.search(key)
	if i < len(n.keys) && cmpKeyStrict(n.keys[i], key) == 0 {
		return n.vals[i], true
	}
	return 0, false
}

// Insert adds key→v. Returns false if the exact key already exists.
func (t *btree) Insert(key []val.Value, v int) bool {
	nk, nc, ok := t.insert(t.root, key, v)
	if !ok {
		return false
	}
	if nc != nil {
		newRoot := &bnode{
			keys:     [][]val.Value{nk},
			children: []*bnode{t.root, nc},
		}
		t.root = newRoot
		t.height++
	}
	t.size++
	return true
}

// insert descends into n; on child split returns the separator key and
// new right sibling.
func (t *btree) insert(n *bnode, key []val.Value, v int) ([]val.Value, *bnode, bool) {
	if n.leaf {
		i := n.search(key)
		if i < len(n.keys) && cmpKeyStrict(n.keys[i], key) == 0 {
			return nil, nil, false
		}
		n.keys = append(n.keys, nil)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = key
		n.vals = append(n.vals, 0)
		copy(n.vals[i+1:], n.vals[i:])
		n.vals[i] = v
		if len(n.keys) > t.order {
			return t.splitLeaf(n)
		}
		return nil, nil, true
	}
	i := n.search(key)
	if i < len(n.keys) && cmpKeyStrict(n.keys[i], key) == 0 {
		i++
	}
	sk, sc, ok := t.insert(n.children[i], key, v)
	if !ok {
		return nil, nil, false
	}
	if sc != nil {
		n.keys = append(n.keys, nil)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = sk
		n.children = append(n.children, nil)
		copy(n.children[i+2:], n.children[i+1:])
		n.children[i+1] = sc
		if len(n.keys) > t.order {
			return t.splitInternal(n)
		}
	}
	return nil, nil, true
}

func (t *btree) splitLeaf(n *bnode) ([]val.Value, *bnode, bool) {
	mid := len(n.keys) / 2
	right := &bnode{leaf: true,
		keys: append([][]val.Value{}, n.keys[mid:]...),
		vals: append([]int{}, n.vals[mid:]...),
		next: n.next,
	}
	n.keys = n.keys[:mid]
	n.vals = n.vals[:mid]
	n.next = right
	return right.keys[0], right, true
}

func (t *btree) splitInternal(n *bnode) ([]val.Value, *bnode, bool) {
	mid := len(n.keys) / 2
	sep := n.keys[mid]
	right := &bnode{
		keys:     append([][]val.Value{}, n.keys[mid+1:]...),
		children: append([]*bnode{}, n.children[mid+1:]...),
	}
	n.keys = n.keys[:mid]
	n.children = n.children[:mid+1]
	return sep, right, true
}

// Delete removes an exact key. It uses lazy deletion (no rebalancing):
// leaves may underflow, which is acceptable for an in-memory engine
// whose workloads are insert/lookup heavy.
func (t *btree) Delete(key []val.Value) bool {
	n := t.root
	for !n.leaf {
		i := n.search(key)
		if i < len(n.keys) && cmpKeyStrict(n.keys[i], key) == 0 {
			i++
		}
		n = n.children[i]
	}
	i := n.search(key)
	if i < len(n.keys) && cmpKeyStrict(n.keys[i], key) == 0 {
		n.keys = append(n.keys[:i], n.keys[i+1:]...)
		n.vals = append(n.vals[:i], n.vals[i+1:]...)
		t.size--
		return true
	}
	return false
}

// Scan visits entries with lo <= key <= hi in order (nil bounds are
// open). Prefix keys work as bounds: Scan([w,d], [w,d]) visits every
// key beginning with (w, d). The visit function returns false to stop.
func (t *btree) Scan(lo, hi []val.Value, visit func(key []val.Value, v int) bool) {
	n := t.root
	for !n.leaf {
		i := 0
		if lo != nil {
			i = n.search(lo)
			if i < len(n.keys) && cmpKey(n.keys[i], lo) == 0 {
				// Equal prefix may appear in the left child too.
				_ = i
			}
		}
		n = n.children[i]
	}
	for n != nil {
		for i := 0; i < len(n.keys); i++ {
			if lo != nil && cmpKey(n.keys[i], lo) < 0 {
				continue
			}
			if hi != nil && cmpKey(n.keys[i], hi) > 0 {
				return
			}
			if !visit(n.keys[i], n.vals[i]) {
				return
			}
		}
		n = n.next
	}
}

// Len returns the number of entries.
func (t *btree) Len() int { return t.size }
