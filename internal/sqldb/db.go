package sqldb

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"pyxis/internal/val"
)

// Common engine errors.
var (
	ErrNoSuchTable   = errors.New("sqldb: no such table")
	ErrDupKey        = errors.New("sqldb: duplicate primary key")
	ErrTxnAborted    = errors.New("sqldb: transaction aborted")
	ErrNoTransaction = errors.New("sqldb: no transaction in progress")
	ErrInTransaction = errors.New("sqldb: transaction already in progress")
)

// errLatchUpgrade is an engine-internal signal: a statement running
// under a shared table latch discovered (after a lock wait suspended
// the latch) that it now needs the exclusive latch; execStmt reruns it
// exclusively. Never escapes the package.
var errLatchUpgrade = errors.New("sqldb: internal: statement needs exclusive latch")

// Stats counts engine operations; the benchmark harness reads them to
// charge simulated CPU cost per database operation.
type Stats struct {
	Selects, Inserts, Updates, Deletes int64
	RowsScanned                        int64
}

// statsCounters is the engine-internal, concurrently-updated form of
// Stats.
type statsCounters struct {
	selects, inserts, updates, deletes atomic.Int64
	rowsScanned                        atomic.Int64
}

// DB is an in-memory relational database with sharded concurrency
// control (the latch hierarchy, top to bottom):
//
//  1. catMu guards the table catalog (DDL vs. name lookup);
//  2. each Table has its own structural latch (an RWMutex): statements
//     touching disjoint tables never contend;
//  3. row-pointer slots are striped under per-table row latches, so
//     non-key updates and readers of the same table share the table
//     latch in read mode and only serialize per stripe;
//  4. the 2PL lock manager (itself stripe-locked) provides transaction
//     isolation; lock waits park with NO latches held — a session
//     suspends its statement latches before waiting and reacquires
//     them (revalidating) afterwards — so a blocked transaction never
//     stalls statements on unrelated data.
//
// Latch order is always catalog → table latches (in ascending table
// name order) → row stripe → lock-manager stripe → lock-manager graph;
// acquisitions never go up the hierarchy, which makes latch deadlocks
// impossible.
type DB struct {
	catMu  sync.RWMutex
	tables map[string]*Table

	lm *lockManager

	// planCache maps SQL text to its immutable parsed statement. A
	// sync.Map fits the workload exactly: written once per distinct
	// statement, then read forever — steady-state lookups take no lock
	// at all, so sessions never contend here (the old RWMutex
	// serialized every statement in the system through one word).
	planCache sync.Map // string → SQLStmt

	nextTxn atomic.Int64
	stats   statsCounters

	// fence is the live-migration fence plane (see fence.go): at most
	// one armed range fence plus the moved-out tombstones. Statements
	// consult it with two atomic loads before taking any latch.
	fence fenceControl
}

// Open creates an empty database.
func Open() *DB {
	return &DB{
		tables: map[string]*Table{},
		lm:     newLockManager(),
	}
}

// Stats returns a snapshot of operation counters.
func (db *DB) Stats() Stats {
	return Stats{
		Selects:     db.stats.selects.Load(),
		Inserts:     db.stats.inserts.Load(),
		Updates:     db.stats.updates.Load(),
		Deletes:     db.stats.deletes.Load(),
		RowsScanned: db.stats.rowsScanned.Load(),
	}
}

// Snapshot returns every live row of every table, sorted by primary
// key, keyed by table name. Tests use it to compare database states.
// All table latches are held in read mode for the duration, so the
// snapshot is consistent across tables with respect to structural
// changes (committed transactions' rows; uncommitted rows may appear,
// exactly as a scan would see them).
func (db *DB) Snapshot() map[string][][]val.Value {
	db.catMu.RLock()
	all := make([]*Table, 0, len(db.tables))
	for _, t := range db.tables {
		all = append(all, t)
	}
	db.catMu.RUnlock()
	sortTables(all)
	for _, t := range all {
		t.latch.RLock()
	}
	defer func() {
		for i := len(all) - 1; i >= 0; i-- {
			all[i].latch.RUnlock()
		}
	}()
	out := map[string][][]val.Value{}
	for _, t := range all {
		var rows [][]val.Value
		t.pk.Scan(nil, nil, func(_ []val.Value, slot int) bool {
			if row := t.rowAt(slot); row != nil {
				rows = append(rows, append([]val.Value{}, row...))
			}
			return true
		})
		out[t.name] = rows
	}
	return out
}

// LockWaits returns (waits, deadlocks) counters from the lock manager.
func (db *DB) LockWaits() (int64, int64) {
	return db.lm.Waits(), db.lm.Deadlocks()
}

// rowStripeCount stripes each table's row-pointer slots; power of two
// for cheap masking.
const rowStripeCount = 64

// Table is one relation: rows are stored in slots; a nil row is a
// tombstone. The primary key and all secondary indexes are B+trees.
//
// Concurrency: latch guards the table's structure — the rows slice
// header and free list, and every B+tree. Statements that may grow the
// slice or touch an index (INSERT, DELETE, key-changing UPDATE, index
// DDL, commit slot recycling, rollback) hold latch exclusively;
// everything else (scans, non-key UPDATEs) holds it shared and
// arbitrates individual row-pointer slots through rowLatch stripes.
// Row value slices are immutable once published: writers install a
// fresh slice via setRow, so a reader holding a row pointer always
// sees a consistent version.
type Table struct {
	name     string
	nameHash uint32 // FNV-1a of name, for lock-stripe selection
	cols     []ColumnDef
	colIdx   map[string]int
	pkCols   []int

	latch    sync.RWMutex
	rowLatch [rowStripeCount]sync.RWMutex

	rows [][]val.Value
	free []int
	pk   *btree
	idxs []*index
}

type index struct {
	name   string
	cols   []int
	unique bool
	tree   *btree
}

// lockKey builds the lock-manager key for a row slot, carrying the
// table's precomputed hash so the per-lock hot path never re-hashes
// the name.
func (t *Table) lockKey(slot int) lockKey {
	return lockKey{table: t.name, slot: slot, h: t.nameHash}
}

// rowAt reads the row pointer at slot. The caller holds the table
// latch in at least read mode; the stripe synchronizes the element
// against concurrent setRow from other read-latched sessions.
func (t *Table) rowAt(slot int) []val.Value {
	l := &t.rowLatch[slot&(rowStripeCount-1)]
	l.RLock()
	row := t.rows[slot]
	l.RUnlock()
	return row
}

// setRow installs a new row version at slot under its stripe latch.
// The caller holds the table latch (either mode) and, for slots
// already published, the row's X lock.
func (t *Table) setRow(slot int, row []val.Value) {
	l := &t.rowLatch[slot&(rowStripeCount-1)]
	l.Lock()
	t.rows[slot] = row
	l.Unlock()
}

// NumRows returns the live row count (PK entries), synchronized
// against concurrent writers through the table latch.
func (t *Table) NumRows() int {
	t.latch.RLock()
	defer t.latch.RUnlock()
	return t.pk.Len()
}

// Table returns a table by name, or nil. The handle is only a name
// binding: reads that must be consistent under concurrent writers go
// through methods that take the table latch (NumRows) or through a
// Session.
func (db *DB) Table(name string) *Table {
	return db.lookupTable(normName(name))
}

// lookupTable resolves an already-normalized name under the catalog
// latch.
func (db *DB) lookupTable(name string) *Table {
	db.catMu.RLock()
	defer db.catMu.RUnlock()
	return db.tables[name]
}

// sortTables orders a latch set by name — the global latch acquisition
// order that keeps multi-table latching deadlock-free.
func sortTables(ts []*Table) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].name < ts[j].name })
}

// Txn is an in-flight transaction: held locks plus an undo log. freed
// holds slots tombstoned by deletes (recycled at commit, restored by
// rollback); reserved holds slots an insert reserved but never
// published (it lost a duplicate-key race after a lock wait) — they
// stay X-locked until transaction end and are recycled on both paths.
type Txn struct {
	id       int64
	locks    []lockKey
	undo     []undoRec
	freed    []freedSlot
	reserved []freedSlot
	aborted  bool
	// everWaited: txn enqueued on a lock at least once (written by the
	// owning goroutine under the stripe+graph mutexes; read only by the
	// owning goroutine). Lets abort skip the cancelWaits stripe sweep.
	everWaited bool
	// prepared: txn is in the 2PC in-doubt window (see twopc.go). It
	// holds its locks past the statement boundary and never requests new
	// ones, so it can never appear in a waits-for cycle — deadlock
	// victims are always the requester, never a prepared txn.
	prepared bool
}

type freedSlot struct {
	t    *Table
	slot int
}

type undoKind uint8

const (
	uInsert undoKind = iota
	uUpdate
	uDelete
)

type undoRec struct {
	t      *Table
	kind   undoKind
	slot   int
	before []val.Value
}

// WaitPointFunc supplies a (wait, wake) pair used to block on
// contended locks: wait parks the caller, wake releases it. The
// default uses a channel; the simulator substitutes virtual-time
// parking.
type WaitPointFunc func() (wait func(), wake func())

func chanWaitPoint() (func(), func()) {
	ch := make(chan struct{})
	return func() { <-ch }, func() { close(ch) }
}

// Session is a client connection handle: it owns at most one open
// transaction. Statements executed outside a transaction autocommit.
// A Session is a single logical thread of control — not safe for
// concurrent use; distinct sessions of one DB run fully in parallel.
type Session struct {
	db        *DB
	txn       *Txn
	WaitPoint WaitPointFunc

	// held is the set of table latches the in-flight statement holds
	// (sorted by name) and their mode; a row-lock wait suspends these
	// so a parked transaction never blocks unrelated statements.
	held  []*Table
	heldX bool

	// fenceTok, when non-zero, exempts this session from the armed
	// migration fence carrying the same token (see AdoptFence).
	fenceTok uint64
}

// NewSession creates a session on db.
func (db *DB) NewSession() *Session {
	return &Session{db: db, WaitPoint: chanWaitPoint}
}

// InTxn reports whether an explicit transaction is open.
func (s *Session) InTxn() bool { return s.txn != nil }

// Begin starts an explicit transaction.
func (s *Session) Begin() error {
	if s.txn != nil {
		return ErrInTransaction
	}
	s.txn = s.db.newTxn()
	return nil
}

func (db *DB) newTxn() *Txn {
	return &Txn{id: db.nextTxn.Add(1)}
}

// Commit commits the open transaction, releasing its locks.
func (s *Session) Commit() error {
	if s.txn == nil {
		return ErrNoTransaction
	}
	s.db.commit(s.txn)
	s.txn = nil
	return nil
}

// Rollback aborts the open transaction, undoing its effects.
func (s *Session) Rollback() error {
	if s.txn == nil {
		return ErrNoTransaction
	}
	s.db.rollback(s.txn)
	s.txn = nil
	return nil
}

// latchSetOf collects the distinct tables referenced by txn's physical
// records (undo log and freed slots), in latch order.
func latchSetOf(txn *Txn) []*Table {
	seen := map[*Table]bool{}
	var ts []*Table
	for _, u := range txn.undo {
		if !seen[u.t] {
			seen[u.t] = true
			ts = append(ts, u.t)
		}
	}
	for _, f := range txn.freed {
		if !seen[f.t] {
			seen[f.t] = true
			ts = append(ts, f.t)
		}
	}
	for _, f := range txn.reserved {
		if !seen[f.t] {
			seen[f.t] = true
			ts = append(ts, f.t)
		}
	}
	sortTables(ts)
	return ts
}

func latchAllW(ts []*Table) {
	for _, t := range ts {
		t.latch.Lock()
	}
}

func unlatchAllW(ts []*Table) {
	for i := len(ts) - 1; i >= 0; i-- {
		ts[i].latch.Unlock()
	}
}

// commit finalizes txn: recycle slots freed by its deletes and slots
// reserved by duplicate-losing inserts (under the owning tables'
// latches), then release its locks.
func (db *DB) commit(txn *Txn) {
	if len(txn.freed) > 0 || len(txn.reserved) > 0 {
		// Only the freed/reserved tables need latching here, but the
		// full latch set is tiny and already deduplicated/sorted.
		ts := latchSetOf(txn)
		latchAllW(ts)
		for _, f := range txn.freed {
			f.t.rows[f.slot] = nil
			f.t.free = append(f.t.free, f.slot)
		}
		for _, f := range txn.reserved {
			f.t.free = append(f.t.free, f.slot)
		}
		unlatchAllW(ts)
	}
	db.lm.releaseAll(txn)
	txn.undo = nil
	txn.freed = nil
	txn.reserved = nil
}

// rollback undoes txn's changes in reverse order, holding the
// exclusive latch of every table its undo log touches (physical undo
// restores rows AND index entries), then releases its locks.
func (db *DB) rollback(txn *Txn) {
	if len(txn.undo) > 0 || len(txn.reserved) > 0 {
		ts := latchSetOf(txn)
		latchAllW(ts)
		for i := len(txn.undo) - 1; i >= 0; i-- {
			u := txn.undo[i]
			switch u.kind {
			case uInsert:
				u.t.dropFromIndexes(u.t.rows[u.slot], u.slot)
				u.t.rows[u.slot] = nil
				u.t.free = append(u.t.free, u.slot)
			case uUpdate:
				u.t.dropFromIndexes(u.t.rows[u.slot], u.slot)
				u.t.rows[u.slot] = u.before
				u.t.addToIndexes(u.before, u.slot)
			case uDelete:
				u.t.rows[u.slot] = u.before
				u.t.addToIndexes(u.before, u.slot)
			}
		}
		// Slots tombstoned by deletes were restored by the undo pass
		// (txn.freed needs no action), but never-published insert
		// reservations must be recycled or they leak as permanent
		// tombstones.
		for _, f := range txn.reserved {
			f.t.free = append(f.t.free, f.slot)
		}
		unlatchAllW(ts)
	}
	db.lm.cancelWaits(txn)
	db.lm.releaseAll(txn)
	txn.undo = nil
	txn.freed = nil
	txn.reserved = nil
	txn.aborted = true
}

func (t *Table) keyFor(cols []int, row []val.Value, slot int, unique bool) []val.Value {
	key := make([]val.Value, 0, len(cols)+1)
	for _, c := range cols {
		key = append(key, row[c])
	}
	if !unique {
		key = append(key, val.IntV(int64(slot)))
	}
	return key
}

func (t *Table) addToIndexes(row []val.Value, slot int) {
	t.pk.Insert(t.keyFor(t.pkCols, row, slot, true), slot)
	for _, ix := range t.idxs {
		ix.tree.Insert(t.keyFor(ix.cols, row, slot, ix.unique), slot)
	}
}

func (t *Table) dropFromIndexes(row []val.Value, slot int) {
	t.pk.Delete(t.keyFor(t.pkCols, row, slot, true))
	for _, ix := range t.idxs {
		ix.tree.Delete(t.keyFor(ix.cols, row, slot, ix.unique))
	}
}

// latch acquires the statement's table latches (deduplicated, in name
// order) and records them so acquireLock can suspend them across a
// lock wait.
func (s *Session) latch(write bool, tables ...*Table) {
	ts := tables[:0:0]
	for _, t := range tables {
		dup := false
		for _, have := range ts {
			if have == t {
				dup = true
				break
			}
		}
		if !dup {
			ts = append(ts, t)
		}
	}
	sortTables(ts)
	s.held = ts
	s.heldX = write
	s.lockHeld()
}

func (s *Session) lockHeld() {
	for _, t := range s.held {
		if s.heldX {
			t.latch.Lock()
		} else {
			t.latch.RLock()
		}
	}
}

func (s *Session) unlockHeld() {
	for i := len(s.held) - 1; i >= 0; i-- {
		if s.heldX {
			s.held[i].latch.Unlock()
		} else {
			s.held[i].latch.RUnlock()
		}
	}
}

// unlatch releases the statement's latches at statement end.
func (s *Session) unlatch() {
	s.unlockHeld()
	s.held = nil
	s.heldX = false
}

// acquireLock blocks (via the session's wait point) until txn holds
// key at mode, or returns ErrDeadlock. If the lock is contended, the
// statement's table latches are suspended for the duration of the wait
// (a parked transaction must not stall statements on other data) and
// reacquired afterwards — callers revalidate whatever the latch
// protected after any acquireLock call that might have waited.
func (s *Session) acquireLock(txn *Txn, key lockKey, mode LockMode) error {
	wait, wake := s.WaitPoint()
	ok, err := s.db.lm.acquire(txn, key, mode, wake)
	if err != nil {
		return err
	}
	if ok {
		return nil
	}
	s.unlockHeld()
	wait()
	s.lockHeld()
	return nil
}

// parse returns a cached parse of sql. Parsed statements are immutable
// and shared across sessions. Concurrent first touches may both parse,
// but LoadOrStore guarantees every caller converges on one shared
// statement object.
func (db *DB) parse(sql string) (SQLStmt, error) {
	if st, ok := db.planCache.Load(sql); ok {
		return st.(SQLStmt), nil
	}
	st, err := ParseSQL(sql)
	if err != nil {
		return nil, err
	}
	actual, _ := db.planCache.LoadOrStore(sql, st)
	return actual.(SQLStmt), nil
}

// ResultSet is the result of a query: column names plus rows.
type ResultSet struct {
	Cols []string
	Rows [][]val.Value
}

// Size estimates the wire size of the result set in bytes.
func (r *ResultSet) Size() int {
	n := 0
	for _, c := range r.Cols {
		n += len(c) + 5
	}
	for _, row := range r.Rows {
		n += val.SizeOfRow(row)
	}
	return n
}

// Prepare parses sql once (through the shared plan cache) and returns
// the immutable statement for repeated execution via ExecParsed /
// QueryParsed — the server half of the prepared-statement wire.
func (s *Session) Prepare(sql string) (SQLStmt, error) { return s.db.parse(sql) }

// Exec runs a DDL or DML statement. It returns the number of rows
// affected. Outside an explicit transaction the statement autocommits.
func (s *Session) Exec(sql string, args ...val.Value) (int, error) {
	st, err := s.db.parse(sql)
	if err != nil {
		return 0, err
	}
	return s.ExecParsed(st, args...)
}

// ExecParsed is Exec on a pre-parsed statement, skipping the plan
// cache entirely.
func (s *Session) ExecParsed(st SQLStmt, args ...val.Value) (int, error) {
	return s.execStmt(st, args)
}

// Query runs a SELECT and returns its result set.
func (s *Session) Query(sql string, args ...val.Value) (*ResultSet, error) {
	st, err := s.db.parse(sql)
	if err != nil {
		return nil, err
	}
	return s.QueryParsed(st, args...)
}

// QueryParsed is Query on a pre-parsed statement.
func (s *Session) QueryParsed(st SQLStmt, args ...val.Value) (*ResultSet, error) {
	sel, ok := st.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("sqldb: Query requires SELECT, got %T", st)
	}
	tables, aliases, err := s.db.resolveSelect(sel)
	if err != nil {
		return nil, err
	}
	if err := s.fenceGate(sel, args); err != nil {
		return nil, err
	}
	txn, auto := s.currentTxn()
	s.latch(false, tables...)
	rs, err := s.execSelect(txn, sel, tables, aliases, args)
	s.unlatch()
	s.finishAuto(txn, auto, err)
	return rs, err
}

// resolveSelect binds the FROM clause to tables under the catalog
// latch.
func (db *DB) resolveSelect(st *SelectStmt) ([]*Table, []string, error) {
	tables := make([]*Table, len(st.Tables))
	aliases := make([]string, len(st.Tables))
	for i, tr := range st.Tables {
		t := db.lookupTable(tr.Table)
		if t == nil {
			return nil, nil, fmt.Errorf("%w: %s", ErrNoSuchTable, tr.Table)
		}
		tables[i] = t
		aliases[i] = tr.Alias
	}
	return tables, aliases, nil
}

// currentTxn returns the session transaction or a fresh autocommit one.
func (s *Session) currentTxn() (*Txn, bool) {
	if s.txn != nil {
		return s.txn, false
	}
	return s.db.newTxn(), true
}

// finishAuto commits or rolls back an autocommit transaction. Called
// with no statement latches held (commit/rollback take their own).
func (s *Session) finishAuto(txn *Txn, auto bool, err error) {
	if !auto {
		if err != nil && errors.Is(err, ErrDeadlock) {
			// Deadlock aborts the whole transaction (MySQL semantics).
			s.db.rollback(txn)
			s.txn = nil
		}
		return
	}
	if err != nil {
		s.db.rollback(txn)
	} else {
		s.db.commit(txn)
	}
}

func (s *Session) execStmt(st SQLStmt, args []val.Value) (int, error) {
	if err := s.fenceGate(st, args); err != nil {
		return 0, err
	}
	switch t := st.(type) {
	case *CreateTableStmt:
		return 0, s.db.createTable(t)
	case *CreateIndexStmt:
		return 0, s.db.createIndex(t)
	case *InsertStmt:
		tb := s.db.lookupTable(t.Table)
		if tb == nil {
			return 0, fmt.Errorf("%w: %s", ErrNoSuchTable, t.Table)
		}
		txn, auto := s.currentTxn()
		s.latch(true, tb)
		n, err := s.execInsert(txn, tb, t, args)
		s.unlatch()
		s.finishAuto(txn, auto, err)
		return n, err
	case *UpdateStmt:
		tb := s.db.lookupTable(t.Table)
		if tb == nil {
			return 0, fmt.Errorf("%w: %s", ErrNoSuchTable, t.Table)
		}
		txn, auto := s.currentTxn()
		// A non-key update only swaps row pointers, so it can share the
		// table latch with readers; touching any indexed column needs
		// the structural latch exclusively. Decided under the read
		// latch (the index set cannot change while it is held
		// continuously); if a lock wait suspends the latch and a
		// concurrent CREATE INDEX invalidates the decision, execUpdate
		// reports errLatchUpgrade and the statement reruns exclusively.
		s.latch(false, tb)
		if updateNeedsX(tb, t) {
			s.unlatch()
			s.latch(true, tb)
		}
		n, err := s.execUpdate(txn, tb, t, args)
		if errors.Is(err, errLatchUpgrade) {
			s.unlatch()
			s.latch(true, tb)
			n, err = s.execUpdate(txn, tb, t, args)
		}
		s.unlatch()
		s.finishAuto(txn, auto, err)
		return n, err
	case *DeleteStmt:
		tb := s.db.lookupTable(t.Table)
		if tb == nil {
			return 0, fmt.Errorf("%w: %s", ErrNoSuchTable, t.Table)
		}
		txn, auto := s.currentTxn()
		s.latch(true, tb)
		n, err := s.execDelete(txn, tb, t, args)
		s.unlatch()
		s.finishAuto(txn, auto, err)
		return n, err
	case *SelectStmt:
		return 0, fmt.Errorf("sqldb: Exec cannot run SELECT; use Query")
	}
	return 0, fmt.Errorf("sqldb: unsupported statement %T", st)
}

// updateNeedsX reports whether st writes any indexed column of t.
// Caller holds t.latch in at least read mode.
func updateNeedsX(t *Table, st *UpdateStmt) bool {
	for _, set := range st.Sets {
		if ci, ok := t.colIdx[set.Col]; ok && isIndexedCol(t, ci) {
			return true
		}
	}
	return false
}

func normName(s string) string {
	// Identifiers are case-insensitive; the lexer upper-cases them.
	up := make([]byte, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'a' && c <= 'z' {
			c -= 'a' - 'A'
		}
		up[i] = c
	}
	return string(up)
}

func (db *DB) createTable(st *CreateTableStmt) error {
	db.catMu.Lock()
	defer db.catMu.Unlock()
	if _, exists := db.tables[st.Table]; exists {
		return fmt.Errorf("sqldb: table %s already exists", st.Table)
	}
	if len(st.PK) == 0 {
		return fmt.Errorf("sqldb: table %s requires a PRIMARY KEY", st.Table)
	}
	t := &Table{
		name:     st.Table,
		nameHash: fnv32(st.Table),
		cols:     st.Cols,
		colIdx:   map[string]int{},
		pk:       newBTree(),
	}
	for i, c := range st.Cols {
		if _, dup := t.colIdx[c.Name]; dup {
			return fmt.Errorf("sqldb: duplicate column %s.%s", st.Table, c.Name)
		}
		t.colIdx[c.Name] = i
	}
	for _, pkc := range st.PK {
		ci, ok := t.colIdx[pkc]
		if !ok {
			return fmt.Errorf("sqldb: primary key column %s not in table %s", pkc, st.Table)
		}
		t.pkCols = append(t.pkCols, ci)
	}
	db.tables[st.Table] = t
	return nil
}

func (db *DB) createIndex(st *CreateIndexStmt) error {
	t := db.lookupTable(st.Table)
	if t == nil {
		return fmt.Errorf("%w: %s", ErrNoSuchTable, st.Table)
	}
	ix := &index{name: st.Name, unique: st.Unique, tree: newBTree()}
	for _, cn := range st.Cols {
		ci, ok := t.colIdx[cn]
		if !ok {
			return fmt.Errorf("sqldb: index column %s not in table %s", cn, st.Table)
		}
		ix.cols = append(ix.cols, ci)
	}
	t.latch.Lock()
	defer t.latch.Unlock()
	for slot, row := range t.rows {
		if row != nil {
			ix.tree.Insert(t.keyFor(ix.cols, row, slot, ix.unique), slot)
		}
	}
	t.idxs = append(t.idxs, ix)
	return nil
}

// coerceCol converts v to the column type, or errors.
func coerceCol(v val.Value, ct ColType) (val.Value, error) {
	if v.K == val.Null {
		return v, nil
	}
	switch ct {
	case CInt:
		if v.K == val.Int {
			return v, nil
		}
		if v.K == val.Double {
			return val.IntV(int64(v.F)), nil
		}
	case CDouble:
		if v.K == val.Double {
			return v, nil
		}
		if v.K == val.Int {
			return val.DoubleV(float64(v.I)), nil
		}
	case CString:
		if v.K == val.Str {
			return v, nil
		}
	case CBool:
		if v.K == val.Bool {
			return v, nil
		}
	}
	return val.Value{}, fmt.Errorf("sqldb: cannot store %s into %s column", v.K, ct)
}
