package sqldb

import (
	"errors"
	"fmt"
	"sync"

	"pyxis/internal/val"
)

// Common engine errors.
var (
	ErrNoSuchTable   = errors.New("sqldb: no such table")
	ErrDupKey        = errors.New("sqldb: duplicate primary key")
	ErrTxnAborted    = errors.New("sqldb: transaction aborted")
	ErrNoTransaction = errors.New("sqldb: no transaction in progress")
	ErrInTransaction = errors.New("sqldb: transaction already in progress")
)

// Stats counts engine operations; the benchmark harness reads them to
// charge simulated CPU cost per database operation.
type Stats struct {
	Selects, Inserts, Updates, Deletes int64
	RowsScanned                        int64
}

// DB is an in-memory relational database. A single mutex serializes
// structural access; transaction isolation comes from the 2PL lock
// manager, whose waits happen outside the mutex so both goroutines and
// the discrete-event simulator can block on row locks.
type DB struct {
	mu        sync.Mutex
	tables    map[string]*Table
	lm        *lockManager
	planCache map[string]SQLStmt
	nextTxn   int64
	stats     Stats
}

// Open creates an empty database.
func Open() *DB {
	return &DB{
		tables:    map[string]*Table{},
		lm:        newLockManager(),
		planCache: map[string]SQLStmt{},
	}
}

// Stats returns a snapshot of operation counters.
func (db *DB) Stats() Stats {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.stats
}

// Snapshot returns every live row of every table, sorted by primary
// key, keyed by table name. Tests use it to compare database states.
func (db *DB) Snapshot() map[string][][]val.Value {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := map[string][][]val.Value{}
	for name, t := range db.tables {
		var rows [][]val.Value
		t.pk.Scan(nil, nil, func(_ []val.Value, slot int) bool {
			if t.rows[slot] != nil {
				rows = append(rows, append([]val.Value{}, t.rows[slot]...))
			}
			return true
		})
		out[name] = rows
	}
	return out
}

// LockWaits returns (waits, deadlocks) counters from the lock manager.
func (db *DB) LockWaits() (int64, int64) {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.lm.Waits, db.lm.Deadlocks
}

// Table is one relation: rows are stored in slots; a nil row is a
// tombstone. The primary key and all secondary indexes are B+trees.
type Table struct {
	db     *DB
	name   string
	cols   []ColumnDef
	colIdx map[string]int
	pkCols []int
	rows   [][]val.Value
	free   []int
	pk     *btree
	idxs   []*index
}

type index struct {
	name   string
	cols   []int
	unique bool
	tree   *btree
}

// NumRows returns the live row count (PK entries), synchronized
// against concurrent writers through the engine mutex.
func (t *Table) NumRows() int {
	t.db.mu.Lock()
	defer t.db.mu.Unlock()
	return t.pk.Len()
}

// Table returns a table by name, or nil. The handle is only a name
// binding: reads that must be consistent under concurrent writers go
// through methods that take the engine mutex (NumRows) or through a
// Session.
func (db *DB) Table(name string) *Table {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.tables[normName(name)]
}

// Txn is an in-flight transaction: held locks plus an undo log.
type Txn struct {
	id      int64
	locks   []lockKey
	undo    []undoRec
	freed   []freedSlot
	aborted bool
}

type freedSlot struct {
	t    *Table
	slot int
}

type undoKind uint8

const (
	uInsert undoKind = iota
	uUpdate
	uDelete
)

type undoRec struct {
	t      *Table
	kind   undoKind
	slot   int
	before []val.Value
}

// WaitPointFunc supplies a (wait, wake) pair used to block on
// contended locks: wait parks the caller, wake releases it. The
// default uses a channel; the simulator substitutes virtual-time
// parking.
type WaitPointFunc func() (wait func(), wake func())

func chanWaitPoint() (func(), func()) {
	ch := make(chan struct{})
	return func() { <-ch }, func() { close(ch) }
}

// Session is a client connection handle: it owns at most one open
// transaction. Statements executed outside a transaction autocommit.
type Session struct {
	db        *DB
	txn       *Txn
	WaitPoint WaitPointFunc
}

// NewSession creates a session on db.
func (db *DB) NewSession() *Session {
	return &Session{db: db, WaitPoint: chanWaitPoint}
}

// InTxn reports whether an explicit transaction is open.
func (s *Session) InTxn() bool { return s.txn != nil }

// Begin starts an explicit transaction.
func (s *Session) Begin() error {
	s.db.mu.Lock()
	defer s.db.mu.Unlock()
	if s.txn != nil {
		return ErrInTransaction
	}
	s.txn = s.db.newTxn()
	return nil
}

func (db *DB) newTxn() *Txn {
	db.nextTxn++
	return &Txn{id: db.nextTxn}
}

// Commit commits the open transaction, releasing its locks.
func (s *Session) Commit() error {
	s.db.mu.Lock()
	defer s.db.mu.Unlock()
	if s.txn == nil {
		return ErrNoTransaction
	}
	s.db.commit(s.txn)
	s.txn = nil
	return nil
}

// Rollback aborts the open transaction, undoing its effects.
func (s *Session) Rollback() error {
	s.db.mu.Lock()
	defer s.db.mu.Unlock()
	if s.txn == nil {
		return ErrNoTransaction
	}
	s.db.rollback(s.txn)
	s.txn = nil
	return nil
}

// commit finalizes txn under db.mu.
func (db *DB) commit(txn *Txn) {
	for _, f := range txn.freed {
		f.t.rows[f.slot] = nil
		f.t.free = append(f.t.free, f.slot)
	}
	db.lm.releaseAll(txn)
	txn.undo = nil
	txn.freed = nil
}

// rollback undoes txn's changes in reverse order under db.mu.
func (db *DB) rollback(txn *Txn) {
	for i := len(txn.undo) - 1; i >= 0; i-- {
		u := txn.undo[i]
		switch u.kind {
		case uInsert:
			u.t.dropFromIndexes(u.t.rows[u.slot], u.slot)
			u.t.rows[u.slot] = nil
			u.t.free = append(u.t.free, u.slot)
		case uUpdate:
			u.t.dropFromIndexes(u.t.rows[u.slot], u.slot)
			u.t.rows[u.slot] = u.before
			u.t.addToIndexes(u.before, u.slot)
		case uDelete:
			u.t.rows[u.slot] = u.before
			u.t.addToIndexes(u.before, u.slot)
		}
	}
	db.lm.cancelWaits(txn)
	db.lm.releaseAll(txn)
	txn.undo = nil
	txn.freed = nil
	txn.aborted = true
}

func (t *Table) keyFor(cols []int, row []val.Value, slot int, unique bool) []val.Value {
	key := make([]val.Value, 0, len(cols)+1)
	for _, c := range cols {
		key = append(key, row[c])
	}
	if !unique {
		key = append(key, val.IntV(int64(slot)))
	}
	return key
}

func (t *Table) addToIndexes(row []val.Value, slot int) {
	t.pk.Insert(t.keyFor(t.pkCols, row, slot, true), slot)
	for _, ix := range t.idxs {
		ix.tree.Insert(t.keyFor(ix.cols, row, slot, ix.unique), slot)
	}
}

func (t *Table) dropFromIndexes(row []val.Value, slot int) {
	t.pk.Delete(t.keyFor(t.pkCols, row, slot, true))
	for _, ix := range t.idxs {
		ix.tree.Delete(t.keyFor(ix.cols, row, slot, ix.unique))
	}
}

// acquireLock blocks (via the session's wait point) until txn holds
// key at mode, or returns ErrDeadlock.
func (s *Session) acquireLock(txn *Txn, key lockKey, mode LockMode) error {
	wait, wake := s.WaitPoint()
	ok, err := s.db.lm.acquire(txn, key, mode, wake)
	if err != nil {
		return err
	}
	if ok {
		return nil
	}
	s.db.mu.Unlock()
	wait()
	s.db.mu.Lock()
	return nil
}

// parse returns a cached parse of sql.
func (db *DB) parse(sql string) (SQLStmt, error) {
	if st, ok := db.planCache[sql]; ok {
		return st, nil
	}
	st, err := ParseSQL(sql)
	if err != nil {
		return nil, err
	}
	db.planCache[sql] = st
	return st, nil
}

// ResultSet is the result of a query: column names plus rows.
type ResultSet struct {
	Cols []string
	Rows [][]val.Value
}

// Size estimates the wire size of the result set in bytes.
func (r *ResultSet) Size() int {
	n := 0
	for _, c := range r.Cols {
		n += len(c) + 5
	}
	for _, row := range r.Rows {
		n += val.SizeOfRow(row)
	}
	return n
}

// Exec runs a DDL or DML statement. It returns the number of rows
// affected. Outside an explicit transaction the statement autocommits.
func (s *Session) Exec(sql string, args ...val.Value) (int, error) {
	s.db.mu.Lock()
	defer s.db.mu.Unlock()
	st, err := s.db.parse(sql)
	if err != nil {
		return 0, err
	}
	return s.execStmt(st, args)
}

// Query runs a SELECT and returns its result set.
func (s *Session) Query(sql string, args ...val.Value) (*ResultSet, error) {
	s.db.mu.Lock()
	defer s.db.mu.Unlock()
	st, err := s.db.parse(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("sqldb: Query requires SELECT, got %T", st)
	}
	txn, auto := s.currentTxn()
	rs, err := s.execSelect(txn, sel, args)
	s.finishAuto(txn, auto, err)
	return rs, err
}

// currentTxn returns the session transaction or a fresh autocommit one.
func (s *Session) currentTxn() (*Txn, bool) {
	if s.txn != nil {
		return s.txn, false
	}
	return s.db.newTxn(), true
}

// finishAuto commits or rolls back an autocommit transaction.
func (s *Session) finishAuto(txn *Txn, auto bool, err error) {
	if !auto {
		if err != nil && errors.Is(err, ErrDeadlock) {
			// Deadlock aborts the whole transaction (MySQL semantics).
			s.db.rollback(txn)
			s.txn = nil
		}
		return
	}
	if err != nil {
		s.db.rollback(txn)
	} else {
		s.db.commit(txn)
	}
}

func (s *Session) execStmt(st SQLStmt, args []val.Value) (int, error) {
	switch t := st.(type) {
	case *CreateTableStmt:
		return 0, s.db.createTable(t)
	case *CreateIndexStmt:
		return 0, s.db.createIndex(t)
	case *InsertStmt:
		txn, auto := s.currentTxn()
		n, err := s.execInsert(txn, t, args)
		s.finishAuto(txn, auto, err)
		return n, err
	case *UpdateStmt:
		txn, auto := s.currentTxn()
		n, err := s.execUpdate(txn, t, args)
		s.finishAuto(txn, auto, err)
		return n, err
	case *DeleteStmt:
		txn, auto := s.currentTxn()
		n, err := s.execDelete(txn, t, args)
		s.finishAuto(txn, auto, err)
		return n, err
	case *SelectStmt:
		return 0, fmt.Errorf("sqldb: Exec cannot run SELECT; use Query")
	}
	return 0, fmt.Errorf("sqldb: unsupported statement %T", st)
}

func normName(s string) string {
	// Identifiers are case-insensitive; the lexer upper-cases them.
	up := make([]byte, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'a' && c <= 'z' {
			c -= 'a' - 'A'
		}
		up[i] = c
	}
	return string(up)
}

func (db *DB) createTable(st *CreateTableStmt) error {
	if _, exists := db.tables[st.Table]; exists {
		return fmt.Errorf("sqldb: table %s already exists", st.Table)
	}
	if len(st.PK) == 0 {
		return fmt.Errorf("sqldb: table %s requires a PRIMARY KEY", st.Table)
	}
	t := &Table{
		db:     db,
		name:   st.Table,
		cols:   st.Cols,
		colIdx: map[string]int{},
		pk:     newBTree(),
	}
	for i, c := range st.Cols {
		if _, dup := t.colIdx[c.Name]; dup {
			return fmt.Errorf("sqldb: duplicate column %s.%s", st.Table, c.Name)
		}
		t.colIdx[c.Name] = i
	}
	for _, pkc := range st.PK {
		ci, ok := t.colIdx[pkc]
		if !ok {
			return fmt.Errorf("sqldb: primary key column %s not in table %s", pkc, st.Table)
		}
		t.pkCols = append(t.pkCols, ci)
	}
	db.tables[st.Table] = t
	return nil
}

func (db *DB) createIndex(st *CreateIndexStmt) error {
	t, ok := db.tables[st.Table]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchTable, st.Table)
	}
	ix := &index{name: st.Name, unique: st.Unique, tree: newBTree()}
	for _, cn := range st.Cols {
		ci, ok := t.colIdx[cn]
		if !ok {
			return fmt.Errorf("sqldb: index column %s not in table %s", cn, st.Table)
		}
		ix.cols = append(ix.cols, ci)
	}
	for slot, row := range t.rows {
		if row != nil {
			ix.tree.Insert(t.keyFor(ix.cols, row, slot, ix.unique), slot)
		}
	}
	t.idxs = append(t.idxs, ix)
	return nil
}

// coerceCol converts v to the column type, or errors.
func coerceCol(v val.Value, ct ColType) (val.Value, error) {
	if v.K == val.Null {
		return v, nil
	}
	switch ct {
	case CInt:
		if v.K == val.Int {
			return v, nil
		}
		if v.K == val.Double {
			return val.IntV(int64(v.F)), nil
		}
	case CDouble:
		if v.K == val.Double {
			return v, nil
		}
		if v.K == val.Int {
			return val.DoubleV(float64(v.I)), nil
		}
	case CString:
		if v.K == val.Str {
			return v, nil
		}
	case CBool:
		if v.K == val.Bool {
			return v, nil
		}
	}
	return val.Value{}, fmt.Errorf("sqldb: cannot store %s into %s column", v.K, ct)
}
