package sqldb

import (
	"fmt"
	"sort"
	"strings"

	"pyxis/internal/val"
)

// rowCtx binds table aliases to their current row during evaluation.
type rowCtx struct {
	aliases []string
	tables  []*Table
	rows    [][]val.Value
}

func (rc *rowCtx) lookup(cr ColRef) (val.Value, error) {
	for i, a := range rc.aliases {
		if cr.Table != "" && cr.Table != a {
			continue
		}
		if ci, ok := rc.tables[i].colIdx[cr.Col]; ok {
			if rc.rows[i] == nil {
				return val.Value{}, fmt.Errorf("sqldb: column %s not bound yet", cr.Col)
			}
			return rc.rows[i][ci], nil
		}
		if cr.Table != "" {
			return val.Value{}, fmt.Errorf("sqldb: no column %s in %s", cr.Col, cr.Table)
		}
	}
	return val.Value{}, fmt.Errorf("sqldb: unknown column %s", cr.Col)
}

func evalSQL(e SQLExpr, rc *rowCtx, args []val.Value) (val.Value, error) {
	switch x := e.(type) {
	case LitExpr:
		return x.V, nil
	case ParamExpr:
		if x.Index >= len(args) {
			return val.Value{}, fmt.Errorf("sqldb: missing parameter %d", x.Index+1)
		}
		return args[x.Index], nil
	case ColRef:
		return rc.lookup(x)
	case *ArithExpr:
		l, err := evalSQL(x.L, rc, args)
		if err != nil {
			return val.Value{}, err
		}
		r, err := evalSQL(x.R, rc, args)
		if err != nil {
			return val.Value{}, err
		}
		if l.K == val.Int && r.K == val.Int {
			switch x.Op {
			case '+':
				return val.IntV(l.I + r.I), nil
			case '-':
				return val.IntV(l.I - r.I), nil
			case '*':
				return val.IntV(l.I * r.I), nil
			}
		}
		lf, rf := l.AsFloat(), r.AsFloat()
		switch x.Op {
		case '+':
			return val.DoubleV(lf + rf), nil
		case '-':
			return val.DoubleV(lf - rf), nil
		case '*':
			return val.DoubleV(lf * rf), nil
		}
	}
	return val.Value{}, fmt.Errorf("sqldb: cannot evaluate expression %T", e)
}

func condHolds(c Cond, rc *rowCtx, args []val.Value) (bool, error) {
	l, err := evalSQL(c.L, rc, args)
	if err != nil {
		return false, err
	}
	r, err := evalSQL(c.R, rc, args)
	if err != nil {
		return false, err
	}
	if c.Op == CmpLike {
		if l.K != val.Str || r.K != val.Str {
			return false, nil
		}
		return likeMatch(l.S, r.S), nil
	}
	cmp := val.Compare(l, r)
	switch c.Op {
	case CmpEq:
		return l.Equal(r), nil
	case CmpNe:
		return !l.Equal(r), nil
	case CmpLt:
		return cmp < 0, nil
	case CmpLe:
		return cmp <= 0, nil
	case CmpGt:
		return cmp > 0, nil
	case CmpGe:
		return cmp >= 0, nil
	}
	return false, fmt.Errorf("sqldb: bad comparison op")
}

// likeMatch implements SQL LIKE with % wildcards (no '_' support).
func likeMatch(s, pat string) bool {
	parts := strings.Split(pat, "%")
	if len(parts) == 1 {
		return s == pat
	}
	if !strings.HasPrefix(s, parts[0]) {
		return false
	}
	s = s[len(parts[0]):]
	for i := 1; i < len(parts)-1; i++ {
		p := parts[i]
		if p == "" {
			continue
		}
		idx := strings.Index(s, p)
		if idx < 0 {
			return false
		}
		s = s[idx+len(p):]
	}
	last := parts[len(parts)-1]
	return strings.HasSuffix(s, last)
}

// ---------------------------------------------------------------------------
// INSERT / UPDATE / DELETE
// ---------------------------------------------------------------------------

// execInsert runs under t's exclusive latch (slot allocation and index
// insertion are structural).
func (s *Session) execInsert(txn *Txn, t *Table, st *InsertStmt, args []val.Value) (int, error) {
	s.db.stats.inserts.Add(1)
	row := make([]val.Value, len(t.cols))
	if len(st.Cols) == 0 {
		if len(st.Vals) != len(t.cols) {
			return 0, fmt.Errorf("sqldb: INSERT into %s: want %d values, got %d", t.name, len(t.cols), len(st.Vals))
		}
		for i, e := range st.Vals {
			v, err := evalSQL(e, nil, args)
			if err != nil {
				return 0, err
			}
			row[i], err = coerceCol(v, t.cols[i].Type)
			if err != nil {
				return 0, err
			}
		}
	} else {
		if len(st.Cols) != len(st.Vals) {
			return 0, fmt.Errorf("sqldb: INSERT column/value count mismatch")
		}
		for i, cn := range st.Cols {
			ci, ok := t.colIdx[cn]
			if !ok {
				return 0, fmt.Errorf("sqldb: no column %s in %s", cn, t.name)
			}
			v, err := evalSQL(st.Vals[i], nil, args)
			if err != nil {
				return 0, err
			}
			row[ci], err = coerceCol(v, t.cols[ci].Type)
			if err != nil {
				return 0, err
			}
		}
	}

	pkKey := t.keyFor(t.pkCols, row, 0, true)
	if _, exists := t.pk.Get(pkKey); exists {
		return 0, fmt.Errorf("%w: %s %v", ErrDupKey, t.name, pkKey)
	}

	// Reserve a slot but do NOT publish the row until its X lock is
	// held: a recycled slot can carry lock waiters from its previous
	// row, and acquireLock suspends the table latch while parked, so an
	// early-published row would be visible (and lockable) by others
	// before this transaction owns it.
	var slot int
	if n := len(t.free); n > 0 {
		slot = t.free[n-1]
		t.free = t.free[:n-1]
	} else {
		slot = len(t.rows)
		t.rows = append(t.rows, nil)
	}
	if err := s.acquireLock(txn, t.lockKey(slot), LockX); err != nil {
		// No wait happened (errors are only returned pre-enqueue), so
		// the latch was held throughout and the slot can be recycled.
		t.free = append(t.free, slot)
		return 0, err
	}
	// The lock wait (if any) suspended the latch: another transaction
	// may have inserted the same key meanwhile.
	if _, exists := t.pk.Get(pkKey); exists {
		// The reserved slot stays X-locked until transaction end;
		// commit and rollback both recycle it.
		txn.reserved = append(txn.reserved, freedSlot{t: t, slot: slot})
		return 0, fmt.Errorf("%w: %s %v", ErrDupKey, t.name, pkKey)
	}
	t.rows[slot] = row
	t.addToIndexes(row, slot)
	txn.undo = append(txn.undo, undoRec{t: t, kind: uInsert, slot: slot})
	return 1, nil
}

// matchSlots finds the slots of t whose rows satisfy conds, locking
// each matching row at mode. Predicates are re-checked after each lock
// wait (the row may have changed while blocked). Caller holds t's
// latch in at least read mode; row pointers are read through the slot
// stripes so concurrent non-key updaters under the shared latch are
// safe.
func (s *Session) matchSlots(txn *Txn, t *Table, alias string, conds []Cond, args []val.Value, mode LockMode) ([]int, error) {
	db := s.db
	rc := &rowCtx{aliases: []string{alias}, tables: []*Table{t}, rows: [][]val.Value{nil}}

	check := func(slot int) (bool, error) {
		row := t.rowAt(slot)
		if row == nil {
			return false, nil
		}
		rc.rows[0] = row
		for _, c := range conds {
			ok, err := condHolds(c, rc, args)
			if err != nil {
				return false, err
			}
			if !ok {
				return false, nil
			}
		}
		return true, nil
	}

	var candidates []int
	ap := choosePath(t, alias, conds, args)
	if ap != nil {
		key := make([]val.Value, len(ap.eqExprs))
		for i, e := range ap.eqExprs {
			v, err := evalSQL(e, nil, args)
			if err != nil {
				return nil, err
			}
			key[i] = v
		}
		ap.tree.Scan(key, key, func(_ []val.Value, slot int) bool {
			candidates = append(candidates, slot)
			return true
		})
		db.stats.rowsScanned.Add(int64(len(candidates)))
	} else {
		for slot := 0; slot < len(t.rows); slot++ {
			if t.rowAt(slot) != nil {
				candidates = append(candidates, slot)
			}
		}
		db.stats.rowsScanned.Add(int64(len(candidates)))
	}

	var out []int
	for _, slot := range candidates {
		ok, err := check(slot)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		if err := s.acquireLock(txn, t.lockKey(slot), mode); err != nil {
			return nil, err
		}
		// Re-check after a potential wait.
		ok, err = check(slot)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, slot)
		}
	}
	return out, nil
}

// accessPath is an index-equality lookup plan.
type accessPath struct {
	tree    *btree
	eqExprs []SQLExpr // expressions producing the key prefix, in index order
}

// choosePath picks the index (PK or secondary) with the longest
// equality-bound prefix. Only conditions whose other side is free of
// column references (literal/param) qualify.
func choosePath(t *Table, alias string, conds []Cond, args []val.Value) *accessPath {
	eq := map[int]SQLExpr{} // column -> binding expression
	for _, c := range conds {
		if c.Op != CmpEq {
			continue
		}
		if cr, ok := c.L.(ColRef); ok && (cr.Table == "" || cr.Table == alias) && exprIsBound(c.R) {
			if ci, ok := t.colIdx[cr.Col]; ok {
				eq[ci] = c.R
			}
		} else if cr, ok := c.R.(ColRef); ok && (cr.Table == "" || cr.Table == alias) && exprIsBound(c.L) {
			if ci, ok := t.colIdx[cr.Col]; ok {
				eq[ci] = c.L
			}
		}
	}
	if len(eq) == 0 {
		return nil
	}
	best := (*accessPath)(nil)
	bestLen := 0
	consider := func(tree *btree, cols []int) {
		var exprs []SQLExpr
		for _, ci := range cols {
			e, ok := eq[ci]
			if !ok {
				break
			}
			exprs = append(exprs, e)
		}
		if len(exprs) > bestLen {
			best = &accessPath{tree: tree, eqExprs: exprs}
			bestLen = len(exprs)
		}
	}
	consider(t.pk, t.pkCols)
	for _, ix := range t.idxs {
		consider(ix.tree, ix.cols)
	}
	return best
}

func exprIsBound(e SQLExpr) bool {
	switch x := e.(type) {
	case LitExpr, ParamExpr:
		return true
	case *ArithExpr:
		return exprIsBound(x.L) && exprIsBound(x.R)
	}
	return false
}

// execUpdate runs under t's latch: exclusive when any set column is
// indexed (index maintenance is structural), shared otherwise (a
// non-key update only installs a fresh row pointer via its stripe).
func (s *Session) execUpdate(txn *Txn, t *Table, st *UpdateStmt, args []val.Value) (int, error) {
	s.db.stats.updates.Add(1)
	slots, err := s.matchSlots(txn, t, st.Table, st.Where, args, LockX)
	if err != nil {
		return 0, err
	}
	// matchSlots may have suspended the latch across a lock wait, and a
	// CREATE INDEX can have slipped in — the shared-latch decision must
	// be revalidated before mutating anything (no side effects exist
	// yet; the X row locks persist across the restart). errLatchUpgrade
	// makes execStmt rerun this statement under the exclusive latch.
	if !s.heldX && updateNeedsX(t, st) {
		return 0, errLatchUpgrade
	}
	rc := &rowCtx{aliases: []string{st.Table}, tables: []*Table{t}, rows: [][]val.Value{nil}}
	for _, slot := range slots {
		old := t.rowAt(slot)
		rc.rows[0] = old
		newRow := append([]val.Value{}, old...)
		keyChanged := false
		for _, set := range st.Sets {
			ci, ok := t.colIdx[set.Col]
			if !ok {
				return 0, fmt.Errorf("sqldb: no column %s in %s", set.Col, t.name)
			}
			v, err := evalSQL(set.Expr, rc, args)
			if err != nil {
				return 0, err
			}
			cv, err := coerceCol(v, t.cols[ci].Type)
			if err != nil {
				return 0, err
			}
			newRow[ci] = cv
			if isIndexedCol(t, ci) {
				keyChanged = true
			}
		}
		txn.undo = append(txn.undo, undoRec{t: t, kind: uUpdate, slot: slot, before: old})
		if keyChanged {
			// updateNeedsX guaranteed the exclusive latch for this case.
			t.dropFromIndexes(old, slot)
			t.rows[slot] = newRow
			t.addToIndexes(newRow, slot)
		} else {
			t.setRow(slot, newRow)
		}
	}
	return len(slots), nil
}

func isIndexedCol(t *Table, ci int) bool {
	for _, c := range t.pkCols {
		if c == ci {
			return true
		}
	}
	for _, ix := range t.idxs {
		for _, c := range ix.cols {
			if c == ci {
				return true
			}
		}
	}
	return false
}

// execDelete runs under t's exclusive latch (tombstoning drops index
// entries).
func (s *Session) execDelete(txn *Txn, t *Table, st *DeleteStmt, args []val.Value) (int, error) {
	s.db.stats.deletes.Add(1)
	slots, err := s.matchSlots(txn, t, st.Table, st.Where, args, LockX)
	if err != nil {
		return 0, err
	}
	for _, slot := range slots {
		old := t.rows[slot]
		t.dropFromIndexes(old, slot)
		txn.undo = append(txn.undo, undoRec{t: t, kind: uDelete, slot: slot, before: old})
		// Tombstone now; the slot is recycled only at commit so rollback
		// can restore in place.
		t.rows[slot] = nil
		txn.freed = append(txn.freed, freedSlot{t: t, slot: slot})
	}
	return len(slots), nil
}

// ---------------------------------------------------------------------------
// SELECT
// ---------------------------------------------------------------------------

// execSelect runs the (pre-resolved) SELECT under shared latches on
// every FROM table, held by the caller.
func (s *Session) execSelect(txn *Txn, st *SelectStmt, tables []*Table, aliases []string, args []val.Value) (*ResultSet, error) {
	s.db.stats.selects.Add(1)
	rs := &ResultSet{}
	agg := false
	resolves := func(cr ColRef) bool {
		for i, a := range aliases {
			if cr.Table != "" && cr.Table != a {
				continue
			}
			if hasCol(tables[i], cr.Col) {
				return true
			}
		}
		return false
	}
	for _, sc := range st.Cols {
		if sc.Agg != "" {
			agg = true
		}
		if !sc.Star && sc.Col.Col != "" && !resolves(sc.Col) {
			return nil, fmt.Errorf("sqldb: unknown column %s", sc.Col.Col)
		}
	}
	for _, ok := range st.OrderBy {
		if !resolves(ok.Col) {
			return nil, fmt.Errorf("sqldb: unknown ORDER BY column %s", ok.Col.Col)
		}
	}
	for _, sc := range st.Cols {
		switch {
		case sc.Star:
			for i, t := range tables {
				for _, c := range t.cols {
					_ = i
					rs.Cols = append(rs.Cols, c.Name)
				}
			}
		case sc.Agg != "":
			if sc.Col.Col == "" {
				rs.Cols = append(rs.Cols, sc.Agg+"(*)")
			} else {
				rs.Cols = append(rs.Cols, sc.Agg+"("+sc.Col.Col+")")
			}
		default:
			rs.Cols = append(rs.Cols, sc.Col.Col)
		}
	}

	// Nested-loop join over the tables in FROM order. At each level,
	// conditions fully bound by the tables joined so far act as the
	// level's filter; index lookups use equality conditions bound by
	// earlier levels.
	rc := &rowCtx{aliases: aliases, tables: tables, rows: make([][]val.Value, len(tables))}
	var joined [][]val.Value // accumulated result rows (pre order/limit)
	var sortKeys [][]val.Value

	condLevel := make([]int, len(st.Where))
	for ci, c := range st.Where {
		condLevel[ci] = condDepth(c, aliases, tables)
	}

	var descend func(level int) error
	descend = func(level int) error {
		if level == len(tables) {
			out := projectRow(st, rc, tables)
			joined = append(joined, out)
			if len(st.OrderBy) > 0 {
				key := make([]val.Value, len(st.OrderBy))
				for i, ok := range st.OrderBy {
					v, err := rc.lookup(ok.Col)
					if err != nil {
						return err
					}
					key[i] = v
				}
				sortKeys = append(sortKeys, key)
			}
			return nil
		}
		t := tables[level]
		var levelConds []Cond
		for ci, c := range st.Where {
			if condLevel[ci] == level {
				levelConds = append(levelConds, c)
			}
		}
		slots, err := s.matchJoin(txn, rc, t, aliases[level], level, levelConds, args)
		if err != nil {
			return err
		}
		for _, slot := range slots {
			rc.rows[level] = t.rowAt(slot)
			if rc.rows[level] == nil {
				continue
			}
			if err := descend(level + 1); err != nil {
				return err
			}
		}
		rc.rows[level] = nil
		return nil
	}
	if err := descend(0); err != nil {
		return nil, err
	}

	if agg {
		row, err := computeAggregates(st, joined, rs.Cols)
		if err != nil {
			return nil, err
		}
		rs.Rows = [][]val.Value{row}
		return rs, nil
	}

	if len(st.OrderBy) > 0 {
		idx := make([]int, len(joined))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool {
			ka, kb := sortKeys[idx[a]], sortKeys[idx[b]]
			for i, okey := range st.OrderBy {
				c := val.Compare(ka[i], kb[i])
				if c == 0 {
					continue
				}
				if okey.Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
		sorted := make([][]val.Value, len(joined))
		for i, j := range idx {
			sorted[i] = joined[j]
		}
		joined = sorted
	}
	if st.Limit >= 0 && len(joined) > st.Limit {
		joined = joined[:st.Limit]
	}
	rs.Rows = joined
	return rs, nil
}

// condDepth returns the highest table level a condition references
// (the level at which it becomes fully bound).
func condDepth(c Cond, aliases []string, tables []*Table) int {
	depth := 0
	var visit func(e SQLExpr)
	visit = func(e SQLExpr) {
		switch x := e.(type) {
		case ColRef:
			for i, a := range aliases {
				if x.Table == a || (x.Table == "" && hasCol(tables[i], x.Col)) {
					if i > depth {
						depth = i
					}
					return
				}
			}
		case *ArithExpr:
			visit(x.L)
			visit(x.R)
		}
	}
	visit(c.L)
	visit(c.R)
	return depth
}

func hasCol(t *Table, col string) bool {
	_, ok := t.colIdx[col]
	return ok
}

// matchJoin finds slots of t at the given join level satisfying conds
// (whose earlier-level column references are already bound in rc),
// S-locking matches.
func (s *Session) matchJoin(txn *Txn, rc *rowCtx, t *Table, alias string, level int, conds []Cond, args []val.Value) ([]int, error) {
	db := s.db
	check := func(slot int) (bool, error) {
		row := t.rowAt(slot)
		if row == nil {
			return false, nil
		}
		rc.rows[level] = row
		for _, c := range conds {
			ok, err := condHolds(c, rc, args)
			if err != nil {
				return false, err
			}
			if !ok {
				return false, nil
			}
		}
		return true, nil
	}

	// Index path: equality conditions whose other side is bound by
	// params/literals or earlier levels.
	eq := map[int]SQLExpr{}
	for _, c := range conds {
		if c.Op != CmpEq {
			continue
		}
		if cr, ok := c.L.(ColRef); ok && refersTo(cr, alias, t) && boundBefore(c.R, level, rc) {
			if ci, ok := t.colIdx[cr.Col]; ok {
				eq[ci] = c.R
			}
		} else if cr, ok := c.R.(ColRef); ok && refersTo(cr, alias, t) && boundBefore(c.L, level, rc) {
			if ci, ok := t.colIdx[cr.Col]; ok {
				eq[ci] = c.L
			}
		}
	}
	var candidates []int
	found := false
	if len(eq) > 0 {
		var bestTree *btree
		var bestExprs []SQLExpr
		consider := func(tree *btree, cols []int) {
			var exprs []SQLExpr
			for _, ci := range cols {
				e, ok := eq[ci]
				if !ok {
					break
				}
				exprs = append(exprs, e)
			}
			if len(exprs) > len(bestExprs) {
				bestTree, bestExprs = tree, exprs
			}
		}
		consider(t.pk, t.pkCols)
		for _, ix := range t.idxs {
			consider(ix.tree, ix.cols)
		}
		if bestTree != nil {
			key := make([]val.Value, len(bestExprs))
			for i, e := range bestExprs {
				v, err := evalSQL(e, rc, args)
				if err != nil {
					return nil, err
				}
				key[i] = v
			}
			bestTree.Scan(key, key, func(_ []val.Value, slot int) bool {
				candidates = append(candidates, slot)
				return true
			})
			found = true
		}
	}
	if !found {
		for slot := 0; slot < len(t.rows); slot++ {
			if t.rowAt(slot) != nil {
				candidates = append(candidates, slot)
			}
		}
	}
	db.stats.rowsScanned.Add(int64(len(candidates)))

	var out []int
	for _, slot := range candidates {
		ok, err := check(slot)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		if err := s.acquireLock(txn, t.lockKey(slot), LockS); err != nil {
			return nil, err
		}
		ok, err = check(slot)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, slot)
		}
	}
	return out, nil
}

func refersTo(cr ColRef, alias string, t *Table) bool {
	if cr.Table != "" {
		return cr.Table == alias
	}
	return hasCol(t, cr.Col)
}

// boundBefore reports whether e only references tables at levels < level.
func boundBefore(e SQLExpr, level int, rc *rowCtx) bool {
	switch x := e.(type) {
	case LitExpr, ParamExpr:
		return true
	case ColRef:
		for i, a := range rc.aliases {
			if x.Table == a || (x.Table == "" && hasCol(rc.tables[i], x.Col)) {
				return i < level
			}
		}
		return false
	case *ArithExpr:
		return boundBefore(x.L, level, rc) && boundBefore(x.R, level, rc)
	}
	return false
}

func projectRow(st *SelectStmt, rc *rowCtx, tables []*Table) []val.Value {
	var out []val.Value
	for _, sc := range st.Cols {
		switch {
		case sc.Star:
			for i := range tables {
				out = append(out, rc.rows[i]...)
			}
		case sc.Agg != "":
			// Aggregates project the raw column value; computeAggregates
			// folds them afterwards. COUNT(*) needs no value.
			if sc.Col.Col != "" {
				v, _ := rc.lookup(sc.Col)
				out = append(out, v)
			} else {
				out = append(out, val.IntV(1))
			}
		default:
			v, _ := rc.lookup(sc.Col)
			out = append(out, v)
		}
	}
	return out
}

func computeAggregates(st *SelectStmt, rows [][]val.Value, cols []string) ([]val.Value, error) {
	out := make([]val.Value, len(st.Cols))
	for i, sc := range st.Cols {
		if sc.Agg == "" {
			return nil, fmt.Errorf("sqldb: mixing aggregates and plain columns requires GROUP BY (unsupported)")
		}
		switch sc.Agg {
		case "COUNT":
			out[i] = val.IntV(int64(len(rows)))
		case "SUM", "AVG":
			sum := 0.0
			isInt := true
			for _, r := range rows {
				if r[i].K == val.Double {
					isInt = false
				}
				sum += r[i].AsFloat()
			}
			if sc.Agg == "AVG" {
				if len(rows) == 0 {
					out[i] = val.NullV()
				} else {
					out[i] = val.DoubleV(sum / float64(len(rows)))
				}
			} else if isInt {
				out[i] = val.IntV(int64(sum))
			} else {
				out[i] = val.DoubleV(sum)
			}
		case "MIN", "MAX":
			if len(rows) == 0 {
				out[i] = val.NullV()
				continue
			}
			best := rows[0][i]
			for _, r := range rows[1:] {
				c := val.Compare(r[i], best)
				if (sc.Agg == "MIN" && c < 0) || (sc.Agg == "MAX" && c > 0) {
					best = r[i]
				}
			}
			out[i] = best
		default:
			return nil, fmt.Errorf("sqldb: unsupported aggregate %s", sc.Agg)
		}
	}
	return out, nil
}
