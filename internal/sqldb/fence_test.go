package sqldb

import (
	"errors"
	"testing"
	"time"

	"pyxis/internal/val"
)

func fenceTestDB(t *testing.T) *DB {
	t.Helper()
	db := Open()
	s := db.NewSession()
	mustExec := func(sql string, args ...val.Value) {
		if _, err := s.Exec(sql, args...); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	mustExec("CREATE TABLE acct (w_id INT, bal INT, PRIMARY KEY (w_id))")
	for w := int64(1); w <= 6; w++ {
		mustExec("INSERT INTO acct VALUES (?, ?)", val.IntV(w), val.IntV(100*w))
	}
	return db
}

func acctFence(lo, hi int64) FenceSpec {
	return FenceSpec{Tables: map[string]string{"acct": "w_id"}, Lo: lo, Hi: hi}
}

func TestFenceBlocksRangeOnly(t *testing.T) {
	db := fenceTestDB(t)
	tok, err := db.ArmFence(acctFence(2, 3), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	s := db.NewSession()
	// In-range write and read both refuse with the retryable sentinel.
	if _, err := s.Exec("UPDATE acct SET bal = 0 WHERE w_id = ?", val.IntV(2)); !errors.Is(err, ErrRangeFenced) {
		t.Fatalf("in-range update: got %v, want ErrRangeFenced", err)
	}
	if _, err := s.Query("SELECT bal FROM acct WHERE w_id = ?", val.IntV(3)); !errors.Is(err, ErrRangeFenced) {
		t.Fatalf("in-range select: got %v, want ErrRangeFenced", err)
	}
	// A keyless write on a fenced table is conservatively refused; a
	// keyless read (whole-table audit) passes.
	if _, err := s.Exec("UPDATE acct SET bal = 0 WHERE bal = ?", val.IntV(999)); !errors.Is(err, ErrRangeFenced) {
		t.Fatalf("keyless update: got %v, want ErrRangeFenced", err)
	}
	if _, err := s.Query("SELECT COUNT(*) FROM acct"); err != nil {
		t.Fatalf("keyless select: %v", err)
	}
	// Out-of-range traffic is untouched.
	if _, err := s.Exec("UPDATE acct SET bal = ? WHERE w_id = ?", val.IntV(7), val.IntV(5)); err != nil {
		t.Fatalf("out-of-range update: %v", err)
	}
	if err := db.ReleaseFence(tok, false); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("UPDATE acct SET bal = 1 WHERE w_id = ?", val.IntV(2)); err != nil {
		t.Fatalf("post-release update: %v", err)
	}
}

func TestFenceAdoptionExemptsMigrator(t *testing.T) {
	db := fenceTestDB(t)
	tok, err := db.ArmFence(acctFence(1, 2), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	mig := db.NewSession()
	mig.AdoptFence(tok)
	if _, err := mig.Query("SELECT bal FROM acct WHERE w_id = ?", val.IntV(1)); err != nil {
		t.Fatalf("adopted select: %v", err)
	}
	if _, err := mig.Exec("DELETE FROM acct WHERE w_id = ?", val.IntV(1)); err != nil {
		t.Fatalf("adopted delete: %v", err)
	}
	other := db.NewSession()
	if _, err := other.Exec("DELETE FROM acct WHERE w_id = ?", val.IntV(2)); !errors.Is(err, ErrRangeFenced) {
		t.Fatalf("unadopted delete: got %v, want ErrRangeFenced", err)
	}
}

func TestFenceMovedTombstone(t *testing.T) {
	db := fenceTestDB(t)
	tok, err := db.ArmFence(acctFence(5, 6), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.ReleaseFence(tok, true); err != nil {
		t.Fatal(err)
	}
	s := db.NewSession()
	if _, err := s.Query("SELECT bal FROM acct WHERE w_id = ?", val.IntV(5)); !errors.Is(err, ErrRangeMoved) {
		t.Fatalf("moved select: got %v, want ErrRangeMoved", err)
	}
	if _, err := s.Exec("INSERT INTO acct VALUES (?, ?)", val.IntV(6), val.IntV(0)); !errors.Is(err, ErrRangeMoved) {
		t.Fatalf("moved insert: got %v, want ErrRangeMoved", err)
	}
	// The tombstone is permanent and survives a later fence cycle on a
	// different range.
	tok2, err := db.ArmFence(acctFence(1, 1), time.Minute)
	if err != nil {
		t.Fatalf("second fence after tombstone: %v", err)
	}
	if err := db.ReleaseFence(tok2, false); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Query("SELECT bal FROM acct WHERE w_id = ?", val.IntV(5)); !errors.Is(err, ErrRangeMoved) {
		t.Fatalf("tombstone lost after second fence: %v", err)
	}
	if _, err := s.Query("SELECT bal FROM acct WHERE w_id = ?", val.IntV(4)); err != nil {
		t.Fatalf("unmoved key: %v", err)
	}
}

// TestFenceTTLExpiry is the abandoned-coordinator case: the fence is
// armed and never released (the migrator died between FENCE and
// CUTOVER), so the deadline must release it lazily.
func TestFenceTTLExpiry(t *testing.T) {
	db := fenceTestDB(t)
	if _, err := db.ArmFence(acctFence(1, 6), 30*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	s := db.NewSession()
	if _, err := s.Exec("UPDATE acct SET bal = 0 WHERE w_id = ?", val.IntV(1)); !errors.Is(err, ErrRangeFenced) {
		t.Fatalf("pre-expiry: got %v, want ErrRangeFenced", err)
	}
	time.Sleep(50 * time.Millisecond)
	if _, err := s.Exec("UPDATE acct SET bal = 0 WHERE w_id = ?", val.IntV(1)); err != nil {
		t.Fatalf("post-expiry update should pass: %v", err)
	}
	if armed, _ := db.FenceArmed(); armed {
		t.Fatal("fence still armed after TTL expiry")
	}
	// A fresh fence can arm over the expired one even before any
	// statement cleared it.
	if _, err := db.ArmFence(acctFence(1, 2), time.Minute); err != nil {
		t.Fatalf("re-arm after expiry: %v", err)
	}
}

func TestFenceDoubleArmRefused(t *testing.T) {
	db := fenceTestDB(t)
	tok, err := db.ArmFence(acctFence(1, 2), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.ArmFence(acctFence(3, 4), time.Minute); !errors.Is(err, ErrFenceBusy) {
		t.Fatalf("double arm: got %v, want ErrFenceBusy", err)
	}
	if err := db.ReleaseFence(tok+99, false); !errors.Is(err, ErrFenceToken) {
		t.Fatalf("bad token release: got %v, want ErrFenceToken", err)
	}
	if err := db.ReleaseFence(tok, false); err != nil {
		t.Fatal(err)
	}
}
