package sqldb

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"pyxis/internal/val"
)

// lockDB builds a two-table database for lock-manager scenarios.
func lockDB(t *testing.T) *DB {
	t.Helper()
	db := Open()
	s := db.NewSession()
	mustExec(t, s, "CREATE TABLE a (k INT PRIMARY KEY, v INT)")
	mustExec(t, s, "CREATE TABLE b (k INT PRIMARY KEY, v INT)")
	for i := 1; i <= 8; i++ {
		mustExec(t, s, "INSERT INTO a VALUES (?, 0)", val.IntV(int64(i)))
		mustExec(t, s, "INSERT INTO b VALUES (?, 0)", val.IntV(int64(i)))
	}
	return db
}

// TestLockManagerConcurrency is the table-driven concurrency suite for
// the striped lock manager: upgrades, writer conflicts, and a forced
// deadlock that must resolve by aborting one transaction rather than
// hanging. Run it under -race; the CI race job runs it with -count=2
// to shake out flaky interleavings.
func TestLockManagerConcurrency(t *testing.T) {
	cases := []struct {
		name string
		run  func(t *testing.T, db *DB)
	}{
		{"SXUpgradeSoleHolder", testSXUpgradeSoleHolder},
		{"SXUpgradeContendedWriter", testSXUpgradeContendedWriter},
		{"ConflictingWritersSerialize", testConflictingWritersSerialize},
		{"ForcedDeadlockResolves", testForcedDeadlockResolves},
		{"CrossTableDeadlockResolves", testCrossTableDeadlockResolves},
		{"QueuedUpgradeGrantedOnRelease", testQueuedUpgradeGrantedOnRelease},
		{"SoleHolderUpgradeJumpsNonEmptyQueue", testSoleHolderUpgradeJumpsNonEmptyQueue},
		{"PreparedTxnPinsLocks", testPreparedTxnPinsLocks},
		{"PreparedTxnRefusesDeadlockAbort", testPreparedTxnRefusesDeadlockAbort},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tc.run(t, lockDB(t))
		})
	}
}

// testSXUpgradeSoleHolder: a transaction that read a row (S) upgrades
// to X on the same row without deadlocking itself.
func testSXUpgradeSoleHolder(t *testing.T, db *DB) {
	s := db.NewSession()
	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	mustQuery(t, s, "SELECT v FROM a WHERE k = 1") // S lock
	mustExec(t, s, "UPDATE a SET v = 7 WHERE k = 1")
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	rs := mustQuery(t, s, "SELECT v FROM a WHERE k = 1")
	if rs.Rows[0][0].I != 7 {
		t.Errorf("v = %v, want 7", rs.Rows[0][0])
	}
}

// testSXUpgradeContendedWriter: while t1 holds S, a writer queues for
// X; t1's own S→X upgrade must still be granted (it jumps the queue —
// the queued X could not run anyway), and the writer proceeds after t1
// commits.
func testSXUpgradeContendedWriter(t *testing.T, db *DB) {
	s1, s2 := db.NewSession(), db.NewSession()
	if err := s1.Begin(); err != nil {
		t.Fatal(err)
	}
	mustQuery(t, s1, "SELECT v FROM a WHERE k = 2") // t1: S

	writerDone := make(chan error, 1)
	go func() {
		_, err := s2.Exec("UPDATE a SET v = 100 WHERE k = 2") // queues for X
		writerDone <- err
	}()
	waitForWaiters(t, db, 1)

	mustExec(t, s1, "UPDATE a SET v = 1 WHERE k = 2") // S→X upgrade
	if err := s1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-writerDone; err != nil {
		t.Fatalf("queued writer: %v", err)
	}
	rs := mustQuery(t, s1, "SELECT v FROM a WHERE k = 2")
	if rs.Rows[0][0].I != 100 {
		t.Errorf("v = %v, want 100 (writer applied after upgrade holder committed)", rs.Rows[0][0])
	}
}

// testConflictingWritersSerialize: N sessions increment one row inside
// explicit transactions; every increment must survive and waits must
// have been recorded (the writers genuinely contended).
func testConflictingWritersSerialize(t *testing.T, db *DB) {
	const workers, increments = 8, 10
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := db.NewSession()
			for i := 0; i < increments; i++ {
				if err := s.Begin(); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.Exec("UPDATE a SET v = v + 1 WHERE k = 3"); err != nil {
					t.Errorf("conflicting writer: %v", err)
					_ = s.Rollback()
					return
				}
				if err := s.Commit(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	rs := mustQuery(t, db.NewSession(), "SELECT v FROM a WHERE k = 3")
	if got := rs.Rows[0][0].I; got != workers*increments {
		t.Errorf("v = %d, want %d (lost update)", got, workers*increments)
	}
}

// testForcedDeadlockResolves: the classic crossing writers on two rows
// of one table. Exactly one transaction must abort with ErrDeadlock;
// the other must complete. A hang here fails via the watchdog.
func testForcedDeadlockResolves(t *testing.T, db *DB) {
	forceDeadlock(t, db,
		[2]string{"UPDATE a SET v = v + 1 WHERE k = 4", "UPDATE a SET v = v + 1 WHERE k = 5"},
		[2]string{"UPDATE a SET v = v + 1 WHERE k = 5", "UPDATE a SET v = v + 1 WHERE k = 4"})
}

// testCrossTableDeadlockResolves: the cycle spans two tables (and so
// two different table latches and, typically, two lock stripes).
func testCrossTableDeadlockResolves(t *testing.T, db *DB) {
	forceDeadlock(t, db,
		[2]string{"UPDATE a SET v = v + 1 WHERE k = 6", "UPDATE b SET v = v + 1 WHERE k = 6"},
		[2]string{"UPDATE b SET v = v + 1 WHERE k = 6", "UPDATE a SET v = v + 1 WHERE k = 6"})
}

// testQueuedUpgradeGrantedOnRelease drives the lock manager directly
// at the grantWaiters upgrade branch: t1 and t2 both hold S, t1 queues
// for the S→X upgrade (not sole holder, so it must wait), and when t2
// releases, grantWaiters must find t1 already in holders and raise its
// mode in place — without re-appending the key to t1's lock list.
func testQueuedUpgradeGrantedOnRelease(t *testing.T, db *DB) {
	lm := db.lm
	key := lockKey{table: "a", slot: 1, h: fnv32("a")}
	t1, t2 := db.newTxn(), db.newTxn()

	for _, txn := range []*Txn{t1, t2} {
		if ok, err := lm.acquire(txn, key, LockS, nil); !ok || err != nil {
			t.Fatalf("S acquire: ok=%v err=%v", ok, err)
		}
	}
	granted := make(chan struct{})
	ok, err := lm.acquire(t1, key, LockX, func() { close(granted) })
	if ok || err != nil {
		t.Fatalf("upgrade with two S holders: ok=%v err=%v, want queued wait", ok, err)
	}
	select {
	case <-granted:
		t.Fatal("upgrade granted while a conflicting S holder remains")
	case <-time.After(10 * time.Millisecond):
	}

	lm.releaseAll(t2)
	select {
	case <-granted:
	case <-time.After(5 * time.Second):
		t.Fatal("queued upgrade never granted after the other holder released")
	}
	st := lm.stripeFor(key)
	st.mu.Lock()
	mode := st.locks[key].holders[t1]
	st.mu.Unlock()
	if mode != LockX {
		t.Errorf("granted mode = %v, want X", mode)
	}
	if len(t1.locks) != 1 {
		t.Errorf("t1 lock list has %d entries, want 1 (upgrade must not duplicate the key)", len(t1.locks))
	}
	lm.releaseAll(t1)
}

// testSoleHolderUpgradeJumpsNonEmptyQueue: t1 is the sole S holder
// with a writer already queued for X; t1's S→X upgrade is granted
// immediately past the queue (the queued X could never run under t1's
// S anyway), and the queued writer gets the lock only after t1
// releases.
func testSoleHolderUpgradeJumpsNonEmptyQueue(t *testing.T, db *DB) {
	lm := db.lm
	key := lockKey{table: "b", slot: 2, h: fnv32("b")}
	t1, t2 := db.newTxn(), db.newTxn()

	if ok, err := lm.acquire(t1, key, LockS, nil); !ok || err != nil {
		t.Fatalf("S acquire: ok=%v err=%v", ok, err)
	}
	writerGranted := make(chan struct{})
	if ok, err := lm.acquire(t2, key, LockX, func() { close(writerGranted) }); ok || err != nil {
		t.Fatalf("writer X against S holder: ok=%v err=%v, want queued wait", ok, err)
	}

	ok, err := lm.acquire(t1, key, LockX, nil)
	if !ok || err != nil {
		t.Fatalf("sole-holder upgrade with non-empty queue: ok=%v err=%v, want immediate grant", ok, err)
	}
	select {
	case <-writerGranted:
		t.Fatal("queued writer granted while upgraded holder still holds X")
	case <-time.After(10 * time.Millisecond):
	}

	lm.releaseAll(t1)
	select {
	case <-writerGranted:
	case <-time.After(5 * time.Second):
		t.Fatal("queued writer never granted after upgraded holder released")
	}
	lm.releaseAll(t2)
}

// testPreparedTxnPinsLocks: after Prepare2PC the session has no
// transaction (Rollback refuses with ErrNoTransaction) but the
// prepared transaction's X locks stay pinned — a conflicting writer
// queues until the coordinator's decision resolves the handle. Abort
// then restores the before-image, and the handle is idempotent.
func testPreparedTxnPinsLocks(t *testing.T, db *DB) {
	s1 := db.NewSession()
	if err := s1.Begin(); err != nil {
		t.Fatal(err)
	}
	mustExec(t, s1, "UPDATE a SET v = 42 WHERE k = 1")
	pt, err := s1.Prepare2PC()
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Rollback(); !errors.Is(err, ErrNoTransaction) {
		t.Fatalf("Rollback after prepare = %v, want ErrNoTransaction (unilateral abort refused)", err)
	}

	writerDone := make(chan error, 1)
	go func() {
		_, err := db.NewSession().Exec("UPDATE a SET v = v + 1 WHERE k = 1")
		writerDone <- err
	}()
	waitForWaiters(t, db, 1)
	select {
	case err := <-writerDone:
		t.Fatalf("writer finished (%v) while prepared txn should pin the lock", err)
	case <-time.After(10 * time.Millisecond):
	}

	if err := pt.Abort(); err != nil {
		t.Fatal(err)
	}
	if err := <-writerDone; err != nil {
		t.Fatalf("writer after prepared abort: %v", err)
	}
	rs := mustQuery(t, s1, "SELECT v FROM a WHERE k = 1")
	if rs.Rows[0][0].I != 1 {
		t.Errorf("v = %v, want 1 (undo of prepared update, then writer's +1)", rs.Rows[0][0])
	}
	if err := pt.Abort(); err != nil {
		t.Errorf("duplicate Abort = %v, want nil (idempotent)", err)
	}
	if err := pt.Commit(); !errors.Is(err, ErrTxnResolved) {
		t.Errorf("Commit after Abort = %v, want ErrTxnResolved", err)
	}
}

// testPreparedTxnRefusesDeadlockAbort: a prepared transaction never
// requests locks, so it can never sit in a waits-for cycle — deadlock
// resolution among live transactions must pick one of *them* as victim
// and leave the prepared txn's locks untouched. With a prepared X on
// b[1] pinned, a forced deadlock on other rows resolves normally, a
// writer on b[1] stays queued throughout, and the coordinator's commit
// finally publishes the prepared write.
func testPreparedTxnRefusesDeadlockAbort(t *testing.T, db *DB) {
	s1 := db.NewSession()
	if err := s1.Begin(); err != nil {
		t.Fatal(err)
	}
	mustExec(t, s1, "UPDATE b SET v = 9 WHERE k = 1")
	pt, err := s1.Prepare2PC()
	if err != nil {
		t.Fatal(err)
	}

	writerDone := make(chan error, 1)
	go func() {
		_, err := db.NewSession().Exec("UPDATE b SET v = v + 1 WHERE k = 1")
		writerDone <- err
	}()
	waitForWaiters(t, db, 1)

	forceDeadlock(t, db,
		[2]string{"UPDATE a SET v = v + 1 WHERE k = 4", "UPDATE a SET v = v + 1 WHERE k = 5"},
		[2]string{"UPDATE a SET v = v + 1 WHERE k = 5", "UPDATE a SET v = v + 1 WHERE k = 4"})

	if done, _ := pt.Resolved(); done {
		t.Fatal("prepared txn resolved by deadlock machinery; only the coordinator may finish it")
	}
	select {
	case err := <-writerDone:
		t.Fatalf("queued writer finished (%v) while the prepared txn should still pin b[1]", err)
	default:
	}

	if err := pt.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-writerDone; err != nil {
		t.Fatalf("writer after prepared commit: %v", err)
	}
	rs := mustQuery(t, s1, "SELECT v FROM b WHERE k = 1")
	if rs.Rows[0][0].I != 10 {
		t.Errorf("v = %v, want 10 (prepared write 9 committed, then writer's +1)", rs.Rows[0][0])
	}
}

// forceDeadlock runs two transactions whose two statements cross, with
// a barrier between the first and second statements so the cycle is
// certain, and requires exactly one ErrDeadlock abort and one commit.
func forceDeadlock(t *testing.T, db *DB, stmts1, stmts2 [2]string) {
	t.Helper()
	_, beforeDL := db.LockWaits()

	var barrier sync.WaitGroup
	barrier.Add(2)
	outcome := make(chan error, 2)
	runTxn := func(stmts [2]string) {
		s := db.NewSession()
		if err := s.Begin(); err != nil {
			barrier.Done()
			outcome <- err
			return
		}
		_, err := s.Exec(stmts[0])
		barrier.Done()
		if err == nil {
			barrier.Wait() // both hold their first lock before crossing
			_, err = s.Exec(stmts[1])
		}
		if err != nil {
			if s.InTxn() {
				_ = s.Rollback()
			}
			outcome <- err
			return
		}
		outcome <- s.Commit()
	}
	go runTxn(stmts1)
	go runTxn(stmts2)

	var errs []error
	for i := 0; i < 2; i++ {
		select {
		case err := <-outcome:
			errs = append(errs, err)
		case <-time.After(10 * time.Second):
			t.Fatal("deadlock did not resolve: transactions still blocked")
		}
	}
	var deadlocks, commits int
	for _, err := range errs {
		switch {
		case err == nil:
			commits++
		case errors.Is(err, ErrDeadlock):
			deadlocks++
		default:
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if deadlocks != 1 || commits != 1 {
		t.Fatalf("got %d deadlock aborts and %d commits, want exactly 1 and 1", deadlocks, commits)
	}
	if _, afterDL := db.LockWaits(); afterDL <= beforeDL {
		t.Error("deadlock counter did not increase")
	}
}

// waitForWaiters spins until the lock manager has recorded at least n
// waits (the queued goroutine really is parked).
func waitForWaiters(t *testing.T, db *DB, n int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if w, _ := db.LockWaits(); w >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("lock waiter never queued")
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestLockStripeDistribution sanity-checks that the stripe hash
// spreads keys (all stripes of a modest key population are used —
// uncontended acquisitions on different rows mostly touch different
// mutexes).
func TestLockStripeDistribution(t *testing.T) {
	lm := newLockManager()
	used := map[*lockStripe]bool{}
	for tbl := 0; tbl < 8; tbl++ {
		name := fmt.Sprintf("T%d", tbl)
		for slot := 0; slot < 128; slot++ {
			used[lm.stripeFor(lockKey{table: name, slot: slot, h: fnv32(name)})] = true
		}
	}
	if len(used) < lockStripeCount/2 {
		t.Errorf("only %d of %d stripes used by 1024 keys", len(used), lockStripeCount)
	}
}
