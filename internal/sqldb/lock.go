package sqldb

import (
	"errors"
	"fmt"
)

// ErrDeadlock is returned when granting a lock would create a cycle in
// the wait-for graph. The requesting transaction should abort.
var ErrDeadlock = errors.New("sqldb: deadlock detected")

// LockMode is shared (reads) or exclusive (writes).
type LockMode uint8

const (
	LockS LockMode = iota
	LockX
)

func (m LockMode) String() string {
	if m == LockX {
		return "X"
	}
	return "S"
}

// lockKey identifies a lockable resource: a row slot within a table,
// or the whole table (slot == -1, used by scans for stability).
type lockKey struct {
	table string
	slot  int
}

func (k lockKey) String() string { return fmt.Sprintf("%s[%d]", k.table, k.slot) }

type lockWaiter struct {
	txn  *Txn
	mode LockMode
	wake func() // invoked (under the engine mutex) when the lock is granted
}

type lockState struct {
	holders map[*Txn]LockMode
	queue   []*lockWaiter
}

// lockManager implements strict two-phase locking. It is not
// internally synchronized: the engine's single big mutex serializes
// all calls. Waiting is externalized through wake callbacks so both
// real goroutines (channel close) and the discrete-event simulator
// (virtual-time wakeup) can block on locks.
type lockManager struct {
	locks map[lockKey]*lockState
	// waitsFor edges: waiting txn -> set of txns it waits on.
	waitsFor map[*Txn]map[*Txn]bool
	// stats
	Waits     int64
	Deadlocks int64
}

func newLockManager() *lockManager {
	return &lockManager{
		locks:    map[lockKey]*lockState{},
		waitsFor: map[*Txn]map[*Txn]bool{},
	}
}

func compatible(held, want LockMode) bool { return held == LockS && want == LockS }

// acquire attempts to take key in mode for txn. It returns:
//   - (true, nil): granted (or already held at sufficient strength);
//   - (false, nil): txn must wait; wake will be called upon grant —
//     after wake fires the lock IS held (no retry needed);
//   - (false, ErrDeadlock): waiting would deadlock; caller must abort.
func (lm *lockManager) acquire(txn *Txn, key lockKey, mode LockMode, wake func()) (bool, error) {
	ls := lm.locks[key]
	if ls == nil {
		ls = &lockState{holders: map[*Txn]LockMode{}}
		lm.locks[key] = ls
	}
	if held, ok := ls.holders[txn]; ok {
		if held >= mode {
			return true, nil
		}
		// Upgrade S→X: granted immediately iff txn is the only holder.
		// Queued waiters cannot have been grantable anyway (the head
		// would conflict with txn's S), and letting the upgrade jump
		// the queue avoids needless upgrade deadlocks. txn.locks
		// already records key from the S acquisition.
		if len(ls.holders) == 1 {
			ls.holders[txn] = LockX
			return true, nil
		}
	}
	canGrant := len(ls.queue) == 0
	if canGrant {
		for h, hm := range ls.holders {
			if h == txn {
				continue
			}
			if !(compatible(hm, mode) && mode == LockS) {
				canGrant = false
				break
			}
		}
	}
	if canGrant {
		// txn cannot already be a holder here: held >= mode returned
		// above, and an S→X upgrade either returned (sole holder) or
		// left canGrant false (another holder conflicts with X).
		ls.holders[txn] = mode
		txn.locks = append(txn.locks, key)
		return true, nil
	}

	// Must wait: record wait-for edges and check for a cycle.
	blockers := map[*Txn]bool{}
	for h := range ls.holders {
		if h != txn {
			blockers[h] = true
		}
	}
	for _, w := range ls.queue {
		if w.txn != txn {
			blockers[w.txn] = true
		}
	}
	lm.waitsFor[txn] = blockers
	if lm.cycleFrom(txn) {
		delete(lm.waitsFor, txn)
		lm.Deadlocks++
		return false, ErrDeadlock
	}
	lm.Waits++
	ls.queue = append(ls.queue, &lockWaiter{txn: txn, mode: mode, wake: wake})
	return false, nil
}

// cycleFrom reports whether start can reach itself in the wait-for graph.
func (lm *lockManager) cycleFrom(start *Txn) bool {
	seen := map[*Txn]bool{}
	var dfs func(t *Txn) bool
	dfs = func(t *Txn) bool {
		for next := range lm.waitsFor[t] {
			if next == start {
				return true
			}
			if !seen[next] {
				seen[next] = true
				if dfs(next) {
					return true
				}
			}
		}
		return false
	}
	return dfs(start)
}

// releaseAll drops every lock held by txn and grants queued waiters
// whose requests have become compatible, invoking their wake callbacks.
func (lm *lockManager) releaseAll(txn *Txn) {
	delete(lm.waitsFor, txn)
	for _, key := range txn.locks {
		ls := lm.locks[key]
		if ls == nil {
			continue
		}
		delete(ls.holders, txn)
		lm.grantWaiters(key, ls)
		if len(ls.holders) == 0 && len(ls.queue) == 0 {
			delete(lm.locks, key)
		}
	}
	txn.locks = txn.locks[:0]
}

// cancelWaits removes txn from every wait queue (used when a waiting
// transaction aborts).
func (lm *lockManager) cancelWaits(txn *Txn) {
	delete(lm.waitsFor, txn)
	for key, ls := range lm.locks {
		changed := false
		out := ls.queue[:0]
		for _, w := range ls.queue {
			if w.txn == txn {
				changed = true
				continue
			}
			out = append(out, w)
		}
		ls.queue = out
		if changed {
			lm.grantWaiters(key, ls)
		}
	}
}

func (lm *lockManager) grantWaiters(key lockKey, ls *lockState) {
	for len(ls.queue) > 0 {
		w := ls.queue[0]
		ok := true
		for h, hm := range ls.holders {
			if h == w.txn {
				continue
			}
			if !(compatible(hm, w.mode) && w.mode == LockS) {
				ok = false
				break
			}
		}
		if !ok {
			break
		}
		ls.queue = ls.queue[1:]
		if _, already := ls.holders[w.txn]; already {
			if w.mode > ls.holders[w.txn] {
				ls.holders[w.txn] = w.mode
			}
		} else {
			ls.holders[w.txn] = w.mode
			w.txn.locks = append(w.txn.locks, key)
		}
		delete(lm.waitsFor, w.txn)
		w.wake()
	}
}
