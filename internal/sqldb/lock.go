package sqldb

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// ErrDeadlock is returned when granting a lock would create a cycle in
// the wait-for graph. The requesting transaction should abort.
var ErrDeadlock = errors.New("sqldb: deadlock detected")

// LockMode is shared (reads) or exclusive (writes).
type LockMode uint8

const (
	LockS LockMode = iota
	LockX
)

func (m LockMode) String() string {
	if m == LockX {
		return "X"
	}
	return "S"
}

// lockKey identifies a lockable resource: a row slot within a table,
// or the whole table (slot == -1, used by scans for stability). h is
// the FNV-1a hash of table, precomputed once per table so the stripe
// choice on the per-row-lock hot path never re-hashes the name; it is
// deterministic from table, so including it in map equality is
// harmless.
type lockKey struct {
	table string
	slot  int
	h     uint32
}

// fnv32 is FNV-1a over s.
func fnv32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

func (k lockKey) String() string { return fmt.Sprintf("%s[%d]", k.table, k.slot) }

type lockWaiter struct {
	txn  *Txn
	mode LockMode
	wake func() // invoked (under the key's stripe mutex) when the lock is granted
}

type lockState struct {
	holders map[*Txn]LockMode
	queue   []*lockWaiter
}

// lockStripeCount stripes the lock table so uncontended acquisitions on
// different rows don't serialize on one mutex. Power of two for cheap
// masking.
const lockStripeCount = 64

type lockStripe struct {
	mu    sync.Mutex
	locks map[lockKey]*lockState
}

// lockManager implements strict two-phase locking with striped internal
// synchronization: the lock table is sharded over lockStripeCount
// mutexes (the uncontended fast path touches exactly one), while the
// waits-for graph used for deadlock detection lives behind a single
// graph mutex taken only on the slow (conflict) path. Lock ordering is
// always stripe.mu before graphMu, never the reverse.
//
// Waiting is externalized through wake callbacks so both real
// goroutines (channel close) and the discrete-event simulator
// (virtual-time wakeup) can block on locks; acquire never parks the
// caller itself and never blocks while holding caller-visible state.
//
// Consistency note for deadlock detection: a waiter's edges are
// inserted and removed under graphMu while its key's stripe mutex is
// held, and a grant updates holders and removes the waiter's edges in
// one such critical section. Because locks are strict (released only at
// transaction end, by releaseAll) a stale edge can only point at a
// finished transaction, which never re-enters the graph — so cycle
// checks cannot report false deadlocks.
type lockManager struct {
	stripes [lockStripeCount]lockStripe

	graphMu sync.Mutex
	// waitsFor edges: waiting txn -> set of txns it waits on.
	waitsFor map[*Txn]map[*Txn]bool

	// stats
	waits     atomic.Int64
	deadlocks atomic.Int64
}

func newLockManager() *lockManager {
	lm := &lockManager{waitsFor: map[*Txn]map[*Txn]bool{}}
	for i := range lm.stripes {
		lm.stripes[i].locks = map[lockKey]*lockState{}
	}
	return lm
}

// Waits and Deadlocks snapshot the contention counters.
func (lm *lockManager) Waits() int64     { return lm.waits.Load() }
func (lm *lockManager) Deadlocks() int64 { return lm.deadlocks.Load() }

// stripeFor maps a key to its stripe: the precomputed table hash mixed
// with the slot.
func (lm *lockManager) stripeFor(key lockKey) *lockStripe {
	h := key.h ^ uint32(key.slot)
	h *= 16777619
	return &lm.stripes[h&(lockStripeCount-1)]
}

func compatible(held, want LockMode) bool { return held == LockS && want == LockS }

// acquire attempts to take key in mode for txn. It returns:
//   - (true, nil): granted (or already held at sufficient strength);
//   - (false, nil): txn must wait; wake will be called upon grant —
//     after wake fires the lock IS held (no retry needed);
//   - (false, ErrDeadlock): waiting would deadlock; caller must abort.
func (lm *lockManager) acquire(txn *Txn, key lockKey, mode LockMode, wake func()) (bool, error) {
	st := lm.stripeFor(key)
	st.mu.Lock()
	defer st.mu.Unlock()
	ls := st.locks[key]
	if ls == nil {
		ls = &lockState{holders: map[*Txn]LockMode{}}
		st.locks[key] = ls
	}
	if held, ok := ls.holders[txn]; ok {
		if held >= mode {
			return true, nil
		}
		// Upgrade S→X: granted immediately iff txn is the only holder.
		// Queued waiters cannot have been grantable anyway (the head
		// would conflict with txn's S), and letting the upgrade jump
		// the queue avoids needless upgrade deadlocks. txn.locks
		// already records key from the S acquisition.
		if len(ls.holders) == 1 {
			ls.holders[txn] = LockX
			return true, nil
		}
	}
	canGrant := len(ls.queue) == 0
	if canGrant {
		for h, hm := range ls.holders {
			if h == txn {
				continue
			}
			if !(compatible(hm, mode) && mode == LockS) {
				canGrant = false
				break
			}
		}
	}
	if canGrant {
		// txn cannot already be a holder here: held >= mode returned
		// above, and an S→X upgrade either returned (sole holder) or
		// left canGrant false (another holder conflicts with X).
		ls.holders[txn] = mode
		txn.locks = append(txn.locks, key)
		return true, nil
	}

	// Must wait: record wait-for edges and check for a cycle. Edge
	// mutation and the enqueue happen together under graphMu (with the
	// stripe mutex still held) so concurrent cycle checks always see a
	// picture consistent with the queue they would observe.
	blockers := map[*Txn]bool{}
	for h := range ls.holders {
		if h != txn {
			blockers[h] = true
		}
	}
	for _, w := range ls.queue {
		if w.txn != txn {
			blockers[w.txn] = true
		}
	}
	lm.graphMu.Lock()
	lm.waitsFor[txn] = blockers
	if lm.cycleFrom(txn) {
		delete(lm.waitsFor, txn)
		lm.graphMu.Unlock()
		lm.deadlocks.Add(1)
		return false, ErrDeadlock
	}
	ls.queue = append(ls.queue, &lockWaiter{txn: txn, mode: mode, wake: wake})
	txn.everWaited = true
	lm.graphMu.Unlock()
	lm.waits.Add(1)
	return false, nil
}

// cycleFrom reports whether start can reach itself in the wait-for
// graph. Caller holds graphMu.
func (lm *lockManager) cycleFrom(start *Txn) bool {
	seen := map[*Txn]bool{}
	var dfs func(t *Txn) bool
	dfs = func(t *Txn) bool {
		for next := range lm.waitsFor[t] {
			if next == start {
				return true
			}
			if !seen[next] {
				seen[next] = true
				if dfs(next) {
					return true
				}
			}
		}
		return false
	}
	return dfs(start)
}

// releaseAll drops every lock held by txn and grants queued waiters
// whose requests have become compatible, invoking their wake callbacks.
func (lm *lockManager) releaseAll(txn *Txn) {
	lm.graphMu.Lock()
	delete(lm.waitsFor, txn)
	lm.graphMu.Unlock()
	for _, key := range txn.locks {
		st := lm.stripeFor(key)
		st.mu.Lock()
		ls := st.locks[key]
		if ls != nil {
			delete(ls.holders, txn)
			lm.grantWaiters(key, ls)
			if len(ls.holders) == 0 && len(ls.queue) == 0 {
				delete(st.locks, key)
			}
		}
		st.mu.Unlock()
	}
	txn.locks = txn.locks[:0]
}

// cancelWaits removes txn from every wait queue (used when a
// transaction aborts; normally a no-op since an aborting transaction
// cannot be parked on a lock at the same time). Transactions that
// never enqueued anywhere skip the stripe sweep entirely — rollback is
// a hot path under deadlock retry and must not serialize on all 64
// stripe mutexes for nothing.
func (lm *lockManager) cancelWaits(txn *Txn) {
	if !txn.everWaited {
		return
	}
	lm.graphMu.Lock()
	delete(lm.waitsFor, txn)
	lm.graphMu.Unlock()
	for i := range lm.stripes {
		st := &lm.stripes[i]
		st.mu.Lock()
		for key, ls := range st.locks {
			changed := false
			out := ls.queue[:0]
			for _, w := range ls.queue {
				if w.txn == txn {
					changed = true
					continue
				}
				out = append(out, w)
			}
			ls.queue = out
			if changed {
				lm.grantWaiters(key, ls)
				if len(ls.holders) == 0 && len(ls.queue) == 0 {
					delete(st.locks, key)
				}
			}
		}
		st.mu.Unlock()
	}
}

// grantWaiters grants queue-head waiters whose requests are compatible
// with the remaining holders. Caller holds the stripe mutex for ls's
// key; the waiter's graph edges are removed and the holder set updated
// in one graphMu section so cycle checks never see a granted waiter as
// still waiting.
func (lm *lockManager) grantWaiters(key lockKey, ls *lockState) {
	for len(ls.queue) > 0 {
		w := ls.queue[0]
		ok := true
		for h, hm := range ls.holders {
			if h == w.txn {
				continue
			}
			if !(compatible(hm, w.mode) && w.mode == LockS) {
				ok = false
				break
			}
		}
		if !ok {
			break
		}
		ls.queue = ls.queue[1:]
		lm.graphMu.Lock()
		delete(lm.waitsFor, w.txn)
		if _, already := ls.holders[w.txn]; already {
			if w.mode > ls.holders[w.txn] {
				ls.holders[w.txn] = w.mode
			}
		} else {
			ls.holders[w.txn] = w.mode
			// The waiter's goroutine is parked (or about to park) on the
			// wait point, so appending to its lock list here is safe; the
			// wake callback publishes the append to it.
			w.txn.locks = append(w.txn.locks, key)
		}
		lm.graphMu.Unlock()
		w.wake()
	}
}
