package sqldb

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"pyxis/internal/val"
)

// This file holds the serializability property test for the sharded
// engine: random transactions interleaved by real goroutines over
// several tables must leave exactly the state a sequential replay of
// the committed transactions (in commit order) produces. Strict 2PL
// makes commit order a valid serialization order, and every write the
// workload issues is deterministic given the database state at its
// serialization point, so the replay is an exact oracle.

// serialOp is one deterministic, replayable statement.
type serialOp struct {
	sql  string
	args []val.Value
}

// serialTxn is one committed transaction: its ops plus the commit
// ticket that fixes its position in the serialization order. The
// ticket is taken immediately before Commit: any transaction that
// conflicts with this one is still blocked on this transaction's locks
// at that instant, so its own ticket is necessarily later.
type serialTxn struct {
	order int64
	ops   []serialOp
}

func serialSchema(tb testing.TB, db *DB) {
	s := db.NewSession()
	ddl := []string{
		"CREATE TABLE acct (id INT PRIMARY KEY, bal INT)",
		"CREATE TABLE vault (id INT PRIMARY KEY, bal INT)",
		"CREATE TABLE journal (wid INT, seq INT, amt INT, PRIMARY KEY (wid, seq))",
	}
	for _, q := range ddl {
		if _, err := s.Exec(q); err != nil {
			tb.Fatalf("ddl %q: %v", q, err)
		}
	}
	for i := 0; i < 8; i++ {
		for _, tbl := range []string{"acct", "vault"} {
			if _, err := s.Exec(fmt.Sprintf("INSERT INTO %s VALUES (?, 100)", tbl), val.IntV(int64(i))); err != nil {
				tb.Fatal(err)
			}
		}
	}
}

// randomTxnOps derives a deterministic little transaction from rng:
// additive updates, cross-table transfers, conditional halvings, and
// journal inserts keyed so they never collide across workers.
func randomTxnOps(rng *rand.Rand, worker int, seq *int) []serialOp {
	n := 1 + rng.Intn(3)
	ops := make([]serialOp, 0, n)
	for i := 0; i < n; i++ {
		k := int64(rng.Intn(8))
		switch rng.Intn(6) {
		case 0:
			ops = append(ops, serialOp{"UPDATE acct SET bal = bal + ? WHERE id = ?",
				[]val.Value{val.IntV(int64(rng.Intn(9) - 4)), val.IntV(k)}})
		case 1:
			ops = append(ops, serialOp{"UPDATE vault SET bal = bal + ? WHERE id = ?",
				[]val.Value{val.IntV(int64(rng.Intn(9) - 4)), val.IntV(k)}})
		case 2:
			// Transfer: the two statements touch two tables, exercising
			// cross-shard transactions.
			amt := int64(rng.Intn(5))
			ops = append(ops,
				serialOp{"UPDATE acct SET bal = bal - ? WHERE id = ?", []val.Value{val.IntV(amt), val.IntV(k)}},
				serialOp{"UPDATE vault SET bal = bal + ? WHERE id = ?", []val.Value{val.IntV(amt), val.IntV(k)}})
		case 3:
			// State-dependent but deterministic at the serialization
			// point.
			ops = append(ops, serialOp{"UPDATE acct SET bal = bal * 2 WHERE id = ? AND bal < 120",
				[]val.Value{val.IntV(k)}})
		case 4:
			*seq++
			ops = append(ops, serialOp{"INSERT INTO journal VALUES (?, ?, ?)",
				[]val.Value{val.IntV(int64(worker)), val.IntV(int64(*seq)), val.IntV(k)}})
		case 5:
			// Delete a journal row this worker may have written earlier:
			// exercises tombstoning and commit-time slot recycling (the
			// freed slot can be re-allocated by a concurrent insert).
			ops = append(ops, serialOp{"DELETE FROM journal WHERE wid = ? AND seq = ?",
				[]val.Value{val.IntV(int64(worker)), val.IntV(int64(1 + rng.Intn(*seq+1)))}})
		}
	}
	return ops
}

// TestSerializesToCommitOrder is the property test: W workers × T
// random transactions run concurrently against the sharded engine;
// the committed transactions replayed sequentially in commit order on
// a fresh database must produce the identical final state.
func TestSerializesToCommitOrder(t *testing.T) {
	const workers, txnsPerWorker = 8, 40

	db := Open()
	serialSchema(t, db)

	var commitTicket atomic.Int64
	committed := make([][]serialTxn, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)*7919 + 13))
			s := db.NewSession()
			seq := 0
			for i := 0; i < txnsPerWorker; i++ {
				ops := randomTxnOps(rng, w, &seq)
				if err := s.Begin(); err != nil {
					t.Error(err)
					return
				}
				failed := false
				for _, op := range ops {
					if _, err := s.Exec(op.sql, op.args...); err != nil {
						// Deadlock victims roll back and are simply not
						// part of the committed history.
						failed = true
						if s.InTxn() {
							_ = s.Rollback()
						}
						break
					}
				}
				if failed {
					continue
				}
				// The ticket is taken while this transaction still holds
				// every lock it acquired; see serialTxn.
				order := commitTicket.Add(1)
				if err := s.Commit(); err != nil {
					t.Error(err)
					return
				}
				committed[w] = append(committed[w], serialTxn{order: order, ops: ops})
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Sequential replay in commit order on a fresh database.
	history := make([]serialTxn, 0, workers*txnsPerWorker)
	for _, txns := range committed {
		history = append(history, txns...)
	}
	if len(history) == 0 {
		t.Fatal("no transactions committed")
	}
	byOrder := make(map[int64]serialTxn, len(history))
	min, max := history[0].order, history[0].order
	for _, txn := range history {
		byOrder[txn.order] = txn
		if txn.order < min {
			min = txn.order
		}
		if txn.order > max {
			max = txn.order
		}
	}

	ref := Open()
	serialSchema(t, ref)
	rs := ref.NewSession()
	for o := min; o <= max; o++ {
		txn, ok := byOrder[o]
		if !ok {
			continue // ticket taken by a txn whose Commit we never saw — impossible here, but harmless
		}
		if err := rs.Begin(); err != nil {
			t.Fatal(err)
		}
		for _, op := range txn.ops {
			if _, err := rs.Exec(op.sql, op.args...); err != nil {
				t.Fatalf("replay order %d %q: %v", o, op.sql, err)
			}
		}
		if err := rs.Commit(); err != nil {
			t.Fatal(err)
		}
	}

	got, want := db.Snapshot(), ref.Snapshot()
	if len(got) != len(want) {
		t.Fatalf("table count differs: %d vs %d", len(got), len(want))
	}
	for name, wantRows := range want {
		gotRows := got[name]
		if len(gotRows) != len(wantRows) {
			t.Errorf("%s: %d rows concurrent vs %d replayed", name, len(gotRows), len(wantRows))
			continue
		}
		for i := range wantRows {
			if len(gotRows[i]) != len(wantRows[i]) {
				t.Errorf("%s row %d: width differs", name, i)
				continue
			}
			for j := range wantRows[i] {
				if !gotRows[i][j].Equal(wantRows[i][j]) {
					t.Errorf("%s row %d col %d: concurrent %v != replayed %v",
						name, i, j, gotRows[i][j], wantRows[i][j])
				}
			}
		}
	}
}
