package sqldb

import (
	"fmt"
	"sync"
	"testing"

	"pyxis/internal/val"
)

// TestPlanCacheParallelFirstTouch is the regression test for the old
// RWMutex plan cache: N sessions first-touching the same (and
// distinct) statements concurrently must neither race nor diverge —
// every session must end up executing the one shared parsed statement.
func TestPlanCacheParallelFirstTouch(t *testing.T) {
	db := Open()
	setup := db.NewSession()
	if _, err := setup.Exec("CREATE TABLE kv (k INT PRIMARY KEY, v INT)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := setup.Exec(fmt.Sprintf("INSERT INTO kv VALUES (%d, %d)", i, i*10)); err != nil {
			t.Fatal(err)
		}
	}

	// 24 distinct statements, 16 workers: every statement's first touch
	// is contended by several workers at once.
	stmts := make([]string, 24)
	for i := range stmts {
		stmts[i] = fmt.Sprintf("SELECT v FROM kv WHERE k = %d", i%8)
		if i >= 8 {
			// Distinct texts that normalize to the same shape still get
			// their own cache entry; spell them differently.
			stmts[i] = fmt.Sprintf("SELECT v FROM kv WHERE k = %d AND v >= %d", i%8, (i/8)*-1000)
		}
	}

	const workers = 16
	start := make(chan struct{})
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess := db.NewSession()
			<-start
			for rep := 0; rep < 4; rep++ {
				for _, q := range stmts {
					if _, err := sess.Query(q); err != nil {
						errs <- fmt.Errorf("%s: %w", q, err)
						return
					}
				}
			}
		}()
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Every repeat parse must converge on the single shared statement
	// object the cache stored.
	for _, q := range stmts {
		a, err := db.parse(q)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := db.parse(q)
		if a != b {
			t.Fatalf("plan cache returned distinct objects for %q", q)
		}
	}
}

// TestPrepareExecParsed covers the prepared execution surface the
// dbapi wire uses: Prepare once, run many, identical results to the
// string path.
func TestPrepareExecParsed(t *testing.T) {
	db := Open()
	sess := db.NewSession()
	intv := func(i int) val.Value { return val.IntV(int64(i)) }
	if _, err := sess.Exec("CREATE TABLE t (k INT PRIMARY KEY, v INT)"); err != nil {
		t.Fatal(err)
	}

	ins, err := sess.Prepare("INSERT INTO t VALUES (?, ?)")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := sess.ExecParsed(ins, intv(i), intv(i*i)); err != nil {
			t.Fatal(err)
		}
	}

	sel, err := sess.Prepare("SELECT v FROM t WHERE k = ?")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		rs, err := sess.QueryParsed(sel, intv(i))
		if err != nil {
			t.Fatal(err)
		}
		want, err2 := sess.Query("SELECT v FROM t WHERE k = ?", intv(i))
		if err2 != nil {
			t.Fatal(err2)
		}
		if len(rs.Rows) != 1 || len(want.Rows) != 1 || rs.Rows[0][0].I != want.Rows[0][0].I {
			t.Fatalf("k=%d: prepared %v vs string %v", i, rs.Rows, want.Rows)
		}
	}

	// QueryParsed on a non-SELECT must fail, not panic.
	if _, err := sess.QueryParsed(ins); err == nil {
		t.Error("QueryParsed accepted an INSERT")
	}
}
