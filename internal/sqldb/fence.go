package sqldb

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pyxis/internal/val"
)

// Range-fence errors. Both are retryable from the client's point of
// view: ErrRangeFenced means "back off, a migration is draining this
// range"; ErrRangeMoved means "re-read the shard map, the range lives
// elsewhere now".
var (
	ErrRangeFenced = errors.New("sqldb: key range is fenced for migration")
	ErrRangeMoved  = errors.New("sqldb: key range has moved to another shard")
	ErrFenceBusy   = errors.New("sqldb: a migration fence is already armed")
	ErrFenceToken  = errors.New("sqldb: fence token does not match the armed fence")
)

// FenceSpec names one contiguous partition-key range across a set of
// tables: Tables maps each (case-insensitive) table name to the column
// carrying the partition key, and [Lo, Hi] is the inclusive key range.
// Tables absent from the map (replicated catalogs like TPC-C's item)
// are never fenced.
type FenceSpec struct {
	Tables map[string]string
	Lo, Hi int64
}

func (sp FenceSpec) contains(key int64) bool { return key >= sp.Lo && key <= sp.Hi }

// fenceState is one armed migration fence. Immutable once published;
// ArmFence/ReleaseFence swap the whole pointer.
type fenceState struct {
	spec     FenceSpec
	token    uint64
	deadline time.Time // lazily expires the fence if the migrator dies
}

// fenceControl is the DB's migration-fence plane. It lives in its own
// struct (not loose fields on DB) because it is control-plane state
// with its own discipline: statements read the two atomic pointers and
// never take fenceMu; only ArmFence/ReleaseFence serialize on it.
//
// armed is the single in-flight migration fence (at most one per DB —
// the migrator itself serializes moves), and moved accumulates the
// ranges whose rows were cut over to another shard: a tombstone that
// turns stale keyed access into ErrRangeMoved instead of a silent
// empty read.
type fenceControl struct {
	fenceMu sync.Mutex
	armed   atomic.Pointer[fenceState]
	moved   atomic.Pointer[[]FenceSpec]
	nextTok atomic.Uint64
}

// ArmFence installs a migration fence over spec for at most ttl and
// returns its token. While armed, every statement whose partition key
// falls in the range — reads included — fails with ErrRangeFenced
// unless its session adopted the token (AdoptFence). Reads are fenced
// too on purpose: a reader admitted mid-migration could park on a row
// lock held by the drain, wake after cutover and observe a half-moved
// warehouse as an empty result. Writes with an undeterminable key on a
// fenced table are fenced conservatively.
//
// The ttl is the crash-safety valve: if the migrator dies between
// fence and cutover, the next statement past the deadline releases the
// fence lazily and the range serves again. latch: fenceMu exclusive;
// the statement path reads only the atomic pointers.
func (db *DB) ArmFence(spec FenceSpec, ttl time.Duration) (uint64, error) {
	if spec.Lo > spec.Hi || len(spec.Tables) == 0 {
		return 0, fmt.Errorf("sqldb: invalid fence spec [%d,%d] over %d tables", spec.Lo, spec.Hi, len(spec.Tables))
	}
	if ttl <= 0 {
		ttl = 2 * time.Second
	}
	norm := FenceSpec{Tables: make(map[string]string, len(spec.Tables)), Lo: spec.Lo, Hi: spec.Hi}
	for t, c := range spec.Tables {
		norm.Tables[normName(t)] = normName(c)
	}
	db.fence.fenceMu.Lock()
	defer db.fence.fenceMu.Unlock()
	if st := db.fence.armed.Load(); st != nil && time.Now().Before(st.deadline) {
		return 0, fmt.Errorf("%w: token %d holds [%d,%d]", ErrFenceBusy, st.token, st.spec.Lo, st.spec.Hi)
	}
	tok := db.fence.nextTok.Add(1)
	db.fence.armed.Store(&fenceState{spec: norm, token: tok, deadline: time.Now().Add(ttl)})
	return tok, nil
}

// ReleaseFence drops the armed fence identified by token. With
// moved=true the fence's range becomes a permanent tombstone: keyed
// statements on it fail with ErrRangeMoved from then on, telling a
// stale router to re-read the shard map. With moved=false (migration
// aborted) the range simply serves again. latch: fenceMu exclusive.
func (db *DB) ReleaseFence(token uint64, moved bool) error {
	db.fence.fenceMu.Lock()
	defer db.fence.fenceMu.Unlock()
	st := db.fence.armed.Load()
	if st == nil || st.token != token {
		return fmt.Errorf("%w: have %v, got %d", ErrFenceToken, fenceTokenOf(st), token)
	}
	if moved {
		var next []FenceSpec
		if prev := db.fence.moved.Load(); prev != nil {
			next = append(next, *prev...)
		}
		next = append(next, st.spec)
		db.fence.moved.Store(&next)
	}
	db.fence.armed.Store(nil)
	return nil
}

func fenceTokenOf(st *fenceState) any {
	if st == nil {
		return "no fence"
	}
	return st.token
}

// FenceArmed reports whether a live (non-expired) fence is up, and the
// number of moved-out tombstone ranges. Test/ops introspection only.
func (db *DB) FenceArmed() (armed bool, movedRanges int) {
	if st := db.fence.armed.Load(); st != nil && time.Now().Before(st.deadline) {
		armed = true
	}
	if mv := db.fence.moved.Load(); mv != nil {
		movedRanges = len(*mv)
	}
	return armed, movedRanges
}

// AdoptFence exempts this session from the armed fence with the given
// token — the migrator adopts its own fence so the drain's SELECTs and
// DELETEs pass. Adoption does not bypass moved tombstones.
func (s *Session) AdoptFence(token uint64) { s.fenceTok = token }

// fenceGate is the per-statement fence check, called before any latch
// is taken. The no-migration hot path is two atomic nil loads.
func (s *Session) fenceGate(st SQLStmt, args []val.Value) error {
	fc := &s.db.fence
	armed := fc.armed.Load()
	movedP := fc.moved.Load()
	if armed == nil && movedP == nil {
		return nil
	}
	if armed != nil && !time.Now().Before(armed.deadline) {
		// The migrator died without releasing; expire lazily so the
		// range serves again without a background sweeper.
		fc.fenceMu.Lock()
		if cur := fc.armed.Load(); cur == armed {
			fc.armed.Store(nil)
		}
		fc.fenceMu.Unlock()
		armed = nil
	}
	if movedP != nil {
		for i := range *movedP {
			if err := fenceMatch(&(*movedP)[i], st, args, false); err != nil {
				return fmt.Errorf("%w: keys [%d,%d]", ErrRangeMoved, (*movedP)[i].Lo, (*movedP)[i].Hi)
			}
		}
	}
	if armed != nil && s.fenceTok != armed.token {
		if err := fenceMatch(&armed.spec, st, args, true); err != nil {
			return fmt.Errorf("%w: keys [%d,%d]", ErrRangeFenced, armed.spec.Lo, armed.spec.Hi)
		}
	}
	return nil
}

// errFenceHit is an internal marker: the statement targets the spec's
// range. Wrapped into the public sentinel by fenceGate.
var errFenceHit = errors.New("fence hit")

// fenceMatch reports (as errFenceHit) whether st targets spec's key
// range. conservativeWrites additionally fences writes whose key the
// gate cannot determine — during the armed window a keyless UPDATE or
// DELETE on a fenced table could mutate in-range rows mid-stream, so
// it is refused; keyless reads (whole-table audits) pass and simply
// see whatever committed state the latches give them.
func fenceMatch(spec *FenceSpec, st SQLStmt, args []val.Value, conservativeWrites bool) error {
	hit := func(table string, keyed, inRange, write bool) error {
		if _, fenced := spec.Tables[table]; !fenced {
			return nil
		}
		if keyed && inRange {
			return errFenceHit
		}
		if !keyed && write && conservativeWrites {
			return errFenceHit
		}
		return nil
	}
	switch t := st.(type) {
	case *InsertStmt:
		keyCol, fenced := spec.Tables[t.Table]
		if !fenced {
			return nil
		}
		key, keyed := insertKey(t, keyCol, args)
		return hit(t.Table, keyed, keyed && spec.contains(key), true)
	case *UpdateStmt:
		key, keyed := whereKey(t.Where, spec.Tables[t.Table], args)
		return hit(t.Table, keyed, keyed && spec.contains(key), true)
	case *DeleteStmt:
		key, keyed := whereKey(t.Where, spec.Tables[t.Table], args)
		return hit(t.Table, keyed, keyed && spec.contains(key), true)
	case *SelectStmt:
		for _, tr := range t.Tables {
			key, keyed := whereKey(t.Where, spec.Tables[tr.Table], args)
			if err := hit(tr.Table, keyed, keyed && spec.contains(key), false); err != nil {
				return err
			}
		}
	}
	return nil
}

// insertKey extracts the partition key of an INSERT: by named column
// when a column list is present, by primary-key-column position
// otherwise (the TPC-C loaders and drivers always insert full rows in
// declared order, so position 0 is the warehouse id for every
// partitioned table).
func insertKey(t *InsertStmt, keyCol string, args []val.Value) (int64, bool) {
	idx := -1
	if len(t.Cols) > 0 {
		for i, c := range t.Cols {
			if c == keyCol {
				idx = i
				break
			}
		}
	} else {
		// Positional insert: the partition key is by convention the
		// first column of every partitioned table's DDL.
		idx = 0
	}
	if idx < 0 || idx >= len(t.Vals) {
		return 0, false
	}
	return fenceEvalKey(t.Vals[idx], args)
}

// whereKey scans a WHERE clause for `keyCol = <lit|param>` and returns
// the key when found.
func whereKey(conds []Cond, keyCol string, args []val.Value) (int64, bool) {
	if keyCol == "" {
		return 0, false
	}
	for i := range conds {
		c := &conds[i]
		if c.Op != CmpEq {
			continue
		}
		if cr, ok := c.L.(ColRef); ok && cr.Col == keyCol {
			if k, ok := fenceEvalKey(c.R, args); ok {
				return k, true
			}
		}
		if cr, ok := c.R.(ColRef); ok && cr.Col == keyCol {
			if k, ok := fenceEvalKey(c.L, args); ok {
				return k, true
			}
		}
	}
	return 0, false
}

// fenceEvalKey evaluates the simple expressions a partition key can
// be: an integer literal or a bound parameter.
func fenceEvalKey(e SQLExpr, args []val.Value) (int64, bool) {
	switch v := e.(type) {
	case LitExpr:
		if v.V.K == val.Int {
			return v.V.I, true
		}
	case ParamExpr:
		if v.Index >= 0 && v.Index < len(args) && args[v.Index].K == val.Int {
			return args[v.Index].I, true
		}
	}
	return 0, false
}
