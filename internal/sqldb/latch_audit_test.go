package sqldb

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// This is the sharding audit: the successor of the old "every exported
// method takes db.mu" rule. It machine-checks two invariants over the
// package source:
//
//  1. The single global engine mutex is gone for good — the DB struct
//     must not grow a field of type sync.Mutex again.
//  2. Every function that touches table structure (Table.rows,
//     Table.free, Table.pk, Table.idxs) or the catalog (DB.tables) is
//     on the audited allowlist below, each entry naming the latch that
//     protects it. Touch structure from a new function and this test
//     fails until the function is audited here.
//
// The audit is syntactic+type-based, not a proof — the race detector
// jobs provide the dynamic check — but it guarantees no structural
// access site can appear without a human writing down its latch story.

// latchAudit maps "(recv).func" to the latch that makes its structural
// accesses safe.
var latchAudit = map[string]string{
	// Catalog (DB.tables).
	"(*DB).createTable": "catMu exclusive",
	"(*DB).createIndex": "catMu read for lookup; table latch exclusive for the build",
	"(*DB).lookupTable": "catMu read",
	"(*DB).Snapshot":    "catMu read, then every table latch shared",

	// Table structure under the table latch.
	"(*Table).rowAt":           "caller holds table latch >= read; slot stripe inside",
	"(*Table).setRow":          "caller holds table latch >= read; slot stripe inside",
	"(*Table).NumRows":         "table latch shared",
	"(*Table).keyFor":          "reads only the immutable column layout of a caller-latched row",
	"(*Table).addToIndexes":    "caller holds table latch exclusive",
	"(*Table).dropFromIndexes": "caller holds table latch exclusive",

	// Statement execution; the latch is taken in execStmt/Query.
	"(*Session).execInsert": "table latch exclusive (suspended across lock waits, revalidated after)",
	"(*Session).execUpdate": "table latch exclusive if an indexed column is set, shared otherwise",
	"(*Session).execDelete": "table latch exclusive",
	"(*Session).execSelect": "shared latch on every FROM table",
	"(*Session).matchSlots": "caller's statement latch; rows via rowAt stripes",
	"(*Session).matchJoin":  "caller's statement latch; rows via rowAt stripes",
	"updateNeedsX":          "table latch >= read (index set stable while held)",
	"isIndexedCol":          "caller's statement latch >= read (reads index metadata)",
	"choosePath":            "caller's statement latch (reads index metadata)",

	// Transaction finalization.
	"(*DB).commit":   "exclusive latch on every table with freed slots",
	"(*DB).rollback": "exclusive latch on every table in the undo log",
}

func auditPackage(t *testing.T) (*token.FileSet, []*ast.File, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(".", name), nil, 0)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		files = append(files, f)
	}
	// Tolerant type check: external imports resolve to empty packages,
	// so cross-package types come out invalid, but selections on the
	// package's own structs (all we need) still resolve.
	info := &types.Info{
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
	}
	conf := types.Config{
		Error:    func(error) {}, // collect nothing; tolerate unresolved imports
		Importer: emptyImporter{},
	}
	_, _ = conf.Check("sqldb", fset, files, info)
	return fset, files, info
}

type emptyImporter struct{}

func (emptyImporter) Import(path string) (*types.Package, error) {
	pkg := types.NewPackage(path, path[strings.LastIndex(path, "/")+1:])
	pkg.MarkComplete()
	return pkg, nil
}

// structuralFields lists the guarded fields per receiver type.
var structuralFields = map[string]map[string]bool{
	"Table": {"rows": true, "free": true, "pk": true, "idxs": true},
	"DB":    {"tables": true},
}

func TestLatchAuditStructuralAccess(t *testing.T) {
	fset, files, info := auditPackage(t)

	type site struct {
		fn, field, pos string
	}
	var sites []site
	resolved := 0
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn := funcKey(fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				selection, ok := info.Selections[sel]
				if !ok || selection.Kind() != types.FieldVal {
					return true
				}
				resolved++
				recv := namedTypeName(selection.Recv())
				fields := structuralFields[recv]
				if fields == nil || !fields[sel.Sel.Name] {
					return true
				}
				if _, audited := latchAudit[fn]; !audited {
					sites = append(sites, site{fn: fn, field: recv + "." + sel.Sel.Name,
						pos: fset.Position(sel.Pos()).String()})
				}
				return true
			})
		}
	}
	// Guard against the audit silently going blind (e.g. the tolerant
	// type check failing so hard that no selections resolve).
	if resolved < 50 {
		t.Fatalf("audit resolved only %d field selections — type check broke, audit is vacuous", resolved)
	}
	if len(sites) > 0 {
		sort.Slice(sites, func(i, j int) bool { return sites[i].pos < sites[j].pos })
		var b strings.Builder
		for _, s := range sites {
			fmt.Fprintf(&b, "\n  %s: %s touches %s without a latch audit entry", s.pos, s.fn, s.field)
		}
		t.Errorf("unaudited structural access sites (add them to latchAudit with their latch story):%s", b.String())
	}
}

// TestLatchAuditNoGlobalMutex asserts invariant 1: no sync.Mutex field
// on DB (the engine must stay sharded; catMu is an RWMutex, the plan
// cache is a lock-free sync.Map and the lock manager stripes its own).
func TestLatchAuditNoGlobalMutex(t *testing.T) {
	_, files, _ := auditPackage(t)
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok || ts.Name.Name != "DB" {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, fld := range st.Fields.List {
				if sel, ok := fld.Type.(*ast.SelectorExpr); ok {
					if x, ok := sel.X.(*ast.Ident); ok && x.Name == "sync" && sel.Sel.Name == "Mutex" {
						t.Errorf("DB regained a sync.Mutex field (%v) — the engine must stay sharded", fld.Names)
					}
				}
			}
			return true
		})
	}
}

// TestLatchAuditEntriesLive keeps the allowlist honest: every audited
// function must still exist in the package.
func TestLatchAuditEntriesLive(t *testing.T) {
	_, files, _ := auditPackage(t)
	live := map[string]bool{}
	for _, f := range files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				live[funcKey(fd)] = true
			}
		}
	}
	for fn := range latchAudit {
		if !live[fn] {
			t.Errorf("latchAudit entry %q names a function that no longer exists", fn)
		}
	}
}

func funcKey(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	recv := fd.Recv.List[0].Type
	switch rt := recv.(type) {
	case *ast.StarExpr:
		if id, ok := rt.X.(*ast.Ident); ok {
			return "(*" + id.Name + ")." + fd.Name.Name
		}
	case *ast.Ident:
		return "(" + rt.Name + ")." + fd.Name.Name
	}
	return fd.Name.Name
}

func namedTypeName(t types.Type) string {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt.Obj().Name()
		default:
			return ""
		}
	}
}
