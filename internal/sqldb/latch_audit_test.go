package sqldb

import (
	"strings"
	"testing"

	"pyxis/internal/lint"
)

// The latch audit is now the latchorder analyzer in internal/lint —
// shared by pyxis-lint, the go vet -vettool CI step and this wrapper.
// The allowlist (lint.LatchAudit) and the order rules live there; this
// test keeps the audit inside `go test ./internal/sqldb` so a
// structural-access regression fails next to the engine's own tests.

// TestLatchAudit runs the latchorder analyzer over the live package
// and expects it to come back clean.
func TestLatchAudit(t *testing.T) {
	diags, err := lint.Check(".", lint.CheckOptions{
		Analyzers: []*lint.Analyzer{lint.LatchOrder},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestLatchAuditBites injects a synthetic unaudited Table.rows access
// site and demands a diagnostic — proof the analyzer still resolves
// this package's types and would catch a real regression, not just a
// vacuous pass.
func TestLatchAuditBites(t *testing.T) {
	const rogue = `package sqldb

func zzRogueProbe(t *Table) int {
	return len(t.rows)
}
`
	diags, err := lint.Check(".", lint.CheckOptions{
		Analyzers:  []*lint.Analyzer{lint.LatchOrder},
		ExtraFiles: map[string]string{"zz_rogue_probe.go": rogue},
	})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range diags {
		if strings.Contains(d.Message, "zzRogueProbe") && strings.Contains(d.Message, "latch story") {
			found = true
		} else {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	if !found {
		t.Fatalf("latchorder did not flag the injected unaudited Table.rows access; audit is not live")
	}
}
